package repro

// Differential proof for the zero-allocation hot path: the schedules the
// convergent scheduler produces after the flattened-PrefMap / pooled-scratch
// rewrite must be byte-identical to the ones the original nested-slice
// implementation produced. The original implementation's outputs are frozen
// in testdata/hotpath_golden.json (generated with -update-hotpath-golden
// before the rewrite landed); every kernel × machine × seed combination is
// fingerprinted and compared against that frozen truth.
//
// A second sweep compares the pooled path (core.Schedule, which recycles
// State/PrefMap/scratch through the package pool) against a fresh-allocation
// run of the same pass sequence (core.NewState + core.ScheduleState), so
// buffer recycling is proven inert on live outputs, not just against the
// frozen goldens.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/passes"
)

var updateHotpathGolden = flag.Bool("update-hotpath-golden", false,
	"regenerate testdata/hotpath_golden.json from the current scheduler")

// hotpathSeeds are the noise seeds the differential sweep covers. exp.Seed
// is the one every experiment uses; the others are arbitrary.
var hotpathSeeds = []int64{exp.Seed, 7, 90125}

func hotpathMachines() []*machine.Model {
	return []*machine.Model{machine.Raw(4), machine.Raw(16), machine.Chorus(4)}
}

const hotpathGoldenPath = "testdata/hotpath_golden.json"

// hotpathKey names one sweep cell.
func hotpathKey(kernel, mach string, seed int64) string {
	return fmt.Sprintf("%s/%s/seed%d", kernel, mach, seed)
}

// hotpathSweep fingerprints every kernel × machine × seed cell through
// core.Schedule. A scheduling error is recorded as "error:<message>" so a
// combination that stops (or starts) failing is also a detected divergence.
func hotpathSweep(t *testing.T) map[string]string {
	t.Helper()
	out := make(map[string]string)
	for _, m := range hotpathMachines() {
		seq := passes.ForMachine(m.Name)
		for _, k := range bench.All() {
			g := k.Build(m.NumClusters)
			for _, seed := range hotpathSeeds {
				s, _, err := core.Schedule(g, m, seq, seed)
				key := hotpathKey(k.Name, m.Name, seed)
				if err != nil {
					out[key] = "error:" + err.Error()
					continue
				}
				out[key] = s.Fingerprint()
			}
		}
	}
	return out
}

// TestHotPathByteIdenticalToGolden is the old-path-vs-new-path differential:
// the frozen goldens are the pre-rewrite implementation's schedules.
func TestHotPathByteIdenticalToGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full kernel sweep; skipped in -short")
	}
	got := hotpathSweep(t)

	if *updateHotpathGolden {
		keys := make([]string, 0, len(got))
		for k := range got {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(got))
		for _, k := range keys {
			ordered[k] = got[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(hotpathGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(hotpathGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden fingerprints to %s", len(got), hotpathGoldenPath)
		return
	}

	data, err := os.ReadFile(hotpathGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-hotpath-golden): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse %s: %v", hotpathGoldenPath, err)
	}
	if len(want) == 0 {
		t.Fatalf("%s holds no fingerprints", hotpathGoldenPath)
	}
	for key, w := range want {
		g, ok := got[key]
		if !ok {
			t.Errorf("%s: cell missing from current sweep", key)
			continue
		}
		if g != w {
			t.Errorf("%s: schedule diverged from pre-rewrite golden\n  golden:  %s\n  current: %s", key, w, g)
		}
	}
	for key := range got {
		if _, ok := want[key]; !ok {
			t.Errorf("%s: cell has no golden (regenerate with -update-hotpath-golden)", key)
		}
	}
}

// TestPooledPathMatchesFreshAllocation is the live half of the differential:
// the pooled driver entry point (core.Schedule, which recycles State, PrefMap
// backing and scratch arena through a sync.Pool) must produce byte-identical
// schedules and converged results to a fresh-allocation run of the same pass
// sequence through core.NewState + core.ScheduleState. Each cell runs the
// pooled path twice so the second call schedules on a recycled, previously
// dirtied state.
func TestPooledPathMatchesFreshAllocation(t *testing.T) {
	kernels := bench.All()
	if testing.Short() {
		kernels = kernels[:3]
	}
	ctx := context.Background()
	for _, m := range hotpathMachines() {
		seq := passes.ForMachine(m.Name)
		for _, k := range kernels {
			g := k.Build(m.NumClusters)
			for _, seed := range hotpathSeeds {
				key := hotpathKey(k.Name, m.Name, seed)

				fresh := core.NewState(g, m, seed)
				fs, fres, ferr := core.ScheduleState(ctx, fresh, seq)

				// First pooled run primes the pool with a state shaped by
				// this graph; the second proves a recycled state converges
				// identically.
				ps1, pres1, perr1 := core.Schedule(g, m, seq, seed)
				ps2, pres2, perr2 := core.Schedule(g, m, seq, seed)

				if (ferr == nil) != (perr1 == nil) || (ferr == nil) != (perr2 == nil) {
					t.Errorf("%s: error disagreement: fresh=%v pooled=%v recycled=%v", key, ferr, perr1, perr2)
					continue
				}
				if ferr != nil {
					continue
				}
				if pf, ff := ps1.Fingerprint(), fs.Fingerprint(); pf != ff {
					t.Errorf("%s: pooled schedule diverged from fresh-allocation schedule\n  fresh:  %s\n  pooled: %s", key, ff, pf)
				}
				if pf, ff := ps2.Fingerprint(), fs.Fingerprint(); pf != ff {
					t.Errorf("%s: recycled-state schedule diverged from fresh-allocation schedule\n  fresh:    %s\n  recycled: %s", key, ff, pf)
				}
				for _, pres := range []*core.Result{pres1, pres2} {
					if !reflect.DeepEqual(pres.Assignment, fres.Assignment) {
						t.Errorf("%s: pooled assignment %v != fresh %v", key, pres.Assignment, fres.Assignment)
					}
					if !reflect.DeepEqual(pres.PreferredTime, fres.PreferredTime) {
						t.Errorf("%s: pooled preferred times %v != fresh %v", key, pres.PreferredTime, fres.PreferredTime)
					}
					if !reflect.DeepEqual(pres.Confidence, fres.Confidence) {
						t.Errorf("%s: pooled confidences diverge from fresh", key)
					}
					if !reflect.DeepEqual(pres.Trace, fres.Trace) {
						t.Errorf("%s: pooled per-pass churn trace diverges from fresh", key)
					}
				}
			}
		}
	}
}
