package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/irtext"
)

// bootServe starts serve on an ephemeral port and returns the base URL, the
// stop channel, the exit channel and the captured log.
func bootServe(t *testing.T, o options) (string, chan os.Signal, chan error, *bytes.Buffer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(o, ln, stop, log.New(&logbuf, "schedd: ", 0)) }()
	base := "http://" + ln.Addr().String()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, stop, done, &logbuf
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("schedd never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeScheduleAndDrain boots the daemon loop with chaos active, serves a
// request, then delivers SIGTERM and expects a clean drain with final stats.
func TestServeScheduleAndDrain(t *testing.T) {
	o := options{
		queue:     8,
		cacheSize: 256,
		timeout:   2 * time.Second,
		drain:     5 * time.Second,
		seed:      2002,
		chaos:     "pass-panic",
		chaosSeed: 7,
	}
	base, stop, done, logbuf := bootServe(t, o)

	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	ddg := irtext.String(k.Build(4))
	resp, err := http.Post(base+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule request: %d: %s", resp.StatusCode, body)
	}
	var sched struct {
		Cycles   int  `json:"cycles"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &sched); err != nil || sched.Cycles == 0 {
		t.Fatalf("schedule body: %v: %s", err, body)
	}
	if !sched.Degraded {
		t.Error("pass-panic chaos should force a degraded serve")
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("admission")) {
		t.Fatalf("/stats: %d: %s", resp.StatusCode, body)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	logs := logbuf.String()
	for _, want := range []string{"chaos mode", "final stats", "drained cleanly"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
}
