package main

import (
	"bytes"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/irtext"
	"repro/internal/server"
)

// bootServe starts serve on an ephemeral port and returns the base URL, the
// stop channel, the exit channel and the captured log.
func bootServe(t *testing.T, o options) (string, chan os.Signal, chan error, *bytes.Buffer) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	go func() { done <- serve(o, ln, stop, log.New(&logbuf, "schedd: ", 0)) }()
	base := "http://" + ln.Addr().String()

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, stop, done, &logbuf
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("schedd never became healthy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeScheduleAndDrain boots the daemon loop with chaos active, serves a
// request, then delivers SIGTERM and expects a clean drain with final stats.
func TestServeScheduleAndDrain(t *testing.T) {
	o := options{
		queue:     8,
		cacheSize: 256,
		timeout:   2 * time.Second,
		drain:     5 * time.Second,
		seed:      2002,
		chaos:     "pass-panic",
		chaosSeed: 7,
	}
	base, stop, done, logbuf := bootServe(t, o)

	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	ddg := irtext.String(k.Build(4))
	resp, err := http.Post(base+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("schedule request: %d: %s", resp.StatusCode, body)
	}
	var sched struct {
		Cycles   int  `json:"cycles"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(body, &sched); err != nil || sched.Cycles == 0 {
		t.Fatalf("schedule body: %v: %s", err, body)
	}
	if !sched.Degraded {
		t.Error("pass-panic chaos should force a degraded serve")
	}

	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte("admission")) {
		t.Fatalf("/stats: %d: %s", resp.StatusCode, body)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	logs := logbuf.String()
	for _, want := range []string{"chaos mode", "final stats", "drained cleanly"} {
		if !strings.Contains(logs, want) {
			t.Errorf("log missing %q:\n%s", want, logs)
		}
	}
}

func TestValidateStoreFlags(t *testing.T) {
	dir := t.TempDir()
	good := options{storeDir: dir, storeEntries: 8192, storeSnapshotEvery: 1024, storeQueue: 256, cacheSize: 256}
	if err := validateStoreFlags(good); err != nil {
		t.Fatalf("valid store flags rejected: %v", err)
	}
	if err := validateStoreFlags(options{}); err != nil {
		t.Fatalf("no-store options rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*options)
	}{
		{"negative cache", func(o *options) { o.cacheSize = -1 }},
		{"zero entries", func(o *options) { o.storeEntries = 0 }},
		{"negative entries", func(o *options) { o.storeEntries = -4 }},
		{"zero snapshot interval", func(o *options) { o.storeSnapshotEvery = 0 }},
		{"zero queue", func(o *options) { o.storeQueue = 0 }},
		{"missing parent", func(o *options) { o.storeDir = dir + "/no/such/parent/store" }},
	}
	for _, c := range cases {
		o := good
		c.mut(&o)
		if err := validateStoreFlags(o); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

// TestStoreDuplicateDirRefused: a second daemon on the same -store-dir must
// refuse to start (lockfile), leaving the first untouched.
func TestStoreDuplicateDirRefused(t *testing.T) {
	dir := t.TempDir()
	o := options{
		queue: 8, cacheSize: 256, timeout: 2 * time.Second, drain: 5 * time.Second,
		seed: 2002, storeDir: dir, storeEntries: 64, storeSnapshotEvery: 16, storeQueue: 16,
		storeNoSync: true,
	}
	base, stop, done, _ := bootServe(t, o)

	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logbuf bytes.Buffer
	err = serve(o, ln2, make(chan os.Signal, 1), log.New(&logbuf, "schedd: ", 0))
	ln2.Close()
	if err == nil || !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second daemon on %s started (err %v)", dir, err)
	}

	// The first daemon is unharmed and still ready.
	resp, rerr := http.Get(base + "/readyz")
	if rerr != nil {
		t.Fatal(rerr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first daemon lost readiness: %d", resp.StatusCode)
	}
	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
}

// TestServeStoreWarmRestart drives the daemon loop end to end: populate,
// SIGTERM (drain flushes the store), boot a successor on the same directory,
// and require a warm hit.
func TestServeStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()
	o := options{
		queue: 8, cacheSize: 256, timeout: 2 * time.Second, drain: 5 * time.Second,
		seed: 2002, storeDir: dir, storeEntries: 64, storeSnapshotEvery: 16, storeQueue: 16,
		storeNoSync: true,
	}
	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	ddg := irtext.String(k.Build(4))

	base, stop, done, _ := bootServe(t, o)
	resp, err := http.Post(base+"/schedule?machine=raw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("populate: %d", resp.StatusCode)
	}
	stop <- syscall.SIGTERM
	if err := <-done; err != nil {
		t.Fatalf("first daemon: %v", err)
	}

	base2, stop2, done2, logbuf := bootServe(t, o)
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(base2 + "/readyz")
		if err == nil {
			r.Body.Close()
			if r.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted daemon never became ready")
		}
		time.Sleep(10 * time.Millisecond)
	}
	resp, err = http.Post(base2+"/schedule?machine=raw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var sched struct {
		CacheHit bool `json:"cacheHit"`
	}
	if err := json.Unmarshal(body, &sched); err != nil {
		t.Fatalf("schedule body: %v: %s", err, body)
	}
	if !sched.CacheHit {
		t.Errorf("restarted daemon missed the cache: %s", body)
	}
	if !strings.Contains(logbuf.String(), "store recovery: replayed=1") {
		t.Errorf("recovery line missing from logs:\n%s", logbuf.String())
	}
	stop2 <- syscall.SIGTERM
	if err := <-done2; err != nil {
		t.Fatalf("second daemon: %v", err)
	}
}

// TestTenancyFor covers the merge order of the tenancy sources: config file,
// then repeatable -tenant-class (replace-by-name), then -tenant assignments,
// then -default-class — validated as a whole.
func TestTenancyFor(t *testing.T) {
	cfgPath := filepath.Join(t.TempDir(), "tenants.json")
	cfg := `{
  "classes": [
    {"name": "gold", "weight": 4, "queue": 16},
    {"name": "bronze", "weight": 1, "queue": 4}
  ],
  "tenants": {"vip": "gold"}
}`
	if err := os.WriteFile(cfgPath, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}

	o := options{
		tenantConfig:  cfgPath,
		tenantClasses: multiFlag{"gold:weight=8,queue=32,inflight=2"}, // overrides file
		tenantAssign:  multiFlag{"batch=bronze"},
	}
	tc, err := tenancyFor(o)
	if err != nil {
		t.Fatalf("tenancyFor: %v", err)
	}
	if len(tc.Classes) != 2 {
		t.Fatalf("classes = %+v, want gold+bronze", tc.Classes)
	}
	var gold server.TenantClass
	for _, c := range tc.Classes {
		if c.Name == "gold" {
			gold = c
		}
	}
	if gold.Weight != 8 || gold.MaxQueue != 32 || gold.MaxInflight != 2 {
		t.Errorf("flag did not replace file class: %+v", gold)
	}
	if tc.Tenants["vip"] != "gold" || tc.Tenants["batch"] != "bronze" {
		t.Errorf("tenants = %v, want vip->gold (file) and batch->bronze (flag)", tc.Tenants)
	}

	bad := []options{
		{tenantClasses: multiFlag{"gold:weight=x"}},                // malformed spec
		{tenantAssign: multiFlag{"vip=nosuch"}},                    // unknown class
		{tenantAssign: multiFlag{"not-an-assignment"}},             // missing =
		{tenantClasses: multiFlag{"gold"}, defaultClass: "nosuch"}, // undefined default
		{tenantConfig: filepath.Join(t.TempDir(), "absent.json")},  // unreadable file
	}
	for i, o := range bad {
		if _, err := tenancyFor(o); err == nil {
			t.Errorf("bad options %d accepted: %+v", i, o)
		}
	}
}

// TestServeWithTenancy boots the daemon with tenancy flags and checks a
// tenant-attributed request lands in its configured class end to end.
func TestServeWithTenancy(t *testing.T) {
	o := options{
		queue:         8,
		cacheSize:     256,
		timeout:       2 * time.Second,
		drain:         5 * time.Second,
		seed:          2002,
		tenantClasses: multiFlag{"gold:weight=8,queue=16"},
		tenantAssign:  multiFlag{"vip=gold"},
	}
	base, stop, done, _ := bootServe(t, o)
	defer func() {
		stop <- syscall.SIGTERM
		<-done
	}()

	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	ddg := irtext.String(k.Build(4))
	req, err := http.NewRequest(http.MethodPost, base+"/schedule?machine=vliw4", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Schedd-Tenant", "vip")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tenant request: %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"tenant": "vip"`) || !strings.Contains(string(body), `"class": "gold"`) {
		t.Fatalf("response not attributed to vip/gold: %.300s", body)
	}

	sresp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	sbody, _ := io.ReadAll(sresp.Body)
	sresp.Body.Close()
	var st struct {
		Admission struct {
			Tenants []struct {
				Tenant    string `json:"tenant"`
				Class     string `json:"class"`
				Completed uint64 `json:"completed"`
			} `json:"tenants"`
		} `json:"admission"`
	}
	if err := json.Unmarshal(sbody, &st); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	for _, ten := range st.Admission.Tenants {
		if ten.Tenant == "vip" && ten.Class == "gold" && ten.Completed == 1 {
			return
		}
	}
	t.Fatalf("stats do not attribute the request to vip/gold: %s", sbody)
}
