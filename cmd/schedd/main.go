// Command schedd runs the scheduling service: an HTTP daemon that accepts
// dependence graphs in irtext form on POST /schedule and answers with
// verified schedules computed through the resilient engine.
//
// Usage:
//
//	schedd -addr :8745 [-queue 64] [-rate 200] [-burst 400] [-timeout 2s]
//	schedd -store-dir /var/lib/schedd             # crash-safe warm restarts
//	schedd -chaos pass-panic -chaos-seed 7        # resilience-testing mode
//	schedd -debug-addr 127.0.0.1:8746             # net/http/pprof, private port
//
// The daemon is built for overload and partial failure, not just the happy
// path: admission control sheds excess work with 429 + Retry-After, request
// deadlines propagate into the scheduler and cancel doomed work, per-rung
// circuit breakers stop paying for persistently failing schedulers, and
// SIGTERM/SIGINT trigger a graceful drain — in-flight requests finish (up to
// -drain), new work gets 503, and a final stats snapshot is logged before
// exit.
//
// With -store-dir the schedule cache is backed by a crash-safe persistent
// store (internal/store): accepted schedules are mirrored to a CRC-framed
// WAL behind the serving path, and a restarted daemon replays them through
// the legality gate to come up with a warm cache. /readyz answers 503
// "starting" until the replay completes; recovery counters appear in
// /stats under engine.Persist.
//
// Endpoints:
//
//	POST /schedule?machine=raw16[&scheduler=convergent][&seed=N][&deadline=500ms][&trace=1]
//	GET  /healthz   liveness  (200 while the process runs, even draining)
//	GET  /readyz    readiness (503 while starting, draining, or queue-full)
//	GET  /stats     JSON counters: engine cache, admission, breakers, metrics
//	GET  /metrics   Prometheus text format (servable during drain)
//
// With ?trace=1 the response carries a "trace" section: per-pass preference
// weight deltas, per-rung attempt outcomes, the cache lookup path, and any
// breaker transitions the request observed. With -debug-addr the standard
// net/http/pprof endpoints are served on a second, private listener.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/robust"
	"repro/internal/server"
)

// options collects the daemon's flags.
type options struct {
	addr            string
	debugAddr       string
	queue           int
	workers         int
	rate            float64
	burst           int
	cacheSize       int
	timeout         time.Duration
	drain           time.Duration
	seed            int64
	chaos           string
	chaosSeed       int64
	stall           time.Duration
	breakerFailures int
	breakerCooldown time.Duration

	storeDir           string
	storeEntries       int
	storeSnapshotEvery int
	storeQueue         int
	storeNoSync        bool

	tenantClasses multiFlag // -tenant-class, repeatable
	tenantAssign  multiFlag // -tenant, repeatable
	tenantConfig  string    // -tenant-config JSON file
	defaultClass  string    // -default-class

	shardID    string    // -shard-id
	tenantKeys multiFlag // -tenant-key, repeatable
	keyFile    string    // -tenant-keys JSON file

	peerKey     string        // -peer-key
	peerTimeout time.Duration // -peer-timeout
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

// keysFor merges the API-key flags into one KeySet: the -tenant-keys file
// first, then repeatable -tenant-key specs layered on top.
func keysFor(o options) (server.KeySet, error) {
	var ks server.KeySet
	if o.keyFile != "" {
		var err error
		if ks, err = server.LoadKeyFile(o.keyFile); err != nil {
			return nil, err
		}
	}
	for _, spec := range o.tenantKeys {
		t, k, err := server.ParseKeySpec(spec)
		if err != nil {
			return nil, err
		}
		if ks == nil {
			ks = make(server.KeySet)
		}
		ks[t] = k
	}
	return ks, nil
}

// tenancyFor merges the tenant-QoS flags into one validated config: the
// -tenant-config file first, then repeatable -tenant-class / -tenant flags
// layered on top (a flag class with the name of a file class replaces it).
func tenancyFor(o options) (server.TenantConfig, error) {
	var tc server.TenantConfig
	if o.tenantConfig != "" {
		var err error
		if tc, err = server.LoadTenantConfig(o.tenantConfig); err != nil {
			return tc, err
		}
	}
	for _, spec := range o.tenantClasses {
		c, err := server.ParseClassSpec(spec)
		if err != nil {
			return tc, err
		}
		replaced := false
		for i := range tc.Classes {
			if tc.Classes[i].Name == c.Name {
				tc.Classes[i], replaced = c, true
			}
		}
		if !replaced {
			tc.Classes = append(tc.Classes, c)
		}
	}
	for _, spec := range o.tenantAssign {
		t, cl, err := server.ParseTenantAssignment(spec)
		if err != nil {
			return tc, err
		}
		if tc.Tenants == nil {
			tc.Tenants = make(map[string]string)
		}
		tc.Tenants[t] = cl
	}
	if o.defaultClass != "" {
		tc.DefaultClass = o.defaultClass
	}
	if err := server.ValidateTenancy(tc); err != nil {
		return tc, err
	}
	return tc, nil
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8745", "listen address")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve net/http/pprof on this separate address (empty disables; keep it private)")
	flag.IntVar(&o.queue, "queue", 64, "max admitted-but-unfinished requests; beyond this, shed with 429")
	flag.IntVar(&o.workers, "j", 0, "max concurrently scheduling requests (0 = queue bound)")
	flag.Float64Var(&o.rate, "rate", 0, "token-bucket admission rate per second (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 0, "token-bucket burst (0 = 2x rate)")
	flag.IntVar(&o.cacheSize, "cache-size", 256, "schedule-cache entries (negative disables memoization)")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "default per-attempt rung budget when the request sets no deadline")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Int64Var(&o.seed, "seed", 2002, "default noise seed for the convergent scheduler")
	flag.StringVar(&o.chaos, "chaos", "", "inject this fault class into every request's ladder (resilience testing)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the injected fault")
	flag.DurationVar(&o.stall, "stall", 0, "stall duration for time-based chaos classes")
	flag.IntVar(&o.breakerFailures, "breaker-failures", 0, "consecutive rung failures before its breaker opens (0 = default)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "initial breaker cooldown before a half-open probe (0 = default)")
	flag.Var(&o.tenantClasses, "tenant-class", "define a QoS class, e.g. gold:weight=8,queue=32,rate=200,burst=400,inflight=16 (repeatable)")
	flag.Var(&o.tenantAssign, "tenant", "assign a tenant to a class, e.g. acme=gold (repeatable)")
	flag.StringVar(&o.tenantConfig, "tenant-config", "", "JSON file with {classes, tenants, defaultClass}")
	flag.StringVar(&o.defaultClass, "default-class", "", "class serving unknown tenants and requests without X-Schedd-Tenant")
	flag.StringVar(&o.shardID, "shard-id", "", "name this instance in a schedgw cluster; rides responses as the shard field and X-Schedd-Shard")
	flag.StringVar(&o.peerKey, "peer-key", "", "shared cluster secret enabling the /cache peer-handoff API and peer lookup before compute")
	flag.DurationVar(&o.peerTimeout, "peer-timeout", 0, "budget for one peer cache fetch before computing locally (0 = 750ms)")
	flag.Var(&o.tenantKeys, "tenant-key", "require this tenant to present its API key, e.g. acme=s3cret (repeatable; any key enables auth)")
	flag.StringVar(&o.keyFile, "tenant-keys", "", "JSON file of {\"tenant\": \"secret\"} API keys")
	flag.StringVar(&o.storeDir, "store-dir", "", "persist the schedule cache in this directory and warm-restart from it")
	flag.IntVar(&o.storeEntries, "store-entries", 8192, "max entries retained in the persistent store")
	flag.IntVar(&o.storeSnapshotEvery, "store-snapshot-every", 1024, "WAL appends between snapshot compactions")
	flag.IntVar(&o.storeQueue, "store-queue", 256, "write-behind flush queue length (full queue drops entries, counted)")
	flag.BoolVar(&o.storeNoSync, "store-nosync", false, "skip store fsyncs (crash-unsafe; benchmarking only)")
	chaosList := flag.Bool("chaos-list", false, "list chaos classes and exit")
	flag.Parse()

	if *chaosList {
		fmt.Println(strings.Join(faultinject.Classes(), "\n"))
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// debugMux builds the pprof handler set on a private mux rather than
// blank-importing net/http/pprof, which would mutate http.DefaultServeMux
// for the whole process.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// validateStoreFlags rejects store configurations that could only fail
// later, before the listener is up: non-positive sizes, a store directory
// whose parent does not exist (a typo, not a fresh deployment), and a store
// without memoization to persist. A second daemon on the same -store-dir is
// caught at open time by the store's lockfile.
func validateStoreFlags(o options) error {
	if o.storeDir == "" {
		return nil
	}
	if o.cacheSize < 0 {
		return errors.New("-store-dir requires memoization; it cannot be combined with a negative -cache-size")
	}
	if o.storeEntries <= 0 {
		return fmt.Errorf("-store-entries must be positive, got %d", o.storeEntries)
	}
	if o.storeSnapshotEvery <= 0 {
		return fmt.Errorf("-store-snapshot-every must be positive, got %d", o.storeSnapshotEvery)
	}
	if o.storeQueue <= 0 {
		return fmt.Errorf("-store-queue must be positive, got %d", o.storeQueue)
	}
	parent := filepath.Dir(filepath.Clean(o.storeDir))
	if st, err := os.Stat(parent); err != nil || !st.IsDir() {
		return fmt.Errorf("-store-dir parent %s does not exist", parent)
	}
	return nil
}

// run builds the service, serves until a termination signal, then drains.
func run(o options) error {
	if err := validateStoreFlags(o); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	return serve(o, ln, sig, log.New(os.Stderr, "schedd: ", log.LstdFlags))
}

// serve runs the service on ln until stop delivers, then drains. Split from
// run so tests can drive it with their own listener and stop channel.
func serve(o options, ln net.Listener, stop <-chan os.Signal, logger *log.Logger) error {
	tenancy, err := tenancyFor(o)
	if err != nil {
		return err
	}
	keys, err := keysFor(o)
	if err != nil {
		return err
	}
	cfg := server.Config{
		Tenancy:        tenancy,
		ShardID:        o.shardID,
		TenantKeys:     keys,
		PeerKey:        o.peerKey,
		PeerTimeout:    o.peerTimeout,
		Workers:        o.workers,
		MaxQueue:       o.queue,
		RatePerSec:     o.rate,
		Burst:          o.burst,
		CacheSize:      o.cacheSize,
		DefaultTimeout: o.timeout,
		Seed:           o.seed,
		Breakers: robust.BreakerPolicy{
			Failures: o.breakerFailures,
			Cooldown: o.breakerCooldown,
		},
		StoreDir:           o.storeDir,
		StoreQueueLen:      o.storeQueue,
		StoreSnapshotEvery: o.storeSnapshotEvery,
		StoreMaxEntries:    o.storeEntries,
		StoreNoFsync:       o.storeNoSync,
		Logf:               logger.Printf,
	}
	if o.chaos != "" {
		cfg.Chaos = &faultinject.Chaos{Class: o.chaos, Seed: o.chaosSeed, Stall: o.stall}
		logger.Printf("chaos mode: injecting %s (seed %d) into every ladder", o.chaos, o.chaosSeed)
	}
	s := server.New(cfg)
	// Open before announcing the listener: a held lockfile (another daemon on
	// the same -store-dir) or an unusable directory is a refusal to start,
	// while the recovery replay itself runs behind /readyz.
	if err := s.OpenStore(); err != nil {
		return fmt.Errorf("store %s: %w", o.storeDir, err)
	}
	if o.storeDir != "" {
		logger.Printf("persistent store at %s (entries %d, snapshot every %d); recovering",
			o.storeDir, o.storeEntries, o.storeSnapshotEvery)
	}

	hs := &http.Server{Handler: s.Handler()}
	logger.Printf("listening on %s (queue %d, rate %.0f/s, timeout %s)",
		ln.Addr(), o.queue, o.rate, o.timeout)
	if len(tenancy.Classes) > 0 {
		for _, c := range tenancy.Classes {
			logger.Printf("tenant class %s: weight=%d queue=%d rate=%.0f/s inflight=%d",
				c.Name, c.Weight, c.MaxQueue, c.RatePerSec, c.MaxInflight)
		}
		def := tenancy.DefaultClass
		if def == "" {
			def = server.DefaultClassName
		}
		logger.Printf("tenancy: %d assigned tenants, default class %q", len(tenancy.Tenants), def)
	}
	if len(keys) > 0 {
		logger.Printf("tenant auth: %d API keys registered; identity claims require %s", len(keys), server.TenantKeyHeader)
	}
	if o.shardID != "" {
		logger.Printf("shard identity: %s", o.shardID)
	}
	if o.peerKey != "" {
		logger.Printf("peer cache handoff enabled (/cache API and peer lookup before compute)")
	}

	// Profiling stays off the service port: pprof handlers leak internals and
	// must never be reachable through whatever exposes /schedule. A failure to
	// bind the debug address is a refusal to start, not a silent degradation.
	var ds *http.Server
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener %s: %v", o.debugAddr, err)
		}
		ds = &http.Server{Handler: debugMux()}
		logger.Printf("pprof on %s/debug/pprof/ (keep this address private)", dln.Addr())
		go func() {
			if err := ds.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("debug server: %v", err)
			}
		}()
	}

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case got := <-stop:
		logger.Printf("%s: draining (budget %s)", got, o.drain)
	}

	// Drain order matters: mark draining first so new requests get 503
	// immediately, wait for in-flight work, then close the listener. The
	// HTTP shutdown gets the same deadline as the drain.
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if ds != nil {
		// A profile capture in progress is not worth blocking the drain for.
		if err := ds.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			logger.Printf("debug shutdown: %v", err)
		}
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	logger.Printf("drained cleanly")
	return nil
}
