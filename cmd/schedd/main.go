// Command schedd runs the scheduling service: an HTTP daemon that accepts
// dependence graphs in irtext form on POST /schedule and answers with
// verified schedules computed through the resilient engine.
//
// Usage:
//
//	schedd -addr :8745 [-queue 64] [-rate 200] [-burst 400] [-timeout 2s]
//	schedd -chaos pass-panic -chaos-seed 7        # resilience-testing mode
//
// The daemon is built for overload and partial failure, not just the happy
// path: admission control sheds excess work with 429 + Retry-After, request
// deadlines propagate into the scheduler and cancel doomed work, per-rung
// circuit breakers stop paying for persistently failing schedulers, and
// SIGTERM/SIGINT trigger a graceful drain — in-flight requests finish (up to
// -drain), new work gets 503, and a final stats snapshot is logged before
// exit.
//
// Endpoints:
//
//	POST /schedule?machine=raw16[&scheduler=convergent][&seed=N][&deadline=500ms]
//	GET  /healthz   liveness  (200 while the process runs, even draining)
//	GET  /readyz    readiness (503 when draining or the queue is full)
//	GET  /stats     JSON counters: engine cache, admission, breakers
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/faultinject"
	"repro/internal/robust"
	"repro/internal/server"
)

// options collects the daemon's flags.
type options struct {
	addr            string
	queue           int
	workers         int
	rate            float64
	burst           int
	cacheSize       int
	timeout         time.Duration
	drain           time.Duration
	seed            int64
	chaos           string
	chaosSeed       int64
	stall           time.Duration
	breakerFailures int
	breakerCooldown time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8745", "listen address")
	flag.IntVar(&o.queue, "queue", 64, "max admitted-but-unfinished requests; beyond this, shed with 429")
	flag.IntVar(&o.workers, "j", 0, "max concurrently scheduling requests (0 = queue bound)")
	flag.Float64Var(&o.rate, "rate", 0, "token-bucket admission rate per second (0 = unlimited)")
	flag.IntVar(&o.burst, "burst", 0, "token-bucket burst (0 = 2x rate)")
	flag.IntVar(&o.cacheSize, "cache-size", 256, "schedule-cache entries (negative disables memoization)")
	flag.DurationVar(&o.timeout, "timeout", 2*time.Second, "default per-attempt rung budget when the request sets no deadline")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.Int64Var(&o.seed, "seed", 2002, "default noise seed for the convergent scheduler")
	flag.StringVar(&o.chaos, "chaos", "", "inject this fault class into every request's ladder (resilience testing)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the injected fault")
	flag.DurationVar(&o.stall, "stall", 0, "stall duration for time-based chaos classes")
	flag.IntVar(&o.breakerFailures, "breaker-failures", 0, "consecutive rung failures before its breaker opens (0 = default)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "initial breaker cooldown before a half-open probe (0 = default)")
	chaosList := flag.Bool("chaos-list", false, "list chaos classes and exit")
	flag.Parse()

	if *chaosList {
		fmt.Println(strings.Join(faultinject.Classes(), "\n"))
		return
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

// run builds the service, serves until a termination signal, then drains.
func run(o options) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	return serve(o, ln, sig, log.New(os.Stderr, "schedd: ", log.LstdFlags))
}

// serve runs the service on ln until stop delivers, then drains. Split from
// run so tests can drive it with their own listener and stop channel.
func serve(o options, ln net.Listener, stop <-chan os.Signal, logger *log.Logger) error {
	cfg := server.Config{
		Workers:        o.workers,
		MaxQueue:       o.queue,
		RatePerSec:     o.rate,
		Burst:          o.burst,
		CacheSize:      o.cacheSize,
		DefaultTimeout: o.timeout,
		Seed:           o.seed,
		Breakers: robust.BreakerPolicy{
			Failures: o.breakerFailures,
			Cooldown: o.breakerCooldown,
		},
		Logf: logger.Printf,
	}
	if o.chaos != "" {
		cfg.Chaos = &faultinject.Chaos{Class: o.chaos, Seed: o.chaosSeed, Stall: o.stall}
		logger.Printf("chaos mode: injecting %s (seed %d) into every ladder", o.chaos, o.chaosSeed)
	}
	s := server.New(cfg)

	hs := &http.Server{Handler: s.Handler()}
	logger.Printf("listening on %s (queue %d, rate %.0f/s, timeout %s)",
		ln.Addr(), o.queue, o.rate, o.timeout)

	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case got := <-stop:
		logger.Printf("%s: draining (budget %s)", got, o.drain)
	}

	// Drain order matters: mark draining first so new requests get 503
	// immediately, wait for in-flight work, then close the listener. The
	// HTTP shutdown gets the same deadline as the drain.
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	logger.Printf("drained cleanly")
	return nil
}
