package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const collatz = `
fn collatz
out steps
block 0
  n = const 27
  steps = const 0
  one = const 1
  two = const 2
  three = const 3
  jump 1
block 1
  odd = and n one
  branch odd 2 3
block 2
  n = mul n three
  n = add n one
  jump 4
block 3
  n = div n two
  jump 4
block 4
  steps = add steps one
  cont = seq n one
  branch cont 5 1
block 5
  ret
`

func writeProgram(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.cfg")
	if err := os.WriteFile(path, []byte(collatz), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), ferr
}

func TestRunAllSchedulersAndPolicies(t *testing.T) {
	path := writeProgram(t)
	for _, sched := range []string{"convergent", "rawcc", "uas", "pcc", "list"} {
		for _, pol := range []string{"firstcluster", "roundrobin"} {
			out, err := capture(t, func() error {
				return run("raw4", sched, pol, false, false, 100000, 2002, []string{path})
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", sched, pol, err)
			}
			if !strings.Contains(out, "output steps = 111") {
				t.Errorf("%s/%s: wrong answer:\n%s", sched, pol, out)
			}
		}
	}
}

func TestRunTransforms(t *testing.T) {
	path := writeProgram(t)
	out, err := capture(t, func() error {
		return run("vliw4", "uas", "roundrobin", true, true, 100000, 1, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "output steps = 111") {
		t.Errorf("transforms broke the program:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeProgram(t)
	if _, err := capture(t, func() error {
		return run("gpu1", "uas", "roundrobin", false, false, 100, 1, []string{path})
	}); err == nil {
		t.Error("bad machine accepted")
	}
	if _, err := capture(t, func() error {
		return run("raw4", "magic", "roundrobin", false, false, 100, 1, []string{path})
	}); err == nil {
		t.Error("bad scheduler accepted")
	}
	if _, err := capture(t, func() error {
		return run("raw4", "uas", "somewhere", false, false, 100, 1, []string{path})
	}); err == nil {
		t.Error("bad policy accepted")
	}
	if _, err := capture(t, func() error {
		return run("raw4", "uas", "roundrobin", false, false, 100, 1, []string{"/nonexistent"})
	}); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := capture(t, func() error {
		return run("raw4", "uas", "roundrobin", false, false, 3, 1, []string{path})
	}); err == nil {
		t.Error("tiny maxsteps accepted (program needs hundreds of blocks)")
	}
}
