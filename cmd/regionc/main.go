// Command regionc compiles and runs a whole control-flow program (.cfg
// text format, see internal/region.ParseFn) for a spatial machine: every
// basic block becomes a scheduling unit, cross-region values become
// preplaced memory cells, and the compiled program executes with its
// branch directions coming out of the scheduled code.
//
// Usage:
//
//	regionc -machine raw4 -scheduler convergent -policy roundrobin prog.cfg
//	regionc -ifconvert -superblocks prog.cfg     # unit-enlarging transforms
//
// Output: the trace structure, per-block schedule lengths, total dynamic
// cycles, and the final value of every declared output — all verified
// against the region-level interpreter.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/region"
	"repro/internal/schedule"
)

func main() {
	machineName := flag.String("machine", "raw4", "target machine (rawN or vliwN)")
	scheduler := flag.String("scheduler", "convergent", "convergent|rawcc|uas|pcc|list")
	policy := flag.String("policy", "roundrobin", "cross-region value placement: firstcluster|roundrobin")
	ifconvert := flag.Bool("ifconvert", false, "if-convert diamonds/triangles before compiling")
	superblocks := flag.Bool("superblocks", false, "tail-duplicate side entrances before compiling")
	maxSteps := flag.Int("maxsteps", 100000, "dynamic block-execution bound")
	seed := flag.Int64("seed", 2002, "convergent noise seed")
	flag.Parse()

	if err := run(*machineName, *scheduler, *policy, *ifconvert, *superblocks, *maxSteps, *seed, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "regionc:", err)
		os.Exit(1)
	}
}

func schedulerByName(name string, seed int64) (region.Scheduler, error) {
	switch name {
	case "convergent":
		return func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			s, _, err := core.Schedule(g, m, passes.ForMachine(m.Name), seed)
			return s, err
		}, nil
	case "rawcc":
		return func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return rawcc.Schedule(g, m)
		}, nil
	case "uas":
		return func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return uas.Schedule(g, m)
		}, nil
	case "pcc":
		return func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return pcc.Schedule(g, m, pcc.Options{})
		}, nil
	case "list":
		return func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			assign := make([]int, g.Len())
			for i, in := range g.Instrs {
				if in.Preplaced() {
					assign[i] = in.Home
				} else if in.Op.IsMemory() {
					assign[i] = m.BankOwner(in.Bank)
				}
			}
			return listsched.Run(g, m, listsched.Options{Assignment: assign})
		}, nil
	}
	return nil, fmt.Errorf("unknown scheduler %q", name)
}

func run(machineName, scheduler, policy string, ifconvert, superblocks bool, maxSteps int, seed int64, args []string) error {
	m, err := machine.Named(machineName)
	if err != nil {
		return err
	}
	var f *region.Fn
	switch len(args) {
	case 0:
		f, err = region.ParseFn(os.Stdin)
	case 1:
		file, oerr := os.Open(args[0])
		if oerr != nil {
			return oerr
		}
		defer file.Close()
		f, err = region.ParseFn(file)
	default:
		return fmt.Errorf("want at most one input file")
	}
	if err != nil {
		return err
	}
	if err := f.SetProfile(maxSteps); err != nil {
		return err
	}
	if ifconvert {
		n := region.IfConvert(f)
		fmt.Printf("if-converted %d branch patterns\n", n)
	}
	if superblocks {
		n := region.FormSuperblocks(f)
		fmt.Printf("tail-duplicated %d blocks\n", n)
		if err := f.SetProfile(maxSteps); err != nil {
			return err
		}
	}
	fmt.Printf("%s: %d blocks, %d variables\n", f.Name, len(f.Blocks), len(f.Vars))
	for _, tr := range f.Traces() {
		fmt.Printf("  trace %v (weight %d)\n", tr.Blocks, tr.Count)
	}

	var pol region.HomePolicy
	switch policy {
	case "firstcluster":
		pol = region.FirstCluster
	case "roundrobin":
		pol = region.RoundRobin
	default:
		return fmt.Errorf("unknown policy %q", policy)
	}
	sched, err := schedulerByName(scheduler, seed)
	if err != nil {
		return err
	}
	c, err := region.Compile(f, m, pol, sched)
	if err != nil {
		return err
	}
	fmt.Printf("\nper-block schedules on %s (%s):\n", m.Name, scheduler)
	for bid, unit := range c.Units {
		fmt.Printf("  block %d: %3d instrs, %4d cycles, %3d comms (ran %dx)\n",
			bid, unit.Graph.Len(), unit.Sched.Length(), unit.Sched.CommCount(), f.Blocks[bid].Count)
	}
	ex, err := c.VerifyAgainstInterpreter(maxSteps)
	if err != nil {
		return err
	}
	fmt.Printf("\ntotal dynamic cycles: %d (verified against the interpreter)\n", ex.Cycles)
	for _, v := range f.Outputs {
		val := ex.Memory.Load(c.Layout.Home[v], c.Layout.Addr(v))
		fmt.Printf("output %s = %s\n", f.Vars[v], val)
	}
	return nil
}
