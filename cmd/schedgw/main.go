// Command schedgw runs the cluster gateway: a routing tier that spreads
// /schedule requests across a fleet of schedd shards by consistent-hashing
// each request's canonical graph fingerprint, so the shards' content-
// addressed schedule caches partition naturally — isomorphic graphs always
// land on the same shard's warm cache.
//
// Usage:
//
//	schedgw -addr :8744 -shard 127.0.0.1:8745 -shard 127.0.0.1:8746 -shard 127.0.0.1:8747
//	schedgw -hedge-after 50ms                 # fixed hedge budget (default: adaptive p95)
//	schedgw -quorum 2                         # ring routing needs this many alive shards
//	schedgw -tenant-key acme=s3cret           # verify tenant identity at the edge
//
// Robustness is the point of the daemon: every shard's /readyz is probed
// continuously and fed into per-shard circuit breakers; a request whose
// primary shard is slow gets a hedged second attempt at the next shard on
// the ring (first deliverable answer wins, the loser is cancelled);
// connection errors fail over around the ring with bounded full-jitter
// retry; and when the fleet drops below quorum the gateway keeps serving by
// routing to any alive shard. A SIGKILLed shard costs its keyspace segment
// for about one probe interval; when it warm-restarts and answers /readyz,
// the same segment routes back to its replayed warm cache.
//
// Endpoints:
//
//	POST /schedule?...   proxied to the owning shard; same API as schedd
//	GET  /healthz        liveness (200 while the process runs)
//	GET  /readyz         readiness (503 while draining, below quorum, or no shard alive)
//	GET  /stats          JSON counters: routing, hedging, membership, per-shard health
//	GET  /metrics        Prometheus text format (schedgw_* families)
//
// With -admin-key set, live membership (authenticated by X-Schedgw-Admin-Key):
//
//	GET    /admin/shards        signed membership document (epoch, shards, quorum)
//	POST   /admin/shards        join a shard: {"addr": "host:port", "epoch": N}
//	DELETE /admin/shards/{id}   graceful leave; pushes hot cache entries to new owners
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/robust"
	"repro/internal/server"
)

// options collects the daemon's flags.
type options struct {
	addr         string
	shards       multiFlag
	replicas     int
	quorum       int
	hedgeAfter   time.Duration
	hedgeMin     time.Duration
	hedgeMax     time.Duration
	maxRetries   int
	retryBase    time.Duration
	probeEvery   time.Duration
	probeTimeout time.Duration
	drain        time.Duration

	breakerFailures int
	breakerCooldown time.Duration

	tenantKeys multiFlag
	keyFile    string

	adminKey   string
	peerKey    string
	rebalanceK int
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8744", "listen address")
	flag.Var(&o.shards, "shard", "schedd backend address, host:port (repeatable; at least one)")
	flag.IntVar(&o.replicas, "replicas", 0, "virtual nodes per shard on the hash ring (0 = default 64)")
	flag.IntVar(&o.quorum, "quorum", 0, "alive shards required for ring routing; below it, any-alive-shard mode (0 = majority)")
	flag.DurationVar(&o.hedgeAfter, "hedge-after", 0, "fixed hedge budget before a second attempt fires (0 = adaptive p95)")
	flag.DurationVar(&o.hedgeMin, "hedge-min", 0, "lower clamp on the adaptive hedge budget (0 = 25ms)")
	flag.DurationVar(&o.hedgeMax, "hedge-max", 0, "upper clamp on the adaptive hedge budget (0 = 2s)")
	flag.IntVar(&o.maxRetries, "max-retries", 0, "full-jitter retry passes after connection errors (0 = default 2, negative disables)")
	flag.DurationVar(&o.retryBase, "retry-base", 0, "backoff base for retry passes (0 = 25ms)")
	flag.DurationVar(&o.probeEvery, "probe-every", 0, "/readyz probe interval per shard (0 = 250ms)")
	flag.DurationVar(&o.probeTimeout, "probe-timeout", 0, "per-probe timeout (0 = 1s)")
	flag.DurationVar(&o.drain, "drain", 10*time.Second, "graceful-shutdown budget for in-flight requests")
	flag.IntVar(&o.breakerFailures, "breaker-failures", 0, "retryable outcomes before a shard's breaker opens (0 = default)")
	flag.DurationVar(&o.breakerCooldown, "breaker-cooldown", 0, "initial breaker cooldown before a half-open probe (0 = default)")
	flag.Var(&o.tenantKeys, "tenant-key", "verify this tenant's API key at the edge, e.g. acme=s3cret (repeatable)")
	flag.StringVar(&o.keyFile, "tenant-keys", "", "JSON file of {\"tenant\": \"secret\"} API keys")
	flag.StringVar(&o.adminKey, "admin-key", "", "secret enabling the live-membership admin API (/admin/shards); empty disables it")
	flag.StringVar(&o.peerKey, "peer-key", "", "shared cluster secret for shard cache handoff; must match the shards' -peer-key")
	flag.IntVar(&o.rebalanceK, "rebalance-k", 0, "hottest cache records pushed to new owners on graceful leave (0 = default 32)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "schedgw:", err)
		os.Exit(1)
	}
}

// keysFor merges the API-key flags, file first then repeatable specs on top.
func keysFor(o options) (server.KeySet, error) {
	var ks server.KeySet
	if o.keyFile != "" {
		var err error
		if ks, err = server.LoadKeyFile(o.keyFile); err != nil {
			return nil, err
		}
	}
	for _, spec := range o.tenantKeys {
		t, k, err := server.ParseKeySpec(spec)
		if err != nil {
			return nil, err
		}
		if ks == nil {
			ks = make(server.KeySet)
		}
		ks[t] = k
	}
	return ks, nil
}

// run builds the gateway, serves until a termination signal, then drains.
func run(o options) error {
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	return serve(o, ln, sig, log.New(os.Stderr, "schedgw: ", log.LstdFlags))
}

// serve runs the gateway on ln until stop delivers, then drains. Split from
// run so tests can drive it with their own listener and stop channel.
func serve(o options, ln net.Listener, stop <-chan os.Signal, logger *log.Logger) error {
	keys, err := keysFor(o)
	if err != nil {
		return err
	}
	g, err := cluster.NewGateway(cluster.Config{
		Shards:       o.shards,
		Replicas:     o.replicas,
		Quorum:       o.quorum,
		HedgeAfter:   o.hedgeAfter,
		HedgeMin:     o.hedgeMin,
		HedgeMax:     o.hedgeMax,
		MaxRetries:   o.maxRetries,
		RetryBase:    o.retryBase,
		ProbeEvery:   o.probeEvery,
		ProbeTimeout: o.probeTimeout,
		Breakers: robust.BreakerPolicy{
			Failures: o.breakerFailures,
			Cooldown: o.breakerCooldown,
		},
		Keys:       keys,
		AdminKey:   o.adminKey,
		PeerKey:    o.peerKey,
		RebalanceK: o.rebalanceK,
		Logf:       logger.Printf,
	})
	if err != nil {
		return err
	}
	g.Start()
	logger.Printf("listening on %s, routing over %d shards (quorum %d)", ln.Addr(), len(o.shards), g.StatsSnapshot().Quorum)
	if len(keys) > 0 {
		logger.Printf("tenant auth at the edge: %d API keys registered", len(keys))
	}

	hs := &http.Server{Handler: g.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case got := <-stop:
		logger.Printf("%s: draining (budget %s)", got, o.drain)
	}

	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	drainErr := g.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("http shutdown: %v", err)
	}
	if drainErr != nil {
		return fmt.Errorf("drain incomplete: %w", drainErr)
	}
	logger.Printf("drained cleanly")
	return nil
}
