package main

import (
	"bytes"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/irtext"
	"repro/internal/server"
)

// TestKeysForMergesFileAndFlags: repeatable -tenant-key specs override the
// -tenant-keys file, and bad specs fail loudly.
func TestKeysForMergesFileAndFlags(t *testing.T) {
	path := filepath.Join(t.TempDir(), "keys.json")
	if err := os.WriteFile(path, []byte(`{"acme": "from-file", "beta": "b2"}`), 0o600); err != nil {
		t.Fatal(err)
	}
	ks, err := keysFor(options{keyFile: path, tenantKeys: multiFlag{"acme=from-flag", "gamma=g3"}})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"acme": "from-flag", "beta": "b2", "gamma": "g3"}
	if len(ks) != len(want) {
		t.Fatalf("got %d keys, want %d: %v", len(ks), len(want), ks)
	}
	for tenant, key := range want {
		if ks[tenant] != key {
			t.Errorf("keys[%q] = %q, want %q", tenant, ks[tenant], key)
		}
	}
	if _, err := keysFor(options{tenantKeys: multiFlag{"no-equals-sign"}}); err == nil {
		t.Error("malformed key spec accepted")
	}
	if ks, err := keysFor(options{}); err != nil || len(ks) != 0 {
		t.Errorf("empty options: keys=%v err=%v", ks, err)
	}
}

// TestServeLifecycle boots the daemon against a real in-process shard,
// routes one request end to end, and drains it with a SIGTERM.
func TestServeLifecycle(t *testing.T) {
	shard := httptest.NewServer(server.New(server.Config{Seed: 2002, ShardID: "s1"}).Handler())
	defer shard.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	o := options{
		shards:     multiFlag{strings.TrimPrefix(shard.URL, "http://")},
		probeEvery: 20 * time.Millisecond,
		drain:      5 * time.Second,
	}
	stop := make(chan os.Signal, 1)
	done := make(chan error, 1)
	var logBuf bytes.Buffer
	go func() { done <- serve(o, ln, stop, log.New(&logBuf, "schedgw: ", 0)) }()

	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if resp, err := http.Get(base + "/readyz"); err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never became ready; log:\n%s", logBuf.String())
		}
		time.Sleep(20 * time.Millisecond)
	}

	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	ddg := irtext.String(k.Build(2))
	resp, err := http.Post(base+"/schedule?machine=vliw2", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed request: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Schedgw-Shard"); got != o.shards[0] {
		t.Errorf("X-Schedgw-Shard = %q, want %q", got, o.shards[0])
	}
	if got := resp.Header.Get(server.ShardHeader); got != "s1" {
		t.Errorf("%s = %q, want s1", server.ShardHeader, got)
	}

	stop <- syscall.SIGTERM
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve exited with %v; log:\n%s", err, logBuf.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after SIGTERM")
	}
	if !strings.Contains(logBuf.String(), "drained cleanly") {
		t.Errorf("drain not logged:\n%s", logBuf.String())
	}
}

// TestServeRejectsBadConfig: a shardless gateway is a startup error, not a
// daemon that routes nothing.
func TestServeRejectsBadConfig(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := serve(options{}, ln, make(chan os.Signal), log.New(io.Discard, "", 0)); err == nil {
		t.Fatal("serve accepted a config with no shards")
	}
}
