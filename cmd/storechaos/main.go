// Command storechaos corrupts a recorded schedule-store directory the way
// crashes and bit rot do, deterministically under a seed. It exists for
// crash-recovery testing: populate a store (schedd -store-dir or convsched
// -store-dir), kill the writer, run storechaos against the directory, and
// the restarted process must come up ready and serve only legal schedules.
//
// Usage:
//
//	storechaos -dir /var/lib/schedd -class disk-bitflip [-seed 1]
//	storechaos -list
//
// Classes: disk-torn-write (shear the WAL tail), disk-truncate (cut a WAL at
// a random offset), disk-bitflip (flip one bit in a WAL or snapshot),
// disk-stale-snapshot (delete the newest snapshot). The online-only classes
// (disk-enospc, disk-fsync-fail) are listed but refused here; they inject at
// the store's filesystem seam instead.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/faultinject"
)

func main() {
	dir := flag.String("dir", "", "store directory to corrupt")
	class := flag.String("class", "", "disk chaos class to apply (see -list)")
	seed := flag.Int64("seed", 1, "seed for offset and bit choices")
	list := flag.Bool("list", false, "list disk chaos classes and exit")
	flag.Parse()

	if err := run(*dir, *class, *seed, *list, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "storechaos:", err)
		os.Exit(1)
	}
}

func run(dir, class string, seed int64, list bool, out io.Writer) error {
	if list {
		fmt.Fprintln(out, strings.Join(faultinject.DiskClasses(), "\n"))
		return nil
	}
	if dir == "" || class == "" {
		return fmt.Errorf("-dir and -class are required (see -list)")
	}
	desc, err := faultinject.CorruptStore(dir, class, seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(out, desc)
	return nil
}
