package main

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/schedule"
	"repro/internal/store"
)

func TestListPrintsEveryClass(t *testing.T) {
	var out bytes.Buffer
	if err := run("", "", 0, true, &out); err != nil {
		t.Fatal(err)
	}
	for _, c := range faultinject.DiskClasses() {
		if !strings.Contains(out.String(), c) {
			t.Errorf("-list output missing %s:\n%s", c, out.String())
		}
	}
}

func TestRequiredFlags(t *testing.T) {
	var out bytes.Buffer
	if err := run("", "", 0, false, &out); err == nil {
		t.Fatal("missing -dir/-class accepted")
	}
	if err := run(t.TempDir(), "disk-nonsense", 0, false, &out); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestCorruptsARecordedStore(t *testing.T) {
	dir := t.TempDir()
	s, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		key := make([]byte, 32)
		copy(key, fmt.Sprintf("key-%026d", i))
		if err := s.Append(&store.Record{
			Key: key, Machine: "raw4", Graph: []byte("g"),
			Placements: []schedule.Placement{{Start: i, Latency: 1}},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run(dir, faultinject.DiskBitFlip, 7, false, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "flipped bit") {
		t.Fatalf("no corruption report:\n%s", out.String())
	}
}
