package main

import (
	"os"
	"strings"
	"testing"
	"time"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := new(strings.Builder)
		b := make([]byte, 1<<16)
		for {
			n, err := r.Read(b)
			buf.Write(b[:n])
			if err != nil {
				break
			}
		}
		done <- buf.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	return out, ferr
}

func TestTable1(t *testing.T) {
	out, err := capture(t, func() error { return run("table1", "100", "vvmul", "", "", 0, time.Second) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"INITTIME", "EMPHCP", "FULOAD"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 missing %s", want)
		}
	}
}

func TestFig9(t *testing.T) {
	out, err := capture(t, func() error { return run("fig9", "100", "vvmul", "", "", 0, time.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NOISE") || !strings.Contains(out, "vvmul") {
		t.Errorf("fig9 output:\n%.400s", out)
	}
}

func TestFig4(t *testing.T) {
	out, err := capture(t, func() error { return run("fig4", "100", "vvmul", "", "", 0, time.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "after NOISE") {
		t.Errorf("fig4 output:\n%.400s", out)
	}
}

func TestFig10SmallSizes(t *testing.T) {
	out, err := capture(t, func() error { return run("fig10", "60,80", "vvmul", "", "", 0, time.Second) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "PCC") || !strings.Contains(out, "60") {
		t.Errorf("fig10 output:\n%.400s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("figZZ", "100", "vvmul", "", "", 0, time.Second) }); err == nil {
		t.Error("unknown experiment accepted")
	}
	if _, err := capture(t, func() error { return run("fig10", "abc", "vvmul", "", "", 0, time.Second) }); err == nil {
		t.Error("bad sizes accepted")
	}
	if _, err := capture(t, func() error { return run("fig10", "1", "vvmul", "", "", 0, time.Second) }); err == nil {
		t.Error("size 1 accepted")
	}
}
