// Command experiments regenerates every table and figure of the paper's
// evaluation section on this repository's substrate.
//
// Usage:
//
//	experiments                 # everything
//	experiments -exp table2     # one experiment
//	experiments -exp fig10 -sizes 100,250,500,1000,2000
//
// Experiments: table1, table2, fig4, fig6, fig7, fig8, fig9, fig10, theta,
// resilience (the chaos sweep: which ladder rung serves under each
// injected fault class), obs (traced scheduling of the whole suite,
// reduced to entropy/settling/latency rows — the BENCH_obs.json artifact:
// experiments -exp obs -obs-out BENCH_obs.json), and oracle (per-kernel
// optimality gaps of the ladder/tuned/baseline schedulers against the
// exact branch-and-bound oracle's certified lower bounds — the
// BENCH_oracle.json artifact: experiments -exp oracle -oracle-out
// BENCH_oracle.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/exp"
	"repro/internal/machine"
	"repro/internal/passes"
)

func main() {
	which := flag.String("exp", "all", "experiment to run: all|table1|table2|fig4|fig6|fig7|fig8|fig9|fig10|theta|resilience|obs|oracle")
	sizes := flag.String("sizes", "100,250,500,1000,2000", "instruction counts for fig10")
	kernels := flag.String("kernels", "vvmul,mxm", "kernels for the resilience sweep")
	timeout := flag.Duration("timeout", 2*time.Second, "per-attempt budget for the resilience sweep")
	jobs := flag.Int("j", 0, "worker-pool width for the batch-scheduled convergent columns (0 = GOMAXPROCS)")
	obsOut := flag.String("obs-out", "", "write the obs experiment's JSON here instead of stdout")
	oracleOut := flag.String("oracle-out", "", "write the oracle experiment's JSON here instead of stdout")
	oracleBudget := flag.Int64("oracle-budget", 0, "oracle node budget per kernel (0 = default)")
	flag.Parse()
	exp.Workers = *jobs

	if err := run(*which, *sizes, *kernels, *obsOut, *oracleOut, *oracleBudget, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(which, sizesArg, kernelsArg, obsOut, oracleOut string, oracleBudget int64, timeout time.Duration) error {
	want := func(name string) bool { return which == "all" || which == name }
	any := false

	if want("table1") {
		any = true
		fmt.Println(exp.RenderTable1())
	}
	if want("table2") || want("fig6") {
		any = true
		rows, err := exp.Table2()
		if err != nil {
			return err
		}
		if want("table2") {
			fmt.Println(exp.RenderTable2(rows))
		}
		if want("fig6") {
			fmt.Println(exp.RenderFig6(rows))
		}
	}
	if want("fig4") {
		any = true
		fmt.Println(exp.RenderFig4())
	}
	if want("fig7") {
		any = true
		rows := exp.Convergence(machine.Raw(16), bench.RawSuite(), passes.RawSequence())
		fmt.Println(exp.RenderConvergence("Figure 7: convergence of spatial assignments on Raw (16 tiles)", rows))
	}
	if want("fig8") {
		any = true
		rows, err := exp.Fig8()
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig8(rows))
	}
	if want("fig9") {
		any = true
		rows := exp.Convergence(machine.Chorus(4), bench.VliwSuite(), passes.VliwSequence())
		fmt.Println(exp.RenderConvergence("Figure 9: convergence of spatial assignments on Chorus (4 clusters)", rows))
	}
	if want("theta") {
		any = true
		rows, err := exp.PCCThetaSweep([]int{4, 8, 16, 32, 64, 128})
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderThetaSweep(rows))
	}
	if want("resilience") {
		any = true
		rows, err := exp.Resilience(
			[]*machine.Model{machine.Raw(16), machine.Chorus(4)},
			strings.Split(kernelsArg, ","),
			timeout,
		)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderResilience(rows))
	}
	if want("fig10") {
		any = true
		var ns []int
		for _, f := range strings.Split(sizesArg, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 2 {
				return fmt.Errorf("bad -sizes entry %q", f)
			}
			ns = append(ns, n)
		}
		rows, err := exp.Fig10(ns)
		if err != nil {
			return err
		}
		fmt.Println(exp.RenderFig10(rows))
	}
	if want("obs") {
		any = true
		sum, err := exp.Obs()
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if obsOut != "" {
			if err := os.WriteFile(obsOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("obs: wrote %d rows to %s\n", len(sum.Rows), obsOut)
		} else {
			os.Stdout.Write(data)
		}
	}
	if want("oracle") {
		any = true
		sum, err := exp.Oracle(oracleBudget, 0)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(sum, "", "  ")
		if err != nil {
			return err
		}
		data = append(data, '\n')
		if oracleOut != "" {
			if err := os.WriteFile(oracleOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("oracle: wrote %d rows to %s (%d proven optimal, ladder gap %d cycles, tuned suite %d vs default %d)\n",
				len(sum.Rows), oracleOut, sum.Totals.ProvenOptimal,
				sum.Totals.Ladder-sum.Totals.LowerBound,
				sum.Totals.SuiteTuned, sum.Totals.SuiteDefault)
		} else {
			os.Stdout.Write(data)
		}
	}
	if !any {
		return fmt.Errorf("unknown experiment %q", which)
	}
	return nil
}
