// Command graphgen emits benchmark or random dependence graphs in .ddg or
// Graphviz form, for use with convsched or external tooling.
//
// Usage:
//
//	graphgen -kernel mxm -clusters 16            # a paper benchmark
//	graphgen -random 500 -width 20 -seed 7       # a layered random DAG
//	graphgen -list                               # list kernels
//	graphgen -kernel jacobi -format dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/irtext"
)

func main() {
	kernelName := flag.String("kernel", "", "benchmark kernel name (see -list)")
	randomN := flag.Int("random", 0, "generate a layered random DAG with this many instructions")
	width := flag.Int("width", 16, "layer width for -random")
	clusters := flag.Int("clusters", 4, "cluster count the graph is built for (bank interleaving)")
	seed := flag.Int64("seed", 1, "random seed for -random")
	format := flag.String("format", "ddg", "ddg|dot")
	list := flag.Bool("list", false, "list available kernels and exit")
	flag.Parse()

	if err := run(*kernelName, *randomN, *width, *clusters, *seed, *format, *list); err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}
}

func run(kernelName string, randomN, width, clusters int, seed int64, format string, list bool) error {
	if list {
		for _, name := range bench.Names() {
			k, _ := bench.ByName(name)
			fmt.Printf("%-14s %s\n", name, k.Description)
		}
		return nil
	}
	if clusters < 1 {
		return fmt.Errorf("-clusters must be at least 1, got %d", clusters)
	}
	var g *ir.Graph
	switch {
	case kernelName != "" && randomN > 0:
		return fmt.Errorf("-kernel and -random are mutually exclusive")
	case kernelName != "":
		k, err := bench.Get(kernelName)
		if err != nil {
			return err
		}
		g = k.Build(clusters)
	case randomN > 0:
		if randomN < 2 {
			return fmt.Errorf("-random needs at least 2 instructions, got %d", randomN)
		}
		if width < 1 {
			return fmt.Errorf("-width must be at least 1, got %d", width)
		}
		g = bench.RandomLayered(randomN, width, clusters, seed)
	default:
		return fmt.Errorf("need -kernel, -random or -list")
	}
	switch format {
	case "ddg":
		return irtext.Print(os.Stdout, g)
	case "dot":
		fmt.Print(g.DOT())
		return nil
	}
	return fmt.Errorf("unknown -format %q", format)
}
