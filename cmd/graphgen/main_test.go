package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<22)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), ferr
}

func TestKernelDDG(t *testing.T) {
	out, err := capture(t, func() error {
		return run("vvmul", 0, 16, 4, 1, "ddg", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "graph vvmul") || !strings.Contains(out, "load") {
		t.Errorf("unexpected output:\n%.200s", out)
	}
}

func TestKernelDOT(t *testing.T) {
	out, err := capture(t, func() error {
		return run("jacobi", 0, 16, 4, 1, "dot", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") {
		t.Errorf("not DOT:\n%.200s", out)
	}
}

func TestRandomGraph(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 50, 8, 4, 7, "ddg", false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "graph rand50") {
		t.Errorf("unexpected output:\n%.200s", out)
	}
}

func TestListKernels(t *testing.T) {
	out, err := capture(t, func() error {
		return run("", 0, 0, 4, 1, "ddg", true)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mxm", "sha", "fpppp-kernel"} {
		if !strings.Contains(out, want) {
			t.Errorf("list missing %s:\n%s", want, out)
		}
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		label    string
		kernel   string
		n        int
		width    int
		clusters int
		format   string
	}{
		{"no input", "", 0, 8, 4, "ddg"},
		{"both inputs", "mxm", 50, 8, 4, "ddg"},
		{"unknown kernel", "frobnicate", 0, 8, 4, "ddg"},
		{"bad format", "mxm", 0, 8, 4, "pdf"},
		// These used to panic inside kernel.New / bench.RandomLayered;
		// bad flag values must come back as errors, never crashes.
		{"zero clusters", "mxm", 0, 8, 0, "ddg"},
		{"negative clusters", "mxm", 0, 8, -3, "ddg"},
		{"zero clusters random", "", 50, 8, 0, "ddg"},
		{"zero width", "", 50, 0, 4, "ddg"},
		{"one-instruction random", "", 1, 8, 4, "ddg"},
	}
	for _, c := range cases {
		if _, err := capture(t, func() error {
			return run(c.kernel, c.n, c.width, c.clusters, 1, c.format, false)
		}); err == nil {
			t.Errorf("%s: no error", c.label)
		}
	}
}

// TestUnknownKernelNamesAlternatives: the error for a mistyped kernel should
// tell the user what is available.
func TestUnknownKernelNamesAlternatives(t *testing.T) {
	_, err := capture(t, func() error {
		return run("jacobbi", 0, 8, 4, 1, "ddg", false)
	})
	if err == nil || !strings.Contains(err.Error(), "jacobi") {
		t.Errorf("error %v does not list available kernels", err)
	}
}
