package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), ferr
}

func TestRunSmallSearch(t *testing.T) {
	out, err := capture(t, func() error {
		return run("vliw4", "vvmul", 5, 3, "", 0, 64, false, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seed sequence") || !strings.Contains(out, "best sequence") {
		t.Errorf("output:\n%s", out)
	}
}

func TestRunCustomStart(t *testing.T) {
	out, err := capture(t, func() error {
		return run("vliw4", "vvmul", 2, 1, "INITTIME,NOISE,PLACE,EMPHCP", 0, 64, false, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "INITTIME NOISE PLACE EMPHCP") {
		t.Errorf("seed not echoed:\n%s", out)
	}
}

func TestRunOracleMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run("vliw4", "vvmul", 2, 3, "", 0, 64, true, 5000)
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"oracle lower bounds", "seed gap:", "best gap:"} {
		if !strings.Contains(out, want) {
			t.Errorf("oracle mode output missing %q:\n%s", want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run("gpu1", "vvmul", 2, 1, "", 0, 64, false, 0) }); err == nil {
		t.Error("bad machine accepted")
	}
	if _, err := capture(t, func() error { return run("vliw4", "nope", 2, 1, "", 0, 64, false, 0) }); err == nil {
		t.Error("bad kernel accepted")
	}
	if _, err := capture(t, func() error { return run("vliw4", "vvmul", 2, 1, "FROB", 0, 64, false, 0) }); err == nil {
		t.Error("bad start pass accepted")
	}
}
