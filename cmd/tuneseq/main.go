// Command tuneseq searches for good convergent-scheduling pass sequences —
// the paper's stated future work ("we expect to implement more systematic
// heuristics selection"). It runs randomized hill climbing over sequences
// of pass labels, scoring each candidate by total schedule length over a
// benchmark suite.
//
// Usage:
//
//	tuneseq -machine vliw4 -kernels vvmul,yuv,fir -iters 100 -seed 7
//	tuneseq -machine raw16 -kernels jacobi,life
//	tuneseq -machine vliw4 -kernels all -oracle
//
// The search seeds from the machine's published sequence and prints every
// improvement it accepts; pass -start to seed differently. With -oracle the
// optimality oracle first certifies a lower bound for every kernel, the
// search stops early if a sequence reaches the suite bound, and results are
// reported as optimality gaps (provably wasted cycles) instead of raw
// costs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/oracle"
	"repro/internal/tune"
)

func main() {
	machineName := flag.String("machine", "vliw4", "target machine (rawN or vliwN)")
	kernels := flag.String("kernels", "vvmul,yuv", "comma-separated benchmark kernels to optimise for, or \"all\" for the machine's full suite")
	iters := flag.Int("iters", 60, "number of proposed edits")
	seed := flag.Int64("seed", 2002, "search and noise seed")
	start := flag.String("start", "", "comma-separated seed sequence (default: the machine's published sequence)")
	jobs := flag.Int("j", 0, "worker-pool width for candidate evaluation (0 = GOMAXPROCS)")
	cacheSize := flag.Int("cache-size", 1024, "schedule-cache entries memoizing kernel-x-sequence evaluations (0 disables)")
	useOracle := flag.Bool("oracle", false, "score against oracle-certified lower bounds: report optimality gaps and stop early at the suite bound")
	nodeBudget := flag.Int64("oracle-budget", 0, "oracle node budget per kernel (0 = default)")
	flag.Parse()

	if err := run(*machineName, *kernels, *iters, *seed, *start, *jobs, *cacheSize, *useOracle, *nodeBudget); err != nil {
		fmt.Fprintln(os.Stderr, "tuneseq:", err)
		os.Exit(1)
	}
}

func suiteFor(m *machine.Model, kernels string) ([]bench.Kernel, error) {
	if strings.TrimSpace(kernels) == "all" {
		if strings.HasPrefix(m.Name, "raw") {
			return bench.RawSuite(), nil
		}
		return bench.VliwSuite(), nil
	}
	var ks []bench.Kernel
	for _, name := range strings.Split(kernels, ",") {
		name = strings.TrimSpace(name)
		k, ok := bench.ByName(name)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (available: %s)", name, strings.Join(bench.Names(), ", "))
		}
		ks = append(ks, k)
	}
	return ks, nil
}

func run(machineName, kernels string, iters int, seed int64, start string, jobs, cacheSize int, useOracle bool, nodeBudget int64) error {
	m, err := machine.Named(machineName)
	if err != nil {
		return err
	}
	ks, err := suiteFor(m, kernels)
	if err != nil {
		return err
	}
	var startSeq []string
	if start != "" {
		for _, l := range strings.Split(start, ",") {
			startSeq = append(startSeq, strings.TrimSpace(l))
		}
	}
	e := engine.New(jobs, cacheSize)
	opt := tune.Options{
		Machine: m,
		Kernels: ks,
		Start:   startSeq,
		Iters:   iters,
		Seed:    seed,
		Log:     func(s string) { fmt.Println(s) },
		Engine:  e,
	}

	var res *tune.Result
	if useOracle {
		gr, err := tune.SearchGaps(opt, oracle.Options{NodeBudget: nodeBudget})
		if err != nil {
			return err
		}
		res = &gr.Result
		fmt.Printf("\noracle lower bounds (suite total %d cycles):\n", gr.SuiteLowerBound)
		for _, b := range gr.Bounds {
			fmt.Printf("  %-14s lb=%5d  %s\n", b.Kernel, b.LowerBound, b.Status)
		}
		fmt.Printf("seed gap: %d cycles over the bound; best gap: %d\n", gr.StartGap, gr.BestGap)
	} else {
		res, err = tune.Search(opt)
		if err != nil {
			return err
		}
	}

	fmt.Printf("\nseed sequence  (%5d cycles): %s\n", res.StartCost, strings.Join(res.Start, " "))
	fmt.Printf("best sequence  (%5d cycles): %s\n", res.BestCost, strings.Join(res.Best, " "))
	if res.BestCost < res.StartCost {
		fmt.Printf("improvement: %.1f%% over %d evaluations\n",
			100*float64(res.StartCost-res.BestCost)/float64(res.StartCost), res.Evaluations)
	} else {
		fmt.Printf("no improvement found in %d evaluations\n", res.Evaluations)
	}
	st := e.Stats()
	fmt.Printf("schedule cache: %d hits, %d misses, %d evictions over %d kernel evaluations\n",
		st.Hits, st.Misses, st.Evictions, st.Hits+st.Misses)
	return nil
}
