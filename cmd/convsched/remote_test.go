package main

import (
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
)

// remoteOpts is the default remote-mode flag set pointed at ts.
func remoteOpts(ts *httptest.Server) options {
	o := opts("vliw4", "convergent", "stats", true)
	o.fallback = true
	o.serveAddr = ts.URL
	return o
}

// TestRunRemote drives convsched's client mode against an in-process schedd:
// the batch output format, per-unit lines, and the cache tag on a repeat.
func TestRunRemote(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{Seed: 2002}).Handler())
	defer ts.Close()

	a := writeKernel(t, "vvmul", 4)
	b := writeKernel(t, "fir", 4)
	out, err := capture(t, func() error {
		return run(remoteOpts(ts), []string{a, b, a})
	})
	if err != nil {
		t.Fatalf("remote run failed: %v\n%s", err, out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // three unit lines + summary
		t.Fatalf("got %d lines, want 4:\n%s", len(lines), out)
	}
	for _, l := range lines[:3] {
		if !strings.Contains(l, "cycles") || !strings.Contains(l, "served by") {
			t.Errorf("unit line malformed: %q", l)
		}
	}
	// The repeated unit is answered from the service's schedule cache.
	if !strings.Contains(lines[2], "[cached]") {
		t.Errorf("repeat unit not served from cache: %q", lines[2])
	}
	if !strings.Contains(lines[3], "remote: 3 units") {
		t.Errorf("summary line: %q", lines[3])
	}
}

// TestRunRemoteSheds: a rate-limited schedd sheds, the client retries per
// Retry-After, and every unit is eventually served.
func TestRunRemoteSheds(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{
		Seed:       2002,
		RatePerSec: 2,
		Burst:      1,
		CacheSize:  -1, // force real scheduling per request to hold tokens down
	}).Handler())
	defer ts.Close()

	a := writeKernel(t, "vvmul", 4)
	b := writeKernel(t, "fir", 4)
	out, err := capture(t, func() error {
		return run(remoteOpts(ts), []string{a, b, a})
	})
	if err != nil {
		t.Fatalf("remote run under rate limit failed: %v\n%s", err, out)
	}
	if got := strings.Count(out, "served by"); got != 3 {
		t.Errorf("%d of 3 units served:\n%s", got, out)
	}
}

// TestRunRemoteErrors: remote mode rejects local-only flags and reports
// structured per-unit failures from the service.
func TestRunRemoteErrors(t *testing.T) {
	ts := httptest.NewServer(server.New(server.Config{Seed: 2002}).Handler())
	defer ts.Close()
	a := writeKernel(t, "vvmul", 4)

	o := remoteOpts(ts)
	o.chaos = "pass-panic"
	if _, err := capture(t, func() error { return run(o, []string{a}) }); err == nil {
		t.Error("-chaos with -serve-addr should be rejected")
	}

	o = remoteOpts(ts)
	o.show = "schedule"
	if _, err := capture(t, func() error { return run(o, []string{a}) }); err == nil {
		t.Error("-show schedule with -serve-addr should be rejected")
	}

	// A graph the machine cannot hold comes back as a structured error, and
	// the run reports the unit failure without crashing.
	o = remoteOpts(ts)
	o.timeout = 2 * time.Second
	bad := writeKernel(t, "vvmul", 8) // 8-cluster graph on vliw4
	out, err := capture(t, func() error { return run(o, []string{bad}) })
	if err == nil || !strings.Contains(err.Error(), "1 of 1 units failed") {
		t.Errorf("bad unit: err=%v out=%s", err, out)
	}
}

// TestJitteredRetryBounds pins the anti-retry-storm contract: whatever the
// server's Retry-After hint, the client waits a uniformly jittered span in
// [base/2, base] — never the verbatim hint — so shed clients desynchronize
// instead of re-saturating admission in lockstep.
func TestJitteredRetryBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		header  string
		attempt int
		base    time.Duration
	}{
		{"1", 1, time.Second},                  // header honored
		{"", 2, 100 * time.Millisecond},        // no header: linear backoff
		{"garbage", 3, 150 * time.Millisecond}, // unparseable: backoff
		{"0", 1, 50 * time.Millisecond},        // zero floor
		{"-4", 1, 50 * time.Millisecond},       // negative rejected
		{"60", 1, 2 * time.Second},             // absurd hint capped
	}
	for _, tc := range cases {
		distinct := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := jitteredRetry(tc.header, tc.attempt, rng)
			if d < tc.base/2 || d > tc.base {
				t.Fatalf("jitteredRetry(%q, %d) = %v, want in [%v, %v]",
					tc.header, tc.attempt, d, tc.base/2, tc.base)
			}
			distinct[d] = true
		}
		if len(distinct) < 20 {
			t.Errorf("jitteredRetry(%q, %d): only %d distinct waits in 200 draws — not jittered",
				tc.header, tc.attempt, len(distinct))
		}
	}
}

// TestPostUnitRetriesConnRefused pins the fix for the batch-killing dial
// error: a connection refused on the first attempt — a daemon mid-restart —
// is retried with the jittered backoff, and the unit succeeds once the
// service comes up.
func TestPostUnitRetriesConnRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // the port now refuses connections, like a restarting daemon

	go func() {
		time.Sleep(150 * time.Millisecond)
		ln2, lerr := net.Listen("tcp", addr)
		if lerr != nil {
			return // port stolen; the test will report the dial failure
		}
		_ = (&http.Server{Handler: server.New(server.Config{Seed: 2002}).Handler()}).Serve(ln2)
	}()

	body, err := os.ReadFile(writeKernel(t, "vvmul", 4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := postUnit("http://"+addr+"/schedule?machine=vliw4", "", body)
	if err != nil {
		t.Fatalf("postUnit did not survive the restart window: %v", err)
	}
	if res.Cycles <= 0 {
		t.Errorf("served schedule has %d cycles", res.Cycles)
	}
}

// TestPostUnitConnRefusedGivesUp: a dead target still fails — after the
// bounded attempts, with the dial error preserved.
func TestPostUnitConnRefusedGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	body, err := os.ReadFile(writeKernel(t, "vvmul", 4))
	if err != nil {
		t.Fatal(err)
	}
	_, err = postUnit("http://"+addr+"/schedule?machine=vliw4", "", body)
	if err == nil {
		t.Fatal("postUnit succeeded against a dead port")
	}
	if !strings.Contains(err.Error(), "after 5 attempts") {
		t.Errorf("error does not report the retry budget: %v", err)
	}
}

// TestRunRemoteTenantHeader: -tenant rides along as X-Schedd-Tenant and the
// daemon attributes the work to that identity.
func TestRunRemoteTenantHeader(t *testing.T) {
	s := server.New(server.Config{Seed: 2002})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	o := remoteOpts(ts)
	o.tenant = "acme"
	out, err := capture(t, func() error {
		return run(o, []string{writeKernel(t, "vvmul", 4)})
	})
	if err != nil {
		t.Fatalf("remote run failed: %v\n%s", err, out)
	}
	for _, ten := range s.StatsSnapshot().Admission.Tenants {
		if ten.Tenant == "acme" && ten.Completed == 1 {
			return
		}
	}
	t.Fatalf("daemon stats do not attribute the unit to tenant acme")
}
