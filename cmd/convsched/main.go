// Command convsched schedules a dependence graph (.ddg) onto a spatial
// machine with a chosen scheduler and reports the schedule.
//
// Usage:
//
//	convsched -machine raw16 -scheduler convergent [-seed 2002] [-show schedule] graph.ddg
//
// Schedulers: convergent (the paper's), rawcc, uas, pcc, list (critical-path
// list scheduling on cluster 0 homes only — a sanity baseline).
// Machines: rawN (N tiles) or vliwN (N clusters).
// Show: stats (default), schedule, assignment, dot, trace, report.
//
// Every scheduling run goes through the resilient driver (internal/robust):
// a panicking or stalling scheduler becomes a clean error instead of a
// crash, and every accepted schedule is re-validated against the pristine
// graph and machine. With -fallback the driver walks the degradation ladder
// (convergent → truncated convergent → rawcc/uas → list) until a rung
// serves; -timeout bounds each attempt; -chaos injects a named, seeded
// fault class for resilience testing (-chaos-list enumerates them).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// options collects the command's flags.
type options struct {
	machine   string
	scheduler string
	seed      int64
	show      string
	verify    bool
	timeout   time.Duration
	fallback  bool
	chaos     string
	chaosSeed int64
}

func main() {
	var o options
	flag.StringVar(&o.machine, "machine", "raw16", "target machine (rawN or vliwN)")
	flag.StringVar(&o.scheduler, "scheduler", "convergent", "convergent|rawcc|uas|pcc|list")
	flag.Int64Var(&o.seed, "seed", 2002, "noise seed for the convergent scheduler")
	flag.StringVar(&o.show, "show", "stats", "stats|schedule|assignment|dot|trace|report")
	flag.BoolVar(&o.verify, "verify", true, "simulate the schedule and compare against reference execution")
	flag.DurationVar(&o.timeout, "timeout", 0, "time budget per scheduling attempt (0 = unbounded)")
	flag.BoolVar(&o.fallback, "fallback", false, "degrade through the fallback ladder instead of failing")
	flag.StringVar(&o.chaos, "chaos", "", "inject this fault class into the pipeline (implies -fallback)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the injected fault")
	chaosList := flag.Bool("chaos-list", false, "list chaos classes and exit")
	flag.Parse()

	if *chaosList {
		fmt.Println(strings.Join(faultinject.Classes(), "\n"))
		return
	}
	if err := run(o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "convsched:", err)
		os.Exit(1)
	}
}

// readGraph parses the .ddg input from the single optional file argument or
// stdin.
func readGraph(args []string) (*ir.Graph, error) {
	switch len(args) {
	case 0:
		return irtext.Parse(os.Stdin)
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return irtext.Parse(f)
	}
	return nil, fmt.Errorf("want at most one input file, got %d", len(args))
}

func run(o options, args []string) error {
	m, err := machine.Named(o.machine)
	if err != nil {
		return err
	}
	g, err := readGraph(args)
	if err != nil {
		return err
	}

	if o.show == "trace" {
		return showTrace(o, g, m)
	}

	var ladder []robust.Rung
	switch {
	case o.chaos != "":
		if o.scheduler != "convergent" {
			return fmt.Errorf("-chaos poisons the convergent ladder; use -scheduler convergent, not %q", o.scheduler)
		}
		chaos := faultinject.Chaos{Class: o.chaos, Seed: o.chaosSeed}
		if ladder, err = chaos.Ladder(m, o.seed); err != nil {
			return fmt.Errorf("%w (see -chaos-list)", err)
		}
	case o.fallback:
		if ladder, err = robust.LadderFor(m, o.scheduler, o.seed); err != nil {
			return err
		}
	default:
		r, err := robust.RungFor(m, o.scheduler, o.seed)
		if err != nil {
			return err
		}
		ladder = []robust.Rung{r}
	}

	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Timeout: o.timeout,
		Verify:  o.verify,
		Ladder:  ladder,
	})
	if err != nil {
		return fmt.Errorf("%w\n%s", err, rep)
	}
	// Degradation is worth knowing about even when the caller only asked
	// for the schedule; it goes to stderr so stdout stays parseable.
	if o.show != "report" && len(rep.Attempts) > 1 {
		fmt.Fprint(os.Stderr, rep)
	}
	return show(o, g, m, s, rep)
}

// showTrace runs the convergent scheduler directly (the per-pass trace only
// exists inside core.Schedule) with panic isolation but no ladder.
func showTrace(o options, g *ir.Graph, m *machine.Model) error {
	if o.scheduler != "convergent" {
		return fmt.Errorf("-show trace requires -scheduler convergent")
	}
	if o.chaos != "" {
		return fmt.Errorf("-show trace cannot be combined with -chaos")
	}
	var res *core.Result
	s, err := robust.Guard("convergent", func() (*schedule.Schedule, error) {
		s, r, err := core.Schedule(g, m, passes.ForMachine(m.Name), o.seed)
		res = r
		return s, err
	})
	if err != nil {
		return err
	}
	if o.verify {
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}
	for _, pc := range res.Trace {
		fmt.Printf("%-10s changed %5.1f%% of preferred clusters\n", pc.Pass, 100*pc.Fraction)
	}
	return nil
}

func show(o options, g *ir.Graph, m *machine.Model, s *schedule.Schedule, rep *robust.Report) error {
	switch o.show {
	case "stats":
		st := g.ComputeStats()
		fmt.Printf("graph %s: %s\n", g.Name, st)
		live := s.MaxLivePerCluster()
		maxLive := 0
		for _, l := range live {
			if l > maxLive {
				maxLive = l
			}
		}
		fmt.Printf("machine %s, scheduler %s: %d cycles, %d communications, max live values %d\n",
			m.Name, rep.Served, s.Length(), s.CommCount(), maxLive)
	case "schedule":
		fmt.Print(s.String())
	case "assignment":
		for i, p := range s.Placements {
			fmt.Printf("%4d %-8v -> cluster %d, cycle %d\n", i, g.Instrs[i].Op, p.Cluster, p.Start)
		}
	case "dot":
		fmt.Print(g.DOT())
	case "report":
		fmt.Print(rep)
	default:
		return fmt.Errorf("unknown -show %q", o.show)
	}
	return nil
}
