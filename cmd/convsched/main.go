// Command convsched schedules a dependence graph (.ddg) onto a spatial
// machine with a chosen scheduler and reports the schedule.
//
// Usage:
//
//	convsched -machine raw16 -scheduler convergent [-seed 2002] [-show schedule] graph.ddg
//
// Schedulers: convergent (the paper's), rawcc, uas, pcc, list (critical-path
// list scheduling on cluster 0 homes only — a sanity baseline).
// Machines: rawN (N tiles) or vliwN (N clusters).
// Show: stats (default), schedule, assignment, dot, trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func main() {
	machineName := flag.String("machine", "raw16", "target machine (rawN or vliwN)")
	scheduler := flag.String("scheduler", "convergent", "convergent|rawcc|uas|pcc|list")
	seed := flag.Int64("seed", 2002, "noise seed for the convergent scheduler")
	show := flag.String("show", "stats", "stats|schedule|assignment|dot|trace")
	verify := flag.Bool("verify", true, "simulate the schedule and compare against reference execution")
	flag.Parse()

	if err := run(*machineName, *scheduler, *seed, *show, *verify, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "convsched:", err)
		os.Exit(1)
	}
}

func run(machineName, scheduler string, seed int64, show string, verify bool, args []string) error {
	m, err := machine.Named(machineName)
	if err != nil {
		return err
	}
	var g *ir.Graph
	switch len(args) {
	case 0:
		g, err = irtext.Parse(os.Stdin)
	case 1:
		var f *os.File
		f, err = os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		g, err = irtext.Parse(f)
	default:
		return fmt.Errorf("want at most one input file, got %d", len(args))
	}
	if err != nil {
		return err
	}

	var s *schedule.Schedule
	var res *core.Result
	switch scheduler {
	case "convergent":
		s, res, err = core.Schedule(g, m, passes.ForMachine(m.Name), seed)
	case "rawcc":
		s, err = rawcc.Schedule(g, m)
	case "uas":
		s, err = uas.Schedule(g, m)
	case "pcc":
		s, err = pcc.Schedule(g, m, pcc.Options{})
	case "list":
		assign := make([]int, g.Len())
		for i, in := range g.Instrs {
			if in.Preplaced() {
				assign[i] = in.Home
			} else if in.Op.IsMemory() {
				assign[i] = m.BankOwner(in.Bank)
			}
		}
		s, err = listsched.Run(g, m, listsched.Options{Assignment: assign})
	default:
		return fmt.Errorf("unknown scheduler %q", scheduler)
	}
	if err != nil {
		return err
	}
	if verify {
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}

	switch show {
	case "stats":
		st := g.ComputeStats()
		fmt.Printf("graph %s: %s\n", g.Name, st)
		live := s.MaxLivePerCluster()
		maxLive := 0
		for _, l := range live {
			if l > maxLive {
				maxLive = l
			}
		}
		fmt.Printf("machine %s, scheduler %s: %d cycles, %d communications, max live values %d\n",
			m.Name, scheduler, s.Length(), s.CommCount(), maxLive)
	case "schedule":
		fmt.Print(s.String())
	case "assignment":
		for i, p := range s.Placements {
			fmt.Printf("%4d %-8v -> cluster %d, cycle %d\n", i, g.Instrs[i].Op, p.Cluster, p.Start)
		}
	case "dot":
		fmt.Print(g.DOT())
	case "trace":
		if res == nil {
			return fmt.Errorf("-show trace requires -scheduler convergent")
		}
		for _, pc := range res.Trace {
			fmt.Printf("%-10s changed %5.1f%% of preferred clusters\n", pc.Pass, 100*pc.Fraction)
		}
	default:
		return fmt.Errorf("unknown -show %q", show)
	}
	return nil
}
