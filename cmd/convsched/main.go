// Command convsched schedules dependence graphs (.ddg) onto a spatial
// machine with a chosen scheduler and reports the schedules.
//
// Usage:
//
//	convsched -machine raw16 -scheduler convergent [-seed 2002] [-show schedule] graph.ddg
//	convsched -machine raw16 [-j 8] a.ddg b.ddg dir-of-ddgs/
//
// Schedulers: convergent (the paper's), rawcc, uas, pcc, list (critical-path
// list scheduling on cluster 0 homes only — a sanity baseline). With -tuned
// the convergent scheduler uses the oracle-tuned pass sequence
// (passes.TunedForMachine) instead of the published one.
// Machines: rawN (N tiles) or vliwN (N clusters).
// Show: stats (default), schedule, assignment, dot, trace, report.
//
// Every scheduling run goes through the resilient driver (internal/robust):
// a panicking or stalling scheduler becomes a clean error instead of a
// crash, and every accepted schedule is re-validated against the pristine
// graph and machine. With -fallback the driver walks the degradation ladder
// (convergent → truncated convergent → rawcc/uas → list) until a rung
// serves; -timeout bounds each attempt; -chaos injects a named, seeded
// fault class for resilience testing (-chaos-list enumerates them).
// -trace out.json writes the request's observability trace (per-pass
// preference-map deltas, ladder attempts) as JSON; tracing never changes
// the schedule produced.
//
// With several inputs — multiple .ddg files and/or directories, which expand
// to their *.ddg entries — the units are batch-scheduled over a worker pool
// (-j) with a content-addressed schedule cache (-cache-size), so duplicate
// and isomorphic units are scheduled once. Batch mode prints one stats line
// per input plus a cache summary; -show other than stats and -chaos are
// single-input features.
//
// With -store-dir the batch cache persists across invocations: recovered
// schedules are replayed through the legality gate at startup (corrupt or
// stale records are dropped, never served) and this run's schedules are
// appended on the way out, so re-running a large batch is mostly warm hits.
//
// With -serve-addr host:port the same inputs are scheduled by a running
// schedd service (see cmd/schedd) instead of in-process: each unit is POSTed
// to /schedule and the result printed in the batch format, with 429 sheds
// retried per the server's Retry-After hint.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// options collects the command's flags.
type options struct {
	machine   string
	scheduler string
	seed      int64
	tuned     bool
	show      string
	verify    bool
	timeout   time.Duration
	fallback  bool
	chaos     string
	chaosSeed int64
	jobs      int
	cacheSize int
	serveAddr string
	tenant    string
	storeDir  string
	traceOut  string
}

func main() {
	var o options
	flag.StringVar(&o.machine, "machine", "raw16", "target machine (rawN or vliwN)")
	flag.StringVar(&o.scheduler, "scheduler", "convergent", "convergent|rawcc|uas|pcc|list")
	flag.Int64Var(&o.seed, "seed", 2002, "noise seed for the convergent scheduler")
	flag.BoolVar(&o.tuned, "tuned", false, "use the oracle-tuned pass sequence instead of the published one (convergent scheduler only)")
	flag.StringVar(&o.show, "show", "stats", "stats|schedule|assignment|dot|trace|report")
	flag.BoolVar(&o.verify, "verify", true, "simulate the schedule and compare against reference execution")
	flag.DurationVar(&o.timeout, "timeout", 0, "time budget per scheduling attempt (0 = unbounded)")
	flag.BoolVar(&o.fallback, "fallback", false, "degrade through the fallback ladder instead of failing")
	flag.StringVar(&o.chaos, "chaos", "", "inject this fault class into the pipeline (implies -fallback)")
	flag.Int64Var(&o.chaosSeed, "chaos-seed", 1, "seed for the injected fault")
	flag.IntVar(&o.jobs, "j", 0, "worker-pool width for batch scheduling (0 = GOMAXPROCS)")
	flag.IntVar(&o.cacheSize, "cache-size", 256, "schedule-cache entries for batch scheduling (0 disables)")
	flag.StringVar(&o.serveAddr, "serve-addr", "", "schedule via a running schedd at this address instead of locally")
	flag.StringVar(&o.tenant, "tenant", "", "tenant identity sent as X-Schedd-Tenant in remote mode")
	flag.StringVar(&o.storeDir, "store-dir", "", "persist the batch schedule cache in this directory and warm-start from it")
	flag.StringVar(&o.traceOut, "trace", "", "write the scheduling trace (per-pass weight deltas, ladder attempts) as JSON to this file")
	chaosList := flag.Bool("chaos-list", false, "list chaos classes and exit")
	flag.Parse()

	if *chaosList {
		fmt.Println(strings.Join(faultinject.Classes(), "\n"))
		return
	}
	if err := run(o, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "convsched:", err)
		os.Exit(1)
	}
}

// expandInputs resolves the positional arguments into .ddg file paths:
// files stand for themselves, directories expand to their *.ddg entries in
// name order. No arguments means stdin (single-input mode).
func expandInputs(args []string) ([]string, error) {
	var paths []string
	for _, a := range args {
		st, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			paths = append(paths, a)
			continue
		}
		entries, err := os.ReadDir(a)
		if err != nil {
			return nil, err
		}
		found := 0
		for _, e := range entries {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".ddg") {
				paths = append(paths, filepath.Join(a, e.Name()))
				found++
			}
		}
		if found == 0 {
			return nil, fmt.Errorf("directory %s contains no .ddg files", a)
		}
	}
	return paths, nil
}

func run(o options, args []string) error {
	m, err := machine.Named(o.machine)
	if err != nil {
		return err
	}
	if o.tuned && o.scheduler != "convergent" {
		return fmt.Errorf("-tuned selects a convergent pass sequence; use -scheduler convergent, not %q", o.scheduler)
	}
	paths, err := expandInputs(args)
	if err != nil {
		return err
	}
	if o.storeDir != "" {
		// The store memoizes batch results across invocations; the other
		// modes have no cache to persist.
		if o.serveAddr != "" {
			return fmt.Errorf("-store-dir is local; with -serve-addr, persistence belongs to the schedd (its -store-dir)")
		}
		if len(paths) <= 1 {
			return fmt.Errorf("-store-dir is a batch-mode feature; give several inputs")
		}
		if o.cacheSize <= 0 {
			return fmt.Errorf("-store-dir requires a positive -cache-size, got %d", o.cacheSize)
		}
		parent := filepath.Dir(filepath.Clean(o.storeDir))
		if st, err := os.Stat(parent); err != nil || !st.IsDir() {
			return fmt.Errorf("-store-dir parent %s does not exist", parent)
		}
	}
	if o.traceOut != "" && (o.serveAddr != "" || len(paths) > 1) {
		return fmt.Errorf("-trace is a single-input local feature (schedd serves traces via ?trace=1)")
	}
	if o.serveAddr != "" {
		return runRemote(o, paths)
	}
	if len(paths) > 1 {
		return runBatch(o, m, paths)
	}
	var g *ir.Graph
	if len(paths) == 0 {
		g, err = irtext.Parse(os.Stdin)
	} else {
		g, err = irtext.ParseFile(paths[0])
	}
	if err != nil {
		return err
	}

	if o.show == "trace" {
		return showTrace(o, g, m)
	}

	var ladder []robust.Rung
	switch {
	case o.chaos != "":
		if o.scheduler != "convergent" {
			return fmt.Errorf("-chaos poisons the convergent ladder; use -scheduler convergent, not %q", o.scheduler)
		}
		if o.tuned {
			return fmt.Errorf("-tuned cannot be combined with -chaos (the chaos ladder pins the published sequence)")
		}
		chaos := faultinject.Chaos{Class: o.chaos, Seed: o.chaosSeed}
		if ladder, err = chaos.Ladder(m, o.seed); err != nil {
			return fmt.Errorf("%w (see -chaos-list)", err)
		}
	case o.tuned && o.fallback:
		ladder = robust.TunedLadder(m, o.seed)
	case o.tuned:
		ladder = []robust.Rung{robust.ConvergentRung("convergent-tuned", m, passes.TunedForMachine(m.Name), o.seed)}
	case o.fallback:
		if ladder, err = robust.LadderFor(m, o.scheduler, o.seed); err != nil {
			return err
		}
	default:
		r, err := robust.RungFor(m, o.scheduler, o.seed)
		if err != nil {
			return err
		}
		ladder = []robust.Rung{r}
	}

	ctx := context.Background()
	var tr *obs.Trace
	if o.traceOut != "" {
		tr = obs.NewTrace(g.Name, m.Name)
		ctx = obs.WithTrace(ctx, tr)
	}
	s, rep, err := robust.Schedule(ctx, g, m, robust.Options{
		Timeout: o.timeout,
		Verify:  o.verify,
		Ladder:  ladder,
	})
	// The trace is written even when every rung failed: the recorded pass
	// deltas and attempts are exactly what explains the failure.
	if tr != nil {
		if werr := writeTraceFile(o.traceOut, tr); werr != nil {
			fmt.Fprintf(os.Stderr, "convsched: %v\n", werr)
		}
	}
	if err != nil {
		return fmt.Errorf("%w\n%s", err, rep)
	}
	// Degradation is worth knowing about even when the caller only asked
	// for the schedule; it goes to stderr so stdout stays parseable.
	if o.show != "report" && len(rep.Attempts) > 1 {
		fmt.Fprint(os.Stderr, rep)
	}
	return show(o, g, m, s, rep)
}

// runBatch schedules every input unit over the engine's worker pool with the
// content-addressed schedule cache, printing one stats line per unit and a
// cache summary. Failures are per-unit: a bad graph reports its error and
// the rest of the batch completes.
func runBatch(o options, m *machine.Model, paths []string) error {
	if o.chaos != "" {
		return fmt.Errorf("-chaos is a single-input feature")
	}
	if o.show != "stats" {
		return fmt.Errorf("-show %s is a single-input feature; batch mode prints stats", o.show)
	}

	// The ladder is shared by every unit in the batch. Its cache identity
	// only has to separate keys within this invocation (the cache dies with
	// the process), so scheduler name, fallback mode and seed pin it; the
	// machine's contribution is already in the key via its fingerprint. The
	// convergent fallback ladder is the driver's default, which the engine
	// identifies itself (robust.DefaultLadderID) when Ladder is nil.
	var ladder []robust.Rung
	var ladderID string
	switch {
	case o.tuned && o.fallback:
		ladder = robust.TunedLadder(m, o.seed)
		ladderID = robust.TunedLadderID(m, o.seed)
	case o.tuned:
		seq := passes.TunedForMachine(m.Name)
		ladder = []robust.Rung{robust.ConvergentRung("convergent-tuned", m, seq, o.seed)}
		ladderID = fmt.Sprintf("rung:convergent-tuned[%s]:seed=%d", core.SequenceID(seq), o.seed)
	case o.fallback && o.scheduler == "convergent":
		// Leave Ladder nil: robust walks DefaultLadder(m, seed).
	case o.fallback:
		l, err := robust.LadderFor(m, o.scheduler, o.seed)
		if err != nil {
			return err
		}
		ladder = l
		ladderID = fmt.Sprintf("fallback:%s:seed=%d", o.scheduler, o.seed)
	default:
		r, err := robust.RungFor(m, o.scheduler, o.seed)
		if err != nil {
			return err
		}
		ladder = []robust.Rung{r}
		ladderID = fmt.Sprintf("rung:%s:seed=%d", o.scheduler, o.seed)
	}

	jobs := make([]engine.Job, len(paths))
	for i, p := range paths {
		g, err := irtext.ParseFile(p)
		if err != nil {
			return err
		}
		jobs[i] = engine.Job{
			ID:      p,
			Graph:   g,
			Machine: m,
			Opts: robust.Options{
				Timeout: o.timeout,
				Verify:  o.verify,
				Ladder:  ladder,
				Seed:    o.seed,
			},
			LadderID: ladderID,
		}
	}

	e := engine.New(o.jobs, o.cacheSize)
	if o.storeDir != "" {
		// Cross-run memoization: recover last run's schedules through the
		// legality gate before scheduling, persist this run's on the way out.
		if err := e.AttachStore(engine.PersistConfig{Dir: o.storeDir}); err != nil {
			return fmt.Errorf("store %s: %w", o.storeDir, err)
		}
		rs, err := e.RecoverStore()
		if err != nil {
			fmt.Fprintf(os.Stderr, "convsched: store recovery: %v (continuing with partial warm cache)\n", err)
		}
		fmt.Fprintf(os.Stderr, "convsched: store %s: replayed %d, dropped %d corrupt, %d illegal, %d skewed (%d torn tails)\n",
			o.storeDir, rs.Replayed, rs.DroppedCorrupt, rs.DroppedIllegal, rs.DroppedSkewed, rs.TruncatedTails)
		defer func() {
			if err := e.CloseStore(); err != nil {
				fmt.Fprintf(os.Stderr, "convsched: store close: %v\n", err)
			}
		}()
	}
	failed := 0
	for _, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "convsched: %s: %v\n", r.ID, r.Err)
			continue
		}
		tag := ""
		switch {
		case r.CacheHit:
			tag = "  [cached]"
		case r.Shared:
			tag = "  [shared]"
		}
		fmt.Printf("%-32s %6d cycles %5d comms  served by %-12s %8s%s\n",
			r.ID, r.Schedule.Length(), r.Schedule.CommCount(), r.Served,
			r.Elapsed.Round(time.Millisecond), tag)
	}
	if o.storeDir != "" {
		// Flush before the summary so the store line reports what actually
		// reached the WAL; CloseStore (deferred) syncs the rest.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := e.FlushStore(ctx); err != nil {
			fmt.Fprintf(os.Stderr, "convsched: store flush: %v\n", err)
		}
		cancel()
	}
	st := e.Stats()
	fmt.Printf("batch: %d units on %s, %d workers; cache: %d hits, %d misses, %d shared, %d evictions\n",
		len(jobs), m.Name, e.Workers(len(jobs)), st.Hits, st.Misses, st.Shared, st.Evictions)
	if o.storeDir != "" {
		p := st.Persist
		fmt.Printf("store: %d recovered, %d flushed, %d dropped (queue full), %d live entries\n",
			p.Recovery.Replayed, p.Flushed, p.Backpressure, p.Store.LiveEntries)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d units failed", failed, len(jobs))
	}
	return nil
}

// writeTraceFile serializes the observability trace as indented JSON.
func writeTraceFile(path string, tr *obs.Trace) error {
	raw, err := json.MarshalIndent(tr, "", "  ")
	if err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("trace %s: %w", path, err)
	}
	return nil
}

// showTrace runs the convergent scheduler directly (the per-pass trace only
// exists inside core.Schedule) with panic isolation but no ladder.
func showTrace(o options, g *ir.Graph, m *machine.Model) error {
	if o.scheduler != "convergent" {
		return fmt.Errorf("-show trace requires -scheduler convergent")
	}
	if o.chaos != "" {
		return fmt.Errorf("-show trace cannot be combined with -chaos")
	}
	seq := passes.ForMachine(m.Name)
	if o.tuned {
		seq = passes.TunedForMachine(m.Name)
	}
	var res *core.Result
	s, err := robust.Guard("convergent", func() (*schedule.Schedule, error) {
		s, r, err := core.Schedule(g, m, seq, o.seed)
		res = r
		return s, err
	})
	if err != nil {
		return err
	}
	if o.verify {
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			return fmt.Errorf("verification failed: %w", err)
		}
	}
	for _, pc := range res.Trace {
		fmt.Printf("%-10s changed %5.1f%% of preferred clusters\n", pc.Pass, 100*pc.Fraction)
	}
	return nil
}

func show(o options, g *ir.Graph, m *machine.Model, s *schedule.Schedule, rep *robust.Report) error {
	switch o.show {
	case "stats":
		st := g.ComputeStats()
		fmt.Printf("graph %s: %s\n", g.Name, st)
		live := s.MaxLivePerCluster()
		maxLive := 0
		for _, l := range live {
			if l > maxLive {
				maxLive = l
			}
		}
		fmt.Printf("machine %s, scheduler %s: %d cycles, %d communications, max live values %d\n",
			m.Name, rep.Served, s.Length(), s.CommCount(), maxLive)
	case "schedule":
		fmt.Print(s.String())
	case "assignment":
		for i, p := range s.Placements {
			fmt.Printf("%4d %-8v -> cluster %d, cycle %d\n", i, g.Instrs[i].Op, p.Cluster, p.Start)
		}
	case "dot":
		fmt.Print(g.DOT())
	case "report":
		fmt.Print(rep)
	default:
		return fmt.Errorf("unknown -show %q", o.show)
	}
	return nil
}
