package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/irtext"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), ferr
}

func writeKernel(t *testing.T, name string, clusters int) string {
	t.Helper()
	k, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("kernel %s", name)
	}
	path := filepath.Join(t.TempDir(), name+".ddg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := irtext.Print(f, k.Build(clusters)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSchedulers(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	for _, sched := range []string{"convergent", "rawcc", "uas", "pcc", "list"} {
		out, err := capture(t, func() error {
			return run("vliw4", sched, 2002, "stats", true, []string{path})
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !strings.Contains(out, "cycles") {
			t.Errorf("%s: no stats printed:\n%s", sched, out)
		}
	}
}

func TestRunShowModes(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	for show, want := range map[string]string{
		"schedule":   "schedule vvmul",
		"assignment": "cluster",
		"dot":        "digraph",
		"trace":      "NOISE",
	} {
		out, err := capture(t, func() error {
			return run("vliw4", "convergent", 2002, show, false, []string{path})
		})
		if err != nil {
			t.Fatalf("show=%s: %v", show, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("show=%s missing %q:\n%s", show, want, out)
		}
	}
}

func TestRunErrors(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	cases := []struct {
		label   string
		machine string
		sched   string
		show    string
		args    []string
	}{
		{"bad machine", "gpu1", "convergent", "stats", []string{path}},
		{"bad scheduler", "vliw4", "magic", "stats", []string{path}},
		{"bad show", "vliw4", "convergent", "hologram", []string{path}},
		{"missing file", "vliw4", "convergent", "stats", []string{"/nonexistent.ddg"}},
		{"too many args", "vliw4", "convergent", "stats", []string{path, path}},
		{"trace needs convergent", "vliw4", "uas", "trace", []string{path}},
	}
	for _, c := range cases {
		if _, err := capture(t, func() error {
			return run(c.machine, c.sched, 1, c.show, false, c.args)
		}); err == nil {
			t.Errorf("%s: no error", c.label)
		}
	}
}

func TestRunRejectsRawGraphOnWrongMachine(t *testing.T) {
	// A graph built for 4 banks cannot schedule on raw2 (homes out of
	// range); run must surface the error rather than panic.
	path := writeKernel(t, "vvmul", 4)
	if _, err := capture(t, func() error {
		return run("raw2", "convergent", 1, "stats", true, []string{path})
	}); err == nil {
		t.Error("expected error for 4-bank kernel on raw2")
	}
}
