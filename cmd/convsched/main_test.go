package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/irtext"
)

// opts builds the default flag set for tests.
func opts(machine, scheduler, show string, verify bool) options {
	return options{
		machine:   machine,
		scheduler: scheduler,
		seed:      2002,
		show:      show,
		verify:    verify,
		chaosSeed: 1,
	}
}

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out := make([]byte, 1<<20)
	n, _ := r.Read(out)
	r.Close()
	return string(out[:n]), ferr
}

func writeKernel(t *testing.T, name string, clusters int) string {
	t.Helper()
	k, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("kernel %s", name)
	}
	path := filepath.Join(t.TempDir(), name+".ddg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := irtext.Print(f, k.Build(clusters)); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAllSchedulers(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	for _, sched := range []string{"convergent", "rawcc", "uas", "pcc", "list"} {
		out, err := capture(t, func() error {
			return run(opts("vliw4", sched, "stats", true), []string{path})
		})
		if err != nil {
			t.Fatalf("%s: %v", sched, err)
		}
		if !strings.Contains(out, "cycles") {
			t.Errorf("%s: no stats printed:\n%s", sched, out)
		}
	}
}

func TestRunShowModes(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	for show, want := range map[string]string{
		"schedule":   "schedule vvmul",
		"assignment": "cluster",
		"dot":        "digraph",
		"trace":      "NOISE",
		"report":     "served by rung convergent",
	} {
		out, err := capture(t, func() error {
			return run(opts("vliw4", "convergent", show, false), []string{path})
		})
		if err != nil {
			t.Fatalf("show=%s: %v", show, err)
		}
		if !strings.Contains(out, want) {
			t.Errorf("show=%s missing %q:\n%s", show, want, out)
		}
	}
}

// chaosOpts is opts() plus a chaos class, which batch mode must reject.
func chaosOpts(t *testing.T) options {
	t.Helper()
	o := opts("vliw4", "convergent", "stats", false)
	o.chaos = faultinject.Classes()[0]
	return o
}

// TestRunBatch drives the multi-input path: a file plus a directory expand
// into units scheduled over the engine, with the duplicate served from cache.
func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"vvmul", "fir"} {
		k, _ := bench.ByName(name)
		f, err := os.Create(filepath.Join(dir, name+".ddg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := irtext.Print(f, k.Build(4)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "convergent", "stats", true)
	o.cacheSize = 16
	out, err := capture(t, func() error {
		return run(o, []string{path, dir})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "batch: 3 units") {
		t.Errorf("no batch summary:\n%s", out)
	}
	// The standalone vvmul.ddg and the directory's are the same graph.
	if !strings.Contains(out, "[cached]") && !strings.Contains(out, "[shared]") {
		t.Errorf("duplicate unit not served from cache:\n%s", out)
	}
	if !strings.Contains(out, "1 hits") {
		t.Errorf("cache summary missing hit:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	cases := []struct {
		label string
		o     options
		args  []string
	}{
		{"bad machine", opts("gpu1", "convergent", "stats", false), []string{path}},
		{"bad scheduler", opts("vliw4", "magic", "stats", false), []string{path}},
		{"bad show", opts("vliw4", "convergent", "hologram", false), []string{path}},
		{"missing file", opts("vliw4", "convergent", "stats", false), []string{"/nonexistent.ddg"}},
		{"trace needs convergent", opts("vliw4", "uas", "trace", false), []string{path}},
		{"degenerate machine", opts("vliw0", "convergent", "stats", false), []string{path}},
		{"batch rejects -show", opts("vliw4", "convergent", "schedule", false), []string{path, path}},
		{"batch rejects -chaos", chaosOpts(t), []string{path, path}},
		{"empty directory", opts("vliw4", "convergent", "stats", false), []string{t.TempDir()}},
	}
	for _, c := range cases {
		if _, err := capture(t, func() error {
			return run(c.o, c.args)
		}); err == nil {
			t.Errorf("%s: no error", c.label)
		}
	}
}

func TestRunRejectsRawGraphOnWrongMachine(t *testing.T) {
	// A graph built for 4 banks cannot schedule on raw2 (homes out of
	// range); run must surface the error rather than panic.
	path := writeKernel(t, "vvmul", 4)
	if _, err := capture(t, func() error {
		return run(opts("raw2", "convergent", "stats", true), []string{path})
	}); err == nil {
		t.Error("expected error for 4-bank kernel on raw2")
	}
}

// TestChaosFallsThroughToBaseline: the headline CLI scenario — a poisoned
// pass panics inside both convergent rungs and the run still succeeds, with
// the report naming the baseline rung that served.
func TestChaosFallsThroughToBaseline(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "convergent", "report", true)
	o.chaos = faultinject.ChaosPassPanic
	out, err := capture(t, func() error {
		return run(o, []string{path})
	})
	if err != nil {
		t.Fatalf("chaos run failed outright: %v", err)
	}
	if !strings.Contains(out, "served by rung uas") {
		t.Errorf("report does not show the uas baseline serving:\n%s", out)
	}
	if !strings.Contains(out, "!pass-panic") || !strings.Contains(out, "panic") {
		t.Errorf("report does not name the injected fault:\n%s", out)
	}
}

func TestChaosRequiresConvergent(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "uas", "stats", false)
	o.chaos = faultinject.ChaosPassPanic
	if _, err := capture(t, func() error {
		return run(o, []string{path})
	}); err == nil {
		t.Error("chaos with a non-convergent scheduler accepted")
	}
}

func TestUnknownChaosClass(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "convergent", "stats", false)
	o.chaos = "gremlins"
	_, err := capture(t, func() error {
		return run(o, []string{path})
	})
	if err == nil || !strings.Contains(err.Error(), "chaos-list") {
		t.Errorf("unknown chaos class error %v should point at -chaos-list", err)
	}
}

// TestTimeoutWithFallback: a stalled convergent pipeline loses to the budget
// and the ladder serves a baseline within wall-clock bounds.
func TestTimeoutWithFallback(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "convergent", "report", true)
	o.chaos = faultinject.ChaosPassStall
	o.timeout = 50 * time.Millisecond
	t0 := time.Now()
	out, err := capture(t, func() error {
		return run(o, []string{path})
	})
	if err != nil {
		t.Fatalf("stalled run failed outright: %v", err)
	}
	if elapsed := time.Since(t0); elapsed > 10*time.Second {
		t.Errorf("run took %v with a 50ms budget", elapsed)
	}
	if !strings.Contains(out, "deadline") || !strings.Contains(out, "served by rung uas") {
		t.Errorf("report missing deadline degradation:\n%s", out)
	}
}

// TestFallbackLadderHealthy: -fallback on a healthy input must not change
// the result — the primary rung serves on the first attempt.
func TestFallbackLadderHealthy(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	o := opts("vliw4", "convergent", "report", true)
	o.fallback = true
	out, err := capture(t, func() error {
		return run(o, []string{path})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "served by rung convergent") {
		t.Errorf("healthy fallback run not served by the primary rung:\n%s", out)
	}
	if strings.Count(out, "rung ") != 2 { // one attempt line + served line
		t.Errorf("healthy run should have exactly one attempt:\n%s", out)
	}
}

// TestBatchStoreCrossRunReuse runs the same batch twice against one
// -store-dir: the second invocation must recover the first run's schedules
// and serve them as warm hits.
func TestBatchStoreCrossRunReuse(t *testing.T) {
	inputs := t.TempDir()
	for _, name := range []string{"vvmul", "fir"} {
		k, _ := bench.ByName(name)
		f, err := os.Create(filepath.Join(inputs, name+".ddg"))
		if err != nil {
			t.Fatal(err)
		}
		if err := irtext.Print(f, k.Build(4)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	o := opts("vliw4", "convergent", "stats", true)
	o.cacheSize = 16
	o.storeDir = filepath.Join(t.TempDir(), "store")

	out, err := capture(t, func() error { return run(o, []string{inputs}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "store: 0 recovered, 2 flushed") {
		t.Errorf("first run store summary wrong:\n%s", out)
	}

	out, err = capture(t, func() error { return run(o, []string{inputs}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "store: 2 recovered") {
		t.Errorf("second run recovered nothing:\n%s", out)
	}
	if !strings.Contains(out, "2 hits") {
		t.Errorf("second run not served warm:\n%s", out)
	}
}

func TestStoreFlagErrors(t *testing.T) {
	path := writeKernel(t, "vvmul", 4)
	dir := filepath.Dir(path)
	base := opts("vliw4", "convergent", "stats", true)
	base.cacheSize = 16
	cases := []struct {
		name string
		mut  func(*options)
		args []string
	}{
		{"single input", func(o *options) { o.storeDir = t.TempDir() }, []string{path}},
		{"with serve-addr", func(o *options) { o.storeDir = t.TempDir(); o.serveAddr = "127.0.0.1:1" }, []string{path, dir}},
		{"cache disabled", func(o *options) { o.storeDir = t.TempDir(); o.cacheSize = 0 }, []string{path, dir}},
		{"missing parent", func(o *options) { o.storeDir = filepath.Join(t.TempDir(), "no", "such", "store") }, []string{path, dir}},
	}
	for _, c := range cases {
		o := base
		c.mut(&o)
		if _, err := capture(t, func() error { return run(o, c.args) }); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
