package main

// Remote mode: with -serve-addr, convsched becomes a client of a running
// schedd instead of scheduling locally. Each input unit is POSTed to the
// service and the response printed in the batch-mode format, so local and
// remote runs compare line-for-line. 429 sheds are retried honoring
// Retry-After — the client side of the daemon's admission control — and
// transient 503s (a draining shard, a below-quorum gateway mid-churn) are
// retried with the same full-jitter backoff, so a membership change in the
// cluster looks like added latency to a batch run, not a failure.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// remoteSchedule mirrors the fields of the server's 200 body that the batch
// report uses.
type remoteSchedule struct {
	Served    string  `json:"served"`
	Cycles    int     `json:"cycles"`
	Comms     int     `json:"comms"`
	CacheHit  bool    `json:"cacheHit"`
	Shared    bool    `json:"shared"`
	Degraded  bool    `json:"degraded"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// remoteError mirrors the server's structured error body.
type remoteError struct {
	Error struct {
		Kind    string `json:"kind"`
		Message string `json:"message"`
		Rung    string `json:"rung"`
	} `json:"error"`
}

// runRemote posts every input unit to the schedd at addr. Failures are
// per-unit, like local batch mode.
func runRemote(o options, paths []string) error {
	if o.chaos != "" {
		return fmt.Errorf("-chaos is server-side in remote mode; start schedd -chaos instead")
	}
	if o.show != "stats" {
		return fmt.Errorf("-show %s is a local feature; remote mode prints stats", o.show)
	}
	base := o.serveAddr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	q := url.Values{}
	q.Set("machine", o.machine)
	q.Set("scheduler", o.scheduler)
	q.Set("seed", strconv.FormatInt(o.seed, 10))
	q.Set("verify", strconv.FormatBool(o.verify))
	q.Set("fallback", strconv.FormatBool(o.fallback))
	if o.timeout > 0 {
		q.Set("timeout", o.timeout.String())
	}
	target := base + "/schedule?" + q.Encode()

	type unit struct {
		id   string
		body []byte
	}
	var units []unit
	if len(paths) == 0 {
		body, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		units = []unit{{id: "stdin", body: body}}
	} else {
		for _, p := range paths {
			body, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			units = append(units, unit{id: p, body: body})
		}
	}

	failed := 0
	for _, u := range units {
		res, err := postUnit(target, o.tenant, u.body)
		if err != nil {
			failed++
			fmt.Fprintf(os.Stderr, "convsched: %s: %v\n", u.id, err)
			continue
		}
		tag := ""
		switch {
		case res.CacheHit:
			tag = "  [cached]"
		case res.Shared:
			tag = "  [shared]"
		case res.Degraded:
			tag = "  [degraded]"
		}
		fmt.Printf("%-32s %6d cycles %5d comms  served by %-12s %8s%s\n",
			u.id, res.Cycles, res.Comms, res.Served,
			(time.Duration(res.ElapsedMs * float64(time.Millisecond))).Round(time.Millisecond), tag)
	}
	fmt.Printf("remote: %d units via %s\n", len(units), base)
	if failed > 0 {
		return fmt.Errorf("%d of %d units failed", failed, len(units))
	}
	return nil
}

// postUnit sends one unit, retrying 429 sheds with the server's Retry-After
// hint and connection errors with the same jittered backoff, each a bounded
// number of times. Connection errors are retryable because they are exactly
// what a daemon mid-(warm-)restart or a gateway shuffling shards looks like:
// failing the whole batch on the first dial error turns a one-second blip
// into a rerun.
func postUnit(target, tenant string, body []byte) (*remoteSchedule, error) {
	const maxAttempts = 5
	for attempt := 1; ; attempt++ {
		req, err := http.NewRequest(http.MethodPost, target, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "text/plain")
		if tenant != "" {
			req.Header.Set("X-Schedd-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			if attempt < maxAttempts {
				// No Retry-After to honor on a failed dial; the empty header
				// falls back to the linear-backoff base, jittered like a 429.
				time.Sleep(retryAfter("", attempt))
				continue
			}
			return nil, fmt.Errorf("after %d attempts: %w", attempt, err)
		}
		rb, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode == http.StatusOK {
			var rs remoteSchedule
			if err := json.Unmarshal(rb, &rs); err != nil {
				return nil, fmt.Errorf("bad schedule body: %w", err)
			}
			return &rs, nil
		}
		if resp.StatusCode == http.StatusTooManyRequests && attempt < maxAttempts {
			time.Sleep(retryAfter(resp.Header.Get("Retry-After"), attempt))
			continue
		}
		var re remoteError
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < maxAttempts {
			// A 503 is retryable exactly when its structured kind says the
			// condition is transient: a draining shard hands its keyspace to a
			// peer within a probe interval, a below-quorum gateway recovers as
			// probes notice restarted shards, and a replaying store finishes.
			// Permanent 503s (no structured kind, or an unknown one) fail fast.
			if json.Unmarshal(rb, &re) == nil && retryable503(re.Error.Kind) {
				time.Sleep(retryAfter(resp.Header.Get("Retry-After"), attempt))
				re = remoteError{}
				continue
			}
		}
		if json.Unmarshal(rb, &re) == nil && re.Error.Kind != "" {
			if re.Error.Rung != "" {
				return nil, fmt.Errorf("%s (%s) at rung %s", re.Error.Message, re.Error.Kind, re.Error.Rung)
			}
			return nil, fmt.Errorf("%s (%s)", re.Error.Message, re.Error.Kind)
		}
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, rb)
	}
}

// retryable503 reports whether a structured 503 kind names a transient
// condition worth waiting out — membership churn (draining, degraded,
// unavailable) or a store replay (starting) — rather than a permanent refusal.
func retryable503(kind string) bool {
	switch kind {
	case "draining", "degraded", "unavailable", "starting":
		return true
	}
	return false
}

// retryRand guards the shared jitter source: http retries can run from
// concurrent batch goroutines and math/rand.Rand is not concurrency-safe.
var (
	retryRandMu sync.Mutex
	retryRand   = rand.New(rand.NewSource(time.Now().UnixNano()))
)

// retryAfter turns a Retry-After header (integer seconds) into a wait, with
// a linear-backoff fallback when the header is absent or unparseable. The
// wait is jittered to [base/2, base]: a server shedding under overload
// hands every concurrent client the same integer hint, and honoring it
// verbatim re-saturates admission in lockstep on the next tick — the
// classic synchronized retry storm.
func retryAfter(header string, attempt int) time.Duration {
	retryRandMu.Lock()
	defer retryRandMu.Unlock()
	return jitteredRetry(header, attempt, retryRand)
}

// jitteredRetry is retryAfter with an injectable randomness source so tests
// can pin the jitter bounds deterministically.
func jitteredRetry(header string, attempt int, rng *rand.Rand) time.Duration {
	base := time.Duration(attempt) * 50 * time.Millisecond
	if s, err := strconv.Atoi(header); err == nil && s >= 0 {
		base = time.Duration(s) * time.Second
		if base == 0 {
			base = 50 * time.Millisecond
		}
		if base > 2*time.Second {
			base = 2 * time.Second
		}
	}
	// Full-jitter over the upper half: wait = base/2 + uniform(0, base/2].
	half := base / 2
	return half + time.Duration(rng.Int63n(int64(half)+1))
}
