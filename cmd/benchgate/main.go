// Command benchgate compares two `go test -bench -benchmem` text outputs —
// a base run and a head run — and fails (exit 1) when the head regresses:
// median ns/op more than a threshold percentage above base, or median
// allocs/op above base at all. It is a dependency-free stand-in for
// benchstat, sized to what the CI gate needs: collect samples per benchmark
// (run the benchmarks with -count=N to get several), take medians, compare,
// and emit a machine-readable JSON report.
//
// Usage:
//
//	benchgate -base base.bench -head head.bench [-threshold 5] [-json report.json]
//
// Benchmarks present only in head are reported as new and do not gate (a PR
// may add benchmarks); benchmarks present only in base are reported as
// vanished and do not gate either (renames happen), but both appear in the
// JSON report so a reviewer can spot an accidental deletion.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// sample is one parsed benchmark result line.
type sample struct {
	nsPerOp     float64
	allocsPerOp float64
	hasAllocs   bool
}

// benchLine matches the result lines `go test -bench` emits, e.g.
//
//	BenchmarkPrefMapPassLoop/raw16-8   50   4876279 ns/op   0 B/op   0 allocs/op
//
// Metric fields beyond ns/op are optional and may include custom metrics
// (cycles, speedup), so the tail is scanned field-by-field instead.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// gomaxprocsSuffix strips the trailing -N goroutine-count tag from a
// benchmark name so runs on machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// parseFile collects every sample per (suffix-stripped) benchmark name.
func parseFile(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string][]sample)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(m[1], "")
		fields := splitFields(m[2])
		var s sample
		seenNs := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				s.nsPerOp = v
				seenNs = true
			case "allocs/op":
				s.allocsPerOp = v
				s.hasAllocs = true
			}
		}
		if seenNs {
			out[name] = append(out[name], s)
		}
	}
	return out, sc.Err()
}

func splitFields(s string) []string {
	var out []string
	field := ""
	for _, r := range s {
		if r == ' ' || r == '\t' {
			if field != "" {
				out = append(out, field)
				field = ""
			}
			continue
		}
		field += string(r)
	}
	if field != "" {
		out = append(out, field)
	}
	return out
}

func median(xs []float64) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	n := len(ys)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return ys[n/2]
	}
	return (ys[n/2-1] + ys[n/2]) / 2
}

// comparison is one benchmark's verdict in the JSON report.
type comparison struct {
	Name        string  `json:"name"`
	Status      string  `json:"status"` // "ok", "regression", "new", "vanished"
	BaseNs      float64 `json:"base_ns_per_op,omitempty"`
	HeadNs      float64 `json:"head_ns_per_op,omitempty"`
	DeltaPct    float64 `json:"delta_pct,omitempty"`
	BaseAllocs  float64 `json:"base_allocs_per_op"`
	HeadAllocs  float64 `json:"head_allocs_per_op"`
	BaseSamples int     `json:"base_samples,omitempty"`
	HeadSamples int     `json:"head_samples,omitempty"`
	Reason      string  `json:"reason,omitempty"`
}

type report struct {
	ThresholdPct float64      `json:"threshold_pct"`
	Failed       bool         `json:"failed"`
	Benchmarks   []comparison `json:"benchmarks"`
}

func main() {
	basePath := flag.String("base", "", "bench output of the base commit")
	headPath := flag.String("head", "", "bench output of the head commit")
	threshold := flag.Float64("threshold", 5, "max allowed ns/op regression, percent")
	jsonPath := flag.String("json", "", "write the comparison report to this file")
	flag.Parse()
	if *basePath == "" || *headPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchgate -base base.bench -head head.bench [-threshold 5] [-json report.json]")
		os.Exit(2)
	}

	base, err := parseFile(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	head, err := parseFile(*headPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(head) == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: head run contains no benchmark results")
		os.Exit(2)
	}

	rep := compare(base, head, *threshold)

	for _, c := range rep.Benchmarks {
		switch c.Status {
		case "regression":
			fmt.Printf("FAIL %-50s %s\n", c.Name, c.Reason)
		case "new":
			fmt.Printf("new  %-50s %.0f ns/op, %.1f allocs/op (no base to gate against)\n", c.Name, c.HeadNs, c.HeadAllocs)
		case "vanished":
			fmt.Printf("gone %-50s was %.0f ns/op in base\n", c.Name, c.BaseNs)
		default:
			fmt.Printf("ok   %-50s %+.1f%% ns/op, allocs %.1f -> %.1f\n", c.Name, c.DeltaPct, c.BaseAllocs, c.HeadAllocs)
		}
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
	}

	if rep.Failed {
		fmt.Println("benchgate: FAILED")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// compare applies the gate: for every benchmark present in both runs, the
// head median ns/op must stay within thresholdPct of base, and the head
// median allocs/op must not exceed base.
func compare(base, head map[string][]sample, thresholdPct float64) report {
	rep := report{ThresholdPct: thresholdPct}
	names := make([]string, 0, len(head)+len(base))
	for n := range head {
		names = append(names, n)
	}
	for n := range base {
		if _, ok := head[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	for _, name := range names {
		hs, inHead := head[name]
		bs, inBase := base[name]
		c := comparison{Name: name, BaseSamples: len(bs), HeadSamples: len(hs)}
		switch {
		case !inBase:
			c.Status = "new"
			c.HeadNs = medianNs(hs)
			c.HeadAllocs = medianAllocs(hs)
		case !inHead:
			c.Status = "vanished"
			c.BaseNs = medianNs(bs)
			c.BaseAllocs = medianAllocs(bs)
		default:
			c.BaseNs, c.HeadNs = medianNs(bs), medianNs(hs)
			c.BaseAllocs, c.HeadAllocs = medianAllocs(bs), medianAllocs(hs)
			if c.BaseNs > 0 {
				c.DeltaPct = (c.HeadNs - c.BaseNs) / c.BaseNs * 100
			}
			c.Status = "ok"
			if c.DeltaPct > thresholdPct {
				c.Status = "regression"
				c.Reason = fmt.Sprintf("ns/op %+.1f%% (%.0f -> %.0f), threshold %.1f%%", c.DeltaPct, c.BaseNs, c.HeadNs, thresholdPct)
				rep.Failed = true
			}
			if c.HeadAllocs > c.BaseAllocs {
				c.Status = "regression"
				if c.Reason != "" {
					c.Reason += "; "
				}
				c.Reason += fmt.Sprintf("allocs/op rose %.1f -> %.1f", c.BaseAllocs, c.HeadAllocs)
				rep.Failed = true
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, c)
	}
	return rep
}

func medianNs(ss []sample) float64 {
	xs := make([]float64, len(ss))
	for i, s := range ss {
		xs[i] = s.nsPerOp
	}
	return median(xs)
}

func medianAllocs(ss []sample) float64 {
	var xs []float64
	for _, s := range ss {
		if s.hasAllocs {
			xs = append(xs, s.allocsPerOp)
		}
	}
	return median(xs)
}
