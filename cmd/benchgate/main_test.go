package main

import (
	"os"
	"path/filepath"
	"testing"
)

const baseBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkPrefMapPassLoop/raw4-8        	      50	   1800000 ns/op	    2785 B/op	       0 allocs/op
BenchmarkPrefMapPassLoop/raw4-8        	      50	   1820000 ns/op	    2785 B/op	       0 allocs/op
BenchmarkPrefMapPassLoop/raw4-8        	      50	   1790000 ns/op	    2785 B/op	       0 allocs/op
BenchmarkEngineParallelWarm-8          	     100	   5000000 ns/op	  123456 B/op	    1053 allocs/op
BenchmarkVanished-8                    	     100	   1000000 ns/op
PASS
`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseFileCollectsSamplesAndStripsProcSuffix(t *testing.T) {
	got, err := parseFile(writeTemp(t, "base.bench", baseBench))
	if err != nil {
		t.Fatal(err)
	}
	ss, ok := got["BenchmarkPrefMapPassLoop/raw4"]
	if !ok {
		t.Fatalf("proc suffix not stripped; have keys %v", got)
	}
	if len(ss) != 3 {
		t.Fatalf("collected %d samples, want 3", len(ss))
	}
	if ss[0].nsPerOp != 1800000 || !ss[0].hasAllocs || ss[0].allocsPerOp != 0 {
		t.Fatalf("bad first sample: %+v", ss[0])
	}
	if ss := got["BenchmarkVanished"]; len(ss) != 1 || ss[0].hasAllocs {
		t.Fatalf("line without -benchmem fields parsed wrong: %+v", ss)
	}
}

func TestCompareGatesTimeRegressions(t *testing.T) {
	base := map[string][]sample{
		"B/x": {{nsPerOp: 100, allocsPerOp: 0, hasAllocs: true}, {nsPerOp: 104, allocsPerOp: 0, hasAllocs: true}, {nsPerOp: 96, allocsPerOp: 0, hasAllocs: true}},
	}
	ok := map[string][]sample{
		"B/x": {{nsPerOp: 103, allocsPerOp: 0, hasAllocs: true}},
	}
	if rep := compare(base, ok, 5); rep.Failed {
		t.Fatalf("+3%% flagged as regression: %+v", rep.Benchmarks)
	}
	slow := map[string][]sample{
		"B/x": {{nsPerOp: 110, allocsPerOp: 0, hasAllocs: true}},
	}
	rep := compare(base, slow, 5)
	if !rep.Failed || rep.Benchmarks[0].Status != "regression" {
		t.Fatalf("+10%% not flagged: %+v", rep.Benchmarks)
	}
}

func TestCompareGatesAnyAllocIncrease(t *testing.T) {
	base := map[string][]sample{
		"B/x": {{nsPerOp: 100, allocsPerOp: 0, hasAllocs: true}},
	}
	head := map[string][]sample{
		"B/x": {{nsPerOp: 100, allocsPerOp: 1, hasAllocs: true}},
	}
	rep := compare(base, head, 5)
	if !rep.Failed {
		t.Fatal("allocs/op 0 -> 1 not flagged even though time held steady")
	}
}

func TestCompareToleratesNewAndVanishedBenchmarks(t *testing.T) {
	base := map[string][]sample{
		"B/old": {{nsPerOp: 100}},
	}
	head := map[string][]sample{
		"B/new": {{nsPerOp: 100, allocsPerOp: 0, hasAllocs: true}},
	}
	rep := compare(base, head, 5)
	if rep.Failed {
		t.Fatalf("new/vanished benchmarks must not gate: %+v", rep.Benchmarks)
	}
	statuses := map[string]string{}
	for _, c := range rep.Benchmarks {
		statuses[c.Name] = c.Status
	}
	if statuses["B/new"] != "new" || statuses["B/old"] != "vanished" {
		t.Fatalf("statuses %v, want new + vanished", statuses)
	}
}

func TestCompareUsesMedianNotMean(t *testing.T) {
	// One wild outlier in base must not mask a real regression: the median
	// of {100, 100, 1000} is 100, so head at 120 is +20%.
	base := map[string][]sample{
		"B/x": {{nsPerOp: 100}, {nsPerOp: 100}, {nsPerOp: 1000}},
	}
	head := map[string][]sample{
		"B/x": {{nsPerOp: 120}},
	}
	if rep := compare(base, head, 5); !rep.Failed {
		t.Fatal("regression vs median hidden by an outlier mean")
	}
}
