// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation as Go benchmarks, one target per experiment,
// plus ablation benchmarks for the design choices DESIGN.md calls out.
//
// Benchmarks report both wall-clock scheduling time (the standard ns/op)
// and the quality of the produced schedule via custom metrics:
//
//	cycles      schedule length of the produced space-time schedule
//	speedup     relative to the same kernel on a single cluster/tile
//
// Run everything with:
//
//	go test -bench=. -benchmem
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/regalloc"
	"repro/internal/robust"
	"repro/internal/sim"
)

// oneCluster returns the single-cluster cycle count of a kernel, cached
// across benchmarks.
var oneClusterCache = map[string]int{}

func oneCluster(b *testing.B, k bench.Kernel, m *machine.Model) int {
	b.Helper()
	key := k.Name + "/" + m.Name
	if v, ok := oneClusterCache[key]; ok {
		return v
	}
	g := k.Build(1)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: make([]int, g.Len())})
	if err != nil {
		b.Fatal(err)
	}
	oneClusterCache[key] = s.Length()
	return s.Length()
}

// BenchmarkTable1PassSequences measures the cost of one convergent pass
// sequence application per machine (Table 1 is configuration, so the
// benchmark times the configured sequences themselves on a mid-size graph).
func BenchmarkTable1PassSequences(b *testing.B) {
	cases := []struct {
		label string
		m     *machine.Model
		seq   []core.Pass
	}{
		{"raw16", machine.Raw(16), passes.RawSequence()},
		{"vliw4", machine.Chorus(4), passes.VliwSequence()},
		{"vliw4-published", machine.Chorus(4), passes.PublishedVliwSequence()},
	}
	k, _ := bench.ByName("mxm")
	for _, c := range cases {
		b.Run(c.label, func(b *testing.B) {
			g := k.Build(c.m.NumClusters)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.Converge(g, c.m, c.seq, exp.Seed)
			}
		})
	}
}

// BenchmarkTable2RawSpeedup regenerates Table 2: for every Raw-suite
// benchmark and tile count, the convergent scheduler's cycle count and
// speedup (and, under the "base" sub-benchmarks, the Rawcc baseline's).
func BenchmarkTable2RawSpeedup(b *testing.B) {
	for _, k := range bench.RawSuite() {
		for _, tiles := range exp.Tiles {
			m := machine.Raw(tiles)
			one := oneCluster(b, k, machine.Raw(1))
			b.Run(fmt.Sprintf("conv/%s/%dtiles", k.Name, tiles), func(b *testing.B) {
				g := k.Build(tiles)
				var cycles int
				for i := 0; i < b.N; i++ {
					s, _, err := core.Schedule(g, m, passes.RawSequence(), exp.Seed)
					if err != nil {
						b.Fatal(err)
					}
					cycles = s.Length()
				}
				b.ReportMetric(float64(cycles), "cycles")
				b.ReportMetric(float64(one)/float64(cycles), "speedup")
			})
			b.Run(fmt.Sprintf("base/%s/%dtiles", k.Name, tiles), func(b *testing.B) {
				g := k.Build(tiles)
				var cycles int
				for i := 0; i < b.N; i++ {
					s, err := rawcc.Schedule(g, m)
					if err != nil {
						b.Fatal(err)
					}
					cycles = s.Length()
				}
				b.ReportMetric(float64(cycles), "cycles")
				b.ReportMetric(float64(one)/float64(cycles), "speedup")
			})
		}
	}
}

// BenchmarkFig6RawBars is the 16-tile column of Table 2 (the figure plots
// the same data); kept as its own target so `-bench Fig6` regenerates
// exactly the figure's series.
func BenchmarkFig6RawBars(b *testing.B) {
	m := machine.Raw(16)
	for _, k := range bench.RawSuite() {
		one := oneCluster(b, k, machine.Raw(1))
		b.Run(k.Name, func(b *testing.B) {
			g := k.Build(16)
			var conv, base int
			for i := 0; i < b.N; i++ {
				cs, _, err := core.Schedule(g, m, passes.RawSequence(), exp.Seed)
				if err != nil {
					b.Fatal(err)
				}
				bs, err := rawcc.Schedule(g, m)
				if err != nil {
					b.Fatal(err)
				}
				conv, base = cs.Length(), bs.Length()
			}
			b.ReportMetric(float64(one)/float64(conv), "conv-speedup")
			b.ReportMetric(float64(one)/float64(base), "base-speedup")
		})
	}
}

// BenchmarkFig7Convergence regenerates Figure 7's data: the per-pass
// spatial churn on Raw, reporting the total fraction of preference changes
// summed over passes (the figure's area).
func BenchmarkFig7Convergence(b *testing.B) {
	m := machine.Raw(16)
	for _, k := range bench.RawSuite() {
		b.Run(k.Name, func(b *testing.B) {
			g := k.Build(16)
			var churn float64
			for i := 0; i < b.N; i++ {
				res := core.Converge(g, m, passes.RawSequence(), exp.Seed)
				churn = 0
				for _, pc := range res.Trace {
					churn += pc.Fraction
				}
			}
			b.ReportMetric(churn, "total-churn")
		})
	}
}

// BenchmarkFig8VliwSpeedup regenerates Figure 8: PCC, UAS and convergent on
// the four-cluster VLIW.
func BenchmarkFig8VliwSpeedup(b *testing.B) {
	m := machine.Chorus(4)
	for _, k := range bench.VliwSuite() {
		one := oneCluster(b, k, machine.SingleVLIW())
		b.Run("pcc/"+k.Name, func(b *testing.B) {
			g := k.Build(4)
			var cycles int
			for i := 0; i < b.N; i++ {
				s, err := pcc.Schedule(g, m, pcc.Options{})
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.Length()
			}
			b.ReportMetric(float64(one)/float64(cycles), "speedup")
		})
		b.Run("uas/"+k.Name, func(b *testing.B) {
			g := k.Build(4)
			var cycles int
			for i := 0; i < b.N; i++ {
				s, err := uas.Schedule(g, m)
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.Length()
			}
			b.ReportMetric(float64(one)/float64(cycles), "speedup")
		})
		b.Run("conv/"+k.Name, func(b *testing.B) {
			g := k.Build(4)
			var cycles int
			for i := 0; i < b.N; i++ {
				s, _, err := core.Schedule(g, m, passes.VliwSequence(), exp.Seed)
				if err != nil {
					b.Fatal(err)
				}
				cycles = s.Length()
			}
			b.ReportMetric(float64(one)/float64(cycles), "speedup")
		})
	}
}

// BenchmarkFig9Convergence regenerates Figure 9's data on the VLIW.
func BenchmarkFig9Convergence(b *testing.B) {
	m := machine.Chorus(4)
	for _, k := range bench.VliwSuite() {
		b.Run(k.Name, func(b *testing.B) {
			g := k.Build(4)
			var churn float64
			for i := 0; i < b.N; i++ {
				res := core.Converge(g, m, passes.VliwSequence(), exp.Seed)
				churn = 0
				for _, pc := range res.Trace {
					churn += pc.Fraction
				}
			}
			b.ReportMetric(churn, "total-churn")
		})
	}
}

// BenchmarkFig10Scalability regenerates Figure 10: wall-clock scheduling
// time versus instruction count for the three VLIW schedulers (the ns/op of
// each sub-benchmark is the figure's y value).
func BenchmarkFig10Scalability(b *testing.B) {
	m := machine.Chorus(4)
	for _, n := range []int{100, 250, 500, 1000, 2000} {
		g := bench.RandomLayered(n, n/12+4, 4, exp.Seed)
		b.Run(fmt.Sprintf("pcc/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pcc.Schedule(g, m, pcc.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("uas/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := uas.Schedule(g, m); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("conv/%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := core.Schedule(g, m, passes.VliwSequence(), exp.Seed); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations --------------------------------------------------------

// ablate runs one pass-sequence variant over a suite and reports the mean
// schedule-length ratio to the reference sequence (1.0 = no change; below
// 1.0 = the variant produces shorter schedules).
func ablate(b *testing.B, m *machine.Model, suite []bench.Kernel, ref, variant []core.Pass) {
	b.Helper()
	var ratioSum float64
	count := 0
	for i := 0; i < b.N; i++ {
		ratioSum, count = 0, 0
		for _, k := range suite {
			g := k.Build(m.NumClusters)
			rs, _, err := core.Schedule(g, m, ref, exp.Seed)
			if err != nil {
				b.Fatal(err)
			}
			vs, _, err := core.Schedule(g, m, variant, exp.Seed)
			if err != nil {
				b.Fatal(err)
			}
			ratioSum += float64(vs.Length()) / float64(rs.Length())
			count++
		}
	}
	b.ReportMetric(ratioSum/float64(count), "len-ratio")
}

// BenchmarkAblationNoise toggles the NOISE pass on the VLIW sequence.
func BenchmarkAblationNoise(b *testing.B) {
	ref := passes.VliwSequence()
	var noNoise []core.Pass
	for _, p := range ref {
		if p.Name() != "NOISE" {
			noNoise = append(noNoise, p)
		}
	}
	b.Run("without-noise", func(b *testing.B) {
		ablate(b, machine.Chorus(4), bench.VliwSuite(), ref, noNoise)
	})
}

// BenchmarkAblationFULoad compares the machine-aware FULOAD against the
// paper's plain LOAD and against no balancing pass at all on the VLIW.
func BenchmarkAblationFULoad(b *testing.B) {
	ref := passes.VliwSequence()
	swap := func(name string, repl core.Pass) []core.Pass {
		var out []core.Pass
		for _, p := range ref {
			if p.Name() == "FULOAD" {
				if repl != nil {
					out = append(out, repl)
				}
				continue
			}
			out = append(out, p)
		}
		_ = name
		return out
	}
	b.Run("plain-load", func(b *testing.B) {
		ablate(b, machine.Chorus(4), bench.VliwSuite(), ref, swap("LOAD", passes.Load{}))
	})
	b.Run("no-balancing(published-Table1b)", func(b *testing.B) {
		ablate(b, machine.Chorus(4), bench.VliwSuite(), ref, passes.PublishedVliwSequence())
	})
}

// BenchmarkAblationLevelStride sweeps LEVEL's granularity on Raw (the paper
// applies it every four levels).
func BenchmarkAblationLevelStride(b *testing.B) {
	mkSeq := func(stride int) []core.Pass {
		var out []core.Pass
		for _, p := range passes.RawSequence() {
			if p.Name() == "LEVEL" {
				out = append(out, passes.Level{Stride: stride})
				continue
			}
			out = append(out, p)
		}
		return out
	}
	ref := passes.RawSequence()
	for _, stride := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("stride%d", stride), func(b *testing.B) {
			ablate(b, machine.Raw(16), bench.RawSuite(), ref, mkSeq(stride))
		})
	}
}

// BenchmarkAblationPathPropThreshold sweeps PATHPROP's confidence
// threshold on Raw.
func BenchmarkAblationPathPropThreshold(b *testing.B) {
	mkSeq := func(th float64) []core.Pass {
		var out []core.Pass
		for _, p := range passes.RawSequence() {
			if p.Name() == "PATHPROP" {
				out = append(out, passes.PathProp{Threshold: th})
				continue
			}
			out = append(out, p)
		}
		return out
	}
	ref := passes.RawSequence()
	for _, th := range []float64{1.2, 2, 4, 8} {
		b.Run(fmt.Sprintf("threshold%.1f", th), func(b *testing.B) {
			ablate(b, machine.Raw(16), bench.RawSuite(), ref, mkSeq(th))
		})
	}
}

// BenchmarkAblationPassOrder tests the framework's phase-ordering
// robustness claim: rotating the spatial heart of the Raw sequence should
// degrade results far less than classical phase-ordering failures, because
// preferences are revisable.
func BenchmarkAblationPassOrder(b *testing.B) {
	ref := passes.RawSequence()
	// Rotate the middle passes (keep INITTIME first and EMPHCP last).
	mid := ref[1 : len(ref)-1]
	for rot := 1; rot <= 3; rot++ {
		variant := []core.Pass{ref[0]}
		for i := range mid {
			variant = append(variant, mid[(i+rot)%len(mid)])
		}
		variant = append(variant, ref[len(ref)-1])
		b.Run(fmt.Sprintf("rotate%d", rot), func(b *testing.B) {
			ablate(b, machine.Raw(16), bench.RawSuite(), ref, variant)
		})
	}
}

// BenchmarkAblationRegPressure splices the REGPRES pass into the VLIW
// sequence and reports both schedule-length ratio and the spill count under
// a tight 12-register file, quantifying the ILP-versus-pressure tradeoff
// the paper's introduction describes.
func BenchmarkAblationRegPressure(b *testing.B) {
	const regs = 12
	m := machine.Chorus(4)
	ref := passes.VliwSequence()
	withRP := append([]core.Pass{}, ref[:len(ref)-1]...)
	withRP = append(withRP, passes.RegPres{}, ref[len(ref)-1])
	run := func(b *testing.B, seq []core.Pass) (lenSum, spills int) {
		for _, k := range bench.VliwSuite() {
			g := k.Build(4)
			s, _, err := core.Schedule(g, m, seq, exp.Seed)
			if err != nil {
				b.Fatal(err)
			}
			ra, err := regalloc.Allocate(s, regs)
			if err != nil {
				b.Fatal(err)
			}
			lenSum += s.Length()
			spills += ra.SpillCount()
		}
		return
	}
	b.Run("reference", func(b *testing.B) {
		var lenSum, spills int
		for i := 0; i < b.N; i++ {
			lenSum, spills = run(b, ref)
		}
		b.ReportMetric(float64(lenSum), "total-cycles")
		b.ReportMetric(float64(spills), "spills")
	})
	b.Run("with-regpres", func(b *testing.B) {
		var lenSum, spills int
		for i := 0; i < b.N; i++ {
			lenSum, spills = run(b, withRP)
		}
		b.ReportMetric(float64(lenSum), "total-cycles")
		b.ReportMetric(float64(spills), "spills")
	})
}

// BenchmarkListScheduler isolates the shared cycle-driven list scheduler on
// a large random graph: the substrate every scheduler pays for.
func BenchmarkListScheduler(b *testing.B) {
	for _, n := range []int{200, 1000} {
		g := bench.RandomLayered(n, n/12+4, 4, exp.Seed)
		m := machine.Chorus(4)
		assign := make([]int, g.Len())
		for i, in := range g.Instrs {
			assign[i] = i % 4
			if in.Preplaced() {
				assign[i] = in.Home
			}
		}
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := listsched.Run(g, m, listsched.Options{Assignment: assign}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPrefMapOps isolates the weight-matrix primitives the passes are
// built on.
func BenchmarkPrefMapOps(b *testing.B) {
	b.Run("normalize", func(b *testing.B) {
		p := core.NewPrefMap(500, 100, 16)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p.NormalizeAll()
		}
	})
	b.Run("preferred-cluster", func(b *testing.B) {
		p := core.NewPrefMap(500, 100, 16)
		p.MulCluster(250, 7, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < 500; j++ {
				p.PreferredCluster(j)
			}
		}
	})
}

// BenchmarkPrefMapPassLoop times one warm application of each machine's full
// convergent pass sequence on a mid-size graph: the zero-allocation hot path
// the scratch-arena rewrite targets. The benchmark-gate CI step (see
// cmd/benchgate) compares these numbers base-vs-head and fails the build on
// a time regression or any allocs/op above zero.
func BenchmarkPrefMapPassLoop(b *testing.B) {
	for _, m := range []*machine.Model{machine.Raw(4), machine.Raw(16), machine.Chorus(4)} {
		m := m
		b.Run(m.Name, func(b *testing.B) {
			seq := passes.ForMachine(m.Name)
			var g *ir.Graph
			for _, k := range bench.All() {
				if k.Name == "mxm" {
					g = k.Build(m.NumClusters)
				}
			}
			if g == nil {
				b.Fatal("mxm kernel not found")
			}
			s := core.NewState(g, m, exp.Seed)
			core.RunPasses(s, seq)
			for i := 0; i < g.Len(); i++ {
				s.Distances(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				core.RunPasses(s, seq)
			}
		})
	}
}

// BenchmarkSimulator isolates schedule execution + verification against
// reference semantics.
func BenchmarkSimulator(b *testing.B) {
	k, _ := bench.ByName("mxm")
	g := k.Build(4)
	m := machine.Chorus(4)
	s, err := uas.Schedule(g, m)
	if err != nil {
		b.Fatal(err)
	}
	mem := k.InitMemory(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Verify(s, mem); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationIterative measures the iterative convergence mode
// (schedule feedback re-seeding the preference map) at 1, 2 and 4 rounds on
// the Raw suite, reporting the mean schedule-length ratio to one round.
func BenchmarkAblationIterative(b *testing.B) {
	m := machine.Raw(16)
	baseLens := map[string]int{}
	for _, k := range bench.RawSuite() {
		g := k.Build(16)
		res, err := core.IterativeSchedule(g, m, passes.RawSequence(), exp.Seed, 1)
		if err != nil {
			b.Fatal(err)
		}
		baseLens[k.Name] = res.Best.Length()
	}
	for _, rounds := range []int{2, 4} {
		b.Run(fmt.Sprintf("rounds%d", rounds), func(b *testing.B) {
			var ratioSum float64
			for i := 0; i < b.N; i++ {
				ratioSum = 0
				for _, k := range bench.RawSuite() {
					g := k.Build(16)
					res, err := core.IterativeSchedule(g, m, passes.RawSequence(), exp.Seed, rounds)
					if err != nil {
						b.Fatal(err)
					}
					ratioSum += float64(res.Best.Length()) / float64(baseLens[k.Name])
				}
			}
			b.ReportMetric(ratioSum/float64(len(bench.RawSuite())), "len-ratio")
		})
	}
}

// engineJobs builds one scheduling job per benchmark kernel on the given
// machine, the workload of the engine throughput benchmarks.
func engineJobs(m *machine.Model) []engine.Job {
	var jobs []engine.Job
	for _, k := range bench.All() {
		jobs = append(jobs, engine.Job{
			ID:      k.Name,
			Graph:   k.Build(m.NumClusters),
			Machine: m,
			Opts:    robust.Options{Seed: exp.Seed},
		})
	}
	return jobs
}

// BenchmarkEngineSerial is the reference point for the engine benchmarks:
// every kernel through the resilient driver, one at a time, no cache — the
// shape experiment code had before the batch engine existed.
func BenchmarkEngineSerial(b *testing.B) {
	jobs := engineJobs(machine.Raw(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			if _, _, err := robust.Schedule(context.Background(), j.Graph, j.Machine, j.Opts); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkEngineParallelCold batches all kernels through a fresh engine
// each iteration: pure worker-pool speedup, no cache reuse. On a single-core
// runner this matches EngineSerial; the gap appears with GOMAXPROCS > 1.
func BenchmarkEngineParallelCold(b *testing.B) {
	jobs := engineJobs(machine.Raw(16))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := engine.New(0, 2*len(jobs))
		for _, r := range e.Batch(context.Background(), jobs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkEngineParallelWarm batches all kernels through a pre-warmed
// engine: every schedule rehydrates from the content-addressed cache.
func BenchmarkEngineParallelWarm(b *testing.B) {
	jobs := engineJobs(machine.Raw(16))
	e := engine.New(0, 2*len(jobs))
	for _, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			b.Fatal(r.Err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range e.Batch(context.Background(), jobs) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
			if !r.CacheHit {
				b.Fatalf("%s missed the warm cache", r.ID)
			}
		}
	}
}
