package repro

// Allocation-regression guards for the hot path. The convergent pass loop
// (core.RunPasses) must perform ZERO heap allocations per application once
// the state is warm — the scratch arena, marginal caches, distance cache and
// level bins are all at their high-water marks after a few runs — and the
// guard pins that with testing.AllocsPerRun so a regression (a new closure,
// a map in a pass, an append past a warm cap) fails the suite rather than
// silently eroding the rewrite.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/passes"
)

// allocKernels is a structurally varied subset: dense matrix code, a wide
// reduction and a long dependence chain stress different passes.
func allocKernels(t testing.TB) []bench.Kernel {
	t.Helper()
	var out []bench.Kernel
	for _, k := range bench.All() {
		switch k.Name {
		case "mxm", "sha", "vvmul":
			out = append(out, k)
		}
	}
	if len(out) == 0 {
		t.Fatal("no alloc-guard kernels found")
	}
	return out
}

func TestRunPassesZeroAllocs(t *testing.T) {
	for _, m := range hotpathMachines() {
		seq := passes.ForMachine(m.Name)
		for _, k := range allocKernels(t) {
			t.Run(m.Name+"/"+k.Name, func(t *testing.T) {
				g := k.Build(m.NumClusters)
				s := core.NewState(g, m, exp.Seed)
				// Warm the arena and level bins: weights (and so scratch
				// demand) drift across runs, so give the high-water marks a
				// few runs to settle before measuring.
				for i := 0; i < 5; i++ {
					core.RunPasses(s, seq)
				}
				// The per-source distance cache fills on demand, and which
				// sources the passes consult drifts with the weights; fill
				// it completely so a late first-touch does not show up as a
				// (cached-thereafter) allocation.
				for i := 0; i < g.Len(); i++ {
					s.Distances(i)
				}
				avg := testing.AllocsPerRun(10, func() {
					core.RunPasses(s, seq)
				})
				if avg != 0 {
					t.Errorf("warm RunPasses allocates %.1f times per run, want 0", avg)
				}
			})
		}
	}
}
