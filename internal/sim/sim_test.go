package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
)

func TestEvalIntegerOps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		args []Value
		want int64
	}{
		{ir.Add, []Value{IntVal(3), IntVal(4)}, 7},
		{ir.Sub, []Value{IntVal(3), IntVal(4)}, -1},
		{ir.Mul, []Value{IntVal(3), IntVal(4)}, 12},
		{ir.Div, []Value{IntVal(9), IntVal(2)}, 4},
		{ir.Div, []Value{IntVal(9), IntVal(0)}, 0},
		{ir.Rem, []Value{IntVal(9), IntVal(4)}, 1},
		{ir.Rem, []Value{IntVal(9), IntVal(0)}, 0},
		{ir.And, []Value{IntVal(6), IntVal(3)}, 2},
		{ir.Or, []Value{IntVal(6), IntVal(3)}, 7},
		{ir.Xor, []Value{IntVal(6), IntVal(3)}, 5},
		{ir.Shl, []Value{IntVal(1), IntVal(4)}, 16},
		{ir.Shr, []Value{IntVal(-1), IntVal(60)}, 15},
		{ir.Rotl, []Value{IntVal(1), IntVal(63)}, math.MinInt64},
		{ir.Neg, []Value{IntVal(5)}, -5},
		{ir.Not, []Value{IntVal(0)}, -1},
		{ir.Slt, []Value{IntVal(1), IntVal(2)}, 1},
		{ir.Slt, []Value{IntVal(2), IntVal(1)}, 0},
		{ir.Seq, []Value{IntVal(2), IntVal(2)}, 1},
		{ir.Min, []Value{IntVal(2), IntVal(5)}, 2},
		{ir.Max, []Value{IntVal(2), IntVal(5)}, 5},
		{ir.Sel, []Value{IntVal(1), IntVal(10), IntVal(20)}, 10},
		{ir.Sel, []Value{IntVal(0), IntVal(10), IntVal(20)}, 20},
		{ir.FloatToInt, []Value{FloatVal(3.7)}, 3},
		{ir.Copy, []Value{IntVal(42)}, 42},
	}
	for _, c := range cases {
		got := Eval(&ir.Instr{Op: c.op}, c.args)
		if got.IsFloat || got.I != c.want {
			t.Errorf("%v%v = %v, want %d", c.op, c.args, got, c.want)
		}
	}
}

func TestEvalFloatOps(t *testing.T) {
	cases := []struct {
		op   ir.Op
		args []Value
		want float64
	}{
		{ir.FAdd, []Value{FloatVal(1.5), FloatVal(2.5)}, 4},
		{ir.FSub, []Value{FloatVal(1.5), FloatVal(2.5)}, -1},
		{ir.FMul, []Value{FloatVal(1.5), FloatVal(2)}, 3},
		{ir.FDiv, []Value{FloatVal(3), FloatVal(2)}, 1.5},
		{ir.FDiv, []Value{FloatVal(3), FloatVal(0)}, 0},
		{ir.FNeg, []Value{FloatVal(2)}, -2},
		{ir.FAbs, []Value{FloatVal(-2)}, 2},
		{ir.FSqrt, []Value{FloatVal(9)}, 3},
		{ir.FSqrt, []Value{FloatVal(-9)}, 0},
		{ir.FMin, []Value{FloatVal(1), FloatVal(2)}, 1},
		{ir.FMax, []Value{FloatVal(1), FloatVal(2)}, 2},
		{ir.FMA, []Value{FloatVal(2), FloatVal(3), FloatVal(4)}, 10},
		{ir.IntToFloat, []Value{IntVal(7)}, 7},
	}
	for _, c := range cases {
		got := Eval(&ir.Instr{Op: c.op}, c.args)
		if !got.IsFloat || got.F != c.want {
			t.Errorf("%v%v = %v, want %g", c.op, c.args, got, c.want)
		}
	}
}

func TestEvalMixedOperandCoercion(t *testing.T) {
	// Integer operand to a float op converts; float operand to an int op
	// truncates.
	got := Eval(&ir.Instr{Op: ir.FAdd}, []Value{IntVal(2), FloatVal(0.5)})
	if got.F != 2.5 {
		t.Errorf("FAdd coercion = %v", got)
	}
	got = Eval(&ir.Instr{Op: ir.Add}, []Value{FloatVal(2.9), IntVal(1)})
	if got.I != 3 {
		t.Errorf("Add coercion = %v", got)
	}
}

func TestEvalPanicsOnMemoryOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Eval(Load) did not panic")
		}
	}()
	Eval(&ir.Instr{Op: ir.Load}, []Value{IntVal(0)})
}

func TestValueEqualNaN(t *testing.T) {
	if !FloatVal(math.NaN()).Equal(FloatVal(math.NaN())) {
		t.Error("NaN != NaN in Equal")
	}
	if FloatVal(1).Equal(IntVal(1)) {
		t.Error("float 1 equals int 1")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Store(2, 10, IntVal(99))
	if got := m.Load(2, 10); got.I != 99 {
		t.Errorf("Load = %v", got)
	}
	if got := m.Load(2, 11); got != (Value{}) {
		t.Errorf("untouched Load = %v", got)
	}
	if got := m.Load(5, 0); got != (Value{}) {
		t.Errorf("untouched bank Load = %v", got)
	}
	c := m.Clone()
	c.Store(2, 10, IntVal(1))
	if m.Load(2, 10).I != 99 {
		t.Error("Clone shares storage")
	}
}

func TestMemoryEqualIgnoresZeroCells(t *testing.T) {
	a := NewMemory()
	b := NewMemory()
	a.Store(0, 0, IntVal(0))
	if !a.Equal(b) {
		t.Error("explicit zero cell != absent cell")
	}
	a.Store(0, 1, IntVal(5))
	if a.Equal(b) {
		t.Error("differing memories compare equal")
	}
}

func TestReferenceExecution(t *testing.T) {
	g := ir.New("ref")
	a := g.AddConst(6)
	b := g.AddConst(7)
	p := g.Add(ir.Mul, a.ID, b.ID)
	addr := g.AddConst(3)
	g.AddStore(1, addr.ID, p.ID)
	res, err := Reference(g, NewMemory())
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[p.ID].I != 42 {
		t.Errorf("mul = %v", res.Values[p.ID])
	}
	if got := res.Memory.Load(1, 3); got.I != 42 {
		t.Errorf("stored = %v", got)
	}
}

func TestReferenceLoadSeesInitialMemory(t *testing.T) {
	g := ir.New("ld")
	addr := g.AddConst(5)
	ld := g.AddLoad(0, addr.ID)
	init := NewMemory()
	init.Store(0, 5, FloatVal(2.5))
	res, err := Reference(g, init)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[ld.ID].F != 2.5 {
		t.Errorf("load = %v", res.Values[ld.ID])
	}
	// Initial memory must not be mutated.
	if init.Load(0, 5).F != 2.5 {
		t.Error("Reference mutated the initial memory")
	}
}

// scheduleFor list-schedules g with everything on cluster 0 variants spread
// round-robin where legal.
func scheduleFor(t *testing.T, g *ir.Graph, m *machine.Model) *Result {
	t.Helper()
	assign := make([]int, g.Len())
	for i, in := range g.Instrs {
		if in.Preplaced() {
			assign[i] = in.Home
		} else if in.Op.IsMemory() {
			assign[i] = m.BankOwner(in.Bank)
		} else {
			assign[i] = i % m.NumClusters
		}
	}
	s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
	if err != nil {
		t.Fatalf("listsched: %v", err)
	}
	res, err := Verify(s, NewMemory())
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	return res
}

func TestVerifyScheduledMatchesReference(t *testing.T) {
	g := ir.New("verify")
	a := g.AddConst(6)
	b := g.AddConst(7)
	p := g.Add(ir.Mul, a.ID, b.ID)
	q := g.Add(ir.Add, p.ID, a.ID)
	addr := g.AddConst(0)
	g.AddStore(2, addr.ID, q.ID)
	res := scheduleFor(t, g, machine.Raw(4))
	if res.Values[q.ID].I != 48 {
		t.Errorf("result = %v", res.Values[q.ID])
	}
	if res.Cycles <= 0 {
		t.Error("scheduled run has no cycle count")
	}
}

func TestVerifyStoreLoadChainAcrossClusters(t *testing.T) {
	g := ir.New("chainmem")
	addr := g.AddConst(4)
	v := g.AddConst(11)
	st := g.AddStore(1, addr.ID, v.ID)
	st.Home = 1
	ld := g.AddLoad(1, addr.ID)
	ld.Home = 1
	g.AddMemEdge(st.ID, ld.ID)
	res := scheduleFor(t, g, machine.Raw(2))
	if res.Values[ld.ID].I != 11 {
		t.Errorf("load after store = %v", res.Values[ld.ID])
	}
}

func TestVerifyDetectsWrongOrder(t *testing.T) {
	// Build a valid schedule, then corrupt it so the load issues before
	// the store; Run must refuse (validation catches the memory edge).
	g := ir.New("bad")
	addr := g.AddConst(4)
	v := g.AddConst(11)
	st := g.AddStore(0, addr.ID, v.ID)
	ld := g.AddLoad(0, addr.ID)
	g.AddMemEdge(st.ID, ld.ID)
	m := machine.Raw(1)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: make([]int, 4)})
	if err != nil {
		t.Fatal(err)
	}
	s.Placements[ld.ID].Start = 0
	if _, err := Run(s, NewMemory()); err == nil {
		t.Error("Run accepted a schedule violating a memory edge")
	}
}

// Property: for random graphs and a legal round-robin assignment, the
// scheduled execution always matches reference execution.
func TestQuickScheduledEqualsReference(t *testing.T) {
	m := machine.Chorus(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ir.New("q")
		n := 15 + rng.Intn(25)
		// Serialize memory ops per bank so no unordered aliasing pair
		// exists (the kernel generators do the same with real alias
		// information).
		lastMem := map[int]int{}
		chain := func(in *ir.Instr) {
			if prev, ok := lastMem[in.Bank]; ok {
				g.AddMemEdge(prev, in.ID)
			}
			lastMem[in.Bank] = in.ID
		}
		var results []int // IDs of value-producing instructions
		pick := func() int { return results[rng.Intn(len(results))] }
		for i := 0; i < n; i++ {
			switch {
			case i < 2:
				results = append(results, g.AddConst(int64(rng.Intn(100))).ID)
			case rng.Intn(6) == 0:
				ld := g.AddLoad(rng.Intn(4), pick())
				chain(ld)
				results = append(results, ld.ID)
			case rng.Intn(8) == 0:
				chain(g.AddStore(rng.Intn(4), pick(), pick()))
			default:
				ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor, ir.Min}
				results = append(results, g.Add(ops[rng.Intn(len(ops))], pick(), pick()).ID)
			}
		}
		assign := make([]int, g.Len())
		for i, in := range g.Instrs {
			assign[i] = rng.Intn(4)
			if in.Preplaced() {
				assign[i] = in.Home
			}
		}
		s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
		if err != nil {
			t.Logf("seed %d: listsched: %v", seed, err)
			return false
		}
		if _, err := Verify(s, NewMemory()); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
