package sim_test

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Example schedules a tiny computation across two clusters and proves the
// schedule computes exactly what sequential execution computes.
func Example() {
	g := ir.New("demo")
	a := g.AddConst(6)
	b := g.AddConst(7)
	x := g.Add(ir.Mul, a.ID, b.ID)
	y := g.Add(ir.Add, x.ID, a.ID)
	addr := g.AddConst(0)
	g.AddStore(0, addr.ID, y.ID)

	m := machine.Chorus(2)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: []int{0, 0, 1, 1, 0, 0}})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := sim.Verify(s, sim.NewMemory())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mem[0][0] = %s after %d cycles with %d communications\n",
		res.Memory.Load(0, 0), res.Cycles, s.CommCount())
	// Output:
	// mem[0][0] = 48 after 6 cycles with 1 communications
}
