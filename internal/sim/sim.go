package sim

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/schedule"
)

// Memory is banked storage: bank → address → value. Loads of untouched
// cells return the zero Value.
type Memory map[int]map[int64]Value

// NewMemory returns empty memory.
func NewMemory() Memory { return make(Memory) }

// Load reads one cell.
func (m Memory) Load(bank int, addr int64) Value {
	if b, ok := m[bank]; ok {
		return b[addr]
	}
	return Value{}
}

// Store writes one cell.
func (m Memory) Store(bank int, addr int64, v Value) {
	b, ok := m[bank]
	if !ok {
		b = make(map[int64]Value)
		m[bank] = b
	}
	b[addr] = v
}

// Clone deep-copies the memory.
func (m Memory) Clone() Memory {
	out := NewMemory()
	for bank, cells := range m {
		nb := make(map[int64]Value, len(cells))
		for a, v := range cells {
			nb[a] = v
		}
		out[bank] = nb
	}
	return out
}

// Equal reports whether two memories hold identical non-zero contents.
// Cells holding the zero Value compare equal to absent cells.
func (m Memory) Equal(o Memory) bool {
	covered := func(a, b Memory) bool {
		for bank, cells := range a {
			for addr, v := range cells {
				if v == (Value{}) {
					continue
				}
				if !b.Load(bank, addr).Equal(v) {
					return false
				}
			}
		}
		return true
	}
	return covered(m, o) && covered(o, m)
}

// Result captures one execution.
type Result struct {
	// Values holds the result of every instruction by ID; Stores and
	// Nops hold the zero Value.
	Values []Value
	// Memory is the final memory state.
	Memory Memory
	// Cycles is the schedule length (zero for reference execution).
	Cycles int
}

func execOne(g *ir.Graph, i int, values []Value, mem Memory) (Value, error) {
	in := g.Instrs[i]
	args := make([]Value, len(in.Args))
	for k, a := range in.Args {
		args[k] = values[a]
	}
	switch in.Op {
	case ir.Nop:
		return Value{}, nil
	case ir.Load:
		return mem.Load(in.Bank, args[0].AsInt()), nil
	case ir.Store:
		mem.Store(in.Bank, args[0].AsInt(), args[1])
		return Value{}, nil
	default:
		return Eval(in, args), nil
	}
}

// Reference executes the graph sequentially in ID order (a topological
// order by construction) against a copy of the initial memory. This defines
// the semantics every schedule must reproduce.
func Reference(g *ir.Graph, initial Memory) (*Result, error) {
	g.Seal()
	mem := initial.Clone()
	values := make([]Value, g.Len())
	for i := range g.Instrs {
		v, err := execOne(g, i, values, mem)
		if err != nil {
			return nil, err
		}
		values[i] = v
	}
	return &Result{Values: values, Memory: mem}, nil
}

// Run validates the schedule and then executes it in schedule order: all
// instructions sorted by issue cycle (clusters are lockstep, so issue order
// is the architectural order; memory ops issuing in the same cycle on the
// same bank would be a race, which validation prevents via memory-order
// edges when the generator declares a conflict). The result must match
// Reference for the same initial memory; Verify packages that comparison.
func Run(s *schedule.Schedule, initial Memory) (*Result, error) {
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid schedule: %w", err)
	}
	g := s.Graph
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		pa, pb := s.Placements[order[a]], s.Placements[order[b]]
		if pa.Start != pb.Start {
			return pa.Start < pb.Start
		}
		return order[a] < order[b]
	})
	mem := initial.Clone()
	values := make([]Value, g.Len())
	done := make([]bool, g.Len())
	for _, i := range order {
		for _, a := range g.Instrs[i].Args {
			if !done[a] {
				return nil, fmt.Errorf("sim: instruction %d executed before operand %%%d", i, a)
			}
		}
		v, err := execOne(g, i, values, mem)
		if err != nil {
			return nil, err
		}
		values[i] = v
		done[i] = true
	}
	return &Result{Values: values, Memory: mem, Cycles: s.Length()}, nil
}

// Verify runs the schedule and checks it against reference execution,
// returning the schedule's result on success and a diagnostic error on the
// first divergence.
func Verify(s *schedule.Schedule, initial Memory) (*Result, error) {
	want, err := Reference(s.Graph, initial)
	if err != nil {
		return nil, err
	}
	got, err := Run(s, initial)
	if err != nil {
		return nil, err
	}
	for i := range want.Values {
		if !got.Values[i].Equal(want.Values[i]) {
			return nil, fmt.Errorf("sim: instruction %d computed %v, reference %v", i, got.Values[i], want.Values[i])
		}
	}
	if !got.Memory.Equal(want.Memory) {
		return nil, fmt.Errorf("sim: final memory diverges from reference")
	}
	return got, nil
}
