// Package sim executes dependence graphs and schedules, giving the
// repository end-to-end verification: a schedule is correct only if running
// it on the machine model produces exactly the values and final memory that
// sequential reference execution of the graph produces.
package sim

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/ir"
)

// Value is a runtime value: either an integer or a float. The zero Value is
// integer zero, which is also what loads of untouched memory return.
type Value struct {
	// I holds the payload of an integer value.
	I int64
	// F holds the payload of a floating-point value.
	F float64
	// IsFloat selects which payload is meaningful.
	IsFloat bool
}

// IntVal wraps an int64.
func IntVal(v int64) Value { return Value{I: v} }

// FloatVal wraps a float64.
func FloatVal(v float64) Value { return Value{F: v, IsFloat: true} }

// AsFloat returns the numeric value as a float64, converting integers.
func (v Value) AsFloat() float64 {
	if v.IsFloat {
		return v.F
	}
	return float64(v.I)
}

// AsInt returns the numeric value as an int64, truncating floats.
func (v Value) AsInt() int64 {
	if v.IsFloat {
		return int64(v.F)
	}
	return v.I
}

// Equal compares two values for exact equality (NaN equals NaN so that
// deterministic reruns compare clean).
func (v Value) Equal(o Value) bool {
	if v.IsFloat != o.IsFloat {
		return false
	}
	if v.IsFloat {
		if math.IsNaN(v.F) && math.IsNaN(o.F) {
			return true
		}
		return v.F == o.F
	}
	return v.I == o.I
}

// String formats the value.
func (v Value) String() string {
	if v.IsFloat {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

func shiftAmount(v Value) uint { return uint(v.AsInt()) % 64 }

// Eval computes the result of a non-memory instruction from its operand
// values. It panics on memory ops (the executor handles those) and on
// opcodes with no result.
func Eval(in *ir.Instr, args []Value) Value {
	op := in.Op
	bin := func() (int64, int64) { return args[0].AsInt(), args[1].AsInt() }
	fbin := func() (float64, float64) { return args[0].AsFloat(), args[1].AsFloat() }
	switch op {
	case ir.ConstInt:
		return IntVal(in.Imm)
	case ir.ConstFloat:
		return FloatVal(in.FImm)
	case ir.Add:
		a, b := bin()
		return IntVal(a + b)
	case ir.Sub:
		a, b := bin()
		return IntVal(a - b)
	case ir.Mul:
		a, b := bin()
		return IntVal(a * b)
	case ir.Div:
		a, b := bin()
		if b == 0 {
			return IntVal(0)
		}
		return IntVal(a / b)
	case ir.Rem:
		a, b := bin()
		if b == 0 {
			return IntVal(0)
		}
		return IntVal(a % b)
	case ir.And:
		a, b := bin()
		return IntVal(a & b)
	case ir.Or:
		a, b := bin()
		return IntVal(a | b)
	case ir.Xor:
		a, b := bin()
		return IntVal(a ^ b)
	case ir.Shl:
		return IntVal(args[0].AsInt() << shiftAmount(args[1]))
	case ir.Shr:
		return IntVal(int64(uint64(args[0].AsInt()) >> shiftAmount(args[1])))
	case ir.Sra:
		return IntVal(args[0].AsInt() >> shiftAmount(args[1]))
	case ir.Rotl:
		return IntVal(int64(bits.RotateLeft64(uint64(args[0].AsInt()), int(shiftAmount(args[1])))))
	case ir.Neg:
		return IntVal(-args[0].AsInt())
	case ir.Not:
		return IntVal(^args[0].AsInt())
	case ir.Slt:
		a, b := bin()
		if a < b {
			return IntVal(1)
		}
		return IntVal(0)
	case ir.Seq:
		a, b := bin()
		if a == b {
			return IntVal(1)
		}
		return IntVal(0)
	case ir.Min:
		a, b := bin()
		if a < b {
			return IntVal(a)
		}
		return IntVal(b)
	case ir.Max:
		a, b := bin()
		if a > b {
			return IntVal(a)
		}
		return IntVal(b)
	case ir.Sel:
		if args[0].AsInt() != 0 {
			return args[1]
		}
		return args[2]
	case ir.FAdd:
		a, b := fbin()
		return FloatVal(a + b)
	case ir.FSub:
		a, b := fbin()
		return FloatVal(a - b)
	case ir.FMul:
		a, b := fbin()
		return FloatVal(a * b)
	case ir.FDiv:
		a, b := fbin()
		if b == 0 {
			return FloatVal(0)
		}
		return FloatVal(a / b)
	case ir.FNeg:
		return FloatVal(-args[0].AsFloat())
	case ir.FAbs:
		return FloatVal(math.Abs(args[0].AsFloat()))
	case ir.FSqrt:
		f := args[0].AsFloat()
		if f < 0 {
			return FloatVal(0)
		}
		return FloatVal(math.Sqrt(f))
	case ir.FMin:
		a, b := fbin()
		return FloatVal(math.Min(a, b))
	case ir.FMax:
		a, b := fbin()
		return FloatVal(math.Max(a, b))
	case ir.FMA:
		return FloatVal(args[0].AsFloat()*args[1].AsFloat() + args[2].AsFloat())
	case ir.IntToFloat:
		return FloatVal(float64(args[0].AsInt()))
	case ir.FloatToInt:
		return IntVal(args[0].AsInt())
	case ir.Copy:
		return args[0]
	}
	panic(fmt.Sprintf("sim: Eval on %v", op))
}
