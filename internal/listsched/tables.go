// Package listsched implements the cycle-driven list scheduler shared by
// every back-end: given a cluster assignment and an instruction priority, it
// produces a legal space-time schedule with communication operations
// inserted on demand. The resource-reservation machinery (Tables) is
// exported so that schedulers which choose clusters during scheduling (UAS)
// can reuse the exact same occupancy model.
package listsched

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Tables tracks resource reservations and value arrivals while a schedule is
// being built. All schedulers in this repository build schedules through
// Tables, so they compete under identical rules.
type Tables struct {
	g *ir.Graph
	m *machine.Model

	sched *schedule.Schedule

	placed []bool
	// arrival[v] maps cluster -> first cycle value v is usable there.
	arrival []map[int]int

	fuBusy map[fuSlot]bool
	send   map[portSlot]int
	recv   map[portSlot]int
	links  map[linkSlot]bool
	xfer   int
}

type fuSlot struct{ cluster, fu, cycle int }
type portSlot struct{ cluster, cycle int }
type linkSlot struct {
	link  machine.Link
	cycle int
}

// NewTables returns empty reservation tables building a schedule for g on m.
func NewTables(g *ir.Graph, m *machine.Model) *Tables {
	g.Seal()
	t := &Tables{
		g:       g,
		m:       m,
		sched:   schedule.New(g, m),
		placed:  make([]bool, g.Len()),
		arrival: make([]map[int]int, g.Len()),
		fuBusy:  make(map[fuSlot]bool),
		send:    make(map[portSlot]int),
		recv:    make(map[portSlot]int),
		links:   make(map[linkSlot]bool),
		xfer:    m.XferFU(),
	}
	for i := range t.arrival {
		t.arrival[i] = make(map[int]int)
	}
	return t
}

// Schedule returns the schedule under construction. Callers must not mutate
// it directly; it is complete once every instruction is placed.
func (t *Tables) Schedule() *schedule.Schedule { return t.sched }

// Placed reports whether instruction i has been placed.
func (t *Tables) Placed(i int) bool { return t.placed[i] }

// PlacedCount returns how many instructions have been placed.
func (t *Tables) PlacedCount() int {
	n := 0
	for _, p := range t.placed {
		if p {
			n++
		}
	}
	return n
}

// FUFree reports whether the functional unit is unreserved at the cycle.
func (t *Tables) FUFree(cluster, fu, cycle int) bool {
	return !t.fuBusy[fuSlot{cluster, fu, cycle}]
}

// FindFU returns a free functional unit on the cluster able to issue the
// opcode at the cycle, or -1.
func (t *Tables) FindFU(op ir.Op, cluster, cycle int) int {
	for fu := range t.m.FUs {
		if t.m.CanRunOn(op, fu) && t.FUFree(cluster, fu, cycle) {
			return fu
		}
	}
	return -1
}

// Place commits instruction i to (cluster, fu, start). It panics on
// resource conflicts or illegal placements: callers are expected to have
// checked with FindFU/OperandsArriveBy first, so a violation is a scheduler
// bug, not an input error.
func (t *Tables) Place(i, cluster, fu, start int) {
	if t.placed[i] {
		panic(fmt.Sprintf("listsched: instruction %d placed twice", i))
	}
	in := t.g.Instrs[i]
	lat, ok := t.m.InstrLatency(in, cluster)
	if !ok {
		panic(fmt.Sprintf("listsched: instruction %d illegal on cluster %d", i, cluster))
	}
	key := fuSlot{cluster, fu, start}
	if t.fuBusy[key] {
		panic(fmt.Sprintf("listsched: FU conflict placing %d on cluster %d fu %d cycle %d", i, cluster, fu, start))
	}
	t.fuBusy[key] = true
	t.placed[i] = true
	t.sched.Placements[i] = schedule.Placement{Cluster: cluster, FU: fu, Start: start, Latency: lat}
	if in.Op.HasResult() {
		t.noteArrival(i, cluster, start+lat)
	}
}

func (t *Tables) noteArrival(v, cluster, cycle int) {
	if cur, ok := t.arrival[v][cluster]; !ok || cycle < cur {
		t.arrival[v][cluster] = cycle
	}
}

// Arrival returns the first cycle value v is usable on the cluster, or -1
// if it is not there and no communication has been scheduled. Constants
// follow the immediate-broadcast rule (see schedule.ArrivalOn): once
// materialised they are usable everywhere.
func (t *Tables) Arrival(v, cluster int) int {
	if t.placed[v] && t.g.Instrs[v].Op.IsConst() {
		return t.ReadyOnHome(v)
	}
	if a, ok := t.arrival[v][cluster]; ok {
		return a
	}
	return -1
}

// ReadyOnHome returns the cycle value v is ready on its producing cluster.
// v must already be placed.
func (t *Tables) ReadyOnHome(v int) int {
	return t.sched.Placements[v].Ready()
}

// routeSlot finds the earliest depart >= from such that the send port, the
// transfer unit (if any), every link of the dimension-ordered route and the
// receive port are all free.
func (t *Tables) routeSlot(src, dst, from int) (depart, arrive int) {
	lat := t.m.CommLatency(src, dst)
	route := t.m.Route(src, dst)
	for d := from; ; d++ {
		if t.send[portSlot{src, d}] >= t.m.SendPorts {
			continue
		}
		if t.xfer >= 0 && !t.FUFree(src, t.xfer, d) {
			continue
		}
		if t.recv[portSlot{dst, d + lat}] >= t.m.RecvPorts {
			continue
		}
		blocked := false
		for hop, l := range route {
			if t.links[linkSlot{l, d + hop}] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		return d, d + lat
	}
}

// ProbeRoute returns the arrival cycle value v would have on the cluster if
// a communication were scheduled now, without reserving anything. If the
// value is already available there it returns the existing arrival.
// v must be placed.
func (t *Tables) ProbeRoute(v, cluster int) int {
	if a := t.Arrival(v, cluster); a >= 0 {
		return a
	}
	src := t.sched.Placements[v].Cluster
	_, arrive := t.routeSlot(src, cluster, t.ReadyOnHome(v))
	return arrive
}

// Route ensures value v will be usable on the cluster, scheduling a
// communication at the earliest feasible departure if needed, and returns
// the arrival cycle. v must be placed. Constants are never routed
// (immediate-broadcast rule).
func (t *Tables) Route(v, cluster int) int {
	if a := t.Arrival(v, cluster); a >= 0 {
		return a
	}
	if !t.placed[v] {
		panic(fmt.Sprintf("listsched: routing unplaced value %d", v))
	}
	src := t.sched.Placements[v].Cluster
	depart, arrive := t.routeSlot(src, cluster, t.ReadyOnHome(v))
	t.send[portSlot{src, depart}]++
	t.recv[portSlot{cluster, arrive}]++
	for hop, l := range t.m.Route(src, cluster) {
		t.links[linkSlot{l, depart + hop}] = true
	}
	if t.xfer >= 0 {
		t.fuBusy[fuSlot{src, t.xfer, depart}] = true
	}
	t.sched.Comms = append(t.sched.Comms, schedule.Comm{Value: v, From: src, To: cluster, Depart: depart, Arrive: arrive})
	t.noteArrival(v, cluster, arrive)
	return arrive
}

// EarliestStart returns the first cycle instruction i could issue on the
// cluster given current arrivals, routing remote operands eagerly (commit
// controls whether routes are reserved or only probed). All of i's
// predecessors must be placed.
func (t *Tables) EarliestStart(i, cluster int, commit bool) int {
	est := 0
	in := t.g.Instrs[i]
	for _, a := range in.Args {
		var arr int
		if commit {
			arr = t.Route(a, cluster)
		} else {
			arr = t.ProbeRoute(a, cluster)
		}
		if arr > est {
			est = arr
		}
	}
	// Memory-order predecessors impose lockstep completion ordering but
	// move no value.
	for _, e := range t.g.MemEdges() {
		if e[1] == i {
			if r := t.ReadyOnHome(e[0]); r > est {
				est = r
			}
		}
	}
	return est
}
