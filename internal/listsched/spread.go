package listsched

import (
	"repro/internal/ir"
	"repro/internal/machine"
)

// SpreadConsts rebalances constant instructions across clusters in place.
//
// Under the immediate-broadcast rule a constant's cluster never causes
// communication — it only consumes an issue slot — so the best cluster for
// a constant is simply the least crowded one among the clusters that use
// it. Assignment heuristics tuned for real values (FIRST bias, communication
// affinity) systematically pile constants onto one cluster, which then
// steals issue slots from that cluster's real work; every assignment-based
// scheduler calls this after assignment so all of them compete under the
// same rule. Preplaced instructions are never moved.
func SpreadConsts(g *ir.Graph, m *machine.Model, assign []int) {
	g.Seal()
	counts := make([]int, m.NumClusters)
	for _, c := range assign {
		counts[c]++
	}
	for i, in := range g.Instrs {
		if !in.Op.IsConst() || in.Preplaced() {
			continue
		}
		// Candidate clusters: those hosting a consumer (any cluster
		// if the constant is dead).
		cand := map[int]bool{}
		for _, s := range g.Succs(i) {
			cand[assign[s]] = true
		}
		if len(cand) == 0 {
			cand[assign[i]] = true
		}
		best, bestCount := -1, 0
		for c := range cand {
			if best < 0 || counts[c] < bestCount || (counts[c] == bestCount && c < best) {
				best, bestCount = c, counts[c]
			}
		}
		if best != assign[i] {
			counts[assign[i]]--
			counts[best]++
			assign[i] = best
		}
	}
}
