package listsched

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// CheckGraph verifies that a graph can be scheduled on the machine at all:
// the graph is structurally valid, every preplacement home names an
// existing cluster, every preplaced memory operation's home can actually
// reach its bank, and every opcode has a functional unit. All schedulers
// call this before doing any work, so malformed inputs fail with a clear
// error instead of corrupting a weight matrix or an assignment.
func CheckGraph(g *ir.Graph, m *machine.Model) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for i, in := range g.Instrs {
		if in.Home >= m.NumClusters {
			return fmt.Errorf("listsched: instr %d homed on cluster %d, machine %s has %d",
				i, in.Home, m.Name, m.NumClusters)
		}
		if in.Preplaced() {
			if _, ok := m.InstrLatency(in, in.Home); !ok {
				return fmt.Errorf("listsched: instr %d (%v bank %d) cannot execute on its home cluster %d of %s",
					i, in.Op, in.Bank, in.Home, m.Name)
			}
		} else if in.Op.IsMemory() && m.RemoteMemPenalty < 0 && m.BankOwner(in.Bank) >= m.NumClusters {
			return fmt.Errorf("listsched: instr %d accesses bank %d with no owner on %s", i, in.Bank, m.Name)
		}
		if in.Op != ir.Nop && m.FirstFU(in.Op) < 0 {
			return fmt.Errorf("listsched: no functional unit on %s runs %v", m.Name, in.Op)
		}
	}
	return nil
}
