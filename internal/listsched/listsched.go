package listsched

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Options configures a list-scheduling run.
type Options struct {
	// Assignment gives the cluster of every instruction (by ID). It is
	// required and must respect preplacement homes and memory locality.
	Assignment []int
	// Priority orders instructions competing for the same cycle: smaller
	// values issue first (the convergent scheduler passes its preferred
	// times here). Nil means critical-path priority (largest height
	// first). Ties break by instruction ID.
	Priority []float64
}

// CriticalPathPriority returns the default priority used when Options.
// Priority is nil: the negated height, so instructions heading the longest
// remaining chains issue first.
func CriticalPathPriority(g *ir.Graph, m *machine.Model) []float64 {
	h := g.Height(m.LatencyFunc())
	p := make([]float64, len(h))
	for i, v := range h {
		p[i] = -float64(v)
	}
	return p
}

// CheckAssignment verifies that an assignment is complete and legal for the
// graph and machine: in range, preplacement homes respected, memory ops on
// clusters allowed to reach their banks, and every opcode runnable on some
// functional unit of its cluster.
func CheckAssignment(g *ir.Graph, m *machine.Model, assign []int) error {
	if len(assign) != g.Len() {
		return fmt.Errorf("listsched: assignment covers %d of %d instructions", len(assign), g.Len())
	}
	for i, c := range assign {
		in := g.Instrs[i]
		if c < 0 || c >= m.NumClusters {
			return fmt.Errorf("listsched: instr %d assigned to cluster %d of %d", i, c, m.NumClusters)
		}
		if in.Preplaced() && c != in.Home {
			return fmt.Errorf("listsched: preplaced instr %d assigned to %d, home %d", i, c, in.Home)
		}
		if _, ok := m.InstrLatency(in, c); !ok {
			return fmt.Errorf("listsched: instr %d (%v bank %d) cannot execute on cluster %d", i, in.Op, in.Bank, c)
		}
		if in.Op != ir.Nop && m.FirstFU(in.Op) < 0 {
			return fmt.Errorf("listsched: no functional unit runs %v", in.Op)
		}
	}
	return nil
}

// Run builds a schedule for the graph on the machine with the given
// assignment and priority. The scheduler is cycle-driven: each cycle it
// places, in priority order, every ready instruction whose operands have
// arrived on its cluster and for which a compatible functional unit is
// free. Inter-cluster moves are scheduled eagerly at their earliest
// feasible departure the first time a remote consumer becomes ready for
// consideration.
func Run(g *ir.Graph, m *machine.Model, opt Options) (*schedule.Schedule, error) {
	g.Seal()
	if err := CheckAssignment(g, m, opt.Assignment); err != nil {
		return nil, err
	}
	prio := opt.Priority
	if prio == nil {
		prio = CriticalPathPriority(g, m)
	}
	if len(prio) != g.Len() {
		return nil, fmt.Errorf("listsched: priority covers %d of %d instructions", len(prio), g.Len())
	}

	t := NewTables(g, m)
	n := g.Len()
	// pending[i] counts unplaced predecessors; candidates hold
	// instructions whose predecessors are all placed.
	pending := make([]int, n)
	var candidates []int
	for i := 0; i < n; i++ {
		pending[i] = len(g.Preds(i))
		if pending[i] == 0 {
			candidates = append(candidates, i)
		}
	}
	sortCandidates := func() {
		sort.Slice(candidates, func(a, b int) bool {
			ia, ib := candidates[a], candidates[b]
			if prio[ia] != prio[ib] {
				return prio[ia] < prio[ib]
			}
			return ia < ib
		})
	}
	sortCandidates()

	placedTotal := 0
	// Generous upper bound on schedule length: serial execution plus a
	// worst-case communication per instruction. Exceeding it means the
	// scheduler is stuck, which would be a bug.
	bound := 16
	maxComm := m.MaxCommLatency()
	for _, in := range g.Instrs {
		bound += m.OpLatency(in.Op) + maxComm + 1
	}

	for cycle := 0; placedTotal < n; cycle++ {
		if cycle > bound {
			return nil, fmt.Errorf("listsched: no progress by cycle %d (%d of %d placed)", cycle, placedTotal, n)
		}
		progressed := false
		var next []int
		var newlyPlaced []int
		for _, i := range candidates {
			cl := opt.Assignment[i]
			// Probe first; only commit communication reservations
			// once the instruction is actually placeable this
			// cycle, so deferred candidates never pin down ports
			// they cannot use yet.
			if est := t.EarliestStart(i, cl, false); est > cycle {
				next = append(next, i)
				continue
			}
			fu := t.FindFU(g.Instrs[i].Op, cl, cycle)
			if fu < 0 {
				next = append(next, i)
				continue
			}
			if est := t.EarliestStart(i, cl, true); est > cycle {
				// Committing found contention introduced by an
				// earlier placement in this same cycle.
				next = append(next, i)
				continue
			}
			t.Place(i, cl, fu, cycle)
			placedTotal++
			progressed = true
			newlyPlaced = append(newlyPlaced, i)
		}
		candidates = next
		for _, i := range newlyPlaced {
			for _, s := range g.Succs(i) {
				pending[s]--
				if pending[s] == 0 {
					candidates = append(candidates, s)
				}
			}
		}
		if progressed || len(newlyPlaced) > 0 {
			sortCandidates()
		}
	}
	sched := t.Schedule()
	sched.SortComms()
	return sched, nil
}
