package listsched

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestSpreadConstsMovesToConsumerClusters(t *testing.T) {
	g := ir.New("spread")
	c := g.AddConst(7)
	g.Add(ir.Neg, c.ID) // consumer on cluster 2
	g.Add(ir.Not, c.ID) // consumer on cluster 3
	m := machine.Chorus(4)
	assign := []int{0, 2, 3}
	SpreadConsts(g, m, assign)
	if assign[c.ID] != 2 && assign[c.ID] != 3 {
		t.Errorf("const moved to %d, want a consumer cluster", assign[c.ID])
	}
}

func TestSpreadConstsBalances(t *testing.T) {
	// Many consts all consumed on two clusters: they should split rather
	// than pile up.
	g := ir.New("bal")
	var consts []int
	for i := 0; i < 10; i++ {
		c := g.AddConst(int64(i))
		consts = append(consts, c.ID)
		g.Add(ir.Neg, c.ID)
		g.Add(ir.Not, c.ID)
	}
	m := machine.Chorus(4)
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = 0
	}
	// Consumers alternate between clusters 1 and 2.
	for k, id := range consts {
		assign[id+1] = 1 + k%2
		assign[id+2] = 1 + k%2
	}
	SpreadConsts(g, m, assign)
	counts := map[int]int{}
	for _, id := range consts {
		counts[assign[id]]++
	}
	if counts[0] != 0 {
		t.Errorf("consts left on consumer-less cluster 0: %v", counts)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Errorf("consts not spread: %v", counts)
	}
}

func TestSpreadConstsLeavesNonConstsAndPreplaced(t *testing.T) {
	g := ir.New("pin")
	c := g.AddConst(1)
	c.Home = 0 // preplaced constant (live across regions)
	n := g.Add(ir.Neg, c.ID)
	m := machine.Chorus(4)
	assign := []int{0, 3}
	SpreadConsts(g, m, assign)
	if assign[c.ID] != 0 {
		t.Errorf("preplaced const moved to %d", assign[c.ID])
	}
	if assign[n.ID] != 3 {
		t.Errorf("non-const moved to %d", assign[n.ID])
	}
}

func TestSpreadConstsDeadConstStays(t *testing.T) {
	g := ir.New("dead")
	c := g.AddConst(1)
	m := machine.Chorus(4)
	assign := []int{2}
	SpreadConsts(g, m, assign)
	if assign[c.ID] != 2 {
		t.Errorf("dead const moved to %d", assign[c.ID])
	}
}

func TestSpreadConstsKeepsScheduleLegal(t *testing.T) {
	g := ir.New("legal")
	c := g.AddConst(1)
	a := g.Add(ir.Neg, c.ID)
	b := g.Add(ir.Not, c.ID)
	g.Add(ir.Add, a.ID, b.ID)
	m := machine.Raw(4)
	assign := []int{0, 1, 2, 3}
	SpreadConsts(g, m, assign)
	s, err := Run(g, m, Options{Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
