package listsched

import (
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

func TestCheckGraphAcceptsGoodGraph(t *testing.T) {
	g := ir.New("ok")
	a := g.AddConst(0)
	ld := g.AddLoad(3, a.ID)
	ld.Home = 3
	g.Add(ir.Neg, ld.ID)
	if err := CheckGraph(g, machine.Raw(4)); err != nil {
		t.Fatal(err)
	}
}

func TestCheckGraphRejectsOutOfRangeHome(t *testing.T) {
	g := ir.New("home")
	a := g.AddConst(0)
	a.Home = 7
	if err := CheckGraph(g, machine.Raw(4)); err == nil {
		t.Error("accepted home 7 on a 4-tile machine")
	}
}

func TestCheckGraphRejectsHomeBankMismatchOnRaw(t *testing.T) {
	g := ir.New("mismatch")
	a := g.AddConst(0)
	ld := g.AddLoad(2, a.ID)
	ld.Home = 1 // bank 2 is owned by tile 2, not 1
	if err := CheckGraph(g, machine.Raw(4)); err == nil {
		t.Error("accepted Raw load homed off its bank owner")
	}
	// The same graph is fine on a VLIW (remote access allowed).
	if err := CheckGraph(g, machine.Chorus(4)); err != nil {
		t.Errorf("VLIW rejected remote-capable load: %v", err)
	}
}

func TestCheckGraphRejectsInvalidGraph(t *testing.T) {
	g := ir.New("bad")
	a := g.AddConst(0)
	ld := g.AddLoad(0, a.ID)
	ld.Bank = ir.NoBank // corrupt it
	if err := CheckGraph(g, machine.Raw(4)); err == nil {
		t.Error("accepted structurally invalid graph")
	}
}

func TestAllSchedulersRejectBadHomes(t *testing.T) {
	g := ir.New("bad")
	a := g.AddConst(0)
	a.Home = 9
	m := machine.Chorus(4)
	if _, err := Run(g, m, Options{Assignment: []int{9}}); err == nil {
		t.Error("listsched accepted out-of-range assignment")
	}
}
