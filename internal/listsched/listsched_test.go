package listsched

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedule"
)

func mustRun(t *testing.T, g *ir.Graph, m *machine.Model, opt Options) *schedule.Schedule {
	t.Helper()
	s, err := Run(g, m, opt)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v\n%s", err, s)
	}
	return s
}

// chain builds a serial dependence chain of n Neg ops rooted at a constant.
func chain(n int) *ir.Graph {
	g := ir.New("chain")
	prev := g.AddConst(1).ID
	for i := 0; i < n; i++ {
		prev = g.Add(ir.Neg, prev).ID
	}
	return g
}

func zeros(n int) []int { return make([]int, n) }

func TestChainOnSingleTileIsSerial(t *testing.T) {
	g := chain(4)
	m := machine.Raw(1)
	s := mustRun(t, g, m, Options{Assignment: zeros(g.Len())})
	if got, want := s.Length(), 5; got != want {
		t.Errorf("Length = %d, want %d", got, want)
	}
	if s.CommCount() != 0 {
		t.Errorf("CommCount = %d, want 0", s.CommCount())
	}
}

func TestCrossClusterEdgeInsertsComm(t *testing.T) {
	g := ir.New("cross")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Raw(2)
	s := mustRun(t, g, m, Options{Assignment: []int{0, 0, 1}})
	if s.CommCount() != 1 {
		t.Fatalf("CommCount = %d, want 1", s.CommCount())
	}
	c := s.Comms[0]
	if c.From != 0 || c.To != 1 || c.Value != b.ID {
		t.Errorf("Comm = %+v", c)
	}
	// neg ready at 2, comm latency 3 → not cannot start before 5.
	if s.Placements[2].Start < 5 {
		t.Errorf("consumer starts at %d, before comm arrival", s.Placements[2].Start)
	}
}

func TestConstBroadcastsAsImmediate(t *testing.T) {
	// A constant consumed on another cluster needs no communication and
	// no waiting beyond its own materialisation.
	g := ir.New("imm")
	a := g.AddConst(1)
	g.Add(ir.Neg, a.ID)
	m := machine.Raw(2)
	s := mustRun(t, g, m, Options{Assignment: []int{0, 1}})
	if s.CommCount() != 0 {
		t.Fatalf("CommCount = %d, want 0 (immediate broadcast)", s.CommCount())
	}
	if s.Placements[1].Start != 1 {
		t.Errorf("consumer starts at %d, want 1", s.Placements[1].Start)
	}
}

func TestCommReusedForMultipleConsumers(t *testing.T) {
	g := ir.New("fanout")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	g.Add(ir.Neg, b.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Raw(2)
	s := mustRun(t, g, m, Options{Assignment: []int{0, 0, 1, 1}})
	if s.CommCount() != 1 {
		t.Errorf("CommCount = %d, want 1 (value should be moved once)", s.CommCount())
	}
}

func TestFUContentionSerialises(t *testing.T) {
	g := ir.New("contend")
	a := g.AddConst(1)
	g.Add(ir.Neg, a.ID)
	g.Add(ir.Not, a.ID)
	m := machine.Raw(1) // one do-everything FU
	s := mustRun(t, g, m, Options{Assignment: zeros(3)})
	if s.Placements[1].Start == s.Placements[2].Start {
		t.Error("two ops issued on the same single-FU tile in one cycle")
	}
}

func TestVliwParallelIssueAcrossFUs(t *testing.T) {
	g := ir.New("vliwpar")
	a := g.AddConst(1)
	f := g.AddFConst(2.0)
	g.Add(ir.Neg, a.ID)  // int ALU
	g.Add(ir.FNeg, f.ID) // FPU
	m := machine.Chorus(1)
	s := mustRun(t, g, m, Options{Assignment: zeros(4)})
	if s.Placements[2].Start != s.Placements[3].Start {
		t.Errorf("int op at %d, float op at %d: should co-issue on different FUs",
			s.Placements[2].Start, s.Placements[3].Start)
	}
}

func TestPriorityBreaksContention(t *testing.T) {
	g := ir.New("prio")
	a := g.AddConst(1)
	x := g.Add(ir.Neg, a.ID)
	y := g.Add(ir.Not, a.ID)
	m := machine.Raw(1)
	prio := make([]float64, g.Len())
	prio[x.ID] = 2
	prio[y.ID] = 1 // y should win the contended slot
	s := mustRun(t, g, m, Options{Assignment: zeros(3), Priority: prio})
	if s.Placements[y.ID].Start > s.Placements[x.ID].Start {
		t.Errorf("priority ignored: y at %d, x at %d", s.Placements[y.ID].Start, s.Placements[x.ID].Start)
	}
}

func TestRemoteLoadOnVliwPaysPenalty(t *testing.T) {
	g := ir.New("remote")
	addr := g.AddConst(0)
	ld := g.AddLoad(1, addr.ID) // bank 1 owned by cluster 1
	m := machine.Chorus(4)
	s := mustRun(t, g, m, Options{Assignment: zeros(2)})
	if got, want := s.Placements[ld.ID].Latency, m.OpLatency(ir.Load)+1; got != want {
		t.Errorf("remote load latency = %d, want %d", got, want)
	}
}

func TestRawRejectsRemoteMemoryAssignment(t *testing.T) {
	g := ir.New("rawmem")
	addr := g.AddConst(0)
	g.AddLoad(1, addr.ID)
	m := machine.Raw(2)
	if _, err := Run(g, m, Options{Assignment: []int{0, 0}}); err == nil {
		t.Error("Run accepted a Raw load off its home tile")
	}
}

func TestPreplacementEnforced(t *testing.T) {
	g := ir.New("pp")
	a := g.AddConst(1)
	a.Home = 1
	m := machine.Raw(2)
	if _, err := Run(g, m, Options{Assignment: []int{0}}); err == nil {
		t.Error("Run accepted assignment violating preplacement")
	}
	s := mustRun(t, g, m, Options{Assignment: []int{1}})
	if s.Placements[0].Cluster != 1 {
		t.Error("preplaced instruction not on home")
	}
}

func TestMemoryEdgeOrdersAccesses(t *testing.T) {
	g := ir.New("memorder")
	addr := g.AddConst(0)
	v := g.AddConst(42)
	st := g.AddStore(0, addr.ID, v.ID)
	ld := g.AddLoad(0, addr.ID)
	g.AddMemEdge(st.ID, ld.ID)
	m := machine.Chorus(1)
	s := mustRun(t, g, m, Options{Assignment: zeros(4)})
	if s.Placements[ld.ID].Start < s.Placements[st.ID].Ready() {
		t.Error("load issued before store completed")
	}
}

func TestXferUnitContention(t *testing.T) {
	// Two values produced on cluster 0 both consumed on cluster 1: the
	// single transfer unit must serialise the two departures.
	g := ir.New("xfer")
	a := g.AddConst(1)
	x := g.Add(ir.Neg, a.ID)
	y := g.Add(ir.Not, a.ID)
	g.Add(ir.Add, x.ID, y.ID)
	m := machine.Chorus(2)
	s := mustRun(t, g, m, Options{Assignment: []int{0, 0, 0, 1}})
	if s.CommCount() != 2 {
		t.Fatalf("CommCount = %d, want 2", s.CommCount())
	}
	if s.Comms[0].Depart == s.Comms[1].Depart {
		t.Error("two comms departed cluster 0 in the same cycle despite one transfer unit")
	}
}

func TestBadOptionsRejected(t *testing.T) {
	g := chain(2)
	m := machine.Raw(2)
	if _, err := Run(g, m, Options{Assignment: []int{0}}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := Run(g, m, Options{Assignment: []int{0, 0, 5}}); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	if _, err := Run(g, m, Options{Assignment: zeros(3), Priority: []float64{1}}); err == nil {
		t.Error("short priority accepted")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := ir.New("empty")
	m := machine.Raw(1)
	s := mustRun(t, g, m, Options{Assignment: nil})
	if s.Length() != 0 {
		t.Errorf("empty schedule length = %d", s.Length())
	}
}

func TestScheduleStringRender(t *testing.T) {
	g := chain(2)
	m := machine.Raw(1)
	s := mustRun(t, g, m, Options{Assignment: zeros(3)})
	out := s.String()
	if !strings.Contains(out, "chain") || !strings.Contains(out, "neg") {
		t.Errorf("String output missing content:\n%s", out)
	}
}

func TestWideGraphUsesAllTiles(t *testing.T) {
	// 8 independent chains on Raw(4): a sane assignment spreads them and
	// the schedule must be much shorter than serial.
	g := ir.New("wide")
	assign := make([]int, 0, 32)
	for c := 0; c < 8; c++ {
		prev := g.AddConst(int64(c)).ID
		assign = append(assign, c%4)
		for k := 0; k < 3; k++ {
			prev = g.Add(ir.Neg, prev).ID
			assign = append(assign, c%4)
		}
	}
	m := machine.Raw(4)
	s := mustRun(t, g, m, Options{Assignment: assign})
	serial := 0
	for _, in := range g.Instrs {
		serial += m.OpLatency(in.Op)
	}
	if s.Length() >= serial {
		t.Errorf("Length = %d, not better than serial %d", s.Length(), serial)
	}
	if s.CommCount() != 0 {
		t.Errorf("CommCount = %d, want 0 for independent chains", s.CommCount())
	}
}

func TestCriticalPathPriorityOrdersByHeight(t *testing.T) {
	g := ir.New("cp")
	a := g.AddConst(1) // root of long chain
	b := g.AddConst(2) // root of short chain
	x := g.Add(ir.Neg, a.ID)
	g.Add(ir.Neg, x.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Raw(1)
	p := CriticalPathPriority(g, m)
	if p[a.ID] >= p[b.ID] {
		t.Errorf("long-chain root priority %v should beat short-chain %v", p[a.ID], p[b.ID])
	}
}

func TestMaxLivePositive(t *testing.T) {
	g := chain(3)
	m := machine.Raw(1)
	s := mustRun(t, g, m, Options{Assignment: zeros(4)})
	live := s.MaxLivePerCluster()
	if len(live) != 1 || live[0] < 1 {
		t.Errorf("MaxLivePerCluster = %v", live)
	}
}
