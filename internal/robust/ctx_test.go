package robust_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
)

// countingLadder returns a single-rung ladder that counts invocations.
func countingLadder(m *machine.Model, ran *atomic.Int64) []robust.Rung {
	list := robust.ListRung(m)
	return []robust.Rung{{
		Name: "counted",
		Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
			ran.Add(1)
			return list.Run(ctx, g)
		},
	}}
}

// TestExpiredContextRunsNoRung: a context that is already over must produce
// a deadline SchedError immediately, without any rung running — not even
// being spawned and abandoned.
func TestExpiredContextRunsNoRung(t *testing.T) {
	k := mustKernel(t, "vvmul")
	m := machine.Chorus(4)
	g := k.Build(4)

	for name, ctx := range map[string]context.Context{
		"deadline-exceeded": func() context.Context {
			ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
			t.Cleanup(cancel)
			return ctx
		}(),
		"cancelled": func() context.Context {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			return ctx
		}(),
	} {
		t.Run(name, func(t *testing.T) {
			var ran atomic.Int64
			s, rep, err := robust.Schedule(ctx, g, m, robust.Options{
				Ladder: countingLadder(m, &ran),
			})
			if s != nil {
				t.Fatal("expired context produced a schedule")
			}
			if err == nil {
				t.Fatal("expired context produced no error")
			}
			var serr *robust.SchedError
			if !errors.As(err, &serr) {
				t.Fatalf("error %v (%T) is not a *SchedError", err, err)
			}
			if serr.Stage != robust.StageDeadline {
				t.Errorf("stage = %s, want %s", serr.Stage, robust.StageDeadline)
			}
			if !errors.Is(err, ctx.Err()) {
				t.Errorf("error %v does not wrap the context error %v", err, ctx.Err())
			}
			if n := ran.Load(); n != 0 {
				t.Errorf("rung ran %d times under an expired context", n)
			}
			if len(rep.Attempts) != 0 {
				t.Errorf("report records %d attempts, want none", len(rep.Attempts))
			}
		})
	}
}

// TestExpiredContextWithDefaultLadder: same contract via the default ladder
// (the path a service request takes), and it must return fast — at memory
// speed, not scheduler speed.
func TestExpiredContextWithDefaultLadder(t *testing.T) {
	k := mustKernel(t, "fir")
	m := machine.Raw(4)
	g := k.Build(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	_, _, err := robust.Schedule(ctx, g, m, robust.Options{Seed: 2002, Verify: true})
	if d := time.Since(t0); d > 100*time.Millisecond {
		t.Errorf("expired-context rejection took %v, want immediate", d)
	}
	var serr *robust.SchedError
	if !errors.As(err, &serr) || serr.Stage != robust.StageDeadline {
		t.Fatalf("err = %v, want a deadline SchedError", err)
	}
}

// TestBreakerSkipsPersistentlyFailingRung: after enough consecutive
// failures the failing rung is skipped (StageBreaker attempt, no budget
// paid) and the ladder falls through to the next rung immediately.
func TestBreakerSkipsPersistentlyFailingRung(t *testing.T) {
	k := mustKernel(t, "vvmul")
	m := machine.Chorus(4)
	g := k.Build(4)

	var primaryRuns atomic.Int64
	ladder := func() []robust.Rung {
		return []robust.Rung{
			{Name: "flaky", Run: func(ctx context.Context, gr *ir.Graph) (*schedule.Schedule, error) {
				primaryRuns.Add(1)
				panic("injected: flaky rung down")
			}},
			robust.ListRung(m),
		}
	}
	br := robust.NewBreakerSet(robust.BreakerPolicy{Failures: 2, Cooldown: time.Minute})
	opts := robust.Options{Ladder: ladder(), Breakers: br, BreakerScope: "mach"}

	// First two requests pay for the flaky rung and trip its breaker.
	for i := 0; i < 2; i++ {
		s, rep, err := robust.Schedule(context.Background(), g, m, opts)
		if err != nil {
			t.Fatalf("request %d: %v\n%s", i, err, rep)
		}
		if s == nil || rep.Served != "list" {
			t.Fatalf("request %d served by %q, want list", i, rep.Served)
		}
	}
	if n := primaryRuns.Load(); n != 2 {
		t.Fatalf("flaky rung ran %d times, want 2", n)
	}

	// Third request: breaker open, flaky rung is skipped without running.
	s, rep, err := robust.Schedule(context.Background(), g, m, opts)
	if err != nil {
		t.Fatalf("breaker-skip request: %v\n%s", err, rep)
	}
	if n := primaryRuns.Load(); n != 2 {
		t.Fatalf("flaky rung ran again (%d) despite an open breaker", n)
	}
	if rep.Served != "list" {
		t.Fatalf("served by %q, want list", rep.Served)
	}
	if len(rep.Attempts) != 2 || rep.Attempts[0].Err == nil ||
		rep.Attempts[0].Err.Stage != robust.StageBreaker {
		t.Fatalf("first attempt = %+v, want a StageBreaker skip\n%s", rep.Attempts[0], rep)
	}
	if !rep.Skipped() {
		t.Error("report with a breaker skip does not say Skipped()")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("served schedule invalid: %v", err)
	}
	// The skip must be free: no measurable duration was charged.
	if d := rep.Attempts[0].Duration; d > time.Millisecond {
		t.Errorf("breaker skip charged %v of budget", d)
	}
}
