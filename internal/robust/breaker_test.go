package robust

import (
	"math/rand"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testSet(p BreakerPolicy, c *fakeClock) *BreakerSet {
	return newBreakerSet(p, c.now, rand.NewSource(1))
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	c := newFakeClock()
	s := testSet(BreakerPolicy{Failures: 3, Cooldown: time.Second, JitterFrac: -1}, c)
	key := "convergent@m"
	for i := 0; i < 2; i++ {
		if !s.Allow(key) {
			t.Fatalf("closed breaker rejected attempt %d", i)
		}
		s.Record(key, false)
	}
	// A success resets the consecutive count.
	if !s.Allow(key) {
		t.Fatal("closed breaker rejected attempt")
	}
	s.Record(key, true)
	for i := 0; i < 3; i++ {
		if !s.Allow(key) {
			t.Fatalf("breaker tripped after only %d post-reset failures", i)
		}
		s.Record(key, false)
	}
	if s.Allow(key) {
		t.Fatal("breaker still closed after reaching the failure threshold")
	}
	st := s.Snapshot()
	if len(st) != 1 || st[0].State != BreakerOpen || st[0].Opens != 1 || st[0].Skips != 1 {
		t.Fatalf("snapshot = %+v, want one open breaker with 1 open and 1 skip", st)
	}
	if st[0].RetryIn <= 0 || st[0].RetryIn > time.Second {
		t.Fatalf("RetryIn = %v, want in (0, 1s]", st[0].RetryIn)
	}
}

func TestBreakerHalfOpenProbeAndBackoff(t *testing.T) {
	c := newFakeClock()
	s := testSet(BreakerPolicy{Failures: 1, Cooldown: time.Second, MaxCooldown: 3 * time.Second, JitterFrac: -1}, c)
	key := "uas"
	s.Allow(key)
	s.Record(key, false) // trip: open for 1s

	if s.Allow(key) {
		t.Fatal("open breaker admitted an attempt before cooldown")
	}
	c.advance(time.Second + time.Millisecond)
	// Cooldown over: exactly one probe is admitted.
	if !s.Allow(key) {
		t.Fatal("expired breaker refused the half-open probe")
	}
	if s.Allow(key) {
		t.Fatal("second attempt admitted while the probe is in flight")
	}
	// Failed probe: re-open with doubled cooldown (2s).
	s.Record(key, false)
	c.advance(time.Second + time.Millisecond)
	if s.Allow(key) {
		t.Fatal("breaker re-admitted after 1s, backoff should have doubled to 2s")
	}
	c.advance(time.Second)
	if !s.Allow(key) {
		t.Fatal("breaker refused probe after doubled cooldown expired")
	}
	// Failed again: cooldown doubles to 4s but is capped at 3s.
	s.Record(key, false)
	c.advance(3*time.Second + time.Millisecond)
	if !s.Allow(key) {
		t.Fatal("breaker refused probe after capped cooldown expired")
	}
	// Successful probe closes it and resets the backoff to the initial 1s.
	s.Record(key, true)
	if !s.Allow(key) {
		t.Fatal("closed breaker rejected attempt after successful probe")
	}
	s.Record(key, false)
	st := s.Snapshot()
	if st[0].State != BreakerOpen || st[0].Cooldown != time.Second {
		t.Fatalf("after success+trip: %+v, want open with reset 1s cooldown", st[0])
	}
}

func TestBreakerCancelReleasesProbe(t *testing.T) {
	c := newFakeClock()
	s := testSet(BreakerPolicy{Failures: 1, Cooldown: time.Second, JitterFrac: -1}, c)
	key := "list"
	s.Allow(key)
	s.Record(key, false)
	c.advance(time.Second + time.Millisecond)
	if !s.Allow(key) {
		t.Fatal("probe refused")
	}
	// The probe's caller hit its own deadline: slot must come back.
	s.Cancel(key)
	if !s.Allow(key) {
		t.Fatal("probe slot not released after Cancel")
	}
	s.Record(key, true)
	if got := s.Snapshot()[0].State; got != BreakerClosed {
		t.Fatalf("state = %v after successful probe, want closed", got)
	}
}

func TestBreakerJitterStaysWithinBounds(t *testing.T) {
	c := newFakeClock()
	s := testSet(BreakerPolicy{Failures: 1, Cooldown: 10 * time.Second, JitterFrac: 0.2}, c)
	for i := 0; i < 50; i++ {
		key := "k"
		s.Allow(key)
		s.Record(key, false)
		st := s.Snapshot()[0]
		if st.RetryIn < 8*time.Second || st.RetryIn > 12*time.Second {
			t.Fatalf("iteration %d: jittered cooldown %v outside ±20%% of 10s", i, st.RetryIn)
		}
		// Reset to closed for the next round.
		c.advance(13 * time.Second)
		s.Allow(key)
		s.Record(key, true)
	}
}

func TestBreakerScopesAreIndependent(t *testing.T) {
	c := newFakeClock()
	s := testSet(BreakerPolicy{Failures: 1, Cooldown: time.Minute, JitterFrac: -1}, c)
	s.Allow(breakerKey("convergent", "raw16"))
	s.Record(breakerKey("convergent", "raw16"), false)
	if s.Allow(breakerKey("convergent", "raw16")) {
		t.Fatal("tripped scope still admitting")
	}
	if !s.Allow(breakerKey("convergent", "vliw4")) {
		t.Fatal("failure on raw16 tripped the vliw4 breaker")
	}
}
