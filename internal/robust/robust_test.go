package robust_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

func mustKernel(t *testing.T, name string) bench.Kernel {
	t.Helper()
	k, ok := bench.ByName(name)
	if !ok {
		t.Fatalf("kernel %s not registered", name)
	}
	return k
}

// TestHealthyDefaultLadder: with nothing injected, the default ladder's
// first rung serves, the schedule is attached to the caller's graph and
// machine, and the simulated result passes the kernel's semantic check.
func TestHealthyDefaultLadder(t *testing.T) {
	k := mustKernel(t, "vvmul")
	m := machine.Chorus(4)
	g := k.Build(4)
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Verify:     true,
		InitMemory: k.InitMemory(4),
		Seed:       2002,
	})
	if err != nil {
		t.Fatalf("healthy ladder failed: %v\n%s", err, rep)
	}
	if rep.Served != "convergent" {
		t.Errorf("served by %q, want the primary convergent rung\n%s", rep.Served, rep)
	}
	if len(rep.Attempts) != 1 {
		t.Errorf("%d attempts for a healthy ladder, want 1", len(rep.Attempts))
	}
	if s.Graph != g || s.Machine != m {
		t.Error("accepted schedule not attached to the pristine graph and machine")
	}
	if err := s.Validate(); err != nil {
		t.Errorf("accepted schedule invalid: %v", err)
	}
	res, err := sim.Run(s, k.InitMemory(4))
	if err != nil {
		t.Fatalf("simulating accepted schedule: %v", err)
	}
	if err := k.Check(res.Memory, 4); err != nil {
		t.Errorf("accepted schedule computes the wrong answer: %v", err)
	}
}

func TestPanicIsolation(t *testing.T) {
	m := machine.Chorus(2)
	g := bench.RandomLayered(30, 4, 2, 1)
	ladder := []robust.Rung{
		{Name: "boom", Run: func(context.Context, *ir.Graph) (*schedule.Schedule, error) { panic("kaboom") }},
		robust.ListRung(m),
	}
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{Ladder: ladder})
	if err != nil {
		t.Fatalf("ladder with panicking primary failed outright: %v\n%s", err, rep)
	}
	if rep.Served != "list" {
		t.Errorf("served by %q, want list", rep.Served)
	}
	a := rep.Attempts[0]
	if a.Err == nil || a.Err.Stage != robust.StagePanic {
		t.Fatalf("first attempt error = %v, want stage panic", a.Err)
	}
	if a.Err.PanicValue != "kaboom" {
		t.Errorf("recovered panic value %v, want kaboom", a.Err.PanicValue)
	}
	if len(a.Err.Stack) == 0 {
		t.Error("no stack captured at panic site")
	}
	if !strings.Contains(a.Err.Error(), "boom") {
		t.Errorf("error %q does not name the failed rung", a.Err.Error())
	}
	if err := s.Validate(); err != nil {
		t.Errorf("fallback schedule invalid: %v", err)
	}
}

func TestDeadlineAbandonsStalledRung(t *testing.T) {
	m := machine.Chorus(2)
	g := bench.RandomLayered(30, 4, 2, 1)
	ladder := []robust.Rung{
		{Name: "stuck", Run: func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
			time.Sleep(5 * time.Second)
			return nil, errors.New("unreachable")
		}},
		robust.ListRung(m),
	}
	t0 := time.Now()
	_, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Ladder:  ladder,
		Timeout: 60 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("ladder with stalled primary failed outright: %v\n%s", err, rep)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("driver waited %v for a stalled rung with a 60ms budget", elapsed)
	}
	if rep.Served != "list" {
		t.Errorf("served by %q, want list", rep.Served)
	}
	if a := rep.Attempts[0]; a.Err == nil || a.Err.Stage != robust.StageDeadline {
		t.Fatalf("first attempt error = %v, want stage deadline", rep.Attempts[0].Err)
	}
}

func TestNilScheduleBecomesError(t *testing.T) {
	m := machine.Chorus(2)
	g := bench.RandomLayered(20, 4, 2, 1)
	ladder := []robust.Rung{
		{Name: "mute", Run: func(context.Context, *ir.Graph) (*schedule.Schedule, error) { return nil, nil }},
		robust.ListRung(m),
	}
	_, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{Ladder: ladder})
	if err != nil {
		t.Fatalf("%v", err)
	}
	if a := rep.Attempts[0]; a.Err == nil || a.Err.Stage != robust.StageSchedule {
		t.Fatalf("nil schedule from a rung reported as %v, want a schedule-stage error", rep.Attempts[0].Err)
	}
}

// TestGateRejectsCorruptedOutput: a rung that emits an illegal schedule is
// caught by the validation gate and the ladder degrades past it.
func TestGateRejectsCorruptedOutput(t *testing.T) {
	m := machine.Chorus(4)
	g := bench.RandomLayered(60, 6, 4, 3)
	ladder := []robust.Rung{
		{Name: "corrupt", Run: func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
			s, err := robust.ListRung(m).Run(context.Background(), gg)
			if err != nil {
				return nil, err
			}
			mut, _, ok := faultinject.MutateSchedule(s, faultinject.FUConflict, 3)
			if !ok {
				return nil, errors.New("mutation inapplicable")
			}
			return mut, nil
		}},
		robust.ListRung(m),
	}
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{Ladder: ladder})
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if a := rep.Attempts[0]; a.Err == nil || a.Err.Stage != robust.StageValidate {
		t.Fatalf("corrupted output reported as %v, want a validate-stage rejection", rep.Attempts[0].Err)
	}
	if rep.Served != "list" {
		t.Errorf("served by %q, want list", rep.Served)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("served schedule invalid: %v", err)
	}
}

// handSched builds a sequential single-cluster schedule issuing the given
// instructions at widely spaced cycles in the given order.
func handSched(g *ir.Graph, m *machine.Model, order []int) *schedule.Schedule {
	s := schedule.New(g, m)
	for pos, id := range order {
		in := g.Instrs[id]
		lat, _ := m.InstrLatency(in, 0)
		s.Placements[id] = schedule.Placement{
			Cluster: 0,
			FU:      m.FirstFU(in.Op),
			Start:   10 * (pos + 1),
			Latency: lat,
		}
	}
	return s
}

// TestVerifyCatchesWrongAnswer: a schedule can be structurally legal yet
// compute the wrong answer when the input graph under-constrains memory
// (two stores to one location with no ordering edge — a generator bug).
// With Verify set, simulation against reference execution catches it and
// the ladder degrades to a rung that happens to order the stores correctly.
func TestVerifyCatchesWrongAnswer(t *testing.T) {
	m := machine.SingleVLIW()
	g := ir.New("underconstrained")
	a0 := g.AddConst(0)
	c1 := g.AddConst(1)
	c2 := g.AddConst(2)
	s0 := g.AddStore(0, a0.ID, c1.ID)
	s1 := g.AddStore(0, a0.ID, c2.ID)
	good := []int{a0.ID, c1.ID, c2.ID, s0.ID, s1.ID}
	bad := []int{a0.ID, c1.ID, c2.ID, s1.ID, s0.ID}
	ladder := []robust.Rung{
		{Name: "reordered", Run: func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
			return handSched(gg, m, bad), nil
		}},
		{Name: "program-order", Run: func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
			return handSched(gg, m, good), nil
		}},
	}
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Ladder: ladder,
		Verify: true,
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if a := rep.Attempts[0]; a.Err == nil || a.Err.Stage != robust.StageVerify {
		t.Fatalf("wrong-answer schedule reported as %v, want a verify-stage rejection", rep.Attempts[0].Err)
	}
	if rep.Served != "program-order" {
		t.Errorf("served by %q, want program-order", rep.Served)
	}
	if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
		t.Errorf("served schedule fails verification: %v", err)
	}
}

func TestAllRungsFail(t *testing.T) {
	m := machine.Chorus(2)
	g := bench.RandomLayered(20, 4, 2, 1)
	ladder := []robust.Rung{
		{Name: "deaf", Run: func(context.Context, *ir.Graph) (*schedule.Schedule, error) { return nil, errors.New("no") }},
		{Name: "dumb", Run: func(context.Context, *ir.Graph) (*schedule.Schedule, error) { panic("nope") }},
	}
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{Ladder: ladder})
	if err == nil || s != nil {
		t.Fatal("driver claimed success with every rung failing")
	}
	if rep.Served != "" {
		t.Errorf("report claims rung %q served", rep.Served)
	}
	if len(rep.Failed()) != 2 {
		t.Errorf("%d failures recorded, want 2", len(rep.Failed()))
	}
	var serr *robust.SchedError
	if !errors.As(err, &serr) {
		t.Fatalf("error %v does not unwrap to *SchedError", err)
	}
	if !strings.Contains(rep.String(), "no rung served") {
		t.Errorf("report does not state the total failure:\n%s", rep)
	}
}

// TestBudgetStarvedLadderEscalates: when the per-attempt budget is so
// tight that every rung — including the last resort — deadlines, the
// driver gives the final rung one unbounded attempt rather than deny the
// request. A single-rung ladder keeps strict budget semantics.
func TestBudgetStarvedLadderEscalates(t *testing.T) {
	m := machine.Chorus(2)
	g := bench.RandomLayered(30, 4, 2, 1)
	slowList := func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
		time.Sleep(40 * time.Millisecond)
		return robust.ListRung(m).Run(ctx, gg)
	}
	ladder := []robust.Rung{
		{Name: "slow-a", Run: slowList},
		{Name: "slow-b", Run: slowList},
	}
	s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Ladder:  ladder,
		Timeout: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("starved ladder denied the request: %v\n%s", err, rep)
	}
	if rep.Served != "slow-b" {
		t.Errorf("served by %q, want the unbounded retry of the last rung\n%s", rep.Served, rep)
	}
	if len(rep.Attempts) != 3 {
		t.Errorf("%d attempts, want 2 deadlined + 1 unbounded retry\n%s", len(rep.Attempts), rep)
	}
	for i := 0; i < 2; i++ {
		if a := rep.Attempts[i]; a.Err == nil || a.Err.Stage != robust.StageDeadline {
			t.Errorf("attempt %d = %v, want deadline", i, a.Err)
		}
	}
	if err := s.Validate(); err != nil {
		t.Errorf("escalated schedule invalid: %v", err)
	}

	// Single rung: the budget stays a hard bound.
	_, rep, err = robust.Schedule(context.Background(), g, m, robust.Options{
		Ladder:  []robust.Rung{{Name: "only", Run: slowList}},
		Timeout: 5 * time.Millisecond,
	})
	if err == nil {
		t.Fatalf("single-rung ladder escaped its budget\n%s", rep)
	}
}

func TestEmptyLadderIsError(t *testing.T) {
	g := bench.RandomLayered(20, 4, 2, 1)
	_, _, err := robust.Schedule(context.Background(), g, machine.Chorus(2), robust.Options{Ladder: []robust.Rung{}})
	if err == nil {
		t.Fatal("empty ladder accepted")
	}
}

func TestCancelledContextStopsLadder(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := machine.Chorus(2)
	g := bench.RandomLayered(20, 4, 2, 1)
	slow := func(ctx context.Context, gg *ir.Graph) (*schedule.Schedule, error) {
		time.Sleep(50 * time.Millisecond)
		return robust.ListRung(m).Run(ctx, gg)
	}
	ladder := []robust.Rung{{Name: "one", Run: slow}, {Name: "two", Run: slow}}
	_, rep, err := robust.Schedule(ctx, g, m, robust.Options{Ladder: ladder})
	if err == nil {
		t.Fatal("cancelled context still produced a schedule")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("error %v does not wrap context.Canceled", err)
	}
	// Since the deadline-propagation hardening, an already-cancelled
	// context is rejected up front: no rung runs, not even once.
	if len(rep.Attempts) != 0 {
		t.Errorf("%d attempts after cancellation, want 0 (no rung may run)", len(rep.Attempts))
	}
}

func TestGuard(t *testing.T) {
	if _, err := robust.Guard("g", func() (*schedule.Schedule, error) { panic("pow") }); err == nil {
		t.Fatal("Guard swallowed a panic without reporting it")
	} else {
		var serr *robust.SchedError
		if !errors.As(err, &serr) || serr.Stage != robust.StagePanic {
			t.Errorf("Guard error %v, want a panic-stage *SchedError", err)
		}
	}
	want := &schedule.Schedule{}
	got, err := robust.Guard("g", func() (*schedule.Schedule, error) { return want, nil })
	if err != nil || got != want {
		t.Errorf("Guard altered a successful call: %v, %v", got, err)
	}
}

func TestLadderFor(t *testing.T) {
	m := machine.Chorus(4)
	for name, wantLen := range map[string]int{"convergent": 4, "uas": 2, "pcc": 2, "list": 1} {
		ladder, err := robust.LadderFor(m, name, 1)
		if err != nil {
			t.Errorf("LadderFor(%s): %v", name, err)
			continue
		}
		if len(ladder) != wantLen {
			t.Errorf("LadderFor(%s) has %d rungs, want %d", name, len(ladder), wantLen)
		}
	}
	if _, err := robust.LadderFor(m, "quantum", 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}
