package robust_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/robust"
)

// TestPoisonedPassFallsThroughToBaseline is the headline degradation
// scenario: a panicking pass poisons both convergent rungs, and the ladder
// demonstrably falls through to the machine's baseline scheduler.
func TestPoisonedPassFallsThroughToBaseline(t *testing.T) {
	cases := []struct {
		m        *machine.Model
		kernel   string
		baseline string
	}{
		{machine.Raw(16), "jacobi", "rawcc"},
		{machine.Chorus(4), "vvmul", "uas"},
	}
	for _, tc := range cases {
		k := mustKernel(t, tc.kernel)
		g := k.Build(tc.m.NumClusters)
		chaos := faultinject.Chaos{Class: faultinject.ChaosPassPanic, Seed: 1}
		ladder, err := chaos.Ladder(tc.m, 2002)
		if err != nil {
			t.Fatalf("%s: %v", tc.m.Name, err)
		}
		s, rep, err := robust.Schedule(context.Background(), g, tc.m, robust.Options{
			Ladder:     ladder,
			Verify:     true,
			InitMemory: k.InitMemory(tc.m.NumClusters),
		})
		if err != nil {
			t.Fatalf("%s/%s: %v\n%s", tc.m.Name, tc.kernel, err, rep)
		}
		if rep.Served != tc.baseline {
			t.Errorf("%s/%s: served by %q, want baseline %q\n%s", tc.m.Name, tc.kernel, rep.Served, tc.baseline, rep)
		}
		for i := 0; i < 2; i++ {
			a := rep.Attempts[i]
			if a.Err == nil || a.Err.Stage != robust.StagePanic {
				t.Errorf("%s/%s: poisoned rung %d reported %v, want panic", tc.m.Name, tc.kernel, i, a.Err)
			}
			if !strings.Contains(a.Rung, "!pass-panic") {
				t.Errorf("%s/%s: rung %q does not name the injected fault", tc.m.Name, tc.kernel, a.Rung)
			}
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s/%s: baseline schedule invalid: %v", tc.m.Name, tc.kernel, err)
		}
	}
}

// TestStalledPassDeadlinesToBaseline: a stalled pass exhausts the
// per-attempt budget on both convergent rungs; the deadline abandons them
// and the baseline serves.
func TestStalledPassDeadlinesToBaseline(t *testing.T) {
	m := machine.Chorus(4)
	k := mustKernel(t, "vvmul")
	g := k.Build(4)
	chaos := faultinject.Chaos{Class: faultinject.ChaosPassStall, Seed: 1, Stall: 5 * time.Second}
	ladder, err := chaos.Ladder(m, 2002)
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Ladder:     ladder,
		Timeout:    80 * time.Millisecond,
		Verify:     true,
		InitMemory: k.InitMemory(4),
	})
	if err != nil {
		t.Fatalf("%v\n%s", err, rep)
	}
	if rep.Served != "uas" {
		t.Errorf("served by %q, want uas\n%s", rep.Served, rep)
	}
	for i := 0; i < 2; i++ {
		if a := rep.Attempts[i]; a.Err == nil || a.Err.Stage != robust.StageDeadline {
			t.Errorf("stalled rung %d reported %v, want deadline", i, rep.Attempts[i].Err)
		}
	}
}

// TestEveryKernelSurvivesEveryChaosClass is the acceptance sweep: for every
// kernel in the bench registry, on raw16 and vliw4, under every chaos class,
// robust.Schedule returns a schedule that validates against the pristine
// graph and machine and simulates to the reference answer, with the report
// naming the serving rung. Nothing in this test may panic or return an
// error — that is the whole point of the package.
func TestEveryKernelSurvivesEveryChaosClass(t *testing.T) {
	machines := []*machine.Model{machine.Raw(16), machine.Chorus(4)}
	served := map[string]int{}
	for _, m := range machines {
		for _, name := range bench.Names() {
			k := mustKernel(t, name)
			g := k.Build(m.NumClusters)
			mem := k.InitMemory(m.NumClusters)
			for _, class := range faultinject.Classes() {
				chaos := faultinject.Chaos{Class: class, Seed: 7, Stall: 5 * time.Second}
				ladder, err := chaos.Ladder(m, 2002)
				if err != nil {
					t.Fatalf("%s: %v", class, err)
				}
				opt := robust.Options{Ladder: ladder, Verify: true, InitMemory: mem}
				if class == faultinject.ChaosPassStall {
					// The stall must lose to the budget, not be waited out.
					opt.Timeout = 100 * time.Millisecond
				}
				s, rep, err := robust.Schedule(context.Background(), g, m, opt)
				if err != nil {
					t.Errorf("%s/%s under %s: no rung served: %v\n%s", m.Name, name, class, err, rep)
					continue
				}
				if rep.Served == "" {
					t.Errorf("%s/%s under %s: report names no serving rung", m.Name, name, class)
				}
				served[rep.Served]++
				if s.Graph != g || s.Machine != m {
					t.Errorf("%s/%s under %s: schedule not attached to pristine inputs", m.Name, name, class)
				}
				if err := s.Validate(); err != nil {
					t.Errorf("%s/%s under %s: served schedule invalid: %v", m.Name, name, class, err)
				}
			}
		}
	}
	t.Logf("serving rungs across the sweep: %v", served)
}
