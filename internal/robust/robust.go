// Package robust is the resilient scheduling driver: it wraps any scheduler
// behind panic isolation, a per-attempt time budget, and a post-hoc legality
// gate, and walks a graceful-degradation ladder of schedulers until one
// produces a schedule that provably computes the right answer.
//
// The convergent-scheduling paper sells robustness at the heuristic level —
// no single pass can wreck the schedule because every decision is a
// revisable preference. This package extends that contract to the process
// level, which is what a served scheduler needs: a rung may panic, stall,
// return garbage, or lie, and the driver still returns *some* validated
// schedule plus a report of which rungs failed and why. The gate never
// trusts a rung's output: every candidate is re-attached to the pristine
// input graph and machine model and re-validated from scratch (optionally
// including simulation against sequential reference semantics), so a
// scheduler that was fed corrupted preferences, a mutilated dependence
// graph, or a lying latency table cannot smuggle an illegal schedule out.
package robust

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Stage identifies where in a scheduling attempt a failure happened.
type Stage string

const (
	// StageSchedule means the scheduler itself returned an error.
	StageSchedule Stage = "schedule"
	// StagePanic means the scheduler panicked and was recovered.
	StagePanic Stage = "panic"
	// StageDeadline means the attempt exceeded its time budget (the
	// abandoned attempt keeps its private graph clone, so it can finish
	// harmlessly in the background).
	StageDeadline Stage = "deadline"
	// StageValidate means the legality gate rejected the candidate
	// schedule against the pristine graph and machine.
	StageValidate Stage = "validate"
	// StageVerify means simulation of the candidate diverged from
	// sequential reference execution.
	StageVerify Stage = "verify"
	// StageBreaker means the rung was skipped without running because its
	// circuit breaker was open (see Options.Breakers). The rung paid no
	// time budget.
	StageBreaker Stage = "breaker"
)

// SchedError is the structured failure of one scheduling attempt.
type SchedError struct {
	// Rung names the ladder rung that failed.
	Rung string
	// Stage says where the attempt failed.
	Stage Stage
	// Err is the underlying error (nil for pure panics).
	Err error
	// PanicValue is the recovered panic value when Stage is StagePanic.
	PanicValue any
	// Stack is the goroutine stack captured at the panic site.
	Stack []byte
}

// Error renders the failure with its rung and stage.
func (e *SchedError) Error() string {
	switch {
	case e.Stage == StagePanic:
		return fmt.Sprintf("robust: rung %s panicked: %v", e.Rung, e.PanicValue)
	case e.Rung == "":
		return fmt.Sprintf("robust: failed at %s before any rung ran: %v", e.Stage, e.Err)
	default:
		return fmt.Sprintf("robust: rung %s failed at %s: %v", e.Rung, e.Stage, e.Err)
	}
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *SchedError) Unwrap() error { return e.Err }

// Rung is one level of the graceful-degradation ladder: a named scheduler.
// Run receives a private clone of the input graph, so a misbehaving rung —
// or a stalled one abandoned by the deadline — can never corrupt the graph
// another rung (or the legality gate) sees.
type Rung struct {
	// Name labels the rung in reports ("convergent", "uas", "list", ...).
	Name string
	// Run schedules the graph. It may return an error, panic, or stall;
	// the driver isolates all three. The context carries the request's
	// observability trace (see internal/obs) labelled with this rung's
	// name; schedulers that don't record simply ignore it.
	Run func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error)
}

// Options configures the resilient driver.
type Options struct {
	// Timeout bounds each rung attempt. Zero means no per-attempt budget
	// (the outer context still applies).
	Timeout time.Duration
	// Verify additionally simulates every candidate schedule against
	// sequential reference execution before accepting it. Validation
	// against the dependence graph and machine model always runs.
	Verify bool
	// InitMemory is the initial memory Verify simulates against; nil
	// means empty memory.
	InitMemory sim.Memory
	// Ladder is the rung sequence to walk. Nil means DefaultLadder with
	// Seed.
	Ladder []Rung
	// Seed seeds the convergent rungs of the default ladder.
	Seed int64
	// Breakers, when non-nil, guards every rung with a circuit breaker: a
	// rung whose breaker is open is skipped without paying its time budget
	// (the attempt is recorded with StageBreaker), and every attempted
	// rung's outcome feeds its breaker. Attempts abandoned because the
	// caller's context ended are not charged against the rung.
	Breakers *BreakerSet
	// BreakerScope partitions the breaker population — a served scheduler
	// uses the target machine's fingerprint so a rung failing on one
	// machine shape is not skipped on another. Empty means one breaker per
	// rung name.
	BreakerScope string
}

// Attempt records one rung's outcome.
type Attempt struct {
	// Rung is the rung name.
	Rung string
	// Duration is the wall-clock time the attempt took (for abandoned
	// attempts, the time until the deadline fired).
	Duration time.Duration
	// Err is nil when the rung's schedule passed the gate.
	Err *SchedError
}

// Report says which rungs ran, how each fared, and which one served.
type Report struct {
	// Attempts lists every rung tried, in ladder order.
	Attempts []Attempt
	// Served is the name of the rung whose schedule was accepted, or ""
	// when every rung failed.
	Served string
}

// Failed returns the errors of all failed attempts, in ladder order.
func (r *Report) Failed() []*SchedError {
	var out []*SchedError
	for _, a := range r.Attempts {
		if a.Err != nil {
			out = append(out, a.Err)
		}
	}
	return out
}

// Skipped reports whether any rung was bypassed by an open circuit breaker.
// A skipped report is load-dependent, not content-determined, so schedule
// caches (internal/engine) must not memoize its result.
func (r *Report) Skipped() bool {
	for _, a := range r.Attempts {
		if a.Err != nil && a.Err.Stage == StageBreaker {
			return true
		}
	}
	return false
}

// String renders the report one attempt per line.
func (r *Report) String() string {
	var b strings.Builder
	for _, a := range r.Attempts {
		status := "ok"
		if a.Err != nil {
			status = fmt.Sprintf("%s: %v", a.Err.Stage, compact(a.Err))
		}
		fmt.Fprintf(&b, "rung %-22s %10v  %s\n", a.Rung, a.Duration.Round(time.Microsecond), status)
	}
	if r.Served != "" {
		fmt.Fprintf(&b, "served by rung %s\n", r.Served)
	} else {
		b.WriteString("no rung served\n")
	}
	return b.String()
}

// compact flattens an attempt error to a single line for the report.
func compact(e *SchedError) string {
	var msg string
	switch {
	case e.Stage == StagePanic:
		msg = fmt.Sprint(e.PanicValue)
	case e.Err != nil:
		msg = e.Err.Error()
	}
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return msg
}

// recordAttempt mirrors one report attempt into the request trace (nil-safe:
// untraced requests record nothing).
func recordAttempt(tr *obs.Trace, rung string, d time.Duration, serr *SchedError) {
	if tr == nil {
		return
	}
	a := obs.AttemptRec{Rung: rung, Ms: float64(d) / float64(time.Millisecond), OK: serr == nil}
	if serr != nil {
		a.Stage = string(serr.Stage)
		a.Error = compact(serr)
	}
	tr.RecordAttempt(a)
}

// breakerWatch snapshots a breaker's state and returns a closure that
// records a BreakerEvent if the state changed by the time it runs. Untraced
// requests get a no-op, so the untraced path never queries the breaker.
func breakerWatch(tr *obs.Trace, bs *BreakerSet, key string) func() {
	if tr == nil || bs == nil {
		return func() {}
	}
	before := bs.State(key)
	return func() {
		if after := bs.State(key); after != before {
			tr.RecordBreaker(obs.BreakerEvent{Key: key, From: string(before), To: string(after)})
		}
	}
}

// outcome crosses the goroutine boundary of one isolated attempt.
type outcome struct {
	sched *schedule.Schedule
	err   error
	serr  *SchedError
}

// attempt runs one rung on a private clone of g with panic isolation and the
// configured deadline.
func attempt(ctx context.Context, r Rung, g *ir.Graph, timeout time.Duration) (*schedule.Schedule, *SchedError) {
	clone := g.Clone()
	runCtx := obs.WithRung(ctx, r.Name)
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if v := recover(); v != nil {
				ch <- outcome{serr: &SchedError{Rung: r.Name, Stage: StagePanic, PanicValue: v, Stack: debug.Stack()}}
			}
		}()
		s, err := r.Run(runCtx, clone)
		ch <- outcome{sched: s, err: err}
	}()
	var deadline <-chan time.Time
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case out := <-ch:
		if out.serr != nil {
			return nil, out.serr
		}
		if out.err != nil {
			return nil, &SchedError{Rung: r.Name, Stage: StageSchedule, Err: out.err}
		}
		if out.sched == nil {
			return nil, &SchedError{Rung: r.Name, Stage: StageSchedule, Err: fmt.Errorf("scheduler returned no schedule and no error")}
		}
		return out.sched, nil
	case <-deadline:
		return nil, &SchedError{Rung: r.Name, Stage: StageDeadline, Err: fmt.Errorf("attempt exceeded %v budget", timeout)}
	case <-ctx.Done():
		return nil, &SchedError{Rung: r.Name, Stage: StageDeadline, Err: ctx.Err()}
	}
}

// gate re-attaches a candidate schedule to the pristine graph and machine
// and checks its complete legality there, so nothing a rung did to its
// private inputs can leak into the accepted schedule.
func gate(name string, cand *schedule.Schedule, g *ir.Graph, m *machine.Model, opt Options) (*schedule.Schedule, *SchedError) {
	if len(cand.Placements) != g.Len() {
		return nil, &SchedError{Rung: name, Stage: StageValidate,
			Err: fmt.Errorf("schedule places %d of %d instructions", len(cand.Placements), g.Len())}
	}
	shell := &schedule.Schedule{
		Graph:      g,
		Machine:    m,
		Placements: append([]schedule.Placement(nil), cand.Placements...),
		Comms:      append([]schedule.Comm(nil), cand.Comms...),
	}
	if err := shell.Validate(); err != nil {
		return nil, &SchedError{Rung: name, Stage: StageValidate, Err: err}
	}
	if opt.Verify {
		mem := opt.InitMemory
		if mem == nil {
			mem = sim.NewMemory()
		}
		if _, err := sim.Verify(shell, mem); err != nil {
			return nil, &SchedError{Rung: name, Stage: StageVerify, Err: err}
		}
	}
	return shell, nil
}

// Schedule walks the ladder until a rung produces a schedule that passes
// the legality gate, and returns that schedule with a report of every
// attempt. It never panics on a rung's behalf: rung panics, stalls, errors,
// and illegal or wrong-answer schedules all become recorded attempts, and
// the next rung runs. The returned schedule always references the original
// g and m and satisfies schedule.Validate (plus simulation against
// reference execution when opt.Verify is set). An error is returned only
// when every rung fails, alongside the full report.
func Schedule(ctx context.Context, g *ir.Graph, m *machine.Model, opt Options) (*schedule.Schedule, *Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	ladder := opt.Ladder
	if ladder == nil {
		ladder = DefaultLadder(m, opt.Seed)
	}
	rep := &Report{}
	if len(ladder) == 0 {
		return nil, rep, fmt.Errorf("robust: empty ladder")
	}
	// A context that is already over gets a deadline SchedError without any
	// rung running: no clone, no goroutine, no budget. This is what lets a
	// server shed a queue of expired requests at memory speed.
	if err := ctx.Err(); err != nil {
		serr := &SchedError{Stage: StageDeadline, Err: err}
		return nil, rep, serr
	}
	g.Seal()
	tr := obs.FromContext(ctx)
	var last *SchedError
	for _, r := range ladder {
		if ctx.Err() != nil {
			break
		}
		key := breakerKey(r.Name, opt.BreakerScope)
		watch := breakerWatch(tr, opt.Breakers, key)
		if opt.Breakers != nil && !opt.Breakers.Allow(key) {
			watch()
			serr := &SchedError{Rung: r.Name, Stage: StageBreaker,
				Err: fmt.Errorf("circuit open for %q, rung skipped", key)}
			rep.Attempts = append(rep.Attempts, Attempt{Rung: r.Name, Err: serr})
			recordAttempt(tr, r.Name, 0, serr)
			last = serr
			continue
		}
		t0 := time.Now()
		cand, serr := attempt(ctx, r, g, opt.Timeout)
		if serr == nil {
			cand, serr = gate(r.Name, cand, g, m, opt)
		}
		dur := time.Since(t0)
		rep.Attempts = append(rep.Attempts, Attempt{Rung: r.Name, Duration: dur, Err: serr})
		recordAttempt(tr, r.Name, dur, serr)
		if opt.Breakers != nil {
			switch {
			case serr == nil:
				opt.Breakers.Record(key, true)
			case ctx.Err() != nil:
				// The caller's deadline ended the attempt; that says
				// nothing about the rung, so hand back any probe slot
				// without charging a failure.
				opt.Breakers.Cancel(key)
			default:
				opt.Breakers.Record(key, false)
			}
		}
		watch()
		if serr == nil {
			rep.Served = r.Name
			return cand, rep, nil
		}
		last = serr
		if ctx.Err() != nil {
			break
		}
	}
	// A per-attempt budget tight enough to starve even the last resort
	// must not turn a degradation ladder into a denial: when the final
	// rung fell to the deadline, it gets one unbounded attempt (the
	// caller's context still bounds it). Single-rung ladders keep strict
	// budget semantics — there the caller asked to bound that scheduler,
	// not to be served at any cost.
	if len(ladder) > 1 && opt.Timeout > 0 && last != nil && last.Stage == StageDeadline && ctx.Err() == nil {
		r := ladder[len(ladder)-1]
		key := breakerKey(r.Name, opt.BreakerScope)
		watch := breakerWatch(tr, opt.Breakers, key)
		t0 := time.Now()
		cand, serr := attempt(ctx, r, g, 0)
		if serr == nil {
			cand, serr = gate(r.Name, cand, g, m, opt)
		}
		dur := time.Since(t0)
		rep.Attempts = append(rep.Attempts, Attempt{Rung: r.Name, Duration: dur, Err: serr})
		recordAttempt(tr, r.Name, dur, serr)
		// The rescue attempt bypasses Allow — it is the serve-at-any-cost
		// path — but its outcome still teaches the breaker.
		if opt.Breakers != nil && (serr == nil || ctx.Err() == nil) {
			opt.Breakers.Record(key, serr == nil)
		}
		watch()
		if serr == nil {
			rep.Served = r.Name
			return cand, rep, nil
		}
		last = serr
	}
	return nil, rep, fmt.Errorf("robust: every rung failed for %q on %s: %w", g.Name, m.Name, last)
}

// Guard runs a bare scheduler call with panic isolation only: a panic
// becomes a *SchedError instead of taking down the process. It adds no
// goroutine, deadline, or validation, so timing measurements around it stay
// honest.
func Guard(name string, fn func() (*schedule.Schedule, error)) (s *schedule.Schedule, err error) {
	defer func() {
		if v := recover(); v != nil {
			s, err = nil, &SchedError{Rung: name, Stage: StagePanic, PanicValue: v, Stack: debug.Stack()}
		}
	}()
	return fn()
}
