package robust

import (
	"math/rand"
	"sort"
	"sync"
	"time"
)

// BreakerState is the observable state of one circuit breaker.
type BreakerState string

const (
	// BreakerClosed lets every attempt through (the healthy state).
	BreakerClosed BreakerState = "closed"
	// BreakerOpen rejects attempts until the cooldown expires.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen lets exactly one probe attempt through; its outcome
	// decides between closing and re-opening with a longer cooldown.
	BreakerHalfOpen BreakerState = "half-open"
)

// BreakerPolicy configures the per-rung circuit breakers of a BreakerSet.
// The zero value selects the defaults documented on each field.
type BreakerPolicy struct {
	// Failures is how many consecutive failures trip a closed breaker.
	// Default 3.
	Failures int
	// Cooldown is the open interval after the first trip. Each re-open from
	// half-open doubles it (exponential backoff); a successful probe resets
	// it. Default 1s.
	Cooldown time.Duration
	// MaxCooldown caps the backoff. Default 2m.
	MaxCooldown time.Duration
	// JitterFrac spreads each cooldown uniformly over ±JitterFrac of its
	// nominal value, so a fleet of breakers tripped together does not probe
	// in lockstep. Default 0.2; negative disables jitter.
	JitterFrac float64
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Failures <= 0 {
		p.Failures = 3
	}
	if p.Cooldown <= 0 {
		p.Cooldown = time.Second
	}
	if p.MaxCooldown <= 0 {
		p.MaxCooldown = 2 * time.Minute
	}
	if p.JitterFrac == 0 {
		p.JitterFrac = 0.2
	}
	if p.JitterFrac < 0 {
		p.JitterFrac = 0
	}
	return p
}

// breaker is the state machine for one key.
type breaker struct {
	state    BreakerState
	fails    int           // consecutive failures while closed
	cooldown time.Duration // current backoff interval
	openedAt time.Time
	until    time.Time // open rejects attempts until this instant
	probing  bool      // a half-open probe is in flight
	opens    uint64    // lifetime trips to open
	skips    uint64    // attempts rejected while open/half-open
}

// BreakerSet is a keyed family of circuit breakers. The resilient driver
// consults one breaker per (rung, scope) pair — see Options.Breakers — so a
// rung that persistently fails for one machine fingerprint is skipped there
// without being penalized anywhere else. A BreakerSet is safe for concurrent
// use; the zero value is not valid, use NewBreakerSet.
type BreakerSet struct {
	policy BreakerPolicy

	mu       sync.Mutex
	m        map[string]*breaker
	now      func() time.Time
	rng      *rand.Rand // guarded by mu
	observer func(key string, from, to BreakerState)
}

// SetObserver installs a hook called on every breaker state transition. The
// hook runs under the set's lock, so it must be fast and must not call back
// into the set — the server's observer only bumps a transition counter. A
// nil fn removes the hook.
func (s *BreakerSet) SetObserver(fn func(key string, from, to BreakerState)) {
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// State returns the breaker's current state without creating it; unknown
// keys report closed (the state a fresh breaker would start in).
func (s *BreakerSet) State(key string) BreakerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok {
		return b.state
	}
	return BreakerClosed
}

// NewBreakerSet returns a breaker family with the given policy (zero fields
// take defaults).
func NewBreakerSet(policy BreakerPolicy) *BreakerSet {
	return newBreakerSet(policy, time.Now, rand.NewSource(rand.Int63()))
}

// newBreakerSet injects the clock and jitter source, for deterministic tests.
func newBreakerSet(policy BreakerPolicy, now func() time.Time, src rand.Source) *BreakerSet {
	return &BreakerSet{
		policy: policy.withDefaults(),
		m:      make(map[string]*breaker),
		now:    now,
		rng:    rand.New(src),
	}
}

func (s *BreakerSet) get(key string) *breaker {
	b, ok := s.m[key]
	if !ok {
		b = &breaker{state: BreakerClosed, cooldown: s.policy.Cooldown}
		s.m[key] = b
	}
	return b
}

// jittered returns d spread over ±JitterFrac. Callers hold s.mu.
func (s *BreakerSet) jittered(d time.Duration) time.Duration {
	if s.policy.JitterFrac == 0 {
		return d
	}
	f := 1 + s.policy.JitterFrac*(2*s.rng.Float64()-1)
	return time.Duration(float64(d) * f)
}

// Allow reports whether an attempt for key may run now. An open breaker
// whose cooldown has expired transitions to half-open and grants exactly one
// probe; everyone else is rejected until the probe reports its outcome.
func (s *BreakerSet) Allow(key string) bool {
	s.mu.Lock()
	b := s.get(key)
	from := b.state
	var allowed bool
	switch b.state {
	case BreakerClosed:
		allowed = true
	case BreakerOpen:
		if s.now().Before(b.until) {
			b.skips++
		} else {
			b.state = BreakerHalfOpen
			b.probing = true
			allowed = true
		}
	default: // half-open
		if b.probing {
			b.skips++
		} else {
			b.probing = true
			allowed = true
		}
	}
	s.notify(key, from, b.state)
	s.mu.Unlock()
	return allowed
}

// notify fires the observer for a state transition. Callers hold s.mu.
func (s *BreakerSet) notify(key string, from, to BreakerState) {
	if s.observer != nil && from != to {
		s.observer(key, from, to)
	}
}

// Record reports the outcome of an attempt Allow let through. Success closes
// the breaker and resets its backoff; failure counts toward the trip
// threshold (closed) or re-opens with doubled, jittered cooldown (half-open).
func (s *BreakerSet) Record(key string, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.get(key)
	from := b.state
	if ok {
		b.state = BreakerClosed
		b.fails = 0
		b.probing = false
		b.cooldown = s.policy.Cooldown
		s.notify(key, from, b.state)
		return
	}
	switch b.state {
	case BreakerClosed:
		b.fails++
		if b.fails >= s.policy.Failures {
			s.trip(b, s.policy.Cooldown)
		}
	case BreakerHalfOpen:
		next := 2 * b.cooldown
		if next > s.policy.MaxCooldown {
			next = s.policy.MaxCooldown
		}
		s.trip(b, next)
	default: // open: a straggler attempt admitted before the trip; nothing to do
	}
	s.notify(key, from, b.state)
}

// trip moves b to open for a jittered cooldown. Callers hold s.mu.
func (s *BreakerSet) trip(b *breaker, cooldown time.Duration) {
	b.state = BreakerOpen
	b.fails = 0
	b.probing = false
	b.cooldown = cooldown
	b.openedAt = s.now()
	b.until = b.openedAt.Add(s.jittered(cooldown))
	b.opens++
}

// Cancel releases an attempt Allow let through whose outcome says nothing
// about the rung's health (the caller's context was cancelled mid-attempt).
// A half-open probe slot is handed back so the next request can probe.
func (s *BreakerSet) Cancel(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.m[key]; ok && b.state == BreakerHalfOpen {
		b.probing = false
	}
}

// BreakerStat is a point-in-time snapshot of one breaker.
type BreakerStat struct {
	// Key is the breaker key (rung name + scope, see Options.BreakerScope).
	Key string `json:"key"`
	// State is the current state.
	State BreakerState `json:"state"`
	// Failures is the consecutive-failure count while closed.
	Failures int `json:"failures"`
	// Opens counts lifetime trips to open.
	Opens uint64 `json:"opens"`
	// Skips counts attempts rejected while open or half-open.
	Skips uint64 `json:"skips"`
	// Cooldown is the current backoff interval.
	Cooldown time.Duration `json:"cooldown"`
	// RetryIn is how long until an open breaker admits a probe (0 otherwise).
	RetryIn time.Duration `json:"retryIn"`
}

// Snapshot returns every breaker's state, sorted by key.
func (s *BreakerSet) Snapshot() []BreakerStat {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	out := make([]BreakerStat, 0, len(s.m))
	for key, b := range s.m {
		st := BreakerStat{
			Key:      key,
			State:    b.state,
			Failures: b.fails,
			Opens:    b.opens,
			Skips:    b.skips,
			Cooldown: b.cooldown,
		}
		if b.state == BreakerOpen && b.until.After(now) {
			st.RetryIn = b.until.Sub(now)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// breakerKey names the breaker for a rung within a scope.
func breakerKey(rung, scope string) string {
	if scope == "" {
		return rung
	}
	return rung + "@" + scope
}
