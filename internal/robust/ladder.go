package robust

import (
	"context"
	"fmt"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/schedule"
)

// ConvergentRung wraps the convergent scheduler with the given pass
// sequence and noise seed as a ladder rung.
func ConvergentRung(name string, m *machine.Model, seq []core.Pass, seed int64) Rung {
	return Rung{Name: name, Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
		s, _, err := core.ScheduleCtx(ctx, g, m, seq, seed)
		return s, err
	}}
}

// TruncatedSequence returns the first half of a pass sequence (rounded up),
// the degraded-mode sequence of the default ladder: fewer passes converge
// less but each pass is an independent heuristic, so a prefix still yields
// a complete preference map.
func TruncatedSequence(seq []core.Pass) []core.Pass {
	return seq[:(len(seq)+1)/2]
}

// BaselineRung returns the machine's strongest non-convergent scheduler:
// the Rawcc-style space-time scheduler on machines with owned memory banks
// (Raw), UAS on clustered VLIWs.
func BaselineRung(m *machine.Model) Rung {
	if m.RemoteMemPenalty < 0 {
		return Rung{Name: "rawcc", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
			return rawcc.Schedule(g, m)
		}}
	}
	return Rung{Name: "uas", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
		return uas.Schedule(g, m)
	}}
}

// ListRung is the last-resort rung: critical-path list scheduling with the
// trivial assignment (preplacement homes and bank owners honoured,
// everything else on cluster 0). It exercises no heuristic machinery at
// all, so it survives almost anything the richer schedulers choke on.
func ListRung(m *machine.Model) Rung {
	return Rung{Name: "list", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
		assign := make([]int, g.Len())
		for i, in := range g.Instrs {
			switch {
			case in.Preplaced():
				assign[i] = in.Home
			case in.Op.IsMemory():
				assign[i] = m.BankOwner(in.Bank)
			}
		}
		return listsched.Run(g, m, listsched.Options{Assignment: assign})
	}}
}

// DefaultLadder is the degradation ladder the driver walks when Options.
// Ladder is nil:
//
//	convergent (full published sequence, seed)
//	→ convergent (truncated sequence, fresh seed)
//	→ rawcc or uas (machine-appropriate baseline)
//	→ single-cluster-style list baseline
//
// The truncated rung reseeds the noise pass, so a seed-dependent failure in
// the full sequence does not recur, matching the anytime-scheduling advice
// of the combinatorial-scheduling literature: always have a cheaper legal
// answer to fall back to.
func DefaultLadder(m *machine.Model, seed int64) []Rung {
	seq := passes.ForMachine(m.Name)
	return []Rung{
		ConvergentRung("convergent", m, seq, seed),
		ConvergentRung("convergent-truncated", m, TruncatedSequence(seq), seed+1),
		BaselineRung(m),
		ListRung(m),
	}
}

// DefaultLadderID returns a stable textual identity of the ladder that
// DefaultLadder(m, seed) builds: the pass-sequence identities and seeds of
// both convergent rungs plus the machine's baseline rung name. It is the
// cache-key component internal/engine uses for default-ladder scheduling
// requests, so it must change whenever DefaultLadder would walk different
// schedulers — a new pass in the sequence, a different truncation, or a
// different baseline all change the ID.
func DefaultLadderID(m *machine.Model, seed int64) string {
	seq := passes.ForMachine(m.Name)
	return fmt.Sprintf("convergent[%s|seed=%d]>convergent-truncated[%s|seed=%d]>%s>list",
		core.SequenceID(seq), seed,
		core.SequenceID(TruncatedSequence(seq)), seed+1,
		BaselineRung(m).Name)
}

// TunedLadder is DefaultLadder with the oracle-tuned pass sequence
// (passes.TunedForMachine) in both convergent rungs. The fallback rungs are
// unchanged: tuning moves cycles on the healthy path, not the degradation
// story.
func TunedLadder(m *machine.Model, seed int64) []Rung {
	seq := passes.TunedForMachine(m.Name)
	return []Rung{
		ConvergentRung("convergent-tuned", m, seq, seed),
		ConvergentRung("convergent-tuned-truncated", m, TruncatedSequence(seq), seed+1),
		BaselineRung(m),
		ListRung(m),
	}
}

// TunedLadderID is the cache identity of TunedLadder(m, seed), mirroring
// DefaultLadderID: it embeds the tuned sequence's identity, so retuning the
// shipped sequence changes the ID and can never serve stale cached
// schedules.
func TunedLadderID(m *machine.Model, seed int64) string {
	seq := passes.TunedForMachine(m.Name)
	return fmt.Sprintf("convergent-tuned[%s|seed=%d]>convergent-tuned-truncated[%s|seed=%d]>%s>list",
		core.SequenceID(seq), seed,
		core.SequenceID(TruncatedSequence(seq)), seed+1,
		BaselineRung(m).Name)
}

// RungFor returns the single rung for a scheduler name as accepted by
// cmd/convsched: convergent, rawcc, uas, pcc or list.
func RungFor(m *machine.Model, scheduler string, seed int64) (Rung, error) {
	switch scheduler {
	case "convergent":
		return ConvergentRung("convergent", m, passes.ForMachine(m.Name), seed), nil
	case "rawcc":
		return Rung{Name: "rawcc", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
			return rawcc.Schedule(g, m)
		}}, nil
	case "uas":
		return Rung{Name: "uas", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
			return uas.Schedule(g, m)
		}}, nil
	case "pcc":
		return Rung{Name: "pcc", Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
			return pcc.Schedule(g, m, pcc.Options{})
		}}, nil
	case "list":
		return ListRung(m), nil
	}
	return Rung{}, fmt.Errorf("robust: unknown scheduler %q", scheduler)
}

// LadderFor builds the ladder whose primary rung is the named scheduler.
// The convergent primary gets the full default ladder; any other primary
// degrades straight to the list baseline (falling back from one baseline to
// another would silently re-label the experiment being run).
func LadderFor(m *machine.Model, scheduler string, seed int64) ([]Rung, error) {
	if scheduler == "convergent" {
		return DefaultLadder(m, seed), nil
	}
	primary, err := RungFor(m, scheduler, seed)
	if err != nil {
		return nil, err
	}
	if scheduler == "list" {
		return []Rung{primary}, nil
	}
	return []Rung{primary, ListRung(m)}, nil
}
