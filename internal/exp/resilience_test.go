package exp

import (
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/machine"
)

// TestResilienceSweep: every injected fault class must be survived — each
// row names a serving rung — and the pipeline-poisoning classes must
// demonstrably fall through to the uas baseline on the VLIW.
func TestResilienceSweep(t *testing.T) {
	rows, err := Resilience([]*machine.Model{machine.Chorus(4)}, []string{"vvmul"}, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if want := len(faultinject.Classes()); len(rows) != want {
		t.Fatalf("%d rows, want one per chaos class (%d)", len(rows), want)
	}
	byClass := map[string]ResilienceRow{}
	for _, r := range rows {
		byClass[r.Class] = r
		if r.Served == "" {
			t.Errorf("%s/%s under %s: no rung served (%s)", r.Machine, r.Kernel, r.Class, r.FirstError)
		}
	}
	pp := byClass[faultinject.ChaosPassPanic]
	if pp.Served != "uas" || pp.FailedRungs != 2 {
		t.Errorf("pass-panic served by %q after %d failures, want uas after 2", pp.Served, pp.FailedRungs)
	}
	if !strings.Contains(pp.FirstError, "panic") {
		t.Errorf("pass-panic first error %q does not mention the panic", pp.FirstError)
	}

	out := RenderResilience(rows)
	for _, want := range []string{"pass-panic", "served-by", "uas"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered matrix missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "NONE") {
		t.Errorf("rendered matrix reports an unserved class:\n%s", out)
	}
}

func TestResilienceUnknownKernel(t *testing.T) {
	if _, err := Resilience([]*machine.Model{machine.Chorus(2)}, []string{"nonesuch"}, time.Second); err == nil {
		t.Error("unknown kernel accepted")
	}
}
