package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/robust"
)

// ObsRow distills one kernel/machine traced scheduling run: how the
// convergent passes settled (entropy of the preference marginals falling,
// churn fraction going to zero) and what the ladder paid for it.
type ObsRow struct {
	Kernel  string `json:"kernel"`
	Machine string `json:"machine"`
	// Served names the rung that produced the accepted schedule.
	Served string `json:"served"`
	// Passes and Attempts are trace lengths; Attempts always equals the
	// ladder report's attempt count (a traced invariant the tests pin).
	Passes   int `json:"passes"`
	Attempts int `json:"attempts"`
	// Ms is the wall-clock cost of the whole ladder walk.
	Ms float64 `json:"ms"`
	// FirstEntropy and FinalEntropy are the mean per-instruction Shannon
	// entropies (nats) of the cluster marginals after the first and last
	// pass; their gap is how much the passes collectively decided.
	FirstEntropy float64 `json:"firstEntropy"`
	FinalEntropy float64 `json:"finalEntropy"`
	// SettledAt is the 1-based index of the last pass that still moved any
	// instruction's preferred cluster (0 when no pass ever did).
	SettledAt int `json:"settledAt"`
	// MaxDrift is the worst |Σ weights − 1| observed across every pass
	// delta — the normalization-health number, epsilon-small by contract.
	MaxDrift float64 `json:"maxDrift"`
}

// ObsSummary is the BENCH_obs.json payload: every suite kernel on its
// machines, scheduled once with tracing on.
type ObsSummary struct {
	Seed int64    `json:"seed"`
	Rows []ObsRow `json:"rows"`
}

// Obs runs the full benchmark suite — Raw kernels on 4 and 16 tiles, VLIW
// kernels on the 4-cluster Chorus — through the resilient ladder with a
// trace attached, and reduces each trace to an ObsRow. It exercises exactly
// the production path (robust.Schedule with the default ladder), so the
// numbers reflect what a traced schedd request would report.
func Obs() (*ObsSummary, error) {
	type target struct {
		m     *machine.Model
		suite []bench.Kernel
	}
	targets := []target{
		{machine.Raw(4), bench.RawSuite()},
		{machine.Raw(16), bench.RawSuite()},
		{machine.Chorus(4), bench.VliwSuite()},
	}
	sum := &ObsSummary{Seed: Seed}
	for _, t := range targets {
		for _, k := range t.suite {
			g := k.Build(t.m.NumClusters)
			tr := obs.NewTrace(g.Name, t.m.Name)
			ctx := obs.WithTrace(context.Background(), tr)
			start := time.Now()
			_, rep, err := robust.Schedule(ctx, g, t.m, robust.Options{Seed: Seed})
			if err != nil {
				return nil, fmt.Errorf("exp: obs %s on %s: %w", k.Name, t.m.Name, err)
			}
			sum.Rows = append(sum.Rows, reduceTrace(tr, rep.Served, time.Since(start)))
		}
	}
	return sum, nil
}

// reduceTrace folds a finished trace into its ObsRow.
func reduceTrace(tr *obs.Trace, served string, d time.Duration) ObsRow {
	snap := tr.Snapshot()
	row := ObsRow{
		Kernel:   snap.Graph,
		Machine:  snap.Machine,
		Served:   served,
		Passes:   len(snap.Passes),
		Attempts: len(snap.Attempts),
		Ms:       float64(d.Nanoseconds()) / 1e6,
	}
	for i, p := range snap.Passes {
		if i == 0 {
			row.FirstEntropy = p.MeanEntropy
		}
		row.FinalEntropy = p.MeanEntropy
		if p.Changed > 0 {
			row.SettledAt = i + 1
		}
		if drift := p.MaxTotal - 1; drift > row.MaxDrift {
			row.MaxDrift = drift
		}
		if drift := 1 - p.MinTotal; drift > row.MaxDrift {
			row.MaxDrift = drift
		}
	}
	return row
}
