package exp

import (
	"context"
	"fmt"

	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/oracle"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// OracleRow reports one kernel × machine cell of the optimality-gap sweep:
// the oracle's certified lower bound, every scheduler column's makespan,
// and each column's gap over the bound. Gaps are provably non-negative —
// the bound is certified against every legal schedule — so a negative gap
// in the emitted artifact means the oracle or a scheduler's legality gate
// is broken, which is exactly what CI asserts on.
type OracleRow struct {
	Kernel  string `json:"kernel"`
	Machine string `json:"machine"`
	// Micro marks synthetic small graphs (searchable exactly) as opposed
	// to seed benchmark kernels (bounds-only).
	Micro bool `json:"micro"`
	Ops   int  `json:"ops"`
	// LowerBound is the oracle's certified lower bound; Bounds is its
	// static breakdown; Certified says the oracle proved a schedule of
	// exactly LowerBound cycles; Status and Nodes describe the search.
	LowerBound int           `json:"lowerBound"`
	Bounds     oracle.Bounds `json:"bounds"`
	Certified  bool          `json:"certified"`
	Status     string        `json:"status"`
	Nodes      int64         `json:"nodes"`
	// Ladder is the production path (default degradation ladder) and
	// Served the rung that answered. Default is the published convergent
	// sequence alone; Tuned the oracle-tuned sequence alone; Baseline
	// the machine's non-convergent baseline (rawcc or uas).
	Ladder       int    `json:"ladder"`
	Served       string `json:"served"`
	Default      int    `json:"default"`
	Tuned        int    `json:"tuned"`
	Baseline     int    `json:"baseline"`
	BaselineName string `json:"baselineName"`
	// Oracle is the best gated schedule the oracle holds after seeding
	// with every column above and searching; never longer than any of
	// them.
	Oracle int `json:"oracle"`
	// Gap columns: cycles over the certified lower bound.
	GapLadder int `json:"gapLadder"`
	GapTuned  int `json:"gapTuned"`
	GapOracle int `json:"gapOracle"`
}

// OracleTotals aggregates the sweep. SuiteDefault and SuiteTuned sum only
// the seed benchmark rows — the exact objective the tuned sequence was
// accepted on, so SuiteTuned <= SuiteDefault is a structural guarantee the
// CI gate pins.
type OracleTotals struct {
	Kernels       int `json:"kernels"`
	ProvenOptimal int `json:"provenOptimal"`
	LowerBound    int `json:"lowerBound"`
	Ladder        int `json:"ladder"`
	Oracle        int `json:"oracle"`
	SuiteDefault  int `json:"suiteDefault"`
	SuiteTuned    int `json:"suiteTuned"`
}

// OracleSummary is the BENCH_oracle.json payload.
type OracleSummary struct {
	Seed         int64        `json:"seed"`
	NodeBudget   int64        `json:"nodeBudget"`
	MaxSearchOps int          `json:"maxSearchOps"`
	Rows         []OracleRow  `json:"rows"`
	Totals       OracleTotals `json:"totals"`
}

// microKernel is a synthetic graph small enough for exact search; the
// shapes cover the classic stress cases (serial chain, reconvergent
// diamond, wide fanout, random layered code).
type microKernel struct {
	name  string
	build func(clusters int) *ir.Graph
}

func chainGraph(n int) *ir.Graph {
	g := ir.New(fmt.Sprintf("chain%d", n))
	prev := g.AddConst(1).ID
	for i := 0; i < n; i++ {
		prev = g.Add(ir.Add, prev, prev).ID
	}
	return g
}

func diamondGraph() *ir.Graph {
	g := ir.New("diamond")
	c := g.AddConst(7).ID
	a := g.Add(ir.Add, c, c).ID
	b := g.Add(ir.Sub, c, c).ID
	g.Add(ir.Mul, a, b)
	return g
}

func fanoutGraph(w int) *ir.Graph {
	g := ir.New(fmt.Sprintf("fanout%d", w))
	c := g.AddConst(3).ID
	var level []int
	for i := 0; i < w; i++ {
		level = append(level, g.Add(ir.Add, c, c).ID)
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, g.Add(ir.Add, level[i], level[i+1]).ID)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return g
}

func microKernels() []microKernel {
	return []microKernel{
		{"micro-chain16", func(int) *ir.Graph { return chainGraph(16) }},
		{"micro-diamond", func(int) *ir.Graph { return diamondGraph() }},
		{"micro-fanout6", func(int) *ir.Graph { return fanoutGraph(6) }},
		{"micro-fanout12", func(int) *ir.Graph { return fanoutGraph(12) }},
		{"micro-layered24", func(c int) *ir.Graph { return bench.RandomLayered(24, 6, c, Seed) }},
	}
}

// Oracle runs the optimality-gap sweep: every seed kernel and every micro
// kernel on raw4 and vliw4, each scheduled by the production ladder, the
// published convergent sequence, the oracle-tuned sequence, and the
// machine baseline, then handed to the oracle (seeded with the best of
// them) for a certified lower bound or an optimality proof. Zero budget
// arguments mean the oracle defaults.
func Oracle(nodeBudget int64, maxOps int) (*OracleSummary, error) {
	sum := &OracleSummary{
		Seed:         Seed,
		NodeBudget:   nodeBudget,
		MaxSearchOps: maxOps,
	}
	if sum.NodeBudget <= 0 {
		sum.NodeBudget = oracle.DefaultNodeBudget
	}
	if sum.MaxSearchOps <= 0 {
		sum.MaxSearchOps = oracle.DefaultMaxSearchOps
	}

	type target struct {
		m     *machine.Model
		suite []bench.Kernel
	}
	for _, t := range []target{
		{machine.Raw(4), bench.RawSuite()},
		{machine.Chorus(4), bench.VliwSuite()},
	} {
		for _, k := range t.suite {
			mem := k.InitMemory(t.m.NumClusters)
			row, err := oracleRow(k.Name, false, k.Build, t.m, mem, sum.NodeBudget, sum.MaxSearchOps)
			if err != nil {
				return nil, err
			}
			sum.Rows = append(sum.Rows, *row)
		}
		for _, mk := range microKernels() {
			row, err := oracleRow(mk.name, true, mk.build, t.m, nil, sum.NodeBudget, sum.MaxSearchOps)
			if err != nil {
				return nil, err
			}
			sum.Rows = append(sum.Rows, *row)
		}
	}

	for _, r := range sum.Rows {
		sum.Totals.Kernels++
		if r.Certified {
			sum.Totals.ProvenOptimal++
		}
		sum.Totals.LowerBound += r.LowerBound
		sum.Totals.Ladder += r.Ladder
		sum.Totals.Oracle += r.Oracle
		if !r.Micro {
			sum.Totals.SuiteDefault += r.Default
			sum.Totals.SuiteTuned += r.Tuned
		}
	}
	return sum, nil
}

// oracleRow schedules one kernel four ways and runs the oracle over the
// best of them.
func oracleRow(name string, micro bool, build func(int) *ir.Graph, m *machine.Model, mem sim.Memory, nodeBudget int64, maxOps int) (*OracleRow, error) {
	g := build(m.NumClusters)
	row := &OracleRow{Kernel: name, Machine: m.Name, Micro: micro, Ops: g.Len()}

	ladder, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Seed: Seed, Verify: true, InitMemory: mem,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: oracle ladder %s on %s: %w", name, m.Name, err)
	}
	row.Ladder, row.Served = ladder.Length(), rep.Served

	defSched, err := convergentOnly(g, m, "convergent-default", passes.ForMachine(m.Name), mem)
	if err != nil {
		return nil, fmt.Errorf("exp: oracle default sequence %s on %s: %w", name, m.Name, err)
	}
	row.Default = defSched.Length()

	tuned, err := convergentOnly(g, m, "convergent-tuned", passes.TunedForMachine(m.Name), mem)
	if err != nil {
		return nil, fmt.Errorf("exp: oracle tuned sequence %s on %s: %w", name, m.Name, err)
	}
	row.Tuned = tuned.Length()

	var base *schedule.Schedule
	if isRaw(m.Name) {
		row.BaselineName = "rawcc"
		base, err = guarded("rawcc", func() (*schedule.Schedule, error) { return rawcc.Schedule(g, m) })
	} else {
		row.BaselineName = "uas"
		base, err = guarded("uas", func() (*schedule.Schedule, error) { return uas.Schedule(g, m) })
	}
	if err != nil {
		return nil, fmt.Errorf("exp: oracle %s %s on %s: %w", row.BaselineName, name, m.Name, err)
	}
	row.Baseline = base.Length()

	incumbent := ladder
	for _, s := range []*schedule.Schedule{defSched, tuned, base} {
		if s.Length() < incumbent.Length() {
			incumbent = s
		}
	}
	res, err := oracle.Solve(context.Background(), g, m, oracle.Options{
		NodeBudget:   nodeBudget,
		MaxSearchOps: maxOps,
		Incumbent:    incumbent,
		Verify:       true,
		InitMemory:   mem,
	})
	if err != nil {
		return nil, fmt.Errorf("exp: oracle solve %s on %s: %w", name, m.Name, err)
	}
	row.LowerBound = res.LowerBound
	row.Bounds = res.Bounds
	row.Certified = res.Certified
	row.Status = res.Status
	row.Nodes = res.Nodes
	row.Oracle = res.BestLength
	row.GapLadder = row.Ladder - row.LowerBound
	row.GapTuned = row.Tuned - row.LowerBound
	row.GapOracle = row.Oracle - row.LowerBound
	return row, nil
}

// convergentOnly schedules with a single convergent rung — no fallback, so
// a sequence that cannot schedule the kernel is an error, exactly as in
// the tuning cost function.
func convergentOnly(g *ir.Graph, m *machine.Model, name string, seq []core.Pass, mem sim.Memory) (*schedule.Schedule, error) {
	s, _, err := robust.Schedule(context.Background(), g, m, robust.Options{
		Seed:       Seed,
		Verify:     true,
		InitMemory: mem,
		Ladder:     []robust.Rung{robust.ConvergentRung(name, m, seq, Seed)},
	})
	return s, err
}

func isRaw(name string) bool {
	return len(name) >= 3 && name[:3] == "raw"
}
