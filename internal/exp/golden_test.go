package exp

// Golden-file tests for the rendered experiment tables. The batch engine
// changed how the convergent columns are *computed* (concurrently, through
// the schedule cache); these goldens pin down that it changed nothing about
// what is *reported* — cycle counts, speedups, serving rungs, degradation
// notes — byte for byte. Regenerate with:
//
//	go test ./internal/exp -run TestGolden -update

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s: rendered output diverged from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func TestGoldenTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "table2.golden", RenderTable2(rows))
}

func TestGoldenFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "fig8.golden", RenderFig8(rows))
}

// TestGoldenWorkerWidthInvariance schedules Table 2's cheapest slice at
// worker width 1 and width 4 and asserts identical rows — the determinism
// claim behind the goldens, checked directly rather than via bytes.
func TestGoldenWorkerWidthInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	defer func(w int) { Workers = w }(Workers)

	Workers = 1
	serial, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	Workers = 4
	parallel, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Errorf("row %d differs across worker widths:\nserial:   %+v\nparallel: %+v", i, serial[i], parallel[i])
		}
	}
}
