package exp

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/passes"
)

// TestTable2Shape runs the full Table 2 experiment and asserts the shape
// properties the paper reports: convergent wins on the preplacement-rich
// dense/stencil kernels and loses on fpppp-kernel and sha, whose preplaced
// instructions carry little scheduling information.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("Table2 has %d rows", len(rows))
	}
	byName := map[string]Table2Row{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		for ti := range Tiles {
			if r.Base[ti] <= 0 || r.Convergent[ti] <= 0 {
				t.Errorf("%s: non-positive speedup %+v", r.Benchmark, r)
			}
		}
		// Speedups should broadly grow with tile count for both
		// schedulers (allowing small non-monotonic wobbles).
		if r.Base[3] < r.Base[0]*0.8 || r.Convergent[3] < r.Convergent[0]*0.8 {
			t.Errorf("%s: speedup collapses with more tiles: %+v", r.Benchmark, r)
		}
	}
	// The paper's signature result: convergent beats the baseline on the
	// dense-matrix benchmarks with useful preplacement...
	for _, name := range []string{"tomcatv", "mxm", "jacobi", "life"} {
		r := byName[name]
		if r.Convergent[3] <= r.Base[3] {
			t.Errorf("%s: convergent %.2f should beat base %.2f at 16 tiles", name, r.Convergent[3], r.Base[3])
		}
	}
	// ...and loses on the two benchmarks whose preplacement carries no
	// useful hints (paper Section 5, and our EXPERIMENTS.md).
	for _, name := range []string{"fpppp-kernel", "sha"} {
		r := byName[name]
		if r.Convergent[3] >= r.Base[3] {
			t.Errorf("%s: convergent %.2f should lose to base %.2f at 16 tiles", name, r.Convergent[3], r.Base[3])
		}
	}
}

// TestFig8Shape asserts the clustered-VLIW ordering we reproduce:
// convergent beats PCC overall; UAS remains the strongest baseline on our
// substrate (a documented deviation from the paper's +14% over UAS).
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 7 {
		t.Fatalf("Fig8 has %d rows", len(rows))
	}
	for _, r := range rows {
		if r.PCC <= 0 || r.UAS <= 0 || r.Conv <= 0 {
			t.Errorf("%s: non-positive speedup %+v", r.Benchmark, r)
		}
	}
	if imp := Fig8GeoMeanImprovement(rows, "pcc"); imp <= 0 {
		t.Errorf("convergent should beat PCC on geometric mean, got %+.1f%%", 100*imp)
	}
}

func TestConvergenceTraces(t *testing.T) {
	m := machine.Raw(4)
	rows := Convergence(m, bench.RawSuite()[:3], passes.RawSequence())
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Passes) != len(passes.RawSequence()) {
			t.Errorf("%s: %d trace entries", r.Benchmark, len(r.Passes))
		}
		for i, f := range r.Fractions {
			if f < 0 || f > 1 {
				t.Errorf("%s: fraction[%d] = %v", r.Benchmark, i, f)
			}
		}
		// INITTIME only reshapes time; spatial churn must be zero.
		if r.Passes[0] != "INITTIME" || r.Fractions[0] != 0 {
			t.Errorf("%s: INITTIME churned %v", r.Benchmark, r.Fractions[0])
		}
	}
}

func TestFig10RowsMeasured(t *testing.T) {
	rows, err := Fig10([]int{100, 200})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.PCCSec <= 0 || r.UASSec <= 0 || r.ConvSec <= 0 {
			t.Errorf("non-positive time: %+v", r)
		}
	}
}

func TestFig4FramesRender(t *testing.T) {
	names, frames := Fig4Frames()
	if len(names) != len(frames) || len(names) < 5 {
		t.Fatalf("frames = %d names = %d", len(frames), len(names))
	}
	if names[0] != "initial" {
		t.Errorf("first frame = %q", names[0])
	}
	for i, f := range frames {
		if !strings.Contains(f, "|") {
			t.Errorf("frame %d (%s) looks empty:\n%s", i, names[i], f)
		}
	}
}

func TestRenderersProduceText(t *testing.T) {
	rows := []Table2Row{{Benchmark: "mxm", Base: [4]float64{1, 2, 3, 4}, Convergent: [4]float64{1, 2, 3, 5}}}
	if out := RenderTable2(rows); !strings.Contains(out, "mxm") || !strings.Contains(out, "improvement") {
		t.Errorf("RenderTable2:\n%s", out)
	}
	if out := RenderFig6(rows); !strings.Contains(out, "Rawcc") {
		t.Errorf("RenderFig6:\n%s", out)
	}
	f8 := []Fig8Row{{Benchmark: "fir", PCC: 1, UAS: 2, Conv: 3}}
	if out := RenderFig8(f8); !strings.Contains(out, "fir") || !strings.Contains(out, "PCC") {
		t.Errorf("RenderFig8:\n%s", out)
	}
	f10 := []Fig10Row{{Instrs: 100, PCCSec: 0.1, UASSec: 0.01, ConvSec: 0.02}}
	if out := RenderFig10(f10); !strings.Contains(out, "100") {
		t.Errorf("RenderFig10:\n%s", out)
	}
	conv := []ConvergenceRow{{Benchmark: "mxm", Passes: []string{"NOISE"}, Fractions: []float64{0.5}}}
	if out := RenderConvergence("Figure 7", conv); !strings.Contains(out, "NOISE") {
		t.Errorf("RenderConvergence:\n%s", out)
	}
	if out := RenderTable1(); !strings.Contains(out, "INITTIME") || !strings.Contains(out, "FULOAD") {
		t.Errorf("RenderTable1:\n%s", out)
	}
}

func TestGeoMeanImprovement(t *testing.T) {
	rows := []Table2Row{
		{Base: [4]float64{1, 1, 1, 2}, Convergent: [4]float64{1, 1, 1, 4}},
		{Base: [4]float64{1, 1, 1, 4}, Convergent: [4]float64{1, 1, 1, 2}},
	}
	if got := GeoMeanImprovement(rows, 3); got > 1e-9 || got < -1e-9 {
		t.Errorf("2x win and 2x loss should cancel, got %v", got)
	}
}

func TestSingleClusterCyclesVerifies(t *testing.T) {
	k, _ := bench.ByName("vvmul")
	n, err := singleClusterCycles(k, machine.Raw(1))
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Errorf("cycles = %d", n)
	}
}

func TestPCCThetaSweepTradeoff(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment")
	}
	rows, err := PCCThetaSweep([]int{8, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's tradeoff: big theta is much faster and clearly worse.
	small, big := rows[0], rows[1]
	if big.Seconds >= small.Seconds {
		t.Errorf("theta=128 (%.3fs) not faster than theta=8 (%.3fs)", big.Seconds, small.Seconds)
	}
	if big.TotalCycles <= small.TotalCycles {
		t.Errorf("theta=128 (%d cycles) not worse than theta=8 (%d)", big.TotalCycles, small.TotalCycles)
	}
}
