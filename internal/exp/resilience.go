package exp

import (
	"context"
	"fmt"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/machine"
	"repro/internal/robust"
)

// ResilienceRow is one cell of the resilience matrix: which rung of the
// degradation ladder served a kernel under one injected fault class, after
// how many failed attempts.
type ResilienceRow struct {
	Machine string
	Kernel  string
	Class   string
	// Served names the rung whose schedule was accepted; empty means every
	// rung failed (which the resilience contract forbids).
	Served string
	// FailedRungs counts the attempts rejected before the serving one.
	FailedRungs int
	// FirstError is the first failed attempt's stage and message, so the
	// table shows what the injected fault actually did.
	FirstError string
	// Millis is the wall-clock cost of the whole ladder walk.
	Millis float64
}

// Resilience sweeps every chaos class over the given kernels and machines,
// scheduling each through the resilient driver with full verification
// against reference execution. A row with an empty Served column is a
// resilience bug; the sweep itself returns an error only for unknown
// kernel names, never for injected faults — surviving them is the point.
func Resilience(machines []*machine.Model, kernels []string, timeout time.Duration) ([]ResilienceRow, error) {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	var rows []ResilienceRow
	for _, m := range machines {
		for _, name := range kernels {
			k, err := bench.Get(name)
			if err != nil {
				return nil, err
			}
			g := k.Build(m.NumClusters)
			mem := k.InitMemory(m.NumClusters)
			for _, class := range faultinject.Classes() {
				chaos := faultinject.Chaos{Class: class, Seed: Seed, Stall: 10 * timeout}
				ladder, err := chaos.Ladder(m, Seed)
				if err != nil {
					return nil, err
				}
				t0 := time.Now()
				_, rep, _ := robust.Schedule(context.Background(), g, m, robust.Options{
					Ladder:     ladder,
					Timeout:    timeout,
					Verify:     true,
					InitMemory: mem,
				})
				row := ResilienceRow{
					Machine: m.Name,
					Kernel:  name,
					Class:   class,
					Served:  rep.Served,
					Millis:  float64(time.Since(t0).Microseconds()) / 1000,
				}
				if failed := rep.Failed(); len(failed) > 0 {
					row.FailedRungs = len(failed)
					row.FirstError = fmt.Sprintf("%s: %.60s", failed[0].Stage, failed[0].Error())
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}
