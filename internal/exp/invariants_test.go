package exp

import (
	"testing"
	"testing/quick"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/regalloc"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// allSchedulers enumerates every scheduler under its table name.
func allSchedulers() map[string]func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
	return map[string]func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error){
		"convergent": func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			s, _, err := core.Schedule(g, m, passes.ForMachine(m.Name), Seed)
			return s, err
		},
		"rawcc": func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return rawcc.Schedule(g, m)
		},
		"uas": func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return uas.Schedule(g, m)
		},
		"pcc": func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
			return pcc.Schedule(g, m, pcc.Options{})
		},
	}
}

// serialBound returns an upper bound no sane schedule should exceed: fully
// serial execution plus a worst-case communication per instruction.
func serialBound(g *ir.Graph, m *machine.Model) int {
	bound := 1
	maxComm := m.MaxCommLatency()
	for _, in := range g.Instrs {
		bound += m.OpLatency(in.Op) + maxComm + 1
	}
	return bound
}

// TestQuickSchedulerInvariants drives every scheduler over random graphs on
// a VLIW machine and asserts the metamorphic invariants that hold for any
// correct scheduler: the schedule validates, simulation matches reference
// semantics, the makespan lies between the critical-path bound and the
// serial bound, and register allocation with a huge file never spills.
func TestQuickSchedulerInvariants(t *testing.T) {
	m := machine.Chorus(4)
	scheds := allSchedulers()
	f := func(seed int64) bool {
		n := 30 + int(uint64(seed)%40)
		g := bench.RandomLayered(n, n/8+2, 4, seed)
		cpl := g.CriticalPathLength(m.LatencyFunc())
		upper := serialBound(g, m)
		for name, sched := range scheds {
			s, err := sched(g, m)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if s.Length() < cpl {
				t.Logf("seed %d %s: length %d below CPL %d", seed, name, s.Length(), cpl)
				return false
			}
			if s.Length() > upper {
				t.Logf("seed %d %s: length %d above serial bound %d", seed, name, s.Length(), upper)
				return false
			}
			if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			ra, err := regalloc.Allocate(s, 1024)
			if err != nil || ra.SpillCount() != 0 {
				t.Logf("seed %d %s: regalloc spilled %d with 1024 regs (%v)", seed, name, ra.SpillCount(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestQuickRawSchedulerInvariants repeats the invariant suite on a Raw mesh
// (link-level network model, preplaced memory semantics).
func TestQuickRawSchedulerInvariants(t *testing.T) {
	m := machine.Raw(4)
	scheds := allSchedulers()
	f := func(seed int64) bool {
		n := 25 + int(uint64(seed)%30)
		g := bench.RandomLayered(n, n/8+2, 4, seed)
		cpl := g.CriticalPathLength(m.LatencyFunc())
		upper := serialBound(g, m)
		for name, sched := range scheds {
			s, err := sched(g, m)
			if err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if err := s.Validate(); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
			if s.Length() < cpl || s.Length() > upper {
				t.Logf("seed %d %s: length %d outside [%d,%d]", seed, name, s.Length(), cpl, upper)
				return false
			}
			if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
				t.Logf("seed %d %s: %v", seed, name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestDeterminism ensures every scheduler is reproducible: two runs over
// the same input produce identical schedules.
func TestDeterminism(t *testing.T) {
	m := machine.Chorus(4)
	g := bench.RandomLayered(120, 16, 4, 99)
	for name, sched := range allSchedulers() {
		a, err := sched(g, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, err := sched(g, m)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if a.Length() != b.Length() || a.CommCount() != b.CommCount() {
			t.Errorf("%s: nondeterministic: %d/%d vs %d/%d cycles/comms",
				name, a.Length(), a.CommCount(), b.Length(), b.CommCount())
		}
		for i := range a.Placements {
			if a.Placements[i] != b.Placements[i] {
				t.Errorf("%s: placement %d differs across runs", name, i)
				break
			}
		}
	}
}
