package exp

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/passes"
	"repro/internal/textplot"
)

// RenderTable1 prints the pass sequences (the paper's Table 1) plus this
// repository's working VLIW sequence.
func RenderTable1() string {
	var b strings.Builder
	b.WriteString("Table 1: convergent pass sequences\n\n")
	col := func(label string, seq []core.Pass) {
		fmt.Fprintf(&b, "%s:\n", label)
		for _, p := range seq {
			fmt.Fprintf(&b, "  %s\n", p.Name())
		}
		b.WriteByte('\n')
	}
	col("(a) Raw", passes.RawSequence())
	col("(b) clustered VLIW (published, Table 1b)", passes.PublishedVliwSequence())
	col("(b') clustered VLIW (as used here: Table 1b + FULOAD)", passes.VliwSequence())
	return b.String()
}

// RenderTable2 prints Table 2 with the measured speedups. Convergent cells
// produced by a fallback rung (not the primary convergent pipeline) are
// marked with '*' and disclosed below the table.
func RenderTable2(rows []Table2Row) string {
	header := []string{"Benchmark/Tiles", "2", "4", "8", "16", "| 2", "4", "8", "16"}
	var trows [][]string
	var degraded []string
	for _, r := range rows {
		cells := []string{r.Benchmark}
		for _, v := range r.Base {
			cells = append(cells, fmt.Sprintf("%.2f", v))
		}
		for ti, v := range r.Convergent {
			cell := fmt.Sprintf("%.2f", v)
			if s := r.Served[ti]; s != "" && s != "convergent" {
				cell += "*"
				degraded = append(degraded, fmt.Sprintf("%s/%d tiles served by %s", r.Benchmark, Tiles[ti], s))
			}
			cells = append(cells, cell)
		}
		trows = append(trows, cells)
	}
	var b strings.Builder
	b.WriteString("Table 2: Rawcc speedup (left: base, right: convergent), relative to one tile\n\n")
	b.WriteString(textplot.Table(header, trows))
	fmt.Fprintf(&b, "\ngeometric-mean improvement of convergent over base at 16 tiles: %+.1f%%\n",
		100*GeoMeanImprovement(rows, 3))
	for _, d := range degraded {
		fmt.Fprintf(&b, "* %s (convergent pipeline degraded)\n", d)
	}
	return b.String()
}

// RenderFig6 prints Figure 6: the 16-tile column of Table 2 as bars.
func RenderFig6(rows []Table2Row) string {
	var labels []string
	var values [][]float64
	for _, r := range rows {
		labels = append(labels, r.Benchmark)
		values = append(values, []float64{r.Base[3], r.Convergent[3]})
	}
	return "Figure 6: Rawcc vs convergent on a 16-tile Raw machine (speedup vs 1 tile)\n\n" +
		textplot.Bars(labels, []string{"Rawcc", "Convergent"}, values, 50)
}

// RenderConvergence prints Figures 7/9: per-pass fraction of instructions
// whose preferred cluster changed.
func RenderConvergence(title string, rows []ConvergenceRow) string {
	if len(rows) == 0 {
		return title + ": no data\n"
	}
	var passNames []string
	for _, p := range rows[0].Passes {
		passNames = append(passNames, p)
	}
	var cols []string
	frac := make([][]float64, len(passNames))
	for pi := range passNames {
		frac[pi] = make([]float64, len(rows))
	}
	for bi, r := range rows {
		cols = append(cols, r.Benchmark)
		for pi := range r.Fractions {
			if pi < len(frac) {
				frac[pi][bi] = r.Fractions[pi]
			}
		}
	}
	return title + "\n(fraction of instructions whose preferred cluster changed at each pass)\n\n" +
		textplot.Heat(passNames, cols, frac)
}

// RenderFig8 prints Figure 8 as grouped bars.
func RenderFig8(rows []Fig8Row) string {
	var labels []string
	var values [][]float64
	for _, r := range rows {
		labels = append(labels, r.Benchmark)
		values = append(values, []float64{r.PCC, r.UAS, r.Conv})
	}
	var b strings.Builder
	b.WriteString("Figure 8: PCC vs UAS vs convergent on a 4-cluster VLIW (speedup vs 1 cluster)\n\n")
	b.WriteString(textplot.Bars(labels, []string{"PCC", "UAS", "Convergent"}, values, 50))
	fmt.Fprintf(&b, "convergent vs UAS: %+.1f%%   convergent vs PCC: %+.1f%% (geometric mean)\n",
		100*Fig8GeoMeanImprovement(rows, "uas"), 100*Fig8GeoMeanImprovement(rows, "pcc"))
	for _, r := range rows {
		if r.Served != "" && r.Served != "convergent" {
			fmt.Fprintf(&b, "note: %s's convergent column served by fallback rung %s\n", r.Benchmark, r.Served)
		}
	}
	return b.String()
}

// RenderResilience prints the resilience matrix: one line per injected
// fault class, naming the rung that served and what the first failing rung
// reported.
func RenderResilience(rows []ResilienceRow) string {
	var trows [][]string
	for _, r := range rows {
		served := r.Served
		if served == "" {
			served = "NONE (resilience bug)"
		}
		trows = append(trows, []string{
			r.Machine, r.Kernel, r.Class, served,
			fmt.Sprintf("%d", r.FailedRungs),
			fmt.Sprintf("%.1f", r.Millis),
			r.FirstError,
		})
	}
	return "Resilience: serving rung per injected fault class (all schedules verified against reference execution)\n\n" +
		textplot.Table([]string{"machine", "kernel", "fault", "served-by", "failed", "ms", "first failure"}, trows)
}

// RenderFig10 prints Figure 10 as a log-scale scatter plus the raw numbers.
func RenderFig10(rows []Fig10Row) string {
	var xs []int
	ys := make([][]float64, 3)
	var trows [][]string
	for _, r := range rows {
		xs = append(xs, r.Instrs)
		ys[0] = append(ys[0], r.PCCSec)
		ys[1] = append(ys[1], r.UASSec)
		ys[2] = append(ys[2], r.ConvSec)
		trows = append(trows, []string{
			fmt.Sprintf("%d", r.Instrs),
			fmt.Sprintf("%.4f", r.PCCSec),
			fmt.Sprintf("%.4f", r.UASSec),
			fmt.Sprintf("%.4f", r.ConvSec),
		})
	}
	var b strings.Builder
	b.WriteString("Figure 10: scheduling time (seconds) vs instruction count on the 4-cluster VLIW\n\n")
	b.WriteString(textplot.Table([]string{"instrs", "PCC", "UAS", "Convergent"}, trows))
	b.WriteByte('\n')
	b.WriteString(textplot.LogLines(xs, []string{"PCC", "UAS", "Convergent"}, ys, 14))
	return b.String()
}

// RenderFig4 prints the preference-map evolution frames.
func RenderFig4() string {
	names, frames := Fig4Frames()
	var b strings.Builder
	b.WriteString("Figure 4: cluster-preference map of an fpppp slice, evolving pass by pass\n")
	b.WriteString("(rows: instructions; columns: clusters; darker = stronger preference)\n\n")
	for i, n := range names {
		fmt.Fprintf(&b, "after %s:\n%s\n", n, frames[i])
	}
	return b.String()
}

// RenderThetaSweep prints the PCC θ sensitivity table.
func RenderThetaSweep(rows []ThetaRow) string {
	var trows [][]string
	for _, r := range rows {
		trows = append(trows, []string{
			fmt.Sprintf("%d", r.Theta),
			fmt.Sprintf("%d", r.TotalCycles),
			fmt.Sprintf("%.4f", r.Seconds),
		})
	}
	return "Extra: PCC component-size threshold sweep (VLIW suite totals)\n\n" +
		textplot.Table([]string{"theta", "total-cycles", "seconds"}, trows)
}
