// Package exp reproduces every table and figure of the paper's evaluation
// (Section 5). Each experiment returns structured rows that cmd/experiments
// renders as text tables/plots and bench_test.go wraps as benchmarks.
package exp

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/baseline/pcc"
	"repro/internal/baseline/rawcc"
	"repro/internal/baseline/uas"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Seed fixes the convergent scheduler's noise pass across all experiments.
const Seed = 2002

// Workers is the worker-pool width for the batch-scheduled convergent
// columns of Table 2 and Figure 8 (0 means GOMAXPROCS). The reported
// numbers are identical at every width — scheduling one kernel never
// depends on another — so the knob only changes throughput.
var Workers int

// convergentBatch schedules the convergent column's units concurrently
// through the batch engine; every unit still runs the resilient driver's
// default degradation ladder, so a panicking or misbehaving pipeline
// degrades to a baseline instead of aborting the whole experiment run.
// Results come back in job order; each Result.Served names the serving
// rung ("convergent" on the healthy path) so rows can disclose any
// degradation.
func convergentBatch(jobs []engine.Job) []engine.Result {
	e := engine.New(Workers, 2*len(jobs))
	return e.Batch(context.Background(), jobs)
}

// guarded wraps a baseline scheduler call with panic isolation: a crashing
// baseline becomes a clean error, never a dead experiment process.
func guarded(name string, fn func() (*schedule.Schedule, error)) (*schedule.Schedule, error) {
	return robust.Guard(name, fn)
}

// singleClusterCycles schedules the kernel's 1-cluster build on the
// matching 1-cluster machine with plain critical-path list scheduling; it
// is the denominator of every speedup in the paper.
func singleClusterCycles(k bench.Kernel, m *machine.Model) (int, error) {
	g := k.Build(1)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: make([]int, g.Len())})
	if err != nil {
		return 0, fmt.Errorf("exp: single-cluster %s: %w", k.Name, err)
	}
	if err := verifyKernel(s, k, 1); err != nil {
		return 0, err
	}
	return s.Length(), nil
}

// verifyKernel simulates the schedule against the kernel's inputs and runs
// the kernel's host-side check, so every number in every table comes from a
// schedule proven to compute the right answer.
func verifyKernel(s *schedule.Schedule, k bench.Kernel, clusters int) error {
	res, err := sim.Verify(s, k.InitMemory(clusters))
	if err != nil {
		return fmt.Errorf("exp: %s on %s: %w", k.Name, s.Machine.Name, err)
	}
	if err := k.Check(res.Memory, clusters); err != nil {
		return fmt.Errorf("exp: %s on %s: %w", k.Name, s.Machine.Name, err)
	}
	return nil
}

// Table2Row is one benchmark row of Table 2: Rawcc and convergent speedups
// over one tile, for 2/4/8/16 tiles.
type Table2Row struct {
	Benchmark  string
	Base       [4]float64 // speedups at 2, 4, 8, 16 tiles
	Convergent [4]float64
	// Served names the ladder rung that produced each convergent column
	// ("convergent" unless the pipeline degraded).
	Served [4]string
}

// Tiles lists the tile counts of Table 2's columns.
var Tiles = [4]int{2, 4, 8, 16}

// Table2 reproduces Table 2 (and Figure 6, which plots its 16-tile column).
// The convergent cells — the expensive column — are batch-scheduled over the
// engine's worker pool; baselines and verification stay serial.
func Table2() ([]Table2Row, error) {
	suite := bench.RawSuite()
	var jobs []engine.Job
	for _, k := range suite {
		for _, tiles := range Tiles {
			jobs = append(jobs, engine.Job{
				ID:      fmt.Sprintf("%s/%d", k.Name, tiles),
				Graph:   k.Build(tiles),
				Machine: machine.Raw(tiles),
				Opts:    robust.Options{Seed: Seed},
			})
		}
	}
	conv := convergentBatch(jobs)

	var rows []Table2Row
	for ki, k := range suite {
		row := Table2Row{Benchmark: k.Name}
		one, err := singleClusterCycles(k, machine.Raw(1))
		if err != nil {
			return nil, err
		}
		for ti, tiles := range Tiles {
			m := machine.Raw(tiles)
			g := k.Build(tiles)
			bs, err := guarded("rawcc", func() (*schedule.Schedule, error) { return rawcc.Schedule(g, m) })
			if err != nil {
				return nil, fmt.Errorf("exp: rawcc %s/%d: %w", k.Name, tiles, err)
			}
			if err := verifyKernel(bs, k, tiles); err != nil {
				return nil, err
			}
			row.Base[ti] = float64(one) / float64(bs.Length())

			cr := conv[ki*len(Tiles)+ti]
			if cr.Err != nil {
				return nil, fmt.Errorf("exp: convergent %s/%d: %w", k.Name, tiles, cr.Err)
			}
			if err := verifyKernel(cr.Schedule, k, tiles); err != nil {
				return nil, err
			}
			row.Convergent[ti] = float64(one) / float64(cr.Schedule.Length())
			row.Served[ti] = cr.Served
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeoMeanImprovement returns the geometric-mean ratio of convergent to base
// speedup at the given column of Table 2 rows (0.21 ≈ the paper's "21%").
func GeoMeanImprovement(rows []Table2Row, col int) float64 {
	prod := 1.0
	for _, r := range rows {
		prod *= r.Convergent[col] / r.Base[col]
	}
	return pow(prod, 1/float64(len(rows))) - 1
}

func pow(x, e float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Pow(x, e)
}

// ConvergenceRow is one benchmark's per-pass spatial churn (Figures 7/9).
type ConvergenceRow struct {
	Benchmark string
	Passes    []string
	Fractions []float64
}

// Convergence reproduces Figure 7 (machine "rawN") or Figure 9 ("vliwN"):
// the fraction of instructions whose preferred cluster changes at each
// spatial pass of the published sequence.
func Convergence(m *machine.Model, suite []bench.Kernel, seq []core.Pass) []ConvergenceRow {
	var rows []ConvergenceRow
	for _, k := range suite {
		g := k.Build(m.NumClusters)
		res := core.Converge(g, m, seq, Seed)
		row := ConvergenceRow{Benchmark: k.Name}
		for _, pc := range res.Trace {
			row.Passes = append(row.Passes, pc.Pass)
			row.Fractions = append(row.Fractions, pc.Fraction)
		}
		rows = append(rows, row)
	}
	return rows
}

// Fig8Row is one benchmark of Figure 8: PCC, UAS and convergent speedups on
// the four-cluster VLIW relative to a single cluster.
type Fig8Row struct {
	Benchmark string
	PCC       float64
	UAS       float64
	Conv      float64
	// Served names the ladder rung behind the Conv column.
	Served string
}

// Fig8 reproduces Figure 8. As in Table2, the convergent column is
// batch-scheduled over the engine's worker pool.
func Fig8() ([]Fig8Row, error) {
	m := machine.Chorus(4)
	suite := bench.VliwSuite()
	var jobs []engine.Job
	for _, k := range suite {
		jobs = append(jobs, engine.Job{
			ID:      k.Name,
			Graph:   k.Build(4),
			Machine: m,
			Opts:    robust.Options{Seed: Seed},
		})
	}
	conv := convergentBatch(jobs)

	var rows []Fig8Row
	for ki, k := range suite {
		one, err := singleClusterCycles(k, machine.SingleVLIW())
		if err != nil {
			return nil, err
		}
		row := Fig8Row{Benchmark: k.Name}

		g := k.Build(4)
		ps, err := guarded("pcc", func() (*schedule.Schedule, error) { return pcc.Schedule(g, m, pcc.Options{}) })
		if err != nil {
			return nil, fmt.Errorf("exp: pcc %s: %w", k.Name, err)
		}
		if err := verifyKernel(ps, k, 4); err != nil {
			return nil, err
		}
		row.PCC = float64(one) / float64(ps.Length())

		ug := k.Build(4)
		us, err := guarded("uas", func() (*schedule.Schedule, error) { return uas.Schedule(ug, m) })
		if err != nil {
			return nil, fmt.Errorf("exp: uas %s: %w", k.Name, err)
		}
		if err := verifyKernel(us, k, 4); err != nil {
			return nil, err
		}
		row.UAS = float64(one) / float64(us.Length())

		cr := conv[ki]
		if cr.Err != nil {
			return nil, fmt.Errorf("exp: convergent %s: %w", k.Name, cr.Err)
		}
		if err := verifyKernel(cr.Schedule, k, 4); err != nil {
			return nil, err
		}
		row.Conv = float64(one) / float64(cr.Schedule.Length())
		row.Served = cr.Served

		rows = append(rows, row)
	}
	return rows, nil
}

// Fig8GeoMeanImprovement returns convergent's geometric-mean improvement
// over the chosen baseline column ("pcc" or "uas").
func Fig8GeoMeanImprovement(rows []Fig8Row, baseline string) float64 {
	prod := 1.0
	for _, r := range rows {
		switch baseline {
		case "pcc":
			prod *= r.Conv / r.PCC
		case "uas":
			prod *= r.Conv / r.UAS
		}
	}
	return pow(prod, 1/float64(len(rows))) - 1
}

// Fig10Row is one point of the compile-time scalability study.
type Fig10Row struct {
	Instrs  int
	PCCSec  float64
	UASSec  float64
	ConvSec float64
}

// Fig10 reproduces Figure 10: wall-clock scheduling time versus instruction
// count for PCC, UAS and convergent scheduling on the four-cluster VLIW,
// over layered random DAGs. Sizes lists the instruction counts to measure.
func Fig10(sizes []int) ([]Fig10Row, error) {
	m := machine.Chorus(4)
	var rows []Fig10Row
	for _, n := range sizes {
		g := bench.RandomLayered(n, n/12+4, 4, Seed)
		row := Fig10Row{Instrs: g.Len()}

		// Guard adds no goroutine or clone, so the timings stay honest
		// while a crashing scheduler still can't kill the study.
		t0 := time.Now()
		if _, err := guarded("pcc", func() (*schedule.Schedule, error) { return pcc.Schedule(g, m, pcc.Options{}) }); err != nil {
			return nil, fmt.Errorf("exp: fig10 pcc n=%d: %w", n, err)
		}
		row.PCCSec = time.Since(t0).Seconds()

		t0 = time.Now()
		if _, err := guarded("uas", func() (*schedule.Schedule, error) { return uas.Schedule(g, m) }); err != nil {
			return nil, fmt.Errorf("exp: fig10 uas n=%d: %w", n, err)
		}
		row.UASSec = time.Since(t0).Seconds()

		t0 = time.Now()
		if _, err := guarded("convergent", func() (*schedule.Schedule, error) {
			s, _, err := core.Schedule(g, m, passes.VliwSequence(), Seed)
			return s, err
		}); err != nil {
			return nil, fmt.Errorf("exp: fig10 conv n=%d: %w", n, err)
		}
		row.ConvSec = time.Since(t0).Seconds()

		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4Frames returns the evolving cluster-preference map of the fpppp
// kernel on a 4-cluster VLIW: one ASCII frame per pass of the published
// sequence (the paper's Figure 4 shows exactly this evolution).
func Fig4Frames() (names []string, frames []string) {
	k, _ := bench.ByName("fpppp-kernel")
	g := k.Build(4)
	// Take a small slice of the kernel so the frames are readable, like
	// the paper's 34-instruction excerpt.
	sub := sliceGraph(g, 34)
	m := machine.Chorus(4)
	s := core.NewState(sub, m, Seed)
	names = append(names, "initial")
	frames = append(frames, core.RenderSpace(s.W))
	for _, p := range passes.VliwSequence() {
		p.Run(s)
		s.W.NormalizeAll()
		names = append(names, p.Name())
		frames = append(frames, core.RenderSpace(s.W))
	}
	return names, frames
}

// sliceGraph extracts the subgraph induced by the first n instructions
// (dropping operands that fall outside, which keeps the slice well-formed
// because IDs are topologically ordered).
func sliceGraph(g *ir.Graph, n int) *ir.Graph {
	if n > g.Len() {
		n = g.Len()
	}
	out := ir.New(g.Name + "-slice")
	for i := 0; i < n; i++ {
		in := g.Instrs[i]
		cp := *in
		cp.Args = append([]int(nil), in.Args...)
		out.Instrs = append(out.Instrs, &cp)
	}
	for _, e := range g.MemEdges() {
		if e[0] < n && e[1] < n {
			out.AddMemEdge(e[0], e[1])
		}
	}
	return out
}

// ThetaRow is one point of the PCC θ-sensitivity sweep.
type ThetaRow struct {
	Theta       int
	TotalCycles int
	Seconds     float64
}

// PCCThetaSweep reproduces the paper's remark that PCC trades compile time
// against assignment quality through its component-size threshold: larger θ
// means fewer components, faster descent, and worse schedules. Each row
// schedules the whole VLIW suite with the given θ.
func PCCThetaSweep(thetas []int) ([]ThetaRow, error) {
	m := machine.Chorus(4)
	var rows []ThetaRow
	for _, th := range thetas {
		row := ThetaRow{Theta: th}
		t0 := time.Now()
		for _, k := range bench.VliwSuite() {
			g := k.Build(4)
			s, err := guarded("pcc", func() (*schedule.Schedule, error) { return pcc.Schedule(g, m, pcc.Options{Theta: th}) })
			if err != nil {
				return nil, fmt.Errorf("exp: theta %d: %s: %w", th, k.Name, err)
			}
			if err := verifyKernel(s, k, 4); err != nil {
				return nil, err
			}
			row.TotalCycles += s.Length()
		}
		row.Seconds = time.Since(t0).Seconds()
		rows = append(rows, row)
	}
	return rows, nil
}
