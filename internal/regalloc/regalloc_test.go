package regalloc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/baseline/uas"
	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/schedule"
)

func mustSchedule(t *testing.T, g *ir.Graph, m *machine.Model, assign []int) *schedule.Schedule {
	t.Helper()
	s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestIntervalsChain(t *testing.T) {
	// const -> neg -> not on one tile: neg's value is live from its
	// ready cycle until not issues.
	g := ir.New("chain")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	c := g.Add(ir.Not, b.ID)
	m := machine.Raw(1)
	s := mustSchedule(t, g, m, []int{0, 0, 0})
	ivs := Intervals(s)
	var bIv *Interval
	for i := range ivs {
		if ivs[i].Value == b.ID {
			bIv = &ivs[i]
		}
		if ivs[i].Value == a.ID {
			t.Error("constant got a live interval")
		}
	}
	if bIv == nil {
		t.Fatal("no interval for neg result")
	}
	if bIv.From != s.Placements[b.ID].Ready() || bIv.To != s.Placements[c.ID].Start {
		t.Errorf("interval = %+v, schedule: ready %d, use %d", bIv, s.Placements[b.ID].Ready(), s.Placements[c.ID].Start)
	}
}

func TestIntervalsCrossCluster(t *testing.T) {
	// A value shipped to another cluster is live at the source until
	// departure and at the destination from arrival to use.
	g := ir.New("cross")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Raw(2)
	s := mustSchedule(t, g, m, []int{0, 0, 1})
	if s.CommCount() != 1 {
		t.Fatalf("comms = %d", s.CommCount())
	}
	comm := s.Comms[0]
	var src, dst *Interval
	for _, iv := range Intervals(s) {
		iv := iv
		if iv.Value == b.ID && iv.Cluster == 0 {
			src = &iv
		}
		if iv.Value == b.ID && iv.Cluster == 1 {
			dst = &iv
		}
	}
	if src == nil || dst == nil {
		t.Fatal("missing intervals for shipped value")
	}
	if src.To != comm.Depart {
		t.Errorf("source interval ends at %d, departure at %d", src.To, comm.Depart)
	}
	if dst.From != comm.Arrive {
		t.Errorf("destination interval starts at %d, arrival at %d", dst.From, comm.Arrive)
	}
}

func TestAllocateEnoughRegisters(t *testing.T) {
	k, _ := bench.ByName("vvmul")
	g := k.Build(4)
	m := machine.Chorus(4)
	s, err := uas.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(s, 64)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillCount() != 0 {
		t.Errorf("spilled %d with 64 registers", res.SpillCount())
	}
	if err := Validate(s, res); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateTightRegistersSpills(t *testing.T) {
	// Produce many long-lived values on one tile: with 2 registers most
	// must spill, and the allocation must stay conflict-free.
	g := ir.New("press")
	c := g.AddConst(1)
	// A serial chain whose every intermediate value is also consumed in
	// reverse order at the end: production order is forced, consumption
	// is reversed, so all eight intermediates are live together no
	// matter how cleverly the list scheduler orders issue.
	var vals []int
	cur := c.ID
	for i := 0; i < 8; i++ {
		cur = g.Add(ir.Neg, cur).ID
		vals = append(vals, cur)
	}
	acc := vals[7]
	for i := 6; i >= 0; i-- {
		acc = g.Add(ir.Add, acc, vals[i]).ID
	}
	m := machine.Raw(1)
	s := mustSchedule(t, g, m, make([]int, g.Len()))
	res, err := Allocate(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpillCount() == 0 {
		t.Error("no spills with 2 registers and 8 simultaneous lives")
	}
	if err := Validate(s, res); err != nil {
		t.Fatal(err)
	}
	if res.MaxPressure[0] < 5 {
		t.Errorf("MaxPressure = %v, expected high", res.MaxPressure)
	}
}

func TestAllocateRejectsBadK(t *testing.T) {
	g := ir.New("x")
	g.AddConst(1)
	s := mustSchedule(t, g, machine.Raw(1), []int{0})
	if _, err := Allocate(s, 0); err == nil {
		t.Error("accepted k=0")
	}
}

func TestPressureMatchesScheduleEstimate(t *testing.T) {
	// MaxPressure must never exceed the schedule's own MaxLivePerCluster
	// (which counts constants too, so it is an upper bound).
	k, _ := bench.ByName("fir")
	g := k.Build(4)
	m := machine.Chorus(4)
	s, err := uas.Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Allocate(s, 32)
	if err != nil {
		t.Fatal(err)
	}
	upper := s.MaxLivePerCluster()
	for c, p := range res.MaxPressure {
		if p > upper[c] {
			t.Errorf("cluster %d: pressure %d exceeds schedule estimate %d", c, p, upper[c])
		}
	}
}

// Property: allocation is always conflict-free, and with k >= MaxPressure
// there are never spills.
func TestQuickAllocationSound(t *testing.T) {
	m := machine.Chorus(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := ir.New("q")
		var results []int
		pick := func() int { return results[rng.Intn(len(results))] }
		for i := 0; i < 30; i++ {
			if i < 2 {
				results = append(results, g.AddConst(int64(i)).ID)
				continue
			}
			ops := []ir.Op{ir.Add, ir.Sub, ir.Xor, ir.Min}
			results = append(results, g.Add(ops[rng.Intn(len(ops))], pick(), pick()).ID)
		}
		assign := make([]int, g.Len())
		for i := range assign {
			assign[i] = rng.Intn(4)
		}
		s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
		if err != nil {
			return false
		}
		for _, k := range []int{2, 4, 64} {
			res, err := Allocate(s, k)
			if err != nil {
				return false
			}
			if Validate(s, res) != nil {
				return false
			}
			maxP := 0
			for _, p := range res.MaxPressure {
				if p > maxP {
					maxP = p
				}
			}
			if k >= maxP && res.SpillCount() > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
