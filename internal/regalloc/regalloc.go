// Package regalloc implements the per-cluster register allocator that runs
// after space-time scheduling, mirroring the paper's compilation pipelines:
// "it applies a traditional register allocator to the code on each tile"
// (Rawcc) and "followed by traditional single-cluster register allocation"
// (Chorus).
//
// Because the code is statically scheduled, liveness is exact: a value is
// live on a cluster from the cycle it arrives (result ready or
// communication arrival) until its last local use (operand read or
// communication departure). The allocator runs linear-scan over these
// intervals per cluster and reports, for each value that could not be kept
// in a register, a spill: on real hardware every use beyond the first would
// reload it. Spill counts feed the evaluation and the register-pressure
// convergent pass (passes.RegPres uses the same liveness estimator on
// preferences instead of placements).
package regalloc

import (
	"fmt"
	"sort"

	"repro/internal/schedule"
)

// Interval is the live range of one value on one cluster, in cycles.
type Interval struct {
	// Value is the producing instruction's ID.
	Value int
	// Cluster is where the value is live.
	Cluster int
	// From is the arrival cycle (result ready or communication arrival).
	From int
	// To is the last local use cycle.
	To int
}

// Result is the outcome of allocation on one schedule.
type Result struct {
	// Assigned maps (value, cluster) to a register number for every
	// interval that received a register.
	Assigned map[[2]int]int
	// Spilled lists the intervals that did not fit in the register file.
	Spilled []Interval
	// MaxPressure is the peak simultaneous liveness per cluster.
	MaxPressure []int
}

// SpillCount returns the number of spilled intervals.
func (r *Result) SpillCount() int { return len(r.Spilled) }

// Intervals computes the exact per-cluster live intervals of a schedule.
// Values with no local consumer (computed only to be shipped elsewhere, or
// dead) are live from arrival to their last departure, or for a single
// cycle if nothing reads them at all. Constants are skipped: under the
// immediate-broadcast rule they live in instruction encodings, not
// registers.
func Intervals(s *schedule.Schedule) []Interval {
	type key struct{ value, cluster int }
	spans := map[key]*Interval{}
	note := func(value, cluster, at int) {
		k := key{value, cluster}
		sp, ok := spans[k]
		if !ok {
			arr := s.ArrivalOn(value, cluster)
			if arr < 0 {
				// The consumer reads it via broadcast or it is
				// produced here; ArrivalOn covers both, so a
				// negative arrival means a validation-level bug
				// — be conservative and start at the use.
				arr = at
			}
			sp = &Interval{Value: value, Cluster: cluster, From: arr, To: arr}
			spans[k] = sp
		}
		if at > sp.To {
			sp.To = at
		}
	}
	g := s.Graph
	for i, p := range s.Placements {
		in := g.Instrs[i]
		if in.Op.HasResult() && !in.Op.IsConst() {
			note(i, p.Cluster, p.Ready())
		}
		for _, a := range in.Args {
			if g.Instrs[a].Op.IsConst() {
				continue
			}
			note(a, p.Cluster, p.Start)
		}
	}
	for _, c := range s.Comms {
		if g.Instrs[c.Value].Op.IsConst() {
			continue
		}
		note(c.Value, c.From, c.Depart)
	}
	out := make([]Interval, 0, len(spans))
	for _, sp := range spans {
		out = append(out, *sp)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Cluster != b.Cluster {
			return a.Cluster < b.Cluster
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.Value < b.Value
	})
	return out
}

// Allocate runs linear-scan register allocation with k registers per
// cluster over the schedule's exact live intervals. When the register file
// overflows, the interval ending furthest in the future is spilled (the
// classic linear-scan choice). k must be positive.
func Allocate(s *schedule.Schedule, k int) (*Result, error) {
	if k <= 0 {
		return nil, fmt.Errorf("regalloc: %d registers", k)
	}
	intervals := Intervals(s)
	res := &Result{
		Assigned:    make(map[[2]int]int),
		MaxPressure: make([]int, s.Machine.NumClusters),
	}
	// Pressure is independent of allocation decisions.
	length := s.Length()
	for c := 0; c < s.Machine.NumClusters; c++ {
		counts := make([]int, length+2)
		for _, iv := range intervals {
			if iv.Cluster != c {
				continue
			}
			for t := iv.From; t <= iv.To && t < len(counts); t++ {
				counts[t]++
			}
		}
		for _, n := range counts {
			if n > res.MaxPressure[c] {
				res.MaxPressure[c] = n
			}
		}
	}
	// Linear scan per cluster.
	type active struct {
		iv  Interval
		reg int
	}
	for c := 0; c < s.Machine.NumClusters; c++ {
		var cluster []Interval
		for _, iv := range intervals {
			if iv.Cluster == c {
				cluster = append(cluster, iv)
			}
		}
		free := make([]int, 0, k)
		for r := k - 1; r >= 0; r-- {
			free = append(free, r)
		}
		var act []active
		expire := func(now int) {
			keep := act[:0]
			for _, a := range act {
				if a.iv.To < now {
					free = append(free, a.reg)
				} else {
					keep = append(keep, a)
				}
			}
			act = keep
		}
		for _, iv := range cluster {
			expire(iv.From)
			if len(free) > 0 {
				reg := free[len(free)-1]
				free = free[:len(free)-1]
				act = append(act, active{iv, reg})
				res.Assigned[[2]int{iv.Value, iv.Cluster}] = reg
				continue
			}
			// Spill the interval with the furthest end.
			victim := -1
			for ai, a := range act {
				if victim < 0 || a.iv.To > act[victim].iv.To {
					victim = ai
				}
			}
			if victim >= 0 && act[victim].iv.To > iv.To {
				spilled := act[victim]
				res.Spilled = append(res.Spilled, spilled.iv)
				delete(res.Assigned, [2]int{spilled.iv.Value, spilled.iv.Cluster})
				res.Assigned[[2]int{iv.Value, iv.Cluster}] = spilled.reg
				act[victim] = active{iv, spilled.reg}
			} else {
				res.Spilled = append(res.Spilled, iv)
			}
		}
	}
	return res, nil
}

// Validate checks an allocation: no two register-resident intervals on the
// same cluster may share a register while overlapping in time.
func Validate(s *schedule.Schedule, res *Result) error {
	intervals := Intervals(s)
	byCluster := map[int][]Interval{}
	for _, iv := range intervals {
		if _, ok := res.Assigned[[2]int{iv.Value, iv.Cluster}]; ok {
			byCluster[iv.Cluster] = append(byCluster[iv.Cluster], iv)
		}
	}
	for c, ivs := range byCluster {
		for i := 0; i < len(ivs); i++ {
			for j := i + 1; j < len(ivs); j++ {
				a, b := ivs[i], ivs[j]
				ra := res.Assigned[[2]int{a.Value, a.Cluster}]
				rb := res.Assigned[[2]int{b.Value, b.Cluster}]
				if ra != rb {
					continue
				}
				if a.From <= b.To && b.From <= a.To {
					return fmt.Errorf("regalloc: values %d and %d share register %d on cluster %d over [%d,%d]∩[%d,%d]",
						a.Value, b.Value, ra, c, a.From, a.To, b.From, b.To)
				}
			}
		}
	}
	return nil
}
