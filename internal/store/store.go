// Package store is the crash-safe persistent backing layer for the engine's
// schedule cache: an append-only, length-prefixed, CRC-framed write-ahead
// log of accepted cache entries plus periodic compacted snapshots written
// via temp file + fsync + atomic rename.
//
// Durability here is deliberately cheap to get right because nothing loaded
// from disk is ever trusted: the engine re-runs the pristine-graph legality
// gate on every replayed record before it becomes servable (the Gate
// callback), so the store's only job is to never lose the *well-formed*
// prefix of what was written and to never crash on what was not. Recovery
// therefore replays snapshot-then-WAL, tolerates a torn tail (a crash mid
// append), skips checksum-failed and version-skewed records without giving
// up on the rest of the file, and treats any file whose header does not
// parse as absent. A record that passes CRC but was forged or bit-rotted in
// a way CRC32 cannot see is still rejected by the gate — corruption costs a
// recomputation, never an illegal schedule.
//
// On-disk layout (all integers little-endian):
//
//	<dir>/LOCK                flock'd fence against concurrent instances
//	<dir>/wal-<gen>.log       appended records since snapshot <gen>
//	<dir>/snap-<gen>.snap     compacted live set at generation <gen>
//
// Every data file starts with a 16-byte header (magic, format version,
// kind, generation) and continues with frames:
//
//	[2B frame magic][4B payload length][4B CRC32-C of payload][payload]
//
// The payload is a gob-encoded Record. Recovery picks the newest snapshot
// whose header parses, replays it, then replays every WAL with generation
// >= the snapshot's in ascending order, so a stale snapshot next to a
// divergent WAL degrades to a partially warm cache, never a wrong one.
// Each successful Open starts a fresh WAL generation, so a torn tail left
// by a crash is never appended after.
package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/schedule"
)

const (
	fileMagic   uint32 = 0x43565353 // "SSVC": schedule-store versioned container
	fileVersion uint16 = 1
	kindWAL     byte   = 1
	kindSnap    byte   = 2

	frameMagic  uint16 = 0xC55C
	headerLen          = 16
	frameHdrLen        = 10
	// maxRecordLen caps one payload; anything larger in a length prefix is
	// framing corruption, not a real record.
	maxRecordLen = 16 << 20

	// RecordVersion is the current record-payload format. Records carrying
	// any other version are dropped as skewed at recovery.
	RecordVersion = 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Classification sentinels for Gate errors: a gate that wraps ErrCorrupt or
// ErrSkewed steers the recovery counters; any other error counts as
// dropped-illegal (the legality gate rejected a well-formed record).
var (
	ErrCorrupt = errors.New("store: corrupt record")
	ErrSkewed  = errors.New("store: version-skewed record")
)

// Record is one persisted cache entry. It carries everything needed to
// re-verify the schedule from scratch at recovery: the graph itself (irtext,
// in the numbering the schedule's canonical placements were derived from),
// the machine by name plus fingerprint (so a renamed or retuned model is
// detected as skew), and the placements/comms in canonical instruction
// order exactly as the engine caches them.
type Record struct {
	// V is the record format version (RecordVersion; stamped by Append).
	V int
	// Key is the engine's 32-byte content-addressed cache key.
	Key []byte
	// Machine names the target model; Fingerprint pins its exact shape.
	Machine     string
	Fingerprint [32]byte
	// Served names the ladder rung that produced the schedule.
	Served string
	// Graph is the dependence graph in irtext form.
	Graph []byte
	// Placements and Comms are the cached schedule in canonical order.
	Placements []schedule.Placement
	Comms      []schedule.Comm
}

// Options configures Open. Zero values select defaults.
type Options struct {
	// Dir is the store directory, created if missing.
	Dir string
	// FS is the filesystem seam; nil means the real filesystem.
	FS FS
	// NoFsync skips every fsync — faster and crash-unsafe, for tests and
	// benchmarks only.
	NoFsync bool
	// SnapshotEvery compacts the log after this many appends. Default 1024.
	SnapshotEvery int
	// MaxEntries bounds the live set (and so snapshot size and recovery
	// work). When full, an arbitrary entry is forgotten to admit the new
	// one: bounded memory beats completeness, and a forgotten entry only
	// costs a recomputation. Default 8192.
	MaxEntries int
}

// Gate re-verifies one replayed record before it is accepted. A nil error
// accepts; an error wrapping ErrCorrupt or ErrSkewed classifies the drop,
// and any other error counts as dropped-illegal. The engine's gate parses
// the embedded graph and re-runs the legality gate on the schedule.
type Gate func(*Record) error

// RecoveryStats reports what Recover found.
type RecoveryStats struct {
	// SnapshotGen is the generation of the snapshot replayed (0 = none).
	SnapshotGen uint64 `json:"snapshotGen"`
	// Replayed counts records accepted into the live set.
	Replayed uint64 `json:"replayed"`
	// DroppedCorrupt counts records rejected by CRC, decode, or a gate
	// corruption verdict.
	DroppedCorrupt uint64 `json:"droppedCorrupt"`
	// DroppedIllegal counts well-formed records the gate's legality check
	// rejected — including corrupt-but-valid-CRC forgeries.
	DroppedIllegal uint64 `json:"droppedIllegal"`
	// DroppedSkewed counts records of another format version or machine
	// shape.
	DroppedSkewed uint64 `json:"droppedSkewed"`
	// TruncatedTails counts files whose replay stopped at a torn frame.
	TruncatedTails uint64 `json:"truncatedTails"`
	// SkippedFiles counts data files whose header did not parse.
	SkippedFiles uint64 `json:"skippedFiles"`
}

// Stats is a point-in-time snapshot of the store's own counters.
type Stats struct {
	// LiveEntries is the current live-set size.
	LiveEntries int `json:"liveEntries"`
	// Generation is the current WAL/snapshot generation.
	Generation uint64 `json:"generation"`
	// Snapshots counts compactions performed by this instance.
	Snapshots uint64 `json:"snapshots"`
	// AppendErrors counts appends that failed at the IO layer; SyncErrors
	// counts failed fsyncs. Both leave the store serving (the entry stays
	// cached in RAM, it just will not survive a restart).
	AppendErrors uint64 `json:"appendErrors"`
	SyncErrors   uint64 `json:"syncErrors"`
}

// Store is the persistent schedule store. Open → Recover → Append/Sync →
// Close. All methods are safe for concurrent use.
type Store struct {
	opts Options
	fs   FS
	lock *os.File

	mu        sync.Mutex
	recovered bool
	closed    bool
	gen       uint64
	wal       File
	walBad    bool // last append tore the WAL tail; rotate before reuse
	live      map[string][]byte
	appends   int
	snapshots uint64
	appendErr uint64
	syncErr   uint64
}

// Open creates (or joins) the store directory, acquires its exclusive lock,
// and returns a store ready for Recover. It performs no replay itself, so a
// server can bring its listener up and gate readiness on Recover.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("store: no directory")
	}
	if opts.FS == nil {
		opts.FS = OSFS{}
	}
	if opts.SnapshotEvery <= 0 {
		opts.SnapshotEvery = 1024
	}
	if opts.MaxEntries <= 0 {
		opts.MaxEntries = 8192
	}
	if err := opts.FS.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	// The lock goes through the real filesystem on purpose; see FS.
	lock, err := os.OpenFile(filepath.Join(opts.Dir, "LOCK"), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(lock.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		lock.Close()
		return nil, fmt.Errorf("store: %s is in use by another instance: %w", opts.Dir, err)
	}
	lock.Truncate(0)
	fmt.Fprintf(lock, "%d\n", os.Getpid())
	return &Store{opts: opts, fs: opts.FS, lock: lock, live: make(map[string][]byte)}, nil
}

// dataFile is one parsed wal-/snap- directory entry.
type dataFile struct {
	name string
	kind byte
	gen  uint64
}

func parseDataName(name string) (dataFile, bool) {
	var kind byte
	var num string
	switch {
	case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
		kind, num = kindWAL, name[4:len(name)-4]
	case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
		kind, num = kindSnap, name[5:len(name)-5]
	default:
		return dataFile{}, false
	}
	gen, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return dataFile{}, false
	}
	return dataFile{name: name, kind: kind, gen: gen}, true
}

func (s *Store) path(name string) string { return filepath.Join(s.opts.Dir, name) }

// Recover replays snapshot-then-WAL through the gate, then opens a fresh
// WAL generation for appends. It must be called exactly once, before any
// Append. Recovery never fails on data corruption — corrupt bytes only move
// counters — so an error here means the directory itself is unusable.
func (s *Store) Recover(gate Gate) (RecoveryStats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var rs RecoveryStats
	if s.closed {
		return rs, errors.New("store: closed")
	}
	if s.recovered {
		return rs, errors.New("store: already recovered")
	}
	entries, err := s.fs.ReadDir(s.opts.Dir)
	if err != nil {
		return rs, fmt.Errorf("store: %w", err)
	}
	var snaps, wals []dataFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if df, ok := parseDataName(e.Name()); ok {
			if df.kind == kindSnap {
				snaps = append(snaps, df)
			} else {
				wals = append(wals, df)
			}
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].gen > snaps[j].gen }) // newest first
	sort.Slice(wals, func(i, j int) bool { return wals[i].gen < wals[j].gen })    // oldest first

	// The newest snapshot whose header parses wins; older ones are the
	// stale-snapshot fallback and are only read if the newer is mangled.
	var snapGen uint64
	for _, sn := range snaps {
		if s.replayFile(sn, gate, &rs) {
			snapGen = sn.gen
			rs.SnapshotGen = sn.gen
			break
		}
		rs.SkippedFiles++
	}
	maxGen := snapGen
	for _, w := range wals {
		if w.gen > maxGen {
			maxGen = w.gen
		}
		if w.gen < snapGen {
			continue // already compacted into the snapshot
		}
		if !s.replayFile(w, gate, &rs) {
			rs.SkippedFiles++
		}
	}
	// A fresh generation per Open: never append after a possibly torn tail.
	s.gen = maxGen + 1
	if err := s.openWALLocked(); err != nil {
		return rs, err
	}
	s.recovered = true
	// More than one data file replayed means this directory has history
	// worth folding down; compact so the next recovery reads one snapshot.
	if len(snaps)+len(wals) > 1 && len(s.live) > 0 {
		if err := s.compactLocked(); err != nil {
			s.appendErr++
		}
	}
	return rs, nil
}

// replayFile reads one data file's frames into the live set. It reports
// whether the file header was valid; frame-level damage only moves stats.
func (s *Store) replayFile(df dataFile, gate Gate, rs *RecoveryStats) bool {
	f, err := s.fs.OpenFile(s.path(df.name), os.O_RDONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var hdr [headerLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return false
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != fileMagic ||
		binary.LittleEndian.Uint16(hdr[4:6]) != fileVersion ||
		hdr[6] != df.kind ||
		binary.LittleEndian.Uint64(hdr[8:16]) != df.gen {
		return false
	}
	for {
		var fh [frameHdrLen]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			if err != io.EOF {
				rs.TruncatedTails++ // torn mid frame header
			}
			return true
		}
		n := binary.LittleEndian.Uint32(fh[2:6])
		// A bad frame magic or an absurd length means the framing itself is
		// gone; there is no way to resync, so the rest of the file is a tail.
		if binary.LittleEndian.Uint16(fh[0:2]) != frameMagic || n > maxRecordLen {
			rs.TruncatedTails++
			return true
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			rs.TruncatedTails++
			return true
		}
		// Payload damage leaves the framing intact, so the next record is
		// still reachable: skip, do not stop.
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(fh[6:10]) {
			rs.DroppedCorrupt++
			continue
		}
		var rec Record
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&rec); err != nil {
			rs.DroppedCorrupt++
			continue
		}
		if rec.V != RecordVersion {
			rs.DroppedSkewed++
			continue
		}
		if gate != nil {
			if err := gate(&rec); err != nil {
				switch {
				case errors.Is(err, ErrSkewed):
					rs.DroppedSkewed++
				case errors.Is(err, ErrCorrupt):
					rs.DroppedCorrupt++
				default:
					rs.DroppedIllegal++
				}
				continue
			}
		}
		s.insertLiveLocked(string(rec.Key), payload)
		rs.Replayed++
	}
}

func fileHeader(kind byte, gen uint64) []byte {
	h := make([]byte, headerLen)
	binary.LittleEndian.PutUint32(h[0:4], fileMagic)
	binary.LittleEndian.PutUint16(h[4:6], fileVersion)
	h[6] = kind
	binary.LittleEndian.PutUint64(h[8:16], gen)
	return h
}

func frame(payload []byte) []byte {
	buf := make([]byte, frameHdrLen+len(payload))
	binary.LittleEndian.PutUint16(buf[0:2], frameMagic)
	binary.LittleEndian.PutUint32(buf[2:6], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[6:10], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHdrLen:], payload)
	return buf
}

// openWALLocked creates wal-<gen>.log with its header.
func (s *Store) openWALLocked() error {
	f, err := s.fs.OpenFile(s.path(fmt.Sprintf("wal-%016d.log", s.gen)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(fileHeader(kindWAL, s.gen)); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoFsync {
		if err := f.Sync(); err != nil {
			s.syncErr++
		}
		if err := s.fs.SyncDir(s.opts.Dir); err != nil {
			s.syncErr++
		}
	}
	s.wal, s.walBad = f, false
	return nil
}

// insertLiveLocked adds or refreshes one live entry under the MaxEntries
// bound, evicting an arbitrary victim when full.
func (s *Store) insertLiveLocked(key string, payload []byte) {
	if _, ok := s.live[key]; !ok && len(s.live) >= s.opts.MaxEntries {
		for k := range s.live {
			delete(s.live, k)
			break
		}
	}
	s.live[key] = payload
}

// Append writes one record to the WAL and the live set, compacting when the
// snapshot interval is reached. Durability is the caller's Sync cadence. An
// IO error is returned (and counted) but leaves the store serving: the WAL
// rotates to a clean file on the next append, so one torn write never
// poisons everything after it.
func (s *Store) Append(rec *Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if !s.recovered {
		return errors.New("store: Append before Recover")
	}
	if len(rec.Key) == 0 {
		return errors.New("store: record has no key")
	}
	if rec.V == 0 {
		rec.V = RecordVersion
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		s.appendErr++
		return fmt.Errorf("store: %w", err)
	}
	payload := buf.Bytes()
	if len(payload) > maxRecordLen {
		s.appendErr++
		return fmt.Errorf("store: record of %d bytes exceeds frame limit", len(payload))
	}
	if s.walBad {
		if err := s.rotateLocked(); err != nil {
			s.appendErr++
			return err
		}
	}
	if _, err := s.wal.Write(frame(payload)); err != nil {
		s.walBad = true
		s.appendErr++
		return fmt.Errorf("store: %w", err)
	}
	s.insertLiveLocked(string(rec.Key), payload)
	s.appends++
	if s.appends >= s.opts.SnapshotEvery {
		if err := s.compactLocked(); err != nil {
			s.appendErr++ // compaction failure is not the append's problem
		}
	}
	return nil
}

// rotateLocked abandons the current WAL file for a fresh generation.
func (s *Store) rotateLocked() error {
	if s.wal != nil {
		s.wal.Close()
	}
	s.gen++
	return s.openWALLocked()
}

// compactLocked writes the live set as snapshot generation gen+1 (temp file,
// fsync, atomic rename, directory fsync), rotates the WAL to the same
// generation, and prunes superseded files. A crash at any point leaves
// either the old snapshot+WALs or the new ones visible, never a mix that
// loses accepted records.
func (s *Store) compactLocked() error {
	newGen := s.gen + 1
	tmp := s.path("snap.tmp")
	f, err := s.fs.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	committed := false
	defer func() {
		if !committed {
			f.Close()
			s.fs.Remove(tmp)
		}
	}()
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.Write(fileHeader(kindSnap, newGen)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	keys := make([]string, 0, len(s.live))
	for k := range s.live {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := w.Write(frame(s.live[k])); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := w.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if !s.opts.NoFsync {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fs.Rename(tmp, s.path(fmt.Sprintf("snap-%016d.snap", newGen))); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	committed = true
	if !s.opts.NoFsync {
		if err := s.fs.SyncDir(s.opts.Dir); err != nil {
			s.syncErr++
		}
	}
	// The snapshot is durable; everything before it is garbage now.
	if s.wal != nil {
		s.wal.Close()
	}
	s.gen = newGen
	s.appends = 0
	s.snapshots++
	if err := s.openWALLocked(); err != nil {
		s.walBad = true
		return err
	}
	s.pruneLocked(newGen)
	return nil
}

// pruneLocked deletes WALs below the new generation and all but the two
// newest snapshots (the extra one is the stale-snapshot safety margin).
func (s *Store) pruneLocked(newGen uint64) {
	entries, err := s.fs.ReadDir(s.opts.Dir)
	if err != nil {
		return
	}
	var snapGens []uint64
	for _, e := range entries {
		df, ok := parseDataName(e.Name())
		if !ok {
			continue
		}
		if df.kind == kindWAL && df.gen < newGen {
			s.fs.Remove(s.path(df.name))
		}
		if df.kind == kindSnap {
			snapGens = append(snapGens, df.gen)
		}
	}
	sort.Slice(snapGens, func(i, j int) bool { return snapGens[i] > snapGens[j] })
	if len(snapGens) > 2 {
		for _, g := range snapGens[2:] {
			s.fs.Remove(s.path(fmt.Sprintf("snap-%016d.snap", g)))
		}
	}
}

// Sync makes every appended record durable (no-op under NoFsync).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || !s.recovered || s.opts.NoFsync || s.walBad {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		s.syncErr++
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Stats returns the store's own counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		LiveEntries:  len(s.live),
		Generation:   s.gen,
		Snapshots:    s.snapshots,
		AppendErrors: s.appendErr,
		SyncErrors:   s.syncErr,
	}
}

// Close syncs, closes the WAL, and releases the directory lock.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.wal != nil {
		if !s.opts.NoFsync && !s.walBad {
			if serr := s.wal.Sync(); serr != nil {
				s.syncErr++
				err = serr
			}
		}
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.lock.Close() // releases the flock
	return err
}

// Abort drops the store without flushing anything — the in-process stand-in
// for SIGKILL in crash-recovery tests. Whatever the OS already holds for the
// WAL stays (as after a real kill); nothing else is made durable.
func (s *Store) Abort() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.wal != nil {
		s.wal.Close()
	}
	s.lock.Close()
}
