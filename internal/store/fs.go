package store

import (
	"io"
	"io/fs"
	"os"
)

// FS is the filesystem seam the store does all data-file IO through. The
// production implementation is OSFS; internal/faultinject wraps it with a
// disk chaos layer (torn writes, ENOSPC, silent bit flips, fsync failures)
// so crash-recovery behaviour can be exercised without a real power cut.
//
// The lockfile that fences concurrent instances deliberately bypasses this
// seam: the lock protects the directory itself, and chaos that targets the
// lock would test the test harness, not the store.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name.
	Remove(name string) error
	// ReadDir lists the directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates the directory and any missing parents.
	MkdirAll(name string, perm fs.FileMode) error
	// SyncDir fsyncs the directory itself, making renames durable.
	SyncDir(name string) error
}

// File is the open-file surface the store needs.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// OSFS is the real filesystem.
type OSFS struct{}

// OpenFile opens name on the real filesystem.
func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

// Rename renames on the real filesystem.
func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

// Remove deletes on the real filesystem.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// ReadDir lists on the real filesystem.
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

// MkdirAll creates directories on the real filesystem.
func (OSFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }

// SyncDir fsyncs a directory on the real filesystem.
func (OSFS) SyncDir(name string) error {
	d, err := os.Open(name)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
