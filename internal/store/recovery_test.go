package store

import (
	"os"
	"path/filepath"
	"testing"
)

// recordStore builds a small recorded store in dir and returns the WAL's
// bytes. The records are tiny so the property sweeps below stay cheap.
func recordStore(t *testing.T, dir string, n int) (walName string, walBytes []byte) {
	t.Helper()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	wal := newestWAL(t, dir)
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Base(wal), b
}

// recoverVariant writes one mutated WAL into a fresh directory and recovers
// it, returning the stats. Any panic fails the test via the harness.
func recoverVariant(t *testing.T, name string, contents []byte) RecoveryStats {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), contents, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	defer s.Close()
	rs, err := s.Recover(nil)
	if err != nil {
		t.Fatalf("%s: Recover failed on damaged data (must only move counters): %v", name, err)
	}
	return rs
}

// TestRecoveryTruncatedAtEveryOffset is the torn-write property: however
// short a crash leaves the WAL, recovery never panics, never errors, and
// replays some prefix of what was written.
func TestRecoveryTruncatedAtEveryOffset(t *testing.T) {
	const n = 3
	name, full := recordStore(t, t.TempDir(), n)
	for cut := 0; cut <= len(full); cut++ {
		rs := recoverVariant(t, name, full[:cut])
		if rs.Replayed > n {
			t.Fatalf("cut=%d: replayed %d records from %d written", cut, rs.Replayed, n)
		}
	}
}

// TestRecoveryBitFlipAtEveryOffset is the bit-rot property: one flipped bit
// anywhere in the WAL — header, frame headers, payloads — never panics
// recovery and never yields more records than were written. Flips that CRC
// or framing cannot mask are counted as damage.
func TestRecoveryBitFlipAtEveryOffset(t *testing.T) {
	const n = 3
	name, full := recordStore(t, t.TempDir(), n)
	for off := 0; off < len(full); off++ {
		for _, bit := range []uint{0, 7} {
			mut := make([]byte, len(full))
			copy(mut, full)
			mut[off] ^= 1 << bit
			rs := recoverVariant(t, name, mut)
			if rs.Replayed > n {
				t.Fatalf("off=%d bit=%d: replayed %d records from %d written", off, bit, rs.Replayed, n)
			}
		}
	}
}

// TestRecoveryGarbageFiles feeds recovery pure noise under valid data-file
// names: everything is skipped, nothing panics.
func TestRecoveryGarbageFiles(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x00},
		[]byte("short"),
		make([]byte, headerLen), // zero header
		append(fileHeader(kindWAL, 1), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF),
	}
	for i, c := range cases {
		rs := recoverVariant(t, "wal-0000000000000001.log", c)
		if rs.Replayed != 0 {
			t.Fatalf("case %d: replayed %d records from garbage", i, rs.Replayed)
		}
	}
}
