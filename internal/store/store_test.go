package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/schedule"
)

// mkRecord builds a tiny synthetic record; store tests exercise durability,
// not scheduling, so the content only has to round-trip.
func mkRecord(i int) *Record {
	key := make([]byte, 32)
	copy(key, fmt.Sprintf("key-%026d", i))
	return &Record{
		Key:     key,
		Machine: "raw4",
		Served:  "convergent",
		Graph:   []byte(fmt.Sprintf("unit g%d\n", i)),
		Placements: []schedule.Placement{
			{Cluster: i % 4, FU: 0, Start: i, Latency: 1},
		},
	}
}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

// collectGate records every key offered to the gate, accepting all.
func collectGate(keys *[]string) Gate {
	return func(rec *Record) error {
		*keys = append(*keys, string(rec.Key))
		return nil
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
	}
	if err := s.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	var keys []string
	rs, err := s2.Recover(collectGate(&keys))
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Replayed != n || len(keys) != n {
		t.Fatalf("replayed %d records (gate saw %d), want %d; stats %+v", rs.Replayed, len(keys), n, rs)
	}
	if rs.DroppedCorrupt+rs.DroppedIllegal+rs.DroppedSkewed+rs.TruncatedTails+rs.SkippedFiles != 0 {
		t.Fatalf("clean store reported damage: %+v", rs)
	}
	if got := s2.Stats().LiveEntries; got != n {
		t.Fatalf("live entries = %d, want %d", got, n)
	}
}

func TestAppendBeforeRecoverRejected(t *testing.T) {
	s := mustOpen(t, t.TempDir())
	defer s.Close()
	if err := s.Append(mkRecord(0)); err == nil {
		t.Fatal("Append before Recover succeeded")
	}
}

func TestLockfileExcludesSecondInstance(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	if _, err := Open(Options{Dir: dir, NoFsync: true}); err == nil {
		t.Fatal("second Open on a locked directory succeeded")
	} else if !strings.Contains(err.Error(), "in use") {
		t.Fatalf("second Open failed with %v, want an in-use error", err)
	}
	// Close releases the lock; a third instance may join.
	s.Close()
	s3 := mustOpen(t, dir)
	s3.Close()
}

func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, NoFsync: true, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Snapshots; got < 2 {
		t.Fatalf("snapshots = %d after %d appends at interval 4, want >= 2", got, n)
	}
	s.Close()

	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) == 0 {
		t.Fatal("no snapshot files on disk")
	}
	s2 := mustOpen(t, dir)
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SnapshotGen == 0 {
		t.Fatalf("recovery ignored the snapshot: %+v", rs)
	}
	if rs.Replayed != n {
		t.Fatalf("replayed %d, want %d: %+v", rs.Replayed, n, rs)
	}
}

func TestMaxEntriesBoundsLiveSet(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), NoFsync: true, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().LiveEntries; got != 4 {
		t.Fatalf("live entries = %d, want 4", got)
	}
}

// newestWAL returns the path of the highest-generation WAL in dir.
func newestWAL(t *testing.T, dir string) string {
	t.Helper()
	wals, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL in %s (err %v)", dir, err)
	}
	// Lexicographic order is generation order (zero-padded names).
	newest := wals[0]
	for _, w := range wals[1:] {
		if w > newest {
			newest = w
		}
	}
	return newest
}

func TestTornTailStopsFileNotRecovery(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	wal := newestWAL(t, dir)
	s.Close()

	// Shear a few bytes off the last frame: the crash-mid-append shape.
	st, err := os.Stat(wal)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wal, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatalf("Recover over torn tail: %v", err)
	}
	if rs.TruncatedTails != 1 {
		t.Fatalf("TruncatedTails = %d, want 1: %+v", rs.TruncatedTails, rs)
	}
	if rs.Replayed != 2 {
		t.Fatalf("replayed %d, want the 2 intact records: %+v", rs.Replayed, rs)
	}
}

func TestCorruptRecordSkippedLaterRecordSurvives(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	wal := newestWAL(t, dir)
	s.Close()

	// Flip a byte inside the first record's payload (past the file header
	// and frame header): CRC catches it, framing stays intact, and the two
	// records after it must still replay.
	b, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	b[headerLen+frameHdrLen+4] ^= 0xFF
	if err := os.WriteFile(wal, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedCorrupt != 1 || rs.Replayed != 2 {
		t.Fatalf("DroppedCorrupt=%d Replayed=%d, want 1 and 2: %+v", rs.DroppedCorrupt, rs.Replayed, rs)
	}
	if rs.TruncatedTails != 0 {
		t.Fatalf("payload damage misreported as a torn tail: %+v", rs)
	}
}

func TestVersionSkewedRecordDropped(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	future := mkRecord(0)
	future.V = RecordVersion + 41 // a record from a future format
	if err := s.Append(future); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkRecord(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedSkewed != 1 || rs.Replayed != 1 {
		t.Fatalf("DroppedSkewed=%d Replayed=%d, want 1 and 1: %+v", rs.DroppedSkewed, rs.Replayed, rs)
	}
}

func TestGateClassifiesDrops(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir)
	defer s2.Close()
	i := 0
	rs, err := s2.Recover(func(rec *Record) error {
		i++
		switch i {
		case 1:
			return fmt.Errorf("%w: mangled content", ErrCorrupt)
		case 2:
			return fmt.Errorf("%w: machine changed", ErrSkewed)
		case 3:
			return errors.New("legality gate rejected it")
		default:
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedCorrupt != 1 || rs.DroppedSkewed != 1 || rs.DroppedIllegal != 1 || rs.Replayed != 1 {
		t.Fatalf("classification wrong: %+v", rs)
	}
}

func TestStaleSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, NoFsync: true, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := s.Append(mkRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) < 2 {
		t.Fatalf("want >= 2 snapshots for the fallback, got %d", len(snaps))
	}
	// Mangle the newest snapshot's header: recovery must treat it as absent
	// and replay the older snapshot plus the WALs after it.
	newest := snaps[0]
	for _, sn := range snaps[1:] {
		if sn > newest {
			newest = sn
		}
	}
	if err := os.WriteFile(newest, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir)
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.SkippedFiles == 0 {
		t.Fatalf("mangled snapshot not counted as skipped: %+v", rs)
	}
	// Records 4 and 5 existed only in the destroyed snapshot (their WAL was
	// pruned by that compaction), so the fallback degrades to the older
	// snapshot's 4 records — a partially warm cache, never a wrong one.
	if rs.SnapshotGen == 0 || rs.Replayed != 4 {
		t.Fatalf("fallback replayed %d from gen %d, want 4 from the older snapshot: %+v",
			rs.Replayed, rs.SnapshotGen, rs)
	}
}

func TestAbortReleasesLock(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(mkRecord(0)); err != nil {
		t.Fatal(err)
	}
	s.Abort()
	// A new instance can take over immediately, as after a real SIGKILL.
	s2 := mustOpen(t, dir)
	defer s2.Close()
	if _, err := s2.Recover(nil); err != nil {
		t.Fatal(err)
	}
}
