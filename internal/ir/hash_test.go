package ir_test

// Property tests for the canonical graph hash: invariant under topological
// renumbering of an isomorphic graph, and sensitive to every semantic
// ingredient — an edge, an opcode, an immediate, a bank, a home. The
// perturbation sources are the internal/faultinject graph mutators (the same
// ones the chaos suite uses to lie to schedulers) plus direct field edits.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/ir"
)

// corpus returns a varied set of graphs: real kernels with memory edges and
// preplacement, plus layered random DAGs.
func corpus(t *testing.T) []*ir.Graph {
	t.Helper()
	var out []*ir.Graph
	for _, name := range []string{"mxm", "jacobi", "sha", "fir"} {
		k, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("unknown kernel %s", name)
		}
		out = append(out, k.Build(4))
	}
	out = append(out, bench.RandomLayered(120, 12, 4, 7))
	out = append(out, bench.RandomLayered(60, 6, 2, 11))
	return out
}

func TestCanonicalHashInvariantUnderRenumbering(t *testing.T) {
	for _, g := range corpus(t) {
		want := g.CanonicalHash()
		for seed := int64(1); seed <= 5; seed++ {
			perm := ir.RandomRenumbering(g, seed)
			rg, err := ir.Renumber(g, perm)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name, seed, err)
			}
			if err := rg.Validate(); err != nil {
				t.Fatalf("%s seed %d: renumbered graph invalid: %v", g.Name, seed, err)
			}
			if got := rg.CanonicalHash(); got != want {
				t.Errorf("%s seed %d: hash changed under renumbering: %s != %s", g.Name, seed, got, want)
			}
			// Renumbering again with a different seed must agree too.
			perm2 := ir.RandomRenumbering(rg, seed+100)
			rg2, err := ir.Renumber(rg, perm2)
			if err != nil {
				t.Fatalf("%s seed %d: %v", g.Name, seed, err)
			}
			if got := rg2.CanonicalHash(); got != want {
				t.Errorf("%s seed %d: hash changed under double renumbering", g.Name, seed)
			}
		}
	}
}

func TestCanonicalOrderIsPermutation(t *testing.T) {
	for _, g := range corpus(t) {
		c := g.Canonical()
		if len(c.Order) != g.Len() {
			t.Fatalf("%s: order has %d entries for %d instructions", g.Name, len(c.Order), g.Len())
		}
		seen := make([]bool, g.Len())
		for i, r := range c.Order {
			if r < 0 || r >= g.Len() || seen[r] {
				t.Fatalf("%s: Order[%d] = %d is not a permutation", g.Name, i, r)
			}
			seen[r] = true
		}
	}
}

// TestCanonicalHashSensitiveToGraphMutation uses the fault-injection graph
// mutators as the perturbation source: each one changes real dependence
// structure, so the hash must change.
func TestCanonicalHashSensitiveToGraphMutation(t *testing.T) {
	mutators := []struct {
		name string
		fn   func(*ir.Graph, int64) (*ir.Graph, bool)
	}{
		{"rewire-arg", faultinject.RewireArg},
		{"drop-memedge", faultinject.DropMemEdge},
	}
	for _, g := range corpus(t) {
		want := g.CanonicalHash()
		for _, mut := range mutators {
			applied := 0
			for seed := int64(1); seed <= 8; seed++ {
				mg, ok := mut.fn(g, seed)
				if !ok {
					continue
				}
				applied++
				if got := mg.CanonicalHash(); got == want {
					t.Errorf("%s: %s(seed=%d) left the hash unchanged", g.Name, mut.name, seed)
				}
			}
			if applied == 0 {
				t.Logf("%s: %s never applied (no eligible site)", g.Name, mut.name)
			}
		}
	}
}

// TestCanonicalHashSensitiveToFields flips every semantic instruction field
// one at a time and asserts a hash change.
func TestCanonicalHashSensitiveToFields(t *testing.T) {
	k, _ := bench.ByName("mxm")
	g := k.Build(4)
	want := g.CanonicalHash()

	edit := func(name string, f func(c *ir.Graph) bool) {
		c := g.Clone()
		if !f(c) {
			t.Fatalf("%s: edit found no eligible instruction", name)
		}
		if got := c.CanonicalHash(); got == want {
			t.Errorf("%s: hash unchanged", name)
		}
	}

	edit("opcode", func(c *ir.Graph) bool {
		for _, in := range c.Instrs {
			switch in.Op {
			case ir.FAdd:
				in.Op = ir.FSub
				return true
			case ir.Add:
				in.Op = ir.Sub
				return true
			}
		}
		return false
	})
	edit("int-immediate", func(c *ir.Graph) bool {
		for _, in := range c.Instrs {
			if in.Op == ir.ConstInt {
				in.Imm++
				return true
			}
		}
		return false
	})
	edit("bank", func(c *ir.Graph) bool {
		for _, in := range c.Instrs {
			if in.Op.IsMemory() {
				in.Bank++
				return true
			}
		}
		return false
	})
	edit("home", func(c *ir.Graph) bool {
		for _, in := range c.Instrs {
			if in.Preplaced() {
				in.Home = (in.Home + 1) % 4
				return true
			}
		}
		return false
	})
	edit("operand-order", func(c *ir.Graph) bool {
		for _, in := range c.Instrs {
			// Swapping distinct operands of a non-commutative op (Store:
			// address vs value) is a different computation; the hash
			// orders operands, so the swap must register.
			switch in.Op {
			case ir.Sub, ir.FSub, ir.Div, ir.FDiv, ir.Shl, ir.Shr, ir.Slt, ir.Store:
				if len(in.Args) == 2 && in.Args[0] != in.Args[1] {
					in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
					return true
				}
			}
		}
		return false
	})
	edit("extra-memedge", func(c *ir.Graph) bool {
		var mems []int
		for i, in := range c.Instrs {
			if in.Op.IsMemory() {
				mems = append(mems, i)
			}
		}
		for i := 0; i+1 < len(mems); i++ {
			from, to := mems[i], mems[i+1]
			dup := false
			for _, e := range c.MemEdges() {
				if e[0] == from && e[1] == to {
					dup = true
					break
				}
			}
			if !dup {
				c.AddMemEdge(from, to)
				return true
			}
		}
		return false
	})
}

// TestCanonicalHashDistinguishesSharingFromDuplication pins a subtle case:
// one constant consumed twice is not the same scheduling unit as two copies
// of the constant consumed once each.
func TestCanonicalHashDistinguishesSharingFromDuplication(t *testing.T) {
	shared := ir.New("shared")
	c := shared.AddConst(1)
	shared.Add(ir.Add, c.ID, c.ID)

	dup := ir.New("dup")
	c1 := dup.AddConst(1)
	c2 := dup.AddConst(1)
	dup.Add(ir.Add, c1.ID, c2.ID)

	if shared.CanonicalHash() == dup.CanonicalHash() {
		t.Error("shared-operand and duplicated-operand graphs share a hash")
	}
}

func TestRenumberRejectsBadPermutations(t *testing.T) {
	g := ir.New("g")
	a := g.AddConst(1)
	b := g.AddConst(2)
	g.Add(ir.Add, a.ID, b.ID)

	if _, err := ir.Renumber(g, []int{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
	if _, err := ir.Renumber(g, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}
	// Putting the consumer before a producer breaks topological order.
	if _, err := ir.Renumber(g, []int{2, 1, 0}); err == nil {
		t.Error("non-topological perm accepted")
	}
}
