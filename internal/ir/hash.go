package ir

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Fingerprint is a 256-bit content hash of a dependence graph.
type Fingerprint [32]byte

// String renders the fingerprint as hex.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// Canonical is the renumbering-invariant identity of a graph: a content hash
// that is equal for isomorphic graphs (same instructions, same dependence
// structure, different topological numbering) and an ordering that maps the
// graph's own instruction IDs onto canonical positions, so per-instruction
// data (such as a cached schedule) computed on one numbering can be carried
// over to an isomorphic graph with another.
//
// Hash covers exactly the inputs a scheduler sees: opcode, immediates, bank,
// home, operand edges in operand order, and memory-order edges. It excludes
// Graph.Name and Instr.Name, which are documented as non-semantic, so two
// differently-labelled copies of the same scheduling unit share an identity.
type Canonical struct {
	// Hash is the renumbering-invariant content hash.
	Hash Fingerprint
	// Order[i] is the canonical position of instruction i. Positions are a
	// permutation of 0..Len-1. Instructions that the refinement cannot
	// distinguish (candidate automorphisms) are tie-broken by original ID,
	// so Order itself is only canonical up to such symmetries; consumers
	// that remap per-instruction data across isomorphic graphs must
	// re-validate the result (see internal/engine).
	Order []int
}

// Hash salts, arbitrary odd constants so the different edge roles cannot
// alias each other.
const (
	upSeed   = 0x9e3779b97f4a7c15
	memTag   = 0xbf58476d1ce4e5b9
	leafTag  = 0x94d049bb133111eb
	argTag   = 0x2545f4914f6cdd1d
	finalTag = 0xd6e8feb86659fd93
)

// hmix is a strong 64-bit finalizer (splitmix64's).
func hmix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fold is the order-sensitive hash accumulator.
func fold(h, v uint64) uint64 { return hmix(h*0x100000001b3 ^ v) }

// Canonical computes the graph's canonical identity. The cost is two linear
// passes over the edges plus one sort — negligible next to scheduling.
//
// The construction is a two-direction Weisfeiler-Lehman refinement on the
// DAG: an "up" hash folds each instruction's label with its operand
// producers' hashes (in operand order) and its memory-order predecessors
// (commutatively), and a "down" hash folds in consumers. Because operand
// references always point backward and memory edges forward, one bottom-up
// and one top-down sweep reach a fixpoint. The graph hash is the sorted
// multiset of per-instruction hashes, which no topological renumbering can
// change.
// The identity is computed once per sealed graph and cached: engine workers
// key the schedule cache on it for every job, so a warm cache hit must not
// re-refine the whole graph. Callers must treat the returned Order as
// read-only.
func (g *Graph) Canonical() Canonical {
	g.Seal()
	g.canonOnce.Do(func() { g.canon = g.computeCanonical() })
	return g.canon
}

func (g *Graph) computeCanonical() Canonical {
	n := len(g.Instrs)

	memPreds := make([][]int, n)
	memSuccs := make([][]int, n)
	for _, e := range g.memEdges {
		memPreds[e[1]] = append(memPreds[e[1]], e[0])
		memSuccs[e[0]] = append(memSuccs[e[0]], e[1])
	}

	up := make([]uint64, n)
	for i, in := range g.Instrs {
		h := fold(upSeed, uint64(in.Op))
		h = fold(h, uint64(in.Imm))
		h = fold(h, math.Float64bits(in.FImm))
		h = fold(h, uint64(int64(in.Bank)))
		h = fold(h, uint64(int64(in.Home)))
		h = fold(h, uint64(len(in.Args)))
		for _, a := range in.Args {
			h = fold(h, up[a])
		}
		var mp uint64
		for _, p := range memPreds[i] {
			mp += hmix(up[p] ^ memTag) // commutative: predecessor order is not semantic
		}
		up[i] = fold(h, mp)
	}

	down := make([]uint64, n)
	for i := n - 1; i >= 0; i-- {
		d := uint64(leafTag)
		for _, s := range g.succs[i] {
			for pos, a := range g.Instrs[s].Args {
				if a == i {
					d += hmix(fold(fold(argTag, down[s]), fold(up[s], uint64(pos))))
				}
			}
		}
		for _, s := range memSuccs[i] {
			d += hmix(fold(fold(memTag, down[s]), up[s]))
		}
		down[i] = hmix(d)
	}

	final := make([]uint64, n)
	for i := range final {
		final[i] = fold(fold(finalTag, up[i]), down[i])
	}

	// Canonical order: sort by the refined hashes; the original ID is only
	// the last-resort tie-break among indistinguishable instructions.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if final[ia] != final[ib] {
			return final[ia] < final[ib]
		}
		if up[ia] != up[ib] {
			return up[ia] < up[ib]
		}
		return ia < ib
	})
	order := make([]int, n)
	for rank, i := range idx {
		order[i] = rank
	}

	hasher := sha256.New()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(n))
	hasher.Write(buf[:])
	for _, i := range idx {
		binary.LittleEndian.PutUint64(buf[:], final[i])
		hasher.Write(buf[:])
	}
	var c Canonical
	hasher.Sum(c.Hash[:0])
	c.Order = order
	return c
}

// CanonicalHash is Canonical().Hash for callers that do not need the order.
func (g *Graph) CanonicalHash() Fingerprint { return g.Canonical().Hash }

// Renumber returns a copy of the graph renumbered by perm, where perm[old]
// is the new ID of instruction old. The new numbering must itself be
// topological (every operand and memory edge still points backward); an
// error is returned otherwise. The result is isomorphic to the input and has
// the same CanonicalHash.
func Renumber(g *Graph, perm []int) (*Graph, error) {
	n := g.Len()
	if len(perm) != n {
		return nil, fmt.Errorf("ir: renumber: perm has %d entries for %d instructions", len(perm), n)
	}
	inv := make([]int, n)
	for i := range inv {
		inv[i] = -1
	}
	for old, nw := range perm {
		if nw < 0 || nw >= n || inv[nw] != -1 {
			return nil, fmt.Errorf("ir: renumber: perm is not a permutation at %d -> %d", old, nw)
		}
		inv[nw] = old
	}
	out := New(g.Name)
	out.Instrs = make([]*Instr, n)
	for nw := 0; nw < n; nw++ {
		old := inv[nw]
		in := g.Instrs[old]
		cp := *in
		cp.ID = nw
		cp.Args = make([]int, len(in.Args))
		for ai, a := range in.Args {
			if perm[a] >= nw {
				return nil, fmt.Errorf("ir: renumber: operand edge %d->%d not topological after renumbering", a, old)
			}
			cp.Args[ai] = perm[a]
		}
		out.Instrs[nw] = &cp
	}
	for _, e := range g.memEdges {
		from, to := perm[e[0]], perm[e[1]]
		if from >= to {
			return nil, fmt.Errorf("ir: renumber: memory edge (%d,%d) not topological after renumbering", e[0], e[1])
		}
		out.memEdges = append(out.memEdges, [2]int{from, to})
	}
	// Keep the memory-edge list in a normalized order so renumbered graphs
	// print deterministically.
	sort.Slice(out.memEdges, func(a, b int) bool {
		if out.memEdges[a][0] != out.memEdges[b][0] {
			return out.memEdges[a][0] < out.memEdges[b][0]
		}
		return out.memEdges[a][1] < out.memEdges[b][1]
	})
	return out, nil
}

// RandomRenumbering returns a uniformly random topological renumbering of
// the graph (perm[old] = new), suitable for Renumber. It is the test
// utility behind the canonical-hash property tests and the engine's
// isomorphism tests: the same seed yields the same permutation.
func RandomRenumbering(g *Graph, seed int64) []int {
	g.Seal()
	n := len(g.Instrs)
	rng := rand.New(rand.NewSource(seed))
	indeg := make([]int, n)
	for i := 0; i < n; i++ {
		indeg[i] = len(g.preds[i])
	}
	var ready []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	perm := make([]int, n)
	for next := 0; next < n; next++ {
		ri := rng.Intn(len(ready))
		i := ready[ri]
		ready[ri] = ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		perm[i] = next
		for _, s := range g.succs[i] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	return perm
}
