package ir

import (
	"strings"
	"testing"
)

// diamond builds the four-node graph a -> {b, c} -> d.
func diamond(t *testing.T) *Graph {
	t.Helper()
	g := New("diamond")
	a := g.AddConst(1)
	b := g.Add(Add, a.ID, a.ID)
	c := g.Add(Mul, a.ID, a.ID)
	g.Add(Sub, b.ID, c.ID)
	if err := g.Validate(); err != nil {
		t.Fatalf("diamond does not validate: %v", err)
	}
	return g
}

func TestAddAssignsSequentialIDs(t *testing.T) {
	g := diamond(t)
	for i, in := range g.Instrs {
		if in.ID != i {
			t.Errorf("instruction at index %d has ID %d", i, in.ID)
		}
	}
}

func TestAddRejectsForwardReference(t *testing.T) {
	g := New("bad")
	g.AddConst(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with forward reference did not panic")
		}
	}()
	g.Add(Add, 0, 5)
}

func TestAddRejectsWrongArity(t *testing.T) {
	g := New("bad")
	g.AddConst(0)
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong arity did not panic")
		}
	}()
	g.Add(Add, 0)
}

func TestAddRejectsResultlessOperand(t *testing.T) {
	g := New("bad")
	a := g.AddConst(0)
	st := g.AddStore(0, a.ID, a.ID)
	defer func() {
		if recover() == nil {
			t.Fatal("consuming a store result did not panic")
		}
	}()
	g.Add(Neg, st.ID)
}

func TestSealRejectsLaterAdd(t *testing.T) {
	g := diamond(t)
	g.Seal()
	defer func() {
		if recover() == nil {
			t.Fatal("Add after Seal did not panic")
		}
	}()
	g.AddConst(2)
}

func TestPredsSuccsDeduplicated(t *testing.T) {
	g := New("dedup")
	a := g.AddConst(1)
	b := g.Add(Add, a.ID, a.ID) // uses a twice
	if got := g.Preds(b.ID); len(got) != 1 || got[0] != a.ID {
		t.Errorf("Preds(b) = %v, want [%d]", got, a.ID)
	}
	if got := g.Succs(a.ID); len(got) != 1 || got[0] != b.ID {
		t.Errorf("Succs(a) = %v, want [%d]", got, b.ID)
	}
}

func TestRootsAndLeaves(t *testing.T) {
	g := diamond(t)
	if r := g.Roots(); len(r) != 1 || r[0] != 0 {
		t.Errorf("Roots = %v, want [0]", r)
	}
	if l := g.Leaves(); len(l) != 1 || l[0] != 3 {
		t.Errorf("Leaves = %v, want [3]", l)
	}
}

func TestMemEdgeOrdering(t *testing.T) {
	g := New("mem")
	addr := g.AddConst(0)
	v := g.AddConst(42)
	st := g.AddStore(0, addr.ID, v.ID)
	ld := g.AddLoad(0, addr.ID)
	g.AddMemEdge(st.ID, ld.ID)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	found := false
	for _, p := range g.Preds(ld.ID) {
		if p == st.ID {
			found = true
		}
	}
	if !found {
		t.Error("memory edge not reflected in Preds")
	}
}

func TestMemEdgeRejectsNonMemory(t *testing.T) {
	g := New("mem")
	a := g.AddConst(1)
	b := g.Add(Neg, a.ID)
	g.memEdges = append(g.memEdges, [2]int{a.ID, b.ID})
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted memory edge between ALU ops")
	}
}

func TestValidateCatchesMissingBank(t *testing.T) {
	g := New("bank")
	addr := g.AddConst(0)
	ld := g.AddLoad(3, addr.ID)
	ld.Bank = NoBank
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted load without bank")
	}
}

func TestEarliestStartAndHeight(t *testing.T) {
	g := diamond(t)
	lat := func(op Op) int {
		if op == Mul {
			return 2
		}
		return 1
	}
	es := g.EarliestStart(lat)
	want := []int{0, 1, 1, 3} // sub must wait for mul (start 1 + lat 2)
	for i := range want {
		if es[i] != want[i] {
			t.Errorf("EarliestStart[%d] = %d, want %d", i, es[i], want[i])
		}
	}
	h := g.Height(lat)
	wantH := []int{4, 2, 3, 1}
	for i := range wantH {
		if h[i] != wantH[i] {
			t.Errorf("Height[%d] = %d, want %d", i, h[i], wantH[i])
		}
	}
	if cpl := g.CriticalPathLength(lat); cpl != 4 {
		t.Errorf("CPL = %d, want 4", cpl)
	}
}

func TestSlackZeroOnCriticalPath(t *testing.T) {
	g := diamond(t)
	lat := func(op Op) int {
		if op == Mul {
			return 2
		}
		return 1
	}
	slack := g.Slack(lat)
	// Critical path is const -> mul -> sub; add has one cycle of slack.
	want := []int{0, 1, 0, 0}
	for i := range want {
		if slack[i] != want[i] {
			t.Errorf("Slack[%d] = %d, want %d", i, slack[i], want[i])
		}
	}
}

func TestCriticalPathThreadsLongestChain(t *testing.T) {
	g := diamond(t)
	lat := func(op Op) int {
		if op == Mul {
			return 2
		}
		return 1
	}
	path := g.CriticalPath(lat)
	want := []int{0, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("CriticalPath = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("CriticalPath = %v, want %v", path, want)
		}
	}
}

func TestUnitLevel(t *testing.T) {
	g := diamond(t)
	lv := g.UnitLevel()
	want := []int{0, 1, 1, 2}
	for i := range want {
		if lv[i] != want[i] {
			t.Errorf("UnitLevel[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
	if g.MaxUnitLevel() != 2 {
		t.Errorf("MaxUnitLevel = %d, want 2", g.MaxUnitLevel())
	}
}

func TestDistancesBFS(t *testing.T) {
	g := New("chain")
	a := g.AddConst(1)
	b := g.Add(Neg, a.ID)
	c := g.Add(Neg, b.ID)
	iso := g.AddConst(9)
	d := g.Distances(a.ID)
	if d[b.ID] != 1 || d[c.ID] != 2 {
		t.Errorf("Distances = %v", d)
	}
	if d[iso.ID] != -1 {
		t.Errorf("isolated node distance = %d, want -1", d[iso.ID])
	}
}

func TestNeighborsUnion(t *testing.T) {
	g := diamond(t)
	nb := g.Neighbors(1) // b: pred a, succ d
	if len(nb) != 2 {
		t.Errorf("Neighbors(1) = %v, want 2 entries", nb)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	c.Instrs[0].Imm = 99
	c.Instrs[1].Args[0] = 0
	if g.Instrs[0].Imm == 99 {
		t.Error("Clone shares Instr storage")
	}
	// Clone of a sealed graph must be extendable.
	g.Seal()
	c2 := g.Clone()
	c2.AddConst(5)
}

func TestStatsOnDiamond(t *testing.T) {
	g := diamond(t)
	s := g.ComputeStats()
	if s.Instrs != 4 || s.Edges != 4 || s.UnitCPL != 2 || s.MaxWidth != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Preplaced != 0 || s.MemOps != 0 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestStatsCountsClasses(t *testing.T) {
	g := New("mix")
	a := g.AddConst(0)
	ld := g.AddLoad(1, a.ID)
	ld.Home = 1
	f := g.AddFConst(1.5)
	g.Add(FAdd, f.ID, f.ID)
	s := g.ComputeStats()
	if s.Preplaced != 1 || s.MemOps != 1 || s.FloatOps != 2 {
		t.Errorf("Stats = %+v", s)
	}
}

func TestInstrString(t *testing.T) {
	g := New("str")
	a := g.AddConst(7)
	ld := g.AddLoad(2, a.ID)
	ld.Home = 2
	if got := a.String(); got != "0: const 7" {
		t.Errorf("const String = %q", got)
	}
	got := ld.String()
	for _, want := range []string{"load %0", "bank=2", "@home=2"} {
		if !strings.Contains(got, want) {
			t.Errorf("load String = %q, missing %q", got, want)
		}
	}
}

func TestOpRoundTrip(t *testing.T) {
	for op := Op(0); int(op) < NumOps; op++ {
		back, ok := OpFromString(op.String())
		if !ok || back != op {
			t.Errorf("OpFromString(%q) = %v, %v", op.String(), back, ok)
		}
	}
	if _, ok := OpFromString("bogus"); ok {
		t.Error("OpFromString accepted bogus mnemonic")
	}
}

func TestOpPredicates(t *testing.T) {
	if !Load.IsMemory() || !Store.IsMemory() || Add.IsMemory() {
		t.Error("IsMemory wrong")
	}
	if !FAdd.IsFloat() || Add.IsFloat() || Load.IsFloat() {
		t.Error("IsFloat wrong")
	}
	if Store.HasResult() || Nop.HasResult() || !Load.HasResult() {
		t.Error("HasResult wrong")
	}
	if ConstInt.Arity() != 0 || Sel.Arity() != 3 || Add.Arity() != 2 || Neg.Arity() != 1 {
		t.Error("Arity wrong")
	}
}

func TestDOTMentionsPreplaced(t *testing.T) {
	g := New("dot")
	a := g.AddConst(0)
	ld := g.AddLoad(1, a.ID)
	ld.Home = 1
	dot := g.DOT()
	if !strings.Contains(dot, "triangle") {
		t.Error("DOT does not mark preplaced instruction")
	}
	if !strings.Contains(dot, "n0 -> n1") {
		t.Error("DOT missing edge")
	}
}

func TestPreplacedList(t *testing.T) {
	g := New("pp")
	a := g.AddConst(0)
	ld := g.AddLoad(1, a.ID)
	ld.Home = 3
	pp := g.Preplaced()
	if len(pp) != 1 || pp[0] != ld.ID {
		t.Errorf("Preplaced = %v", pp)
	}
}

func TestEmptyGraphAnalyses(t *testing.T) {
	g := New("empty")
	if g.CriticalPathLength(UnitLatency) != 0 {
		t.Error("empty CPL != 0")
	}
	if g.MaxUnitLevel() != -1 {
		t.Error("empty MaxUnitLevel != -1")
	}
	if g.CriticalPath(UnitLatency) != nil {
		t.Error("empty CriticalPath != nil")
	}
}
