// Package ir defines the dependence-graph intermediate representation that
// every scheduler in this repository consumes.
//
// A scheduling unit is an ir.Graph: a DAG whose nodes are instructions and
// whose edges are data dependences (operand order) plus explicit memory-order
// edges. The instruction set is a small MIPS-R4000-flavoured mix of integer,
// floating-point and banked memory operations, rich enough to give every
// benchmark kernel executable semantics so that schedules can be simulated
// and verified, yet small enough that machine models stay simple.
package ir

import "fmt"

// Op identifies an instruction opcode.
type Op int

// The instruction set. Ordering groups opcodes by class; use the predicate
// methods (IsMemory, IsFloat, ...) rather than numeric ranges.
const (
	// Nop does nothing and produces no value. It exists for padding and
	// for tests that need a zero-latency placeholder.
	Nop Op = iota

	// ConstInt materialises the integer immediate Instr.Imm.
	ConstInt
	// ConstFloat materialises the floating immediate Instr.FImm.
	ConstFloat

	// Integer ALU operations (two operands unless noted).
	Add
	Sub
	Mul
	Div // integer division; division by zero yields zero (simulator rule)
	Rem
	And
	Or
	Xor
	Shl  // shift left by operand 1 (mod 64)
	Shr  // logical shift right by operand 1 (mod 64)
	Sra  // arithmetic shift right by operand 1 (mod 64)
	Rotl // rotate left by operand 1 (mod 64)
	Neg  // one operand
	Not  // one operand, bitwise complement
	Slt  // set-less-than: 1 if a < b else 0
	Seq  // set-equal: 1 if a == b else 0
	Min  // integer minimum
	Max  // integer maximum
	Sel  // select: a != 0 ? b : c (three operands)

	// Floating-point operations.
	FAdd
	FSub
	FMul
	FDiv
	FNeg  // one operand
	FAbs  // one operand
	FSqrt // one operand; negative input yields zero (simulator rule)
	FMin
	FMax
	FMA // fused multiply-add: a*b + c (three operands)

	// Conversions.
	IntToFloat
	FloatToInt

	// Memory operations. Memory is organised as numbered banks of int64
	// addressed cells (see internal/sim). Instr.Bank selects the bank.
	//
	// Load: operand 0 is the address; result is the loaded value.
	// Store: operand 0 is the address, operand 1 the value; no result.
	Load
	Store

	// Copy forwards its single operand unchanged. The list schedulers
	// materialise inter-cluster moves as Copy-like communication
	// operations; Copy in a source graph is an ordinary unary op.
	Copy

	numOps
)

var opNames = [numOps]string{
	Nop:        "nop",
	ConstInt:   "const",
	ConstFloat: "fconst",
	Add:        "add",
	Sub:        "sub",
	Mul:        "mul",
	Div:        "div",
	Rem:        "rem",
	And:        "and",
	Or:         "or",
	Xor:        "xor",
	Shl:        "shl",
	Shr:        "shr",
	Sra:        "sra",
	Rotl:       "rotl",
	Neg:        "neg",
	Not:        "not",
	Slt:        "slt",
	Seq:        "seq",
	Min:        "min",
	Max:        "max",
	Sel:        "sel",
	FAdd:       "fadd",
	FSub:       "fsub",
	FMul:       "fmul",
	FDiv:       "fdiv",
	FNeg:       "fneg",
	FAbs:       "fabs",
	FSqrt:      "fsqrt",
	FMin:       "fmin",
	FMax:       "fmax",
	FMA:        "fma",
	IntToFloat: "i2f",
	FloatToInt: "f2i",
	Load:       "load",
	Store:      "store",
	Copy:       "copy",
}

// NumOps reports the number of defined opcodes. It is exported for tables
// indexed by Op (for example machine latency tables).
const NumOps = int(numOps)

// String returns the assembler-style mnemonic for the opcode.
func (op Op) String() string {
	if op < 0 || op >= numOps {
		return fmt.Sprintf("op(%d)", int(op))
	}
	return opNames[op]
}

// OpFromString returns the opcode with the given mnemonic, or false if the
// mnemonic is unknown. It is the inverse of Op.String and is used by the
// .ddg text format parser.
func OpFromString(s string) (Op, bool) {
	for op, name := range opNames {
		if name == s {
			return Op(op), true
		}
	}
	return 0, false
}

// Arity returns the number of operands the opcode requires, or -1 if the
// opcode accepts no operands (constants, Nop).
func (op Op) Arity() int {
	switch op {
	case Nop, ConstInt, ConstFloat:
		return 0
	case Neg, Not, FNeg, FAbs, FSqrt, IntToFloat, FloatToInt, Copy, Load:
		return 1
	case Sel, FMA:
		return 3
	case Store:
		return 2
	default:
		return 2
	}
}

// IsMemory reports whether the opcode accesses a memory bank.
func (op Op) IsMemory() bool { return op == Load || op == Store }

// IsConst reports whether the opcode materialises an immediate.
func (op Op) IsConst() bool { return op == ConstInt || op == ConstFloat }

// IsFloat reports whether the opcode computes on (or produces) floating-point
// values. Load/Store are polymorphic and report false.
func (op Op) IsFloat() bool {
	switch op {
	case ConstFloat, FAdd, FSub, FMul, FDiv, FNeg, FAbs, FSqrt, FMin, FMax, FMA, IntToFloat:
		return true
	}
	return false
}

// HasResult reports whether the opcode produces a value that other
// instructions may consume.
func (op Op) HasResult() bool { return op != Store && op != Nop }

// Valid reports whether op is a defined opcode.
func (op Op) Valid() bool { return op >= 0 && op < numOps }
