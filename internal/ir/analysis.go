package ir

// LatencyFunc maps an opcode to its result latency in cycles. Machine models
// provide one (see internal/machine); analyses are parameterised on it so the
// same graph can be scheduled for machines with different timings.
type LatencyFunc func(Op) int

// UnitLatency assigns every opcode a latency of one cycle. It is the latency
// model used by the unit-level analyses (the paper's "level" of an
// instruction is its distance from the furthest root, counted in edges).
func UnitLatency(Op) int { return 1 }

// EarliestStart returns, per instruction, the earliest cycle it could issue
// on a machine with infinite resources and zero communication cost: the
// length of the longest predecessor chain ("lp" in the paper), measured with
// the given latencies. Roots start at cycle 0.
func (g *Graph) EarliestStart(lat LatencyFunc) []int {
	return g.EarliestStartInto(lat, make([]int, len(g.Instrs)))
}

// EarliestStartInto is EarliestStart writing into es, which must hold Len
// values; it returns es. The allocation-free variant exists for callers that
// recompute analyses per graph on a hot path (see internal/core's pooled
// scheduling state).
func (g *Graph) EarliestStartInto(lat LatencyFunc, es []int) []int {
	g.Seal()
	for i := range g.Instrs {
		es[i] = 0
		for _, p := range g.preds[i] {
			if t := es[p] + lat(g.Instrs[p].Op); t > es[i] {
				es[i] = t
			}
		}
	}
	return es
}

// Height returns, per instruction, the length in cycles of the longest chain
// from the instruction (inclusive of its own latency) to any leaf: the
// paper's "ls", the latency of the successor chain. A leaf's height is its
// own latency.
func (g *Graph) Height(lat LatencyFunc) []int {
	return g.HeightInto(lat, make([]int, len(g.Instrs)))
}

// HeightInto is Height writing into h, which must hold Len values; it
// returns h.
func (g *Graph) HeightInto(lat LatencyFunc, h []int) []int {
	g.Seal()
	for i := len(g.Instrs) - 1; i >= 0; i-- {
		best := 0
		for _, s := range g.succs[i] {
			if h[s] > best {
				best = h[s]
			}
		}
		h[i] = best + lat(g.Instrs[i].Op)
	}
	return h
}

// CriticalPathLength returns the length in cycles of the longest chain in
// the graph under the given latencies (the schedule-length lower bound on an
// unlimited machine). An empty graph has length zero.
func (g *Graph) CriticalPathLength(lat LatencyFunc) int {
	cpl := 0
	for _, h := range g.Height(lat) {
		if h > cpl {
			cpl = h
		}
	}
	return cpl
}

// LatestStart returns, per instruction, the latest cycle it could issue
// without stretching the critical path: CPL - Height(i).
func (g *Graph) LatestStart(lat LatencyFunc) []int {
	h := g.Height(lat)
	cpl := 0
	for _, v := range h {
		if v > cpl {
			cpl = v
		}
	}
	ls := make([]int, len(h))
	for i, v := range h {
		ls[i] = cpl - v
	}
	return ls
}

// Slack returns LatestStart(i) - EarliestStart(i) per instruction. Zero
// slack marks the critical path.
func (g *Graph) Slack(lat LatencyFunc) []int {
	es := g.EarliestStart(lat)
	lst := g.LatestStart(lat)
	s := make([]int, len(es))
	for i := range s {
		s[i] = lst[i] - es[i]
	}
	return s
}

// CriticalPath returns one longest root-to-leaf chain under the given
// latencies, as an ordered slice of instruction IDs. Of several equally long
// chains it picks the one threading lowest IDs. Returns nil for an empty
// graph.
func (g *Graph) CriticalPath(lat LatencyFunc) []int {
	if g.Len() == 0 {
		return nil
	}
	h := g.Height(lat)
	es := g.EarliestStart(lat)
	cpl := 0
	for _, v := range h {
		if v > cpl {
			cpl = v
		}
	}
	// Start at the lowest-ID root of a longest chain.
	cur := -1
	for i := range g.Instrs {
		if es[i] == 0 && h[i] == cpl {
			cur = i
			break
		}
	}
	if cur < 0 {
		return nil
	}
	path := []int{cur}
	for {
		next := -1
		for _, s := range g.succs[cur] {
			// The chain continues through a successor whose height
			// accounts for the remainder of the critical path.
			if h[s] == h[cur]-lat(g.Instrs[cur].Op) && (next < 0 || s < next) {
				next = s
			}
		}
		if next < 0 {
			return path
		}
		path = append(path, next)
		cur = next
	}
}

// UnitLevel returns the paper's level(i): the distance of each instruction
// from the furthest root, counted in edges. Roots are level 0.
func (g *Graph) UnitLevel() []int {
	return g.UnitLevelInto(make([]int, len(g.Instrs)))
}

// UnitLevelInto is UnitLevel writing into lv, which must hold Len values; it
// returns lv.
func (g *Graph) UnitLevelInto(lv []int) []int {
	g.Seal()
	for i := range g.Instrs {
		lv[i] = 0
		for _, p := range g.preds[i] {
			if lv[p]+1 > lv[i] {
				lv[i] = lv[p] + 1
			}
		}
	}
	return lv
}

// MaxUnitLevel returns the largest UnitLevel, or -1 for an empty graph.
func (g *Graph) MaxUnitLevel() int {
	max := -1
	for _, l := range g.UnitLevel() {
		if l > max {
			max = l
		}
	}
	return max
}

// Distances returns the undirected dependence-graph distance (in edges) from
// the given source to every instruction; unreachable instructions get -1.
// The LEVEL pass uses this to keep nearby instructions in the same bin.
func (g *Graph) Distances(src int) []int {
	g.Seal()
	d := make([]int, len(g.Instrs))
	for i := range d {
		d[i] = -1
	}
	d[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, lists := range [2][][]int{g.preds, g.succs} {
			for _, nb := range lists[cur] {
				if d[nb] < 0 {
					d[nb] = d[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
	}
	return d
}

// Neighbors returns the deduplicated union of predecessors and successors of
// instruction i, in predecessor-then-successor order. The slice is computed
// at Seal time and owned by the graph: callers must not modify it, and in
// exchange the call never allocates, which the scheduling hot path relies
// on.
func (g *Graph) Neighbors(i int) []int {
	g.Seal()
	return g.neighbors[i]
}
