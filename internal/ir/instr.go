package ir

import (
	"fmt"
	"strings"
)

// NoBank marks an instruction that does not touch memory.
const NoBank = -1

// NoHome marks an instruction without a preplacement constraint.
const NoHome = -1

// Instr is one node of a dependence graph.
//
// Instructions are identified by their position in Graph.Instrs; ID always
// equals that index. Args lists the IDs of the instructions producing each
// operand, in operand order. An instruction may consume the same producer
// more than once.
type Instr struct {
	// ID is the index of this instruction in its Graph.
	ID int
	// Op is the opcode.
	Op Op
	// Args are producer instruction IDs, one per operand.
	Args []int
	// Imm is the immediate payload for ConstInt.
	Imm int64
	// FImm is the immediate payload for ConstFloat.
	FImm float64
	// Bank is the memory bank for Load/Store, or NoBank.
	Bank int
	// Home is the cluster this instruction must be assigned to, or NoHome.
	// Instructions with Home >= 0 are "preplaced" in the paper's sense:
	// the constraint comes from congruence analysis (memory banking) or
	// from values live across scheduling regions.
	Home int
	// Name is an optional human-readable label used in dumps and DOT
	// output; it has no semantic meaning.
	Name string
}

// Preplaced reports whether the instruction carries a home-cluster
// constraint.
func (in *Instr) Preplaced() bool { return in.Home != NoHome }

// String renders the instruction in the .ddg text form, for example
// "7: add %3 %5" or "2: load %0 bank=1 @home=3".
func (in *Instr) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d: %s", in.ID, in.Op)
	for _, a := range in.Args {
		fmt.Fprintf(&b, " %%%d", a)
	}
	switch in.Op {
	case ConstInt:
		fmt.Fprintf(&b, " %d", in.Imm)
	case ConstFloat:
		fmt.Fprintf(&b, " %g", in.FImm)
	}
	if in.Bank != NoBank {
		fmt.Fprintf(&b, " bank=%d", in.Bank)
	}
	if in.Preplaced() {
		fmt.Fprintf(&b, " @home=%d", in.Home)
	}
	if in.Name != "" {
		fmt.Fprintf(&b, " ; %s", in.Name)
	}
	return b.String()
}
