package ir

import (
	"fmt"
	"strings"
)

// Stats summarises the shape of a dependence graph. The paper distinguishes
// "long, narrow" graphs (critical-path dominated, like sha) from "fat,
// parallel" graphs (like unrolled dense-matrix loops); these numbers make
// that distinction measurable.
type Stats struct {
	// Instrs is the instruction count.
	Instrs int
	// Edges is the deduplicated dependence edge count (data + memory).
	Edges int
	// UnitCPL is the critical-path length in edges (unit latency).
	UnitCPL int
	// AvgWidth is Instrs divided by the number of unit levels: the mean
	// instruction-level parallelism available with zero-latency ops.
	AvgWidth float64
	// MaxWidth is the population of the fullest unit level.
	MaxWidth int
	// Preplaced is the number of instructions with home-cluster
	// constraints.
	Preplaced int
	// MemOps is the number of loads and stores.
	MemOps int
	// FloatOps is the number of floating-point operations.
	FloatOps int
}

// ComputeStats analyses the graph shape.
func (g *Graph) ComputeStats() Stats {
	g.Seal()
	s := Stats{Instrs: g.Len()}
	for i := range g.Instrs {
		s.Edges += len(g.succs[i])
	}
	levels := g.UnitLevel()
	counts := map[int]int{}
	maxLevel := -1
	for i, l := range levels {
		counts[l]++
		if l > maxLevel {
			maxLevel = l
		}
		in := g.Instrs[i]
		if in.Preplaced() {
			s.Preplaced++
		}
		if in.Op.IsMemory() {
			s.MemOps++
		}
		if in.Op.IsFloat() {
			s.FloatOps++
		}
	}
	s.UnitCPL = maxLevel
	for _, c := range counts {
		if c > s.MaxWidth {
			s.MaxWidth = c
		}
	}
	if maxLevel >= 0 {
		s.AvgWidth = float64(s.Instrs) / float64(maxLevel+1)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("instrs=%d edges=%d cpl=%d avgWidth=%.2f maxWidth=%d preplaced=%d mem=%d float=%d",
		s.Instrs, s.Edges, s.UnitCPL, s.AvgWidth, s.MaxWidth, s.Preplaced, s.MemOps, s.FloatOps)
}

// DOT renders the graph in Graphviz format. Preplaced instructions are drawn
// as shaded triangles, matching the paper's Figure 4 convention.
func (g *Graph) DOT() string {
	g.Seal()
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", g.Name)
	b.WriteString("  node [shape=ellipse fontsize=10];\n")
	for _, in := range g.Instrs {
		label := fmt.Sprintf("%d %s", in.ID, in.Op)
		attrs := fmt.Sprintf("label=%q", label)
		if in.Preplaced() {
			shade := 1.0 - 0.15*float64(in.Home%5)
			attrs += fmt.Sprintf(" shape=triangle style=filled fillcolor=\"0.0 0.0 %.2f\"", shade)
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", in.ID, attrs)
	}
	for i := range g.Instrs {
		for _, s := range g.succs[i] {
			fmt.Fprintf(&b, "  n%d -> n%d;\n", i, s)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
