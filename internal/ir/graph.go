package ir

import (
	"errors"
	"fmt"
	"sync"
)

// Graph is a scheduling unit: a DAG of instructions connected by data
// dependences (through Instr.Args) and explicit memory-order edges.
//
// Build a graph with New and the Add* methods, then call Seal (directly or
// implicitly through any analysis) to freeze adjacency. Mutating a sealed
// graph's structure is a programming error.
type Graph struct {
	// Name labels the graph in dumps, experiment tables and errors.
	Name string
	// Instrs holds every instruction; Instrs[i].ID == i.
	Instrs []*Instr

	memEdges [][2]int // (from, to) ordering edges between memory ops

	sealed    bool
	sealOnce  sync.Once
	preds     [][]int // deduplicated data+memory predecessors
	succs     [][]int // deduplicated data+memory successors
	neighbors [][]int // deduplicated union of preds and succs
	preplaced []int   // IDs of preplaced instructions

	canonOnce sync.Once
	canon     Canonical
}

// New returns an empty graph with the given name.
func New(name string) *Graph {
	return &Graph{Name: name}
}

// Len returns the number of instructions.
func (g *Graph) Len() int { return len(g.Instrs) }

// Add appends an instruction with the given opcode and operand producers and
// returns it. Add panics if the graph is sealed, an argument ID is out of
// range or not yet defined (which would create a cycle), or the operand
// count does not match the opcode arity.
func (g *Graph) Add(op Op, args ...int) *Instr {
	if g.sealed {
		panic("ir: Add on sealed graph")
	}
	if want := op.Arity(); want >= 0 && len(args) != want {
		panic(fmt.Sprintf("ir: %v wants %d operands, got %d", op, want, len(args)))
	}
	id := len(g.Instrs)
	for _, a := range args {
		if a < 0 || a >= id {
			panic(fmt.Sprintf("ir: instruction %d references undefined operand %%%d", id, a))
		}
		if !g.Instrs[a].Op.HasResult() {
			panic(fmt.Sprintf("ir: instruction %d consumes %%%d (%v), which produces no value", id, a, g.Instrs[a].Op))
		}
	}
	in := &Instr{ID: id, Op: op, Args: append([]int(nil), args...), Bank: NoBank, Home: NoHome}
	g.Instrs = append(g.Instrs, in)
	return in
}

// AddConst appends a ConstInt instruction with the given immediate.
func (g *Graph) AddConst(v int64) *Instr {
	in := g.Add(ConstInt)
	in.Imm = v
	return in
}

// AddFConst appends a ConstFloat instruction with the given immediate.
func (g *Graph) AddFConst(v float64) *Instr {
	in := g.Add(ConstFloat)
	in.FImm = v
	return in
}

// AddLoad appends a Load from the given bank at the address produced by
// addr. The load is preplaced on the cluster equal to the bank only if the
// caller sets Home; bank assignment and preplacement are distinct concerns.
func (g *Graph) AddLoad(bank, addr int) *Instr {
	in := g.Add(Load, addr)
	in.Bank = bank
	return in
}

// AddStore appends a Store to the given bank at the address produced by
// addr, storing the value produced by val.
func (g *Graph) AddStore(bank, addr, val int) *Instr {
	in := g.Add(Store, addr, val)
	in.Bank = bank
	return in
}

// AddMemEdge records an ordering edge between two memory instructions
// (store→load, store→store, or load→store on the same bank). The simulator
// and schedulers treat it like a zero-value dependence: the successor may
// not issue before the predecessor completes.
func (g *Graph) AddMemEdge(from, to int) {
	if g.sealed {
		panic("ir: AddMemEdge on sealed graph")
	}
	if from < 0 || from >= len(g.Instrs) || to < 0 || to >= len(g.Instrs) {
		panic(fmt.Sprintf("ir: memory edge (%d,%d) out of range", from, to))
	}
	if from >= to {
		panic(fmt.Sprintf("ir: memory edge (%d,%d) must point forward", from, to))
	}
	g.memEdges = append(g.memEdges, [2]int{from, to})
}

// MemEdges returns the explicit memory-order edges as (from, to) pairs.
// The returned slice is owned by the graph and must not be modified.
func (g *Graph) MemEdges() [][2]int { return g.memEdges }

// Seal freezes the graph and computes adjacency. It is idempotent and safe
// to call from several goroutines at once (concurrent analyses of a shared
// graph all start here), and every analysis calls it implicitly, so explicit
// calls are only needed to catch accidental later mutation early.
func (g *Graph) Seal() {
	g.sealOnce.Do(g.seal)
}

func (g *Graph) seal() {
	g.sealed = true
	n := len(g.Instrs)
	g.preds = make([][]int, n)
	g.succs = make([][]int, n)
	seen := make(map[[2]int]bool)
	addEdge := func(from, to int) {
		key := [2]int{from, to}
		if seen[key] {
			return
		}
		seen[key] = true
		g.succs[from] = append(g.succs[from], to)
		g.preds[to] = append(g.preds[to], from)
	}
	for _, in := range g.Instrs {
		for _, a := range in.Args {
			addEdge(a, in.ID)
		}
	}
	for _, e := range g.memEdges {
		addEdge(e[0], e[1])
	}
	// Precompute the neighbor union once so Neighbors is allocation-free:
	// the convergent passes walk it in their inner loops.
	g.neighbors = make([][]int, n)
	dup := make(map[int]bool)
	for i := 0; i < n; i++ {
		clear(dup)
		nb := make([]int, 0, len(g.preds[i])+len(g.succs[i]))
		for _, lists := range [2][]int{g.preds[i], g.succs[i]} {
			for _, v := range lists {
				if !dup[v] {
					dup[v] = true
					nb = append(nb, v)
				}
			}
		}
		g.neighbors[i] = nb
	}
	for i, in := range g.Instrs {
		if in.Preplaced() {
			g.preplaced = append(g.preplaced, i)
		}
	}
}

// Preds returns the deduplicated predecessor IDs of instruction i,
// including memory-order predecessors. The slice is owned by the graph.
func (g *Graph) Preds(i int) []int {
	g.Seal()
	return g.preds[i]
}

// Succs returns the deduplicated successor IDs of instruction i, including
// memory-order successors. The slice is owned by the graph.
func (g *Graph) Succs(i int) []int {
	g.Seal()
	return g.succs[i]
}

// Roots returns the IDs of instructions with no predecessors.
func (g *Graph) Roots() []int {
	g.Seal()
	var r []int
	for i := range g.Instrs {
		if len(g.preds[i]) == 0 {
			r = append(r, i)
		}
	}
	return r
}

// Leaves returns the IDs of instructions with no successors.
func (g *Graph) Leaves() []int {
	g.Seal()
	var r []int
	for i := range g.Instrs {
		if len(g.succs[i]) == 0 {
			r = append(r, i)
		}
	}
	return r
}

// Validate checks structural well-formedness: IDs match positions, operand
// references are in range and acyclic (guaranteed by construction but
// re-checked for graphs built by the parser), arities match, memory edges
// connect memory instructions on the same bank, and preplaced homes are
// non-negative. It returns the first problem found.
func (g *Graph) Validate() error {
	for i, in := range g.Instrs {
		if in.ID != i {
			return fmt.Errorf("ir: %s: instruction at index %d has ID %d", g.Name, i, in.ID)
		}
		if !in.Op.Valid() {
			return fmt.Errorf("ir: %s: instruction %d has invalid opcode", g.Name, i)
		}
		if want := in.Op.Arity(); want >= 0 && len(in.Args) != want {
			return fmt.Errorf("ir: %s: instruction %d (%v) has %d operands, want %d", g.Name, i, in.Op, len(in.Args), want)
		}
		for _, a := range in.Args {
			if a < 0 || a >= i {
				return fmt.Errorf("ir: %s: instruction %d references %%%d (graph must be in topological order)", g.Name, i, a)
			}
			if !g.Instrs[a].Op.HasResult() {
				return fmt.Errorf("ir: %s: instruction %d consumes resultless %%%d", g.Name, i, a)
			}
		}
		if in.Op.IsMemory() && in.Bank < 0 {
			return fmt.Errorf("ir: %s: memory instruction %d has no bank", g.Name, i)
		}
		if !in.Op.IsMemory() && in.Bank != NoBank {
			return fmt.Errorf("ir: %s: non-memory instruction %d has bank %d", g.Name, i, in.Bank)
		}
		if in.Home < NoHome {
			return fmt.Errorf("ir: %s: instruction %d has invalid home %d", g.Name, i, in.Home)
		}
	}
	for _, e := range g.memEdges {
		from, to := e[0], e[1]
		if from < 0 || from >= len(g.Instrs) || to < 0 || to >= len(g.Instrs) || from >= to {
			return fmt.Errorf("ir: %s: bad memory edge (%d,%d)", g.Name, from, to)
		}
		a, b := g.Instrs[from], g.Instrs[to]
		if !a.Op.IsMemory() || !b.Op.IsMemory() {
			return fmt.Errorf("ir: %s: memory edge (%d,%d) touches non-memory instruction", g.Name, from, to)
		}
	}
	return nil
}

// ErrEmpty is returned by analyses that require at least one instruction.
var ErrEmpty = errors.New("ir: empty graph")

// Preplaced returns the IDs of all preplaced instructions. On a sealed graph
// the slice is precomputed and owned by the graph (callers must not modify
// it); before sealing a fresh slice is built per call.
func (g *Graph) Preplaced() []int {
	if g.sealed {
		return g.preplaced
	}
	var r []int
	for i, in := range g.Instrs {
		if in.Preplaced() {
			r = append(r, i)
		}
	}
	return r
}

// Clone returns a deep copy of the graph. The copy is unsealed so callers
// may extend it.
func (g *Graph) Clone() *Graph {
	out := New(g.Name)
	out.Instrs = make([]*Instr, len(g.Instrs))
	for i, in := range g.Instrs {
		cp := *in
		cp.Args = append([]int(nil), in.Args...)
		out.Instrs[i] = &cp
	}
	out.memEdges = append([][2]int(nil), g.memEdges...)
	return out
}
