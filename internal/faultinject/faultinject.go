// Package faultinject provides deterministic, seeded chaos for the
// scheduling pipeline: mutators that corrupt schedules in every structural
// way the legality gate must catch, graph mutators that lie to a scheduler
// about dependences, a latency-lying machine model, and poisoned convergent
// passes that panic, stall, or skew the preference map.
//
// Every mutator is driven by an explicit seed and nothing else, so a
// failure found by the chaos suite replays exactly. The schedule-corruption
// classes are constructed to be *guaranteed illegal* — each one provably
// violates a specific clause of schedule.Validate — which is what lets the
// property tests assert "no false accepts" without circular reasoning.
package faultinject

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
	"repro/internal/schedule"
)

// Schedule-corruption classes. Each names the legality clause it violates.
const (
	// LatencyLie records a wrong result latency for one placement.
	LatencyLie = "latency-lie"
	// EarlyIssue issues a consumer before an operand arrives.
	EarlyIssue = "early-issue"
	// TimeSwap swaps the issue cycles of a producer and its consumer.
	TimeSwap = "time-swap"
	// FUConflict places two instructions on one functional unit slot.
	FUConflict = "fu-conflict"
	// NegativeStart issues an instruction at cycle -1.
	NegativeStart = "negative-start"
	// HomeViolation moves a preplaced instruction off its home cluster.
	HomeViolation = "home-violation"
	// MemEdgeViolation issues a memory successor before its predecessor
	// completes.
	MemEdgeViolation = "memedge-violation"
	// DropComm removes a communication some consumer depends on.
	DropComm = "drop-comm"
	// CommTooEarly departs a communication before its value is ready.
	CommTooEarly = "comm-too-early"
	// PortOverflow injects duplicate sends that exceed the port budget.
	PortOverflow = "port-overflow"
)

// ScheduleClasses lists every schedule-corruption class, in a stable order.
func ScheduleClasses() []string {
	return []string{
		LatencyLie, EarlyIssue, TimeSwap, FUConflict, NegativeStart,
		HomeViolation, MemEdgeViolation, DropComm, CommTooEarly, PortOverflow,
	}
}

func cloneSchedule(s *schedule.Schedule) *schedule.Schedule {
	return &schedule.Schedule{
		Graph:      s.Graph,
		Machine:    s.Machine,
		Placements: append([]schedule.Placement(nil), s.Placements...),
		Comms:      append([]schedule.Comm(nil), s.Comms...),
	}
}

// MutateSchedule applies the named corruption class to a copy of the given
// valid schedule and returns it with a description of the injected fault.
// It reports ok=false when the class does not apply to this schedule (for
// example DropComm on a schedule with no communications); the input is
// never modified. The result is guaranteed to violate schedule.Validate.
func MutateSchedule(s *schedule.Schedule, class string, seed int64) (*schedule.Schedule, string, bool) {
	rng := rand.New(rand.NewSource(seed))
	out := cloneSchedule(s)
	n := len(out.Placements)
	switch class {
	case LatencyLie:
		if n == 0 {
			return nil, "", false
		}
		i := rng.Intn(n)
		out.Placements[i].Latency++
		return out, fmt.Sprintf("instr %d latency inflated to %d", i, out.Placements[i].Latency), true

	case NegativeStart:
		if n == 0 {
			return nil, "", false
		}
		i := rng.Intn(n)
		out.Placements[i].Start = -1
		return out, fmt.Sprintf("instr %d issued at cycle -1", i), true

	case EarlyIssue:
		var cands []int
		for i, in := range s.Graph.Instrs {
			if len(in.Args) > 0 {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return nil, "", false
		}
		i := cands[rng.Intn(len(cands))]
		a := s.Graph.Instrs[i].Args[rng.Intn(len(s.Graph.Instrs[i].Args))]
		// In a valid schedule the operand arrives at cycle >= 1 (its
		// producer's latency is at least one), so arr-1 is a legal
		// cycle number that is still before arrival.
		arr := s.ArrivalOn(a, s.Placements[i].Cluster)
		out.Placements[i].Start = arr - 1
		return out, fmt.Sprintf("instr %d issued at %d, before operand %%%d arrives at %d", i, arr-1, a, arr), true

	case TimeSwap:
		type pair struct{ p, c int }
		var cands []pair
		for c, in := range s.Graph.Instrs {
			for _, p := range in.Args {
				cands = append(cands, pair{p, c})
			}
		}
		if len(cands) == 0 {
			return nil, "", false
		}
		pc := cands[rng.Intn(len(cands))]
		// Validity forces the consumer to issue strictly after the
		// producer, so swapping their cycles reorders the pair.
		out.Placements[pc.p].Start, out.Placements[pc.c].Start =
			out.Placements[pc.c].Start, out.Placements[pc.p].Start
		return out, fmt.Sprintf("issue cycles of producer %d and consumer %d swapped", pc.p, pc.c), true

	case FUConflict:
		if n < 2 {
			return nil, "", false
		}
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		out.Placements[j].Cluster = out.Placements[i].Cluster
		out.Placements[j].FU = out.Placements[i].FU
		out.Placements[j].Start = out.Placements[i].Start
		return out, fmt.Sprintf("instr %d stacked onto instr %d's unit slot", j, i), true

	case HomeViolation:
		if s.Machine.NumClusters < 2 {
			return nil, "", false
		}
		var cands []int
		for i, in := range s.Graph.Instrs {
			if in.Preplaced() {
				cands = append(cands, i)
			}
		}
		if len(cands) == 0 {
			return nil, "", false
		}
		i := cands[rng.Intn(len(cands))]
		out.Placements[i].Cluster = (s.Graph.Instrs[i].Home + 1) % s.Machine.NumClusters
		return out, fmt.Sprintf("preplaced instr %d moved off home %d", i, s.Graph.Instrs[i].Home), true

	case MemEdgeViolation:
		edges := s.Graph.MemEdges()
		if len(edges) == 0 {
			return nil, "", false
		}
		e := edges[rng.Intn(len(edges))]
		out.Placements[e[1]].Start = out.Placements[e[0]].Start
		return out, fmt.Sprintf("memory successor %d issued with predecessor %d in flight", e[1], e[0]), true

	case DropComm:
		cands := loadBearingComms(s)
		if len(cands) == 0 {
			return nil, "", false
		}
		k := cands[rng.Intn(len(cands))]
		c := out.Comms[k]
		out.Comms = append(out.Comms[:k:k], out.Comms[k+1:]...)
		return out, fmt.Sprintf("comm of value %d to cluster %d dropped", c.Value, c.To), true

	case CommTooEarly:
		if len(out.Comms) == 0 {
			return nil, "", false
		}
		k := rng.Intn(len(out.Comms))
		c := &out.Comms[k]
		ready := out.Placements[c.Value].Ready()
		c.Depart = ready - 1
		c.Arrive = c.Depart + s.Machine.CommLatency(c.From, c.To)
		return out, fmt.Sprintf("comm of value %d departs at %d, before ready at %d", c.Value, c.Depart, ready), true

	case PortOverflow:
		if len(out.Comms) == 0 {
			return nil, "", false
		}
		k := rng.Intn(len(out.Comms))
		c := out.Comms[k]
		for extra := 0; extra < s.Machine.SendPorts; extra++ {
			out.Comms = append(out.Comms, c)
		}
		return out, fmt.Sprintf("cluster %d sends %d duplicate words at cycle %d", c.From, s.Machine.SendPorts, c.Depart), true
	}
	return nil, "", false
}

// loadBearingComms returns the indices of communications whose removal
// provably strands some consumer: a consumer on the destination cluster
// reads the moved value, the producer lives elsewhere, and no other
// communication delivers the value there by the consumer's issue cycle.
func loadBearingComms(s *schedule.Schedule) []int {
	var out []int
	for k, c := range s.Comms {
		if commIsLoadBearing(s, k, c) {
			out = append(out, k)
		}
	}
	return out
}

func commIsLoadBearing(s *schedule.Schedule, k int, c schedule.Comm) bool {
	if s.Graph.Instrs[c.Value].Op.IsConst() {
		return false // constants broadcast as immediates
	}
	if s.Placements[c.Value].Cluster == c.To {
		return false // value is local anyway
	}
	for i, p := range s.Placements {
		if p.Cluster != c.To {
			continue
		}
		for _, a := range s.Graph.Instrs[i].Args {
			if a != c.Value {
				continue
			}
			alt := -1
			for k2, c2 := range s.Comms {
				if k2 != k && c2.Value == a && c2.To == c.To && (alt < 0 || c2.Arrive < alt) {
					alt = c2.Arrive
				}
			}
			if alt < 0 || alt > p.Start {
				return true
			}
		}
	}
	return false
}

// DropMemEdge returns a copy of g with one memory-order edge (chosen by
// seed) silently removed — the classic "scheduler believes two memory
// operations commute" lie. It reports ok=false when g has no memory edges.
func DropMemEdge(g *ir.Graph, seed int64) (*ir.Graph, bool) {
	edges := g.MemEdges()
	if len(edges) == 0 {
		return nil, false
	}
	drop := rand.New(rand.NewSource(seed)).Intn(len(edges))
	out := cloneStructure(g)
	for k, e := range edges {
		if k != drop {
			out.AddMemEdge(e[0], e[1])
		}
	}
	return out, true
}

// RewireArg returns a copy of g in which one instruction reads a different
// (still topologically earlier) producer, scrambling a data dependence
// while keeping the graph structurally valid. It reports ok=false when no
// operand has an alternative producer available.
func RewireArg(g *ir.Graph, seed int64) (*ir.Graph, bool) {
	rng := rand.New(rand.NewSource(seed))
	type operand struct{ instr, slot int }
	var cands []operand
	for i, in := range g.Instrs {
		for slot, a := range in.Args {
			if len(alternativeProducers(g, i, a)) > 0 {
				cands = append(cands, operand{i, slot})
			}
		}
	}
	if len(cands) == 0 {
		return nil, false
	}
	pick := cands[rng.Intn(len(cands))]
	out := cloneStructure(g)
	for _, e := range g.MemEdges() {
		out.AddMemEdge(e[0], e[1])
	}
	in := out.Instrs[pick.instr]
	alts := alternativeProducers(out, pick.instr, in.Args[pick.slot])
	in.Args[pick.slot] = alts[rng.Intn(len(alts))]
	return out, true
}

// alternativeProducers lists the producers j < i with a result, distinct
// from cur.
func alternativeProducers(g *ir.Graph, i, cur int) []int {
	var alts []int
	for j := 0; j < i; j++ {
		if j != cur && g.Instrs[j].Op.HasResult() {
			alts = append(alts, j)
		}
	}
	return alts
}

// cloneStructure copies instructions (not memory edges) into a fresh,
// unsealed graph.
func cloneStructure(g *ir.Graph) *ir.Graph {
	out := ir.New(g.Name)
	for _, in := range g.Instrs {
		cp := *in
		cp.Args = append([]int(nil), in.Args...)
		out.Instrs = append(out.Instrs, &cp)
	}
	return out
}
