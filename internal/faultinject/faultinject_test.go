package faultinject_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// memGraph builds a small graph with memory-order edges and cross-bank
// traffic. The bench kernels never alias two accesses to one location, so
// they carry no explicit memory edges; this graph supplies the memory-order
// corruption classes with something to corrupt.
func memGraph() *ir.Graph {
	g := ir.New("memprop")
	a0 := g.AddConst(0)
	a8 := g.AddConst(8)
	a16 := g.AddConst(16)
	c7 := g.AddConst(7)
	c5 := g.AddConst(5)
	st0 := g.AddStore(0, a0.ID, c7.ID)
	ld0 := g.AddLoad(0, a0.ID)
	g.AddMemEdge(st0.ID, ld0.ID)
	sum := g.Add(ir.Add, ld0.ID, c5.ID)
	st1 := g.AddStore(1, a8.ID, sum.ID)
	ld1 := g.AddLoad(1, a8.ID)
	g.AddMemEdge(st1.ID, ld1.ID)
	prod := g.Add(ir.Mul, ld1.ID, c7.ID)
	st2 := g.AddStore(2, a16.ID, prod.ID)
	ld2 := g.AddLoad(2, a16.ID)
	g.AddMemEdge(st2.ID, ld2.ID)
	fin := g.Add(ir.Sub, ld2.ID, c5.ID)
	g.AddStore(3, a0.ID, fin.ID)
	return g
}

// propGraphs returns the graphs the property tests mutate over: two random
// layered DAGs (with preplaced instructions, hence communications on
// multi-cluster machines) and the memory-edge graph.
func propGraphs(clusters int) []*ir.Graph {
	return []*ir.Graph{
		bench.RandomLayered(80, 8, clusters, 1),
		bench.RandomLayered(150, 12, clusters, 2),
		memGraph(),
	}
}

// base produces a known-valid schedule to mutate: the trivial-assignment
// list schedule, which honours preplacement and bank homes on any machine.
func base(t *testing.T, g *ir.Graph, m *machine.Model) *schedule.Schedule {
	t.Helper()
	s, err := robust.ListRung(m).Run(context.Background(), g)
	if err != nil {
		t.Fatalf("list schedule for %s on %s: %v", g.Name, m.Name, err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("base schedule for %s on %s invalid: %v", g.Name, m.Name, err)
	}
	return s
}

// TestScheduleMutantsAllRejected is the no-false-accepts property: every
// applicable schedule corruption, over every graph, machine, and seed, must
// be rejected by the legality gate — schedule.Validate first, simulation
// against reference execution as the backstop. It also proves every class
// applies somewhere (a class that never fires would make the property
// vacuous) and that mutators never modify their input.
func TestScheduleMutantsAllRejected(t *testing.T) {
	machines := []*machine.Model{machine.Raw(4), machine.Chorus(4)}
	applied := map[string]int{}
	for _, m := range machines {
		for _, g := range propGraphs(m.NumClusters) {
			s := base(t, g, m)
			before := struct {
				p []schedule.Placement
				c []schedule.Comm
			}{
				append([]schedule.Placement(nil), s.Placements...),
				append([]schedule.Comm(nil), s.Comms...),
			}
			for _, class := range faultinject.ScheduleClasses() {
				for seed := int64(0); seed < 6; seed++ {
					mut, desc, ok := faultinject.MutateSchedule(s, class, seed)
					if !ok {
						continue
					}
					applied[class]++
					if desc == "" {
						t.Errorf("%s: empty fault description", class)
					}
					if err := mut.Validate(); err == nil {
						// Validate missed it; the gate's second line
						// must catch it or this is a false accept.
						if _, simErr := sim.Verify(mut, sim.NewMemory()); simErr == nil {
							t.Errorf("%s on %s/%s seed %d: FALSE ACCEPT of %q",
								class, g.Name, m.Name, seed, desc)
						}
					}
				}
			}
			if !reflect.DeepEqual(before.p, s.Placements) || !reflect.DeepEqual(before.c, s.Comms) {
				t.Errorf("mutators modified their input schedule for %s on %s", g.Name, m.Name)
			}
		}
	}
	for _, class := range faultinject.ScheduleClasses() {
		if applied[class] == 0 {
			t.Errorf("class %s never applied to any test schedule", class)
		}
	}
}

// TestMutatorsDeterministic replays every class with a fixed seed and
// demands bit-identical mutants, so any failure the chaos suite finds can
// be replayed exactly.
func TestMutatorsDeterministic(t *testing.T) {
	m := machine.Chorus(4)
	for _, g := range propGraphs(4) {
		s := base(t, g, m)
		for _, class := range faultinject.ScheduleClasses() {
			m1, d1, ok1 := faultinject.MutateSchedule(s, class, 42)
			m2, d2, ok2 := faultinject.MutateSchedule(s, class, 42)
			if ok1 != ok2 || d1 != d2 {
				t.Fatalf("%s on %s: nondeterministic (ok %v/%v, desc %q vs %q)", class, g.Name, ok1, ok2, d1, d2)
			}
			if !ok1 {
				continue
			}
			if !reflect.DeepEqual(m1.Placements, m2.Placements) || !reflect.DeepEqual(m1.Comms, m2.Comms) {
				t.Errorf("%s on %s: same seed produced different mutants", class, g.Name)
			}
		}
	}
}

func TestDropMemEdge(t *testing.T) {
	g := memGraph()
	out, ok := faultinject.DropMemEdge(g, 9)
	if !ok {
		t.Fatal("DropMemEdge inapplicable to a graph with memory edges")
	}
	if got, want := len(out.MemEdges()), len(g.MemEdges())-1; got != want {
		t.Errorf("mutated graph has %d memory edges, want %d", got, want)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("mutated graph must stay structurally valid: %v", err)
	}
	if len(g.MemEdges()) != 3 {
		t.Errorf("input graph modified: %d memory edges", len(g.MemEdges()))
	}
	if _, ok := faultinject.DropMemEdge(bench.RandomLayered(50, 5, 4, 1), 0); ok {
		t.Error("DropMemEdge applied to a graph with no memory edges")
	}
}

func TestRewireArg(t *testing.T) {
	g := bench.RandomLayered(60, 6, 4, 5)
	out, ok := faultinject.RewireArg(g, 11)
	if !ok {
		t.Fatal("RewireArg inapplicable to a random DAG")
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("rewired graph must stay structurally valid: %v", err)
	}
	if out.Len() != g.Len() {
		t.Fatalf("rewired graph has %d instrs, want %d", out.Len(), g.Len())
	}
	changed := 0
	for i, in := range g.Instrs {
		if !reflect.DeepEqual(in.Args, out.Instrs[i].Args) {
			changed++
		}
	}
	if changed != 1 {
		t.Errorf("rewiring changed %d instructions' operands, want exactly 1", changed)
	}

	// No operand has an alternative producer here, so rewiring must refuse.
	tiny := ir.New("tiny")
	c := tiny.AddConst(1)
	tiny.Add(ir.Add, c.ID, c.ID)
	if _, ok := faultinject.RewireArg(tiny, 0); ok {
		t.Error("RewireArg applied where no alternative producer exists")
	}
}

func TestChaosUnknownClass(t *testing.T) {
	if _, err := (faultinject.Chaos{Class: "no-such-fault"}).Ladder(machine.Chorus(4), 1); err == nil {
		t.Error("unknown chaos class accepted")
	}
}
