package faultinject

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
)

// Pipeline-level chaos classes. These corrupt what a scheduler is given (or
// what it computes internally) rather than the schedule it emits, so they
// exercise the full degradation ladder.
const (
	// ChaosPassPanic injects a convergent pass that panics.
	ChaosPassPanic = "pass-panic"
	// ChaosPassStall injects a convergent pass that blocks past any
	// reasonable time budget.
	ChaosPassStall = "pass-stall"
	// ChaosWeightSkew injects a pass that dumps the whole preference map
	// onto one cluster, corrupting every spatial weight at once.
	ChaosWeightSkew = "weight-skew"
	// ChaosDropMemEdge feeds the scheduler a graph missing one
	// memory-order edge.
	ChaosDropMemEdge = "drop-memedge"
	// ChaosRewireArg feeds the scheduler a graph with one data
	// dependence rewired to the wrong producer.
	ChaosRewireArg = "rewire-arg"
	// ChaosLatencyLiar runs the scheduler against a machine model whose
	// latency table lies.
	ChaosLatencyLiar = "latency-liar"
)

// PipelineClasses lists the pipeline-level chaos classes, in a stable order.
func PipelineClasses() []string {
	return []string{
		ChaosPassPanic, ChaosPassStall, ChaosWeightSkew,
		ChaosDropMemEdge, ChaosRewireArg, ChaosLatencyLiar,
	}
}

// Classes lists every chaos class accepted by Chaos.Ladder: the pipeline
// classes plus every schedule-corruption class (which Chaos applies to the
// primary rung's output).
func Classes() []string {
	return append(PipelineClasses(), ScheduleClasses()...)
}

// PanicPass is a convergent pass that panics when run.
type PanicPass struct{}

// Name identifies the pass in traces.
func (PanicPass) Name() string { return "CHAOS-PANIC" }

// Run panics unconditionally.
func (PanicPass) Run(s *core.State) { panic("faultinject: injected pass panic") }

// StallPass is a convergent pass that sleeps for D, modelling a pass stuck
// in a pathological descent.
type StallPass struct {
	// D is how long Run blocks.
	D time.Duration
}

// Name identifies the pass in traces.
func (StallPass) Name() string { return "CHAOS-STALL" }

// Run blocks for D.
func (p StallPass) Run(s *core.State) { time.Sleep(p.D) }

// SkewPass zeroes every cluster weight except Cluster's, corrupting the
// whole preference map in one step. On machines where the resulting
// assignment is illegal (Raw memory locality) the convergent rung fails;
// elsewhere it merely produces a terrible but legal schedule — exactly the
// "no single pass can wreck legality" property the ladder relies on.
type SkewPass struct {
	// Cluster receives all spatial weight.
	Cluster int
}

// Name identifies the pass in traces.
func (SkewPass) Name() string { return "CHAOS-SKEW" }

// Run dumps every instruction's spatial weight onto one cluster.
func (p SkewPass) Run(s *core.State) {
	for i := 0; i < s.W.N(); i++ {
		for c := 0; c < s.W.Clusters(); c++ {
			if c != p.Cluster {
				s.W.MulCluster(i, c, 0)
			}
		}
	}
}

// LyingModel returns a copy of m whose latency table lies about common
// opcodes (long operations reported short, short ones long). Schedulers
// trusting it record wrong placement latencies, which the legality gate
// catches against the true model.
func LyingModel(m *machine.Model) *machine.Model {
	out := m.WithOpLatency(ir.Add, m.OpLatency(ir.Add)+3)
	for _, op := range []ir.Op{ir.Load, ir.Mul, ir.FMul, ir.FAdd, ir.Div} {
		out = out.WithOpLatency(op, 1)
	}
	out.Name = m.Name // keep pass-sequence selection stable
	return out
}

// Chaos configures one deterministic fault injection.
type Chaos struct {
	// Class is the fault class, one of Classes().
	Class string
	// Seed drives every random choice the injection makes.
	Seed int64
	// Stall is how long ChaosPassStall blocks (default 30s).
	Stall time.Duration
}

// prependPass returns seq with p inserted at the front.
func prependPass(p core.Pass, seq []core.Pass) []core.Pass {
	return append([]core.Pass{p}, seq...)
}

// Ladder builds the default degradation ladder for m with this chaos
// injected. Pass poisons and input lies (graph and latency classes)
// corrupt both convergent rungs — the fault models a broken convergent
// pipeline, and falling through to a baseline is the behaviour under test.
// Schedule-corruption classes wrap only the primary rung's output,
// modelling a single faulty scheduler. Corrupted rungs are renamed with a
// "!class" suffix so reports show exactly what was injected where.
func (c Chaos) Ladder(m *machine.Model, seed int64) ([]robust.Rung, error) {
	ladder := robust.DefaultLadder(m, seed)
	seq := passes.ForMachine(m.Name)
	trunc := robust.TruncatedSequence(seq)
	poisonConvergent := func(p core.Pass) {
		ladder[0] = robust.ConvergentRung("convergent!"+c.Class, m, prependPass(p, seq), seed)
		ladder[1] = robust.ConvergentRung("convergent-truncated!"+c.Class, m, prependPass(p, trunc), seed+1)
	}
	switch c.Class {
	case ChaosPassPanic:
		poisonConvergent(PanicPass{})
	case ChaosPassStall:
		d := c.Stall
		if d == 0 {
			d = 30 * time.Second
		}
		poisonConvergent(StallPass{D: d})
	case ChaosWeightSkew:
		skew := int(c.Seed % int64(m.NumClusters))
		if skew < 0 {
			skew += m.NumClusters
		}
		poisonConvergent(SkewPass{Cluster: skew})
	case ChaosDropMemEdge, ChaosRewireArg:
		mutate := DropMemEdge
		if c.Class == ChaosRewireArg {
			mutate = RewireArg
		}
		for i := 0; i < 2; i++ {
			ladder[i] = wrapGraph(ladder[i], c.Class, mutate, c.Seed)
		}
	case ChaosLatencyLiar:
		liar := LyingModel(m)
		ladder[0] = robust.ConvergentRung("convergent!"+c.Class, liar, seq, seed)
		ladder[1] = robust.ConvergentRung("convergent-truncated!"+c.Class, liar, trunc, seed+1)
	default:
		if !isScheduleClass(c.Class) {
			return nil, fmt.Errorf("faultinject: unknown chaos class %q", c.Class)
		}
		ladder[0] = wrapOutput(ladder[0], c.Class, c.Seed)
	}
	return ladder, nil
}

func isScheduleClass(class string) bool {
	for _, sc := range ScheduleClasses() {
		if sc == class {
			return true
		}
	}
	return false
}

// wrapGraph makes a rung schedule a mutated copy of its input graph.
func wrapGraph(r robust.Rung, class string, mutate func(*ir.Graph, int64) (*ir.Graph, bool), seed int64) robust.Rung {
	inner := r.Run
	return robust.Rung{Name: r.Name + "!" + class, Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
		if mutated, ok := mutate(g, seed); ok {
			g = mutated
		}
		return inner(ctx, g)
	}}
}

// wrapOutput makes a rung corrupt its own output schedule.
func wrapOutput(r robust.Rung, class string, seed int64) robust.Rung {
	inner := r.Run
	return robust.Rung{Name: r.Name + "!" + class, Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
		s, err := inner(ctx, g)
		if err != nil {
			return nil, err
		}
		if mutated, _, ok := MutateSchedule(s, class, seed); ok {
			return mutated, nil
		}
		return s, nil
	}}
}
