package faultinject

import (
	"fmt"
	"testing"

	"repro/internal/schedule"
	"repro/internal/store"
)

// recordedStore populates a store directory with n tiny records and closes
// it, so the offline corruptors have something real to mangle.
func recordedStore(t *testing.T, n int) string {
	t.Helper()
	dir := t.TempDir()
	s, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := make([]byte, 32)
		copy(key, fmt.Sprintf("key-%026d", i))
		rec := &store.Record{
			Key: key, Machine: "raw4", Served: "list",
			Graph:      []byte(fmt.Sprintf("unit g%d\n", i)),
			Placements: []schedule.Placement{{Cluster: 0, Start: i, Latency: 1}},
		}
		if err := s.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestCorruptStoreOfflineClasses applies every offline class to a recorded
// store and requires (a) a descriptive report and (b) that recovery over the
// damage still succeeds — counters move, nothing panics or errors.
func TestCorruptStoreOfflineClasses(t *testing.T) {
	for _, class := range OfflineDiskClasses() {
		t.Run(class, func(t *testing.T) {
			dir := recordedStore(t, 4)
			desc, err := CorruptStore(dir, class, 7)
			if err != nil {
				t.Fatalf("CorruptStore: %v", err)
			}
			if desc == "" {
				t.Fatal("empty corruption report")
			}
			s, err := store.Open(store.Options{Dir: dir, NoFsync: true})
			if err != nil {
				t.Fatalf("reopen after %s: %v", class, err)
			}
			defer s.Close()
			rs, err := s.Recover(nil)
			if err != nil {
				t.Fatalf("recovery after %s: %v", class, err)
			}
			if rs.Replayed > 4 {
				t.Fatalf("recovered %d records from 4 written", rs.Replayed)
			}
		})
	}
}

func TestCorruptStoreRefusals(t *testing.T) {
	dir := recordedStore(t, 1)
	for _, class := range []string{DiskENOSPC, DiskFsyncFail} {
		if _, err := CorruptStore(dir, class, 1); err == nil {
			t.Errorf("online-only class %s accepted offline", class)
		}
	}
	if _, err := CorruptStore(dir, "disk-nonsense", 1); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := CorruptStore(t.TempDir(), DiskTruncate, 1); err == nil {
		t.Error("empty directory accepted for truncation")
	}
}

// TestDiskChaosOnline drives a live store through each online fault class:
// appends may fail, counters must move, and nothing may panic.
func TestDiskChaosOnline(t *testing.T) {
	for _, class := range []string{DiskTornWrite, DiskENOSPC, DiskBitFlip, DiskFsyncFail} {
		t.Run(class, func(t *testing.T) {
			chaos := &DiskChaos{Class: class, Seed: 3, After: 2}
			s, err := store.Open(store.Options{Dir: t.TempDir(), FS: chaos})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if _, err := s.Recover(nil); err != nil {
				t.Fatal(err)
			}
			failures := 0
			for i := 0; i < 8; i++ {
				key := make([]byte, 32)
				key[0] = byte(i + 1)
				if err := s.Append(&store.Record{Key: key, Machine: "raw4", Graph: []byte("g")}); err != nil {
					failures++
				}
			}
			s.Sync()
			st := s.Stats()
			switch class {
			case DiskTornWrite:
				if failures == 0 || st.AppendErrors == 0 {
					t.Errorf("torn write never surfaced: failures=%d stats=%+v", failures, st)
				}
			case DiskENOSPC:
				if failures == 0 {
					t.Error("ENOSPC never surfaced")
				}
			case DiskFsyncFail:
				if st.SyncErrors == 0 {
					t.Errorf("fsync failures never counted: %+v", st)
				}
			case DiskBitFlip:
				// Silent by design: the damage only shows at recovery.
				if failures != 0 {
					t.Errorf("bit flip should be silent, got %d failures", failures)
				}
			}
		})
	}
}

// TestDiskChaosBitFlipCaughtAtRecovery completes the silent-corruption
// story: a bit flipped during a write is invisible to Append but must be
// caught by the CRC at replay.
func TestDiskChaosBitFlipCaughtAtRecovery(t *testing.T) {
	dir := t.TempDir()
	chaos := &DiskChaos{Class: DiskBitFlip, Seed: 5, After: 0}
	s, err := store.Open(store.Options{Dir: dir, NoFsync: true, FS: chaos})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Recover(nil); err != nil {
		t.Fatal(err)
	}
	// After defaults to 4 writes: header + 3 appends pass, one later append
	// is silently mangled.
	for i := 0; i < 6; i++ {
		key := make([]byte, 32)
		key[0] = byte(i + 1)
		if err := s.Append(&store.Record{Key: key, Machine: "raw4", Graph: []byte("g")}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rs, err := s2.Recover(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DroppedCorrupt+rs.TruncatedTails == 0 {
		t.Fatalf("flipped bit slid through recovery: %+v", rs)
	}
	if rs.Replayed >= 6 {
		t.Fatalf("all records replayed despite corruption: %+v", rs)
	}
}

func TestDiskClassesListed(t *testing.T) {
	all := DiskClasses()
	if len(all) != 6 {
		t.Fatalf("DiskClasses lists %d classes, want 6", len(all))
	}
	offline := map[string]bool{}
	for _, c := range OfflineDiskClasses() {
		offline[c] = true
	}
	dir := recordedStore(t, 2)
	for _, c := range all {
		_, err := CorruptStore(dir, c, 1)
		if offline[c] && err != nil {
			t.Errorf("offline class %s refused: %v", c, err)
		}
		if !offline[c] && err == nil {
			t.Errorf("online class %s accepted offline", c)
		}
	}
}
