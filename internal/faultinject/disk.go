package faultinject

// Disk chaos for the persistent schedule store (internal/store): an
// io-level fault-injecting filesystem for online failures (torn writes,
// silent bit flips, ENOSPC, fsync refusal) and an offline corruptor that
// mangles a recorded store directory the way crashes and bit rot do
// (truncation, torn tails, flipped bits, stale snapshots). Both are seeded
// and deterministic, like every other injector in this package.

import (
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"

	"repro/internal/store"
)

// Disk chaos classes.
const (
	// DiskTornWrite makes one WAL append write only half its bytes (online)
	// or shears a few bytes off a recorded WAL's tail (offline) — the
	// classic crash-mid-append.
	DiskTornWrite = "disk-torn-write"
	// DiskTruncate cuts a recorded data file at a random offset (offline).
	DiskTruncate = "disk-truncate"
	// DiskBitFlip flips one bit: silently during a write (online) or in a
	// recorded file (offline). CRC framing must catch it at recovery.
	DiskBitFlip = "disk-bitflip"
	// DiskENOSPC makes every write fail with ENOSPC after a budget of
	// successful ones (online).
	DiskENOSPC = "disk-enospc"
	// DiskFsyncFail makes every fsync fail (online): written data may
	// survive, but durability can never be confirmed.
	DiskFsyncFail = "disk-fsync-fail"
	// DiskStaleSnapshot deletes the newest snapshot so recovery must fall
	// back to an older snapshot beside a divergent WAL (offline).
	DiskStaleSnapshot = "disk-stale-snapshot"
)

// DiskClasses lists every disk chaos class, in a stable order.
func DiskClasses() []string {
	return []string{
		DiskTornWrite, DiskTruncate, DiskBitFlip,
		DiskENOSPC, DiskFsyncFail, DiskStaleSnapshot,
	}
}

// OfflineDiskClasses lists the classes CorruptStore can apply to a recorded
// store directory (the rest only exist as live IO faults).
func OfflineDiskClasses() []string {
	return []string{DiskTornWrite, DiskTruncate, DiskBitFlip, DiskStaleSnapshot}
}

// DiskChaos is a store.FS that injects one fault class into the data-file
// IO of the store it is given to. The zero After means the fault arms after
// 4 successful writes; Seed drives every random choice.
type DiskChaos struct {
	// Inner is the wrapped filesystem; nil means the real one.
	Inner store.FS
	// Class is the fault class, one of DiskClasses.
	Class string
	// Seed drives offsets and bit choices deterministically.
	Seed int64
	// After is how many data-file writes succeed before the fault fires.
	After int

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	fired  bool
}

func (d *DiskChaos) inner() store.FS {
	if d.Inner == nil {
		return store.OSFS{}
	}
	return d.Inner
}

func (d *DiskChaos) threshold() int {
	if d.After > 0 {
		return d.After
	}
	return 4
}

func (d *DiskChaos) rand() *rand.Rand {
	if d.rng == nil {
		d.rng = rand.New(rand.NewSource(d.Seed))
	}
	return d.rng
}

// OpenFile wraps writable data files with the fault; reads and the lockfile
// pass through untouched.
func (d *DiskChaos) OpenFile(name string, flag int, perm fs.FileMode) (store.File, error) {
	f, err := d.inner().OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&(os.O_WRONLY|os.O_RDWR) == 0 {
		return f, nil
	}
	return &chaosFile{File: f, d: d}, nil
}

// Rename passes through.
func (d *DiskChaos) Rename(oldpath, newpath string) error { return d.inner().Rename(oldpath, newpath) }

// Remove passes through.
func (d *DiskChaos) Remove(name string) error { return d.inner().Remove(name) }

// ReadDir passes through.
func (d *DiskChaos) ReadDir(name string) ([]fs.DirEntry, error) { return d.inner().ReadDir(name) }

// MkdirAll passes through.
func (d *DiskChaos) MkdirAll(name string, perm fs.FileMode) error {
	return d.inner().MkdirAll(name, perm)
}

// SyncDir refuses under DiskFsyncFail, else passes through.
func (d *DiskChaos) SyncDir(name string) error {
	if d.Class == DiskFsyncFail {
		return fmt.Errorf("faultinject: injected directory fsync failure")
	}
	return d.inner().SyncDir(name)
}

// chaosFile applies the online fault classes to one writable file.
type chaosFile struct {
	store.File
	d *DiskChaos
}

func (c *chaosFile) Write(p []byte) (int, error) {
	d := c.d
	d.mu.Lock()
	d.writes++
	due := d.writes > d.threshold()
	switch d.Class {
	case DiskTornWrite:
		// One-shot: the fault is a single crash-shaped event.
		if due && !d.fired {
			d.fired = true
			n := len(p) / 2
			d.mu.Unlock()
			if n > 0 {
				c.File.Write(p[:n])
			}
			return n, fmt.Errorf("faultinject: injected torn write after %d bytes", n)
		}
	case DiskENOSPC:
		if due {
			d.mu.Unlock()
			return 0, syscall.ENOSPC
		}
	case DiskBitFlip:
		// One-shot silent corruption: the write "succeeds" with one bit
		// flipped somewhere in the payload.
		if due && !d.fired && len(p) > 0 {
			d.fired = true
			rng := d.rand()
			off, bit := rng.Intn(len(p)), uint(rng.Intn(8))
			d.mu.Unlock()
			q := make([]byte, len(p))
			copy(q, p)
			q[off] ^= 1 << bit
			return c.File.Write(q)
		}
	}
	d.mu.Unlock()
	return c.File.Write(p)
}

func (c *chaosFile) Sync() error {
	if c.d.Class == DiskFsyncFail {
		return fmt.Errorf("faultinject: injected fsync failure")
	}
	return c.File.Sync()
}

// CorruptStore applies one offline disk chaos class to a recorded store
// directory, deterministically under seed, and describes what it did. It is
// the tool behind cmd/storechaos and the crash-recovery suites: corrupt a
// store a SIGKILLed daemon left behind, restart, and the daemon must come
// up ready and serve only legal schedules.
func CorruptStore(dir, class string, seed int64) (string, error) {
	rng := rand.New(rand.NewSource(seed))
	wals, snaps, err := storeDataFiles(dir)
	if err != nil {
		return "", err
	}
	switch class {
	case DiskTornWrite, DiskTruncate:
		if len(wals) == 0 {
			return "", fmt.Errorf("faultinject: no WAL in %s to corrupt", dir)
		}
		name := wals[len(wals)-1]
		path := filepath.Join(dir, name)
		st, err := os.Stat(path)
		if err != nil {
			return "", err
		}
		size := st.Size()
		var cut int64
		if class == DiskTornWrite {
			// Shear a small tail off, as a crash mid-append would.
			cut = size - (1 + rng.Int63n(32))
		} else {
			cut = rng.Int63n(size + 1)
		}
		if cut < 0 {
			cut = 0
		}
		if err := os.Truncate(path, cut); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s: truncated %s from %d to %d bytes", class, name, size, cut), nil
	case DiskBitFlip:
		files := append(append([]string{}, wals...), snaps...)
		if len(files) == 0 {
			return "", fmt.Errorf("faultinject: no data files in %s to corrupt", dir)
		}
		name := files[rng.Intn(len(files))]
		path := filepath.Join(dir, name)
		b, err := os.ReadFile(path)
		if err != nil {
			return "", err
		}
		if len(b) == 0 {
			return fmt.Sprintf("%s: %s is empty, nothing to flip", class, name), nil
		}
		off, bit := rng.Intn(len(b)), uint(rng.Intn(8))
		b[off] ^= 1 << bit
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s: flipped bit %d of byte %d in %s", class, bit, off, name), nil
	case DiskStaleSnapshot:
		if len(snaps) == 0 {
			// No snapshot to stale: shear the WAL instead so the class
			// still perturbs something on lightly-loaded stores.
			return CorruptStore(dir, DiskTornWrite, seed)
		}
		name := snaps[len(snaps)-1]
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return "", err
		}
		return fmt.Sprintf("%s: removed newest snapshot %s (WAL left divergent)", class, name), nil
	case DiskENOSPC, DiskFsyncFail:
		return "", fmt.Errorf("faultinject: %s is an online-only class (use DiskChaos as the store FS)", class)
	default:
		return "", fmt.Errorf("faultinject: unknown disk chaos class %q", class)
	}
}

// storeDataFiles lists a store directory's WAL and snapshot files in
// generation order (oldest first).
func storeDataFiles(dir string) (wals, snaps []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			wals = append(wals, name)
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap"):
			snaps = append(snaps, name)
		}
	}
	sort.Strings(wals)
	sort.Strings(snaps)
	return wals, snaps, nil
}
