package server

// Peer-surface tests: the /cache handoff API's auth and legality gate, and
// peer lookup before compute driven by signed (and forged) gateway hints.

import (
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/store"
)

// warmPeer boots a peer-enabled server and warms it with one unit, returning
// the server, its test listener, and the warm record's hex cache key.
func warmPeer(t *testing.T, peerKey string) (*Server, *httptest.Server, string, string) {
	t.Helper()
	s := New(Config{PeerKey: peerKey})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	ddg := ddgFor(t, "fir", 4)
	code, body := post(t, ts, "machine=vliw4&seed=2002", ddg)
	if code != http.StatusOK {
		t.Fatalf("warming request: %d: %s", code, body)
	}
	hot := fetchHot(t, ts, peerKey, 4)
	if len(hot) != 1 {
		t.Fatalf("hot export after one request: %d records", len(hot))
	}
	return s, ts, hex.EncodeToString(hot[0].Key), ddg
}

func fetchHot(t *testing.T, ts *httptest.Server, peerKey string, k int) []*store.Record {
	t.Helper()
	req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/cache/hot?k=%d", ts.URL, k), nil)
	req.Header.Set(PeerKeyHeader, peerKey)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("/cache/hot: %d: %s", resp.StatusCode, b)
	}
	var recs []*store.Record
	if err := json.NewDecoder(resp.Body).Decode(&recs); err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestCacheAPIAuth: every /cache surface requires the cluster peer key, and
// a server without one has no peer surface at all.
func TestCacheAPIAuth(t *testing.T) {
	s, ts, key, _ := warmPeer(t, "cluster-k")
	for _, tc := range []struct{ method, path, presented string }{
		{http.MethodGet, "/cache/hot", ""},
		{http.MethodGet, "/cache/" + key, "wrong"},
		{http.MethodPut, "/cache/" + key, ""},
	} {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if tc.presented != "" {
			req.Header.Set(PeerKeyHeader, tc.presented)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s %s with key %q: %d, want 401", tc.method, tc.path, tc.presented, resp.StatusCode)
		}
	}
	if got := s.StatsSnapshot().Peer.AuthFailures; got != 3 {
		t.Errorf("authFailures = %d, want 3", got)
	}

	// No peer key configured: the surface is disabled even with any header.
	off := New(Config{})
	tsOff := httptest.NewServer(off.Handler())
	defer tsOff.Close()
	req, _ := http.NewRequest(http.MethodGet, tsOff.URL+"/cache/hot", nil)
	req.Header.Set(PeerKeyHeader, "anything")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("disabled peer surface answered %d, want 401", resp.StatusCode)
	}
}

// TestCachePushPull: a record exported from one shard imports into another
// through PUT /cache, becomes a warm hit there, and the gate holds — a
// tampered push and a key-mismatched push are refused.
func TestCachePushPull(t *testing.T) {
	_, tsA, key, ddg := warmPeer(t, "cluster-k")

	// Pull the record by key.
	req, _ := http.NewRequest(http.MethodGet, tsA.URL+"/cache/"+key, nil)
	req.Header.Set(PeerKeyHeader, "cluster-k")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var rec store.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hex.EncodeToString(rec.Key) != key {
		t.Fatalf("GET /cache/%s returned key %x", key, rec.Key)
	}

	// An unknown key is a 404, not an error.
	unknown := strings.Repeat("ab", 32)
	req, _ = http.NewRequest(http.MethodGet, tsA.URL+"/cache/"+unknown, nil)
	req.Header.Set(PeerKeyHeader, "cluster-k")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown key: %d, want 404", resp.StatusCode)
	}

	// Push into a cold shard; the unit then serves as a cache hit.
	b := New(Config{PeerKey: "cluster-k"})
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()
	put := func(ts *httptest.Server, urlKey string, r *store.Record) int {
		body, _ := json.Marshal(r)
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/cache/"+urlKey, bytes.NewReader(body))
		req.Header.Set(PeerKeyHeader, "cluster-k")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := put(tsB, key, &rec); code != http.StatusNoContent {
		t.Fatalf("push: %d, want 204", code)
	}
	code, body := post(t, tsB, "machine=vliw4&seed=2002", ddg)
	if code != http.StatusOK {
		t.Fatalf("post-push request: %d: %s", code, body)
	}
	sched, jr := decodeSchedule(t, body, ddg, "vliw4")
	_ = sched
	if !jr.CacheHit {
		t.Error("pushed record did not serve as a cache hit")
	}
	if got := b.StatsSnapshot().Peer.Imports; got != 1 {
		t.Errorf("imports = %d, want 1", got)
	}

	// Gate: a record parked under someone else's address is refused.
	if code := put(tsB, unknown, &rec); code != http.StatusBadRequest {
		t.Errorf("key-mismatched push: %d, want 400", code)
	}
	// Gate: a tampered schedule is refused with 422.
	bad := rec
	bad.Placements = append(rec.Placements[:0:0], rec.Placements...)
	bad.Placements[0].Start += 10000
	if code := put(tsB, key, &bad); code != http.StatusUnprocessableEntity {
		t.Errorf("tampered push: %d, want 422", code)
	}
	if got := b.StatsSnapshot().Peer.ImportRejected; got != 2 {
		t.Errorf("importRejected = %d, want 2", got)
	}
}

// TestPeerLookupBeforeCompute: a signed hint makes a cold shard fetch the
// record from its previous owner and serve it warm; a forged hint is counted
// and ignored, and the request still computes locally.
func TestPeerLookupBeforeCompute(t *testing.T) {
	_, tsA, _, ddg := warmPeer(t, "cluster-k")

	b := New(Config{PeerKey: "cluster-k"})
	tsB := httptest.NewServer(b.Handler())
	defer tsB.Close()

	send := func(peer, sig string) (int, []byte) {
		req, _ := http.NewRequest(http.MethodPost, tsB.URL+"/schedule?machine=vliw4&seed=2002", strings.NewReader(ddg))
		req.Header.Set("Content-Type", "text/plain")
		if peer != "" {
			req.Header.Set(PeerHeader, peer)
			req.Header.Set(PeerSigHeader, sig)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	// Forged hint first (while still cold): ignored, counted, computed.
	code, body := send(tsA.URL, "deadbeef")
	if code != http.StatusOK {
		t.Fatalf("forged-hint request: %d: %s", code, body)
	}
	var jr scheduleResponse
	if err := json.Unmarshal(body, &jr); err != nil {
		t.Fatal(err)
	}
	if jr.PeerHit {
		t.Fatal("forged hint produced a peer hit")
	}
	st := b.StatsSnapshot().Peer
	if st.BadHints != 1 || st.Lookups != 0 {
		t.Fatalf("after forged hint: badHints=%d lookups=%d, want 1 and 0", st.BadHints, st.Lookups)
	}

	// Fresh cold shard, authentic hint: fetched, gated, served warm.
	c := New(Config{PeerKey: "cluster-k"})
	tsC := httptest.NewServer(c.Handler())
	defer tsC.Close()
	req, _ := http.NewRequest(http.MethodPost, tsC.URL+"/schedule?machine=vliw4&seed=2002", strings.NewReader(ddg))
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set(PeerHeader, tsA.URL)
	req.Header.Set(PeerSigHeader, SignPeerHint("cluster-k", tsA.URL))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hinted request: %d: %s", resp.StatusCode, body)
	}
	_, jr2 := decodeSchedule(t, body, ddg, "vliw4")
	if !jr2.PeerHit || !jr2.CacheHit {
		t.Fatalf("hinted request peerHit=%v cacheHit=%v, want true/true", jr2.PeerHit, jr2.CacheHit)
	}
	stC := c.StatsSnapshot().Peer
	if stC.Lookups != 1 || stC.Hits != 1 {
		t.Errorf("peer lookup counters = %+v, want 1 lookup / 1 hit", stC)
	}

	// Second identical request: local hit now, no second fetch.
	req2, _ := http.NewRequest(http.MethodPost, tsC.URL+"/schedule?machine=vliw4&seed=2002", strings.NewReader(ddg))
	req2.Header.Set(PeerHeader, tsA.URL)
	req2.Header.Set(PeerSigHeader, SignPeerHint("cluster-k", tsA.URL))
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := c.StatsSnapshot().Peer.Lookups; got != 1 {
		t.Errorf("warm shard fetched again: lookups = %d", got)
	}
}
