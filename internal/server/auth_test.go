package server

// Tests for the cluster-facing server surface: tenant API-key auth, shard
// identity in responses, the bounded-cardinality per-tenant latency
// histogram, and breaker half-open probing racing a graceful drain.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/robust"
)

// writeFile is a tiny os.WriteFile wrapper for key-file fixtures.
func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}

// grepLines returns the scrape lines mentioning substr, for error messages.
func grepLines(text, substr string) string {
	var out []string
	for _, l := range strings.Split(text, "\n") {
		if strings.Contains(l, substr) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// postAs sends a /schedule request with explicit tenant/key headers.
func postAs(t *testing.T, ts *httptest.Server, query, tenant, key, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/schedule?"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/plain")
	if tenant != "" {
		req.Header.Set("X-Schedd-Tenant", tenant)
	}
	if key != "" {
		req.Header.Set(TenantKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestTenantKeyAuth pins the identity contract with keys configured: a
// claimed tenant must prove itself, anonymous requests stay first-class, and
// rejections are structured 401s that never reach admission accounting.
func TestTenantKeyAuth(t *testing.T) {
	s := New(Config{
		Seed:       2002,
		TenantKeys: KeySet{"acme": "s3cret"},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	// Anonymous: no identity claim, no key needed.
	if code, body := postAs(t, ts, "machine=vliw4", "", "", ddg); code != http.StatusOK {
		t.Fatalf("anonymous request: %d: %s", code, body)
	}

	expect401 := func(tenant, key string) {
		t.Helper()
		code, body := postAs(t, ts, "machine=vliw4", tenant, key, ddg)
		if code != http.StatusUnauthorized {
			t.Fatalf("tenant %q key %q: got %d, want 401: %s", tenant, key, code, body)
		}
		var eb errorBody
		if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Kind != "unauthorized" {
			t.Fatalf("401 body not structured unauthorized (%v): %s", err, body)
		}
	}
	expect401("acme", "")        // claimed identity, no key
	expect401("acme", "wrong")   // wrong key
	expect401("intruder", "any") // unregistered tenant cannot claim a class

	// The right key is accepted and the work attributed to the tenant.
	code, body := postAs(t, ts, "machine=vliw4", "acme", "s3cret", ddg)
	if code != http.StatusOK {
		t.Fatalf("authorized request: %d: %s", code, body)
	}
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil || resp.Tenant != "acme" {
		t.Fatalf("authorized response tenant = %q (%v)", resp.Tenant, err)
	}

	// Query fallback for clients that cannot set headers.
	if code, body := post(t, ts, "machine=vliw4&tenant=acme&key=s3cret", ddg); code != http.StatusOK {
		t.Fatalf("query-auth request: %d: %s", code, body)
	}

	// Rejections never touched admission: only the three 200s are counted.
	if st := s.StatsSnapshot(); st.Admission.Accepted != 3 {
		t.Errorf("admission accepted %d requests, want 3 (401s must not be admitted)", st.Admission.Accepted)
	}
}

// TestKeySpecAndFile covers the flag/file plumbing for key sets.
func TestKeySpecAndFile(t *testing.T) {
	if tenant, key, err := ParseKeySpec("acme=s3cret"); err != nil || tenant != "acme" || key != "s3cret" {
		t.Errorf("ParseKeySpec: %q %q %v", tenant, key, err)
	}
	for _, bad := range []string{"", "acme", "acme=", "=s3cret", "bad name=x"} {
		if _, _, err := ParseKeySpec(bad); err == nil {
			t.Errorf("ParseKeySpec(%q) accepted", bad)
		}
	}

	dir := t.TempDir()
	path := dir + "/keys.json"
	if err := writeFile(path, `{"acme": "s3cret", "beta": "hunter2"}`); err != nil {
		t.Fatal(err)
	}
	ks, err := LoadKeyFile(path)
	if err != nil || len(ks) != 2 || ks["acme"] != "s3cret" {
		t.Fatalf("LoadKeyFile: %v %v", ks, err)
	}
	if err := writeFile(path, `{"bad name": "x"}`); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyFile(path); err == nil {
		t.Error("LoadKeyFile accepted an invalid tenant name")
	}
}

// TestShardIdentity: with a ShardID configured, every answer carries it in
// the X-Schedd-Shard header, the 200 body, and /stats — the attribution the
// gateway's routing assertions depend on.
func TestShardIdentity(t *testing.T) {
	s := New(Config{Seed: 2002, ShardID: "shard-a"})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	resp, err := http.Post(ts.URL+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(ShardHeader); got != "shard-a" {
		t.Errorf("%s header = %q, want shard-a", ShardHeader, got)
	}
	var sr scheduleResponse
	if err := json.Unmarshal(body, &sr); err != nil || sr.Shard != "shard-a" {
		t.Errorf("response shard = %q (%v)", sr.Shard, err)
	}
	if st := s.StatsSnapshot(); st.Shard != "shard-a" {
		t.Errorf("stats shard = %q", st.Shard)
	}

	// Without a ShardID nothing changes on the wire.
	s2 := New(Config{Seed: 2002})
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	resp2, err := http.Post(ts2.URL+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if got := resp2.Header.Get(ShardHeader); got != "" {
		t.Errorf("shardless server sent %s=%q", ShardHeader, got)
	}
}

// TestTopKTracker pins the slot-granting rules of the bounded-cardinality
// tenant histogram: sustained volume earns a dedicated label, one-off names
// stay in overflow, and slots are finite.
func TestTopKTracker(t *testing.T) {
	tr := newTopKTracker(2, 3)
	for i := 0; i < 2; i++ {
		if got := tr.labelFor("hot"); got != overflowTenant {
			t.Fatalf("observation %d of hot: label %q before threshold", i, got)
		}
	}
	if got := tr.labelFor("hot"); got != "hot" {
		t.Fatalf("threshold-crossing observation: label %q, want hot", got)
	}
	if got := tr.labelFor("hot"); got != "hot" {
		t.Fatalf("slot not sticky: %q", got)
	}
	// Second slot to warm2, then the table is full: warm3 can never graduate.
	for i := 0; i < 3; i++ {
		tr.labelFor("warm2")
	}
	for i := 0; i < 10; i++ {
		if got := tr.labelFor("warm3"); got != overflowTenant {
			t.Fatalf("warm3 got label %q with all slots taken", got)
		}
	}
}

// TestTenantLatencyMetric drives enough traffic through one tenant to earn a
// dedicated histogram label and checks the scrape: the hot tenant appears by
// name, the one-off tenant only in the overflow label.
func TestTenantLatencyMetric(t *testing.T) {
	s := New(Config{Seed: 2002})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	for i := 0; i <= topKSlotThreshold; i++ {
		if code, body := postAs(t, ts, "machine=vliw4", "hot", "", ddg); code != http.StatusOK {
			t.Fatalf("hot request %d: %d: %s", i, code, body)
		}
	}
	if code, body := postAs(t, ts, "machine=vliw4", "oneoff", "", ddg); code != http.StatusOK {
		t.Fatalf("oneoff request: %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	scrape := string(text)
	if !strings.Contains(scrape, `schedd_tenant_latency_seconds_bucket{tenant="hot"`) {
		t.Errorf("hot tenant did not earn a dedicated latency label:\n%s", grepLines(scrape, "tenant_latency"))
	}
	if !strings.Contains(scrape, `schedd_tenant_latency_seconds_bucket{tenant="`+overflowTenant+`"`) {
		t.Errorf("overflow label missing from the scrape:\n%s", grepLines(scrape, "tenant_latency"))
	}
	if strings.Contains(scrape, `schedd_tenant_latency_seconds_bucket{tenant="oneoff"`) {
		t.Errorf("one-off tenant minted its own histogram series:\n%s", grepLines(scrape, "tenant_latency"))
	}
}

// TestBreakerHalfOpenProbeDuringDrain is the drain/half-open race from the
// cluster work: a rung breaker trips, its cooldown expires, and the next
// request — the half-open probe — is mid-flight when the drain starts. The
// drain must finish (the probe's slot must not wedge it), the probe request
// must be served through the ladder rather than answered from memo (a cache
// hit would mean the breaker never actually probed), and afterwards no
// breaker may be stuck half-open.
func TestBreakerHalfOpenProbeDuringDrain(t *testing.T) {
	s := New(Config{
		Workers:        2,
		DefaultTimeout: time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassStall, Seed: 1, Stall: 300 * time.Millisecond},
		Breakers:       robust.BreakerPolicy{Failures: 1, Cooldown: 30 * time.Millisecond},
		Seed:           2002,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Trip: the stalled rung misses its 30ms budget, the fallback rescues,
	// and one recorded failure opens the breaker.
	ddg1 := ddgFor(t, "vvmul", 4)
	if code, body := post(t, ts, "machine=vliw4&timeout=30ms", ddg1); code != http.StatusOK {
		t.Fatalf("tripping request: %d: %s", code, body)
	}
	tripped := false
	for _, b := range s.StatsSnapshot().Breakers {
		if b.State == robust.BreakerOpen {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("no breaker opened after the stalled rung failed")
	}

	// Let the cooldown expire, then launch the half-open probe on a graph the
	// cache has never seen (same machine, so the same breaker scope): the
	// probe must be computed, not memoized.
	time.Sleep(100 * time.Millisecond)
	ddg2 := ddgFor(t, "yuv", 4)
	probeDone := make(chan []byte, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/schedule?machine=vliw4&timeout=30ms", "text/plain", strings.NewReader(ddg2))
		if err != nil {
			probeDone <- nil
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		probeDone <- body
	}()
	deadline := time.Now().Add(2 * time.Second)
	for s.StatsSnapshot().Inflight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe request never went in-flight")
		}
		time.Sleep(time.Millisecond)
	}

	// SIGTERM lands now: the drain must wait out the in-flight probe and
	// finish well inside its budget.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain deadlocked on the half-open probe: %v", err)
	}

	body := <-probeDone
	if body == nil {
		t.Fatal("probe request failed at transport level")
	}
	if err := checkLegal(body, ddg2, "vliw4"); err != nil {
		t.Fatalf("probe response: %v", err)
	}
	var pr scheduleResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.CacheHit || pr.Shared {
		t.Errorf("half-open probe was memoized (cacheHit=%v shared=%v); the breaker never probed", pr.CacheHit, pr.Shared)
	}
	if len(pr.Attempts) == 0 {
		t.Error("probe response carries no ladder attempts; the rung never ran")
	}
	for _, b := range s.StatsSnapshot().Breakers {
		if b.State == robust.BreakerHalfOpen {
			t.Errorf("breaker %s stuck half-open after drain: its probe slot leaked", b.Key)
		}
	}
}
