package server

// The multi-tenant fairness chaos suite — the acceptance proof for the QoS
// layer. The contract: a saturating low-priority flood must not push a
// high-priority tenant's success rate below 95% or its latency past a
// bound; every shed is a structured 429 attributed to the offending tenant
// and cause; quota-exceeded tenants shed without collateral damage; and the
// flooded class itself still makes progress (starvation freedom cuts both
// ways). Run under -race in CI.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// tenantPost sends one /schedule request under a tenant identity and
// returns status, headers, and body.
func tenantPost(ts *httptest.Server, tenant, query, body string) (int, http.Header, []byte, error) {
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/schedule?"+query, strings.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	if tenant != "" {
		req.Header.Set("X-Schedd-Tenant", tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	b, err := readAll(resp)
	return resp.StatusCode, resp.Header, b, err
}

// shedOf decodes a 429 body and returns its cause and tenant attribution.
func shedOf(body []byte) (cause, tenant string, err error) {
	var eb errorBody
	if jerr := json.Unmarshal(body, &eb); jerr != nil || eb.Error.Kind == "" {
		return "", "", fmt.Errorf("429 body is not a structured error: %s", body)
	}
	if eb.Error.Kind != "shed" {
		return "", "", fmt.Errorf("429 kind = %q, want shed: %s", eb.Error.Kind, body)
	}
	if eb.Error.Cause == "" {
		return "", "", fmt.Errorf("shed without a cause: %s", body)
	}
	return eb.Error.Cause, eb.Error.Tenant, nil
}

// TestFairnessFloodIsolation: 8 goroutines of bronze-class flood saturate
// their queue while two vip clients probe sequentially through the gold
// class. The vip probes must essentially never fail or shed, their p99 must
// stay bounded, the flood's sheds must be attributed to the flood tenant
// with cause queue, and the bronze class must still be granted work.
func TestFairnessFloodIsolation(t *testing.T) {
	s := New(Config{
		Workers:   2,
		CacheSize: -1, // every request schedules, so the stall is real work
		Chaos:     &faultinject.Chaos{Class: faultinject.ChaosPassStall, Seed: 1, Stall: 10 * time.Millisecond},
		Tenancy: TenantConfig{
			Classes: []TenantClass{
				{Name: "gold", Weight: 8, MaxQueue: 32},
				{Name: "bronze", Weight: 1, MaxQueue: 3},
			},
			Tenants: map[string]string{"vip": "gold", "flood": "bronze"},
		},
		Seed: 2002,
		Logf: func(string, ...any) {},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	var (
		mu          sync.Mutex
		violations  []string
		floodOK     int
		floodShed   int
		vipOK       int
		vipTotal    int
		vipLatency  []time.Duration
		vipFailures []string
	)
	violate := func(format string, args ...any) {
		mu.Lock()
		violations = append(violations, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	stop := make(chan struct{})
	var floodWG sync.WaitGroup
	for i := 0; i < 8; i++ {
		floodWG.Add(1)
		go func() {
			defer floodWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				code, hdr, body, err := tenantPost(ts, "flood", "machine=vliw4", ddg)
				if err != nil {
					violate("flood transport error: %v", err)
					return
				}
				switch code {
				case http.StatusOK:
					mu.Lock()
					floodOK++
					mu.Unlock()
				case http.StatusTooManyRequests:
					if hdr.Get("Retry-After") == "" {
						violate("flood 429 without Retry-After")
					}
					cause, tenant, serr := shedOf(body)
					if serr != nil {
						violate("%v", serr)
					} else if tenant != "flood" || cause != ShedCauseQueue {
						violate("flood shed attributed to %s/%s, want flood/%s", tenant, cause, ShedCauseQueue)
					}
					mu.Lock()
					floodShed++
					mu.Unlock()
				default:
					violate("flood unexpected status %d: %.200s", code, body)
				}
			}
		}()
	}

	var vipWG sync.WaitGroup
	for i := 0; i < 2; i++ {
		vipWG.Add(1)
		go func() {
			defer vipWG.Done()
			for j := 0; j < 20; j++ {
				start := time.Now()
				code, _, body, err := tenantPost(ts, "vip", "machine=vliw4", ddg)
				elapsed := time.Since(start)
				mu.Lock()
				vipTotal++
				vipLatency = append(vipLatency, elapsed)
				if err == nil && code == http.StatusOK {
					vipOK++
				} else {
					vipFailures = append(vipFailures, fmt.Sprintf("status %d err %v: %.200s", code, err, body))
				}
				mu.Unlock()
			}
		}()
	}
	vipWG.Wait()
	close(stop)
	floodWG.Wait()

	for _, v := range violations {
		t.Error(v)
	}
	if vipTotal == 0 {
		t.Fatal("no vip probes ran")
	}
	rate := float64(vipOK) / float64(vipTotal)
	if rate < 0.95 {
		t.Errorf("vip success rate %.2f under flood, want >= 0.95; failures: %v", rate, vipFailures)
	}
	sort.Slice(vipLatency, func(i, j int) bool { return vipLatency[i] < vipLatency[j] })
	p99 := vipLatency[len(vipLatency)*99/100]
	if p99 > 2*time.Second {
		t.Errorf("vip p99 = %v under flood, want bounded by 2s", p99)
	}
	if floodShed == 0 {
		t.Error("the flood never overflowed its class queue; the test did not saturate")
	}
	if floodOK == 0 {
		t.Error("the flooded class made no progress at all: DRR starved bronze")
	}

	st := s.StatsSnapshot()
	byTenant := map[string]TenantStats{}
	for _, ten := range st.Admission.Tenants {
		byTenant[ten.Tenant] = ten
	}
	vip, flood := byTenant["vip"], byTenant["flood"]
	if vip.ShedQueue != 0 || vip.ShedRate != 0 || vip.ShedQuota != 0 {
		t.Errorf("vip collaterally shed: %+v", vip)
	}
	if vip.Class != "gold" || flood.Class != "bronze" {
		t.Errorf("tenant->class attribution wrong: vip=%q flood=%q", vip.Class, flood.Class)
	}
	if flood.ShedQueue == 0 {
		t.Errorf("flood sheds not attributed in stats: %+v", flood)
	}
	var bronze ClassStats
	for _, cs := range st.Admission.Classes {
		if cs.Class == "bronze" {
			bronze = cs
		}
	}
	if bronze.Granted == 0 {
		t.Error("bronze class was never granted a worker: starvation")
	}
	if got := uint64(floodShed); flood.ShedQueue != got {
		t.Errorf("stats count %d flood queue sheds, clients saw %d", flood.ShedQueue, got)
	}
}

// TestQuotaIsolation: a tenant at its in-flight quota sheds with cause
// quota while an anonymous request sails through — quota overload isolates
// to the offending tenant.
func TestQuotaIsolation(t *testing.T) {
	s := New(Config{
		Workers:   8,
		CacheSize: -1,
		Chaos:     &faultinject.Chaos{Class: faultinject.ChaosPassStall, Seed: 1, Stall: 200 * time.Millisecond},
		Tenancy: TenantConfig{
			Classes: []TenantClass{{Name: "ltd", MaxInflight: 2, MaxQueue: 16}},
			Tenants: map[string]string{"greedy": "ltd"},
		},
		Seed: 2002,
		Logf: func(string, ...any) {},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	var (
		mu         sync.Mutex
		ok, quota  int
		violations []string
	)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, _, body, err := tenantPost(ts, "greedy", "machine=vliw4", ddg)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err != nil:
				violations = append(violations, fmt.Sprintf("transport: %v", err))
			case code == http.StatusOK:
				ok++
			case code == http.StatusTooManyRequests:
				cause, tenant, serr := shedOf(body)
				if serr != nil {
					violations = append(violations, serr.Error())
				} else if cause != ShedCauseQuota || tenant != "greedy" {
					violations = append(violations, fmt.Sprintf("shed %s/%s, want greedy/%s", tenant, cause, ShedCauseQuota))
				}
				quota++
			default:
				violations = append(violations, fmt.Sprintf("status %d: %.200s", code, body))
			}
		}()
	}
	// While greedy is pinned at its quota, an anonymous request must be
	// served untouched.
	time.Sleep(50 * time.Millisecond)
	code, _, body, err := tenantPost(ts, "", "machine=vliw4", ddg)
	if err != nil || code != http.StatusOK {
		t.Errorf("anonymous request during greedy overload: %d %v: %.200s", code, err, body)
	}
	wg.Wait()

	for _, v := range violations {
		t.Error(v)
	}
	if ok < 2 {
		t.Errorf("greedy completed %d requests, want >= its quota of 2", ok)
	}
	if quota == 0 {
		t.Error("greedy never hit its quota; the test did not overload")
	}
	if ok+quota != 6 {
		t.Errorf("greedy outcomes ok=%d quota=%d, want 6 total", ok, quota)
	}

	st := s.StatsSnapshot()
	for _, ten := range st.Admission.Tenants {
		switch ten.Tenant {
		case "greedy":
			if ten.ShedQuota == 0 {
				t.Errorf("greedy quota sheds missing from stats: %+v", ten)
			}
		case AnonymousTenant:
			if ten.ShedQuota != 0 || ten.ShedQueue != 0 || ten.ShedRate != 0 || ten.Completed == 0 {
				t.Errorf("anonymous tenant took collateral damage: %+v", ten)
			}
		}
	}
}
