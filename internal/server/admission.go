package server

import (
	"math"
	"sync"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter: tokens refill at Rate
// per second up to Burst, and each admitted request spends one. It reports
// how long a rejected caller should wait before retrying, which becomes the
// Retry-After header of a 429.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	b.tokens = b.burst
	b.last = now()
	return b
}

// take spends one token if available; otherwise it reports how long until
// one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// admission bounds how much work the server holds at once: a token bucket
// smooths the arrival rate, and a bounded queue caps requests that are
// admitted but not yet finished (waiting + running). Anything beyond either
// bound is shed explicitly with 429 + Retry-After instead of growing an
// unbounded backlog, so overload degrades service quality, never process
// health.
type admission struct {
	bucket *tokenBucket
	queue  chan struct{} // one slot per admitted-but-unfinished request
	work   chan struct{} // one slot per actively scheduling request

	mu         sync.Mutex
	accepted   uint64 // requests admitted past both bounds
	shedQueue  uint64 // rejected: queue full
	shedRate   uint64 // rejected: token bucket empty
	timeouts   uint64 // admitted but expired before or during scheduling
	completed  uint64 // finished with a schedule
	failed     uint64 // finished with a scheduling error
	totalWait  time.Duration
	totalTotal time.Duration
	maxTotal   time.Duration
}

func newAdmission(maxQueue, workers int, rate float64, burst int, now func() time.Time) *admission {
	if maxQueue < 1 {
		maxQueue = 1
	}
	if workers < 1 {
		workers = 1
	}
	if workers > maxQueue {
		workers = maxQueue
	}
	return &admission{
		bucket: newTokenBucket(rate, burst, now),
		queue:  make(chan struct{}, maxQueue),
		work:   make(chan struct{}, workers),
	}
}

// depth is how many admitted requests are currently held (waiting + running).
func (a *admission) depth() int { return len(a.queue) }

// capacity is the queue bound.
func (a *admission) capacity() int { return cap(a.queue) }

// admit applies the rate limiter and the queue bound without blocking. On
// rejection it returns the Retry-After hint; on admission the caller owns a
// queue slot and must call release.
func (a *admission) admit() (ok bool, retryAfter time.Duration) {
	if ok, retry := a.bucket.take(); !ok {
		a.count(&a.shedRate)
		return false, retry
	}
	select {
	case a.queue <- struct{}{}:
		a.count(&a.accepted)
		return true, 0
	default:
		a.count(&a.shedQueue)
		// The queue is full of in-flight work; suggest retrying after a
		// typical request's span rather than immediately.
		return false, time.Second
	}
}

// release frees the queue slot taken by admit.
func (a *admission) release() { <-a.queue }

// acquireWorker blocks until a worker slot frees or done closes. It returns
// false when done won.
func (a *admission) acquireWorker(done <-chan struct{}) bool {
	select {
	case a.work <- struct{}{}:
		return true
	case <-done:
		return false
	}
}

// releaseWorker frees the slot taken by acquireWorker.
func (a *admission) releaseWorker() { <-a.work }

func (a *admission) count(c *uint64) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}

// observe records one finished request's wait-for-worker and total spans.
func (a *admission) observe(wait, total time.Duration, failed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if failed {
		a.failed++
	} else {
		a.completed++
	}
	a.totalWait += wait
	a.totalTotal += total
	if total > a.maxTotal {
		a.maxTotal = total
	}
}

// AdmissionStats is a point-in-time snapshot of the admission counters.
type AdmissionStats struct {
	// Accepted counts requests admitted past rate limiter and queue bound.
	Accepted uint64 `json:"accepted"`
	// ShedQueue and ShedRate count 429s by cause.
	ShedQueue uint64 `json:"shedQueue"`
	ShedRate  uint64 `json:"shedRate"`
	// Timeouts counts admitted requests that hit their deadline.
	Timeouts uint64 `json:"timeouts"`
	// Completed and Failed count finished requests by outcome.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// QueueDepth and QueueCapacity describe the bounded queue right now.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// MeanWaitMs is the mean time admitted requests spent waiting for a
	// worker slot; MeanTotalMs and MaxTotalMs cover admission to response.
	MeanWaitMs  float64 `json:"meanWaitMs"`
	MeanTotalMs float64 `json:"meanTotalMs"`
	MaxTotalMs  float64 `json:"maxTotalMs"`
}

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AdmissionStats{
		Accepted:      a.accepted,
		ShedQueue:     a.shedQueue,
		ShedRate:      a.shedRate,
		Timeouts:      a.timeouts,
		Completed:     a.completed,
		Failed:        a.failed,
		QueueDepth:    len(a.queue),
		QueueCapacity: cap(a.queue),
	}
	if n := a.completed + a.failed; n > 0 {
		st.MeanWaitMs = float64(a.totalWait.Milliseconds()) / float64(n)
		st.MeanTotalMs = float64(a.totalTotal.Milliseconds()) / float64(n)
	}
	st.MaxTotalMs = float64(a.maxTotal.Milliseconds())
	return st
}
