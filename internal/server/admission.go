package server

import (
	"math"
	"sort"
	"sync"
	"time"
)

// tokenBucket is a classic token-bucket rate limiter: tokens refill at Rate
// per second up to Burst, and each admitted request spends one. It reports
// how long a rejected caller should wait before retrying, which becomes the
// Retry-After header of a 429.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // tokens per second; <= 0 disables the limiter
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int, now func() time.Time) *tokenBucket {
	if burst < 1 {
		burst = 1
	}
	b := &tokenBucket{rate: rate, burst: float64(burst), now: now}
	b.tokens = b.burst
	b.last = now()
	return b
}

// take spends one token if available; otherwise it reports how long until
// one accrues.
func (b *tokenBucket) take() (ok bool, retryAfter time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens = math.Min(b.burst, b.tokens+b.rate*now.Sub(b.last).Seconds())
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// Shed causes, as reported in 429 bodies, stats, and metric labels.
const (
	// ShedCauseRate: the server-wide token bucket was empty.
	ShedCauseRate = "rate"
	// ShedCauseTenantRate: the tenant's own token bucket was empty.
	ShedCauseTenantRate = "tenant-rate"
	// ShedCauseQuota: the tenant is at its per-tenant in-flight quota.
	ShedCauseQuota = "quota"
	// ShedCauseQueue: the tenant's class queue is full.
	ShedCauseQueue = "queue"
)

// admission bounds how much work the server holds at once, and divides that
// capacity fairly between tenants:
//
//	request ──► global token bucket ──► tenant bucket ──► tenant quota
//	        ──► class queue bound ──► [class FIFO] ─┐
//	                                                 ├─ DRR dequeuer ─► worker
//	                         [other class FIFOs] ───┘
//
// The global token bucket and the sum of class queue bounds play the roles
// the single bucket + queue played before tenancy; inside them, each tenant
// passes its own token bucket and in-flight quota, takes a slot in its
// class's bounded queue, and waits for a worker grant from a deficit-
// round-robin dequeuer that serves each class up to Weight grants per round.
// Every bound violation is shed explicitly with 429 + Retry-After and
// attributed to the offending tenant and cause, so overload isolates
// instead of collapsing, and a backlogged class can never starve another:
// any class with queued work is granted at least once per round.
type admission struct {
	bucket *tokenBucket // server-wide arrival smoother (backward compatible)
	now    func() time.Time

	mu       sync.Mutex
	classes  []*classState // DRR scan order
	byClass  map[string]*classState
	def      *classState // class for unknown tenants / no header
	assign   map[string]string
	tenants  map[string]*tenantState
	rr       int // DRR pointer into classes
	waiting  int // waiters queued across all classes
	free     int // free worker slots
	workers  int
	totalCap int // sum of class queue bounds

	accepted   uint64 // requests admitted past every bound
	shedQueue  uint64 // rejected: class queue full
	shedRate   uint64 // rejected: global or tenant token bucket empty
	shedQuota  uint64 // rejected: per-tenant in-flight quota
	timeouts   uint64 // admitted but expired before or during scheduling
	completed  uint64 // finished with a schedule
	failed     uint64 // finished with a scheduling error
	totalWait  time.Duration
	totalTotal time.Duration
	maxTotal   time.Duration
}

// classState is one priority class's live admission state.
type classState struct {
	cfg     TenantClass
	held    int // admitted-but-unfinished requests in this class
	waiters []*waiter
	deficit int    // DRR deficit remaining this round
	granted uint64 // worker grants handed to this class

	accepted, shedQueue, shedRate, shedQuota uint64
}

// tenantState is one tenant's live admission state; created lazily on first
// sight, bounded by maxTrackedTenants per server.
type tenantState struct {
	name     string
	class    *classState
	bucket   *tokenBucket
	inflight int // admitted-but-unfinished requests by this tenant

	accepted, shedQueue, shedRate, shedQuota uint64
	timeouts, completed, failed              uint64
	totalTotal, maxTotal                     time.Duration
}

// waiter is one admitted request waiting for a worker grant. state moves
// 0 (pending) -> 1 (granted, ready closed) or 0 -> 2 (abandoned); the
// transition is decided under admission.mu, so a grant is never lost to a
// request that already gave up, and an abandoned waiter never consumes a
// slot.
type waiter struct {
	ready chan struct{}
	state int // guarded by admission.mu
}

// newAdmission builds the weighted-fair admission layer. Classes come from
// the tenant config; with none configured a lone default class inherits the
// server-wide bounds, which reproduces pre-tenancy behavior exactly.
func newAdmission(tc TenantConfig, maxQueue, workers int, rate float64, burst int, now func() time.Time) *admission {
	if maxQueue < 1 {
		maxQueue = 1
	}
	if workers < 1 {
		workers = 1
	}
	a := &admission{
		bucket:  newTokenBucket(rate, burst, now),
		now:     now,
		byClass: make(map[string]*classState),
		tenants: make(map[string]*tenantState),
		assign:  make(map[string]string, len(tc.Tenants)),
		free:    workers,
		workers: workers,
	}
	defName := tc.DefaultClass
	if defName == "" {
		defName = DefaultClassName
	}
	classes := append([]TenantClass(nil), tc.Classes...)
	found := false
	for _, c := range classes {
		if c.Name == defName {
			found = true
		}
	}
	if !found {
		// The fallback class for unknown tenants always exists; with no
		// tenancy configured at all it is the only class, and inherits the
		// server-wide bounds below — the exact pre-tenancy behavior.
		classes = append(classes, TenantClass{Name: defName})
	}
	for _, c := range classes {
		if c.Weight < 1 {
			c.Weight = 1
		}
		if c.MaxQueue < 1 {
			c.MaxQueue = maxQueue
		}
		if c.RatePerSec > 0 && c.Burst < 1 {
			c.Burst = int(math.Max(1, 2*c.RatePerSec))
		}
		cs := &classState{cfg: c}
		a.classes = append(a.classes, cs)
		a.byClass[c.Name] = cs
		a.totalCap += c.MaxQueue
	}
	a.def = a.byClass[defName]
	if a.def == nil { // misconfiguration defended at runtime: fall back
		a.def = a.classes[len(a.classes)-1]
	}
	for t, cl := range tc.Tenants {
		if _, ok := a.byClass[cl]; ok {
			a.assign[t] = cl
		}
	}
	if workers > a.totalCap {
		a.free = a.totalCap
		a.workers = a.totalCap
	}
	return a
}

// tenantFor resolves (lazily creating) the tenant state for a request
// identity. Empty means no header: the anonymous tenant in the default
// class. Callers hold a.mu.
func (a *admission) tenantFor(name string) *tenantState {
	if name == "" {
		name = AnonymousTenant
	}
	if t, ok := a.tenants[name]; ok {
		return t
	}
	cls := a.def
	if cn, ok := a.assign[name]; ok {
		cls = a.byClass[cn]
	}
	if len(a.tenants) >= maxTrackedTenants {
		// Cardinality bound hit: unseen tenants share their class's
		// overflow identity (still class-isolated, no longer per-tenant).
		oname := overflowTenant + ":" + cls.cfg.Name
		if t, ok := a.tenants[oname]; ok {
			return t
		}
		name = oname
	}
	t := &tenantState{name: name, class: cls}
	if cls.cfg.RatePerSec > 0 {
		t.bucket = newTokenBucket(cls.cfg.RatePerSec, cls.cfg.Burst, a.now)
	}
	a.tenants[name] = t
	return t
}

// admitGrant is one admitted request's hold on its class queue slot and
// tenant quota. release is idempotent: the slot is freed exactly once no
// matter how many paths (defer, panic unwinding, explicit) call it.
type admitGrant struct {
	a *admission
	t *tenantState
	c *classState

	mu       sync.Mutex
	released bool
}

// Tenant and Class name the grant for response attribution.
func (g *admitGrant) Tenant() string { return g.t.name }
func (g *admitGrant) Class() string  { return g.c.cfg.Name }

// release frees the queue slot and quota taken by admit, exactly once.
func (g *admitGrant) release() {
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	a := g.a
	a.mu.Lock()
	g.c.held--
	g.t.inflight--
	a.mu.Unlock()
}

// depth is how many admitted requests are currently held (waiting + running).
func (a *admission) depth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, c := range a.classes {
		n += c.held
	}
	return n
}

// capacity is the total queue bound across classes.
func (a *admission) capacity() int { return a.totalCap }

// admit applies, in order: the server-wide rate limiter, the tenant's own
// token bucket, the tenant's in-flight quota, and the tenant's class queue
// bound — all without blocking. On rejection it returns the shed cause and
// a Retry-After hint; on admission the caller owns a grant and must call
// release exactly once (it is safe to call more).
func (a *admission) admit(tenant string) (g *admitGrant, cause string, retryAfter time.Duration) {
	if ok, retry := a.bucket.take(); !ok {
		a.mu.Lock()
		t := a.tenantFor(tenant)
		a.shedRate++
		t.shedRate++
		t.class.shedRate++
		a.mu.Unlock()
		return nil, ShedCauseRate, retry
	}
	a.mu.Lock()
	t := a.tenantFor(tenant)
	c := t.class
	// The per-tenant bucket takes under a.mu: bucket contention is per
	// tenant and the critical section is tiny.
	if ok, retry := t.bucket.take(); !ok {
		a.shedRate++
		t.shedRate++
		c.shedRate++
		a.mu.Unlock()
		return nil, ShedCauseTenantRate, retry
	}
	if q := c.cfg.MaxInflight; q > 0 && t.inflight >= q {
		a.shedQuota++
		t.shedQuota++
		c.shedQuota++
		a.mu.Unlock()
		return nil, ShedCauseQuota, time.Second
	}
	if c.held >= c.cfg.MaxQueue {
		a.shedQueue++
		t.shedQueue++
		c.shedQueue++
		a.mu.Unlock()
		// The class queue is full of in-flight work; suggest retrying
		// after a typical request's span rather than immediately.
		return nil, ShedCauseQueue, time.Second
	}
	c.held++
	t.inflight++
	a.accepted++
	t.accepted++
	c.accepted++
	a.mu.Unlock()
	return &admitGrant{a: a, t: t, c: c}, "", 0
}

// acquireWorker waits for a worker grant from the weighted-fair dequeuer,
// or gives up when done closes. Requests always join their class FIFO and
// take the next DRR grant — even with free slots — so ordering stays fair.
func (a *admission) acquireWorker(g *admitGrant, done <-chan struct{}) bool {
	w := &waiter{ready: make(chan struct{})}
	a.mu.Lock()
	g.c.waiters = append(g.c.waiters, w)
	a.waiting++
	a.dispatchLocked()
	a.mu.Unlock()
	select {
	case <-w.ready:
		return true
	case <-done:
		a.mu.Lock()
		if w.state == 0 {
			w.state = 2 // abandoned: the dispatcher will skip us
			a.mu.Unlock()
			return false
		}
		a.mu.Unlock()
		// Granted concurrently with our deadline: we own a slot; give it
		// back so the grant is not leaked.
		<-w.ready
		a.releaseWorker()
		return false
	}
}

// releaseWorker frees a worker slot and hands it to the next waiter.
func (a *admission) releaseWorker() {
	a.mu.Lock()
	a.free++
	a.dispatchLocked()
	a.mu.Unlock()
}

// dispatchLocked hands free worker slots to waiters by deficit round robin:
// the scan pointer stays on a class until its per-round deficit (= Weight)
// is spent or its queue empties, then moves on. Abandoned waiters are
// pruned without consuming deficit. Callers hold a.mu.
func (a *admission) dispatchLocked() {
	for a.free > 0 {
		w, c := a.nextWaiterLocked()
		if w == nil {
			return
		}
		a.free--
		c.granted++
		w.state = 1
		close(w.ready)
	}
}

// nextWaiterLocked picks the next waiter under DRR, or nil when no class
// has live waiters.
func (a *admission) nextWaiterLocked() (*waiter, *classState) {
	n := len(a.classes)
	for scanned := 0; scanned < n; {
		c := a.classes[a.rr]
		// Drop abandoned waiters at the head; they spend no deficit.
		for len(c.waiters) > 0 && c.waiters[0].state == 2 {
			c.waiters = c.waiters[1:]
			a.waiting--
		}
		if len(c.waiters) == 0 {
			c.deficit = 0 // an empty class forfeits the rest of its round
			a.rr = (a.rr + 1) % n
			scanned++
			continue
		}
		if c.deficit <= 0 {
			c.deficit = c.cfg.Weight // new round for this class
		}
		w := c.waiters[0]
		c.waiters = c.waiters[1:]
		a.waiting--
		c.deficit--
		if c.deficit <= 0 {
			a.rr = (a.rr + 1) % n // quantum spent: next class's turn
		}
		return w, c
	}
	return nil, nil
}

// count increments one aggregate counter.
func (a *admission) count(c *uint64) {
	a.mu.Lock()
	*c++
	a.mu.Unlock()
}

// countTimeout attributes a deadline expiry to the aggregate and, when the
// request was admitted, its tenant.
func (a *admission) countTimeout(g *admitGrant) {
	a.mu.Lock()
	a.timeouts++
	if g != nil {
		g.t.timeouts++
	}
	a.mu.Unlock()
}

// observe records one finished request's wait-for-worker and total spans,
// in aggregate and against its tenant.
func (a *admission) observe(g *admitGrant, wait, total time.Duration, failed bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if failed {
		a.failed++
		g.t.failed++
	} else {
		a.completed++
		g.t.completed++
	}
	a.totalWait += wait
	a.totalTotal += total
	if total > a.maxTotal {
		a.maxTotal = total
	}
	g.t.totalTotal += total
	if total > g.t.maxTotal {
		g.t.maxTotal = total
	}
}

// TenantStats is one tenant's admission accounting in /stats.
type TenantStats struct {
	Tenant string `json:"tenant"`
	Class  string `json:"class"`
	// Accepted counts requests past every admission bound; the Shed*
	// counters split 429s by cause (rate covers global + tenant buckets).
	Accepted  uint64 `json:"accepted"`
	ShedRate  uint64 `json:"shedRate"`
	ShedQueue uint64 `json:"shedQueue"`
	ShedQuota uint64 `json:"shedQuota"`
	// Timeouts, Completed, Failed count admitted requests by outcome.
	Timeouts  uint64 `json:"timeouts"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// Inflight is the tenant's admitted-but-unfinished requests right now.
	Inflight int `json:"inflight"`
	// MeanTotalMs and MaxTotalMs cover admission to response.
	MeanTotalMs float64 `json:"meanTotalMs"`
	MaxTotalMs  float64 `json:"maxTotalMs"`
}

// ClassStats is one priority class's admission accounting in /stats.
type ClassStats struct {
	Class  string `json:"class"`
	Weight int    `json:"weight"`
	// QueueDepth and QueueCapacity describe the class's bounded queue;
	// Waiting is how many of QueueDepth are still waiting for a worker.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	Waiting       int `json:"waiting"`
	// Granted counts worker grants the DRR dequeuer gave this class.
	Granted   uint64 `json:"granted"`
	Accepted  uint64 `json:"accepted"`
	ShedRate  uint64 `json:"shedRate"`
	ShedQueue uint64 `json:"shedQueue"`
	ShedQuota uint64 `json:"shedQuota"`
}

// AdmissionStats is a point-in-time snapshot of the admission counters.
type AdmissionStats struct {
	// Accepted counts requests admitted past rate limiter and queue bound.
	Accepted uint64 `json:"accepted"`
	// ShedQueue, ShedRate and ShedQuota count 429s by cause.
	ShedQueue uint64 `json:"shedQueue"`
	ShedRate  uint64 `json:"shedRate"`
	ShedQuota uint64 `json:"shedQuota"`
	// Timeouts counts admitted requests that hit their deadline.
	Timeouts uint64 `json:"timeouts"`
	// Completed and Failed count finished requests by outcome.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// QueueDepth and QueueCapacity describe the bounded queues, summed
	// across classes.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// MeanWaitMs is the mean time admitted requests spent waiting for a
	// worker slot; MeanTotalMs and MaxTotalMs cover admission to response.
	MeanWaitMs  float64 `json:"meanWaitMs"`
	MeanTotalMs float64 `json:"meanTotalMs"`
	MaxTotalMs  float64 `json:"maxTotalMs"`
	// Classes and Tenants break the same accounting down per priority
	// class (config order) and per tenant (name order).
	Classes []ClassStats  `json:"classes,omitempty"`
	Tenants []TenantStats `json:"tenants,omitempty"`
}

func (a *admission) stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := AdmissionStats{
		Accepted:      a.accepted,
		ShedQueue:     a.shedQueue,
		ShedRate:      a.shedRate,
		ShedQuota:     a.shedQuota,
		Timeouts:      a.timeouts,
		Completed:     a.completed,
		Failed:        a.failed,
		QueueCapacity: a.totalCap,
	}
	for _, c := range a.classes {
		st.QueueDepth += c.held
		st.Classes = append(st.Classes, ClassStats{
			Class:         c.cfg.Name,
			Weight:        c.cfg.Weight,
			QueueDepth:    c.held,
			QueueCapacity: c.cfg.MaxQueue,
			Waiting:       len(c.waiters),
			Granted:       c.granted,
			Accepted:      c.accepted,
			ShedRate:      c.shedRate,
			ShedQueue:     c.shedQueue,
			ShedQuota:     c.shedQuota,
		})
	}
	for _, t := range a.tenants {
		ts := TenantStats{
			Tenant:    t.name,
			Class:     t.class.cfg.Name,
			Accepted:  t.accepted,
			ShedRate:  t.shedRate,
			ShedQueue: t.shedQueue,
			ShedQuota: t.shedQuota,
			Timeouts:  t.timeouts,
			Completed: t.completed,
			Failed:    t.failed,
			Inflight:  t.inflight,
		}
		if n := t.completed + t.failed; n > 0 {
			ts.MeanTotalMs = float64(t.totalTotal.Milliseconds()) / float64(n)
		}
		ts.MaxTotalMs = float64(t.maxTotal.Milliseconds())
		st.Tenants = append(st.Tenants, ts)
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	if n := a.completed + a.failed; n > 0 {
		st.MeanWaitMs = float64(a.totalWait.Milliseconds()) / float64(n)
		st.MeanTotalMs = float64(a.totalTotal.Milliseconds()) / float64(n)
	}
	st.MaxTotalMs = float64(a.maxTotal.Milliseconds())
	return st
}
