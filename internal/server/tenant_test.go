package server

// Unit tests for the multi-tenant QoS layer: class-spec parsing, the
// deficit-round-robin dequeue order, per-tenant buckets and quotas, the
// exactly-once grant release (including under a handler panic), and the
// backward-compatible default class.

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestParseClassSpec(t *testing.T) {
	good := []struct {
		spec string
		want TenantClass
	}{
		{"gold", TenantClass{Name: "gold"}},
		{"gold:weight=8", TenantClass{Name: "gold", Weight: 8}},
		{"b.ronze-2:weight=2,queue=16,rate=10.5,burst=20,inflight=4",
			TenantClass{Name: "b.ronze-2", Weight: 2, MaxQueue: 16, RatePerSec: 10.5, Burst: 20, MaxInflight: 4}},
	}
	for _, tc := range good {
		got, err := ParseClassSpec(tc.spec)
		if err != nil {
			t.Errorf("ParseClassSpec(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseClassSpec(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
	bad := []string{
		"", ":weight=1", "gold:weight", "gold:weight=", "gold:weight=-1",
		"gold:weight=x", "gold:rate=-2", "gold:frobs=3", "bad name:weight=1",
		strings.Repeat("x", 65),
	}
	for _, spec := range bad {
		if _, err := ParseClassSpec(spec); err == nil {
			t.Errorf("ParseClassSpec(%q) accepted", spec)
		}
	}
}

func TestValidateTenancy(t *testing.T) {
	ok := TenantConfig{
		Classes: []TenantClass{{Name: "gold", Weight: 8}, {Name: "bronze"}},
		Tenants: map[string]string{"vip": "gold", "misc": "default"},
	}
	if err := ValidateTenancy(ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := ValidateTenancy(TenantConfig{}); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
	bad := []TenantConfig{
		{Classes: []TenantClass{{Name: "gold"}, {Name: "gold"}}},
		{Classes: []TenantClass{{Name: "has space"}}},
		{Classes: []TenantClass{{Name: "gold", Weight: -1}}},
		{Tenants: map[string]string{"vip": "nosuch"}},
		{Tenants: map[string]string{"bad name": "default"}},
		{Classes: []TenantClass{{Name: "gold"}}, DefaultClass: "nosuch"},
	}
	for i, tc := range bad {
		if err := ValidateTenancy(tc); err == nil {
			t.Errorf("bad config %d accepted: %+v", i, tc)
		}
	}
}

func TestValidTenantName(t *testing.T) {
	for _, s := range []string{"a", "acme-corp", "A.B_c-9", strings.Repeat("x", 64)} {
		if !ValidTenantName(s) {
			t.Errorf("ValidTenantName(%q) = false", s)
		}
	}
	for _, s := range []string{"", " ", "a b", "a/b", "a\nb", "é", strings.Repeat("x", 65)} {
		if ValidTenantName(s) {
			t.Errorf("ValidTenantName(%q) = true", s)
		}
	}
}

// qosAdmission builds an admission with a gold(weight 3) and bronze(weight
// 1) class for the DRR tests.
func qosAdmission(workers int) *admission {
	return newAdmission(TenantConfig{
		Classes: []TenantClass{
			{Name: "gold", Weight: 3, MaxQueue: 64},
			{Name: "bronze", Weight: 1, MaxQueue: 64},
		},
		Tenants: map[string]string{"vip": "gold", "bulk": "bronze"},
	}, 64, workers, 0, 0, time.Now)
}

// TestDRRDequeueOrder pins the weighted-fair interleaving: with gold at
// weight 3 and bronze at weight 1 both backlogged, grants go
// G G G B G G G B ... and the bronze tail drains once gold empties —
// no class ever starves.
func TestDRRDequeueOrder(t *testing.T) {
	a := qosAdmission(1)
	gold, bronze := a.byClass["gold"], a.byClass["bronze"]

	// Occupy the only worker slot, then backlog both classes directly.
	a.mu.Lock()
	a.free = 0
	enqueue := func(c *classState, n int) []*waiter {
		ws := make([]*waiter, n)
		for i := range ws {
			ws[i] = &waiter{ready: make(chan struct{})}
			c.waiters = append(c.waiters, ws[i])
			a.waiting++
		}
		return ws
	}
	gws := enqueue(gold, 8)
	bws := enqueue(bronze, 4)
	a.mu.Unlock()

	label := func(w *waiter) string {
		for _, g := range gws {
			if g == w {
				return "G"
			}
		}
		for _, b := range bws {
			if b == w {
				return "B"
			}
		}
		return "?"
	}
	var order []string
	for i := 0; i < 12; i++ {
		before := make(map[*waiter]bool)
		for _, w := range append(append([]*waiter{}, gws...), bws...) {
			before[w] = w.state == 1
		}
		a.releaseWorker()
		granted := 0
		for _, w := range append(append([]*waiter{}, gws...), bws...) {
			if w.state == 1 && !before[w] {
				order = append(order, label(w))
				granted++
			}
		}
		if granted != 1 {
			t.Fatalf("release %d granted %d waiters, want exactly 1", i, granted)
		}
	}
	want := "G G G B G G G B G G B B"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("DRR grant order:\n got %s\nwant %s", got, want)
	}
	// FIFO within each class.
	for i := 1; i < len(gws); i++ {
		if gws[i-1].state != 1 || gws[i].state != 1 {
			t.Fatalf("gold waiter %d not granted", i)
		}
	}
}

// TestDRRSkipsAbandonedWaiters: a waiter whose request gave up (deadline)
// must not consume a grant or deficit.
func TestDRRSkipsAbandonedWaiters(t *testing.T) {
	a := qosAdmission(1)
	gold := a.byClass["gold"]
	a.mu.Lock()
	a.free = 0
	w1 := &waiter{ready: make(chan struct{}), state: 2} // abandoned
	w2 := &waiter{ready: make(chan struct{})}
	gold.waiters = append(gold.waiters, w1, w2)
	a.waiting += 2
	a.mu.Unlock()

	a.releaseWorker()
	if w1.state != 2 {
		t.Error("abandoned waiter resurrected")
	}
	if w2.state != 1 {
		t.Error("live waiter behind an abandoned one not granted")
	}
}

func TestPerTenantRateBucket(t *testing.T) {
	a := newAdmission(TenantConfig{
		Classes: []TenantClass{{Name: "metered", RatePerSec: 0.0001, Burst: 1, MaxQueue: 8}},
		Tenants: map[string]string{"t1": "metered", "t2": "metered"},
	}, 64, 4, 0, 0, time.Now)

	if g, cause, _ := a.admit("t1"); g == nil {
		t.Fatalf("t1 first admit shed: %s", cause)
	}
	g, cause, retry := a.admit("t1")
	if g != nil || cause != ShedCauseTenantRate {
		t.Fatalf("t1 second admit: grant=%v cause=%q, want tenant-rate shed", g != nil, cause)
	}
	if retry <= 0 {
		t.Error("tenant-rate shed carries no Retry-After hint")
	}
	// t2 has its own bucket: t1 exhausting its tokens must not shed t2.
	if g, cause, _ := a.admit("t2"); g == nil {
		t.Fatalf("t2 collateral shed: %s", cause)
	}
	st := a.stats()
	if st.ShedRate != 1 {
		t.Errorf("ShedRate = %d, want 1", st.ShedRate)
	}
	for _, ts := range st.Tenants {
		if ts.Tenant == "t2" && ts.ShedRate != 0 {
			t.Errorf("t2 charged for t1's bucket: %+v", ts)
		}
	}
}

func TestPerTenantInflightQuota(t *testing.T) {
	a := newAdmission(TenantConfig{
		Classes: []TenantClass{{Name: "ltd", MaxInflight: 2, MaxQueue: 16}},
		Tenants: map[string]string{"greedy": "ltd", "modest": "ltd"},
	}, 64, 8, 0, 0, time.Now)

	g1, _, _ := a.admit("greedy")
	g2, _, _ := a.admit("greedy")
	if g1 == nil || g2 == nil {
		t.Fatal("admits within quota shed")
	}
	g3, cause, _ := a.admit("greedy")
	if g3 != nil || cause != ShedCauseQuota {
		t.Fatalf("over-quota admit: grant=%v cause=%q, want quota shed", g3 != nil, cause)
	}
	// The quota is per tenant, not per class: modest is unaffected.
	if g, cause, _ := a.admit("modest"); g == nil {
		t.Fatalf("modest shed by greedy's quota: %s", cause)
	}
	g1.release()
	if g, cause, _ := a.admit("greedy"); g == nil {
		t.Fatalf("admit after release shed: %s", cause)
	}
	if st := a.stats(); st.ShedQuota != 1 {
		t.Errorf("ShedQuota = %d, want 1", st.ShedQuota)
	}
}

func TestClassQueueBoundSheds(t *testing.T) {
	a := newAdmission(TenantConfig{
		Classes: []TenantClass{{Name: "small", MaxQueue: 1}, {Name: "big", MaxQueue: 8}},
		Tenants: map[string]string{"s1": "small", "s2": "small", "b1": "big"},
	}, 64, 4, 0, 0, time.Now)

	if g, cause, _ := a.admit("s1"); g == nil {
		t.Fatalf("s1 shed: %s", cause)
	}
	g, cause, _ := a.admit("s2")
	if g != nil || cause != ShedCauseQueue {
		t.Fatalf("small-class overflow: grant=%v cause=%q, want queue shed", g != nil, cause)
	}
	// The shed isolates to the full class.
	if g, cause, _ := a.admit("b1"); g == nil {
		t.Fatalf("b1 collateral shed: %s", cause)
	}
}

// TestGrantReleaseIdempotent: double release must not free two slots.
func TestGrantReleaseIdempotent(t *testing.T) {
	a := newAdmission(TenantConfig{}, 4, 4, 0, 0, time.Now)
	g, _, _ := a.admit("")
	if g == nil {
		t.Fatal("admit failed")
	}
	if d := a.depth(); d != 1 {
		t.Fatalf("depth = %d after admit, want 1", d)
	}
	g.release()
	g.release()
	g.release()
	if d := a.depth(); d != 0 {
		t.Fatalf("depth = %d after triple release, want 0 (slot freed more than once?)", d)
	}
}

// TestTenantOverflowBucket: past the tracked-tenant cap, unseen tenants
// share a per-class overflow identity instead of growing the map.
func TestTenantOverflowBucket(t *testing.T) {
	a := newAdmission(TenantConfig{}, 64, 4, 0, 0, time.Now)
	a.mu.Lock()
	for i := 0; i < maxTrackedTenants; i++ {
		a.tenantFor("filler-" + strconv.Itoa(i))
	}
	n := len(a.tenants)
	t1 := a.tenantFor("straggler-1")
	t2 := a.tenantFor("straggler-2")
	after := len(a.tenants)
	a.mu.Unlock()
	if n != maxTrackedTenants {
		t.Fatalf("tracked %d tenants, want %d", n, maxTrackedTenants)
	}
	if t1 != t2 || !strings.HasPrefix(t1.name, overflowTenant) {
		t.Errorf("stragglers got distinct states %q/%q, want a shared overflow bucket", t1.name, t2.name)
	}
	if after != maxTrackedTenants+1 {
		t.Errorf("tenant map grew to %d, want cap+1 overflow entry", after)
	}
}

// TestPanicReleasesQueueSlotExactlyOnce is the regression test for the
// release-leak risk: a handler panic after admission must free the queue
// slot (via the deferred idempotent release, before the recovery middleware
// answers), and free it exactly once — the next request on a MaxQueue=1
// server must be admitted, not shed.
func TestPanicReleasesQueueSlotExactlyOnce(t *testing.T) {
	s := New(Config{MaxQueue: 1, Workers: 1, Seed: 2002, Logf: func(string, ...any) {}})
	boom := true
	s.testHookPostAdmit = func() {
		if boom {
			panic("post-admission handler bug")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	code, body := post(t, ts, "machine=vliw4", ddg)
	if code != http.StatusInternalServerError {
		t.Fatalf("panicking request: %d, want 500: %s", code, body)
	}
	if e := decodeError(t, body); e.Kind != "panic" {
		t.Fatalf("kind = %q, want panic", e.Kind)
	}
	if d := s.adm.depth(); d != 0 {
		t.Fatalf("queue depth %d after panic, want 0: the slot leaked", d)
	}
	// The single queue slot must still be usable — and only once.
	boom = false
	if code, body := post(t, ts, "machine=vliw4", ddg); code != http.StatusOK {
		t.Fatalf("request after panic: %d, want 200 (leaked slot?): %s", code, body)
	}
	if s.adm.depth() != 0 {
		t.Fatalf("queue depth %d after served request, want 0", s.adm.depth())
	}
	if got := s.panics.Load(); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}
}

// TestTenantHTTPValidation: malformed tenant identities are structured 400s
// whether they arrive by header or query, and never reach admission.
func TestTenantHTTPValidation(t *testing.T) {
	s := New(Config{Seed: 2002, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	for _, bad := range []string{"has space", strings.Repeat("x", 65), "a/b", "%25"} {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/schedule?machine=vliw4", strings.NewReader(ddg))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Schedd-Tenant", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := readAll(resp)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("tenant %q: status %d, want 400: %s", bad, resp.StatusCode, body)
			continue
		}
		if e := decodeError(t, body); e.Kind != "bad-request" {
			t.Errorf("tenant %q: kind %q, want bad-request", bad, e.Kind)
		}
	}
	if st := s.StatsSnapshot(); st.Admission.Accepted != 0 {
		t.Errorf("malformed tenants charged admission: %+v", st.Admission)
	}
	// Query fallback works for valid names.
	code, body := post(t, ts, "machine=vliw4&tenant=acme", ddg)
	if code != http.StatusOK {
		t.Fatalf("?tenant=acme: %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"tenant": "acme"`) {
		t.Errorf("response does not attribute the tenant: %s", body)
	}
}

// TestTenantBackwardCompatDefault: with tenancy configured, a request
// without a tenant header lands in the default class under the anonymous
// identity and serves exactly like before.
func TestTenantBackwardCompatDefault(t *testing.T) {
	s := New(Config{
		Seed: 2002,
		Tenancy: TenantConfig{
			Classes: []TenantClass{{Name: "gold", Weight: 8, MaxQueue: 8}},
			Tenants: map[string]string{"vip": "gold"},
		},
		Logf: func(string, ...any) {},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	code, body := post(t, ts, "machine=vliw4", ddg)
	if code != http.StatusOK {
		t.Fatalf("headerless request: %d: %s", code, body)
	}
	if !strings.Contains(string(body), `"tenant": "`+AnonymousTenant+`"`) ||
		!strings.Contains(string(body), `"class": "`+DefaultClassName+`"`) {
		t.Errorf("headerless request not attributed to %s/%s: %.300s", AnonymousTenant, DefaultClassName, body)
	}
	// An unknown (unassigned) tenant also lands in the default class but
	// keeps its own accounting row.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/schedule?machine=vliw4", strings.NewReader(ddg))
	req.Header.Set("X-Schedd-Tenant", "stranger")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := readAll(resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown tenant: %d: %s", resp.StatusCode, body2)
	}
	if !strings.Contains(string(body2), `"class": "`+DefaultClassName+`"`) {
		t.Errorf("unknown tenant not in default class: %.300s", body2)
	}

	st := s.StatsSnapshot()
	names := map[string]string{}
	for _, ts := range st.Admission.Tenants {
		names[ts.Tenant] = ts.Class
	}
	if names[AnonymousTenant] != DefaultClassName || names["stranger"] != DefaultClassName {
		t.Errorf("tenant rows = %v, want anonymous and stranger in default", names)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}
