package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/faultinject"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// ddgFor serializes a named kernel for the given cluster count.
func ddgFor(t *testing.T, kernel string, clusters int) string {
	t.Helper()
	k, ok := bench.ByName(kernel)
	if !ok {
		t.Fatalf("kernel %s not registered", kernel)
	}
	return irtext.String(k.Build(clusters))
}

// post sends a /schedule request and returns status, body.
func post(t *testing.T, ts *httptest.Server, query, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/schedule?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// postCode is post for helper goroutines: no testing.T, transport errors
// come back as -1.
func postCode(ts *httptest.Server, query, body string) int {
	resp, err := http.Post(ts.URL+"/schedule?"+query, "text/plain", strings.NewReader(body))
	if err != nil {
		return -1
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// decodeSchedule rebuilds the schedule a 200 body describes and re-validates
// it against the graph and machine the client asked about.
func decodeSchedule(t *testing.T, body []byte, ddg, machineName string) (*schedule.Schedule, scheduleResponse) {
	t.Helper()
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("200 body is not schedule JSON: %v\n%s", err, body)
	}
	g, err := irtext.ParseString(ddg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := machine.Named(machineName)
	if err != nil {
		t.Fatal(err)
	}
	s := &schedule.Schedule{Graph: g, Machine: m}
	s.Placements = make([]schedule.Placement, len(resp.Placements))
	for i, p := range resp.Placements {
		s.Placements[i] = schedule.Placement{Cluster: p.Cluster, FU: p.FU, Start: p.Start, Latency: p.Latency}
	}
	for _, c := range resp.CommList {
		s.Comms = append(s.Comms, schedule.Comm{Value: c.Value, From: c.From, To: c.To, Depart: c.Depart, Arrive: c.Arrive})
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("200 body does not describe a legal schedule: %v", err)
	}
	return s, resp
}

func decodeError(t *testing.T, body []byte) errorJSON {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("error body is not structured JSON: %v\n%s", err, body)
	}
	if eb.Error.Kind == "" {
		t.Fatalf("error body has no kind: %s", body)
	}
	return eb.Error
}

func TestHealthReadyStats(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for path, want := range map[string]int{"/healthz": 200, "/readyz": 200, "/stats": 200} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("%s = %d, want %d", path, resp.StatusCode, want)
		}
	}

	s.StartDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	// Liveness stays up while draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz = %d, want 200", resp.StatusCode)
	}
}

func TestScheduleHappyPath(t *testing.T) {
	s := New(Config{Seed: 2002})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, tc := range []struct{ kernel, machine string }{
		{"vvmul", "vliw4"},
		{"fir", "raw4"},
	} {
		ddg := ddgFor(t, tc.kernel, 4)
		code, body := post(t, ts, "machine="+tc.machine, ddg)
		if code != http.StatusOK {
			t.Fatalf("%s on %s: status %d: %s", tc.kernel, tc.machine, code, body)
		}
		sched, resp := decodeSchedule(t, body, ddg, tc.machine)
		if resp.Served == "" || resp.Cycles != sched.Length() {
			t.Errorf("response metadata inconsistent: %+v", resp)
		}
		// The schedule must compute the right answer, not merely be legal.
		k, _ := bench.ByName(tc.kernel)
		res, err := sim.Run(sched, k.InitMemory(4))
		if err != nil {
			t.Fatalf("simulating served schedule: %v", err)
		}
		if err := k.Check(res.Memory, 4); err != nil {
			t.Errorf("served schedule computes the wrong answer: %v", err)
		}
	}

	// The same unit again is answered from the schedule cache.
	ddg := ddgFor(t, "vvmul", 4)
	code, body := post(t, ts, "machine=vliw4", ddg)
	if code != http.StatusOK {
		t.Fatalf("repeat request: %d", code)
	}
	_, resp := decodeSchedule(t, body, ddg, "vliw4")
	if !resp.CacheHit {
		t.Error("repeat of an identical unit did not hit the schedule cache")
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	cases := []struct {
		name, query, body string
		method            string
		want              int
	}{
		{"unknown machine", "machine=quantum9", ddg, "POST", 400},
		{"garbage body", "machine=vliw4", "instruction soup", "POST", 400},
		{"bad deadline", "machine=vliw4&deadline=yesterday", ddg, "POST", 400},
		{"bad scheduler", "machine=vliw4&scheduler=oracle", ddg, "POST", 400},
		{"GET not allowed", "machine=vliw4", "", "GET", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+"/schedule?"+tc.query, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("status %d, want %d: %s", resp.StatusCode, tc.want, body)
			}
			decodeError(t, body)
		})
	}
}

func TestRateLimitSheds(t *testing.T) {
	s := New(Config{RatePerSec: 0.0001, Burst: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	code, _ := post(t, ts, "machine=vliw4", ddg)
	if code != http.StatusOK {
		t.Fatalf("first request within burst: %d", code)
	}
	resp, err := http.Post(ts.URL+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request: %d, want 429: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if e := decodeError(t, body); e.Kind != "shed" {
		t.Errorf("shed kind = %q", e.Kind)
	}
	if st := s.StatsSnapshot(); st.Admission.ShedRate != 1 {
		t.Errorf("ShedRate = %d, want 1", st.Admission.ShedRate)
	}
}

func TestQueueFullSheds(t *testing.T) {
	// One queue slot, and a chaos stall that parks the only worker.
	s := New(Config{
		MaxQueue:       1,
		Workers:        1,
		DefaultTimeout: 5 * time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassStall, Stall: 700 * time.Millisecond},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	first := make(chan int, 1)
	go func() { first <- postCode(ts, "machine=vliw4", ddg) }()
	// Wait until the first request holds the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the queue")
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429: %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Kind != "shed" {
		t.Errorf("kind = %q, want shed", e.Kind)
	}
	if code := <-first; code != http.StatusOK {
		t.Fatalf("stalled-but-admitted request finished %d, want 200", code)
	}
	if st := s.StatsSnapshot(); st.Admission.ShedQueue != 1 {
		t.Errorf("ShedQueue = %d, want 1", st.Admission.ShedQueue)
	}
}

func TestDeadlinePropagation(t *testing.T) {
	s := New(Config{
		DefaultTimeout: 5 * time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassStall, Stall: 2 * time.Second},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	t0 := time.Now()
	code, body := post(t, ts, "machine=vliw4&deadline=80ms", ddg)
	elapsed := time.Since(t0)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", code, body)
	}
	if e := decodeError(t, body); e.Kind != "deadline" {
		t.Errorf("kind = %q, want deadline", e.Kind)
	}
	// The 2s stall must not hold the response: the deadline cancels it.
	if elapsed > time.Second {
		t.Errorf("deadline response took %v, want well under the 2s stall", elapsed)
	}
	if st := s.StatsSnapshot(); st.Admission.Timeouts == 0 {
		t.Error("deadline expiry not counted in admission stats")
	}
}

func TestDrain(t *testing.T) {
	var logs []string
	s := New(Config{
		DefaultTimeout: 5 * time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassStall, Stall: 500 * time.Millisecond},
		Logf:           func(f string, a ...any) { logs = append(logs, fmt.Sprintf(f, a...)) },
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	inflight := make(chan int, 1)
	go func() { inflight <- postCode(ts, "machine=vliw4", ddg) }()
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("in-flight request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}

	drainDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drainDone <- s.Drain(ctx)
	}()
	// Draining: new work is rejected with 503 while the old completes.
	deadline = time.Now().Add(2 * time.Second)
	for !s.draining.Load() {
		if time.Now().After(deadline) {
			t.Fatal("drain never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	code, body := post(t, ts, "machine=vliw4", ddg)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: %d, want 503: %s", code, body)
	}
	if e := decodeError(t, body); e.Kind != "draining" {
		t.Errorf("kind = %q, want draining", e.Kind)
	}

	if code := <-inflight; code != http.StatusOK {
		t.Fatalf("in-flight request during drain finished %d, want 200", code)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "final stats") {
			found = true
		}
	}
	if !found {
		t.Error("drain did not flush a final stats snapshot")
	}
}

func TestDrainDeadlineExpires(t *testing.T) {
	s := New(Config{
		DefaultTimeout: 10 * time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassStall, Stall: 3 * time.Second},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	go postCode(ts, "machine=vliw4", ddg)
	deadline := time.Now().Add(2 * time.Second)
	for s.adm.depth() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Fatal("drain reported success with work still in flight past the deadline")
	}
}

func TestPanicMiddleware(t *testing.T) {
	s := New(Config{})
	h := s.recoverer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	e := decodeError(t, rec.Body.Bytes())
	if e.Kind != "panic" || !strings.Contains(e.Message, "handler bug") {
		t.Errorf("error = %+v, want a structured panic report", e)
	}
	if s.panics.Load() != 1 {
		t.Errorf("panics counter = %d, want 1", s.panics.Load())
	}
}

// TestBreakerSkipsAcrossRequests: a rung failing on every request trips its
// breaker; later requests show a breaker-stage attempt instead of paying for
// the doomed rung, and /stats exposes the open breaker.
func TestBreakerSkipsAcrossRequests(t *testing.T) {
	// CacheSize < 0 disables memoization so every request walks the ladder
	// (a cache hit would carry no attempt report to inspect).
	s := New(Config{
		Chaos:     &faultinject.Chaos{Class: faultinject.ChaosPassPanic, Seed: 1},
		Breakers:  robust.BreakerPolicy{Failures: 2, Cooldown: time.Hour},
		CacheSize: -1,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)

	var last scheduleResponse
	for i := 0; i < 3; i++ {
		code, body := post(t, ts, "machine=vliw4", ddg)
		if code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, code, body)
		}
		_, last = decodeSchedule(t, body, ddg, "vliw4")
		if !last.Degraded {
			t.Fatalf("request %d not marked degraded under pass-panic chaos: %+v", i, last)
		}
	}
	// Third request: the poisoned convergent rungs' breakers are open.
	skipped := 0
	for _, a := range last.Attempts {
		if a.Stage == "breaker" {
			skipped++
		}
	}
	if skipped == 0 {
		t.Fatalf("no breaker-stage attempts on request 3: %+v", last.Attempts)
	}
	open := 0
	for _, b := range s.StatsSnapshot().Breakers {
		if b.State != "closed" {
			open++
		}
	}
	if open == 0 {
		t.Error("/stats shows no open breakers after persistent rung failures")
	}
}
