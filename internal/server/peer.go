package server

// Peer cache handoff: the shard side of the cluster's self-healing
// membership. Two surfaces live here, both enabled only when Config.PeerKey
// is set (a shared cluster secret, distinct from tenant API keys):
//
//   - The /cache endpoints other shards (and the gateway's rebalancer) call:
//     GET /cache/{hex key} exports one record, GET /cache/hot?k=K exports the
//     hottest K, and PUT /cache/{hex key} imports a record pushed by a
//     departing shard. Every import passes the engine's verifyRecord gate —
//     machine fingerprint, graph re-parse, rehydration + validation — before
//     it becomes servable; a peer is trusted exactly as much as a WAL file.
//
//   - Peer lookup before compute: when the gateway knows a request's
//     keyspace segment changed owners, it stamps the previous owner's base
//     URL on the forwarded request (X-Schedd-Peer) plus an HMAC signature
//     over it (X-Schedd-Peer-Sig, keyed by the same PeerKey). On a cache
//     miss this shard fetches the record from that peer and imports it
//     through the gate, so the request is served warm instead of recomputed.
//     The signature is what stops a client from steering the shard into
//     fetching from an attacker-chosen URL: only a holder of the cluster
//     secret — the gateway — can mint a valid hint.

import (
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/store"
)

const (
	// PeerHeader carries the previous ring owner's base URL on a /schedule
	// request forwarded by the gateway after a membership change.
	PeerHeader = "X-Schedd-Peer"
	// PeerSigHeader authenticates PeerHeader: hex HMAC-SHA256 of the peer
	// base URL under the shared cluster peer key. A hint without a valid
	// signature is ignored (and counted), never followed.
	PeerSigHeader = "X-Schedd-Peer-Sig"
	// PeerKeyHeader presents the shared cluster peer key on shard-to-shard
	// /cache calls.
	PeerKeyHeader = "X-Schedd-Peer-Key"
)

// maxHotExport caps one /cache/hot response regardless of the requested k.
const maxHotExport = 512

// SignPeerHint computes the peer-hint signature the gateway stamps and the
// shard verifies: hex HMAC-SHA256 of the peer base URL under the cluster
// peer key.
func SignPeerHint(peerKey, peerBase string) string {
	mac := hmac.New(sha256.New, []byte(peerKey))
	mac.Write([]byte(peerBase))
	return hex.EncodeToString(mac.Sum(nil))
}

// peerCounters attribute every peer-path event; mirrored into /stats and the
// schedd_peer_events_total metric family.
type peerCounters struct {
	lookups        atomic.Uint64 // outbound fetches attempted on a local miss
	hits           atomic.Uint64 // fetches that imported a record through the gate
	misses         atomic.Uint64 // peer answered "not found" (or any non-200)
	errors         atomic.Uint64 // transport failures reaching the peer
	rejected       atomic.Uint64 // fetched records the legality gate refused
	badHints       atomic.Uint64 // peer hints with a missing or invalid signature
	served         atomic.Uint64 // records exported to peers via GET /cache
	imports        atomic.Uint64 // records accepted via PUT /cache
	importRejected atomic.Uint64 // pushed records the legality gate refused
	authFailures   atomic.Uint64 // /cache calls without the cluster peer key
}

// PeerStats is the peer-handoff slice of /stats.
type PeerStats struct {
	Enabled bool `json:"enabled"`
	// Client side: this shard fetching from previous owners.
	Lookups  uint64 `json:"lookups"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	Errors   uint64 `json:"errors"`
	Rejected uint64 `json:"rejected"`
	BadHints uint64 `json:"badHints"`
	// Server side: this shard answering /cache calls from peers.
	Served         uint64 `json:"served"`
	Imports        uint64 `json:"imports"`
	ImportRejected uint64 `json:"importRejected"`
	AuthFailures   uint64 `json:"authFailures"`
}

func (p *peerCounters) snapshot(enabled bool) PeerStats {
	return PeerStats{
		Enabled:        enabled,
		Lookups:        p.lookups.Load(),
		Hits:           p.hits.Load(),
		Misses:         p.misses.Load(),
		Errors:         p.errors.Load(),
		Rejected:       p.rejected.Load(),
		BadHints:       p.badHints.Load(),
		Served:         p.served.Load(),
		Imports:        p.imports.Load(),
		ImportRejected: p.importRejected.Load(),
		AuthFailures:   p.authFailures.Load(),
	}
}

// verifyPeerKey checks the shared cluster secret on a /cache call in
// constant time. With no key configured the whole peer surface is disabled.
func (s *Server) verifyPeerKey(r *http.Request) error {
	if s.cfg.PeerKey == "" {
		return fmt.Errorf("peer cache API disabled: no peer key configured")
	}
	presented := r.Header.Get(PeerKeyHeader)
	if subtle.ConstantTimeCompare([]byte(s.cfg.PeerKey), []byte(presented)) != 1 {
		return fmt.Errorf("peer key mismatch")
	}
	return nil
}

// handleCache serves the shard-to-shard cache handoff API:
//
//	GET /cache/hot?k=K      the hottest K exportable records, MRU first
//	GET /cache/{hex key}    one record by its 32-byte cache key
//	PUT /cache/{hex key}    import a record (gated) pushed by a peer
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if err := s.verifyPeerKey(r); err != nil {
		s.peer.authFailures.Add(1)
		writeError(w, http.StatusUnauthorized, errorJSON{Kind: "unauthorized", Message: err.Error()})
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/cache/")
	if rest == "hot" {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errorJSON{Kind: "bad-request", Message: "GET /cache/hot"})
			return
		}
		k := 32
		if v := r.URL.Query().Get("k"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n <= 0 {
				writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: fmt.Sprintf("bad k %q", v)})
				return
			}
			k = n
		}
		if k > maxHotExport {
			k = maxHotExport
		}
		recs := s.engine.ExportHottest(k)
		s.peer.served.Add(uint64(len(recs)))
		writeJSON(w, http.StatusOK, recs)
		return
	}

	key, err := hex.DecodeString(rest)
	if err != nil || len(key) != sha256.Size {
		writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request",
			Message: fmt.Sprintf("cache key must be %d hex-encoded bytes", sha256.Size)})
		return
	}
	switch r.Method {
	case http.MethodGet:
		rec, ok := s.engine.ExportRecord(string(key))
		if !ok {
			writeError(w, http.StatusNotFound, errorJSON{Kind: "not-found", Message: "no exportable entry for key"})
			return
		}
		s.peer.served.Add(1)
		writeJSON(w, http.StatusOK, rec)
	case http.MethodPut:
		var rec store.Record
		body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		if err := json.NewDecoder(body).Decode(&rec); err != nil {
			writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: fmt.Sprintf("decoding record: %v", err)})
			return
		}
		// The record must answer for the key it was addressed to — a peer
		// cannot park content under someone else's address.
		if string(rec.Key) != string(key) {
			s.peer.importRejected.Add(1)
			writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: "record key does not match URL key"})
			return
		}
		if err := s.engine.ImportRecord(&rec); err != nil {
			s.peer.importRejected.Add(1)
			writeError(w, http.StatusUnprocessableEntity, errorJSON{Kind: "rejected",
				Message: fmt.Sprintf("legality gate refused record: %v", err)})
			return
		}
		s.peer.imports.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, errorJSON{Kind: "bad-request", Message: "GET or PUT /cache/{key}"})
	}
}

// peerHint extracts and authenticates the gateway's previous-owner hint from
// a forwarded request. An unsigned or mis-signed hint is reported (counted
// by the caller) and never followed — the signature is the only thing
// standing between a hostile client header and a server-side fetch to an
// attacker-chosen URL.
func (s *Server) peerHint(r *http.Request) (string, bool) {
	peer := r.Header.Get(PeerHeader)
	if peer == "" || s.cfg.PeerKey == "" {
		return "", true
	}
	want := SignPeerHint(s.cfg.PeerKey, peer)
	got := r.Header.Get(PeerSigHeader)
	if subtle.ConstantTimeCompare([]byte(want), []byte(got)) != 1 {
		return "", false
	}
	return peer, true
}

// peerFetch is "peer cache lookup before compute": on a local miss for a
// cacheable job, ask the previous ring owner for the record under this
// request's own cache key (content-derived, so identical on every shard),
// run it through the import gate, and let the engine serve the warm hit.
// Failure of any kind falls back to computing locally — the peer path is an
// optimization, never a dependency.
func (s *Server) peerFetch(ctx context.Context, peerBase string, job engine.Job) bool {
	key, cacheable := s.engine.CacheKey(job)
	if !cacheable || s.engine.HasCached(key) {
		return false
	}
	s.peer.lookups.Add(1)
	timeout := s.cfg.PeerTimeout
	if timeout <= 0 {
		timeout = 750 * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	url := strings.TrimSuffix(peerBase, "/") + "/cache/" + hex.EncodeToString([]byte(key))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		s.peer.errors.Add(1)
		return false
	}
	req.Header.Set(PeerKeyHeader, s.cfg.PeerKey)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		s.peer.errors.Add(1)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 512))
		s.peer.misses.Add(1)
		return false
	}
	var rec store.Record
	if err := json.NewDecoder(io.LimitReader(resp.Body, s.cfg.MaxBodyBytes)).Decode(&rec); err != nil {
		s.peer.rejected.Add(1)
		return false
	}
	// Key pinning: the peer must answer the key we asked for. (Even a forged
	// key could not smuggle an illegal schedule — rehydration re-validates
	// against the requesting graph on every hit — but it could poison the
	// slot with a mismatched entry that costs a collision recompute.)
	if string(rec.Key) != key {
		s.peer.rejected.Add(1)
		return false
	}
	if err := s.engine.ImportRecord(&rec); err != nil {
		s.peer.rejected.Add(1)
		s.cfg.Logf("schedd: peer %s record refused by legality gate: %v", peerBase, err)
		return false
	}
	s.peer.hits.Add(1)
	return true
}
