package server

// Multi-tenant QoS configuration: tenants are identified by the
// X-Schedd-Tenant header (or ?tenant=), mapped onto priority classes, and
// each class carries the knobs the weighted-fair admission layer enforces —
// a deficit-round-robin weight, a bounded class queue, and per-tenant token
// buckets and in-flight quotas. The parsing here backs both the schedd
// -tenant-class/-tenant flags and the -tenant-config JSON file.

import (
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// DefaultClassName is the class serving requests with no tenant header and
// tenants with no explicit assignment. It always exists: a server
// configured with no tenancy at all runs a single default class whose
// bounds are the server-wide ones, which is exactly the pre-tenancy
// behavior.
const DefaultClassName = "default"

// AnonymousTenant is the accounting identity of requests that carry no
// tenant header. It keeps the untenanted path first-class: its stats and
// metrics rows look like any other tenant's.
const AnonymousTenant = "anonymous"

// maxTenantNameLen bounds tenant identifiers; anything longer is a 400.
const maxTenantNameLen = 64

// maxTrackedTenants bounds the per-tenant state map so unknown tenant names
// cannot grow server memory without bound. Past the cap, new tenants share
// their class's overflow bucket (named "~overflow") — still isolated per
// class, no longer per tenant.
const maxTrackedTenants = 1024

// overflowTenant is the shared accounting identity for tenants past
// maxTrackedTenants.
const overflowTenant = "~overflow"

// TenantClass is one priority class of the weighted-fair admission layer.
type TenantClass struct {
	// Name identifies the class in config, stats, and metric labels.
	Name string `json:"name"`
	// Weight is the deficit-round-robin quantum: how many worker grants
	// the class may take per round while others wait. Minimum (and
	// default) 1 — every class with queued work is granted at least once
	// per round, which is the starvation-freedom invariant.
	Weight int `json:"weight"`
	// MaxQueue bounds the class's admitted-but-unfinished requests
	// (waiting + running). 0 inherits the server-wide Config.MaxQueue.
	MaxQueue int `json:"queue"`
	// RatePerSec and Burst configure the per-tenant token bucket for
	// tenants of this class; 0 rate disables per-tenant rate limiting.
	RatePerSec float64 `json:"rate"`
	Burst      int     `json:"burst"`
	// MaxInflight caps one tenant's admitted-but-unfinished requests; 0
	// means unlimited. This is the per-tenant quota: a tenant at its cap
	// sheds with cause "quota" without touching the rest of its class.
	MaxInflight int `json:"inflight"`
}

// TenantConfig is the JSON shape of schedd -tenant-config.
type TenantConfig struct {
	// Classes defines the priority classes in DRR scan order.
	Classes []TenantClass `json:"classes"`
	// Tenants maps tenant name -> class name.
	Tenants map[string]string `json:"tenants"`
	// DefaultClass is the class for unknown tenants and requests without
	// a tenant header; empty means "default".
	DefaultClass string `json:"defaultClass"`
}

// ValidTenantName reports whether s is an acceptable tenant identifier:
// 1..64 chars from [A-Za-z0-9._-]. The empty string is not valid (absence
// of a tenant is represented by not sending the header).
func ValidTenantName(s string) bool {
	if len(s) == 0 || len(s) > maxTenantNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ParseClassSpec parses one -tenant-class flag value of the form
//
//	name[:key=value,...]   keys: weight, queue, rate, burst, inflight
//
// e.g. "gold:weight=8,queue=32,rate=200,burst=400,inflight=16".
func ParseClassSpec(spec string) (TenantClass, error) {
	name, rest, _ := strings.Cut(spec, ":")
	if !ValidTenantName(name) {
		return TenantClass{}, fmt.Errorf("tenant class spec %q: bad class name %q", spec, name)
	}
	c := TenantClass{Name: name}
	if rest == "" {
		return c, nil
	}
	for _, kv := range strings.Split(rest, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok || v == "" {
			return TenantClass{}, fmt.Errorf("tenant class spec %q: %q is not key=value", spec, kv)
		}
		switch k {
		case "weight", "queue", "burst", "inflight":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return TenantClass{}, fmt.Errorf("tenant class spec %q: bad %s %q", spec, k, v)
			}
			switch k {
			case "weight":
				c.Weight = n
			case "queue":
				c.MaxQueue = n
			case "burst":
				c.Burst = n
			case "inflight":
				c.MaxInflight = n
			}
		case "rate":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 {
				return TenantClass{}, fmt.Errorf("tenant class spec %q: bad rate %q", spec, v)
			}
			c.RatePerSec = f
		default:
			return TenantClass{}, fmt.Errorf("tenant class spec %q: unknown key %q", spec, k)
		}
	}
	return c, nil
}

// ParseTenantAssignment parses one -tenant flag value "tenant=class".
func ParseTenantAssignment(spec string) (tenant, class string, err error) {
	tenant, class, ok := strings.Cut(spec, "=")
	if !ok || !ValidTenantName(tenant) || !ValidTenantName(class) {
		return "", "", fmt.Errorf("tenant assignment %q is not tenant=class (names: 1-%d chars of [A-Za-z0-9._-])",
			spec, maxTenantNameLen)
	}
	return tenant, class, nil
}

// LoadTenantConfig reads a -tenant-config JSON file.
func LoadTenantConfig(path string) (TenantConfig, error) {
	var tc TenantConfig
	data, err := os.ReadFile(path)
	if err != nil {
		return tc, err
	}
	if err := json.Unmarshal(data, &tc); err != nil {
		return tc, fmt.Errorf("tenant config %s: %w", path, err)
	}
	return tc, nil
}

// ValidateTenancy checks a tenant configuration before the server starts:
// class names unique and well-formed, every tenant assigned to a defined
// class, the default class defined (or defaultable).
func ValidateTenancy(tc TenantConfig) error {
	seen := make(map[string]bool, len(tc.Classes))
	for _, c := range tc.Classes {
		if !ValidTenantName(c.Name) {
			return fmt.Errorf("tenant class name %q is invalid", c.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("tenant class %q defined twice", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 || c.MaxQueue < 0 || c.RatePerSec < 0 || c.Burst < 0 || c.MaxInflight < 0 {
			return fmt.Errorf("tenant class %q has a negative bound", c.Name)
		}
	}
	def := tc.DefaultClass
	if def == "" {
		def = DefaultClassName
	}
	if len(tc.Classes) > 0 && !seen[def] && def != DefaultClassName {
		return fmt.Errorf("default class %q is not a defined class", def)
	}
	for t, cl := range tc.Tenants {
		if !ValidTenantName(t) {
			return fmt.Errorf("tenant name %q is invalid", t)
		}
		if !seen[cl] && cl != DefaultClassName {
			return fmt.Errorf("tenant %q assigned to undefined class %q", t, cl)
		}
	}
	return nil
}
