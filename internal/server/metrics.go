package server

// The server's metric surface: a dependency-free Prometheus registry
// (internal/obs) served at GET /metrics and folded into /stats. Two kinds of
// series live here:
//
//   - Event-driven: request/rung latency histograms and breaker-transition
//     counters, observed at the moment they happen.
//   - Scrape-synced: counters and gauges mirrored from the engine, admission,
//     and store stat snapshots by a BeforeScrape hook, so /metrics never
//     maintains a second set of hot-path counters. Mirrored counters stay
//     monotonic because their sources are monotonic (and obs.Counter.Set
//     clamps against going backwards).
//
// The registered names and label sets are pinned by the golden list under
// testdata/metrics_families.golden — add new series there deliberately.

import (
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/robust"
)

// metrics bundles the server's registry and its event-driven instruments.
type metrics struct {
	reg *obs.Registry

	requestSeconds *obs.HistogramVec // by outcome: ok|error
	rungSeconds    *obs.HistogramVec // by rung name
	breakerFlips   *obs.CounterVec   // by destination state
	tracedRequests *obs.Counter

	// Tenant QoS series. Histograms are labelled by class (bounded
	// cardinality); counters and gauges by tenant, whose cardinality the
	// admission layer caps at maxTrackedTenants.
	tenantSeconds *obs.HistogramVec // by class
	tenantShed    *obs.CounterVec   // by tenant, cause (event-driven)

	// Per-tenant latency percentiles, cardinality-bounded by topK: the K
	// busiest tenants earn a dedicated label, everyone else lands in the
	// overflow label — so p99-by-tenant is scrapeable without letting an
	// identity flood mint unbounded histogram series.
	tenantLatency *obs.HistogramVec // by tenant (top-K + overflow)
	topK          *topKTracker
}

// Bounds for the per-tenant latency histogram: at most topKTenantSlots
// dedicated labels, each earned only after topKSlotThreshold requests, so a
// one-off name can never burn a slot.
const (
	topKTenantSlots   = 8
	topKSlotThreshold = 16
)

// topKTracker grants dedicated histogram labels to the first K tenants that
// prove sustained volume. Histogram observations cannot be re-homed between
// labels, so slots are granted once and never revoked; a tenant's
// observations before it earns its slot stay in the overflow label.
type topKTracker struct {
	mu        sync.Mutex
	k         int
	threshold uint64
	counts    map[string]uint64
	slots     map[string]bool
}

func newTopKTracker(k int, threshold uint64) *topKTracker {
	return &topKTracker{
		k:         k,
		threshold: threshold,
		counts:    make(map[string]uint64),
		slots:     make(map[string]bool),
	}
}

// labelFor returns the histogram label for one observation by tenant: the
// tenant itself once it has earned a slot, the overflow label otherwise.
// The count map is bounded like the admission layer's tenant map, so a
// label-flood attack costs at most maxTrackedTenants counter cells.
func (t *topKTracker) labelFor(tenant string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.slots[tenant] {
		return tenant
	}
	if _, known := t.counts[tenant]; !known && len(t.counts) >= maxTrackedTenants {
		return overflowTenant
	}
	t.counts[tenant]++
	if t.counts[tenant] >= t.threshold && len(t.slots) < t.k {
		t.slots[tenant] = true
		return tenant
	}
	return overflowTenant
}

// newMetrics registers every series and installs the scrape-time sync from
// the server's stat snapshots.
func newMetrics(s *Server) *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg: reg,
		requestSeconds: reg.HistogramVec("schedd_request_seconds",
			"Admission-to-response latency of /schedule requests.", nil, "outcome"),
		rungSeconds: reg.HistogramVec("schedd_rung_seconds",
			"Per-rung scheduling attempt latency.", nil, "rung"),
		breakerFlips: reg.CounterVec("schedd_breaker_transitions_total",
			"Circuit-breaker state transitions by destination state.", "to"),
		tracedRequests: reg.Counter("schedd_traced_requests_total",
			"Requests served with ?trace=1."),
		tenantSeconds: reg.HistogramVec("schedd_tenant_request_seconds",
			"Admission-to-response latency of /schedule requests by priority class.", nil, "class"),
		tenantShed: reg.CounterVec("schedd_tenant_shed_total",
			"Requests shed by admission control, by tenant and cause.", "tenant", "cause"),
		tenantLatency: reg.HistogramVec("schedd_tenant_latency_seconds",
			"Admission-to-response latency by tenant: dedicated labels for the busiest tenants, the rest under the overflow label.", nil, "tenant"),
		topK: newTopKTracker(topKTenantSlots, topKSlotThreshold),
	}

	// Admission counters and queue gauges.
	accepted := reg.Counter("schedd_requests_accepted_total", "Requests admitted past rate limiter and queue bound.")
	shed := reg.CounterVec("schedd_requests_shed_total", "Requests shed by admission control, by cause.", "cause")
	timeouts := reg.Counter("schedd_requests_timeout_total", "Admitted requests that hit their deadline.")
	completed := reg.Counter("schedd_requests_completed_total", "Requests finished with a schedule.")
	failed := reg.Counter("schedd_requests_failed_total", "Requests finished with a scheduling error.")
	queueDepth := reg.Gauge("schedd_queue_depth", "Admitted-but-unfinished requests right now.")
	queueCap := reg.Gauge("schedd_queue_capacity", "Bound of the admission queue.")

	// Tenant QoS counters and class-queue gauges, mirrored from the
	// admission snapshot at scrape time (tenant cardinality is bounded by
	// the admission layer's tenant-map cap).
	tenantRequests := reg.CounterVec("schedd_tenant_requests_total",
		"Admitted requests finished, by tenant and outcome.", "tenant", "outcome")
	tenantAccepted := reg.CounterVec("schedd_tenant_accepted_total",
		"Requests admitted past every bound, by tenant.", "tenant")
	tenantInflight := reg.GaugeVec("schedd_tenant_inflight",
		"Admitted-but-unfinished requests right now, by tenant.", "tenant")
	classDepth := reg.GaugeVec("schedd_tenant_class_queue_depth",
		"Admitted-but-unfinished requests per priority class.", "class")
	classCap := reg.GaugeVec("schedd_tenant_class_queue_capacity",
		"Bound of each priority class's admission queue.", "class")
	classWeight := reg.GaugeVec("schedd_tenant_class_weight",
		"Deficit-round-robin weight of each priority class.", "class")
	classGranted := reg.CounterVec("schedd_tenant_class_granted_total",
		"Worker grants the weighted-fair dequeuer gave each class.", "class")

	// Engine cache counters and occupancy.
	cacheCounter := reg.CounterVec("schedd_cache_events_total", "Schedule-cache events by kind.", "kind")
	cacheSize := reg.Gauge("schedd_cache_size", "Schedule-cache entries resident.")
	cacheCap := reg.Gauge("schedd_cache_capacity", "Schedule-cache entry bound.")

	// Peer cache-handoff counters (all zero when no peer key is configured).
	peerEvents := reg.CounterVec("schedd_peer_events_total", "Peer cache-handoff events by kind.", "kind")

	// Persistent-store counters (all zero when no store is attached).
	storeCounter := reg.CounterVec("schedd_store_events_total", "Persistent-store write-behind events by kind.", "kind")
	storeQueueDepth := reg.Gauge("schedd_store_queue_depth", "Write-behind flush queue depth.")
	storeRecovered := reg.Gauge("schedd_store_recovered", "1 once recovery replay has completed.")
	storeReplayed := reg.Counter("schedd_store_replayed_total", "Records replayed into the cache at recovery.")

	// Lifecycle gauges: drain progress is inflight requests still running
	// while schedd_draining is 1.
	ready := reg.Gauge("schedd_ready", "1 when /readyz would answer ready.")
	draining := reg.Gauge("schedd_draining", "1 once a drain has started.")
	inflight := reg.Gauge("schedd_inflight", "Requests currently inside /schedule.")
	panics := reg.Counter("schedd_panics_total", "Handler panics contained by the recovery middleware.")
	breakersOpen := reg.Gauge("schedd_breakers_open", "Breakers currently open or half-open.")

	reg.BeforeScrape(func() {
		ast := s.adm.stats()
		accepted.Set(float64(ast.Accepted))
		shed.With("queue").Set(float64(ast.ShedQueue))
		shed.With("rate").Set(float64(ast.ShedRate))
		shed.With("quota").Set(float64(ast.ShedQuota))
		timeouts.Set(float64(ast.Timeouts))
		completed.Set(float64(ast.Completed))
		failed.Set(float64(ast.Failed))
		queueDepth.Set(float64(ast.QueueDepth))
		queueCap.Set(float64(ast.QueueCapacity))

		for _, ts := range ast.Tenants {
			tenantRequests.With(ts.Tenant, "ok").Set(float64(ts.Completed))
			tenantRequests.With(ts.Tenant, "error").Set(float64(ts.Failed))
			tenantAccepted.With(ts.Tenant).Set(float64(ts.Accepted))
			tenantInflight.With(ts.Tenant).Set(float64(ts.Inflight))
		}
		for _, cs := range ast.Classes {
			classDepth.With(cs.Class).Set(float64(cs.QueueDepth))
			classCap.With(cs.Class).Set(float64(cs.QueueCapacity))
			classWeight.With(cs.Class).Set(float64(cs.Weight))
			classGranted.With(cs.Class).Set(float64(cs.Granted))
		}

		est := s.engine.Stats()
		cacheCounter.With("hit").Set(float64(est.Hits))
		cacheCounter.With("miss").Set(float64(est.Misses))
		cacheCounter.With("shared").Set(float64(est.Shared))
		cacheCounter.With("eviction").Set(float64(est.Evictions))
		cacheCounter.With("collision").Set(float64(est.Collisions))
		cacheCounter.With("uncacheable").Set(float64(est.Uncacheable))
		cacheCounter.With("detached").Set(float64(est.Detached))
		cacheSize.Set(float64(est.Size))
		cacheCap.Set(float64(est.Capacity))

		pst := s.peer.snapshot(s.cfg.PeerKey != "")
		peerEvents.With("lookup").Set(float64(pst.Lookups))
		peerEvents.With("hit").Set(float64(pst.Hits))
		peerEvents.With("miss").Set(float64(pst.Misses))
		peerEvents.With("error").Set(float64(pst.Errors))
		peerEvents.With("rejected").Set(float64(pst.Rejected))
		peerEvents.With("bad-hint").Set(float64(pst.BadHints))
		peerEvents.With("served").Set(float64(pst.Served))
		peerEvents.With("import").Set(float64(pst.Imports))
		peerEvents.With("import-rejected").Set(float64(pst.ImportRejected))
		peerEvents.With("auth-failure").Set(float64(pst.AuthFailures))

		storeCounter.With("flushed").Set(float64(est.Persist.Flushed))
		storeCounter.With("flush-error").Set(float64(est.Persist.FlushErrors))
		storeCounter.With("backpressure").Set(float64(est.Persist.Backpressure))
		storeCounter.With("skipped-unnamed").Set(float64(est.Persist.SkippedUnnamed))
		storeQueueDepth.Set(float64(est.Persist.QueueDepth))
		if est.Persist.Recovered {
			storeRecovered.Set(1)
		} else {
			storeRecovered.Set(0)
		}
		storeReplayed.Set(float64(est.Persist.Recovery.Replayed))

		// Mirror /readyz exactly: started, not draining, queue not full.
		if s.ready.Load() && !s.draining.Load() && ast.QueueDepth < ast.QueueCapacity {
			ready.Set(1)
		} else {
			ready.Set(0)
		}
		if s.draining.Load() {
			draining.Set(1)
		} else {
			draining.Set(0)
		}
		inflight.Set(float64(s.inflight.current()))
		panics.Set(float64(s.panics.Load()))
		open := 0
		for _, b := range s.breakers.Snapshot() {
			if b.State != robust.BreakerClosed {
				open++
			}
		}
		breakersOpen.Set(float64(open))
	})
	return m
}

// observeBreaker is the robust.BreakerSet observer: it runs under the
// breaker set's lock, so it only bumps a counter.
func (m *metrics) observeBreaker(key string, from, to robust.BreakerState) {
	m.breakerFlips.With(string(to)).Inc()
}

// observeRequest records one finished /schedule request.
func (m *metrics) observeRequest(tenant, class string, seconds float64, failed bool) {
	outcome := "ok"
	if failed {
		outcome = "error"
	}
	m.requestSeconds.With(outcome).Observe(seconds)
	if class != "" {
		m.tenantSeconds.With(class).Observe(seconds)
	}
	if tenant != "" {
		m.tenantLatency.With(m.topK.labelFor(tenant)).Observe(seconds)
	}
}

// observeShed records one 429 at the moment it is shed, attributed to the
// tenant and the admission bound that rejected it.
func (m *metrics) observeShed(tenant, cause string) {
	m.tenantShed.With(tenant, cause).Inc()
}

// observeReport records the per-rung attempt latencies of a freshly computed
// schedule (cache hits and shared flights carry no report).
func (m *metrics) observeReport(rep *robust.Report) {
	if rep == nil {
		return
	}
	for _, a := range rep.Attempts {
		m.rungSeconds.With(a.Rung).Observe(a.Duration.Seconds())
	}
}

// handleMetrics serves GET /metrics in the Prometheus text format. It stays
// servable during drain: scraping a draining server is how an operator
// watches drain progress (schedd_draining=1, schedd_inflight falling).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "GET /metrics", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if r.Method == http.MethodHead {
		return
	}
	s.metrics.reg.WriteTo(w)
}
