package server

// Warm-restart and crash-recovery tests: a schedd with a -store-dir must
// gate /readyz on recovery replay, come back from a clean restart serving
// warm hits byte-identical to the cold run, and come back from a SIGKILL
// over a chaos-corrupted store ready and serving only legal schedules.

import (
	"context"
	"encoding/json"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/store"
)

// storeServer builds a Server persisted in dir, opens its store, and waits
// for readiness unless wait is false.
func storeServer(t *testing.T, dir string, wait bool) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{StoreDir: dir, StoreNoFsync: true, Logf: t.Logf})
	if err := s.OpenStore(); err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	if wait {
		waitReady(t, ts)
	}
	return s, ts
}

func waitReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func statsOf(t *testing.T, ts *httptest.Server) StatsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// blockingFS delays the first data-file open until released, so a test can
// observe the not-ready window of an otherwise instant recovery.
type blockingFS struct {
	store.OSFS
	release chan struct{}
	hit     chan struct{}
}

func (b *blockingFS) ReadDir(name string) ([]fs.DirEntry, error) {
	select {
	case <-b.hit:
	default:
		close(b.hit)
		<-b.release
	}
	return b.OSFS.ReadDir(name)
}

// TestReadyzGatesOnRecovery holds recovery open and asserts /readyz says 503
// "starting" (with liveness still 200) until the replay completes.
func TestReadyzGatesOnRecovery(t *testing.T) {
	bfs := &blockingFS{release: make(chan struct{}), hit: make(chan struct{})}
	s := New(Config{StoreDir: t.TempDir(), StoreNoFsync: true, StoreFS: bfs, Logf: t.Logf})
	if err := s.OpenStore(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	<-bfs.hit // recovery is inside the blocked ReadDir now

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during recovery = %d, want 503", resp.StatusCode)
	}
	if got := strings.TrimSpace(string(body)); got != "starting" {
		t.Fatalf("/readyz body = %q, want starting", got)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready response carries no Retry-After")
	}
	// Liveness is unaffected by startup.
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, live.Body)
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("/healthz during recovery = %d, want 200", live.StatusCode)
	}
	if st := statsOf(t, ts); st.Ready {
		t.Error("stats say ready during recovery")
	}

	close(bfs.release)
	waitReady(t, ts)
	if st := statsOf(t, ts); !st.Ready || !st.Engine.Persist.Recovered {
		t.Errorf("post-recovery stats: ready=%v recovered=%v", st.Ready, st.Engine.Persist.Recovered)
	}
}

// TestWarmRestartServesIdenticalSchedules drains a populated daemon, brings
// a new one up on the same directory, and requires byte-identical schedules
// served from the warm cache.
func TestWarmRestartServesIdenticalSchedules(t *testing.T) {
	dir := t.TempDir()
	ddg := ddgFor(t, "vvmul", 4)

	s1, ts1 := storeServer(t, dir, true)
	code, body := post(t, ts1, "machine=raw4", ddg)
	if code != http.StatusOK {
		t.Fatalf("cold schedule: %d\n%s", code, body)
	}
	cold, _ := decodeSchedule(t, body, ddg, "raw4")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	_, ts2 := storeServer(t, dir, true)
	if st := statsOf(t, ts2); st.Engine.Persist.Recovery.Replayed == 0 {
		t.Fatalf("nothing replayed after drain: %+v", st.Engine.Persist.Recovery)
	}
	code, body = post(t, ts2, "machine=raw4", ddg)
	if code != http.StatusOK {
		t.Fatalf("warm schedule: %d\n%s", code, body)
	}
	warm, resp := decodeSchedule(t, body, ddg, "raw4")
	if !resp.CacheHit {
		t.Error("restarted server missed the cache on a persisted unit")
	}
	if warm.String() != cold.String() {
		t.Error("warm schedule differs from the one served before restart")
	}
}

// TestCrashRecoveryUnderDiskChaos is the end-to-end proof: populate, crash
// without flushing (SIGKILL stand-in), corrupt the store with every offline
// chaos class, restart — the daemon must become ready and every response
// must validate client-side. Recovery stats must appear in /stats.
func TestCrashRecoveryUnderDiskChaos(t *testing.T) {
	units := []string{"vvmul", "sha", "fir"}
	for _, class := range faultinject.OfflineDiskClasses() {
		t.Run(class, func(t *testing.T) {
			dir := t.TempDir()
			s1, ts1 := storeServer(t, dir, true)
			for _, u := range units {
				code, body := post(t, ts1, "machine=raw4", ddgFor(t, u, 4))
				if code != http.StatusOK {
					t.Fatalf("populate %s: %d\n%s", u, code, body)
				}
			}
			// Push everything to the OS, then die without closing cleanly.
			fctx, fcancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := s1.engine.FlushStore(fctx); err != nil {
				t.Fatalf("flush: %v", err)
			}
			fcancel()
			s1.engine.CrashStore()
			ts1.Close()

			desc, err := faultinject.CorruptStore(dir, class, 1)
			if err != nil {
				t.Fatalf("CorruptStore: %v", err)
			}
			t.Logf("corruption: %s", desc)

			_, ts2 := storeServer(t, dir, true)
			st := statsOf(t, ts2)
			if !st.Engine.Persist.Recovered {
				t.Fatal("restarted server never recovered")
			}
			rs := st.Engine.Persist.Recovery
			t.Logf("recovery: %+v", rs)
			for _, u := range units {
				ddg := ddgFor(t, u, 4)
				code, body := post(t, ts2, "machine=raw4", ddg)
				if code != http.StatusOK {
					t.Fatalf("%s after recovery: %d\n%s", u, code, body)
				}
				decodeSchedule(t, body, ddg, "raw4") // client-side legality gate
			}
		})
	}
}

// TestOnlineDiskChaosLeavesServingIntact runs a daemon whose store IO is
// failing (ENOSPC after a few writes) and requires scheduling to keep
// working — persistence degrades to counters, never to 500s.
func TestOnlineDiskChaosLeavesServingIntact(t *testing.T) {
	chaos := &faultinject.DiskChaos{Class: faultinject.DiskENOSPC, After: 1}
	s := New(Config{StoreDir: t.TempDir(), StoreNoFsync: true, StoreFS: chaos, Logf: t.Logf})
	if err := s.OpenStore(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	waitReady(t, ts)

	for _, u := range []string{"vvmul", "sha", "fir"} {
		ddg := ddgFor(t, u, 4)
		code, body := post(t, ts, "machine=raw4", ddg)
		if code != http.StatusOK {
			t.Fatalf("%s under disk chaos: %d\n%s", u, code, body)
		}
		decodeSchedule(t, body, ddg, "raw4")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.engine.FlushStore(ctx); err != nil {
		t.Fatalf("flush: %v", err)
	}
	st := statsOf(t, ts)
	if st.Engine.Persist.FlushErrors == 0 && st.Engine.Persist.Store.AppendErrors == 0 {
		t.Errorf("ENOSPC never surfaced in counters: %+v", st.Engine.Persist)
	}
}

// TestSecondInstanceRefused: two daemons on one store directory must not
// coexist; the second OpenStore fails on the lockfile.
func TestSecondInstanceRefused(t *testing.T) {
	dir := t.TempDir()
	storeServer(t, dir, true)
	s2 := New(Config{StoreDir: dir, StoreNoFsync: true, Logf: t.Logf})
	if err := s2.OpenStore(); err == nil {
		t.Fatal("second OpenStore on a held lockfile succeeded")
	}
}

// TestDrainFlushesStore: a drained server leaves a store a successor can
// replay, and logs that it flushed.
func TestDrainFlushesStore(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, true)
	ddg := ddgFor(t, "vvmul", 4)
	if code, body := post(t, ts, "machine=raw4", ddg); code != http.StatusOK {
		t.Fatalf("schedule: %d\n%s", code, body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// Replay the directory directly: the drained entry must be there.
	e := engine.New(1, 16)
	if err := e.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	rs, err := e.RecoverStore()
	if err != nil {
		t.Fatal(err)
	}
	defer e.CloseStore()
	if rs.Replayed == 0 {
		t.Fatalf("drain left nothing replayable: %+v", rs)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatal(err)
	}
}
