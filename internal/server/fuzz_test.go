package server

// FuzzScheduleQuery hammers the /schedule query-parameter surface: whatever
// the query string and body contain, the daemon must answer with a
// structured status — malformed knobs get a JSON 400 with an error kind —
// and must never panic or synthesize a 500. The seed corpus enumerates every
// known-bad shape of every knob so the fuzzer starts at the edges.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzScheduleQuery(f *testing.F) {
	badQueries := []string{
		"",
		"machine=raw16",
		"machine=nosuch",
		"machine=raw-16",
		"seed=abc",
		"seed=9223372036854775808", // int64 overflow
		"seed=",
		"scheduler=bogus",
		"scheduler=",
		"verify=2",
		"fallback=maybe",
		"trace=yes",
		"trace=1&trace=0",
		"timeout=-5s",
		"timeout=99999999999999999h", // duration overflow
		"timeout=5",                  // unitless
		"deadline=0s",
		"deadline=-1ms",
		"deadline=banana",
		"machine=%zz", // invalid percent-encoding
		";=;&&==&%%",  // query-parser garbage
		"machine=raw16&seed=1&verify=true&fallback=false&trace=1&timeout=1ms&deadline=1ms",
	}
	for _, q := range badQueries {
		f.Add(q, "")
	}
	// A body that is not irtext must 400 regardless of the query.
	f.Add("machine=raw4", "this is not a dependence graph")
	f.Add("machine=raw4&trace=1", "graph g\nbroken")

	s := New(Config{Seed: 2002, Logf: func(string, ...any) {}})
	h := s.Handler()

	f.Fuzz(func(t *testing.T, rawQuery, body string) {
		// Build the request directly: NewRequest panics on an unparsable
		// target, so the raw query is injected after construction.
		req := httptest.NewRequest(http.MethodPost, "/schedule", strings.NewReader(body))
		req.URL.RawQuery = rawQuery
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)

		if got := s.panics.Load(); got != 0 {
			t.Fatalf("query %q body %q: handler panicked (%d contained)", rawQuery, body, got)
		}
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("query %q body %q: status %d, want 200/400/429/503/504; body: %.200s",
				rawQuery, body, rr.Code, rr.Body.String())
		}
		if rr.Code == http.StatusBadRequest {
			var eb struct {
				Error struct {
					Kind    string `json:"kind"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
				t.Fatalf("query %q: 400 body is not JSON: %v; body: %.200s", rawQuery, err, rr.Body.String())
			}
			if eb.Error.Kind == "" {
				t.Fatalf("query %q: 400 body has no error kind: %.200s", rawQuery, rr.Body.String())
			}
		}
	})
}
