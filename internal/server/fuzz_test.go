package server

// FuzzScheduleQuery hammers the /schedule query-parameter and tenant-
// identity surface: whatever the query string, tenant header, and body
// contain, the daemon must answer with a structured status — malformed
// knobs and malformed tenant names get a JSON 400 with an error kind, quota
// and queue overloads get structured 429s — and must never panic or
// synthesize a 500. The seed corpus enumerates every known-bad shape of
// every knob so the fuzzer starts at the edges.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func FuzzScheduleQuery(f *testing.F) {
	badQueries := []string{
		"",
		"machine=raw16",
		"machine=nosuch",
		"machine=raw-16",
		"seed=abc",
		"seed=9223372036854775808", // int64 overflow
		"seed=",
		"scheduler=bogus",
		"scheduler=",
		"verify=2",
		"fallback=maybe",
		"trace=yes",
		"trace=1&trace=0",
		"timeout=-5s",
		"timeout=99999999999999999h", // duration overflow
		"timeout=5",                  // unitless
		"deadline=0s",
		"deadline=-1ms",
		"deadline=banana",
		"machine=%zz", // invalid percent-encoding
		";=;&&==&%%",  // query-parser garbage
		"machine=raw16&seed=1&verify=true&fallback=false&trace=1&timeout=1ms&deadline=1ms",
	}
	for _, q := range badQueries {
		f.Add(q, "", "")
	}
	// A body that is not irtext must 400 regardless of the query.
	f.Add("machine=raw4", "", "this is not a dependence graph")
	f.Add("machine=raw4&trace=1", "", "graph g\nbroken")

	// Tenant-identity edges: oversized, malformed, control characters,
	// header/query disagreement, and valid names that route to real classes.
	tenantSeeds := []struct{ query, tenant string }{
		{"machine=raw4", strings.Repeat("x", 65)},              // one past the length cap
		{"machine=raw4", strings.Repeat("x", 4096)},            // absurdly oversized
		{"machine=raw4", "has space"},                          //
		{"machine=raw4", "a/b"},                                //
		{"machine=raw4", "\x00\x01\x02"},                       // control bytes
		{"machine=raw4", "émoji-☃"},                            // non-ASCII
		{"machine=raw4", "vip"},                                // assigned tenant
		{"machine=raw4", "unknown-tenant"},                     // default class
		{"machine=raw4&tenant=other", "vip"},                   // header beats query
		{"machine=raw4&tenant=" + strings.Repeat("y", 65), ""}, // bad query tenant
		{"machine=raw4&tenant=%20", ""},                        // encoded space
		{"tenant=vip", ""},                                     // tenant without machine
	}
	for _, ts := range tenantSeeds {
		f.Add(ts.query, ts.tenant, "")
	}

	// Tenancy configured so fuzzed identities exercise class routing, the
	// per-tenant quota, and the class queue bound — not just validation.
	s := New(Config{
		Seed: 2002,
		Tenancy: TenantConfig{
			Classes: []TenantClass{
				{Name: "gold", Weight: 8, MaxQueue: 8},
				{Name: "tiny", Weight: 1, MaxQueue: 1, MaxInflight: 1},
			},
			Tenants: map[string]string{"vip": "gold", "cramped": "tiny"},
		},
		Logf: func(string, ...any) {},
	})
	h := s.Handler()

	f.Fuzz(func(t *testing.T, rawQuery, tenant, body string) {
		// Build the request directly: NewRequest panics on an unparsable
		// target, so the raw query is injected after construction.
		req := httptest.NewRequest(http.MethodPost, "/schedule", strings.NewReader(body))
		req.URL.RawQuery = rawQuery
		if tenant != "" {
			// Set via the map: Header.Set canonicalizes but does not reject
			// arbitrary bytes, which is exactly the hostile-client shape.
			req.Header["X-Schedd-Tenant"] = []string{tenant}
		}
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, req)

		if got := s.panics.Load(); got != 0 {
			t.Fatalf("query %q tenant %q body %q: handler panicked (%d contained)", rawQuery, tenant, body, got)
		}
		switch rr.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusTooManyRequests,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("query %q tenant %q body %q: status %d, want 200/400/429/503/504; body: %.200s",
				rawQuery, tenant, body, rr.Code, rr.Body.String())
		}
		// A malformed tenant identity must be a structured 400, never served
		// and never shed (it must not reach admission accounting).
		if tenant != "" && !ValidTenantName(tenant) && rr.Code == http.StatusOK {
			t.Fatalf("tenant %q is invalid but was served", tenant)
		}
		if rr.Code == http.StatusBadRequest || rr.Code == http.StatusTooManyRequests {
			var eb struct {
				Error struct {
					Kind    string `json:"kind"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &eb); err != nil {
				t.Fatalf("query %q tenant %q: %d body is not JSON: %v; body: %.200s",
					rawQuery, tenant, rr.Code, err, rr.Body.String())
			}
			if eb.Error.Kind == "" {
				t.Fatalf("query %q tenant %q: %d body has no error kind: %.200s",
					rawQuery, tenant, rr.Code, rr.Body.String())
			}
		}
	})
}
