package server

// Lightweight API-key auth for the tenant header. Before this existed,
// X-Schedd-Tenant was trusted verbatim: any client could claim any tenant
// and ride its priority class. With a key set configured, a request that
// claims a tenant identity must present that tenant's shared secret in
// X-Schedd-Key, compared in constant time. The gateway (internal/cluster)
// verifies with the same KeySet at the edge and forwards both headers, so
// shards configured with the same keys re-verify the identity — defense in
// depth, no gateway-to-shard trust channel needed.
//
// Anonymous requests (no tenant header) stay first-class: they never need a
// key and land in the default class, exactly as before.

import (
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
)

// TenantKeyHeader carries the tenant's API key alongside X-Schedd-Tenant.
const TenantKeyHeader = "X-Schedd-Key"

// KeySet maps tenant name -> shared secret. An empty (or nil) KeySet
// disables authentication: every identity claim is accepted, the
// pre-auth behavior.
type KeySet map[string]string

// ParseKeySpec parses one -tenant-key flag value "tenant=secret".
func ParseKeySpec(spec string) (tenant, key string, err error) {
	tenant, key, ok := strings.Cut(spec, "=")
	if !ok || !ValidTenantName(tenant) || key == "" {
		return "", "", fmt.Errorf("tenant key %q is not tenant=secret (tenant: 1-%d chars of [A-Za-z0-9._-], secret non-empty)",
			spec, maxTenantNameLen)
	}
	return tenant, key, nil
}

// LoadKeyFile reads a JSON file of {"tenant": "secret", ...}.
func LoadKeyFile(path string) (KeySet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ks KeySet
	if err := json.Unmarshal(data, &ks); err != nil {
		return nil, fmt.Errorf("tenant key file %s: %w", path, err)
	}
	for t, k := range ks {
		if !ValidTenantName(t) || k == "" {
			return nil, fmt.Errorf("tenant key file %s: bad entry %q", path, t)
		}
	}
	return ks, nil
}

// Verify checks a tenant identity claim against the key set. It returns nil
// when the claim is acceptable: auth disabled (empty set), no identity
// claimed, or the presented key matches the tenant's secret in constant
// time. With auth enabled, a claimed tenant that has no configured key is
// rejected — otherwise registering a key for "gold" tenants would be
// bypassed by claiming an unregistered name into a permissive class.
func (ks KeySet) Verify(tenant, presented string) error {
	if len(ks) == 0 || tenant == "" {
		return nil
	}
	want, ok := ks[tenant]
	// Compare even for unknown tenants so the two rejections are not
	// distinguishable by timing.
	match := subtle.ConstantTimeCompare([]byte(want), []byte(presented)) == 1
	if !ok {
		return fmt.Errorf("tenant %q has no API key registered", tenant)
	}
	if !match {
		return fmt.Errorf("tenant %q: API key mismatch", tenant)
	}
	return nil
}

// tenantKeyFrom extracts the presented API key (query ?key= as a fallback
// for clients that cannot set headers, mirroring parseTenant).
func tenantKeyFrom(r *http.Request) string {
	if key := r.Header.Get(TenantKeyHeader); key != "" {
		return key
	}
	return r.URL.Query().Get("key")
}

// VerifyRequest applies Verify to a request's identity headers (the query
// fallbacks mirror parseTenant's).
func (ks KeySet) VerifyRequest(r *http.Request) error {
	tenant := r.Header.Get("X-Schedd-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	return ks.Verify(tenant, tenantKeyFrom(r))
}
