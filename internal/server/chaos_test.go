package server

// The chaos acceptance suite: schedd under fault injection and concurrent
// load. The contract under test is the ISSUE's acceptance criterion — with
// chaos active and at least 8 concurrent clients, the service returns only
// legal schedules on 200, structured JSON errors otherwise, sheds overload
// explicitly with 429 + Retry-After, and drains cleanly.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
)

// chaosUnit is one request shape the acceptance clients rotate through.
type chaosUnit struct {
	kernel  string
	machine string
	n       int
}

var chaosUnits = []chaosUnit{
	{"vvmul", "vliw4", 4},
	{"fir", "raw4", 4},
	{"yuv", "vliw4", 4},
	{"fir", "vliw2", 2},
}

// checkContract asserts the service contract for one response without
// touching testing.T, so client goroutines can call it. It reports whether
// the request was served (200) and any contract violation.
func checkContract(code int, header http.Header, body []byte, ddg, machineName string) (served bool, err error) {
	if strings.Contains(string(body), "goroutine ") {
		return false, fmt.Errorf("response body leaks a raw panic stack (status %d): %s", code, body)
	}
	decodeErr := func(kind string) error {
		var eb errorBody
		if jerr := json.Unmarshal(body, &eb); jerr != nil || eb.Error.Kind == "" {
			return fmt.Errorf("status %d body is not a structured error (%v): %s", code, jerr, body)
		}
		if eb.Error.Kind != kind {
			return fmt.Errorf("status %d kind = %q, want %q", code, eb.Error.Kind, kind)
		}
		return nil
	}
	switch code {
	case http.StatusOK:
		return true, checkLegal(body, ddg, machineName)
	case http.StatusTooManyRequests:
		if header.Get("Retry-After") == "" {
			return false, fmt.Errorf("429 without Retry-After")
		}
		return false, decodeErr("shed")
	case http.StatusGatewayTimeout:
		return false, decodeErr("deadline")
	case http.StatusServiceUnavailable:
		return false, decodeErr("draining")
	case http.StatusInternalServerError:
		// Allowed only as a structured scheduling failure, never a raw
		// panic escaping the middleware.
		return false, decodeErr("sched-failed")
	default:
		return false, fmt.Errorf("unexpected status %d: %s", code, body)
	}
}

// checkLegal rebuilds the schedule carried by a 200 body against the request's
// own DDG and machine and validates it — the client-side proof of legality.
func checkLegal(body []byte, ddg, machineName string) error {
	var resp scheduleResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		return fmt.Errorf("200 body is not a schedule response: %v", err)
	}
	g, err := irtext.ParseString(ddg)
	if err != nil {
		return fmt.Errorf("reparsing request ddg: %v", err)
	}
	m, err := machine.Named(machineName)
	if err != nil {
		return fmt.Errorf("machine %q: %v", machineName, err)
	}
	s := &schedule.Schedule{Graph: g, Machine: m}
	s.Placements = make([]schedule.Placement, len(resp.Placements))
	for i, p := range resp.Placements {
		s.Placements[i] = schedule.Placement{Cluster: p.Cluster, FU: p.FU, Start: p.Start, Latency: p.Latency}
	}
	for _, c := range resp.CommList {
		s.Comms = append(s.Comms, schedule.Comm{Value: c.Value, From: c.From, To: c.To, Depart: c.Depart, Arrive: c.Arrive})
	}
	if err := s.Validate(); err != nil {
		return fmt.Errorf("200 body is not a legal schedule: %v", err)
	}
	return nil
}

// TestChaosAcceptance is the headline acceptance test: a schedd whose every
// convergent rung panics, hammered by 8 concurrent clients mixing machines,
// kernels and deadlines, with admission tight enough to shed.
func TestChaosAcceptance(t *testing.T) {
	const (
		clients    = 8
		perClient  = 8
		maxRetries = 6
	)
	s := New(Config{
		Workers:        4,
		MaxQueue:       8,
		RatePerSec:     60,
		Burst:          6,
		DefaultTimeout: time.Second,
		Chaos:          &faultinject.Chaos{Class: faultinject.ChaosPassPanic, Seed: 7},
		Breakers:       robust.BreakerPolicy{Failures: 3, Cooldown: 50 * time.Millisecond},
		Seed:           2002,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	ddgs := make(map[chaosUnit]string)
	for _, u := range chaosUnits {
		ddgs[u] = ddgFor(t, u.kernel, u.n)
	}

	var served, shed, timedOut, failed atomic.Uint64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				u := chaosUnits[(c+r)%len(chaosUnits)]
				query := "machine=" + u.machine
				if (c+r)%4 == 3 {
					// Every fourth request carries a hopeless deadline;
					// it must come back as a structured 504, fast.
					query += "&deadline=1ms"
				}
				for attempt := 0; ; attempt++ {
					resp, err := http.Post(ts.URL+"/schedule?"+query, "text/plain", strings.NewReader(ddgs[u]))
					if err != nil {
						t.Errorf("client %d: transport error: %v", c, err)
						return
					}
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					ok, cerr := checkContract(resp.StatusCode, resp.Header, body, ddgs[u], u.machine)
					if cerr != nil {
						t.Errorf("client %d request %d: %v", c, r, cerr)
					}
					switch {
					case ok:
						served.Add(1)
					case resp.StatusCode == http.StatusTooManyRequests:
						shed.Add(1)
						if attempt < maxRetries {
							time.Sleep(time.Duration(10*(attempt+1)) * time.Millisecond)
							continue
						}
					case resp.StatusCode == http.StatusGatewayTimeout:
						timedOut.Add(1)
					default:
						failed.Add(1)
					}
					break
				}
			}
		}(c)
	}
	wg.Wait()

	if served.Load() == 0 {
		t.Fatal("chaos acceptance: no request was ever served")
	}
	// Shedding must be bounded: overload degrades, it does not take over.
	// With retries honoring Retry-After, at least half of the logical
	// requests must end in service.
	if float64(served.Load()) < 0.5*float64(clients*perClient) {
		t.Errorf("only %d of %d logical requests served (%d sheds, %d timeouts, %d failures)",
			served.Load(), clients*perClient, shed.Load(), timedOut.Load(), failed.Load())
	}
	if failed.Load() > 0 {
		t.Errorf("%d hard scheduling failures under pass-panic chaos; the ladder should always rescue", failed.Load())
	}

	// The stats endpoint must agree that shed accounting happened and no
	// handler ever panicked.
	st := s.StatsSnapshot()
	if st.Panics != 0 {
		t.Errorf("%d handler panics under chaos", st.Panics)
	}
	if st.Admission.ShedRate+st.Admission.ShedQueue != shed.Load() {
		t.Errorf("stats sheds %d+%d, clients saw %d",
			st.Admission.ShedRate, st.Admission.ShedQueue, shed.Load())
	}
	t.Logf("chaos acceptance: served=%d shed=%d timeouts=%d stats=%+v",
		served.Load(), shed.Load(), timedOut.Load(), st.Admission)

	// Graceful drain closes the exercise: in-flight work finishes, new
	// work is rejected, and the drain meets its deadline.
	slow := make(chan int, 1)
	go func() { slow <- postCode(ts, "machine=vliw4", ddgs[chaosUnits[0]]) }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	if code := <-slow; code != http.StatusOK && code != http.StatusServiceUnavailable &&
		code != http.StatusTooManyRequests {
		t.Errorf("request racing the drain got %d", code)
	}
	code, body := post(t, ts, "machine=vliw4", ddgs[chaosUnits[0]])
	if code != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: %d, want 503: %s", code, body)
	}
}

// TestChaosClassSweep runs a compact client load against one server per
// chaos class: pipeline poisons and a schedule corruptor. Every response
// must be a legal schedule; the degradation ladder must rescue each class.
func TestChaosClassSweep(t *testing.T) {
	classes := []faultinject.Chaos{
		{Class: faultinject.ChaosPassStall, Seed: 1, Stall: 100 * time.Millisecond},
		{Class: faultinject.ChaosWeightSkew, Seed: 3},
		{Class: faultinject.ChaosDropMemEdge, Seed: 5},
		{Class: faultinject.ChaosRewireArg, Seed: 9},
		{Class: faultinject.ChaosLatencyLiar, Seed: 11},
		{Class: faultinject.ScheduleClasses()[0], Seed: 13},
	}
	for i := range classes {
		chaos := classes[i]
		t.Run(chaos.Class, func(t *testing.T) {
			t.Parallel()
			s := New(Config{
				Workers:        2,
				MaxQueue:       8,
				DefaultTimeout: 2 * time.Second,
				Chaos:          &chaos,
				CacheSize:      -1, // recompute every request: the chaos path is the test
				Seed:           2002,
			})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			ddgs := make(map[chaosUnit]string)
			for _, u := range chaosUnits[:2] {
				ddgs[u] = ddgFor(t, u.kernel, u.n)
			}
			var wg sync.WaitGroup
			for c := 0; c < 2; c++ {
				wg.Add(1)
				go func(c int) {
					defer wg.Done()
					for r := 0; r < 2; r++ {
						u := chaosUnits[(c+r)%2] // vvmul/vliw4 and fir/raw4
						resp, err := http.Post(ts.URL+"/schedule?machine="+u.machine, "text/plain", strings.NewReader(ddgs[u]))
						if err != nil {
							t.Errorf("client %d: %v", c, err)
							return
						}
						body, _ := io.ReadAll(resp.Body)
						resp.Body.Close()
						ok, cerr := checkContract(resp.StatusCode, resp.Header, body, ddgs[u], u.machine)
						if cerr != nil {
							t.Errorf("class %s client %d: %v", chaos.Class, c, cerr)
						}
						if !ok {
							t.Errorf("class %s: request not served (status %d): %s", chaos.Class, resp.StatusCode, body)
						}
					}
				}(c)
			}
			wg.Wait()
			if st := s.StatsSnapshot(); st.Panics != 0 {
				t.Errorf("%d handler panics", st.Panics)
			}
		})
	}
}

// TestStatsShape pins the /stats JSON contract the CI smoke step scrapes
// into BENCH_schedd.json: the top-level sections and core counters must
// exist and decode.
func TestStatsShape(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ddg := ddgFor(t, "vvmul", 4)
	if code, body := post(t, ts, "machine=vliw4", ddg); code != http.StatusOK {
		t.Fatalf("seed request: %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	for _, key := range []string{"uptimeSec", "draining", "panics", "engine", "admission", "breakers"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats missing %q: %s", key, body)
		}
	}
	var adm AdmissionStats
	if err := json.Unmarshal(m["admission"], &adm); err != nil {
		t.Fatal(err)
	}
	if adm.Accepted != 1 || adm.Completed != 1 {
		t.Errorf("admission counters %+v after one served request", adm)
	}
}
