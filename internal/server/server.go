// Package server is the hardened scheduling service behind cmd/schedd: an
// HTTP/JSON daemon that accepts dependence-graph units in irtext (.ddg) form
// and returns verified schedules computed by the batch engine
// (internal/engine) over the resilient driver (internal/robust).
//
// The robustness layer is the point of the package:
//
//   - Admission control: a token bucket smooths arrivals and a bounded queue
//     caps admitted-but-unfinished work; anything beyond either bound is shed
//     with 429 + Retry-After, so overload degrades instead of collapsing.
//   - Deadline propagation: the request context (plus an optional per-request
//     deadline) travels end-to-end — queued requests stop waiting, in-flight
//     ladder rungs are abandoned, and singleflight waiters detach — and an
//     already-expired deadline is rejected before any scheduler runs.
//   - Per-rung circuit breakers: each ladder rung is guarded per machine
//     fingerprint (robust.BreakerSet), so a rung persistently failing for a
//     machine shape is skipped without paying its time budget each request.
//   - Graceful drain: StartDrain stops admitting new work (503), Drain waits
//     for in-flight requests up to a deadline, and the final stats snapshot
//     is flushed through Config.Logf.
//   - Panic containment: a recovery middleware converts any handler crash
//     into a structured JSON error, so no 500 is ever a raw panic.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/faultinject"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/store"
)

// Config configures a Server. The zero value of every field selects a
// sensible production default.
type Config struct {
	// Workers caps concurrently scheduling requests. Default GOMAXPROCS
	// (via engine semantics: 0 lets newAdmission clamp to MaxQueue).
	Workers int
	// MaxQueue caps admitted-but-unfinished requests (waiting + running).
	// Default 64.
	MaxQueue int
	// RatePerSec is the token-bucket refill rate; 0 disables rate limiting.
	RatePerSec float64
	// Burst is the token-bucket size. Default 2×RatePerSec (min 1).
	Burst int
	// CacheSize is the engine's schedule-cache bound. Default 256; negative
	// disables memoization.
	CacheSize int
	// DefaultTimeout is the per-attempt rung budget when the request does
	// not set one. Default 2s.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps the request body. Default 1 MiB.
	MaxBodyBytes int64
	// Tenancy configures multi-tenant QoS: priority classes, tenant->class
	// assignments, and the default class. The zero value runs a single
	// default class with the server-wide bounds — exactly the pre-tenancy
	// behavior — and requests without an X-Schedd-Tenant header always
	// land there under the anonymous identity.
	Tenancy TenantConfig
	// Breakers overrides the per-rung breaker policy. Zero means defaults.
	Breakers robust.BreakerPolicy
	// Chaos, when non-nil, injects the configured fault class into every
	// request's ladder — the resilience-testing mode behind schedd -chaos.
	Chaos *faultinject.Chaos
	// StoreDir, when non-empty, backs the engine's schedule cache with the
	// crash-safe persistent store (internal/store) rooted there. The server
	// reports not-ready on /readyz until the store's recovery replay has
	// completed (see OpenStore).
	StoreDir string
	// StoreFS overrides the store's filesystem seam (fault injection); nil
	// means the real filesystem.
	StoreFS store.FS
	// StoreQueueLen bounds the write-behind flush queue. Default 256.
	StoreQueueLen int
	// StoreSnapshotEvery and StoreMaxEntries pass through to store.Options.
	StoreSnapshotEvery int
	StoreMaxEntries    int
	// StoreNoFsync skips fsyncs (crash-unsafe; tests and benchmarks).
	StoreNoFsync bool
	// ShardID, when non-empty, names this instance in a schedgw cluster: it
	// rides every /schedule response as the "shard" field and the
	// X-Schedd-Shard header, and appears in /stats, so clients and the
	// gateway can attribute every answer to the shard that computed it.
	ShardID string
	// TenantKeys, when non-empty, requires requests that claim a tenant
	// identity to present the tenant's shared secret in X-Schedd-Key
	// (rejected with 401 otherwise). Empty means identity claims are
	// trusted, the pre-auth behavior.
	TenantKeys KeySet
	// PeerKey, when non-empty, enables the shard-to-shard cache handoff
	// surface (see peer.go): the /cache endpoints accept calls presenting
	// this shared cluster secret, and signed X-Schedd-Peer hints from the
	// gateway trigger peer cache lookup before compute. Empty disables the
	// whole peer surface — the pre-cluster-membership behavior.
	PeerKey string
	// PeerTimeout bounds one peer cache fetch; a slow or dead peer must
	// never stall the compute fallback for long. Default 750ms.
	PeerTimeout time.Duration
	// PeerTransport overrides the peer-fetch round-tripper (tests). Nil
	// means http.DefaultTransport.
	PeerTransport http.RoundTripper
	// Seed is the default noise seed when the request does not set one.
	Seed int64
	// Logf receives operational log lines (drain progress, flushed stats).
	// Nil discards them.
	Logf func(format string, args ...any)
}

// Server is the scheduling service. Create one with New; its Handler is safe
// for concurrent use.
type Server struct {
	cfg      Config
	engine   *engine.Engine
	breakers *robust.BreakerSet
	adm      *admission
	mux      *http.ServeMux
	metrics  *metrics
	start    time.Time

	draining atomic.Bool
	inflight inflightGauge
	panics   atomic.Uint64

	// peer counts the cache-handoff surface (peer.go); peerClient performs
	// outbound record fetches from previous ring owners.
	peer       peerCounters
	peerClient *http.Client

	// testHookPostAdmit, when non-nil, runs right after admission grants a
	// queue slot — the seam the release-exactly-once panic regression test
	// uses to crash the handler at the worst moment.
	testHookPostAdmit func()

	// ready gates /readyz on startup completion: a server with no store is
	// ready immediately, one with a store only after recovery replay ends.
	// recoveryDone closes when the recovery goroutine finishes (or at New
	// when there is nothing to recover) so Drain can wait for it.
	ready        atomic.Bool
	recoveryDone chan struct{}

	mu       sync.Mutex
	machines map[string]machineEntry // name -> model + breaker scope
}

type machineEntry struct {
	model *machine.Model
	scope string
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = cfg.MaxQueue
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, 2*cfg.RatePerSec))
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Server{
		cfg:          cfg,
		engine:       engine.New(0, cfg.CacheSize),
		breakers:     robust.NewBreakerSet(cfg.Breakers),
		adm:          newAdmission(cfg.Tenancy, cfg.MaxQueue, cfg.Workers, cfg.RatePerSec, cfg.Burst, time.Now),
		mux:          http.NewServeMux(),
		start:        time.Now(),
		machines:     make(map[string]machineEntry),
		recoveryDone: make(chan struct{}),
	}
	if cfg.StoreDir == "" {
		// Nothing to replay: ready the moment the listener is up.
		s.ready.Store(true)
		close(s.recoveryDone)
	}
	s.peerClient = &http.Client{Transport: cfg.PeerTransport}
	s.metrics = newMetrics(s)
	s.breakers.SetObserver(s.metrics.observeBreaker)
	s.mux.HandleFunc("/schedule", s.handleSchedule)
	s.mux.HandleFunc("/cache/", s.handleCache)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler, wrapped in the panic-recovery
// middleware.
func (s *Server) Handler() http.Handler { return s.recoverer(s.mux) }

// OpenStore attaches the persistent schedule store configured by
// Config.StoreDir and starts recovery replay in the background. Fatal
// problems — an unreachable directory, another live daemon holding the
// lockfile — surface synchronously so the caller can refuse to start;
// replay itself (possibly thousands of records through the legality gate)
// runs async, with /readyz answering 503 until it completes. No-op when no
// store is configured.
func (s *Server) OpenStore() error {
	if s.cfg.StoreDir == "" {
		return nil
	}
	err := s.engine.AttachStore(engine.PersistConfig{
		Dir:           s.cfg.StoreDir,
		FS:            s.cfg.StoreFS,
		QueueLen:      s.cfg.StoreQueueLen,
		SnapshotEvery: s.cfg.StoreSnapshotEvery,
		MaxEntries:    s.cfg.StoreMaxEntries,
		NoFsync:       s.cfg.StoreNoFsync,
		Logf:          s.cfg.Logf,
	})
	if err != nil {
		return err
	}
	go func() {
		defer close(s.recoveryDone)
		rs, rerr := s.engine.RecoverStore()
		if rerr != nil {
			// A failed replay is not fatal: the store re-opened a fresh WAL
			// and whatever passed the gate is already serving warm.
			s.cfg.Logf("schedd: store recovery error (serving with partial warm cache): %v", rerr)
		}
		s.cfg.Logf("schedd: store recovery: replayed=%d droppedCorrupt=%d droppedIllegal=%d droppedSkewed=%d truncatedTails=%d skippedFiles=%d snapshotGen=%d",
			rs.Replayed, rs.DroppedCorrupt, rs.DroppedIllegal, rs.DroppedSkewed, rs.TruncatedTails, rs.SkippedFiles, rs.SnapshotGen)
		s.ready.Store(true)
	}()
	return nil
}

// inflightGauge counts requests currently inside handleSchedule so a drain
// can wait for them. sync.WaitGroup is the wrong tool here: it forbids Add
// concurrent with Wait once the counter can touch zero, and that is exactly
// our traffic pattern — requests keep arriving during a drain just to be
// told 503. The zero value is ready to use.
type inflightGauge struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

func (g *inflightGauge) enter() {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	g.n++
	g.mu.Unlock()
}

func (g *inflightGauge) exit() {
	g.mu.Lock()
	g.n--
	if g.n == 0 {
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// current returns the in-flight request count — the drain-progress gauge.
func (g *inflightGauge) current() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// waitZero blocks until no request is in flight. A request entering after
// the gauge hits zero is the drain-flag check's problem, not ours.
func (g *inflightGauge) waitZero() {
	g.mu.Lock()
	if g.cond == nil {
		g.cond = sync.NewCond(&g.mu)
	}
	for g.n > 0 {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// errorJSON is the structured error body every non-200 carries.
type errorJSON struct {
	// Kind classifies the failure: bad-request, unauthorized, shed,
	// draining, deadline, sched-failed, panic.
	Kind    string `json:"kind"`
	Message string `json:"message"`
	// Cause splits shed errors by which admission bound rejected the
	// request (rate, tenant-rate, quota, queue); Tenant and Class
	// attribute the shed to the identity that hit the bound.
	Cause  string `json:"cause,omitempty"`
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Rung and Stage carry the resilient driver's failure site for
	// sched-failed and deadline errors.
	Rung  string `json:"rung,omitempty"`
	Stage string `json:"stage,omitempty"`
	// Attempts is the driver's per-rung report, when one exists.
	Attempts []attemptJSON `json:"attempts,omitempty"`
}

type errorBody struct {
	Error errorJSON `json:"error"`
}

// attemptJSON is one ladder attempt in a response.
type attemptJSON struct {
	Rung  string  `json:"rung"`
	Ms    float64 `json:"ms"`
	Stage string  `json:"stage,omitempty"`
	Error string  `json:"error,omitempty"`
}

// placementJSON is one instruction's placement in a 200 body.
type placementJSON struct {
	Cluster int `json:"cluster"`
	FU      int `json:"fu"`
	Start   int `json:"start"`
	Latency int `json:"latency"`
}

// commJSON is one inter-cluster value move in a 200 body.
type commJSON struct {
	Value  int `json:"value"`
	From   int `json:"from"`
	To     int `json:"to"`
	Depart int `json:"depart"`
	Arrive int `json:"arrive"`
}

// ShardHeader carries Config.ShardID on every /schedule response, so the
// gateway and clients can attribute an answer without parsing the body.
const ShardHeader = "X-Schedd-Shard"

// scheduleResponse is the 200 body: enough to reconstruct and re-validate
// the full schedule client-side (placements are indexed by instruction id).
type scheduleResponse struct {
	Graph      string          `json:"graph"`
	Machine    string          `json:"machine"`
	Shard      string          `json:"shard,omitempty"`
	Tenant     string          `json:"tenant,omitempty"`
	Class      string          `json:"class,omitempty"`
	Served     string          `json:"served"`
	Cycles     int             `json:"cycles"`
	Comms      int             `json:"comms"`
	Placements []placementJSON `json:"placements"`
	CommList   []commJSON      `json:"commList,omitempty"`
	CacheHit   bool            `json:"cacheHit,omitempty"`
	Shared     bool            `json:"shared,omitempty"`
	Degraded   bool            `json:"degraded,omitempty"`
	// PeerHit says the serving cache entry was fetched from the previous
	// ring owner (through the legality gate) rather than computed or found
	// locally; it always rides with CacheHit.
	PeerHit bool `json:"peerHit,omitempty"`
	Attempts   []attemptJSON   `json:"attempts,omitempty"`
	ElapsedMs  float64         `json:"elapsedMs"`
	// Trace is the request's full observability record, present when the
	// request asked for ?trace=1.
	Trace *obs.Trace `json:"trace,omitempty"`
}

// StatsResponse is the /stats body and the snapshot flushed on drain.
type StatsResponse struct {
	UptimeSec float64              `json:"uptimeSec"`
	Shard     string               `json:"shard,omitempty"`
	Ready     bool                 `json:"ready"`
	Draining  bool                 `json:"draining"`
	Inflight  int                  `json:"inflight"`
	Panics    uint64               `json:"panics"`
	Engine    engine.Stats         `json:"engine"`
	Admission AdmissionStats       `json:"admission"`
	Peer      PeerStats            `json:"peer"`
	Breakers  []robust.BreakerStat `json:"breakers"`
	// Metrics folds the Prometheus registry's samples into the JSON stats
	// body (the same values GET /metrics renders as text).
	Metrics []obs.Sample `json:"metrics,omitempty"`
}

// StatsSnapshot returns the service counters as served by /stats.
func (s *Server) StatsSnapshot() StatsResponse {
	return StatsResponse{
		UptimeSec: time.Since(s.start).Seconds(),
		Shard:     s.cfg.ShardID,
		Ready:     s.ready.Load(),
		Draining:  s.draining.Load(),
		Inflight:  s.inflight.current(),
		Panics:    s.panics.Load(),
		Engine:    s.engine.Stats(),
		Admission: s.adm.stats(),
		Peer:      s.peer.snapshot(s.cfg.PeerKey != ""),
		Breakers:  s.breakers.Snapshot(),
		Metrics:   s.metrics.reg.Samples(),
	}
}

// writeJSON writes v with status code; encoding problems fall back to a
// plain 500 (they indicate a server bug, not a request problem).
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, e errorJSON) {
	writeJSON(w, code, errorBody{Error: e})
}

// recoverer converts a panicking handler into a structured 500 so that no
// response is ever a raw panic trace. Panics below the handler (inside a
// scheduler) are already contained by internal/robust; this is the last
// line of defense for the service's own code.
func (s *Server) recoverer(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tw := &trackingWriter{ResponseWriter: w}
		defer func() {
			if v := recover(); v != nil {
				s.panics.Add(1)
				s.cfg.Logf("schedd: panic serving %s: %v\n%s", r.URL.Path, v, debug.Stack())
				if !tw.wrote {
					writeError(tw, http.StatusInternalServerError, errorJSON{
						Kind:    "panic",
						Message: fmt.Sprintf("internal panic: %v", v),
					})
				}
			}
		}()
		next.ServeHTTP(tw, r)
	})
}

// trackingWriter remembers whether a response has started, so the recovery
// middleware knows if it may still write a structured error.
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
}

func (t *trackingWriter) WriteHeader(code int) {
	t.wrote = true
	t.ResponseWriter.WriteHeader(code)
}

func (t *trackingWriter) Write(p []byte) (int, error) {
	t.wrote = true
	return t.ResponseWriter.Write(p)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// Liveness: the process is up, even while draining.
	w.Header().Set("Content-Type", "text/plain")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case !s.ready.Load():
		// Startup incomplete — today that means store recovery replay is
		// still running. Readiness is the general gate: any future slow
		// startup work holds it the same way.
		w.Header().Set("Retry-After", "1")
		http.Error(w, "starting", http.StatusServiceUnavailable)
	case s.draining.Load():
		w.Header().Set("Retry-After", "1")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.adm.depth() >= s.adm.capacity():
		w.Header().Set("Retry-After", "1")
		http.Error(w, "queue full", http.StatusServiceUnavailable)
	default:
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ready")
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.StatsSnapshot())
}

// machineFor resolves and caches a machine model and its breaker scope (the
// fingerprint, hex-encoded) by name.
func (s *Server) machineFor(name string) (machineEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ent, ok := s.machines[name]; ok {
		return ent, nil
	}
	m, err := machine.Named(name)
	if err != nil {
		return machineEntry{}, err
	}
	fp := m.Fingerprint()
	ent := machineEntry{model: m, scope: fmt.Sprintf("%x", fp[:8])}
	s.machines[name] = ent
	return ent, nil
}

// scheduleRequest is everything parsed out of one /schedule call.
type scheduleRequest struct {
	mach      machineEntry
	tenant    string // accounting identity (anonymous when no header)
	class     string // the tenant's priority class
	scheduler string
	seed      int64
	verify    bool
	fallback  bool
	timeout   time.Duration // per-attempt rung budget
	deadline  time.Duration // whole-request budget (0 = client's own)
	trace     bool          // attach the observability trace to the response
}

// parseTenant extracts and validates the request's tenant identity from the
// X-Schedd-Tenant header (query ?tenant= as a fallback for clients that
// cannot set headers). Absence is fine — the anonymous identity in the
// default class — but a present, malformed identity is a 400: admission
// accounting must never be attributed to a garbage name.
func parseTenant(r *http.Request) (string, error) {
	tenant := r.Header.Get("X-Schedd-Tenant")
	if tenant == "" {
		tenant = r.URL.Query().Get("tenant")
	}
	if tenant == "" {
		return "", nil
	}
	if !ValidTenantName(tenant) {
		return "", fmt.Errorf("bad tenant %.80q: want 1-%d chars of [A-Za-z0-9._-]", tenant, maxTenantNameLen)
	}
	return tenant, nil
}

// parseRequest validates the query parameters of a /schedule call.
func (s *Server) parseRequest(r *http.Request) (scheduleRequest, error) {
	q := r.URL.Query()
	req := scheduleRequest{
		scheduler: "convergent",
		seed:      s.cfg.Seed,
		verify:    true,
		fallback:  true,
		timeout:   s.cfg.DefaultTimeout,
	}
	name := q.Get("machine")
	if name == "" {
		name = "raw16"
	}
	ent, err := s.machineFor(name)
	if err != nil {
		return req, err
	}
	req.mach = ent
	if v := q.Get("scheduler"); v != "" {
		req.scheduler = v
	}
	if v := q.Get("seed"); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			return req, fmt.Errorf("bad seed %q: %w", v, err)
		}
		req.seed = seed
	}
	parseBool := func(key string, into *bool) error {
		if v := q.Get(key); v != "" {
			b, err := strconv.ParseBool(v)
			if err != nil {
				return fmt.Errorf("bad %s %q: %w", key, v, err)
			}
			*into = b
		}
		return nil
	}
	if err := parseBool("verify", &req.verify); err != nil {
		return req, err
	}
	if err := parseBool("fallback", &req.fallback); err != nil {
		return req, err
	}
	if err := parseBool("trace", &req.trace); err != nil {
		return req, err
	}
	if v := q.Get("timeout"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 {
			return req, fmt.Errorf("bad timeout %q", v)
		}
		req.timeout = d
	}
	deadline := q.Get("deadline")
	if deadline == "" {
		deadline = r.Header.Get("X-Schedd-Deadline")
	}
	if deadline != "" {
		d, err := time.ParseDuration(deadline)
		if err != nil || d <= 0 {
			return req, fmt.Errorf("bad deadline %q", deadline)
		}
		req.deadline = d
	}
	return req, nil
}

// ladderFor builds the request's ladder and its cache identity, mirroring
// cmd/convsched. Under Config.Chaos every request gets the chaos-poisoned
// default ladder — the resilience mode.
func (s *Server) ladderFor(req scheduleRequest) (ladder []robust.Rung, ladderID string, err error) {
	if s.cfg.Chaos != nil {
		if ladder, err = s.cfg.Chaos.Ladder(req.mach.model, req.seed); err != nil {
			return nil, "", err
		}
		return ladder, fmt.Sprintf("chaos:%s:%d:seed=%d", s.cfg.Chaos.Class, s.cfg.Chaos.Seed, req.seed), nil
	}
	switch {
	case req.fallback && req.scheduler == "convergent":
		// Nil ladder: the driver walks DefaultLadder and the engine derives
		// the cache identity itself.
		return nil, "", nil
	case req.fallback:
		l, err := robust.LadderFor(req.mach.model, req.scheduler, req.seed)
		if err != nil {
			return nil, "", err
		}
		return l, fmt.Sprintf("fallback:%s:seed=%d", req.scheduler, req.seed), nil
	default:
		r, err := robust.RungFor(req.mach.model, req.scheduler, req.seed)
		if err != nil {
			return nil, "", err
		}
		return []robust.Rung{r}, fmt.Sprintf("rung:%s:seed=%d", req.scheduler, req.seed), nil
	}
}

func (s *Server) handleSchedule(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errorJSON{
			Kind: "bad-request", Message: "POST a .ddg body to /schedule",
		})
		return
	}
	if s.cfg.ShardID != "" {
		w.Header().Set(ShardHeader, s.cfg.ShardID)
	}
	// Count ourselves in-flight before re-checking the drain flag: either
	// the drain sees us and waits, or we see the drain and bail.
	s.inflight.enter()
	defer s.inflight.exit()
	if s.draining.Load() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, errorJSON{
			Kind: "draining", Message: "server is draining; retry against another instance",
		})
		return
	}

	// Tenant identity first: admission attributes every decision to it, so
	// a malformed identity is a 400 before any bound is charged.
	tenant, err := parseTenant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: err.Error()})
		return
	}
	// Identity proof next: with keys configured, a claimed tenant must
	// present its shared secret before admission charges anything to it.
	if err := s.cfg.TenantKeys.Verify(tenant, tenantKeyFrom(r)); err != nil {
		writeError(w, http.StatusUnauthorized, errorJSON{
			Kind: "unauthorized", Message: err.Error(), Tenant: tenant,
		})
		return
	}

	// Admission: global rate limit, then the tenant's own bucket, quota,
	// and class queue. Shed explicitly, attributed to tenant and cause.
	grant, cause, retry := s.adm.admit(tenant)
	if grant == nil {
		shownTenant := tenant
		if shownTenant == "" {
			shownTenant = AnonymousTenant
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
		s.metrics.observeShed(shownTenant, cause)
		writeError(w, http.StatusTooManyRequests, errorJSON{
			Kind:    "shed",
			Message: fmt.Sprintf("overloaded, request shed by admission control (%s, tenant %s)", cause, shownTenant),
			Cause:   cause,
			Tenant:  shownTenant,
		})
		return
	}
	// The grant is released by this defer exactly once — admitGrant.release
	// is idempotent — including when the handler panics and the recovery
	// middleware takes over: the deferred release runs during unwinding,
	// before the middleware writes the 500.
	defer grant.release()
	if s.testHookPostAdmit != nil {
		s.testHookPostAdmit()
	}
	t0 := time.Now()

	req, err := s.parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: err.Error()})
		return
	}
	req.tenant, req.class = grant.Tenant(), grant.Class()
	g, err := irtext.Parse(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: err.Error()})
		return
	}
	if g.Name == "" {
		g.Name = "anonymous"
	}

	// Deadline propagation: the request context already ends when the
	// client disconnects; an explicit deadline tightens it. Everything
	// below — queue wait, ladder rungs, singleflight waits — sees this ctx.
	ctx := r.Context()
	if req.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.deadline)
		defer cancel()
	}

	if !s.adm.acquireWorker(grant, ctx.Done()) {
		s.adm.countTimeout(grant)
		writeError(w, http.StatusGatewayTimeout, errorJSON{
			Kind:    "deadline",
			Message: fmt.Sprintf("deadline expired waiting for a worker slot: %v", ctx.Err()),
			Tenant:  req.tenant,
			Class:   req.class,
		})
		return
	}
	wait := time.Since(t0)
	defer s.adm.releaseWorker()

	ladder, ladderID, err := s.ladderFor(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, errorJSON{Kind: "bad-request", Message: err.Error()})
		return
	}
	var tr *obs.Trace
	if req.trace {
		tr = obs.NewTrace(g.Name, req.mach.model.Name)
		tr.SetTenant(req.tenant, req.class)
		s.metrics.tracedRequests.Inc()
	}
	// The tenant rides the context through the engine/robust path so any
	// layer below (logs, future per-tenant scheduling policy) can see it.
	ctx = obs.WithTenant(ctx, req.tenant)
	job := engine.Job{
		ID:      g.Name,
		Graph:   g,
		Machine: req.mach.model,
		Opts: robust.Options{
			Timeout:      req.timeout,
			Verify:       req.verify,
			Ladder:       ladder,
			Seed:         req.seed,
			Breakers:     s.breakers,
			BreakerScope: req.mach.scope,
		},
		LadderID: ladderID,
		Trace:    tr,
	}
	// Peer cache lookup before compute: a gateway-signed hint names the
	// previous ring owner of this request's keyspace segment; on a local
	// miss the record is fetched from it and imported through the legality
	// gate, so the engine call below serves it as a warm hit.
	peerHit := false
	if peerBase, sigOK := s.peerHint(r); !sigOK {
		s.peer.badHints.Add(1)
	} else if peerBase != "" {
		peerHit = s.peerFetch(ctx, peerBase, job)
	}
	res := s.engine.Schedule(ctx, job)
	total := time.Since(t0)
	s.adm.observe(grant, wait, total, res.Err != nil)
	s.metrics.observeRequest(req.tenant, req.class, total.Seconds(), res.Err != nil)
	s.metrics.observeReport(res.Report)

	if res.Err != nil {
		s.writeScheduleError(w, ctx, grant, res)
		return
	}
	resp := buildResponse(req.mach.model.Name, g.Name, res, total)
	resp.Shard = s.cfg.ShardID
	resp.PeerHit = peerHit
	resp.Tenant, resp.Class = req.tenant, req.class
	resp.Trace = tr.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}

// writeScheduleError maps an engine failure onto a status code and a
// structured body.
func (s *Server) writeScheduleError(w http.ResponseWriter, ctx context.Context, grant *admitGrant, res engine.Result) {
	e := errorJSON{Kind: "sched-failed", Message: res.Err.Error(),
		Tenant: grant.Tenant(), Class: grant.Class()}
	var serr *robust.SchedError
	if errors.As(res.Err, &serr) {
		e.Rung, e.Stage = serr.Rung, string(serr.Stage)
	}
	if res.Report != nil {
		e.Attempts = attemptsJSON(res.Report)
	}
	code := http.StatusInternalServerError
	if ctx.Err() != nil || (serr != nil && serr.Stage == robust.StageDeadline) {
		s.adm.countTimeout(grant)
		e.Kind = "deadline"
		code = http.StatusGatewayTimeout
	}
	writeError(w, code, e)
}

func attemptsJSON(rep *robust.Report) []attemptJSON {
	out := make([]attemptJSON, 0, len(rep.Attempts))
	for _, a := range rep.Attempts {
		aj := attemptJSON{Rung: a.Rung, Ms: float64(a.Duration.Microseconds()) / 1000}
		if a.Err != nil {
			aj.Stage = string(a.Err.Stage)
			aj.Error = a.Err.Error()
		}
		out = append(out, aj)
	}
	return out
}

func buildResponse(machineName, graphName string, res engine.Result, total time.Duration) scheduleResponse {
	resp := scheduleResponse{
		Graph:     graphName,
		Machine:   machineName,
		Served:    res.Served,
		Cycles:    res.Schedule.Length(),
		Comms:     res.Schedule.CommCount(),
		CacheHit:  res.CacheHit,
		Shared:    res.Shared,
		ElapsedMs: float64(total.Microseconds()) / 1000,
	}
	resp.Placements = make([]placementJSON, len(res.Schedule.Placements))
	for i, p := range res.Schedule.Placements {
		resp.Placements[i] = placementJSON{Cluster: p.Cluster, FU: p.FU, Start: p.Start, Latency: p.Latency}
	}
	for _, c := range res.Schedule.Comms {
		resp.CommList = append(resp.CommList, commJSON{Value: c.Value, From: c.From, To: c.To, Depart: c.Depart, Arrive: c.Arrive})
	}
	if res.Report != nil {
		resp.Attempts = attemptsJSON(res.Report)
		resp.Degraded = len(res.Report.Failed()) > 0
	}
	return resp
}

// StartDrain flips the server into draining mode: /readyz goes 503 and new
// /schedule requests are rejected. Idempotent.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Drain performs the graceful-shutdown sequence: stop admitting, wait for
// every in-flight request to finish (bounded by ctx), flush and close the
// persistent store so computed schedules survive the restart, and flush a
// final stats snapshot through Config.Logf. It returns ctx's error if
// in-flight work outlived the drain deadline.
func (s *Server) Drain(ctx context.Context) error {
	s.StartDrain()
	done := make(chan struct{})
	go func() {
		s.inflight.waitZero()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("schedd: drain deadline expired with requests still in flight: %w", ctx.Err())
	}
	if s.cfg.StoreDir != "" {
		// A drain during startup must not close the store out from under the
		// recovery replay; wait for it (bounded by the drain deadline).
		select {
		case <-s.recoveryDone:
			if ferr := s.engine.FlushStore(ctx); ferr != nil {
				s.cfg.Logf("schedd: store flush on drain: %v", ferr)
			}
			if cerr := s.engine.CloseStore(); cerr != nil {
				s.cfg.Logf("schedd: store close on drain: %v", cerr)
			} else {
				s.cfg.Logf("schedd: store flushed and closed")
			}
		case <-ctx.Done():
			s.cfg.Logf("schedd: drain deadline expired before store recovery finished; store left unflushed")
		}
	}
	snap, merr := json.Marshal(s.StatsSnapshot())
	if merr == nil {
		s.cfg.Logf("schedd: final stats %s", snap)
	}
	return err
}

// Crash abandons the persistent store without flushing or syncing — the
// in-process stand-in for SIGKILL in shard-failure drills (the cluster chaos
// suite). Nothing else is torn down: callers close the listener themselves,
// and entries already handed to the OS survive exactly as they would a real
// kill. Never call this on a server you intend to keep.
func (s *Server) Crash() { s.engine.CrashStore() }
