package server

// Conformance tests for the /metrics endpoint: the text format parses, every
// line belongs to a HELP/TYPE-announced family, counters never move
// backwards between scrapes, the family list matches the golden file under
// testdata/ (so new series are added deliberately), concurrent scraping
// under load is race-free, and the endpoint stays servable during drain —
// that is how an operator watches drain progress.

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// scrapeMetrics GETs /metrics and returns the parsed samples by series name.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}

	samples := make(map[string]float64)
	announced := make(map[string]bool) // families with HELP+TYPE seen
	typed := make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			announced[strings.SplitN(rest, " ", 2)[0]] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.SplitN(rest, " ", 2)
			if len(parts) != 2 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("TYPE line %q names unknown type", line)
			}
			typed[parts[0]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line %q", line)
		}
		// Sample line: name or name{labels}, space, float value.
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line %q has no value", line)
		}
		series, valStr := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("sample line %q: bad value: %v", line, err)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("series %q rendered twice", series)
		}
		samples[series] = v
		fam := series
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		fam = strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(fam, "_bucket"), "_sum"), "_count")
		if !announced[fam] || !typed[fam] {
			t.Fatalf("series %q not announced by HELP+TYPE (family %q)", series, fam)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return samples
}

func TestMetricsConformance(t *testing.T) {
	s := New(Config{Seed: 2002, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Drive traffic of every flavor so the event-driven series exist:
	// success, traced success, and a parse failure.
	body := ddgFor(t, "vvmul", 4)
	if code, _ := post(t, ts, "machine=raw4", body); code != 200 {
		t.Fatalf("schedule = %d", code)
	}
	if code, _ := post(t, ts, "machine=raw4&trace=1&seed=7", body); code != 200 {
		t.Fatalf("traced schedule = %d", code)
	}
	if code, _ := post(t, ts, "machine=raw4", "not a graph"); code != 400 {
		t.Fatalf("bad body = %d", code)
	}

	first := scrapeMetrics(t, ts)
	for _, want := range []string{
		"schedd_requests_accepted_total",
		"schedd_requests_completed_total",
		`schedd_cache_events_total{kind="miss"}`,
		"schedd_traced_requests_total",
		`schedd_request_seconds_count{outcome="ok"}`,
		"schedd_ready",
		"schedd_inflight",
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("scrape missing %s", want)
		}
	}
	if got := first["schedd_traced_requests_total"]; got != 1 {
		t.Errorf("schedd_traced_requests_total = %g, want 1", got)
	}
	if got := first["schedd_requests_accepted_total"]; got != 3 {
		t.Errorf("schedd_requests_accepted_total = %g, want 3", got)
	}

	// More traffic, then the monotonicity check: no counter goes backwards.
	if code, _ := post(t, ts, "machine=raw4", body); code != 200 {
		t.Fatalf("second schedule = %d", code)
	}
	second := scrapeMetrics(t, ts)
	for series, v1 := range first {
		if !strings.Contains(series, "_total") && !strings.Contains(series, "_count") &&
			!strings.Contains(series, "_sum") && !strings.Contains(series, "_bucket") {
			continue // gauges may move either way
		}
		v2, ok := second[series]
		if !ok {
			t.Errorf("series %s vanished between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}
	if second[`schedd_cache_events_total{kind="hit"}`] < 1 {
		t.Errorf("warm rerun recorded no cache hit")
	}
}

// TestMetricsConcurrentScrape scrapes while scheduling from many goroutines;
// run under -race this pins that scrape-time syncing and event-driven
// observation never race.
func TestMetricsConcurrentScrape(t *testing.T) {
	s := New(Config{Seed: 2002, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := ddgFor(t, "vvmul", 4)

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				postCode(ts, fmt.Sprintf("machine=raw4&seed=%d&trace=1", i*10+j), body)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 10; j++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/metrics = %d under load", resp.StatusCode)
				}
			}
		}()
	}
	wg.Wait()
	if got := scrapeMetrics(t, ts)["schedd_traced_requests_total"]; got != 20 {
		t.Errorf("schedd_traced_requests_total = %g, want 20", got)
	}
}

// TestMetricsGoldenFamilies pins the registered metric names, kinds, and
// label sets. Regenerate deliberately with -update when adding a series.
func TestMetricsGoldenFamilies(t *testing.T) {
	s := New(Config{Logf: func(string, ...any) {}})
	var b strings.Builder
	for _, f := range s.metrics.reg.Families() {
		fmt.Fprintf(&b, "%s %s", f.Name, f.Kind)
		if len(f.LabelNames) > 0 {
			fmt.Fprintf(&b, " [%s]", strings.Join(f.LabelNames, ","))
		}
		b.WriteByte('\n')
	}
	got := b.String()

	path := filepath.Join("testdata", "metrics_families.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (regenerate with -update)", err)
	}
	if got != string(want) {
		t.Errorf("metric families changed; update %s deliberately with -update.\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestMetricsServableDuringDrain is the drain-path regression test: a
// draining server still answers /metrics with 200, reports schedd_draining=1,
// and exposes the schedd_inflight gauge — the pair an operator watches to
// follow drain progress.
func TestMetricsServableDuringDrain(t *testing.T) {
	s := New(Config{Seed: 2002, Logf: func(string, ...any) {}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, _ := post(t, ts, "machine=raw4", ddgFor(t, "vvmul", 4)); code != 200 {
		t.Fatalf("schedule = %d", code)
	}
	s.StartDrain()

	// New scheduling work is refused...
	if code, _ := post(t, ts, "machine=raw4", ddgFor(t, "vvmul", 4)); code != http.StatusServiceUnavailable {
		t.Fatalf("draining /schedule = %d, want 503", code)
	}
	// ...but the scrape still works and reports the drain.
	got := scrapeMetrics(t, ts)
	if got["schedd_draining"] != 1 {
		t.Errorf("schedd_draining = %g, want 1", got["schedd_draining"])
	}
	if _, ok := got["schedd_inflight"]; !ok {
		t.Errorf("draining scrape missing schedd_inflight")
	}
	if got["schedd_ready"] != 0 {
		t.Errorf("schedd_ready = %g while draining, want 0", got["schedd_ready"])
	}
}
