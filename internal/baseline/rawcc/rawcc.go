// Package rawcc reimplements the baseline Raw space-time scheduler the
// paper compares against (Lee et al., ASPLOS 1998): instruction assignment
// happens in three phases borrowed from multiprocessor task-graph
// scheduling — clustering groups instructions with little parallelism,
// merging reduces the cluster count to the machine's tile count, and
// placement maps merged clusters onto tiles — followed by a critical-path
// list scheduler. Preplaced instructions constrain merging and placement,
// as in the original.
package rawcc

import (
	"container/heap"
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Assign runs the three assignment phases and returns the tile of every
// instruction.
func Assign(g *ir.Graph, m *machine.Model) []int {
	g.Seal()
	n := g.Len()
	if n == 0 {
		return nil
	}
	clusters := cluster(g, m)
	clusters = merge(g, m, clusters)
	assign := place(g, m, clusters)
	listsched.SpreadConsts(g, m, assign)
	return assign
}

// Schedule assigns and list-schedules the graph.
func Schedule(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
	if err := listsched.CheckGraph(g, m); err != nil {
		return nil, fmt.Errorf("rawcc: %w", err)
	}
	assign := Assign(g, m)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
	if err != nil {
		return nil, fmt.Errorf("rawcc: %w", err)
	}
	return s, nil
}

// group is one cluster under construction: member instructions plus the
// home tile its preplaced members require (-1 if unconstrained).
type group struct {
	members []int
	home    int
}

// cluster performs dominant-sequence-style clustering in the manner of
// DSC: walking in dependence order, each instruction either joins the group
// of its dominant predecessor — the one whose finish-plus-communication
// time determines its earliest start — or begins a new group. Joining zeros
// the communication cost of that edge but serialises the instruction behind
// the group's single issue slot, so the merge is accepted only when it does
// not delay the instruction relative to starting fresh and paying for
// communication. This is what keeps tangled, irregular graphs (fpppp-like)
// split into many slim clusters that preserve parallelism.
//
// Faithful to the published Rawcc, clustering is blind to preplacement:
// the original handles preplaced instructions only during the placement
// phase. That late handling is precisely the phase-ordering weakness the
// convergent-scheduling paper identifies, so this baseline must not be
// given preplacement awareness the original lacked.
func cluster(g *ir.Graph, m *machine.Model) []*group {
	lat := m.LatencyFunc()
	// A uniform estimate of one hop's cost during clustering; the mesh
	// distance is unknown until placement.
	comm := m.CommBase
	n := g.Len()
	groupOf := make([]int, n)
	finish := make([]int, n)
	var groups []*group
	// issueFree[gid] is the next cycle the group's serial issue slot is
	// open.
	var issueFree []int
	for i := 0; i < n; i++ {
		in := g.Instrs[i]
		// Dominant predecessor under communication costs.
		best, bestT := -1, -1
		for _, p := range g.Preds(i) {
			t := finish[p] + comm
			if t > bestT {
				best, bestT = p, t
			}
		}
		if best < 0 {
			groups = append(groups, &group{members: []int{i}})
			issueFree = append(issueFree, 1)
			groupOf[i] = len(groups) - 1
			finish[i] = lat(in.Op)
			continue
		}
		// Start time if i begins its own group: every operand pays
		// communication.
		startNew := 0
		for _, p := range g.Preds(i) {
			if t := finish[p] + comm; t > startNew {
				startNew = t
			}
		}
		// Start time if i joins the dominant predecessor's group:
		// that operand arrives free, the rest still pay, and the
		// group's issue slot must be open.
		gid := groupOf[best]
		startJoin := issueFree[gid]
		for _, p := range g.Preds(i) {
			t := finish[p]
			if groupOf[p] != gid {
				t += comm
			}
			if t > startJoin {
				startJoin = t
			}
		}
		if startJoin <= startNew {
			groups[gid].members = append(groups[gid].members, i)
			groupOf[i] = gid
			finish[i] = startJoin + lat(in.Op)
			issueFree[gid] = startJoin + 1
		} else {
			groups = append(groups, &group{members: []int{i}})
			issueFree = append(issueFree, startNew+1)
			groupOf[i] = len(groups) - 1
			finish[i] = startNew + lat(in.Op)
		}
	}
	return groups
}

// merge combines groups until at most NumClusters remain, repeatedly
// merging the pair with the highest communication affinity (dependence
// edges between the two groups); ties prefer the smaller combined size.
// Like clustering, merging is blind to preplacement, matching the published
// Rawcc. Groups are kept under a size cap so that merging also balances
// load (the published merging phase's stated goal); over-cap pairs are
// considered only when no under-cap pair remains.
//
// The pair selection runs off a max-heap with lazy invalidation, and merged
// affinities combine additively (edges(a∪b, c) = edges(a,c) + edges(b,c)),
// so the whole phase is O(k² log k) instead of the naive O(k³·members).
func merge(g *ir.Graph, m *machine.Model, groups []*group) []*group {
	k := len(groups)
	if k <= m.NumClusters {
		return groups
	}
	groupOf := make([]int, g.Len())
	for gi, gr := range groups {
		for _, i := range gr.members {
			groupOf[i] = gi
		}
	}
	// Symmetric affinity matrix over initial groups.
	aff := make([][]int, k)
	for i := range aff {
		aff[i] = make([]int, k)
	}
	for u := 0; u < g.Len(); u++ {
		for _, v := range g.Succs(u) {
			a, b := groupOf[u], groupOf[v]
			if a != b {
				aff[a][b]++
				aff[b][a]++
			}
		}
	}
	sizeCap := 2 * g.Len() / m.NumClusters
	if sizeCap < 4 {
		sizeCap = 4
	}
	version := make([]int, k)
	dead := make([]bool, k) // local liveness; groups slice is shared
	h := &pairHeap{}
	push := func(a, b int) {
		if a == b || dead[a] || dead[b] {
			return
		}
		size := len(groups[a].members) + len(groups[b].members)
		heap.Push(h, mergePair{
			a: a, b: b, va: version[a], vb: version[b],
			aff: aff[a][b], size: size, underCap: size <= sizeCap,
		})
	}
	for a := 0; a < k; a++ {
		for b := a + 1; b < k; b++ {
			push(a, b)
		}
	}
	live := k
	for live > m.NumClusters && h.Len() > 0 {
		top := heap.Pop(h).(mergePair)
		if dead[top.a] || dead[top.b] || version[top.a] != top.va || version[top.b] != top.vb {
			continue
		}
		a, b := top.a, top.b
		groups[a].members = append(groups[a].members, groups[b].members...)
		dead[b] = true
		version[a]++
		live--
		for c := 0; c < k; c++ {
			if c == a || c == b || dead[c] {
				continue
			}
			aff[a][c] += aff[b][c]
			aff[c][a] = aff[a][c]
			push(a, c)
		}
	}
	var out []*group
	for gi, gr := range groups {
		if !dead[gi] {
			out = append(out, gr)
		}
	}
	return out
}

// mergePair is a candidate merge in the heap. Stale entries (either group
// merged since the push) are detected by version numbers and skipped.
type mergePair struct {
	a, b     int
	va, vb   int
	aff      int
	size     int
	underCap bool
}

type pairHeap []mergePair

func (h pairHeap) Len() int { return len(h) }

func (h pairHeap) Less(i, j int) bool {
	if h[i].underCap != h[j].underCap {
		return h[i].underCap
	}
	if h[i].aff != h[j].aff {
		return h[i].aff > h[j].aff
	}
	if h[i].size != h[j].size {
		return h[i].size < h[j].size
	}
	if h[i].a != h[j].a {
		return h[i].a < h[j].a
	}
	return h[i].b < h[j].b
}

func (h pairHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *pairHeap) Push(x any) { *h = append(*h, x.(mergePair)) }

func (h *pairHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// place maps merged groups onto tiles. This is the only phase where the
// published Rawcc considers preplacement: a group whose preplaced members
// mostly demand one tile is anchored there; the rest, largest first, take
// the tile minimising load imbalance plus distance-weighted communication
// to already-placed groups. Preplaced instructions are finally pinned to
// their homes individually, wherever their group landed. Returns the
// per-instruction tile assignment.
func place(g *ir.Graph, m *machine.Model, groups []*group) []int {
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = -1
	}
	// Majority home among a group's preplaced members, or -1.
	for _, gr := range groups {
		votes := map[int]int{}
		for _, i := range gr.members {
			if h := g.Instrs[i].Home; h >= 0 {
				votes[h]++
			}
		}
		gr.home = -1
		bestVotes := 0
		for h, v := range votes {
			if v > bestVotes || (v == bestVotes && gr.home >= 0 && h < gr.home) {
				gr.home, bestVotes = h, v
			}
		}
	}
	loads := make([]int, m.NumClusters)
	var free []*group
	for _, gr := range groups {
		if gr.home >= 0 {
			for _, i := range gr.members {
				assign[i] = gr.home
			}
			loads[gr.home] += len(gr.members)
		} else {
			free = append(free, gr)
		}
	}
	sort.Slice(free, func(i, j int) bool {
		if len(free[i].members) != len(free[j].members) {
			return len(free[i].members) > len(free[j].members)
		}
		return free[i].members[0] < free[j].members[0]
	})
	for _, gr := range free {
		best, bestCost := 0, 1<<62
		for c := 0; c < m.NumClusters; c++ {
			// Communication cost: edges from this group to placed
			// instructions, weighted by mesh distance.
			comm := 0
			for _, i := range gr.members {
				for _, nb := range g.Neighbors(i) {
					if assign[nb] >= 0 {
						comm += m.Dist(c, assign[nb])
					}
				}
			}
			cost := comm*4 + (loads[c]+len(gr.members))*3
			if cost < bestCost {
				best, bestCost = c, cost
			}
		}
		for _, i := range gr.members {
			assign[i] = best
		}
		loads[best] += len(gr.members)
	}
	// Safety net: anything unassigned (empty-group corner cases) goes to
	// tile 0, and preplaced instructions are pinned.
	for i := range assign {
		if assign[i] < 0 {
			assign[i] = 0
		}
		if h := g.Instrs[i].Home; h >= 0 {
			assign[i] = h
		}
	}
	refinePlacement(g, m, groups, assign)
	return assign
}

// refinePlacement is the optimisation half of Rawcc's placement phase: a
// greedy local search that moves whole groups between tiles when doing so
// reduces distance-weighted communication plus a quadratic load-imbalance
// penalty. Preplaced instructions stay pinned; the search works around
// them — which is exactly how the published Rawcc copes with preplacement,
// and why decisions frozen by the earlier, placement-blind phases can still
// hurt it.
func refinePlacement(g *ir.Graph, m *machine.Model, groups []*group, assign []int) {
	type edge struct{ u, v int }
	var edges []edge
	for u := 0; u < g.Len(); u++ {
		if g.Instrs[u].Op.IsConst() {
			continue // constants broadcast as immediates
		}
		for _, v := range g.Succs(u) {
			edges = append(edges, edge{u, v})
		}
	}
	// Edges incident to each instruction, for delta computation.
	incident := make([][]int, g.Len())
	for ei, e := range edges {
		incident[e.u] = append(incident[e.u], ei)
		incident[e.v] = append(incident[e.v], ei)
	}
	loads := make([]int, m.NumClusters)
	for _, c := range assign {
		loads[c]++
	}
	const loadWeight = 2
	for sweep := 0; sweep < 15; sweep++ {
		improved := false
		for _, gr := range groups {
			// Movable members: the group's unpinned instructions.
			var movable []int
			for _, i := range gr.members {
				if !g.Instrs[i].Preplaced() {
					movable = append(movable, i)
				}
			}
			if len(movable) == 0 {
				continue
			}
			from := assign[movable[0]]
			inSet := make(map[int]bool, len(movable))
			for _, i := range movable {
				inSet[i] = true
			}
			// Deduplicate incident edges with exactly one endpoint
			// in the moved set.
			seen := map[int]bool{}
			var boundary []edge
			for _, i := range movable {
				for _, ei := range incident[i] {
					if seen[ei] {
						continue
					}
					seen[ei] = true
					e := edges[ei]
					if inSet[e.u] != inSet[e.v] {
						boundary = append(boundary, e)
					}
				}
			}
			bestTo, bestDelta := from, 0
			for to := 0; to < m.NumClusters; to++ {
				if to == from {
					continue
				}
				delta := 0
				for _, e := range boundary {
					other := e.u
					if inSet[e.u] {
						other = e.v
					}
					oc := assign[other]
					delta += m.Dist(to, oc) - m.Dist(from, oc)
				}
				n := len(movable)
				delta += loadWeight * (((loads[to]+n)*(loads[to]+n) + (loads[from]-n)*(loads[from]-n)) -
					(loads[to]*loads[to] + loads[from]*loads[from])) / (2 * n)
				if delta < bestDelta {
					bestTo, bestDelta = to, delta
				}
			}
			if bestTo != from {
				for _, i := range movable {
					assign[i] = bestTo
				}
				loads[from] -= len(movable)
				loads[bestTo] += len(movable)
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}
