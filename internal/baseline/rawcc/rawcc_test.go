package rawcc

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sim"
)

// parallelChains builds k independent chains of length l with a preplaced
// store at the end of each chain, homed round-robin.
func parallelChains(k, l, tiles int) *ir.Graph {
	g := ir.New("chains")
	for c := 0; c < k; c++ {
		prev := g.AddConst(int64(c)).ID
		for i := 0; i < l; i++ {
			prev = g.Add(ir.Add, prev, prev).ID
		}
		addr := g.AddConst(int64(c))
		st := g.AddStore(c%tiles, addr.ID, prev)
		st.Home = c % tiles
	}
	return g
}

func TestScheduleValidatesAndVerifies(t *testing.T) {
	g := parallelChains(8, 5, 4)
	m := machine.Raw(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestAssignRespectsPreplacement(t *testing.T) {
	g := parallelChains(4, 3, 4)
	m := machine.Raw(4)
	assign := Assign(g, m)
	for i, in := range g.Instrs {
		if in.Preplaced() && assign[i] != in.Home {
			t.Errorf("instr %d on %d, home %d", i, assign[i], in.Home)
		}
	}
}

func TestIndependentChainsSpread(t *testing.T) {
	// Without preplacement, 8 independent chains on 4 tiles should use
	// more than one tile (clustering keeps chains whole, merging and
	// placement spread them).
	g := ir.New("free")
	for c := 0; c < 8; c++ {
		prev := g.AddConst(int64(c)).ID
		for i := 0; i < 6; i++ {
			prev = g.Add(ir.Add, prev, prev).ID
		}
	}
	m := machine.Raw(4)
	assign := Assign(g, m)
	used := map[int]bool{}
	for _, c := range assign {
		used[c] = true
	}
	if len(used) < 3 {
		t.Errorf("assignment uses only tiles %v", used)
	}
	// A chain should stay on one tile: check the first chain.
	first := assign[0]
	for i := 1; i <= 6; i++ {
		if assign[i] != first {
			t.Errorf("chain split across tiles: instr %d on %d, chain on %d", i, assign[i], first)
		}
	}
}

func TestSpeedupOverSingleTile(t *testing.T) {
	g16 := parallelChains(16, 8, 4)
	m := machine.Raw(4)
	s, err := Schedule(g16, m)
	if err != nil {
		t.Fatal(err)
	}
	g1 := parallelChains(16, 8, 1)
	s1, err := Schedule(g1, machine.Raw(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.Length() >= s1.Length() {
		t.Errorf("4 tiles (%d cycles) not faster than 1 tile (%d cycles)", s.Length(), s1.Length())
	}
}

func TestEmptyGraph(t *testing.T) {
	g := ir.New("empty")
	if got := Assign(g, machine.Raw(4)); len(got) != 0 {
		t.Errorf("Assign(empty) = %v", got)
	}
	if _, err := Schedule(g, machine.Raw(4)); err != nil {
		t.Errorf("Schedule(empty): %v", err)
	}
}

func TestRandomGraphsScheduleLegally(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ir.New("rand")
		tiles := 4
		for i := 0; i < 40; i++ {
			switch {
			case i < 3:
				g.AddConst(int64(i))
			case rng.Intn(5) == 0:
				in := g.Add(ir.Mul, pickResult(rng, g), pickResult(rng, g))
				_ = in
			default:
				g.Add(ir.Add, pickResult(rng, g), pickResult(rng, g))
			}
		}
		// Sprinkle preplacement on a few ALU-only graphs via Home.
		for i := 0; i < g.Len(); i += 11 {
			g.Instrs[i].Home = rng.Intn(tiles)
		}
		m := machine.Raw(tiles)
		s, err := Schedule(g, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func pickResult(rng *rand.Rand, g *ir.Graph) int {
	for {
		i := rng.Intn(g.Len())
		if g.Instrs[i].Op.HasResult() {
			return i
		}
	}
}
