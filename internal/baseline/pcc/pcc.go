// Package pcc reimplements Partial Component Clustering (Desoli, HP Labs
// TR HPL-98-13), the second clustered-VLIW baseline of the paper's
// Figure 8. PCC builds partial components by visiting the dependence graph
// bottom-up, critical-path first, capping component size at a threshold θ;
// assigns components to clusters by load balancing and communication
// affinity (preplacement-aware, as the paper modifies it); and then
// improves the assignment by iterative descent, moving components between
// clusters whenever a schedule-length estimate improves. The descent's
// repeated estimation is what makes PCC's compile time scale poorly
// (Figure 10), a behaviour this implementation reproduces by construction.
package pcc

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Options tunes PCC.
type Options struct {
	// Theta caps component size (the paper's θ). Zero picks a default
	// that balances quality and compile time, as Desoli describes:
	// roughly the graph size divided by four times the cluster count,
	// clamped to [4, 40].
	Theta int
	// MaxIters bounds the descent sweeps (default 20).
	MaxIters int
}

func (o Options) withDefaults(g *ir.Graph, m *machine.Model) Options {
	if o.Theta == 0 {
		o.Theta = g.Len() / (4 * m.NumClusters)
		if o.Theta < 4 {
			o.Theta = 4
		}
		if o.Theta > 40 {
			o.Theta = 40
		}
	}
	if o.MaxIters == 0 {
		o.MaxIters = 20
	}
	return o
}

// Assign runs PCC assignment and returns the cluster of every instruction.
func Assign(g *ir.Graph, m *machine.Model, opt Options) []int {
	g.Seal()
	if g.Len() == 0 {
		return nil
	}
	opt = opt.withDefaults(g, m)
	comps := buildComponents(g, m, opt.Theta)
	assign := initialAssign(g, m, comps)
	descend(g, m, comps, assign, opt.MaxIters)
	for i := range assign {
		if h := g.Instrs[i].Home; h >= 0 {
			assign[i] = h
		}
	}
	listsched.SpreadConsts(g, m, assign)
	return assign
}

// Schedule assigns with PCC and then list-schedules.
func Schedule(g *ir.Graph, m *machine.Model, opt Options) (*schedule.Schedule, error) {
	if err := listsched.CheckGraph(g, m); err != nil {
		return nil, fmt.Errorf("pcc: %w", err)
	}
	assign := Assign(g, m, opt)
	s, err := listsched.Run(g, m, listsched.Options{Assignment: assign})
	if err != nil {
		return nil, fmt.Errorf("pcc: %w", err)
	}
	return s, nil
}

// component is one partial component: its members and the home cluster its
// preplaced members demand (-1 when unconstrained).
type component struct {
	members []int
	home    int
}

// buildComponents grows components bottom-up (leaves first), critical-path
// first: each unvisited instruction of greatest height seeds a component
// that greedily absorbs unvisited dependence neighbours — deepest first —
// until θ members or no compatible neighbour remains.
func buildComponents(g *ir.Graph, m *machine.Model, theta int) []*component {
	h := g.Height(m.LatencyFunc())
	order := make([]int, g.Len())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if h[order[a]] != h[order[b]] {
			return h[order[a]] < h[order[b]] // bottom-up: leaves first
		}
		return order[a] < order[b]
	})
	visited := make([]bool, g.Len())
	var comps []*component
	for _, seed := range order {
		if visited[seed] {
			continue
		}
		c := &component{home: g.Instrs[seed].Home}
		frontier := []int{seed}
		visited[seed] = true
		for len(frontier) > 0 && len(c.members) < theta {
			// Take the deepest frontier node (critical-path
			// first).
			best := 0
			for k := range frontier {
				if h[frontier[k]] > h[frontier[best]] {
					best = k
				}
			}
			cur := frontier[best]
			frontier = append(frontier[:best], frontier[best+1:]...)
			c.members = append(c.members, cur)
			for _, nb := range g.Neighbors(cur) {
				if visited[nb] {
					continue
				}
				nh := g.Instrs[nb].Home
				if nh >= 0 && c.home >= 0 && nh != c.home {
					continue // incompatible homes stay apart
				}
				visited[nb] = true
				if nh >= 0 {
					c.home = nh
				}
				frontier = append(frontier, nb)
			}
		}
		// Whatever remains on the frontier seeds future components.
		for _, f := range frontier {
			visited[f] = false
		}
		comps = append(comps, c)
	}
	return comps
}

// initialAssign places constrained components on their homes and the rest
// on the least-loaded cluster, largest components first, with a small
// affinity bonus for clusters already holding dependence neighbours.
func initialAssign(g *ir.Graph, m *machine.Model, comps []*component) []int {
	assign := make([]int, g.Len())
	for i := range assign {
		assign[i] = -1
	}
	loads := make([]int, m.NumClusters)
	order := make([]int, len(comps))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := comps[order[a]], comps[order[b]]
		if (ca.home >= 0) != (cb.home >= 0) {
			return ca.home >= 0 // constrained first
		}
		if len(ca.members) != len(cb.members) {
			return len(ca.members) > len(cb.members)
		}
		return order[a] < order[b]
	})
	for _, ci := range order {
		c := comps[ci]
		target := c.home
		if target < 0 {
			best, bestCost := 0, 1<<62
			for cl := 0; cl < m.NumClusters; cl++ {
				aff := 0
				for _, i := range c.members {
					for _, nb := range g.Neighbors(i) {
						if assign[nb] == cl {
							aff++
						}
					}
				}
				cost := (loads[cl]+len(c.members))*2 - aff
				if cost < bestCost {
					best, bestCost = cl, cost
				}
			}
			target = best
		}
		for _, i := range c.members {
			assign[i] = target
		}
		loads[target] += len(c.members)
	}
	for i := range assign {
		if assign[i] < 0 {
			assign[i] = 0
		}
	}
	return assign
}

// descend iteratively improves the assignment: each sweep tries moving
// every unconstrained component to every other cluster, keeping the move
// that most reduces the estimated schedule length; it stops when a full
// sweep finds no improvement or after maxIters sweeps.
func descend(g *ir.Graph, m *machine.Model, comps []*component, assign []int, maxIters int) {
	cur := Estimate(g, m, assign)
	for iter := 0; iter < maxIters; iter++ {
		improved := false
		for _, c := range comps {
			if c.home >= 0 || len(c.members) == 0 {
				continue
			}
			orig := assign[c.members[0]]
			bestCl, bestLen := orig, cur
			for cl := 0; cl < m.NumClusters; cl++ {
				if cl == orig {
					continue
				}
				for _, i := range c.members {
					assign[i] = cl
				}
				if l := Estimate(g, m, assign); l < bestLen {
					bestCl, bestLen = cl, l
				}
			}
			for _, i := range c.members {
				assign[i] = bestCl
			}
			if bestCl != orig {
				cur = bestLen
				improved = true
			}
		}
		if !improved {
			return
		}
	}
}

// Estimate approximates the schedule length of an assignment with a fast
// greedy pass: instructions issue in topological order at the earliest
// cycle their operands (plus cross-cluster communication latency) allow and
// a compatible functional unit is free. It ignores network port contention,
// which the real list scheduler handles, so it is a lower-bound-style
// estimator in the spirit of PCC's published cost function.
func Estimate(g *ir.Graph, m *machine.Model, assign []int) int {
	g.Seal()
	ready := make([]int, g.Len())
	type slot struct{ cluster, fu, cycle int }
	busy := make(map[slot]bool)
	length := 0
	for i := 0; i < g.Len(); i++ {
		in := g.Instrs[i]
		cl := assign[i]
		est := 0
		for _, p := range g.Preds(i) {
			t := ready[p]
			// Constants broadcast as immediates and never pay
			// communication latency.
			if assign[p] != cl && !g.Instrs[p].Op.IsConst() {
				t += m.CommLatency(assign[p], cl)
			}
			if t > est {
				est = t
			}
		}
		lat, ok := m.InstrLatency(in, cl)
		if !ok {
			// Illegal placement mid-descent (the caller pins
			// preplaced instructions afterwards): charge the
			// worst communication latency instead of failing.
			lat = m.OpLatency(in.Op) + m.MaxCommLatency()
		}
		start := est
		for {
			fu := -1
			for f := range m.FUs {
				if m.CanRunOn(in.Op, f) && !busy[slot{cl, f, start}] {
					fu = f
					break
				}
			}
			if fu >= 0 {
				busy[slot{cl, fu, start}] = true
				break
			}
			start++
		}
		ready[i] = start + lat
		if ready[i] > length {
			length = ready[i]
		}
	}
	return length
}
