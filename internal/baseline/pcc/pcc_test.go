package pcc

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sim"
)

func wideKernel(k, l int) *ir.Graph {
	g := ir.New("wide")
	for c := 0; c < k; c++ {
		prev := g.AddConst(int64(c)).ID
		for i := 0; i < l; i++ {
			prev = g.Add(ir.Add, prev, prev).ID
		}
	}
	return g
}

func TestScheduleValidatesAndVerifies(t *testing.T) {
	g := wideKernel(8, 6)
	m := machine.Chorus(4)
	s, err := Schedule(g, m, Options{})
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestComponentsRespectTheta(t *testing.T) {
	g := wideKernel(4, 20)
	m := machine.Chorus(4)
	comps := buildComponents(g, m, 7)
	total := 0
	for _, c := range comps {
		if len(c.members) > 7 {
			t.Errorf("component of size %d exceeds theta 7", len(c.members))
		}
		total += len(c.members)
	}
	if total != g.Len() {
		t.Errorf("components cover %d of %d instructions", total, g.Len())
	}
	seen := map[int]bool{}
	for _, c := range comps {
		for _, i := range c.members {
			if seen[i] {
				t.Errorf("instruction %d in two components", i)
			}
			seen[i] = true
		}
	}
}

func TestComponentsSeparateConflictingHomes(t *testing.T) {
	g := ir.New("homes")
	a := g.AddConst(0)
	ld1 := g.AddLoad(1, a.ID)
	ld1.Home = 1
	n := g.Add(ir.Neg, ld1.ID)
	st := g.AddStore(2, a.ID, n.ID)
	st.Home = 2
	m := machine.Chorus(4)
	comps := buildComponents(g, m, 10)
	for _, c := range comps {
		homes := map[int]bool{}
		for _, i := range c.members {
			if h := g.Instrs[i].Home; h >= 0 {
				homes[h] = true
			}
		}
		if len(homes) > 1 {
			t.Errorf("component mixes homes %v", homes)
		}
	}
}

func TestAssignRespectsPreplacement(t *testing.T) {
	g := ir.New("pp")
	a := g.AddConst(0)
	ld := g.AddLoad(3, a.ID)
	ld.Home = 3
	g.Add(ir.Neg, ld.ID)
	m := machine.Chorus(4)
	assign := Assign(g, m, Options{})
	if assign[ld.ID] != 3 {
		t.Errorf("preplaced load assigned to %d", assign[ld.ID])
	}
}

func TestDescentImprovesOrMaintainsEstimate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := ir.New("rnd")
	for i := 0; i < 60; i++ {
		if i < 3 {
			g.AddConst(int64(i))
			continue
		}
		g.Add(ir.Add, rng.Intn(i), rng.Intn(i))
	}
	m := machine.Chorus(4)
	comps := buildComponents(g, m, 8)
	assign := initialAssign(g, m, comps)
	before := Estimate(g, m, assign)
	descend(g, m, comps, assign, 20)
	after := Estimate(g, m, assign)
	if after > before {
		t.Errorf("descent worsened estimate: %d -> %d", before, after)
	}
}

func TestEstimateSensibleBounds(t *testing.T) {
	g := wideKernel(1, 5)
	m := machine.Chorus(1)
	assign := make([]int, g.Len())
	est := Estimate(g, m, assign)
	cpl := g.CriticalPathLength(m.LatencyFunc())
	if est < cpl {
		t.Errorf("estimate %d below critical path %d", est, cpl)
	}
	serial := 0
	for _, in := range g.Instrs {
		serial += m.OpLatency(in.Op)
	}
	if est > serial+g.Len() {
		t.Errorf("estimate %d above serial bound %d", est, serial)
	}
}

func TestEstimateChargesCommunication(t *testing.T) {
	g := ir.New("comm")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Chorus(2)
	same := Estimate(g, m, []int{0, 0, 0})
	cross := Estimate(g, m, []int{0, 0, 1})
	if cross <= same {
		t.Errorf("cross-cluster estimate %d not above same-cluster %d", cross, same)
	}
	// Constants broadcast for free: splitting only the constant off
	// must not change the estimate.
	constCross := Estimate(g, m, []int{1, 0, 0})
	if constCross != same {
		t.Errorf("const split estimate %d, want %d", constCross, same)
	}
}

func TestThetaDefaultClamped(t *testing.T) {
	g := wideKernel(2, 2)
	m := machine.Chorus(4)
	opt := Options{}.withDefaults(g, m)
	if opt.Theta < 4 || opt.Theta > 40 {
		t.Errorf("default theta = %d", opt.Theta)
	}
	big := wideKernel(100, 10)
	opt = Options{}.withDefaults(big, m)
	if opt.Theta < 4 || opt.Theta > 40 {
		t.Errorf("default theta = %d for big graph", opt.Theta)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := ir.New("empty")
	m := machine.Chorus(4)
	if got := Assign(g, m, Options{}); len(got) != 0 {
		t.Errorf("Assign(empty) = %v", got)
	}
	if _, err := Schedule(g, m, Options{}); err != nil {
		t.Errorf("Schedule(empty): %v", err)
	}
}

func TestRandomGraphsVerify(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ir.New("rand")
		for i := 0; i < 50; i++ {
			if i < 3 {
				g.AddConst(int64(i))
				continue
			}
			ops := []ir.Op{ir.Add, ir.Sub, ir.Mul, ir.Xor}
			g.Add(ops[rng.Intn(len(ops))], rng.Intn(i), rng.Intn(i))
		}
		m := machine.Chorus(4)
		s, err := Schedule(g, m, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}
