package uas

import (
	"math/rand"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestScheduleValidatesAndVerifies(t *testing.T) {
	g := ir.New("mixed")
	a := g.AddConst(3)
	b := g.AddConst(4)
	p := g.Add(ir.Mul, a.ID, b.ID)
	f := g.AddFConst(1.5)
	q := g.Add(ir.IntToFloat, p.ID)
	r := g.Add(ir.FMul, q.ID, f.ID)
	addr := g.AddConst(0)
	fi := g.Add(ir.FloatToInt, r.ID)
	g.AddStore(2, addr.ID, fi.ID)
	m := machine.Chorus(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatalf("Schedule: %v", err)
	}
	res, err := sim.Verify(s, sim.NewMemory())
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if got := res.Memory.Load(2, 0); got.I != 18 {
		t.Errorf("stored %v, want 18", got)
	}
}

func TestPreplacedGoesHome(t *testing.T) {
	g := ir.New("pp")
	addr := g.AddConst(0)
	ld := g.AddLoad(3, addr.ID)
	ld.Home = 3
	g.Add(ir.Neg, ld.ID)
	m := machine.Chorus(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.Placements[ld.ID].Cluster != 3 {
		t.Errorf("preplaced load on cluster %d", s.Placements[ld.ID].Cluster)
	}
}

func TestPrefersOperandClusterOverCopies(t *testing.T) {
	// Producer chain on whatever cluster UAS picks: the consumer should
	// follow it rather than pay a copy, when resources allow.
	g := ir.New("follow")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	c := g.Add(ir.Not, b.ID)
	m := machine.Chorus(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if s.CommCount() != 0 {
		t.Errorf("dependent chain paid %d copies", s.CommCount())
	}
	if s.Placements[b.ID].Cluster != s.Placements[c.ID].Cluster {
		t.Error("chain split across clusters for no reason")
	}
}

func TestWideGraphUsesMultipleClusters(t *testing.T) {
	g := ir.New("wide")
	for i := 0; i < 16; i++ {
		a := g.AddConst(int64(i))
		prev := a.ID
		for k := 0; k < 4; k++ {
			prev = g.Add(ir.Add, prev, prev).ID
		}
	}
	m := machine.Chorus(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	used := map[int]bool{}
	for _, p := range s.Placements {
		used[p.Cluster] = true
	}
	if len(used) < 2 {
		t.Errorf("UAS used only clusters %v", used)
	}
}

func TestRandomGraphsVerify(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := ir.New("rand")
		var results []int
		pick := func() int { return results[rng.Intn(len(results))] }
		lastMem := map[int]int{}
		chain := func(in *ir.Instr) {
			if prev, ok := lastMem[in.Bank]; ok {
				g.AddMemEdge(prev, in.ID)
			}
			lastMem[in.Bank] = in.ID
		}
		for i := 0; i < 35; i++ {
			switch {
			case i < 2:
				results = append(results, g.AddConst(int64(rng.Intn(50))).ID)
			case rng.Intn(7) == 0:
				ld := g.AddLoad(rng.Intn(4), pick())
				if rng.Intn(2) == 0 {
					ld.Home = ld.Bank % 4
				}
				chain(ld)
				results = append(results, ld.ID)
			case rng.Intn(9) == 0:
				chain(g.AddStore(rng.Intn(4), pick(), pick()))
			default:
				ops := []ir.Op{ir.Add, ir.Sub, ir.Xor, ir.Max}
				results = append(results, g.Add(ops[rng.Intn(len(ops))], pick(), pick()).ID)
			}
		}
		m := machine.Chorus(4)
		s, err := Schedule(g, m)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestOnRawMachineToo(t *testing.T) {
	// UAS is a VLIW algorithm but nothing stops it running on Raw's
	// model; memory ops must land on their home tiles.
	g := ir.New("raw")
	addr := g.AddConst(1)
	ld := g.AddLoad(2, addr.ID)
	ld.Home = 2
	g.Add(ir.Neg, ld.ID)
	m := machine.Raw(4)
	s, err := Schedule(g, m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Verify(s, sim.NewMemory()); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := ir.New("empty")
	s, err := Schedule(g, machine.Chorus(4))
	if err != nil || s.Length() != 0 {
		t.Errorf("empty: %v, %v", s, err)
	}
}
