// Package uas reimplements Unified Assign and Schedule (Özer, Banerjia,
// Conte, MICRO-31 1998), the clustered-VLIW baseline of the paper's
// Figure 8: a cycle-driven list scheduler that picks each instruction's
// cluster at the moment it schedules it. Cluster candidates are ordered by
// the CPSC heuristic (completion-time first, then fewer copies, then load),
// modified as in the paper to give preplaced instructions' home clusters
// absolute priority.
package uas

import (
	"fmt"
	"sort"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// Schedule runs UAS on the graph for the machine.
func Schedule(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
	if err := listsched.CheckGraph(g, m); err != nil {
		return nil, err
	}
	g.Seal()
	n := g.Len()
	t := listsched.NewTables(g, m)
	prio := listsched.CriticalPathPriority(g, m)

	pending := make([]int, n)
	var candidates []int
	for i := 0; i < n; i++ {
		pending[i] = len(g.Preds(i))
		if pending[i] == 0 {
			candidates = append(candidates, i)
		}
	}
	sortCandidates := func() {
		sort.Slice(candidates, func(a, b int) bool {
			ia, ib := candidates[a], candidates[b]
			if prio[ia] != prio[ib] {
				return prio[ia] < prio[ib]
			}
			return ia < ib
		})
	}
	sortCandidates()

	placed := 0
	bound := 16
	maxComm := m.MaxCommLatency()
	for _, in := range g.Instrs {
		bound += m.OpLatency(in.Op) + maxComm + 1
	}
	loads := make([]int, m.NumClusters)

	for cycle := 0; placed < n; cycle++ {
		if cycle > bound {
			return nil, fmt.Errorf("uas: no progress by cycle %d (%d of %d placed)", cycle, placed, n)
		}
		var next []int
		var newly []int
		for _, i := range candidates {
			c, fu := chooseCluster(t, g, m, loads, i, cycle)
			if c < 0 {
				next = append(next, i)
				continue
			}
			// Commit the operand routes, then place.
			if est := t.EarliestStart(i, c, true); est > cycle {
				// A probe said this cycle was feasible but
				// committing found port contention introduced
				// meanwhile this cycle; retry next cycle.
				next = append(next, i)
				continue
			}
			t.Place(i, c, fu, cycle)
			loads[c]++
			placed++
			newly = append(newly, i)
		}
		candidates = next
		for _, i := range newly {
			for _, s := range g.Succs(i) {
				pending[s]--
				if pending[s] == 0 {
					candidates = append(candidates, s)
				}
			}
		}
		if len(newly) > 0 {
			sortCandidates()
		}
	}
	s := t.Schedule()
	s.SortComms()
	return s, nil
}

// chooseCluster returns the best cluster and functional unit on which
// instruction i can issue at the given cycle, or (-1, -1) if no cluster can
// take it this cycle. Preplaced instructions only ever consider their home.
// Among feasible clusters the order is: fewest new copies required, then
// lightest current load, then lowest index — the paper's
// preplacement-modified CPSC.
func chooseCluster(t *listsched.Tables, g *ir.Graph, m *machine.Model, loads []int, i, cycle int) (cluster, fu int) {
	in := g.Instrs[i]
	type cand struct {
		c, fu, copies, load int
	}
	var best *cand
	consider := func(c int) {
		if in.Preplaced() && c != in.Home {
			return
		}
		if _, ok := m.InstrLatency(in, c); !ok {
			return
		}
		if est := t.EarliestStart(i, c, false); est > cycle {
			return
		}
		fu := t.FindFU(in.Op, c, cycle)
		if fu < 0 {
			return
		}
		copies := 0
		for _, a := range in.Args {
			// Arrival already treats constants as broadcast, so
			// they never count as copies.
			if t.Arrival(a, c) < 0 {
				copies++
			}
		}
		cc := cand{c: c, fu: fu, copies: copies, load: loads[c]}
		if best == nil ||
			cc.copies < best.copies ||
			(cc.copies == best.copies && cc.load < best.load) ||
			(cc.copies == best.copies && cc.load == best.load && cc.c < best.c) {
			best = &cc
		}
	}
	for c := 0; c < m.NumClusters; c++ {
		consider(c)
	}
	if best == nil {
		return -1, -1
	}
	return best.c, best.fu
}
