package textplot

import (
	"strings"
	"testing"
)

func TestTableAlignsColumns(t *testing.T) {
	out := Table([]string{"bench", "cycles"}, [][]string{
		{"mxm", "123"},
		{"cholesky", "45"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "bench") || !strings.Contains(lines[0], "cycles") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("separator = %q", lines[1])
	}
	// Numeric column right-aligned: "123" and " 45" end at same offset.
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("rows unaligned:\n%s", out)
	}
}

func TestBarsScaleToMax(t *testing.T) {
	out := Bars([]string{"a", "b"}, []string{"base", "conv"},
		[][]float64{{1, 2}, {4, 2}}, 20)
	if !strings.Contains(out, strings.Repeat("#", 20)+" 4.00") {
		t.Errorf("max bar not full width:\n%s", out)
	}
	if !strings.Contains(out, strings.Repeat("#", 5)+" 1.00") {
		t.Errorf("1.0 bar should be 5 of 20:\n%s", out)
	}
}

func TestBarsZeroSafe(t *testing.T) {
	out := Bars([]string{"a"}, []string{"s"}, [][]float64{{0}}, 10)
	if !strings.Contains(out, "0.00") {
		t.Errorf("zero bar missing:\n%s", out)
	}
}

func TestLogLinesPlacesPoints(t *testing.T) {
	out := LogLines([]int{100, 200, 300}, []string{"pcc", "uas"},
		[][]float64{{0.001, 0.01, 0.1}, {0.002, 0.002, 0.002}}, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Errorf("marks missing:\n%s", out)
	}
	if !strings.Contains(out, "pcc") || !strings.Contains(out, "uas") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "100 .. 300") {
		t.Errorf("x range missing:\n%s", out)
	}
}

func TestLogLinesEmptyData(t *testing.T) {
	if out := LogLines([]int{1}, []string{"s"}, [][]float64{{0}}, 4); !strings.Contains(out, "no data") {
		t.Errorf("expected no-data marker:\n%s", out)
	}
}

func TestHeatShadesByFraction(t *testing.T) {
	out := Heat([]string{"NOISE", "COMM"}, []string{"mxm"}, [][]float64{{0.9}, {0.0}})
	if !strings.Contains(out, "0.90") || !strings.Contains(out, "0.00") {
		t.Errorf("values missing:\n%s", out)
	}
	if !strings.Contains(out, "[@]") && !strings.Contains(out, "[%]") {
		t.Errorf("high fraction should use a dense glyph:\n%s", out)
	}
	if !strings.Contains(out, "[ ]") {
		t.Errorf("zero fraction should be blank glyph:\n%s", out)
	}
}
