// Package textplot renders the experiment results as plain-text tables, bar
// charts and log-scale line plots, standing in for the paper's figures in a
// terminal.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Table renders rows with left-aligned first column and right-aligned
// numeric columns, sized to content.
func Table(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for c, h := range header {
		width[c] = len(h)
	}
	for _, row := range rows {
		for c, cell := range row {
			if c < len(width) && len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for c, cell := range cells {
			if c == 0 {
				fmt.Fprintf(&b, "%-*s", width[c], cell)
			} else {
				fmt.Fprintf(&b, "  %*s", width[c], cell)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	total := len(header) - 1
	for _, w := range width {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Bars renders a grouped horizontal bar chart: one block per label, one bar
// per series. Bar lengths scale linearly to the largest value.
func Bars(labels []string, series []string, values [][]float64, maxWidth int) string {
	if maxWidth <= 0 {
		maxWidth = 50
	}
	max := 0.0
	for _, group := range values {
		for _, v := range group {
			if v > max {
				max = v
			}
		}
	}
	if max == 0 {
		max = 1
	}
	labelW, seriesW := 0, 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for _, s := range series {
		if len(s) > seriesW {
			seriesW = len(s)
		}
	}
	var b strings.Builder
	for gi, label := range labels {
		for si, s := range series {
			v := 0.0
			if gi < len(values) && si < len(values[gi]) {
				v = values[gi][si]
			}
			n := int(math.Round(v / max * float64(maxWidth)))
			name := ""
			if si == 0 {
				name = label
			}
			fmt.Fprintf(&b, "%-*s  %-*s |%s %.2f\n", labelW, name, seriesW, s, strings.Repeat("#", n), v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LogLines renders series of (x, y) points on a log10 y-axis as an ASCII
// scatter, one rune per series, matching the paper's Figure 10 style.
func LogLines(xs []int, series []string, ys [][]float64, height int) string {
	if height <= 0 {
		height = 16
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, row := range ys {
		for _, v := range row {
			if v <= 0 {
				continue
			}
			l := math.Log10(v)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	if math.IsInf(lo, 1) {
		return "(no data)\n"
	}
	if hi-lo < 1e-9 {
		hi = lo + 1
	}
	marks := []byte("*+xo@%")
	width := len(xs)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, row := range ys {
		for xi, v := range row {
			if v <= 0 || xi >= width {
				continue
			}
			r := int((math.Log10(v) - lo) / (hi - lo) * float64(height-1))
			grid[height-1-r][xi] = marks[si%len(marks)]
		}
	}
	var b strings.Builder
	for r, rowBytes := range grid {
		yVal := math.Pow(10, hi-(hi-lo)*float64(r)/float64(height-1))
		fmt.Fprintf(&b, "%9.4g |%s|\n", yVal, string(rowBytes))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(&b, "%9s  x: %d .. %d instructions\n", "", xs[0], xs[len(xs)-1])
	for si, s := range series {
		fmt.Fprintf(&b, "%9s  %c = %s\n", "", marks[si%len(marks)], s)
	}
	return b.String()
}

// Heat renders a fraction (0..1) per (row, column) as shaded cells, used for
// the convergence figures: one row per pass, one column per benchmark.
func Heat(rowLabels, colLabels []string, frac [][]float64) string {
	glyphs := []byte(" .:-=+*#%@")
	labelW := 0
	for _, l := range rowLabels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-*s ", labelW, "")
	for i, c := range colLabels {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%-8s", truncate(c, 8))
	}
	b.WriteByte('\n')
	for ri, rl := range rowLabels {
		fmt.Fprintf(&b, "%-*s ", labelW, rl)
		for ci := range colLabels {
			v := 0.0
			if ri < len(frac) && ci < len(frac[ri]) {
				v = frac[ri][ci]
			}
			gi := int(v * float64(len(glyphs)))
			if gi >= len(glyphs) {
				gi = len(glyphs) - 1
			}
			if ci > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "[%c] %.2f", glyphs[gi], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
