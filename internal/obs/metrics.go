package obs

// A dependency-free metrics registry rendering the Prometheus text
// exposition format (version 0.0.4). The repository deliberately has no
// external dependencies, so the subset a scheduling service needs is
// implemented here: counters, gauges, and fixed-bucket histograms, with or
// without labels, rendered deterministically (families sorted by name,
// children by label values) so golden tests can pin the exposed surface.
//
// Concurrency: metric updates are atomic (histograms take a per-child
// mutex); rendering takes each family's lock only long enough to snapshot
// it. A scrape therefore never blocks the serving path.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default histogram bucket ladder for request and rung
// latencies, in seconds.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// atomicFloat is a float64 with atomic add/set/load via bit casting.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }
func (f *atomicFloat) add(d float64) {
	for {
		old := f.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if f.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Counter is a monotonically increasing metric.
type Counter struct{ v atomicFloat }

// Inc adds one.
func (c *Counter) Inc() { c.v.add(1) }

// Add adds d; negative deltas are ignored (counters only go up).
func (c *Counter) Add(d float64) {
	if d > 0 {
		c.v.add(d)
	}
}

// Set mirrors an externally maintained monotonic counter (an engine or
// admission stat synced at scrape time). The value is clamped to never go
// backwards, so a racing sync cannot violate counter monotonicity.
func (c *Counter) Set(v float64) {
	for {
		old := c.v.bits.Load()
		if v <= math.Float64frombits(old) {
			return
		}
		if c.v.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return c.v.load() }

// Gauge is a metric that can go up and down.
type Gauge struct{ v atomicFloat }

// Set assigns the gauge.
func (g *Gauge) Set(v float64) { g.v.store(v) }

// Add moves the gauge by d (negative allowed).
func (g *Gauge) Add(d float64) { g.v.add(d) }

// Inc and Dec move the gauge by ±1.
func (g *Gauge) Inc() { g.v.add(1) }
func (g *Gauge) Dec() { g.v.add(-1) }

// Value returns the current level.
func (g *Gauge) Value() float64 { return g.v.load() }

// Histogram is a fixed-bucket cumulative histogram.
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // sorted upper bounds, +Inf implicit
	counts []uint64  // one per upper bound
	inf    uint64
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	for i, ub := range h.upper {
		if v <= ub {
			h.counts[i]++
			break
		}
	}
	if len(h.upper) == 0 || v > h.upper[len(h.upper)-1] {
		h.inf++
	}
	h.sum += v
	h.count++
	h.mu.Unlock()
}

// metricKind distinguishes family types in registration and rendering.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// child is one labelled instance inside a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is every metric sharing one name.
type family struct {
	name       string
	help       string
	kind       metricKind
	labelNames []string
	buckets    []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child // key = joined label values
}

// Registry holds metric families and renders them in the Prometheus text
// format. The zero value is not valid; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	hooks    []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// BeforeScrape registers a hook run at the start of every WriteTo call —
// the place to sync gauges and mirrored counters from point-in-time stat
// snapshots (engine cache, store, admission).
func (r *Registry) BeforeScrape(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// register returns the family for name, creating it on first use. A name
// re-registered with a different type, help, or label set panics: that is a
// programming error the golden conformance test would otherwise chase.
func (r *Registry) register(name, help string, kind metricKind, labelNames []string, buckets []float64) *family {
	if name == "" || !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || strings.Join(f.labelNames, ",") != strings.Join(labelNames, ",") {
			panic(fmt.Sprintf("obs: metric %q re-registered with a different shape", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		children:   make(map[string]*child),
	}
	r.families[name] = f
	return f
}

func validName(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return s != ""
}

// get returns the labelled child, creating it on first use.
func (f *family) get(labelValues []string) *child {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := strings.Join(labelValues, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.hist = &Histogram{
			upper:  f.buckets,
			counts: make([]uint64, len(f.buckets)),
		}
	}
	f.children[key] = c
	return c
}

// Counter registers (or returns) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, nil).get(nil).counter
}

// Gauge registers (or returns) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, nil).get(nil).gauge
}

// Histogram registers (or returns) an unlabelled histogram with the given
// upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	return r.register(name, help, kindHistogram, nil, buckets).get(nil).hist
}

// CounterVec is a counter family keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on first use).
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.get(labelValues).counter
}

// GaugeVec is a gauge family keyed by label values.
type GaugeVec struct{ f *family }

// GaugeVec registers a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.register(name, help, kindGauge, labelNames, nil)}
}

// With returns the gauge for the given label values (created on first use).
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.get(labelValues).gauge
}

// HistogramVec is a histogram family keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers a labelled histogram family (nil buckets means
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.register(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.get(labelValues).hist
}

// FamilyInfo describes one registered family — the conformance surface the
// golden test pins (names, types, and label names; not values).
type FamilyInfo struct {
	Name       string
	Kind       string
	LabelNames []string
}

// Families lists every registered family, sorted by name.
func (r *Registry) Families() []FamilyInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]FamilyInfo, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, FamilyInfo{
			Name:       f.name,
			Kind:       string(f.kind),
			LabelNames: append([]string(nil), f.labelNames...),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sample is one flattened metric sample: the fully labelled series name as
// it appears on a Prometheus text line, and its value. Histogram families
// flatten into their _bucket/_sum/_count series.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// snapshot returns the hooks and the name-sorted family list.
func (r *Registry) snapshot() ([]func(), []*family) {
	r.mu.Lock()
	hooks := append(make([]func(), 0, len(r.hooks)), r.hooks...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return hooks, fams
}

// Samples runs the BeforeScrape hooks and returns every sample, in the same
// order WriteTo would render them. This is what folds the metric values into
// schedd's JSON /stats body.
func (r *Registry) Samples() []Sample {
	hooks, fams := r.snapshot()
	for _, h := range hooks {
		h()
	}
	var out []Sample
	for _, f := range fams {
		out = append(out, f.samples()...)
	}
	return out
}

// WriteTo renders the registry in the Prometheus text exposition format:
// BeforeScrape hooks first, then every family sorted by name, children
// sorted by label values. It implements io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	hooks, fams := r.snapshot()
	for _, h := range hooks {
		h()
	}
	var b strings.Builder
	for _, f := range fams {
		ss := f.samples()
		if len(ss) == 0 {
			continue
		}
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			b.WriteString(s.Name)
			b.WriteByte(' ')
			b.WriteString(formatFloat(s.Value))
			b.WriteByte('\n')
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// samples flattens one family. The family lock covers the child map
// snapshot; each child's value reads are atomic (histograms lock per child).
func (f *family) samples() []Sample {
	f.mu.Lock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	children := make([]*child, len(keys))
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()

	var out []Sample
	for _, c := range children {
		switch f.kind {
		case kindCounter:
			out = append(out, Sample{seriesName(f.name, f.labelNames, c.labelValues, "", ""), c.counter.Value()})
		case kindGauge:
			out = append(out, Sample{seriesName(f.name, f.labelNames, c.labelValues, "", ""), c.gauge.Value()})
		case kindHistogram:
			c.hist.mu.Lock()
			cum := uint64(0)
			for i, ub := range c.hist.upper {
				cum += c.hist.counts[i]
				out = append(out, Sample{seriesName(f.name+"_bucket", f.labelNames, c.labelValues, "le", formatFloat(ub)), float64(cum)})
			}
			out = append(out, Sample{seriesName(f.name+"_bucket", f.labelNames, c.labelValues, "le", "+Inf"), float64(cum + c.hist.inf)})
			out = append(out, Sample{seriesName(f.name+"_sum", f.labelNames, c.labelValues, "", ""), c.hist.sum})
			out = append(out, Sample{seriesName(f.name+"_count", f.labelNames, c.labelValues, "", ""), float64(c.hist.count)})
			c.hist.mu.Unlock()
		}
	}
	return out
}

// seriesName renders name{labels}; extraName/extraValue append the
// histogram "le" label.
func seriesName(name string, labelNames, labelValues []string, extraName, extraValue string) string {
	if len(labelNames) == 0 && extraName == "" {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	first := true
	for i, ln := range labelNames {
		if !first {
			b.WriteByte(',')
		}
		first = false
		fmt.Fprintf(&b, "%s=%q", ln, escapeLabel(labelValues[i]))
	}
	if extraName != "" {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraName, extraValue)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format. %q already
// escapes backslash, quote, and newline the same way Prometheus expects.
func escapeLabel(s string) string { return s }

// escapeHelp escapes backslash and newline in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
