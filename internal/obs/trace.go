// Package obs is the observability layer: per-request scheduling traces and
// a dependency-free Prometheus-text-format metrics registry.
//
// The paper's central artifact — how each convergent pass nudges the
// preference map W[instr][time][cluster] toward the final placement — is
// invisible at runtime without it, and the service layers built on top
// (degradation ladder, schedule cache, persistent store, admission control)
// can otherwise only be observed through logs. A Trace rides the request
// context through every layer: the convergent driver records per-pass
// preference-map deltas (top-k weight shifts, per-instruction entropy), the
// resilient driver records per-rung attempt outcomes and breaker
// transitions, and the engine records which cache path served the request.
//
// Observation is contractually inert: recording only ever reads scheduler
// state, so a traced run produces a byte-identical schedule to an untraced
// one (internal/engine's differential property tests pin this). Every
// record method is safe on a nil *Trace and safe for concurrent use, which
// is what lets call sites write obs.FromContext(ctx).RecordAttempt(...)
// unconditionally.
package obs

import (
	"context"
	"encoding/json"
	"sync"
)

// TopShiftK bounds how many per-instruction weight shifts a pass delta
// records: the K instructions whose cluster marginals moved the most.
const TopShiftK = 8

// WeightShift is one instruction's spatial movement under a pass: where its
// preferred cluster went and how much marginal mass moved (L1 distance
// between the before/after cluster-marginal vectors, max 2).
type WeightShift struct {
	// Instr is the instruction id in the scheduled graph's numbering.
	Instr int `json:"instr"`
	// From and To are the preferred clusters before and after the pass.
	From int `json:"from"`
	To   int `json:"to"`
	// L1 is Σ_c |after[c] - before[c]| over normalized cluster marginals.
	L1 float64 `json:"l1"`
}

// PassDelta is what one convergent pass did to the preference map.
type PassDelta struct {
	// Rung names the ladder rung whose sequence ran the pass ("convergent",
	// "convergent-truncated", ...).
	Rung string `json:"rung"`
	// Pass is the pass's table label ("PATH", "COMM", ...).
	Pass string `json:"pass"`
	// Changed counts instructions whose preferred cluster differs after the
	// pass; Fraction is Changed over the instruction count.
	Changed  int     `json:"changed"`
	Fraction float64 `json:"fraction"`
	// TopShifts are the TopShiftK largest per-instruction marginal moves,
	// largest first.
	TopShifts []WeightShift `json:"topShifts,omitempty"`
	// Entropy is the per-instruction Shannon entropy (nats) of the
	// normalized cluster marginal after the pass: 0 means fully decided,
	// ln(C) means uniform. Indexed by instruction id.
	Entropy []float64 `json:"entropy,omitempty"`
	// MeanEntropy summarises Entropy; the per-pass convergence signal.
	MeanEntropy float64 `json:"meanEntropy"`
	// MinTotal and MaxTotal bound the per-instruction weight totals after
	// the driver's normalization — the paper's Σ W[i] = 1 invariant, which
	// the inertness property tests assert within epsilon.
	MinTotal float64 `json:"minTotal"`
	MaxTotal float64 `json:"maxTotal"`
}

// AttemptRec is one ladder rung's outcome as seen by the resilient driver.
type AttemptRec struct {
	// Rung names the rung.
	Rung string `json:"rung"`
	// Ms is the attempt's wall-clock latency in milliseconds.
	Ms float64 `json:"ms"`
	// OK says the rung's schedule passed the legality gate and served.
	OK bool `json:"ok"`
	// Stage and Error carry the failure site for failed attempts.
	Stage string `json:"stage,omitempty"`
	Error string `json:"error,omitempty"`
}

// BreakerEvent is one circuit-breaker state transition observed while the
// traced request walked the ladder.
type BreakerEvent struct {
	// Key is the breaker key (rung name, plus "@scope" when scoped).
	Key string `json:"key"`
	// From and To are the states around the transition.
	From string `json:"from"`
	To   string `json:"to"`
}

// Cache lookup paths recorded by the engine. "persisted-hit" is a hit whose
// entry was loaded from the crash-safe store at recovery (a warm restart
// serving), as opposed to a hit computed by this process.
const (
	CacheHit          = "hit"
	CachePersistedHit = "persisted-hit"
	CacheMiss         = "miss"
	CacheShared       = "shared"
	CacheCollision    = "collision"
	CacheUncacheable  = "uncacheable"
	CacheDetached     = "detached"
	CacheDisabled     = "disabled"
)

// Trace is one scheduling request's observability record. It is filled in
// by the layers a request passes through and serialized to JSON for
// convsched -trace and schedd's ?trace=1 response section. All methods are
// nil-safe and concurrency-safe; a nil *Trace records nothing, which is the
// untraced fast path.
type Trace struct {
	mu sync.Mutex

	// Graph and Machine label the request.
	Graph   string `json:"graph,omitempty"`
	Machine string `json:"machine,omitempty"`
	// Tenant and Class attribute the request to its QoS identity when it
	// came through schedd's multi-tenant admission layer.
	Tenant string `json:"tenant,omitempty"`
	Class  string `json:"class,omitempty"`
	// Passes are the per-pass preference-map deltas, in execution order
	// (across rungs: a degraded request records the failed rung's passes
	// before the serving rung's).
	Passes []PassDelta `json:"passes,omitempty"`
	// Attempts are the ladder attempts, in ladder order.
	Attempts []AttemptRec `json:"attempts,omitempty"`
	// CachePath says how the engine answered: one of the Cache* constants.
	CachePath string `json:"cachePath,omitempty"`
	// Persisted says this request's schedule was enqueued to the crash-safe
	// store's write-behind flusher.
	Persisted bool `json:"persisted,omitempty"`
	// Breakers are the circuit-breaker transitions this request observed.
	Breakers []BreakerEvent `json:"breakers,omitempty"`
}

// NewTrace returns an empty trace labelled with the request's graph and
// machine names.
func NewTrace(graph, machine string) *Trace {
	return &Trace{Graph: graph, Machine: machine}
}

// SetTenant labels the trace with the request's QoS identity.
func (t *Trace) SetTenant(tenant, class string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Tenant, t.Class = tenant, class
	t.mu.Unlock()
}

// RecordPass appends one pass delta.
func (t *Trace) RecordPass(d PassDelta) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Passes = append(t.Passes, d)
	t.mu.Unlock()
}

// RecordAttempt appends one ladder attempt.
func (t *Trace) RecordAttempt(a AttemptRec) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Attempts = append(t.Attempts, a)
	t.mu.Unlock()
}

// SetCachePath records how the engine answered the request.
func (t *Trace) SetCachePath(p string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.CachePath = p
	t.mu.Unlock()
}

// SetPersisted marks the request's schedule as handed to the store flusher.
func (t *Trace) SetPersisted() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Persisted = true
	t.mu.Unlock()
}

// RecordBreaker appends one breaker transition.
func (t *Trace) RecordBreaker(e BreakerEvent) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Breakers = append(t.Breakers, e)
	t.mu.Unlock()
}

// Snapshot returns a deep copy safe to serialize while recording continues.
func (t *Trace) Snapshot() *Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := &Trace{
		Graph:     t.Graph,
		Machine:   t.Machine,
		Tenant:    t.Tenant,
		Class:     t.Class,
		CachePath: t.CachePath,
		Persisted: t.Persisted,
	}
	out.Passes = append([]PassDelta(nil), t.Passes...)
	out.Attempts = append([]AttemptRec(nil), t.Attempts...)
	out.Breakers = append([]BreakerEvent(nil), t.Breakers...)
	return out
}

// MarshalJSON serializes a consistent snapshot under the trace's lock, so a
// trace can be encoded while an abandoned rung attempt is still writing.
func (t *Trace) MarshalJSON() ([]byte, error) {
	snap := t.Snapshot()
	// An alias type drops the custom marshaller to avoid recursion.
	type plain Trace
	return json.Marshal((*plain)(snap))
}

// tenantKey is the context key for the request's tenant identity.
type tenantKey struct{}

// WithTenant returns a context carrying the request's tenant identity, so
// layers below admission (engine, robust driver, logs) can attribute work
// without threading a parameter through every signature.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantKey{}, tenant)
}

// TenantFrom returns the context's tenant identity, or "" when the request
// did not pass through tenant-aware admission.
func TenantFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	t, _ := ctx.Value(tenantKey{}).(string)
	return t
}

// traceKey is the context key for the request trace; rungKey labels which
// ladder rung the traced code is running under.
type traceKey struct{}
type rungKey struct{}

// WithTrace returns a context carrying t; scheduling layers below will
// record into it. A nil t is allowed and means "untraced".
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the context's trace, or nil when untraced. The nil
// result is usable: every Trace method no-ops on nil.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// WithRung labels ctx with the ladder rung about to run, so pass deltas
// recorded below know which rung's sequence produced them.
func WithRung(ctx context.Context, name string) context.Context {
	return context.WithValue(ctx, rungKey{}, name)
}

// RungFromContext returns the rung label, or "" outside a ladder attempt.
func RungFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	name, _ := ctx.Value(rungKey{}).(string)
	return name
}
