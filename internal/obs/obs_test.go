package obs

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if _, err := r.WriteTo(&b); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	return b.String()
}

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %v, want 3.5", got)
	}
	c.Set(2) // backwards: clamped
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter after backwards Set = %v, want 3.5", got)
	}
	c.Set(7)
	if got := c.Value(); got != 7 {
		t.Fatalf("counter after forwards Set = %v, want 7", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(5)
	g.Dec()
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
}

func TestHistogramRendering(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	out := render(t, r)
	for _, want := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="+Inf"} 3`,
		`test_seconds_sum 5.55`,
		`test_seconds_count 3`,
		"# TYPE test_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestVecLabelsAndSortedOutput(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "kind")
	v.With("zebra").Inc()
	v.With("alpha").Add(2)
	r.Gauge("a_gauge", "first alphabetically").Set(1)
	out := render(t, r)
	// Families sorted by name, children by label value.
	ia := strings.Index(out, "a_gauge")
	iz := strings.Index(out, `req_total{kind="zebra"}`)
	ial := strings.Index(out, `req_total{kind="alpha"}`)
	if !(ia < ial && ial < iz) {
		t.Fatalf("output not sorted:\n%s", out)
	}
	// Deterministic: two renders identical.
	if out2 := render(t, r); out2 != out {
		t.Fatalf("render not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "v").With("a\"b\\c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `esc_total{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestRegisterIdempotentAndShapeCheck(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("same_total", "h")
	c2 := r.Counter("same_total", "h")
	if c1 != c2 {
		t.Fatalf("re-registration returned a different counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering with a different type did not panic")
		}
	}()
	r.Gauge("same_total", "h")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid metric name did not panic")
		}
	}()
	r.Counter("bad-name", "h")
}

func TestBeforeScrapeHook(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("synced_gauge", "h")
	n := 0
	r.BeforeScrape(func() { n++; g.Set(float64(n)) })
	out := render(t, r)
	if !strings.Contains(out, "synced_gauge 1") {
		t.Fatalf("hook did not run before render:\n%s", out)
	}
	if out = render(t, r); !strings.Contains(out, "synced_gauge 2") {
		t.Fatalf("hook did not run on second render:\n%s", out)
	}
}

func TestFamilies(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "h")
	r.GaugeVec("a_gauge", "h", "x", "y")
	fams := r.Families()
	if len(fams) != 2 || fams[0].Name != "a_gauge" || fams[1].Name != "b_total" {
		t.Fatalf("Families = %+v", fams)
	}
	if fams[0].Kind != "gauge" || len(fams[0].LabelNames) != 2 {
		t.Fatalf("Families[0] = %+v", fams[0])
	}
}

func TestConcurrentUpdatesDuringScrape(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("cc_total", "h", "w")
	h := r.Histogram("cc_seconds", "h", nil)
	g := r.Gauge("cc_gauge", "h")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lbl := string(rune('a' + i%4))
			for j := 0; j < 500; j++ {
				c.With(lbl).Inc()
				h.Observe(float64(j) / 100)
				g.Set(float64(j))
			}
		}(i)
	}
	for i := 0; i < 20; i++ {
		render(t, r)
	}
	wg.Wait()
	total := 0.0
	for i := 0; i < 4; i++ {
		total += c.With(string(rune('a' + i))).Value()
	}
	if total != 8*500 {
		t.Fatalf("lost counter increments: %v", total)
	}
}

func TestFormatFloatInf(t *testing.T) {
	if got := formatFloat(math.Inf(1)); got != "+Inf" {
		t.Fatalf("formatFloat(+Inf) = %q", got)
	}
}

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.RecordPass(PassDelta{})
	tr.RecordAttempt(AttemptRec{})
	tr.SetCachePath(CacheHit)
	tr.SetPersisted()
	tr.RecordBreaker(BreakerEvent{})
	if tr.Snapshot() != nil {
		t.Fatalf("nil trace snapshot should be nil")
	}
}

func TestTraceRecordAndMarshal(t *testing.T) {
	tr := NewTrace("mxm", "raw4")
	tr.RecordPass(PassDelta{Rung: "convergent", Pass: "PATH", Changed: 3, MinTotal: 1, MaxTotal: 1})
	tr.RecordAttempt(AttemptRec{Rung: "convergent", Ms: 1.5, OK: true})
	tr.SetCachePath(CacheMiss)
	tr.SetPersisted()
	tr.RecordBreaker(BreakerEvent{Key: "convergent@abc", From: "closed", To: "open"})
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Graph != "mxm" || back.Machine != "raw4" || len(back.Passes) != 1 ||
		len(back.Attempts) != 1 || back.CachePath != CacheMiss || !back.Persisted ||
		len(back.Breakers) != 1 {
		t.Fatalf("round trip mismatch: %+v", &back)
	}
}

func TestTraceConcurrentRecording(t *testing.T) {
	tr := NewTrace("g", "m")
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				tr.RecordPass(PassDelta{Pass: "NOISE"})
				tr.RecordAttempt(AttemptRec{Rung: "r"})
			}
		}()
	}
	for i := 0; i < 50; i++ {
		if _, err := json.Marshal(tr); err != nil {
			t.Fatalf("marshal during recording: %v", err)
		}
	}
	wg.Wait()
	snap := tr.Snapshot()
	if len(snap.Passes) != 800 || len(snap.Attempts) != 800 {
		t.Fatalf("lost records: %d passes, %d attempts", len(snap.Passes), len(snap.Attempts))
	}
}

func TestContextPlumbing(t *testing.T) {
	if FromContext(nil) != nil || FromContext(context.Background()) != nil {
		t.Fatalf("missing trace should be nil")
	}
	tr := NewTrace("g", "m")
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatalf("trace not recovered from context")
	}
	if RungFromContext(ctx) != "" {
		t.Fatalf("rung should default empty")
	}
	ctx = WithRung(ctx, "convergent")
	if RungFromContext(ctx) != "convergent" {
		t.Fatalf("rung not recovered")
	}
	if RungFromContext(nil) != "" {
		t.Fatalf("nil ctx rung should be empty")
	}
}
