package schedule

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/machine"
)

// handSchedule builds a tiny legal two-tile schedule by hand:
//
//	tile0: cycle0 const ; cycle1 neg(const) ; cycle2 send neg->1
//	tile1: cycle5 not(neg)
func handSchedule(t *testing.T) *Schedule {
	t.Helper()
	g := ir.New("hand")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	g.Add(ir.Not, b.ID)
	m := machine.Raw(2)
	s := New(g, m)
	s.Placements[0] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[1] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Placements[2] = Placement{Cluster: 1, FU: 0, Start: 5, Latency: 1}
	s.Comms = []Comm{{Value: b.ID, From: 0, To: 1, Depart: 2, Arrive: 5}}
	if err := s.Validate(); err != nil {
		t.Fatalf("hand schedule invalid: %v", err)
	}
	return s
}

func TestHandScheduleLength(t *testing.T) {
	s := handSchedule(t)
	if got := s.Length(); got != 6 {
		t.Errorf("Length = %d, want 6", got)
	}
	if got := s.ArrivalOn(1, 1); got != 5 {
		t.Errorf("ArrivalOn(1,1) = %d, want 5", got)
	}
	if got := s.ArrivalOn(1, 0); got != 2 {
		t.Errorf("ArrivalOn(1,0) = %d, want 2", got)
	}
	if got := s.ArrivalOn(2, 0); got != -1 {
		t.Errorf("ArrivalOn(2,0) = %d, want -1", got)
	}
	// Immediate-broadcast rule: the constant is usable everywhere once
	// materialised.
	if got := s.ArrivalOn(0, 1); got != 1 {
		t.Errorf("ArrivalOn(const,1) = %d, want 1", got)
	}
}

func expectInvalid(t *testing.T, s *Schedule, fragment string) {
	t.Helper()
	err := s.Validate()
	if err == nil {
		t.Fatalf("Validate accepted schedule; want error containing %q", fragment)
	}
	if !strings.Contains(err.Error(), fragment) {
		t.Fatalf("Validate error %q does not mention %q", err, fragment)
	}
}

func TestValidateCatchesMissingComm(t *testing.T) {
	s := handSchedule(t)
	s.Comms = nil
	expectInvalid(t, s, "never arrives")
}

func TestValidateCatchesEarlyConsumer(t *testing.T) {
	s := handSchedule(t)
	s.Placements[2].Start = 4
	expectInvalid(t, s, "before operand")
}

func TestValidateCatchesEarlyDeparture(t *testing.T) {
	s := handSchedule(t)
	s.Comms[0].Depart = 1 // value ready at 2
	s.Comms[0].Arrive = 4
	expectInvalid(t, s, "before value")
}

func TestValidateCatchesWrongCommLatency(t *testing.T) {
	s := handSchedule(t)
	s.Comms[0].Arrive = 3
	expectInvalid(t, s, "arrives at")
}

func TestValidateCatchesSelfComm(t *testing.T) {
	s := handSchedule(t)
	s.Placements[2].Cluster = 0
	s.Placements[2].Start = 2
	s.Comms[0].To = 0
	expectInvalid(t, s, "to itself")
}

func TestValidateCatchesFUConflict(t *testing.T) {
	g := ir.New("fu")
	a := g.AddConst(1)
	g.AddConst(2)
	m := machine.Raw(1)
	s := New(g, m)
	s.Placements[a.ID] = Placement{Start: 0, Latency: 1}
	s.Placements[1] = Placement{Start: 0, Latency: 1}
	expectInvalid(t, s, "share cluster")
}

func TestValidateCatchesWrongLatency(t *testing.T) {
	s := handSchedule(t)
	s.Placements[0].Latency = 3
	expectInvalid(t, s, "latency")
}

func TestValidateCatchesPreplacementViolation(t *testing.T) {
	g := ir.New("pp")
	a := g.AddConst(1)
	a.Home = 1
	m := machine.Raw(2)
	s := New(g, m)
	s.Placements[0] = Placement{Cluster: 0, Start: 0, Latency: 1}
	expectInvalid(t, s, "preplaced")
}

func TestValidateCatchesIncompatibleFU(t *testing.T) {
	g := ir.New("fpu")
	f := g.AddFConst(1.0)
	g.Add(ir.FNeg, f.ID)
	m := machine.Chorus(1)
	s := New(g, m)
	fpu := m.FirstFU(ir.FAdd)
	s.Placements[0] = Placement{FU: fpu, Start: 0, Latency: 1}
	s.Placements[1] = Placement{FU: 0, Start: 1, Latency: 1} // int ALU cannot FNeg
	expectInvalid(t, s, "incompatible FU")
}

func TestValidateCatchesRawRemoteMemory(t *testing.T) {
	g := ir.New("rm")
	addr := g.AddConst(0)
	g.AddLoad(1, addr.ID)
	m := machine.Raw(2)
	s := New(g, m)
	s.Placements[0] = Placement{Cluster: 0, Start: 0, Latency: 1}
	s.Placements[1] = Placement{Cluster: 0, Start: 1, Latency: m.OpLatency(ir.Load)}
	expectInvalid(t, s, "illegal on cluster")
}

func TestValidateCatchesSendPortOverflow(t *testing.T) {
	g := ir.New("ports")
	a := g.AddConst(1)
	b := g.AddConst(2)
	g.Add(ir.Add, a.ID, b.ID)
	m := machine.Raw(2) // 1 send port per tile
	s := New(g, m)
	s.Placements[0] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[1] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Placements[2] = Placement{Cluster: 1, FU: 0, Start: 5, Latency: 1}
	s.Comms = []Comm{
		{Value: 0, From: 0, To: 1, Depart: 2, Arrive: 5},
		{Value: 1, From: 0, To: 1, Depart: 2, Arrive: 5},
	}
	// Raw(2) has RecvPorts 1 as well, so either error is acceptable;
	// check it mentions ports at all.
	err := s.Validate()
	if err == nil {
		t.Fatal("Validate accepted port overflow")
	}
	if !strings.Contains(err.Error(), "values at cycle") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestValidateCatchesXferConflict(t *testing.T) {
	g := ir.New("xferclash")
	a := g.AddConst(1)
	b := g.AddConst(2)
	g.Add(ir.Add, a.ID, b.ID)
	m := machine.Chorus(2)
	m.SendPorts = 2 // isolate the transfer-unit check from the port check
	s := New(g, m)
	ialu := 0
	s.Placements[0] = Placement{Cluster: 0, FU: ialu, Start: 0, Latency: 1}
	s.Placements[1] = Placement{Cluster: 0, FU: ialu, Start: 1, Latency: 1}
	s.Placements[2] = Placement{Cluster: 1, FU: ialu, Start: 3, Latency: 1}
	s.Comms = []Comm{
		{Value: 0, From: 0, To: 1, Depart: 2, Arrive: 3},
		{Value: 1, From: 0, To: 1, Depart: 2, Arrive: 3},
	}
	expectInvalid(t, s, "transfer unit")
}

func TestValidateCatchesMemEdgeViolation(t *testing.T) {
	g := ir.New("memv")
	addr := g.AddConst(0)
	v := g.AddConst(9)
	st := g.AddStore(0, addr.ID, v.ID)
	ld := g.AddLoad(0, addr.ID)
	g.AddMemEdge(st.ID, ld.ID)
	m := machine.Chorus(1)
	s := New(g, m)
	imem := -1
	for fu, k := range m.FUs {
		if k == machine.KindIntMem {
			imem = fu
		}
	}
	s.Placements[addr.ID] = Placement{FU: 0, Start: 0, Latency: 1}
	s.Placements[v.ID] = Placement{FU: 1, Start: 0, Latency: 1}
	s.Placements[st.ID] = Placement{FU: imem, Start: 1, Latency: 1}
	s.Placements[ld.ID] = Placement{FU: imem, Start: 1, Latency: m.OpLatency(ir.Load)}
	// Both on imem at cycle 1 also clashes; move load to cycle 1 on the
	// same FU is a double violation — separate the FU clash first.
	s.Placements[ld.ID].Start = 1
	s.Placements[st.ID].Start = 2
	// Now load at 1 precedes store completion at 3 but edge is st->ld;
	// reverse: load must come after store. With store at 2 (ready 3) and
	// load at 1, the edge is violated and FUs don't clash.
	expectInvalid(t, s, "memory edge")
}

func TestAssignmentAccessor(t *testing.T) {
	s := handSchedule(t)
	a := s.Assignment()
	if len(a) != 3 || a[0] != 0 || a[1] != 0 || a[2] != 1 {
		t.Errorf("Assignment = %v", a)
	}
}

func TestSortCommsDeterministic(t *testing.T) {
	s := handSchedule(t)
	s.Comms = append(s.Comms, Comm{Value: 0, From: 0, To: 1, Depart: 0, Arrive: 3})
	s.SortComms()
	if s.Comms[0].Depart > s.Comms[1].Depart {
		t.Error("SortComms did not order by departure")
	}
}

func TestValidateCatchesLinkCollision(t *testing.T) {
	// Two values cross the same mesh link (1->2) in the same cycle but
	// end at different tiles, so only the link check can catch it: x
	// goes 0->3 (links 0->1@2, 1->2@3, 2->3@4), y goes 1->2 (link
	// 1->2@3).
	g := ir.New("linkclash")
	a := g.AddConst(1)
	x := g.Add(ir.Neg, a.ID) // on tile 0
	y := g.Add(ir.Not, a.ID) // on tile 1
	m := Raw1x4(t)
	s := New(g, m)
	s.Placements[a.ID] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[x.ID] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Placements[y.ID] = Placement{Cluster: 1, FU: 0, Start: 1, Latency: 1}
	s.Comms = []Comm{
		{Value: x.ID, From: 0, To: 3, Depart: 2, Arrive: 2 + m.CommLatency(0, 3)},
		{Value: y.ID, From: 1, To: 2, Depart: 3, Arrive: 3 + m.CommLatency(1, 2)},
	}
	expectInvalid(t, s, "carries two words")
	// Staggering y by one cycle resolves the collision.
	s.Comms[1].Depart = 4
	s.Comms[1].Arrive = 4 + m.CommLatency(1, 2)
	if err := s.Validate(); err != nil {
		t.Fatalf("staggered comm rejected: %v", err)
	}
}

// Raw1x4 builds a 1x4 linear mesh for link-contention tests.
func Raw1x4(t *testing.T) *machine.Model {
	t.Helper()
	m, err := machine.Named("raw4")
	if err != nil {
		t.Fatal(err)
	}
	m.MeshW, m.MeshH = 4, 1
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestListschedAvoidsLinkCollision(t *testing.T) {
	// The same shape scheduled by listsched must validate (it reserves
	// links and delays one of the sends).
	g := ir.New("linkok")
	a := g.AddConst(1)
	b := g.AddConst(2)
	x := g.Add(ir.Neg, a.ID)
	y := g.Add(ir.Not, b.ID)
	g.Add(ir.Add, x.ID, y.ID)
	// Built via the exported scheduler in a sibling test package would
	// be circular; hand-check with Validate after the real scheduler
	// runs in listsched's own tests. Here we only assert the validator
	// accepts staggered departures.
	m := Raw1x4(t)
	s := New(g, m)
	s.Placements[a.ID] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[b.ID] = Placement{Cluster: 1, FU: 0, Start: 0, Latency: 1}
	s.Placements[x.ID] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Placements[y.ID] = Placement{Cluster: 1, FU: 0, Start: 1, Latency: 1}
	s.Placements[4] = Placement{Cluster: 2, FU: 0, Start: 8, Latency: 1}
	s.Comms = []Comm{
		{Value: x.ID, From: 0, To: 2, Depart: 2, Arrive: 2 + m.CommLatency(0, 2)},
		{Value: y.ID, From: 1, To: 2, Depart: 4, Arrive: 4 + m.CommLatency(1, 2)},
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("staggered departures rejected: %v", err)
	}
}

func TestMaxLivePerClusterChain(t *testing.T) {
	s := handSchedule(t)
	live := s.MaxLivePerCluster()
	if len(live) != 2 {
		t.Fatalf("live = %v", live)
	}
	// Tile 0 holds the const and the neg result; tile 1 receives one
	// value.
	if live[0] < 1 || live[1] < 1 {
		t.Errorf("MaxLivePerCluster = %v", live)
	}
}

func TestStringRendersCommsAndOps(t *testing.T) {
	s := handSchedule(t)
	out := s.String()
	for _, want := range []string{"hand", "neg", "not", "snd1>1"} {
		if !strings.Contains(out, want) {
			t.Errorf("String missing %q:\n%s", want, out)
		}
	}
}

func TestLengthCountsLateArrivals(t *testing.T) {
	// A comm arriving after every placement completes extends Length.
	g := ir.New("late")
	a := g.AddConst(1)
	b := g.Add(ir.Neg, a.ID)
	m := machine.Raw(2)
	s := New(g, m)
	s.Placements[a.ID] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[b.ID] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Comms = []Comm{{Value: b.ID, From: 0, To: 1, Depart: 9, Arrive: 12}}
	if got := s.Length(); got != 12 {
		t.Errorf("Length = %d, want 12", got)
	}
}

func TestValidateCatchesNegativeStartAndBadValue(t *testing.T) {
	s := handSchedule(t)
	s.Placements[0].Start = -1
	expectInvalid(t, s, "starts at")

	s2 := handSchedule(t)
	s2.Comms[0].Value = 99
	expectInvalid(t, s2, "unknown value")
}

func TestValidateCatchesResultlessComm(t *testing.T) {
	g := ir.New("storecomm")
	a := g.AddConst(1)
	st := g.AddStore(0, a.ID, a.ID)
	m := machine.Raw(2)
	s := New(g, m)
	s.Placements[a.ID] = Placement{Cluster: 0, FU: 0, Start: 0, Latency: 1}
	s.Placements[st.ID] = Placement{Cluster: 0, FU: 0, Start: 1, Latency: 1}
	s.Comms = []Comm{{Value: st.ID, From: 0, To: 1, Depart: 2, Arrive: 5}}
	expectInvalid(t, s, "resultless")
}

func TestValidateCatchesPlacementCountMismatch(t *testing.T) {
	g := ir.New("short")
	g.AddConst(1)
	g.AddConst(2)
	m := machine.Raw(1)
	s := &Schedule{Graph: g, Machine: m, Placements: make([]Placement, 1)}
	expectInvalid(t, s, "placements for")
}
