// Package schedule defines the space-time schedule produced by every
// scheduler in this repository, and an independent validator that checks a
// schedule's legality against the dependence graph and machine model.
//
// Both Raw and the clustered VLIW are statically scheduled, lockstep
// machines: all clusters share a cycle counter, so a schedule is simply an
// assignment of each instruction to (cluster, functional unit, issue cycle)
// plus a set of explicit communication operations that move register values
// between clusters. Communication occupies the endpoints (send and receive
// ports, and the transfer unit on VLIW machines) and, on mesh machines,
// every link of the dimension-ordered route, one hop per cycle.
package schedule

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Placement locates one instruction in space and time.
type Placement struct {
	// Cluster is the executing cluster (home tile for Raw memory ops).
	Cluster int
	// FU is the functional-unit index within the cluster.
	FU int
	// Start is the issue cycle.
	Start int
	// Latency is the cycles until the result is usable on the same
	// cluster, including any remote-memory penalty.
	Latency int
}

// Ready returns the first cycle at which the result is usable on the
// producing cluster.
func (p Placement) Ready() int { return p.Start + p.Latency }

// Fingerprint returns a hex-encoded content hash of the schedule: every
// placement field in instruction order, every comm in list order, and the
// comm count. Two schedules have equal fingerprints exactly when their
// placements and comm lists are byte-identical, which is what the
// differential harnesses compare across scheduler paths.
func (s *Schedule) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wr := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wr(len(s.Placements))
	for _, p := range s.Placements {
		wr(p.Cluster)
		wr(p.FU)
		wr(p.Start)
		wr(p.Latency)
	}
	wr(len(s.Comms))
	for _, c := range s.Comms {
		wr(c.Value)
		wr(c.From)
		wr(c.To)
		wr(c.Depart)
		wr(c.Arrive)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Comm is one inter-cluster move of a register value.
type Comm struct {
	// Value is the ID of the producing instruction.
	Value int
	// From and To are the source and destination clusters.
	From, To int
	// Depart is the cycle the value leaves From. It occupies one send
	// port on From (and the transfer unit, if the machine has one).
	Depart int
	// Arrive is the cycle the value becomes usable on To; it occupies
	// one receive port on To.
	Arrive int
}

// Schedule is a complete space-time schedule for one graph on one machine.
type Schedule struct {
	Graph   *ir.Graph
	Machine *machine.Model
	// Placements is indexed by instruction ID.
	Placements []Placement
	// Comms lists every inter-cluster value move.
	Comms []Comm
}

// New returns an empty schedule shell for the given graph and machine.
func New(g *ir.Graph, m *machine.Model) *Schedule {
	return &Schedule{
		Graph:      g,
		Machine:    m,
		Placements: make([]Placement, g.Len()),
	}
}

// Length returns the schedule makespan in cycles: the first cycle by which
// every result has been produced and every communication has arrived. An
// empty schedule has length zero.
func (s *Schedule) Length() int {
	max := 0
	for i := range s.Placements {
		if r := s.Placements[i].Ready(); r > max {
			max = r
		}
	}
	for _, c := range s.Comms {
		if c.Arrive > max {
			max = c.Arrive
		}
	}
	return max
}

// Assignment returns the cluster of every instruction, indexed by ID.
func (s *Schedule) Assignment() []int {
	out := make([]int, len(s.Placements))
	for i := range s.Placements {
		out[i] = s.Placements[i].Cluster
	}
	return out
}

// ArrivalOn returns the first cycle the value produced by instruction v is
// usable on the given cluster, or -1 if it never arrives there. The
// producing cluster counts as arrival at result-ready time.
//
// Constants follow the immediate-broadcast rule: real ISAs encode constant
// operands as immediates inside the consuming instruction, so a constant
// never moves through the network — it is usable on every cluster as soon
// as it is materialised. All schedulers in this repository share this rule.
func (s *Schedule) ArrivalOn(v, cluster int) int {
	p := s.Placements[v]
	if p.Cluster == cluster || s.Graph.Instrs[v].Op.IsConst() {
		return p.Ready()
	}
	best := -1
	for _, c := range s.Comms {
		if c.Value == v && c.To == cluster && (best < 0 || c.Arrive < best) {
			best = c.Arrive
		}
	}
	return best
}

// CommCount returns the number of communication operations.
func (s *Schedule) CommCount() int { return len(s.Comms) }

// Validate checks the schedule's complete legality:
//
//   - every placement is in range, on a functional unit that can issue the
//     opcode, with the correct latency for its cluster;
//   - preplaced instructions sit on their home clusters, and memory
//     operations obey the machine's locality rule;
//   - no functional unit issues two operations in one cycle (communication
//     occupies the transfer unit on machines that have one);
//   - send/receive port capacities are never exceeded;
//   - every communication departs no earlier than its value is ready on its
//     source cluster, with the exact machine latency;
//   - every data operand has arrived on the consumer's cluster by its issue
//     cycle, and memory-order edges are respected in lockstep time.
//
// It returns the first violation found, or nil.
func (s *Schedule) Validate() error {
	g, m := s.Graph, s.Machine
	if len(s.Placements) != g.Len() {
		return fmt.Errorf("schedule: %d placements for %d instructions", len(s.Placements), g.Len())
	}
	// Placement sanity.
	for i, p := range s.Placements {
		in := g.Instrs[i]
		if p.Cluster < 0 || p.Cluster >= m.NumClusters {
			return fmt.Errorf("schedule: instr %d on cluster %d of %d", i, p.Cluster, m.NumClusters)
		}
		if p.Start < 0 {
			return fmt.Errorf("schedule: instr %d starts at %d", i, p.Start)
		}
		if !m.CanRunOn(in.Op, p.FU) {
			return fmt.Errorf("schedule: instr %d (%v) on incompatible FU %d", i, in.Op, p.FU)
		}
		want, ok := m.InstrLatency(in, p.Cluster)
		if !ok {
			return fmt.Errorf("schedule: instr %d (%v bank %d) illegal on cluster %d", i, in.Op, in.Bank, p.Cluster)
		}
		if p.Latency != want {
			return fmt.Errorf("schedule: instr %d latency %d, want %d", i, p.Latency, want)
		}
		if in.Preplaced() && p.Cluster != in.Home {
			return fmt.Errorf("schedule: preplaced instr %d on cluster %d, home %d", i, p.Cluster, in.Home)
		}
	}
	// FU occupancy, including transfer-unit use by communications.
	type fuSlot struct{ cluster, fu, cycle int }
	fuBusy := make(map[fuSlot]int)
	for i, p := range s.Placements {
		key := fuSlot{p.Cluster, p.FU, p.Start}
		if prev, clash := fuBusy[key]; clash {
			return fmt.Errorf("schedule: instrs %d and %d share cluster %d FU %d at cycle %d", prev, i, p.Cluster, p.FU, p.Start)
		}
		fuBusy[key] = i
	}
	xfer := m.XferFU()
	// Port occupancy and communication legality.
	type portSlot struct{ cluster, cycle int }
	sendUse := make(map[portSlot]int)
	recvUse := make(map[portSlot]int)
	for ci, c := range s.Comms {
		if c.Value < 0 || c.Value >= g.Len() {
			return fmt.Errorf("schedule: comm %d moves unknown value %d", ci, c.Value)
		}
		if !g.Instrs[c.Value].Op.HasResult() {
			return fmt.Errorf("schedule: comm %d moves resultless instr %d", ci, c.Value)
		}
		p := s.Placements[c.Value]
		if c.From != p.Cluster {
			return fmt.Errorf("schedule: comm %d departs cluster %d but value %d lives on %d", ci, c.From, c.Value, p.Cluster)
		}
		if c.From == c.To {
			return fmt.Errorf("schedule: comm %d from cluster %d to itself", ci, c.From)
		}
		if c.Depart < p.Ready() {
			return fmt.Errorf("schedule: comm %d departs at %d before value %d ready at %d", ci, c.Depart, c.Value, p.Ready())
		}
		if want := c.Depart + m.CommLatency(c.From, c.To); c.Arrive != want {
			return fmt.Errorf("schedule: comm %d arrives at %d, want %d", ci, c.Arrive, want)
		}
		sendUse[portSlot{c.From, c.Depart}]++
		recvUse[portSlot{c.To, c.Arrive}]++
		if xfer >= 0 {
			key := fuSlot{c.From, xfer, c.Depart}
			if prev, clash := fuBusy[key]; clash {
				return fmt.Errorf("schedule: comm %d and op %d share transfer unit on cluster %d at cycle %d", ci, prev, c.From, c.Depart)
			}
			fuBusy[key] = -1 - ci
		}
	}
	for slot, n := range sendUse {
		if n > m.SendPorts {
			return fmt.Errorf("schedule: cluster %d sends %d values at cycle %d (limit %d)", slot.cluster, n, slot.cycle, m.SendPorts)
		}
	}
	for slot, n := range recvUse {
		if n > m.RecvPorts {
			return fmt.Errorf("schedule: cluster %d receives %d values at cycle %d (limit %d)", slot.cluster, n, slot.cycle, m.RecvPorts)
		}
	}
	// Link-level occupancy on mesh machines: a communication's head word
	// crosses link i of its dimension-ordered route at cycle Depart+i,
	// and each link carries one word per cycle.
	if m.LinkLevel() {
		type linkSlot struct {
			link  machine.Link
			cycle int
		}
		linkUse := make(map[linkSlot]int)
		for ci, c := range s.Comms {
			for hop, l := range m.Route(c.From, c.To) {
				key := linkSlot{l, c.Depart + hop}
				linkUse[key]++
				if linkUse[key] > 1 {
					return fmt.Errorf("schedule: comm %d: link %d->%d carries two words at cycle %d",
						ci, l.From, l.To, c.Depart+hop)
				}
			}
		}
	}
	// Dependence timing.
	for i := range g.Instrs {
		p := s.Placements[i]
		for _, a := range g.Instrs[i].Args {
			arr := s.ArrivalOn(a, p.Cluster)
			if arr < 0 {
				return fmt.Errorf("schedule: operand %%%d of instr %d never arrives on cluster %d", a, i, p.Cluster)
			}
			if arr > p.Start {
				return fmt.Errorf("schedule: instr %d issues at %d before operand %%%d arrives at %d", i, p.Start, a, arr)
			}
		}
	}
	for _, e := range g.MemEdges() {
		pre, post := s.Placements[e[0]], s.Placements[e[1]]
		if post.Start < pre.Ready() {
			return fmt.Errorf("schedule: memory edge (%d,%d) violated: %d issues at %d before %d completes at %d",
				e[0], e[1], e[1], post.Start, e[0], pre.Ready())
		}
	}
	return nil
}

// MaxLivePerCluster estimates register pressure: for each cluster, the
// maximum number of values simultaneously live there. A value is live on a
// cluster from its arrival until its last local use (issue of a consumer or
// departure of a communication). Values with no local consumers are live for
// one cycle.
func (s *Schedule) MaxLivePerCluster() []int {
	type span struct{ from, to int }
	live := make([]map[int]span, s.Machine.NumClusters)
	for c := range live {
		live[c] = make(map[int]span)
	}
	note := func(cluster, value, at int) {
		sp, ok := live[cluster][value]
		if !ok {
			arr := s.ArrivalOn(value, cluster)
			sp = span{from: arr, to: arr}
		}
		if at > sp.to {
			sp.to = at
		}
		live[cluster][value] = sp
	}
	for i, p := range s.Placements {
		if s.Graph.Instrs[i].Op.HasResult() {
			note(p.Cluster, i, p.Ready())
		}
		for _, a := range s.Graph.Instrs[i].Args {
			note(p.Cluster, a, p.Start)
		}
	}
	for _, c := range s.Comms {
		note(c.From, c.Value, c.Depart)
	}
	out := make([]int, s.Machine.NumClusters)
	length := s.Length()
	for c := range live {
		counts := make([]int, length+2)
		for _, sp := range live[c] {
			if sp.from < 0 {
				continue
			}
			for t := sp.from; t <= sp.to && t < len(counts); t++ {
				counts[t]++
			}
		}
		for _, n := range counts {
			if n > out[c] {
				out[c] = n
			}
		}
	}
	return out
}

// String renders the schedule as a per-cluster timeline, one row per cycle.
func (s *Schedule) String() string {
	length := s.Length()
	rows := make([][]string, length+1)
	for t := range rows {
		rows[t] = make([]string, s.Machine.NumClusters)
	}
	for i, p := range s.Placements {
		cell := fmt.Sprintf("%d:%v", i, s.Graph.Instrs[i].Op)
		if rows[p.Start][p.Cluster] != "" {
			cell = rows[p.Start][p.Cluster] + " " + cell
		}
		rows[p.Start][p.Cluster] = cell
	}
	for _, c := range s.Comms {
		cell := fmt.Sprintf("snd%d>%d", c.Value, c.To)
		if rows[c.Depart][c.From] != "" {
			cell = rows[c.Depart][c.From] + " " + cell
		}
		rows[c.Depart][c.From] = cell
	}
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %s on %s: %d cycles, %d comms\n", s.Graph.Name, s.Machine.Name, length, len(s.Comms))
	width := make([]int, s.Machine.NumClusters)
	for _, row := range rows {
		for c, cell := range row {
			if len(cell) > width[c] {
				width[c] = len(cell)
			}
		}
	}
	for t, row := range rows {
		empty := true
		for _, cell := range row {
			if cell != "" {
				empty = false
			}
		}
		if empty {
			continue
		}
		fmt.Fprintf(&b, "%4d |", t)
		for c, cell := range row {
			fmt.Fprintf(&b, " %-*s |", width[c], cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortComms orders communications by (Depart, Value, To) for deterministic
// output; validation does not depend on order.
func (s *Schedule) SortComms() {
	sort.Slice(s.Comms, func(i, j int) bool {
		a, b := s.Comms[i], s.Comms[j]
		if a.Depart != b.Depart {
			return a.Depart < b.Depart
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		return a.To < b.To
	})
}
