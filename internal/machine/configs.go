package machine

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// defaultLatencies is a MIPS-R4000-flavoured latency table, matching the
// paper's statement that both infrastructures base instruction latencies on
// the R4000. Exact testbed numbers are not published; these approximations
// preserve the ratios that matter to the heuristics (multiplies and divides
// are long, ALU ops are single-cycle, loads are a couple of cycles).
func defaultLatencies() [ir.NumOps]int {
	var lat [ir.NumOps]int
	for op := range lat {
		lat[op] = 1
	}
	lat[ir.Mul] = 2
	lat[ir.Div] = 12
	lat[ir.Rem] = 12
	lat[ir.FAdd] = 2
	lat[ir.FSub] = 2
	lat[ir.FMul] = 4
	lat[ir.FDiv] = 12
	lat[ir.FSqrt] = 12
	lat[ir.FMA] = 4
	lat[ir.IntToFloat] = 2
	lat[ir.FloatToInt] = 2
	lat[ir.Load] = 2
	lat[ir.Store] = 1
	return lat
}

// rawMesh returns the width and height of the mesh used for an n-tile Raw
// configuration. The paper evaluates 2, 4, 8 and 16 tiles; we arrange them
// as 1x2, 2x2, 2x4 and 4x4.
func rawMesh(tiles int) (w, h int, err error) {
	switch tiles {
	case 1:
		return 1, 1, nil
	case 2:
		return 2, 1, nil
	case 4:
		return 2, 2, nil
	case 8:
		return 4, 2, nil
	case 16:
		return 4, 4, nil
	}
	// General fallback: widest w <= sqrt that divides tiles.
	for w := 1; w*w <= tiles; w++ {
		if tiles%w == 0 {
			h = tiles / w
		}
	}
	if h > 0 {
		return tiles / h, h, nil
	}
	return 0, 0, fmt.Errorf("machine: cannot arrange %d tiles in a mesh", tiles)
}

// Raw returns a Raw-machine model with the given number of tiles. Each tile
// has one do-everything functional unit, its own memory bank set, and
// register-mapped static-network ports: communication costs 3 cycles between
// neighbouring tiles plus 1 per additional hop, and each tile can inject and
// accept one word per cycle. Memory operations must execute on the tile
// owning their bank.
func Raw(tiles int) *Model {
	w, h, err := rawMesh(tiles)
	if err != nil {
		panic(err)
	}
	m := &Model{
		Name:             fmt.Sprintf("raw%d", tiles),
		NumClusters:      tiles,
		FUs:              []FUKind{KindAll},
		MeshW:            w,
		MeshH:            h,
		CommBase:         3,
		CommPerHop:       1,
		SendPorts:        1,
		RecvPorts:        1,
		RemoteMemPenalty: -1,
		lat:              defaultLatencies(),
	}
	m.InitRoutes()
	return m
}

// Chorus returns a clustered-VLIW model in the style of the MIT Chorus
// infrastructure: each cluster has one integer ALU, one integer ALU/memory
// unit, one floating-point unit and one transfer unit; a register value
// copies between any two clusters in one cycle via the transfer unit; memory
// addresses are interleaved across clusters and a remote access pays one
// extra cycle.
func Chorus(clusters int) *Model {
	if clusters < 1 {
		panic(fmt.Sprintf("machine: Chorus(%d)", clusters))
	}
	m := &Model{
		Name:             fmt.Sprintf("vliw%d", clusters),
		NumClusters:      clusters,
		FUs:              []FUKind{KindIntALU, KindIntMem, KindFloat, KindXfer},
		CommBase:         1,
		CommPerHop:       0,
		SendPorts:        1,
		RecvPorts:        2,
		RemoteMemPenalty: 1,
		lat:              defaultLatencies(),
	}
	return m
}

// SingleVLIW returns the one-cluster reference machine for Figure 8's
// speedup baseline: the same four functional units as one Chorus cluster.
func SingleVLIW() *Model {
	m := Chorus(1)
	m.Name = "vliw1"
	return m
}

// Named returns the model for a command-line name such as "raw16" or
// "vliw4". It is the user-input path into the panicking constructors, so it
// rejects degenerate counts (and trailing garbage a Sscanf would let
// through) with an error instead.
func Named(name string) (*Model, error) {
	if rest, ok := strings.CutPrefix(name, "raw"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("machine: bad tile count in %q (want rawN)", name)
		}
		if n < 1 {
			return nil, fmt.Errorf("machine: tile count must be positive in %q", name)
		}
		if _, _, err := rawMesh(n); err != nil {
			return nil, err
		}
		return Raw(n), nil
	}
	if rest, ok := strings.CutPrefix(name, "vliw"); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return nil, fmt.Errorf("machine: bad cluster count in %q (want vliwN)", name)
		}
		if n < 1 {
			return nil, fmt.Errorf("machine: cluster count must be positive in %q", name)
		}
		return Chorus(n), nil
	}
	return nil, fmt.Errorf("machine: unknown machine %q (want rawN or vliwN)", name)
}
