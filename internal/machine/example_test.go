package machine_test

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// Example shows the two machine models' communication costs side by side.
func Example() {
	raw := machine.Raw(16)
	vliw := machine.Chorus(4)
	fmt.Printf("raw16 neighbour hop: %d cycles\n", raw.CommLatency(0, 1))
	fmt.Printf("raw16 corner to corner: %d cycles\n", raw.CommLatency(0, 15))
	fmt.Printf("vliw4 any copy: %d cycle\n", vliw.CommLatency(0, 3))
	fmt.Printf("vliw4 remote load penalty: +%d cycle\n", vliw.RemoteMemPenalty)
	// Output:
	// raw16 neighbour hop: 3 cycles
	// raw16 corner to corner: 8 cycles
	// vliw4 any copy: 1 cycle
	// vliw4 remote load penalty: +1 cycle
}

// ExampleModel_Route shows dimension-ordered routing on the mesh.
func ExampleModel_Route() {
	m := machine.Raw(16) // 4x4, tile = y*4 + x
	for _, l := range m.Route(0, 10) {
		fmt.Printf("%d -> %d\n", l.From, l.To)
	}
	// Output:
	// 0 -> 1
	// 1 -> 2
	// 2 -> 6
	// 6 -> 10
}

// ExampleModel_InstrLatency shows the memory-locality rules: Raw memory
// operations must execute on their bank's home tile, while the VLIW pays a
// one-cycle penalty for remote access.
func ExampleModel_InstrLatency() {
	ld := &ir.Instr{Op: ir.Load, Bank: 2}
	raw := machine.Raw(4)
	if _, ok := raw.InstrLatency(ld, 0); !ok {
		fmt.Println("raw: remote load illegal")
	}
	vliw := machine.Chorus(4)
	local, _ := vliw.InstrLatency(ld, 2)
	remote, _ := vliw.InstrLatency(ld, 0)
	fmt.Printf("vliw: local %d cycles, remote %d cycles\n", local, remote)
	// Output:
	// raw: remote load illegal
	// vliw: local 2 cycles, remote 3 cycles
}
