// Package machine describes the spatial architectures that schedules are
// produced for: the Raw tiled processor and the Chorus-style clustered VLIW
// used in the paper's evaluation, plus single-cluster reference machines.
//
// A Model exposes exactly what the schedulers need and nothing more: how many
// clusters exist, which functional units each cluster has, opcode latencies,
// the communication latency/occupancy model, and how memory banks map to
// clusters. Both the convergent scheduler and the baselines are written
// against this interface, so all of them pay identical costs.
package machine

import (
	"fmt"

	"repro/internal/ir"
)

// FUKind classifies a functional unit by the opcodes it can issue.
type FUKind int

const (
	// KindAll runs every opcode. A Raw tile has a single KindAll unit.
	KindAll FUKind = iota
	// KindIntALU runs integer ALU opcodes (no memory, no floating point).
	KindIntALU
	// KindIntMem runs integer ALU opcodes plus Load/Store.
	KindIntMem
	// KindFloat runs floating-point opcodes and conversions.
	KindFloat
	// KindXfer runs only inter-cluster copies; list schedulers reserve it
	// for communication operations.
	KindXfer
)

// String names the unit kind.
func (k FUKind) String() string {
	switch k {
	case KindAll:
		return "all"
	case KindIntALU:
		return "ialu"
	case KindIntMem:
		return "imem"
	case KindFloat:
		return "fpu"
	case KindXfer:
		return "xfer"
	}
	return fmt.Sprintf("fu(%d)", int(k))
}

// CanRun reports whether a unit of this kind can issue the opcode.
// Communication copies are handled separately by the schedulers; CanRun
// covers graph instructions only.
func (k FUKind) CanRun(op ir.Op) bool {
	switch k {
	case KindAll:
		return true
	case KindIntALU:
		return !op.IsMemory() && !op.IsFloat()
	case KindIntMem:
		return !op.IsFloat()
	case KindFloat:
		return op.IsFloat() || op == FloatToIntOp
	case KindXfer:
		return false
	}
	return false
}

// FloatToIntOp aliases ir.FloatToInt so CanRun can special-case it: the
// conversion reads a float, so it issues on the FPU even though its result
// is integer.
const FloatToIntOp = ir.FloatToInt

// Model is a machine description. Clusters are identical; communication
// topology distinguishes Raw (2D mesh, multi-cycle hops) from clustered
// VLIW (full crossbar, single-cycle copies).
type Model struct {
	// Name labels the model in tables ("raw16", "vliw4", ...).
	Name string
	// NumClusters is the number of clusters (tiles on Raw).
	NumClusters int
	// FUs lists the functional units present in every cluster.
	FUs []FUKind

	// MeshW and MeshH give the mesh arrangement when both are positive;
	// cluster c sits at (c mod MeshW, c div MeshW). Zero means a full
	// crossbar (clustered VLIW).
	MeshW, MeshH int

	// CommBase is the cycles for a value to move between two distinct
	// clusters at distance 1; CommPerHop is added per extra hop.
	CommBase, CommPerHop int

	// SendPorts and RecvPorts bound how many values a cluster can inject
	// into / accept from the network per cycle.
	SendPorts, RecvPorts int

	// RemoteMemPenalty is the extra latency for a memory op executing on
	// a cluster that does not own the bank. Negative means remote access
	// is illegal (Raw: memory ops must run on the bank's home tile).
	RemoteMemPenalty int

	lat [ir.NumOps]int

	// routes is the all-pairs route table (see Route), built by the
	// constructors. It depends only on the mesh topology, so copies made
	// by WithOpLatency share it. routesW/routesH record the mesh it was
	// built for: a caller that reshapes MeshW/MeshH after construction
	// (tests do) silently invalidates the table, and Route must notice
	// and fall back to computing instead of serving stale paths.
	routes           [][]Link
	routesW, routesH int
}

// OpLatency returns the result latency of the opcode in cycles (at least 1).
func (m *Model) OpLatency(op ir.Op) int {
	if !op.Valid() {
		return 1
	}
	return m.lat[op]
}

// LatencyFunc adapts the model to ir.LatencyFunc.
func (m *Model) LatencyFunc() ir.LatencyFunc { return m.OpLatency }

// WithOpLatency returns a copy of the model whose latency for op is cycles
// (at least 1). The receiver is unchanged; the latency table is an array,
// so the copy is deep. Used by fault injection to build models that lie,
// and available for what-if latency studies.
func (m *Model) WithOpLatency(op ir.Op, cycles int) *Model {
	if cycles < 1 {
		cycles = 1
	}
	cp := *m
	if op.Valid() {
		cp.lat[op] = cycles
	}
	return &cp
}

// BankOwner returns the cluster that owns a memory bank. Banks are
// interleaved across clusters, matching the congruence transformation the
// paper's compilers apply.
func (m *Model) BankOwner(bank int) int {
	if bank < 0 {
		return 0
	}
	return bank % m.NumClusters
}

// MemExtra returns the extra latency a memory op pays when executing on the
// given cluster against the given bank, and whether the access is legal.
func (m *Model) MemExtra(cluster, bank int) (extra int, ok bool) {
	if m.BankOwner(bank) == cluster {
		return 0, true
	}
	if m.RemoteMemPenalty < 0 {
		return 0, false
	}
	return m.RemoteMemPenalty, true
}

// InstrLatency returns the full latency of a graph instruction executing on
// the given cluster, including any remote-memory penalty, and whether the
// placement is legal at all.
func (m *Model) InstrLatency(in *ir.Instr, cluster int) (cycles int, ok bool) {
	base := m.OpLatency(in.Op)
	if in.Op.IsMemory() {
		extra, legal := m.MemExtra(cluster, in.Bank)
		if !legal {
			return 0, false
		}
		return base + extra, true
	}
	return base, true
}

// Dist returns the hop distance between two clusters: Manhattan distance on
// a mesh, 1 on a crossbar, 0 for the same cluster.
func (m *Model) Dist(a, b int) int {
	if a == b {
		return 0
	}
	if m.MeshW > 0 && m.MeshH > 0 {
		ax, ay := a%m.MeshW, a/m.MeshW
		bx, by := b%m.MeshW, b/m.MeshW
		dx, dy := ax-bx, ay-by
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy
	}
	return 1
}

// CommLatency returns the cycles for a value produced on cluster a to become
// usable on cluster b: zero for the same cluster, otherwise
// CommBase + CommPerHop*(Dist-1).
func (m *Model) CommLatency(a, b int) int {
	d := m.Dist(a, b)
	if d == 0 {
		return 0
	}
	return m.CommBase + m.CommPerHop*(d-1)
}

// MaxCommLatency returns the worst-case CommLatency over all cluster pairs.
func (m *Model) MaxCommLatency() int {
	max := 0
	for a := 0; a < m.NumClusters; a++ {
		for b := 0; b < m.NumClusters; b++ {
			if l := m.CommLatency(a, b); l > max {
				max = l
			}
		}
	}
	return max
}

// CanRunOn reports whether functional unit fu of a cluster can issue the
// instruction.
func (m *Model) CanRunOn(op ir.Op, fu int) bool {
	if fu < 0 || fu >= len(m.FUs) {
		return false
	}
	return m.FUs[fu].CanRun(op)
}

// FirstFU returns the index of some functional unit able to run the opcode,
// or -1 if none exists.
func (m *Model) FirstFU(op ir.Op) int {
	for i, k := range m.FUs {
		if k.CanRun(op) {
			return i
		}
	}
	return -1
}

// XferFU returns the index of the transfer unit, or -1 when communication
// does not occupy an issue slot (Raw's register-mapped network ports).
func (m *Model) XferFU() int {
	for i, k := range m.FUs {
		if k == KindXfer {
			return i
		}
	}
	return -1
}

// Validate checks internal consistency of a model; constructors always
// produce valid models, so this guards hand-built ones in tests.
func (m *Model) Validate() error {
	if m.NumClusters <= 0 {
		return fmt.Errorf("machine %s: %d clusters", m.Name, m.NumClusters)
	}
	if len(m.FUs) == 0 {
		return fmt.Errorf("machine %s: no functional units", m.Name)
	}
	if m.MeshW > 0 && m.MeshH > 0 && m.MeshW*m.MeshH != m.NumClusters {
		return fmt.Errorf("machine %s: mesh %dx%d does not hold %d clusters", m.Name, m.MeshW, m.MeshH, m.NumClusters)
	}
	for op := ir.Op(0); int(op) < ir.NumOps; op++ {
		if m.lat[op] < 1 {
			return fmt.Errorf("machine %s: op %v has latency %d", m.Name, op, m.lat[op])
		}
		if m.FirstFU(op) < 0 && op != ir.Nop {
			// Nop never issues; every other opcode needs a unit.
			if op.Valid() {
				return fmt.Errorf("machine %s: no functional unit runs %v", m.Name, op)
			}
		}
	}
	if m.SendPorts < 1 || m.RecvPorts < 1 {
		return fmt.Errorf("machine %s: ports must be positive", m.Name)
	}
	return nil
}
