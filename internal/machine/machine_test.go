package machine

import (
	"testing"

	"repro/internal/ir"
)

func TestRawConfigsValidate(t *testing.T) {
	for _, tiles := range []int{1, 2, 4, 8, 16} {
		m := Raw(tiles)
		if err := m.Validate(); err != nil {
			t.Errorf("Raw(%d): %v", tiles, err)
		}
		if m.NumClusters != tiles {
			t.Errorf("Raw(%d) has %d clusters", tiles, m.NumClusters)
		}
	}
}

func TestChorusValidates(t *testing.T) {
	for _, c := range []int{1, 2, 4, 8} {
		if err := Chorus(c).Validate(); err != nil {
			t.Errorf("Chorus(%d): %v", c, err)
		}
	}
}

func TestRawMeshDistance(t *testing.T) {
	m := Raw(16) // 4x4: tile = y*4+x
	cases := []struct{ a, b, want int }{
		{0, 0, 0},
		{0, 1, 1},
		{0, 4, 1},
		{0, 5, 2},
		{0, 15, 6},
		{3, 12, 6},
	}
	for _, c := range cases {
		if got := m.Dist(c.a, c.b); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := m.Dist(c.b, c.a); got != c.want {
			t.Errorf("Dist(%d,%d) = %d, want %d (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestRawCommLatency(t *testing.T) {
	m := Raw(16)
	// Paper: 3 cycles between neighbours, +1 per extra hop.
	if got := m.CommLatency(0, 1); got != 3 {
		t.Errorf("neighbour latency = %d, want 3", got)
	}
	if got := m.CommLatency(0, 5); got != 4 {
		t.Errorf("2-hop latency = %d, want 4", got)
	}
	if got := m.CommLatency(0, 15); got != 8 {
		t.Errorf("corner latency = %d, want 8", got)
	}
	if got := m.CommLatency(7, 7); got != 0 {
		t.Errorf("same-tile latency = %d, want 0", got)
	}
	if got := m.MaxCommLatency(); got != 8 {
		t.Errorf("MaxCommLatency = %d, want 8", got)
	}
}

func TestChorusCommLatency(t *testing.T) {
	m := Chorus(4)
	if got := m.CommLatency(0, 3); got != 1 {
		t.Errorf("crossbar copy latency = %d, want 1", got)
	}
	if got := m.CommLatency(2, 2); got != 0 {
		t.Errorf("same-cluster latency = %d, want 0", got)
	}
}

func TestRawMemoryIsHomeOnly(t *testing.T) {
	m := Raw(4)
	if _, ok := m.MemExtra(1, 1); !ok {
		t.Error("home access rejected")
	}
	if _, ok := m.MemExtra(0, 1); ok {
		t.Error("Raw allowed a remote memory access")
	}
}

func TestChorusRemotePenalty(t *testing.T) {
	m := Chorus(4)
	extra, ok := m.MemExtra(0, 1)
	if !ok || extra != 1 {
		t.Errorf("remote access = (%d,%v), want (1,true)", extra, ok)
	}
	extra, ok = m.MemExtra(1, 5) // bank 5 owned by cluster 1
	if !ok || extra != 0 {
		t.Errorf("home access = (%d,%v), want (0,true)", extra, ok)
	}
}

func TestBankOwnerInterleaves(t *testing.T) {
	m := Chorus(4)
	for bank := 0; bank < 12; bank++ {
		if got := m.BankOwner(bank); got != bank%4 {
			t.Errorf("BankOwner(%d) = %d", bank, got)
		}
	}
}

func TestInstrLatency(t *testing.T) {
	m := Chorus(4)
	ld := &ir.Instr{Op: ir.Load, Bank: 2}
	if got, ok := m.InstrLatency(ld, 2); !ok || got != m.OpLatency(ir.Load) {
		t.Errorf("home load latency = (%d,%v)", got, ok)
	}
	if got, ok := m.InstrLatency(ld, 0); !ok || got != m.OpLatency(ir.Load)+1 {
		t.Errorf("remote load latency = (%d,%v)", got, ok)
	}
	add := &ir.Instr{Op: ir.Add, Bank: ir.NoBank}
	if got, ok := m.InstrLatency(add, 3); !ok || got != 1 {
		t.Errorf("add latency = (%d,%v)", got, ok)
	}
	raw := Raw(4)
	if _, ok := raw.InstrLatency(ld, 0); ok {
		t.Error("Raw accepted remote load")
	}
}

func TestFUKindDispatch(t *testing.T) {
	if !KindAll.CanRun(ir.FDiv) || !KindAll.CanRun(ir.Store) {
		t.Error("KindAll should run everything")
	}
	if KindIntALU.CanRun(ir.Load) || KindIntALU.CanRun(ir.FAdd) || !KindIntALU.CanRun(ir.Xor) {
		t.Error("KindIntALU dispatch wrong")
	}
	if !KindIntMem.CanRun(ir.Store) || KindIntMem.CanRun(ir.FMul) {
		t.Error("KindIntMem dispatch wrong")
	}
	if !KindFloat.CanRun(ir.FMA) || !KindFloat.CanRun(ir.FloatToInt) || KindFloat.CanRun(ir.Add) {
		t.Error("KindFloat dispatch wrong")
	}
	if KindXfer.CanRun(ir.Copy) {
		t.Error("KindXfer must not run graph instructions")
	}
}

func TestChorusFUAssignment(t *testing.T) {
	m := Chorus(4)
	if fu := m.FirstFU(ir.Load); m.FUs[fu] != KindIntMem {
		t.Errorf("Load lands on %v", m.FUs[fu])
	}
	if fu := m.FirstFU(ir.FAdd); m.FUs[fu] != KindFloat {
		t.Errorf("FAdd lands on %v", m.FUs[fu])
	}
	if fu := m.XferFU(); fu < 0 || m.FUs[fu] != KindXfer {
		t.Errorf("XferFU = %d", fu)
	}
	if Raw(4).XferFU() != -1 {
		t.Error("Raw should have no transfer unit")
	}
}

func TestLatencyTableShape(t *testing.T) {
	m := Raw(16)
	if m.OpLatency(ir.Add) != 1 {
		t.Error("Add should be single cycle")
	}
	if m.OpLatency(ir.Mul) <= m.OpLatency(ir.Add) {
		t.Error("Mul should be longer than Add")
	}
	if m.OpLatency(ir.FDiv) <= m.OpLatency(ir.FMul) {
		t.Error("FDiv should be longer than FMul")
	}
	if m.OpLatency(ir.Op(999)) != 1 {
		t.Error("invalid op should default to 1")
	}
}

func TestNamedLookups(t *testing.T) {
	m, err := Named("raw16")
	if err != nil || m.NumClusters != 16 || m.MeshW != 4 {
		t.Errorf("Named(raw16) = %v, %v", m, err)
	}
	m, err = Named("vliw4")
	if err != nil || m.NumClusters != 4 || m.MeshW != 0 {
		t.Errorf("Named(vliw4) = %v, %v", m, err)
	}
	if _, err := Named("gpu9000"); err == nil {
		t.Error("Named accepted nonsense")
	}
	// Odd tile counts fall back to a linear arrangement.
	if m, err := Named("raw7"); err != nil || m.MeshW*m.MeshH != 7 {
		t.Errorf("Named(raw7) = %v, %v", m, err)
	}
	// Degenerate counts must come back as errors, not reach the panicking
	// constructors: Named is the user-input path into Raw/Chorus.
	for _, name := range []string{"raw0", "raw-4", "vliw0", "vliw-2", "raw", "vliw", "rawx", "raw 4"} {
		if _, err := Named(name); err == nil {
			t.Errorf("Named(%q) accepted a degenerate machine", name)
		}
	}
}

func TestWithOpLatency(t *testing.T) {
	m := Chorus(2)
	was := m.OpLatency(ir.Mul)
	liar := m.WithOpLatency(ir.Mul, was+5)
	if liar.OpLatency(ir.Mul) != was+5 {
		t.Errorf("copy latency %d, want %d", liar.OpLatency(ir.Mul), was+5)
	}
	if m.OpLatency(ir.Mul) != was {
		t.Error("WithOpLatency modified the receiver")
	}
	if m.WithOpLatency(ir.Add, 0).OpLatency(ir.Add) != 1 {
		t.Error("latency below 1 not clamped")
	}
	if m.WithOpLatency(ir.Op(999), 5) == nil {
		t.Error("invalid op should still return a copy")
	}
}

func TestValidateCatchesBadModels(t *testing.T) {
	m := Raw(4)
	m.NumClusters = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero clusters")
	}
	m = Raw(4)
	m.MeshW, m.MeshH = 3, 3
	if err := m.Validate(); err == nil {
		t.Error("accepted wrong mesh shape")
	}
	m = Chorus(4)
	m.FUs = []FUKind{KindXfer}
	if err := m.Validate(); err == nil {
		t.Error("accepted machine that cannot run Add")
	}
	m = Chorus(4)
	m.SendPorts = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero send ports")
	}
}

func TestRawOddTileFallback(t *testing.T) {
	// 6 tiles arranges as 3x2 via the fallback path.
	w, h, err := rawMesh(6)
	if err != nil || w*h != 6 {
		t.Errorf("rawMesh(6) = %d,%d,%v", w, h, err)
	}
	if _, _, err := rawMesh(7); err == nil {
		// 7 is prime: 7x1 fallback is acceptable, so expect success.
		w, h, _ := rawMesh(7)
		if w*h != 7 {
			t.Errorf("rawMesh(7) = %dx%d", w, h)
		}
	}
}
