package machine

import (
	"testing"

	"repro/internal/ir"
)

func TestFingerprintStableAndNameBlind(t *testing.T) {
	a := Raw(16)
	b := Raw(16)
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("two identical models fingerprint differently")
	}
	renamed := *a
	renamed.Name = "raw16-copy"
	if renamed.Fingerprint() != a.Fingerprint() {
		t.Error("renaming a model changed its fingerprint")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := Chorus(4)
	distinct := map[[32]byte]string{base.Fingerprint(): "base"}
	check := func(label string, m *Model) {
		fp := m.Fingerprint()
		if prev, dup := distinct[fp]; dup {
			t.Errorf("%s collides with %s", label, prev)
		}
		distinct[fp] = label
	}
	check("other-cluster-count", Chorus(8))
	check("raw-of-same-size", Raw(4))
	check("latency-change", base.WithOpLatency(ir.FMul, base.OpLatency(ir.FMul)+1))

	cp := *base
	cp.CommBase++
	check("comm-base", &cp)

	cp2 := *base
	cp2.SendPorts++
	check("send-ports", &cp2)

	cp3 := *base
	cp3.RemoteMemPenalty++
	check("remote-mem-penalty", &cp3)
}
