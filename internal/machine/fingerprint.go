package machine

import (
	"crypto/sha256"
	"encoding/binary"

	"repro/internal/ir"
)

// Fingerprint is a 256-bit content hash of everything about a model that can
// influence a schedule: cluster count, functional units, mesh shape,
// communication cost model, port budgets, the remote-memory rule, and the
// full per-opcode latency table. Name is deliberately excluded — two models
// that differ only in name schedule identically, and content-addressed
// caches (internal/engine) should treat them as the same machine. Anything
// that changes a single latency or parameter changes the fingerprint.
func (m *Model) Fingerprint() [32]byte {
	buf := make([]byte, 0, 16*(10+len(m.FUs))+8*ir.NumOps)
	put := func(v int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(v))
		buf = append(buf, b[:]...)
	}
	put(int64(m.NumClusters))
	put(int64(len(m.FUs)))
	for _, fu := range m.FUs {
		put(int64(fu))
	}
	put(int64(m.MeshW))
	put(int64(m.MeshH))
	put(int64(m.CommBase))
	put(int64(m.CommPerHop))
	put(int64(m.SendPorts))
	put(int64(m.RecvPorts))
	put(int64(m.RemoteMemPenalty))
	for op := 0; op < ir.NumOps; op++ {
		put(int64(m.lat[op]))
	}
	return sha256.Sum256(buf)
}
