package machine

import "testing"

func TestRouteXYOrder(t *testing.T) {
	m := Raw(16) // 4x4, tile = y*4+x
	// 0 (0,0) -> 10 (2,2): X first (0->1->2), then Y (2->6->10).
	route := m.Route(0, 10)
	want := []Link{{0, 1}, {1, 2}, {2, 6}, {6, 10}}
	if len(route) != len(want) {
		t.Fatalf("Route(0,10) = %v", route)
	}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("Route(0,10) = %v, want %v", route, want)
		}
	}
}

func TestRouteNegativeDirections(t *testing.T) {
	m := Raw(16)
	// 15 (3,3) -> 5 (1,1): X down (15->14->13), then Y up (13->9->5).
	route := m.Route(15, 5)
	want := []Link{{15, 14}, {14, 13}, {13, 9}, {9, 5}}
	for i := range want {
		if route[i] != want[i] {
			t.Fatalf("Route(15,5) = %v, want %v", route, want)
		}
	}
}

func TestRouteLengthMatchesDistance(t *testing.T) {
	m := Raw(8)
	for a := 0; a < 8; a++ {
		for b := 0; b < 8; b++ {
			route := m.Route(a, b)
			if len(route) != m.Dist(a, b) {
				t.Errorf("Route(%d,%d) has %d links, Dist %d", a, b, len(route), m.Dist(a, b))
			}
			// Links must chain and connect mesh neighbours.
			cur := a
			for _, l := range route {
				if l.From != cur {
					t.Fatalf("Route(%d,%d) broken at %v", a, b, l)
				}
				if m.Dist(l.From, l.To) != 1 {
					t.Fatalf("Route(%d,%d) has non-neighbour link %v", a, b, l)
				}
				cur = l.To
			}
			if len(route) > 0 && cur != b {
				t.Fatalf("Route(%d,%d) ends at %d", a, b, cur)
			}
		}
	}
}

func TestRouteCrossbarAndSelf(t *testing.T) {
	if Chorus(4).Route(0, 3) != nil {
		t.Error("crossbar returned links")
	}
	if Raw(16).Route(5, 5) != nil {
		t.Error("self route returned links")
	}
	if Chorus(4).LinkLevel() {
		t.Error("crossbar claims link-level modelling")
	}
	if !Raw(16).LinkLevel() {
		t.Error("mesh does not claim link-level modelling")
	}
	if Raw(1).LinkLevel() {
		t.Error("single tile claims link-level modelling")
	}
}
