package machine

// Link is one directed hop of the static network, identified by its
// endpoint clusters (which must be mesh neighbours).
type Link struct {
	From, To int
}

// Route returns the dimension-ordered (X-then-Y) path from cluster a to
// cluster b on a mesh machine as a sequence of directed links; nil when
// a == b or when the machine is a crossbar (whose single logical hop has no
// shared links to contend on). Dimension-ordered routing is what Raw's
// static network compiler used by default, and its determinism is what lets
// the scheduler reserve links at compile time.
func (m *Model) Route(a, b int) []Link {
	if a == b || m.MeshW <= 0 || m.MeshH <= 0 {
		return nil
	}
	var links []Link
	cur := a
	cx, cy := a%m.MeshW, a/m.MeshW
	bx, by := b%m.MeshW, b/m.MeshW
	step := func(nx, ny int) {
		next := ny*m.MeshW + nx
		links = append(links, Link{From: cur, To: next})
		cur = next
		cx, cy = nx, ny
	}
	for cx != bx {
		if cx < bx {
			step(cx+1, cy)
		} else {
			step(cx-1, cy)
		}
	}
	for cy != by {
		if cy < by {
			step(cx, cy+1)
		} else {
			step(cx, cy-1)
		}
	}
	return links
}

// LinkLevel reports whether the machine models per-link network occupancy
// (true for meshes). Crossbar machines model contention at the endpoints
// only.
func (m *Model) LinkLevel() bool { return m.MeshW > 0 && m.MeshH > 0 && m.NumClusters > 1 }
