package machine

// Link is one directed hop of the static network, identified by its
// endpoint clusters (which must be mesh neighbours).
type Link struct {
	From, To int
}

// Route returns the dimension-ordered (X-then-Y) path from cluster a to
// cluster b on a mesh machine as a sequence of directed links; nil when
// a == b or when the machine is a crossbar (whose single logical hop has no
// shared links to contend on). Dimension-ordered routing is what Raw's
// static network compiler used by default, and its determinism is what lets
// the scheduler reserve links at compile time.
//
// On models built by the package constructors the route comes from a
// precomputed all-pairs table — the list scheduler asks for the same handful
// of paths for every communication it places — so the returned slice is
// owned by the model and must not be modified. Hand-built models — and
// models whose MeshW/MeshH were reshaped after construction, which strands
// any table built earlier — fall back to computing the route per call (or
// may call InitRoutes themselves).
func (m *Model) Route(a, b int) []Link {
	if a == b || m.MeshW <= 0 || m.MeshH <= 0 {
		return nil
	}
	if m.routes != nil && m.routesW == m.MeshW && m.routesH == m.MeshH {
		return m.routes[a*m.NumClusters+b]
	}
	return m.computeRoute(a, b)
}

// InitRoutes precomputes the all-pairs route table. The constructors call it;
// hand-built mesh models may call it once before concurrent use to make Route
// allocation-free. Total size is bounded by the mesh diameter times
// NumClusters², a few kilobytes on the largest models.
func (m *Model) InitRoutes() {
	if m.MeshW <= 0 || m.MeshH <= 0 {
		return
	}
	n := m.NumClusters
	m.routes = make([][]Link, n*n)
	m.routesW, m.routesH = m.MeshW, m.MeshH
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b {
				continue
			}
			m.routes[a*n+b] = m.computeRoute(a, b)
		}
	}
}

func (m *Model) computeRoute(a, b int) []Link {
	links := make([]Link, 0, m.Dist(a, b))
	cur := a
	cx, cy := a%m.MeshW, a/m.MeshW
	bx, by := b%m.MeshW, b/m.MeshW
	step := func(nx, ny int) {
		next := ny*m.MeshW + nx
		links = append(links, Link{From: cur, To: next})
		cur = next
		cx, cy = nx, ny
	}
	for cx != bx {
		if cx < bx {
			step(cx+1, cy)
		} else {
			step(cx-1, cy)
		}
	}
	for cy != by {
		if cy < by {
			step(cx, cy+1)
		} else {
			step(cx, cy-1)
		}
	}
	return links
}

// LinkLevel reports whether the machine models per-link network occupancy
// (true for meshes). Crossbar machines model contention at the endpoints
// only.
func (m *Model) LinkLevel() bool { return m.MeshW > 0 && m.MeshH > 0 && m.NumClusters > 1 }
