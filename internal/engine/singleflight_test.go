package engine

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
)

// TestSingleflightWaiterDetaches is the regression test for the singleflight
// leak: a waiter that gives up (its context ends) must detach promptly with
// the context error, while the leader's eventual result still reaches every
// surviving waiter and the cache.
func TestSingleflightWaiterDetaches(t *testing.T) {
	m := machine.Chorus(4)
	k, _ := bench.ByName("vvmul")
	g := k.Build(4)

	started := make(chan struct{}) // closed when the leader's rung begins
	release := make(chan struct{}) // closed to let the rung finish
	var startOnce sync.Once
	list := robust.ListRung(m)
	slow := robust.Rung{Name: "slow-list", Run: func(ctx context.Context, gr *ir.Graph) (*schedule.Schedule, error) {
		startOnce.Do(func() { close(started) })
		<-release
		return list.Run(ctx, gr)
	}}
	job := Job{
		ID:       "unit",
		Graph:    g,
		Machine:  m,
		Opts:     robust.Options{Ladder: []robust.Rung{slow}},
		LadderID: "sf-test:slow-list",
	}

	e := New(4, 8)
	type res struct{ r Result }
	leaderCh := make(chan res, 1)
	go func() { leaderCh <- res{e.Schedule(context.Background(), job)} }()
	<-started // the flight for the key now exists and is blocked

	waiterCtx, cancelWaiter := context.WithCancel(context.Background())
	defer cancelWaiter()
	waiterCh := make(chan res, 1)
	go func() { waiterCh <- res{e.Schedule(waiterCtx, job)} }()

	survivorCh := make(chan res, 1)
	go func() { survivorCh <- res{e.Schedule(context.Background(), job)} }()

	// Give both waiters time to join the flight, then abandon one.
	time.Sleep(100 * time.Millisecond)
	cancelWaiter()

	var waiter Result
	select {
	case w := <-waiterCh:
		waiter = w.r
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never detached from the flight (leak)")
	}
	if !errors.Is(waiter.Err, context.Canceled) {
		t.Fatalf("detached waiter error = %v, want context.Canceled", waiter.Err)
	}
	if waiter.Schedule != nil {
		t.Fatal("detached waiter received a schedule")
	}

	// Only now does the leader finish; the survivor must still get the
	// result the detached waiter walked away from.
	close(release)
	leader := (<-leaderCh).r
	survivor := (<-survivorCh).r
	if leader.Err != nil {
		t.Fatalf("leader failed: %v", leader.Err)
	}
	if survivor.Err != nil {
		t.Fatalf("surviving waiter failed: %v", survivor.Err)
	}
	if !survivor.Shared && !survivor.CacheHit {
		t.Errorf("survivor neither shared the flight nor hit the cache: %+v", survivor)
	}
	if err := survivor.Schedule.Validate(); err != nil {
		t.Errorf("survivor schedule invalid: %v", err)
	}

	st := e.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 (one leader)", st.Misses)
	}
	if st.Detached != 1 {
		t.Errorf("detached = %d, want 1 (the cancelled waiter)", st.Detached)
	}
	// A later identical request is a plain cache hit: the result survived.
	again := e.Schedule(context.Background(), job)
	if again.Err != nil || !again.CacheHit {
		t.Errorf("post-flight request: err=%v cacheHit=%v, want a clean hit", again.Err, again.CacheHit)
	}
}

// TestBreakerSkippedResultNotMemoized: a schedule computed while a circuit
// breaker skipped a rung is served but must not enter the cache — the next
// request (breaker closed again) must recompute at full quality.
func TestBreakerSkippedResultNotMemoized(t *testing.T) {
	m := machine.Chorus(4)
	k, _ := bench.ByName("fir")
	g := k.Build(4)

	br := robust.NewBreakerSet(robust.BreakerPolicy{Failures: 1, Cooldown: time.Hour})
	fail := robust.Rung{Name: "primary", Run: func(ctx context.Context, gr *ir.Graph) (*schedule.Schedule, error) {
		return nil, errors.New("injected failure")
	}}
	job := Job{
		ID:      "unit",
		Graph:   g,
		Machine: m,
		Opts: robust.Options{
			Ladder:       []robust.Rung{fail, robust.ListRung(m)},
			Breakers:     br,
			BreakerScope: "test",
		},
		LadderID: "breaker-test:fail-list",
	}

	e := New(1, 8)
	// First request trips the primary's breaker (Failures: 1) and serves
	// from the list rung; nothing was skipped yet, so it may be cached.
	first := e.Schedule(context.Background(), job)
	if first.Err != nil {
		t.Fatalf("first request: %v", first.Err)
	}
	if first.Report == nil || first.Report.Skipped() {
		t.Fatalf("first request should have attempted the primary: %+v", first.Report)
	}

	// Second request with a fresh engine cache state: use a distinct engine
	// so the first result is not already memoized, then check the skipped
	// result is not stored.
	e2 := New(1, 8)
	second := e2.Schedule(context.Background(), job)
	if second.Err != nil {
		t.Fatalf("second request: %v", second.Err)
	}
	if second.Report == nil || !second.Report.Skipped() {
		t.Fatalf("second request should have been breaker-skipped: report %+v", second.Report)
	}
	st := e2.Stats()
	if st.Size != 0 {
		t.Errorf("breaker-skipped result was memoized (cache size %d)", st.Size)
	}
	third := e2.Schedule(context.Background(), job)
	if third.CacheHit {
		t.Error("third request hit the cache; skipped results must not be served from it")
	}
}
