package engine

// Peer cache handoff: the export/import surface behind schedd's /cache
// endpoints (internal/server). When cluster membership changes, the new
// owner of a keyspace segment can fetch individual records from the previous
// owner, and a gracefully departing shard can push its hottest entries to
// their new owners — both in the exact wire form the persistent store uses
// (store.Record), and both through the exact recovery discipline: every
// imported record passes verifyRecord (machine fingerprint check, graph
// re-parse, rehydration + validation against the pristine graph) before it
// becomes servable. A peer is trusted no more than a WAL file on disk.

import (
	"errors"

	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/store"
)

// CacheKey returns the content-addressed cache key Schedule would use for
// job, and whether the job is cacheable at all. Identical requests produce
// identical keys on every shard — the graph hash is renumbering-invariant
// and the rest of the key is derived from request parameters — which is what
// lets a shard ask a peer for "my key" and receive "its entry".
func (e *Engine) CacheKey(job Job) (string, bool) {
	key, _, ok := e.keyFor(job)
	return key, ok
}

// HasCached reports whether key is resident, without promoting it.
func (e *Engine) HasCached(key string) bool {
	if e.cache == nil {
		return false
	}
	_, ok := e.cache.peek(key)
	return ok
}

// exportRecord builds the wire form of one cache entry. The exportability
// rule is the persister's: the machine must be reconstructible from its name
// with an unchanged fingerprint, because that is what the importer's gate
// re-derives. Entries computed for custom or mutated models stay local.
func exportRecord(key string, ent entry) (*store.Record, bool) {
	if ent.graph == nil || ent.mach == nil || ent.mach.Name == "" {
		return nil, false
	}
	fp := ent.mach.Fingerprint()
	named, err := machine.Named(ent.mach.Name)
	if err != nil || named.Fingerprint() != fp {
		return nil, false
	}
	return &store.Record{
		Key:         []byte(key),
		Machine:     ent.mach.Name,
		Fingerprint: fp,
		Served:      ent.served,
		Placements:  ent.placements,
		Comms:       ent.comms,
		Graph:       []byte(irtext.String(ent.graph)),
	}, true
}

// ExportRecord returns the cached entry for key in persisted wire form, or
// false when the key is absent or the entry is not exportable. The lookup
// does not promote: a peer read must not distort this shard's LRU order.
func (e *Engine) ExportRecord(key string) (*store.Record, bool) {
	if e.cache == nil {
		return nil, false
	}
	ent, ok := e.cache.peek(key)
	if !ok {
		return nil, false
	}
	return exportRecord(key, ent)
}

// ExportHottest returns up to k exportable cache entries in
// most-recently-used-first order — the working set a gracefully departing
// shard pushes to the new owners of its keyspace. Unexportable entries are
// skipped, not counted against k's worth of output slots beyond their
// position in the LRU walk.
func (e *Engine) ExportHottest(k int) []*store.Record {
	if e.cache == nil || k <= 0 {
		return nil
	}
	items := e.cache.hottest(k)
	out := make([]*store.Record, 0, len(items))
	for _, it := range items {
		if rec, ok := exportRecord(it.key, it.ent); ok {
			out = append(out, rec)
		}
	}
	return out
}

// ImportRecord admits one record received from a cluster peer, but only
// after it passes verifyRecord — the same legality gate recovery replay
// applies to the local WAL. An accepted record becomes a warm cache entry
// (served as a persisted hit) and is queued for write-behind persistence so
// it survives this shard's own restarts.
func (e *Engine) ImportRecord(rec *store.Record) error {
	if e.cache == nil {
		return errors.New("engine: import requires memoization (cache disabled)")
	}
	ent, err := verifyRecord(rec)
	if err != nil {
		return err
	}
	e.cache.put(string(rec.Key), ent)
	e.enqueuePersist(string(rec.Key), ent, ent.graph, ent.mach)
	return nil
}
