// Package engine is the batch-scheduling throughput layer: it fans
// scheduling units out over a bounded worker pool, routes every unit through
// the resilient driver (internal/robust), and memoizes results in a
// content-addressed, LRU-bounded schedule cache.
//
// The cache key is a canonical hash of everything that determines a
// schedule: the dependence graph's renumbering-invariant identity
// (ir.Canonical), the machine model's fingerprint, the identity of the
// scheduler ladder (pass sequences and parameters, via core.SequenceID /
// robust.DefaultLadderID), the noise seed, the per-attempt budget, and the
// verification mode. Isomorphic graphs — the same scheduling unit parsed or
// generated under a different topological numbering — therefore share a key:
// cached schedules are stored in canonical instruction order and rehydrated
// onto the requesting graph's numbering. Every rehydrated schedule is
// re-validated against the requesting graph and machine before it is served,
// so a canonical-hash collision can cost a recomputation but never an
// illegal schedule; such events are counted as collisions.
//
// A singleflight layer collapses concurrent requests for the same key into
// one computation, which is what keeps a thundering herd of identical
// requests from multiplying scheduler work under load.
package engine

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Job is one scheduling unit of a batch.
type Job struct {
	// ID labels the job in results (a file name, kernel name, ...). It has
	// no effect on the cache key.
	ID string
	// Graph is the dependence graph to schedule.
	Graph *ir.Graph
	// Machine is the target machine.
	Machine *machine.Model
	// Opts configures the resilient driver for this job. A nil Opts.Ladder
	// means the default degradation ladder, which the engine can identify
	// and cache; a custom ladder is opaque and requires LadderID to be
	// cacheable.
	Opts robust.Options
	// LadderID identifies a custom Opts.Ladder for the cache key (for
	// example core.SequenceID of the pass sequence behind a single
	// convergent rung). Empty with a custom ladder marks the job
	// uncacheable; empty with the default ladder lets the engine derive
	// robust.DefaultLadderID itself.
	LadderID string
	// MemoryID identifies Opts.InitMemory for the cache key when Verify is
	// set: two jobs with different initial memories can accept different
	// rungs, so a verify job with a non-nil memory and no MemoryID is
	// uncacheable.
	MemoryID string
	// Trace, when non-nil, receives this job's observability record (cache
	// path, ladder attempts, per-pass preference-map deltas). It overrides
	// any trace already carried by the batch context, so each job of a batch
	// can have its own. Tracing never changes the produced schedule.
	Trace *obs.Trace
}

// Result is the outcome of one job.
type Result struct {
	// ID echoes the job's label; Index is the job's position in the batch.
	ID    string
	Index int
	// Schedule is the accepted schedule (nil on error). It always
	// references the job's own graph and machine, whether computed fresh or
	// rehydrated from the cache.
	Schedule *schedule.Schedule
	// Served names the ladder rung whose schedule was accepted.
	Served string
	// Report is the resilient driver's attempt report; nil when the result
	// came from the cache or from a flight computed by another job.
	Report *robust.Report
	// Err is the scheduling error, if every rung failed.
	Err error
	// CacheHit says the schedule was rehydrated from the cache; Shared says
	// the job joined another job's in-flight computation.
	CacheHit bool
	Shared   bool
	// Elapsed is the wall-clock time this job took inside the engine.
	Elapsed time.Duration
}

// Engine schedules batches of units over a worker pool with memoization.
// An Engine is safe for concurrent use; a zero Engine is not valid, use New.
type Engine struct {
	workers int
	cache   *cache
	sf      flightGroup
	// persist, when non-nil, mirrors accepted cache entries into a
	// crash-safe store (see persist.go). Set by AttachStore before the
	// engine is used concurrently.
	persist *persister
}

// New returns an engine with the given worker-pool width and cache bound.
// workers <= 0 means GOMAXPROCS; cacheEntries <= 0 disables memoization
// (every job computes, and Stats stays zero).
func New(workers, cacheEntries int) *Engine {
	return &Engine{workers: workers, cache: newCache(cacheEntries)}
}

// Stats returns a snapshot of the engine counters. The cache counters are
// captured atomically — one lock acquisition covers every counter plus the
// occupancy — so hits, misses, and evictions in one snapshot are mutually
// consistent; the persistence counters (flush queue depth included) are
// captured in the same call under the persister's lock.
func (e *Engine) Stats() Stats {
	if e.cache == nil {
		return Stats{}
	}
	st := e.cache.stats()
	if e.persist != nil {
		st.Persist = e.persist.stats()
	}
	return st
}

// Workers returns the worker-pool width a batch of n jobs would use.
func (e *Engine) Workers(n int) int {
	w := e.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if n > 0 && w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Batch schedules every job and returns one result per job, in job order.
// Jobs run concurrently on the engine's worker pool; a failed job reports
// its error in its slot and never affects the others.
func (e *Engine) Batch(ctx context.Context, jobs []Job) []Result {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(jobs))
	workers := e.Workers(len(jobs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				results[i] = e.Schedule(ctx, jobs[i])
				results[i].Index = i
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return results
}

// Schedule runs one job through the cache, the singleflight layer, and the
// resilient driver.
func (e *Engine) Schedule(ctx context.Context, job Job) Result {
	t0 := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	if job.Trace != nil {
		ctx = obs.WithTrace(ctx, job.Trace)
	}
	tr := obs.FromContext(ctx)
	res := Result{ID: job.ID}
	if err := ctx.Err(); err != nil {
		res.Err = err
		return res
	}

	key, canon, cacheable := e.keyFor(job)
	if !cacheable {
		if e.cache != nil {
			e.cache.count(&e.cache.uncacheable)
			tr.SetCachePath(obs.CacheUncacheable)
		} else {
			tr.SetCachePath(obs.CacheDisabled)
		}
		e.compute(ctx, job, &res)
		res.Elapsed = time.Since(t0)
		return res
	}

	if ent, ok := e.cache.get(key); ok {
		if s, err := rehydrate(ent, job, canon); err == nil {
			e.cache.count(&e.cache.hits)
			if ent.fromStore {
				tr.SetCachePath(obs.CachePersistedHit)
			} else {
				tr.SetCachePath(obs.CacheHit)
			}
			res.Schedule, res.Served, res.CacheHit = s, ent.served, true
			res.Elapsed = time.Since(t0)
			return res
		}
		// The key matched but the stored schedule does not fit this graph:
		// a canonical-hash collision or an unresolved symmetry. Compute
		// directly and leave the entry for the graph it does fit.
		e.cache.count(&e.cache.collisions)
		tr.SetCachePath(obs.CacheCollision)
		e.compute(ctx, job, &res)
		res.Elapsed = time.Since(t0)
		return res
	}

	var mine *schedule.Schedule
	var myRep *robust.Report
	ent, err, shared, detached := e.sf.do(ctx, key, func() (entry, error) {
		e.cache.count(&e.cache.misses)
		s, rep, err := robust.Schedule(ctx, job.Graph, job.Machine, job.Opts)
		myRep = rep
		if err != nil {
			return entry{}, err
		}
		mine = s
		ent := canonicalize(s, rep.Served, canon)
		// The graph and machine references make the entry exportable to a
		// cluster peer (export.go); they do not affect rehydration.
		ent.graph, ent.mach = job.Graph, job.Machine
		// A result produced while a circuit breaker skipped a rung is
		// load-dependent, not content-determined: it is shared with the
		// flight's waiters but never memoized (nor persisted).
		if !rep.Skipped() {
			e.cache.put(key, ent)
			e.enqueuePersist(key, ent, job.Graph, job.Machine)
			if e.persist != nil {
				tr.SetPersisted()
			}
		}
		return ent, nil
	})
	switch {
	case detached:
		// This caller was a waiter whose context ended before the leader
		// finished; the leader's result is preserved for the others.
		e.cache.count(&e.cache.detached)
		tr.SetCachePath(obs.CacheDetached)
		res.Err, res.Shared = err, true
	case !shared:
		tr.SetCachePath(obs.CacheMiss)
		res.Schedule, res.Report, res.Err = mine, myRep, err
		if myRep != nil {
			res.Served = myRep.Served
		}
	case err != nil:
		e.cache.count(&e.cache.shared)
		tr.SetCachePath(obs.CacheShared)
		res.Err, res.Shared = err, true
	default:
		e.cache.count(&e.cache.shared)
		tr.SetCachePath(obs.CacheShared)
		res.Shared = true
		s, rerr := rehydrate(ent, job, canon)
		if rerr != nil {
			e.cache.count(&e.cache.collisions)
			tr.SetCachePath(obs.CacheCollision)
			e.compute(ctx, job, &res)
		} else {
			res.Schedule, res.Served = s, ent.served
		}
	}
	res.Elapsed = time.Since(t0)
	return res
}

// compute runs the resilient driver directly, bypassing cache and flights.
func (e *Engine) compute(ctx context.Context, job Job, res *Result) {
	s, rep, err := robust.Schedule(ctx, job.Graph, job.Machine, job.Opts)
	res.Schedule, res.Report, res.Err = s, rep, err
	if rep != nil {
		res.Served = rep.Served
	}
}

// keyFor derives the content-addressed cache key. The boolean reports
// whether the job is cacheable at all; the canonical identity is returned so
// callers do not hash the graph twice.
func (e *Engine) keyFor(job Job) (string, ir.Canonical, bool) {
	if e.cache == nil {
		return "", ir.Canonical{}, false
	}
	ladderID := job.LadderID
	if ladderID == "" {
		if job.Opts.Ladder != nil {
			return "", ir.Canonical{}, false
		}
		ladderID = "default:" + robust.DefaultLadderID(job.Machine, job.Opts.Seed)
	}
	memID := job.MemoryID
	if job.Opts.Verify && job.Opts.InitMemory != nil && memID == "" {
		return "", ir.Canonical{}, false
	}

	canon := job.Graph.Canonical()
	mf := job.Machine.Fingerprint()
	h := sha256.New()
	h.Write(canon.Hash[:])
	h.Write(mf[:])
	writeStr := func(s string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		io.WriteString(h, s)
	}
	writeStr(ladderID)
	writeStr(memID)
	var tail [17]byte
	binary.LittleEndian.PutUint64(tail[0:8], uint64(job.Opts.Seed))
	binary.LittleEndian.PutUint64(tail[8:16], uint64(job.Opts.Timeout))
	if job.Opts.Verify {
		tail[16] = 1
	}
	h.Write(tail[:])
	return string(h.Sum(nil)), canon, true
}

// canonicalize stores a schedule in canonical instruction order.
func canonicalize(s *schedule.Schedule, served string, canon ir.Canonical) entry {
	pl := make([]schedule.Placement, len(s.Placements))
	for i, p := range s.Placements {
		pl[canon.Order[i]] = p
	}
	// A nil comm list stays nil so rehydration reproduces the driver's
	// output byte for byte (reflect.DeepEqual separates nil from empty).
	var comms []schedule.Comm
	if len(s.Comms) > 0 {
		comms = make([]schedule.Comm, len(s.Comms))
		for k, c := range s.Comms {
			c.Value = canon.Order[c.Value]
			comms[k] = c
		}
	}
	return entry{placements: pl, comms: comms, served: served}
}

// rehydrate maps a canonical entry onto the requesting graph's numbering and
// re-validates it there, so nothing illegal can come out of the cache.
func rehydrate(ent entry, job Job, canon ir.Canonical) (*schedule.Schedule, error) {
	n := job.Graph.Len()
	if len(ent.placements) != n {
		return nil, fmt.Errorf("engine: cached entry covers %d instructions, graph has %d", len(ent.placements), n)
	}
	pl := make([]schedule.Placement, n)
	for i := 0; i < n; i++ {
		pl[i] = ent.placements[canon.Order[i]]
	}
	var comms []schedule.Comm
	if len(ent.comms) > 0 {
		inv := make([]int, n)
		for i, rank := range canon.Order {
			inv[rank] = i
		}
		comms = make([]schedule.Comm, len(ent.comms))
		for k, c := range ent.comms {
			c.Value = inv[c.Value]
			comms[k] = c
		}
	}
	shell := &schedule.Schedule{Graph: job.Graph, Machine: job.Machine, Placements: pl, Comms: comms}
	if err := shell.Validate(); err != nil {
		return nil, err
	}
	if job.Opts.Verify {
		mem := job.Opts.InitMemory
		if mem == nil {
			mem = sim.NewMemory()
		}
		if _, err := sim.Verify(shell, mem); err != nil {
			return nil, err
		}
	}
	return shell, nil
}
