package engine_test

// Persistence differentials: a warm-restarted engine must serve exactly the
// schedules the serial robust path computes, and a corrupted store — cut or
// bit-flipped at any byte offset — must never panic recovery and never change
// a single served schedule: corruption costs warm hits, not correctness.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/store"
)

// persistJobs builds one job per kernel on m, pinned to a single scheduler
// rung so reference results are cheap and deterministic.
func persistJobs(t *testing.T, m *machine.Model, kernels []bench.Kernel, scheduler string) []engine.Job {
	t.Helper()
	r, err := robust.RungFor(m, scheduler, diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]engine.Job, len(kernels))
	for i, k := range kernels {
		jobs[i] = engine.Job{
			ID:       k.Name,
			Graph:    k.Build(m.NumClusters),
			Machine:  m,
			Opts:     robust.Options{Seed: diffSeed, Ladder: []robust.Rung{r}},
			LadderID: fmt.Sprintf("rung:%s:seed=%d", scheduler, diffSeed),
		}
	}
	return jobs
}

// serialReference schedules every job through the plain robust driver.
func serialReference(t *testing.T, jobs []engine.Job) []*robustResult {
	t.Helper()
	out := make([]*robustResult, len(jobs))
	for i, j := range jobs {
		s, rep, err := robust.Schedule(context.Background(), j.Graph, j.Machine, j.Opts)
		if err != nil {
			t.Fatalf("serial %s: %v", j.ID, err)
		}
		out[i] = &robustResult{s: s, served: rep.Served}
	}
	return out
}

// runAndCompare batches jobs on e and asserts every schedule matches the
// serial reference byte for byte. Returns how many were cache hits.
func runAndCompare(t *testing.T, e *engine.Engine, jobs []engine.Job, want []*robustResult) int {
	t.Helper()
	hits := 0
	for i, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatalf("engine %s: %v", jobs[i].ID, r.Err)
		}
		if r.CacheHit {
			hits++
		}
		if r.Served != want[i].served {
			t.Errorf("%s: served %q, serial served %q", jobs[i].ID, r.Served, want[i].served)
		}
		if !reflect.DeepEqual(r.Schedule.Placements, want[i].s.Placements) ||
			!reflect.DeepEqual(r.Schedule.Comms, want[i].s.Comms) {
			t.Errorf("%s: schedule differs from serial reference", jobs[i].ID)
		}
	}
	return hits
}

// TestWarmRestartMatchesSerial is the acceptance differential: populate a
// store, shut down cleanly, restart into a fresh engine, and every kernel
// must be a warm hit whose schedule is byte-identical to the serial path.
func TestWarmRestartMatchesSerial(t *testing.T) {
	m := machine.Raw(4)
	kernels := sweepKernels(t)
	jobs := persistJobs(t, m, kernels, "convergent")
	want := serialReference(t, jobs)
	dir := t.TempDir()

	e1 := engine.New(4, len(jobs)*2)
	if err := e1.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	if hits := runAndCompare(t, e1, jobs, want); hits != 0 {
		t.Fatalf("cold run reported %d cache hits", hits)
	}
	if err := e1.FlushStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e1.CloseStore(); err != nil {
		t.Fatal(err)
	}

	e2 := engine.New(4, len(jobs)*2)
	if err := e2.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	rs, err := e2.RecoverStore()
	if err != nil {
		t.Fatal(err)
	}
	defer e2.CloseStore()
	if rs.Replayed != uint64(len(jobs)) {
		t.Fatalf("replayed %d, want %d: %+v", rs.Replayed, len(jobs), rs)
	}
	if hits := runAndCompare(t, e2, jobs, want); hits != len(jobs) {
		t.Fatalf("warm restart hit %d of %d", hits, len(jobs))
	}
	st := e2.Stats()
	if !st.Persist.Enabled || !st.Persist.Recovered || st.Persist.Recovery.Replayed != uint64(len(jobs)) {
		t.Fatalf("persist stats out of step: %+v", st.Persist)
	}
}

// tinyJobs builds jobs over small synthetic graphs (a short chain of adds)
// so a recorded WAL is only a few hundred bytes and an exhaustive per-byte
// corruption sweep stays cheap.
func tinyJobs(t *testing.T, m *machine.Model, n int) []engine.Job {
	t.Helper()
	r, err := robust.RungFor(m, "list", diffSeed)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]engine.Job, n)
	for i := range jobs {
		g := ir.New(fmt.Sprintf("tiny%d", i))
		a := g.AddConst(int64(i + 1))
		b := g.AddConst(3)
		x := g.Add(ir.Add, a.ID, b.ID)
		g.Add(ir.Mul, x.ID, a.ID)
		jobs[i] = engine.Job{
			ID:       g.Name,
			Graph:    g,
			Machine:  m,
			Opts:     robust.Options{Seed: diffSeed, Ladder: []robust.Rung{r}},
			LadderID: fmt.Sprintf("rung:list:seed=%d", diffSeed),
		}
	}
	return jobs
}

// TestCorruptedStoreDifferentialEveryOffset is the robustness property: a
// recorded store truncated or bit-flipped at EVERY byte offset must recover
// without panicking and the engine must still serve schedules identical to
// the serial path — damaged records cost recomputation, never correctness.
// Tiny graphs on the cheap list rung keep the per-offset cost down.
func TestCorruptedStoreDifferentialEveryOffset(t *testing.T) {
	m := machine.Raw(4)
	jobs := tinyJobs(t, m, 3)
	want := serialReference(t, jobs)

	// Record a pristine store once.
	master := t.TempDir()
	e := engine.New(2, 16)
	if err := e.AttachStore(engine.PersistConfig{Dir: master, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	runAndCompare(t, e, jobs, want)
	if err := e.CloseStore(); err != nil {
		t.Fatal(err)
	}
	wals, err := filepath.Glob(filepath.Join(master, "wal-*.log"))
	if err != nil || len(wals) == 0 {
		t.Fatalf("no WAL recorded (err %v)", err)
	}
	walName := ""
	var walBytes []byte
	for _, w := range wals {
		b, err := os.ReadFile(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) > len(walBytes) {
			walName, walBytes = filepath.Base(w), b
		}
	}

	stride := 1
	if testing.Short() {
		stride = 7
	}
	check := func(label string, contents []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walName), contents, 0o644); err != nil {
			t.Fatal(err)
		}
		e := engine.New(2, 16)
		if err := e.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
			t.Fatalf("%s: attach: %v", label, err)
		}
		rs, err := e.RecoverStore()
		if err != nil {
			t.Fatalf("%s: recovery errored on data damage: %v", label, err)
		}
		if rs.Replayed > uint64(len(jobs)) {
			t.Fatalf("%s: replayed %d records from %d written", label, rs.Replayed, len(jobs))
		}
		runAndCompare(t, e, jobs, want)
		if err := e.CloseStore(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}
	}
	for cut := 0; cut <= len(walBytes); cut += stride {
		check(fmt.Sprintf("truncate@%d", cut), walBytes[:cut])
	}
	for off := 0; off < len(walBytes); off += stride {
		mut := make([]byte, len(walBytes))
		copy(mut, walBytes)
		mut[off] ^= 1 << 3
		check(fmt.Sprintf("bitflip@%d", off), mut)
	}
}

// TestForgedRecordsRejectedByGate plants CRC-valid but wrong records in the
// store: a legal-looking schedule that fails validation, and a record whose
// machine fingerprint does not match its name. Recovery must classify both
// and serve nothing illegal.
func TestForgedRecordsRejectedByGate(t *testing.T) {
	m := machine.Raw(4)
	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("no vvmul kernel")
	}
	g := k.Build(m.NumClusters)
	dir := t.TempDir()

	st, err := store.Open(store.Options{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Recover(nil); err != nil {
		t.Fatal(err)
	}
	key := make([]byte, 32)
	// Forgery 1: parseable graph, right machine, nonsense placements.
	key[0] = 1
	illegal := &store.Record{
		Key: key, Machine: m.Name, Fingerprint: m.Fingerprint(),
		Served: "convergent", Graph: []byte(irtext.String(g)),
	}
	illegal.Placements = nil // wrong length for the graph
	if err := st.Append(illegal); err != nil {
		t.Fatal(err)
	}
	// Forgery 2: fingerprint drift (the machine was retuned since).
	key2 := make([]byte, 32)
	key2[0] = 2
	drifted := &store.Record{
		Key: key2, Machine: m.Name, Fingerprint: [32]byte{0xAB},
		Served: "convergent", Graph: []byte(irtext.String(g)),
	}
	if err := st.Append(drifted); err != nil {
		t.Fatal(err)
	}
	// Forgery 3: graph that does not parse.
	key3 := make([]byte, 32)
	key3[0] = 3
	garbled := &store.Record{
		Key: key3, Machine: m.Name, Fingerprint: m.Fingerprint(),
		Served: "convergent", Graph: []byte("not irtext at all"),
	}
	if err := st.Append(garbled); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	e := engine.New(2, 16)
	if err := e.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	rs, err := e.RecoverStore()
	if err != nil {
		t.Fatal(err)
	}
	defer e.CloseStore()
	if rs.Replayed != 0 {
		t.Fatalf("a forgery was replayed: %+v", rs)
	}
	if rs.DroppedIllegal != 1 || rs.DroppedSkewed != 1 || rs.DroppedCorrupt != 1 {
		t.Fatalf("forgeries misclassified: %+v", rs)
	}
	// The engine still serves correct schedules for the same kernel.
	jobs := persistJobs(t, m, []bench.Kernel{k}, "list")
	runAndCompare(t, e, jobs, serialReference(t, jobs))
}

// TestUnnamedMachineNotPersisted: entries computed for a model that cannot be
// rebuilt from its name at recovery (here, a retuned raw4 whose fingerprint
// drifted) must be skipped by the flusher, not written and later misloaded.
func TestUnnamedMachineNotPersisted(t *testing.T) {
	tuned := machine.Raw(4).WithOpLatency(ir.Mul, 7)
	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("no vvmul kernel")
	}
	jobs := persistJobs(t, tuned, []bench.Kernel{k}, "list")
	dir := t.TempDir()

	e := engine.New(2, 16)
	if err := e.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	for _, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if err := e.FlushStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Persist.SkippedUnnamed == 0 {
		t.Fatalf("tuned-machine entry was not skipped: %+v", st.Persist)
	}
	if st.Persist.Flushed != 0 {
		t.Fatalf("tuned-machine entry reached the WAL: %+v", st.Persist)
	}
	if err := e.CloseStore(); err != nil {
		t.Fatal(err)
	}

	e2 := engine.New(2, 16)
	if err := e2.AttachStore(engine.PersistConfig{Dir: dir, NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	rs, err := e2.RecoverStore()
	if err != nil {
		t.Fatal(err)
	}
	defer e2.CloseStore()
	if rs.Replayed != 0 {
		t.Fatalf("replayed %d entries that should never have been persisted", rs.Replayed)
	}
}

// TestFlushQueueBackpressure: with a one-slot queue and no flusher running
// (store attached, recovery not yet started), excess entries are dropped and
// counted instead of blocking the scheduling path.
func TestFlushQueueBackpressure(t *testing.T) {
	m := machine.Raw(4)
	kernels := sweepKernels(t)
	if len(kernels) < 2 {
		t.Skip("need two kernels")
	}
	jobs := persistJobs(t, m, kernels[:2], "list")

	e := engine.New(1, 16)
	if err := e.AttachStore(engine.PersistConfig{Dir: t.TempDir(), NoFsync: true, QueueLen: 1}); err != nil {
		t.Fatal(err)
	}
	defer e.CloseStore()
	for _, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := e.Stats()
	if st.Persist.Backpressure == 0 {
		t.Fatalf("full queue did not register backpressure: %+v", st.Persist)
	}
	if st.Persist.QueueCapacity != 1 {
		t.Fatalf("queue capacity = %d, want 1", st.Persist.QueueCapacity)
	}
}

// TestStatsDuringPersistedBatch hammers Stats concurrently with a persisted
// batch — the -race proof that the snapshot path takes no shortcuts.
func TestStatsDuringPersistedBatch(t *testing.T) {
	m := machine.Raw(4)
	jobs := persistJobs(t, m, sweepKernels(t), "list")

	e := engine.New(4, 32)
	if err := e.AttachStore(engine.PersistConfig{Dir: t.TempDir(), NoFsync: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RecoverStore(); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := e.Stats()
				if st.Persist.QueueCapacity == 0 {
					t.Error("stats lost the attached store")
					return
				}
			}
		}
	}()
	for i := 0; i < 4; i++ {
		for _, r := range e.Batch(context.Background(), jobs) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if err := e.FlushStore(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := e.CloseStore(); err != nil {
		t.Fatal(err)
	}
}
