package engine_test

// Differential sweep: for every benchmark kernel on every target machine, the
// engine's parallel cached path must produce exactly the schedule the serial
// robust.Schedule path produces — same placements, same comms — and both must
// simulate to the correct answer. A warm rerun must be served from the cache
// and stay byte-identical.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
	"repro/internal/sim"
)

const diffSeed = 2002

func targets() []*machine.Model {
	return []*machine.Model{machine.Raw(4), machine.Raw(16), machine.Chorus(4)}
}

func sweepKernels(t *testing.T) []bench.Kernel {
	ks := bench.All()
	if testing.Short() {
		// A small but structurally varied subset for -short runs.
		var out []bench.Kernel
		for _, k := range ks {
			switch k.Name {
			case "mxm", "sha", "vvmul":
				out = append(out, k)
			}
		}
		return out
	}
	return ks
}

func TestEngineMatchesSerialPath(t *testing.T) {
	for _, m := range targets() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			kernels := sweepKernels(t)

			// Serial reference: the plain robust driver, one kernel at a
			// time, exactly as the experiment code ran before the engine.
			serial := make(map[string]*robustResult, len(kernels))
			for _, k := range kernels {
				g := k.Build(m.NumClusters)
				s, rep, err := robust.Schedule(context.Background(), g, m, robust.Options{Seed: diffSeed})
				if err != nil {
					t.Fatalf("serial %s: %v", k.Name, err)
				}
				serial[k.Name] = &robustResult{s: s, served: rep.Served}
			}

			// Parallel path: one batch through the engine.
			e := engine.New(4, len(kernels)*2)
			jobs := make([]engine.Job, len(kernels))
			for i, k := range kernels {
				jobs[i] = engine.Job{
					ID:      k.Name,
					Graph:   k.Build(m.NumClusters),
					Machine: m,
					Opts:    robust.Options{Seed: diffSeed},
				}
			}
			cold := e.Batch(context.Background(), jobs)
			for i, r := range cold {
				k := kernels[i]
				if r.Err != nil {
					t.Fatalf("engine %s: %v", k.Name, r.Err)
				}
				want := serial[k.Name]
				if r.Served != want.served {
					t.Errorf("%s: engine served %q, serial served %q", k.Name, r.Served, want.served)
				}
				if !reflect.DeepEqual(r.Schedule.Placements, want.s.Placements) ||
					!reflect.DeepEqual(r.Schedule.Comms, want.s.Comms) {
					t.Errorf("%s: engine schedule differs from serial schedule", k.Name)
				}
				// Executable proof: the engine's schedule computes the right
				// answer on the kernel's own semantics.
				out, err := sim.Verify(r.Schedule, k.InitMemory(m.NumClusters))
				if err != nil {
					t.Errorf("%s: engine schedule fails simulation: %v", k.Name, err)
					continue
				}
				if err := k.Check(out.Memory, m.NumClusters); err != nil {
					t.Errorf("%s: engine schedule computes wrong answer: %v", k.Name, err)
				}
			}

			// Warm rerun: every job must hit and stay byte-identical.
			warm := e.Batch(context.Background(), jobs)
			for i, r := range warm {
				k := kernels[i]
				if r.Err != nil {
					t.Fatalf("warm %s: %v", k.Name, r.Err)
				}
				if !r.CacheHit {
					t.Errorf("%s: warm rerun missed the cache", k.Name)
				}
				if !reflect.DeepEqual(r.Schedule.Placements, cold[i].Schedule.Placements) ||
					!reflect.DeepEqual(r.Schedule.Comms, cold[i].Schedule.Comms) {
					t.Errorf("%s: warm schedule differs from cold schedule", k.Name)
				}
				if r.Schedule.String() != cold[i].Schedule.String() {
					t.Errorf("%s: warm schedule renders differently", k.Name)
				}
			}
			st := e.Stats()
			if st.Hits < uint64(len(kernels)) {
				t.Errorf("stats after warm rerun: %+v, want >= %d hits", st, len(kernels))
			}
		})
	}
}

type robustResult struct {
	s      *schedule.Schedule
	served string
}
