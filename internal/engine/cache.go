package engine

import (
	"container/list"
	"sync"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedule"
)

// entry is one memoized scheduling result, stored in canonical instruction
// order (see ir.Canonical) so it can be rehydrated onto any isomorphic graph.
type entry struct {
	// placements[rank] is the placement of the instruction with canonical
	// position rank.
	placements []schedule.Placement
	// comms are the schedule's communications with Value remapped to
	// canonical positions.
	comms []schedule.Comm
	// served names the ladder rung that produced the schedule.
	served string
	// fromStore marks an entry replayed from the crash-safe store at
	// recovery (or imported from a cluster peer) rather than computed by
	// this process; traced hits on such entries report the "persisted-hit"
	// cache path.
	fromStore bool
	// graph and mach reference the graph and machine the entry was produced
	// for, so the entry can be exported to a cluster peer (export.go) in the
	// same wire form the persistent store uses. Graphs are sealed after
	// construction and models are never mutated by the engine, so holding
	// the references is safe and cheap.
	graph *ir.Graph
	mach  *machine.Model
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits counts requests answered from the cache (including rehydrations
	// onto isomorphic graphs).
	Hits uint64
	// Misses counts requests that had to compute a schedule.
	Misses uint64
	// Shared counts requests that neither hit nor computed: they joined an
	// in-flight computation for the same key (singleflight collapse).
	Shared uint64
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64
	// Collisions counts cache hits whose rehydrated schedule failed
	// re-validation against the requesting graph — a canonical-hash
	// collision or an order ambiguity — and were recomputed from scratch.
	Collisions uint64
	// Uncacheable counts requests that bypassed the cache (opaque custom
	// ladders or verify memories without an identity).
	Uncacheable uint64
	// Detached counts singleflight waiters that gave up (their context
	// ended) before the flight's leader finished; the leader's result was
	// still delivered to surviving waiters.
	Detached uint64
	// Size and Capacity describe the cache occupancy in entries.
	Size, Capacity int
	// Persist carries the persistent-store counters (write-behind flush
	// queue, recovery outcome, store IO) when a store is attached; see
	// engine.PersistStats. It is captured in the same Stats call as the
	// cache counters so one snapshot describes one moment.
	Persist PersistStats
}

// cache is a mutex-guarded LRU over canonical schedule entries.
type cache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List               // front = most recently used
	items map[string]*list.Element // key -> element whose Value is *lruItem

	hits, misses, shared, evictions, collisions, uncacheable, detached uint64
}

type lruItem struct {
	key string
	ent entry
}

func newCache(capacity int) *cache {
	if capacity <= 0 {
		return nil
	}
	return &cache{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the entry for key, promoting it to most-recently-used. It does
// not bump any counter: whether the lookup becomes a hit or a collision is
// only known after rehydration, so the engine reports the outcome.
func (c *cache) get(key string) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return entry{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).ent, true
}

// peek returns the entry for key without promoting it — membership and
// export probes must not distort the LRU order the hottest-K handoff and
// eviction decisions are based on.
func (c *cache) peek(key string) (entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return entry{}, false
	}
	return el.Value.(*lruItem).ent, true
}

// hotItem is one (key, entry) pair of a hottest-K enumeration.
type hotItem struct {
	key string
	ent entry
}

// hottest returns up to k entries in most-recently-used-first order, without
// promoting anything. It is the cache's view of "what a departing shard
// should hand to its successors": the front of the LRU list is exactly the
// working set recent traffic touched.
func (c *cache) hottest(k int) []hotItem {
	c.mu.Lock()
	defer c.mu.Unlock()
	if k > c.ll.Len() {
		k = c.ll.Len()
	}
	if k <= 0 {
		return nil
	}
	out := make([]hotItem, 0, k)
	for el := c.ll.Front(); el != nil && len(out) < k; el = el.Next() {
		it := el.Value.(*lruItem)
		out = append(out, hotItem{key: it.key, ent: it.ent})
	}
	return out
}

// put inserts or refreshes an entry, evicting the least-recently-used entry
// when over capacity.
func (c *cache) put(key string, ent entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).ent = ent
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, ent: ent})
	for c.ll.Len() > c.cap {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*lruItem).key)
		c.evictions++
	}
}

func (c *cache) count(counter *uint64) {
	c.mu.Lock()
	*counter++
	c.mu.Unlock()
}

// stats snapshots every counter and the occupancy under one lock
// acquisition, so the returned numbers are mutually consistent — a reader
// never sees, say, an eviction that its hit/miss counters predate.
func (c *cache) stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:        c.hits,
		Misses:      c.misses,
		Shared:      c.shared,
		Evictions:   c.evictions,
		Collisions:  c.collisions,
		Uncacheable: c.uncacheable,
		Detached:    c.detached,
		Size:        c.ll.Len(),
		Capacity:    c.cap,
	}
}
