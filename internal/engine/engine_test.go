package engine

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/robust"
	"repro/internal/schedule"
)

const testSeed = 2002

func job(k bench.Kernel, m *machine.Model) Job {
	return Job{
		ID:      k.Name + "/" + m.Name,
		Graph:   k.Build(m.NumClusters),
		Machine: m,
		Opts:    robust.Options{Seed: testSeed},
	}
}

// sameSchedule compares the space-time content of two schedules.
func sameSchedule(a, b *schedule.Schedule) bool {
	return reflect.DeepEqual(a.Placements, b.Placements) && reflect.DeepEqual(a.Comms, b.Comms)
}

func TestCacheHitIsByteIdentical(t *testing.T) {
	k, _ := bench.ByName("mxm")
	m := machine.Chorus(4)
	e := New(2, 16)

	cold := e.Schedule(context.Background(), job(k, m))
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if cold.CacheHit {
		t.Fatal("first request hit the cache")
	}
	warm := e.Schedule(context.Background(), job(k, m))
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.CacheHit {
		t.Fatal("second request missed the cache")
	}
	if !sameSchedule(cold.Schedule, warm.Schedule) {
		t.Error("cache hit differs from cold run")
	}
	if cold.Schedule.String() != warm.Schedule.String() {
		t.Error("cache hit renders differently from cold run")
	}
	if warm.Served != cold.Served {
		t.Errorf("served rung changed: %q -> %q", cold.Served, warm.Served)
	}
	st := e.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}

// TestIsomorphicGraphHitsCache renumbers a kernel and asserts the renumbered
// copy is served from the cache with a schedule that is legal — and the same
// length — on its own numbering.
func TestIsomorphicGraphHitsCache(t *testing.T) {
	k, _ := bench.ByName("jacobi")
	m := machine.Raw(4)
	e := New(2, 16)

	base := job(k, m)
	cold := e.Schedule(context.Background(), base)
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}

	for seed := int64(1); seed <= 3; seed++ {
		perm := ir.RandomRenumbering(base.Graph, seed)
		rg, err := ir.Renumber(base.Graph, perm)
		if err != nil {
			t.Fatal(err)
		}
		iso := base
		iso.ID = "renumbered"
		iso.Graph = rg
		res := e.Schedule(context.Background(), iso)
		if res.Err != nil {
			t.Fatalf("seed %d: %v", seed, res.Err)
		}
		if !res.CacheHit {
			// An unresolved symmetry may have forced a recompute; that is
			// a collision, not a correctness failure — but it must be
			// counted as such, not silently missed.
			if e.Stats().Collisions == 0 {
				t.Errorf("seed %d: isomorphic graph neither hit nor collided", seed)
			}
			continue
		}
		if res.Schedule.Graph != rg {
			t.Fatalf("seed %d: rehydrated schedule references the wrong graph", seed)
		}
		if err := res.Schedule.Validate(); err != nil {
			t.Errorf("seed %d: rehydrated schedule invalid: %v", seed, err)
		}
		if res.Schedule.Length() != cold.Schedule.Length() {
			t.Errorf("seed %d: rehydrated length %d != cold %d", seed, res.Schedule.Length(), cold.Schedule.Length())
		}
	}
}

func TestBatchPreservesOrderAndIsolatesFailures(t *testing.T) {
	m := machine.Chorus(4)
	k1, _ := bench.ByName("vvmul")
	k2, _ := bench.ByName("fir")

	// The middle job carries a ladder whose only rung always fails.
	bad := Job{
		ID:      "bad",
		Graph:   k1.Build(4),
		Machine: m,
		Opts: robust.Options{Ladder: []robust.Rung{{
			Name: "broken",
			Run:  func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) { panic("injected") },
		}}},
	}
	jobs := []Job{job(k1, m), bad, job(k2, m)}
	res := New(3, 16).Batch(context.Background(), jobs)
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
	for i, r := range res {
		if r.Index != i || r.ID != jobs[i].ID {
			t.Errorf("result %d is %s/%d", i, r.ID, r.Index)
		}
	}
	if res[0].Err != nil || res[2].Err != nil {
		t.Errorf("healthy jobs failed: %v / %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil {
		t.Error("broken job reported no error")
	}
}

func TestCustomLadderUncacheableWithoutID(t *testing.T) {
	k, _ := bench.ByName("vvmul")
	m := machine.Chorus(4)
	e := New(1, 16)

	seq := passes.VliwSequence()
	custom := Job{
		ID:      "custom",
		Graph:   k.Build(4),
		Machine: m,
		Opts: robust.Options{Ladder: []robust.Rung{robust.ConvergentRung("convergent", m, seq, testSeed)}},
	}
	for i := 0; i < 2; i++ {
		if r := e.Schedule(context.Background(), custom); r.Err != nil || r.CacheHit {
			t.Fatalf("run %d: err=%v hit=%v", i, r.Err, r.CacheHit)
		}
	}
	st := e.Stats()
	if st.Uncacheable != 2 || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("stats = %+v, want 2 uncacheable", st)
	}

	// The same ladder with an identity becomes cacheable.
	custom.LadderID = "tune:" + core.SequenceID(seq)
	if r := e.Schedule(context.Background(), custom); r.Err != nil || r.CacheHit {
		t.Fatalf("identified cold run: err=%v hit=%v", r.Err, r.CacheHit)
	}
	if r := e.Schedule(context.Background(), custom); r.Err != nil || !r.CacheHit {
		t.Fatalf("identified warm run: err=%v hit=%v", r.Err, r.CacheHit)
	}
}

func TestKeySeparatesMachinesSeedsAndSequences(t *testing.T) {
	k, _ := bench.ByName("fir")
	e := New(1, 64)
	base := job(k, machine.Chorus(4))

	variants := []Job{
		base,
		job(k, machine.Chorus(8)),
		{ID: "latency", Graph: base.Graph, Machine: machine.Chorus(4).WithOpLatency(ir.FMul, 9), Opts: base.Opts},
		{ID: "seed", Graph: base.Graph, Machine: base.Machine, Opts: robust.Options{Seed: testSeed + 1}},
	}
	keys := map[string]string{}
	for _, j := range variants {
		key, _, ok := e.keyFor(j)
		if !ok {
			t.Fatalf("%s: uncacheable", j.ID)
		}
		if prev, dup := keys[key]; dup {
			t.Errorf("%s and %s share a cache key", j.ID, prev)
		}
		keys[key] = j.ID
	}
}

func TestLRUEvicts(t *testing.T) {
	m := machine.Chorus(4)
	e := New(1, 2)
	names := []string{"vvmul", "fir", "yuv"}
	for _, n := range names {
		k, _ := bench.ByName(n)
		if r := e.Schedule(context.Background(), job(k, m)); r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	st := e.Stats()
	if st.Evictions != 1 || st.Size != 2 {
		t.Errorf("stats = %+v, want 1 eviction at size 2", st)
	}
	// The oldest entry (vvmul) is gone; rescheduling it misses.
	k, _ := bench.ByName("vvmul")
	if r := e.Schedule(context.Background(), job(k, m)); r.CacheHit {
		t.Error("evicted entry still hit")
	}
}

func TestNoCacheEngine(t *testing.T) {
	k, _ := bench.ByName("vvmul")
	e := New(1, 0)
	for i := 0; i < 2; i++ {
		if r := e.Schedule(context.Background(), job(k, machine.Chorus(4))); r.Err != nil || r.CacheHit {
			t.Fatalf("run %d: err=%v hit=%v", i, r.Err, r.CacheHit)
		}
	}
	if st := e.Stats(); st != (Stats{}) {
		t.Errorf("cacheless engine has stats %+v", st)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	k, _ := bench.ByName("vvmul")
	res := New(2, 4).Batch(ctx, []Job{job(k, machine.Chorus(4))})
	if res[0].Err == nil {
		t.Error("cancelled batch reported no error")
	}
}
