package engine

// Stress test for the concurrent cache path, meant to run under -race: many
// goroutines submit overlapping keys simultaneously; the singleflight guard
// must collapse duplicate in-flight work to one computation per key, and the
// counters must add up exactly.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/robust"
	"repro/internal/schedule"
)

func TestConcurrentOverlappingKeys(t *testing.T) {
	const (
		goroutines = 16
		perG       = 8 // requests per goroutine
	)
	// K distinct keys: two kernels x two machines.
	type variant struct {
		k bench.Kernel
		m *machine.Model
	}
	var variants []variant
	for _, name := range []string{"vvmul", "fir"} {
		k, _ := bench.ByName(name)
		variants = append(variants, variant{k, machine.Chorus(4)}, variant{k, machine.Raw(4)})
	}
	K := len(variants)

	// computes counts how many times the underlying scheduler actually ran,
	// via a counting ladder with a stable identity.
	var computes atomic.Uint64
	jobFor := func(v variant) Job {
		g := v.k.Build(v.m.NumClusters)
		rung, err := robust.RungFor(v.m, "list", 0)
		if err != nil {
			t.Fatal(err)
		}
		counted := robust.Rung{
			Name: rung.Name,
			Run: func(ctx context.Context, g *ir.Graph) (*schedule.Schedule, error) {
				computes.Add(1)
				return rung.Run(ctx, g)
			},
		}
		return Job{
			ID:       v.k.Name + "/" + v.m.Name,
			Graph:    g,
			Machine:  v.m,
			Opts:     robust.Options{Ladder: []robust.Rung{counted}},
			LadderID: "race-test:list",
		}
	}

	e := New(goroutines, K*2)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	results := make(chan Result, goroutines*perG)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			for r := 0; r < perG; r++ {
				v := variants[(gi+r)%K]
				res := e.Schedule(context.Background(), jobFor(v))
				if res.Err != nil {
					errs <- fmt.Errorf("g%d r%d %s: %w", gi, r, v.k.Name, res.Err)
					return
				}
				results <- res
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	close(results)
	for err := range errs {
		t.Fatal(err)
	}

	total := uint64(0)
	for range results {
		total++
	}
	if total != goroutines*perG {
		t.Fatalf("%d results, want %d", total, goroutines*perG)
	}

	st := e.Stats()
	// Each distinct key computes exactly once: singleflight collapses
	// concurrent duplicates, the cache absorbs later ones.
	if got := computes.Load(); got != uint64(K) {
		t.Errorf("scheduler ran %d times for %d distinct keys", got, K)
	}
	if st.Misses != uint64(K) {
		t.Errorf("misses = %d, want %d", st.Misses, K)
	}
	// Every other request was served either from the cache or by joining an
	// in-flight computation; nothing may be lost or double-counted.
	if st.Hits+st.Shared+st.Misses != total {
		t.Errorf("hits(%d) + shared(%d) + misses(%d) != %d requests (stats %+v)",
			st.Hits, st.Shared, st.Misses, total, st)
	}
	if st.Uncacheable != 0 || st.Collisions != 0 {
		t.Errorf("unexpected uncacheable/collisions: %+v", st)
	}
}

// TestStatsSnapshotDuringBatch hammers Stats from several goroutines while a
// batch runs, meant for -race: every read must be one consistent
// mutex-guarded snapshot, and monotone counters must never step backwards
// across successive snapshots.
func TestStatsSnapshotDuringBatch(t *testing.T) {
	m := machine.Chorus(4)
	var jobs []Job
	for _, name := range []string{"vvmul", "fir", "yuv"} {
		k, _ := bench.ByName(name)
		for i := 0; i < 4; i++ {
			jobs = append(jobs, Job{
				ID:      fmt.Sprintf("%s/%d", name, i),
				Graph:   k.Build(m.NumClusters),
				Machine: m,
				Opts:    robust.Options{Seed: 2002},
			})
		}
	}
	e := New(4, 16)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var prev Stats
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := e.Stats()
				if st.Hits < prev.Hits || st.Misses < prev.Misses ||
					st.Shared < prev.Shared || st.Detached < prev.Detached {
					t.Errorf("counters stepped backwards: %+v then %+v", prev, st)
					return
				}
				prev = st
			}
		}()
	}
	for _, r := range e.Batch(context.Background(), jobs) {
		if r.Err != nil {
			t.Error(r.Err)
		}
	}
	close(stop)
	readers.Wait()
	st := e.Stats()
	if st.Hits+st.Shared+st.Misses != uint64(len(jobs)) {
		t.Errorf("hits(%d)+shared(%d)+misses(%d) != %d jobs", st.Hits, st.Shared, st.Misses, len(jobs))
	}
}

// TestConcurrentBatches drives whole Batch calls from several goroutines at
// once against one shared engine — the production shape when multiple
// experiment tables share a process.
func TestConcurrentBatches(t *testing.T) {
	m := machine.Chorus(4)
	var jobs []Job
	for _, name := range []string{"vvmul", "fir", "yuv"} {
		k, _ := bench.ByName(name)
		jobs = append(jobs, Job{
			ID:      name,
			Graph:   k.Build(m.NumClusters),
			Machine: m,
			Opts:    robust.Options{Seed: 2002},
		})
	}
	e := New(4, 16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, r := range e.Batch(context.Background(), jobs) {
				if r.Err != nil {
					t.Error(r.Err)
				}
			}
		}()
	}
	wg.Wait()
	st := e.Stats()
	if st.Misses != uint64(len(jobs)) {
		t.Errorf("misses = %d, want %d (stats %+v)", st.Misses, len(jobs), st)
	}
}
