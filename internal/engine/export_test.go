package engine

// Peer export/import tests: the handoff surface must move a record between
// engines byte-identically, refuse tampered or mismatched records at the
// legality gate, and never promote entries on export reads.

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
)

// TestExportImportRoundTrip moves a cache entry from one engine to another
// and proves the receiver serves it as a warm hit with identical content.
func TestExportImportRoundTrip(t *testing.T) {
	k, _ := bench.ByName("fir")
	m := machine.Chorus(4)
	a, b := New(2, 16), New(2, 16)

	cold := a.Schedule(context.Background(), job(k, m))
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	key, ok := a.CacheKey(job(k, m))
	if !ok {
		t.Fatal("job not cacheable")
	}
	if !a.HasCached(key) || b.HasCached(key) {
		t.Fatal("cache residency before handoff is wrong")
	}

	rec, ok := a.ExportRecord(key)
	if !ok {
		t.Fatal("computed entry not exportable")
	}
	if err := b.ImportRecord(rec); err != nil {
		t.Fatalf("import refused a legitimate record: %v", err)
	}
	if !b.HasCached(key) {
		t.Fatal("imported record not resident")
	}
	warm := b.Schedule(context.Background(), job(k, m))
	if warm.Err != nil {
		t.Fatal(warm.Err)
	}
	if !warm.CacheHit {
		t.Fatal("receiver recomputed instead of serving the imported record")
	}
	if !sameSchedule(cold.Schedule, warm.Schedule) {
		t.Error("imported schedule differs from the original")
	}
}

// TestExportHottestOrder: the hottest-K export walks MRU-first and respects
// k, so a graceful leave pushes the live working set, not cold history.
func TestExportHottestOrder(t *testing.T) {
	m := machine.Chorus(4)
	e := New(2, 16)
	var keys []string
	for _, name := range []string{"fir", "vvmul", "yuv"} {
		k, ok := bench.ByName(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		if res := e.Schedule(context.Background(), job(k, m)); res.Err != nil {
			t.Fatal(res.Err)
		}
		key, _ := e.CacheKey(job(k, m))
		keys = append(keys, key)
	}
	hot := e.ExportHottest(2)
	if len(hot) != 2 {
		t.Fatalf("ExportHottest(2) returned %d records", len(hot))
	}
	// MRU first: the most recent schedule ("yuv") leads.
	if string(hot[0].Key) != keys[2] || string(hot[1].Key) != keys[1] {
		t.Error("hottest export is not MRU-first")
	}
	if got := e.ExportHottest(100); len(got) != 3 {
		t.Errorf("ExportHottest(100) returned %d records, want all 3", len(got))
	}
}

// TestImportRejectsTampered: the import gate is the recovery gate — a record
// whose schedule, graph, or machine does not re-validate is refused.
func TestImportRejectsTampered(t *testing.T) {
	k, _ := bench.ByName("fir")
	m := machine.Chorus(4)
	a := New(2, 16)
	if res := a.Schedule(context.Background(), job(k, m)); res.Err != nil {
		t.Fatal(res.Err)
	}
	key, _ := a.CacheKey(job(k, m))
	rec, ok := a.ExportRecord(key)
	if !ok {
		t.Fatal("entry not exportable")
	}

	fresh := func() *Engine { return New(2, 16) }

	t.Run("mangled placements", func(t *testing.T) {
		r := *rec
		r.Placements = append(r.Placements[:0:0], r.Placements...)
		if len(r.Placements) == 0 {
			t.Fatal("record has no placements")
		}
		r.Placements[0].Start += 10000
		if err := fresh().ImportRecord(&r); err == nil {
			t.Fatal("gate accepted a mangled schedule")
		}
	})
	t.Run("wrong machine fingerprint", func(t *testing.T) {
		r := *rec
		r.Fingerprint[0] ^= 0xff
		if err := fresh().ImportRecord(&r); err == nil {
			t.Fatal("gate accepted a wrong machine fingerprint")
		}
	})
	t.Run("unparseable graph", func(t *testing.T) {
		r := *rec
		r.Graph = []byte("not a graph")
		if err := fresh().ImportRecord(&r); err == nil {
			t.Fatal("gate accepted an unparseable graph")
		}
	})
	t.Run("cache disabled", func(t *testing.T) {
		e := New(2, -1)
		if err := e.ImportRecord(rec); err == nil {
			t.Fatal("import into a cacheless engine did not error")
		}
	})
}
