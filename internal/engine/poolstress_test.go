package engine_test

// Stress proof that the pooled hot path is safe and inert under concurrency:
// 8 workers chew through 200 graphs — recycling State/PrefMap/scratch
// through the core pool the whole time — and every schedule must come out
// byte-identical to a cache-free serial run of the same jobs, with the cache
// counters accounting for every request. Run under -race (CI does) this is
// also the data-race detector for the pool recycling itself.
//
// A companion test pins the warm cache-hit path at near-zero allocations.

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/machine"
	"repro/internal/robust"
)

const (
	stressWorkers = 8
	stressJobs    = 200
)

// stressJobList builds 200 jobs cycling the benchmark kernels over a small
// set of seeds, so the batch mixes cache misses (first sighting of a
// kernel/seed pair), exact repeats (hits, or shared in-flight computations)
// and every graph shape the suite has.
func stressJobList(t *testing.T, m *machine.Model) []engine.Job {
	t.Helper()
	kernels := bench.All()
	if len(kernels) == 0 {
		t.Fatal("no benchmark kernels")
	}
	jobs := make([]engine.Job, stressJobs)
	for i := range jobs {
		k := kernels[i%len(kernels)]
		seed := int64(1000 + (i/len(kernels))%4)
		jobs[i] = engine.Job{
			ID:      fmt.Sprintf("%s-%d", k.Name, i),
			Graph:   k.Build(m.NumClusters),
			Machine: m,
			Opts:    robust.Options{Seed: seed},
		}
	}
	return jobs
}

func TestPooledStateStress(t *testing.T) {
	if testing.Short() {
		t.Skip("200-graph stress sweep; skipped in -short")
	}
	m := machine.Raw(4)
	jobs := stressJobList(t, m)

	// Reference: one worker, no cache — every job computes from scratch, in
	// order. (The states are still drawn from the pool, but serially; the
	// root differential harness separately proves pooled == fresh, so this
	// is the concurrency-free truth.)
	ref := engine.New(1, 0)
	want := ref.Batch(context.Background(), jobs)

	e := engine.New(stressWorkers, stressJobs)
	got := e.Batch(context.Background(), jobs)

	for i := range jobs {
		if want[i].Err != nil {
			t.Fatalf("%s: reference run failed: %v", jobs[i].ID, want[i].Err)
		}
		if got[i].Err != nil {
			t.Fatalf("%s: stress run failed: %v", jobs[i].ID, got[i].Err)
		}
		if g, w := got[i].Schedule.Fingerprint(), want[i].Schedule.Fingerprint(); g != w {
			t.Errorf("%s: schedule under 8-way pooled concurrency diverged from serial run\n  serial:   %s\n  parallel: %s",
				jobs[i].ID, w, g)
		}
		if got[i].Served != want[i].Served {
			t.Errorf("%s: served rung %q under concurrency, %q serially", jobs[i].ID, got[i].Served, want[i].Served)
		}
	}

	st := e.Stats()
	if total := st.Hits + st.Misses + st.Shared + st.Uncacheable; total != stressJobs {
		t.Errorf("stats don't account for every request: hits=%d misses=%d shared=%d uncacheable=%d, total %d want %d",
			st.Hits, st.Misses, st.Shared, st.Uncacheable, total, stressJobs)
	}
	if st.Uncacheable != 0 {
		t.Errorf("%d jobs uncacheable, want 0 (default ladder has a stable identity)", st.Uncacheable)
	}
	// 52 distinct (kernel, seed) cells; repeats must be answered by the
	// cache or by joining an in-flight computation, never recomputed.
	distinct := uint64(0)
	seen := map[string]bool{}
	for i := range jobs {
		key := fmt.Sprintf("%d/%d", i%len(bench.All()), 1000+(i/len(bench.All()))%4)
		if !seen[key] {
			seen[key] = true
			distinct++
		}
	}
	if st.Misses != distinct {
		t.Errorf("misses = %d, want exactly one per distinct (kernel, seed) cell = %d", st.Misses, distinct)
	}
	if st.Hits+st.Shared != stressJobs-distinct {
		t.Errorf("hits+shared = %d, want %d (every repeat served without recomputing)",
			st.Hits+st.Shared, stressJobs-distinct)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d with capacity %d ≥ %d distinct entries, want 0", st.Evictions, stressJobs, distinct)
	}

	// A second identical batch must be all cache hits and stay byte-identical.
	again := e.Batch(context.Background(), jobs)
	for i := range jobs {
		if again[i].Err != nil {
			t.Fatalf("%s: warm rerun failed: %v", jobs[i].ID, again[i].Err)
		}
		if g, w := again[i].Schedule.Fingerprint(), want[i].Schedule.Fingerprint(); g != w {
			t.Errorf("%s: warm cache hit not byte-identical to serial run", jobs[i].ID)
		}
	}
	st2 := e.Stats()
	if st2.Hits != st.Hits+stressJobs {
		t.Errorf("warm rerun produced %d hits, want all %d jobs hit", st2.Hits-st.Hits, stressJobs)
	}
	if st2.Misses != st.Misses {
		t.Errorf("warm rerun recomputed %d jobs, want 0", st2.Misses-st.Misses)
	}
}

// TestEngineWarmHitAllocsNearZero pins the warm cache-hit path: once a job's
// schedule is cached, serving it again must cost only the rehydration and
// validation of the caller-owned Result (~80 small objects for mxm), not a
// re-run of the scheduler (hundreds of thousands). The bound leaves headroom
// for race-detector instrumentation while staying three orders of magnitude
// below a recompute, so an accidental cache bypass trips it immediately.
func TestEngineWarmHitAllocsNearZero(t *testing.T) {
	m := machine.Raw(4)
	var job engine.Job
	for _, k := range bench.All() {
		if k.Name == "mxm" {
			job = engine.Job{ID: k.Name, Graph: k.Build(m.NumClusters), Machine: m, Opts: robust.Options{Seed: 2002}}
		}
	}
	if job.Graph == nil {
		t.Fatal("mxm kernel not found")
	}
	e := engine.New(1, 8)
	ctx := context.Background()
	if r := e.Schedule(ctx, job); r.Err != nil {
		t.Fatalf("cold schedule: %v", r.Err)
	}
	if r := e.Schedule(ctx, job); r.Err != nil || !r.CacheHit {
		t.Fatalf("second schedule: err=%v cacheHit=%v, want warm hit", r.Err, r.CacheHit)
	}
	avg := testing.AllocsPerRun(20, func() {
		if r := e.Schedule(ctx, job); r.Err != nil {
			t.Fatalf("warm schedule: %v", r.Err)
		}
	})
	const bound = 128
	if avg > bound {
		t.Errorf("warm cache hit allocates %.1f objects per request, want <= %d", avg, bound)
	}
}
