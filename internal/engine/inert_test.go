package engine_test

// Tracing must be inert: attaching an obs.Trace to a scheduling request may
// never change the schedule. The trace layer only reads scheduler state
// (core.PrefMap reads touch lazy marginal caches, never weights), so a traced
// run and an untraced run of the same kernel/machine/seed must be
// byte-identical. This sweep pins that property across every benchmark kernel
// and target machine, and checks the trace's own internal invariants while
// it's at hand.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/robust"
)

func TestTracingIsInert(t *testing.T) {
	const eps = 1e-9
	for _, m := range targets() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, k := range sweepKernels(t) {
				g := k.Build(m.NumClusters)
				plain, plainRep, err := robust.Schedule(context.Background(), g, m, robust.Options{Seed: diffSeed})
				if err != nil {
					t.Fatalf("untraced %s: %v", k.Name, err)
				}

				g2 := k.Build(m.NumClusters)
				tr := obs.NewTrace(g2.Name, m.Name)
				ctx := obs.WithTrace(context.Background(), tr)
				traced, tracedRep, err := robust.Schedule(ctx, g2, m, robust.Options{Seed: diffSeed})
				if err != nil {
					t.Fatalf("traced %s: %v", k.Name, err)
				}

				// Byte-identical output: placements, comms, rendering, and
				// the serving rung must all match the untraced run.
				if tracedRep.Served != plainRep.Served {
					t.Errorf("%s: traced served %q, untraced served %q", k.Name, tracedRep.Served, plainRep.Served)
				}
				if !reflect.DeepEqual(traced.Placements, plain.Placements) ||
					!reflect.DeepEqual(traced.Comms, plain.Comms) {
					t.Errorf("%s: tracing changed the schedule", k.Name)
				}
				if traced.String() != plain.String() {
					t.Errorf("%s: traced schedule renders differently", k.Name)
				}

				// Trace invariants on the run it recorded.
				snap := tr.Snapshot()
				if got, want := len(snap.Attempts), len(tracedRep.Attempts); got != want {
					t.Errorf("%s: trace records %d attempts, report has %d", k.Name, got, want)
				}
				if len(snap.Passes) == 0 && tracedRep.Served == "convergent" {
					t.Errorf("%s: convergent rung served but no pass deltas recorded", k.Name)
				}
				for i, p := range snap.Passes {
					// NormalizeAll runs after every pass, so each
					// instruction's weights sum to 1 within float error.
					if p.MinTotal < 1-eps || p.MaxTotal > 1+eps {
						t.Errorf("%s pass %d (%s): weight totals [%g, %g] escape 1±eps",
							k.Name, i, p.Pass, p.MinTotal, p.MaxTotal)
					}
					if p.Fraction < 0 || p.Fraction > 1 {
						t.Errorf("%s pass %d (%s): churn fraction %g outside [0,1]",
							k.Name, i, p.Pass, p.Fraction)
					}
					if p.MeanEntropy < 0 || math.IsNaN(p.MeanEntropy) {
						t.Errorf("%s pass %d (%s): mean entropy %g", k.Name, i, p.Pass, p.MeanEntropy)
					}
					for _, sh := range p.TopShifts {
						if sh.L1 <= 0 {
							t.Errorf("%s pass %d: top shift with non-positive L1 %g", k.Name, i, sh.L1)
						}
						if sh.Instr < 0 || sh.Instr >= g2.Len() {
							t.Errorf("%s pass %d: shift names instruction %d of %d", k.Name, i, sh.Instr, g2.Len())
						}
					}
				}
			}
		})
	}
}
