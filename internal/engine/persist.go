package engine

// Write-behind persistence for the schedule cache: accepted cache entries
// are mirrored into a crash-safe store (internal/store) off the hot path,
// and replayed through the pristine-graph legality gate at startup so a
// restarted engine serves warm hits instead of a cold start.
//
// The flush queue is bounded and lossy by design — persistence is an
// optimization, never a dependency of the serving path. When the flusher
// falls behind, entries are dropped and counted (Backpressure); a dropped
// entry stays served from RAM and is simply recomputed after the next
// restart. Recovery trusts nothing: every replayed record re-parses its
// embedded graph, re-checks the machine fingerprint, and re-validates the
// schedule against the pristine graph and machine before it becomes
// servable, so a record whose CRC is intact but whose content was forged or
// rotted still cannot smuggle an illegal schedule into the cache.

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/irtext"
	"repro/internal/machine"
	"repro/internal/store"
)

// PersistConfig configures the engine's persistent schedule store.
type PersistConfig struct {
	// Dir is the store directory (created if missing, flock-fenced).
	Dir string
	// FS overrides the store's filesystem seam (fault injection); nil
	// means the real filesystem.
	FS store.FS
	// QueueLen bounds the write-behind flush queue. Default 256.
	QueueLen int
	// SnapshotEvery and MaxEntries pass through to store.Options.
	SnapshotEvery int
	MaxEntries    int
	// NoFsync skips fsyncs (crash-unsafe; tests and benchmarks).
	NoFsync bool
	// Logf receives operational messages; nil discards them.
	Logf func(format string, args ...any)
}

// PersistStats is the persistence slice of the engine's Stats snapshot.
type PersistStats struct {
	// Enabled says a store is attached; Recovered says replay has run.
	Enabled   bool `json:"enabled"`
	Recovered bool `json:"recovered"`
	// Recovery is the startup replay outcome (zero until Recovered).
	Recovery store.RecoveryStats `json:"recovery"`
	// Flushed counts entries appended to the WAL; FlushErrors counts
	// append/sync failures; Backpressure counts entries dropped because
	// the flush queue was full; SkippedUnnamed counts entries that could
	// not be persisted because their machine model is not reconstructible
	// by name (custom or mutated models).
	Flushed        uint64 `json:"flushed"`
	FlushErrors    uint64 `json:"flushErrors"`
	Backpressure   uint64 `json:"backpressure"`
	SkippedUnnamed uint64 `json:"skippedUnnamed"`
	// QueueDepth and QueueCapacity describe the flush queue right now.
	QueueDepth    int `json:"queueDepth"`
	QueueCapacity int `json:"queueCapacity"`
	// Store carries the store's own counters (live set, generation,
	// snapshots, IO errors).
	Store store.Stats `json:"store"`
}

// persistReq is one unit of flusher work: an entry to persist, or (when
// ack is non-nil) a flush barrier.
type persistReq struct {
	key string
	ent entry
	g   *ir.Graph
	m   *machine.Model
	ack chan struct{}
}

// persister owns the store and the write-behind flusher.
type persister struct {
	st   *store.Store
	logf func(format string, args ...any)
	ch   chan persistReq
	done chan struct{}

	mu           sync.Mutex
	closed       bool
	started      bool
	recovered    bool
	recovery     store.RecoveryStats
	flushed      uint64
	flushErrs    uint64
	backpressure uint64
	skipped      uint64
	fingerprints map[string][32]byte // named-machine fingerprint cache
}

// AttachStore opens the persistent schedule store (directory, lockfile) and
// arms write-behind persistence. Call once, before the engine is used
// concurrently, then call RecoverStore to replay. Requires memoization:
// a cache-less engine has nothing to persist.
func (e *Engine) AttachStore(cfg PersistConfig) error {
	if e.cache == nil {
		return errors.New("engine: persistence requires memoization (cache disabled)")
	}
	if e.persist != nil {
		return errors.New("engine: store already attached")
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = 256
	}
	st, err := store.Open(store.Options{
		Dir:           cfg.Dir,
		FS:            cfg.FS,
		NoFsync:       cfg.NoFsync,
		SnapshotEvery: cfg.SnapshotEvery,
		MaxEntries:    cfg.MaxEntries,
	})
	if err != nil {
		return err
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	e.persist = &persister{
		st:           st,
		logf:         logf,
		ch:           make(chan persistReq, cfg.QueueLen),
		done:         make(chan struct{}),
		fingerprints: make(map[string][32]byte),
	}
	return nil
}

// RecoverStore replays the store through the legality gate into the cache
// and starts the flusher. Every accepted record becomes a warm cache entry;
// the stats say what was replayed and what was dropped, and why. Scheduling
// may already be running concurrently: new results queue behind the
// recovery and flush as soon as it finishes.
func (e *Engine) RecoverStore() (store.RecoveryStats, error) {
	p := e.persist
	if p == nil {
		return store.RecoveryStats{}, errors.New("engine: no store attached")
	}
	p.mu.Lock()
	if p.recovered || p.closed {
		p.mu.Unlock()
		return store.RecoveryStats{}, errors.New("engine: store already recovered or closed")
	}
	p.mu.Unlock()
	rs, err := p.st.Recover(e.loadRecord)
	p.mu.Lock()
	defer p.mu.Unlock()
	p.recovery, p.recovered = rs, true
	if err == nil && !p.started && !p.closed {
		p.started = true
		go p.run()
	}
	return rs, err
}

// verifyRecord is the legality gate every record from outside the process
// passes — store recovery replay and peer cache handoff alike. It re-verifies
// the record from first principles: the machine must be reconstructible by
// name with an unchanged fingerprint, the embedded graph must re-parse, and
// the stored canonical-order placements must rehydrate onto that pristine
// graph and validate there — the same gate every cache hit passes.
// Classification: unparseable content is corrupt, an unknown or reshaped
// machine is skewed, and a well-formed record whose schedule fails the gate
// is illegal.
func verifyRecord(rec *store.Record) (entry, error) {
	if len(rec.Key) != sha256.Size {
		return entry{}, fmt.Errorf("%w: key of %d bytes", store.ErrCorrupt, len(rec.Key))
	}
	m, err := machine.Named(rec.Machine)
	if err != nil {
		return entry{}, fmt.Errorf("%w: unknown machine %q", store.ErrSkewed, rec.Machine)
	}
	if m.Fingerprint() != rec.Fingerprint {
		return entry{}, fmt.Errorf("%w: machine %q has changed shape", store.ErrSkewed, rec.Machine)
	}
	g, err := irtext.ParseString(string(rec.Graph))
	if err != nil {
		return entry{}, fmt.Errorf("%w: embedded graph: %v", store.ErrCorrupt, err)
	}
	ent := entry{placements: rec.Placements, comms: rec.Comms, served: rec.Served,
		fromStore: true, graph: g, mach: m}
	if _, err := rehydrate(ent, Job{Graph: g, Machine: m}, g.Canonical()); err != nil {
		return entry{}, fmt.Errorf("legality gate rejected record: %w", err)
	}
	return ent, nil
}

// loadRecord is the recovery gate: verifyRecord, then admission to the cache.
func (e *Engine) loadRecord(rec *store.Record) error {
	ent, err := verifyRecord(rec)
	if err != nil {
		return err
	}
	e.cache.put(string(rec.Key), ent)
	return nil
}

// enqueuePersist hands an accepted cache entry to the flusher without
// blocking the scheduling path. A full queue drops the entry and counts it.
func (e *Engine) enqueuePersist(key string, ent entry, g *ir.Graph, m *machine.Model) {
	p := e.persist
	if p == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	select {
	case p.ch <- persistReq{key: key, ent: ent, g: g, m: m}:
	default:
		p.backpressure++
	}
}

// FlushStore blocks until everything enqueued before the call is appended
// and synced (or ctx ends). It must not race CloseStore.
func (e *Engine) FlushStore(ctx context.Context) error {
	p := e.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.closed || !p.started {
		p.mu.Unlock()
		return nil
	}
	p.mu.Unlock()
	ack := make(chan struct{})
	select {
	case p.ch <- persistReq{ack: ack}:
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case <-ack:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CloseStore drains the flush queue, syncs, and releases the store. Safe to
// call with no store attached.
func (e *Engine) CloseStore() error {
	p := e.persist
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	started := p.started
	close(p.ch)
	p.mu.Unlock()
	if started {
		<-p.done
	}
	return p.st.Close()
}

// CrashStore abandons the store without flushing or syncing anything — the
// in-process stand-in for SIGKILL in crash-recovery tests. Entries already
// handed to the OS survive exactly as they would a real kill.
func (e *Engine) CrashStore() {
	p := e.persist
	if p == nil {
		return
	}
	p.st.Abort()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	started := p.started
	close(p.ch)
	p.mu.Unlock()
	if started {
		<-p.done
	}
}

// run is the flusher: it drains the queue into the WAL, batching fsyncs at
// queue-empty boundaries so a burst of appends pays one sync.
func (p *persister) run() {
	defer close(p.done)
	dirty := false
	sync := func() {
		if !dirty {
			return
		}
		if err := p.st.Sync(); err != nil {
			p.count(&p.flushErrs)
			p.logf("engine: store sync: %v", err)
		}
		dirty = false
	}
	for {
		var req persistReq
		var ok bool
		if dirty {
			select {
			case req, ok = <-p.ch:
			default:
				sync()
				req, ok = <-p.ch
			}
		} else {
			req, ok = <-p.ch
		}
		if !ok {
			sync()
			return
		}
		if req.ack != nil {
			sync()
			close(req.ack)
			continue
		}
		rec, persistable := p.record(req)
		if !persistable {
			p.count(&p.skipped)
			continue
		}
		if err := p.st.Append(rec); err != nil {
			p.count(&p.flushErrs)
			p.logf("engine: store append: %v", err)
			continue
		}
		p.count(&p.flushed)
		dirty = true
	}
}

// record builds the persisted form of one cache entry. Entries whose machine
// cannot be rebuilt from its name at recovery (custom or mutated models,
// detected by fingerprint drift) are not persistable.
func (p *persister) record(req persistReq) (*store.Record, bool) {
	name := req.m.Name
	if name == "" {
		return nil, false
	}
	fp := req.m.Fingerprint()
	p.mu.Lock()
	namedFP, known := p.fingerprints[name]
	p.mu.Unlock()
	if !known {
		named, err := machine.Named(name)
		if err != nil {
			return nil, false
		}
		namedFP = named.Fingerprint()
		p.mu.Lock()
		p.fingerprints[name] = namedFP
		p.mu.Unlock()
	}
	if fp != namedFP {
		return nil, false
	}
	return &store.Record{
		Key:         []byte(req.key),
		Machine:     name,
		Fingerprint: fp,
		Served:      req.ent.served,
		Graph:       []byte(irtext.String(req.g)),
		Placements:  req.ent.placements,
		Comms:       req.ent.comms,
	}, true
}

func (p *persister) count(c *uint64) {
	p.mu.Lock()
	*c++
	p.mu.Unlock()
}

// stats snapshots the persistence counters in one pass. The store's own
// counters are only read once recovery has finished: Recover holds the store
// mutex for the whole replay, and a /stats scrape must never block on it.
func (p *persister) stats() PersistStats {
	p.mu.Lock()
	recovered := p.recovered
	p.mu.Unlock()
	var st store.Stats
	if recovered {
		st = p.st.Stats()
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return PersistStats{
		Enabled:        true,
		Recovered:      p.recovered,
		Recovery:       p.recovery,
		Flushed:        p.flushed,
		FlushErrors:    p.flushErrs,
		Backpressure:   p.backpressure,
		SkippedUnnamed: p.skipped,
		QueueDepth:     len(p.ch),
		QueueCapacity:  cap(p.ch),
		Store:          st,
	}
}
