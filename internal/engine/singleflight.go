package engine

import "sync"

// flightGroup collapses concurrent computations for the same key: the first
// caller runs fn, everyone else arriving before it finishes blocks and
// receives the same result. This is the standard singleflight pattern,
// inlined here because the repository deliberately has no external
// dependencies.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	wg  sync.WaitGroup
	ent entry
	err error
}

// do runs fn once per concurrent set of callers with the same key. The
// second return reports whether this caller shared another caller's flight
// instead of running fn itself.
func (g *flightGroup) do(key string, fn func() (entry, error)) (ent entry, err error, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		f.wg.Wait()
		return f.ent, f.err, true
	}
	f := &flight{}
	f.wg.Add(1)
	g.m[key] = f
	g.mu.Unlock()

	f.ent, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	f.wg.Done()
	return f.ent, f.err, false
}
