package engine

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent computations for the same key: the first
// caller runs fn, everyone else arriving before it finishes blocks and
// receives the same result. This is the standard singleflight pattern,
// inlined here because the repository deliberately has no external
// dependencies — extended with context-aware waiting: a waiter whose context
// ends detaches and returns the context error, while the leader keeps
// computing and every surviving waiter still receives the leader's result.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

type flight struct {
	done chan struct{} // closed when ent/err are final
	ent  entry
	err  error
}

// do runs fn once per concurrent set of callers with the same key. shared
// reports whether this caller joined another caller's flight instead of
// running fn itself; detached reports that the caller was a waiter whose ctx
// ended first — it received ctx.Err() and the flight's eventual result was
// not lost, the leader still publishes it to the remaining waiters.
//
// The leader is deliberately not interrupted by its own ctx here: fn itself
// is context-aware (it threads ctx into the resilient driver), so
// cancellation surfaces as fn's error, and the flight always completes and
// unblocks every waiter.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (entry, error)) (ent entry, err error, shared, detached bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flight)
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-f.done:
			return f.ent, f.err, true, false
		case <-ctx.Done():
			return entry{}, ctx.Err(), true, true
		}
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.ent, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.ent, f.err, false, false
}
