package region

// FormSuperblocks eliminates side entrances from the hottest traces by tail
// duplication, turning each trace into a superblock: a single-entry,
// multiple-exit region (Hwu et al., the paper's second scheduling-unit
// kind). When a block in the middle of a trace has predecessors outside the
// trace, the block and the rest of the trace are cloned, and the external
// predecessors are redirected to the clone; the trace itself then has a
// single entry at its head.
//
// The transform preserves semantics exactly (clones are verbatim copies)
// and leaves profile counts approximate: each duplicated block keeps the
// original's count split proportionally by incoming edges being redirected,
// which is enough for later trace formation to stay sensible. It returns
// the number of blocks duplicated.
func FormSuperblocks(f *Fn) int {
	// Tail duplication is worst-case exponential on irreducible control
	// flow; cap growth at 4x the original block count.
	budget := 3 * len(f.Blocks)
	duplicated := 0
	for _, tr := range f.Traces() {
		d := dedupeSideEntrances(f, tr.Blocks, &budget)
		duplicated += d
	}
	return duplicated
}

func dedupeSideEntrances(f *Fn, trace []int, budget *int) int {
	if len(trace) < 2 || *budget <= 0 {
		return 0
	}
	preds := f.Preds()
	// Find the first side entrance: a trace block (not the head) with a
	// predecessor that is neither its trace predecessor nor itself (a
	// self-loop back edge is an entrance from inside and cannot be
	// removed by duplication; skip those).
	for pos := 1; pos < len(trace); pos++ {
		id := trace[pos]
		var external []int
		for _, p := range preds[id] {
			if p == trace[pos-1] || p == id {
				continue
			}
			// A back edge from later in the same trace also
			// counts as external for superblock purposes.
			external = append(external, p)
		}
		if len(external) == 0 {
			continue
		}
		// Clone the tail trace[pos:].
		clone := make(map[int]int, len(trace)-pos)
		for _, orig := range trace[pos:] {
			nb := f.NewBlock()
			ob := f.Blocks[orig]
			nb.Code = append([]Stmt(nil), ob.Code...)
			nb.Term = ob.Term
			nb.Count = 0
			clone[orig] = nb.ID
		}
		// Clone-internal control flow stays inside the clone.
		redirect := func(target int) int {
			if c, ok := clone[target]; ok {
				return c
			}
			return target
		}
		for _, orig := range trace[pos:] {
			nb := f.Blocks[clone[orig]]
			switch nb.Term.Kind {
			case Jump:
				nb.Term.Then = redirect(nb.Term.Then)
			case Branch:
				nb.Term.Then = redirect(nb.Term.Then)
				nb.Term.Else = redirect(nb.Term.Else)
			}
		}
		// External predecessors enter the clone instead.
		moved := int64(0)
		for _, p := range external {
			pb := f.Blocks[p]
			switch pb.Term.Kind {
			case Jump:
				if pb.Term.Then == id {
					pb.Term.Then = clone[id]
				}
			case Branch:
				if pb.Term.Then == id {
					pb.Term.Then = clone[id]
				}
				if pb.Term.Else == id {
					pb.Term.Else = clone[id]
				}
			}
			moved += pb.Count
		}
		// Rough profile split: the clone inherits the external
		// predecessors' weight.
		orig := f.Blocks[id]
		if moved > orig.Count {
			moved = orig.Count
		}
		f.Blocks[clone[id]].Count = moved
		orig.Count -= moved
		*budget -= len(clone)
		// Restart: one duplication can change the pred structure of
		// the rest of the trace.
		return len(clone) + dedupeSideEntrances(f, trace, budget)
	}
	return 0
}
