package region

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/ir"
)

// ParseFn reads a function in the ".cfg" text format used by cmd/regionc:
//
//	fn collatz
//	out steps            # declare outputs (may appear anywhere)
//	block 0
//	  n = const 27
//	  steps = const 0
//	  jump 1
//	block 1
//	  odd = and n one    # variables auto-declare on first mention
//	  branch odd 2 3
//	block 2
//	  ret
//
// Statements are "dst = op arg..."; "const"/"fconst" take an immediate.
// Terminators are jump N, branch cond N M, ret (each block needs exactly
// one, as its last line). '#' starts a comment.
func ParseFn(r io.Reader) (*Fn, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	f := NewFn("")
	vars := map[string]VarID{}
	getVar := func(name string) VarID {
		if v, ok := vars[name]; ok {
			return v
		}
		v := f.Var(name)
		vars[name] = v
		return v
	}
	var cur *Block
	curTerminated := false
	var outputs []string
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("region: line %d: %s", lineNo, fmt.Sprintf(format, args...))
		}
		switch fields[0] {
		case "fn":
			if len(fields) != 2 {
				return nil, fail("want 'fn <name>'")
			}
			f.Name = fields[1]
		case "out":
			outputs = append(outputs, fields[1:]...)
		case "block":
			if len(fields) != 2 {
				return nil, fail("want 'block <id>'")
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad block id %q", fields[1])
			}
			if cur != nil && !curTerminated {
				return nil, fail("block %d has no terminator", cur.ID)
			}
			for len(f.Blocks) <= id {
				f.NewBlock()
			}
			cur = f.Blocks[id]
			curTerminated = false
		case "jump":
			if cur == nil || len(fields) != 2 {
				return nil, fail("want 'jump <block>' inside a block")
			}
			to, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fail("bad jump target %q", fields[1])
			}
			cur.Jump(to)
			curTerminated = true
		case "branch":
			if cur == nil || len(fields) != 4 {
				return nil, fail("want 'branch <cond> <then> <else>' inside a block")
			}
			then, err1 := strconv.Atoi(fields[2])
			els, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, fail("bad branch targets")
			}
			cur.Branch(getVar(fields[1]), then, els)
			curTerminated = true
		case "ret":
			if cur == nil {
				return nil, fail("'ret' outside a block")
			}
			cur.Ret()
			curTerminated = true
		default:
			// dst = op args...
			if cur == nil {
				return nil, fail("statement outside a block")
			}
			if curTerminated {
				return nil, fail("statement after terminator in block %d", cur.ID)
			}
			if len(fields) < 3 || fields[1] != "=" {
				return nil, fail("want '<dst> = <op> <args...>'")
			}
			dst := getVar(fields[0])
			op, ok := ir.OpFromString(fields[2])
			if !ok {
				return nil, fail("unknown op %q", fields[2])
			}
			switch op {
			case ir.ConstInt:
				if len(fields) != 4 {
					return nil, fail("want '<dst> = const <imm>'")
				}
				v, err := strconv.ParseInt(fields[3], 10, 64)
				if err != nil {
					return nil, fail("bad immediate %q", fields[3])
				}
				cur.EmitConst(dst, v)
			case ir.ConstFloat:
				if len(fields) != 4 {
					return nil, fail("want '<dst> = fconst <imm>'")
				}
				v, err := strconv.ParseFloat(fields[3], 64)
				if err != nil {
					return nil, fail("bad immediate %q", fields[3])
				}
				cur.EmitFConst(dst, v)
			default:
				var args []VarID
				for _, a := range fields[3:] {
					args = append(args, getVar(a))
				}
				cur.Emit(dst, op, args...)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cur != nil && !curTerminated {
		return nil, fmt.Errorf("region: block %d has no terminator", cur.ID)
	}
	for _, name := range outputs {
		v, ok := vars[name]
		if !ok {
			return nil, fmt.Errorf("region: output %q never mentioned", name)
		}
		f.Output(v)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// PrintFn writes the function in the same text format ParseFn reads.
func PrintFn(w io.Writer, f *Fn) error {
	if f.Name != "" {
		if _, err := fmt.Fprintf(w, "fn %s\n", f.Name); err != nil {
			return err
		}
	}
	if len(f.Outputs) > 0 {
		names := make([]string, len(f.Outputs))
		for i, v := range f.Outputs {
			names[i] = f.Vars[v]
		}
		if _, err := fmt.Fprintf(w, "out %s\n", strings.Join(names, " ")); err != nil {
			return err
		}
	}
	for _, b := range f.Blocks {
		fmt.Fprintf(w, "block %d\n", b.ID)
		for _, st := range b.Code {
			switch st.Op {
			case ir.ConstInt:
				fmt.Fprintf(w, "  %s = const %d\n", f.Vars[st.Dst], st.Imm)
			case ir.ConstFloat:
				fmt.Fprintf(w, "  %s = fconst %g\n", f.Vars[st.Dst], st.FImm)
			default:
				args := make([]string, len(st.Args))
				for i, a := range st.Args {
					args[i] = f.Vars[a]
				}
				fmt.Fprintf(w, "  %s = %s %s\n", f.Vars[st.Dst], st.Op, strings.Join(args, " "))
			}
		}
		switch b.Term.Kind {
		case Jump:
			fmt.Fprintf(w, "  jump %d\n", b.Term.Then)
		case Branch:
			fmt.Fprintf(w, "  branch %s %d %d\n", f.Vars[b.Term.Cond], b.Term.Then, b.Term.Else)
		case Return:
			fmt.Fprintln(w, "  ret")
		}
	}
	return nil
}
