// Package region models the compiler layer above scheduling units: control
// flow graphs of basic blocks, edge profiles, trace formation, and — the
// part the paper cares about — values that live across scheduling regions.
//
// The paper's second source of preplaced instructions is exactly this
// layer: "when a value is live across scheduling regions, its definitions
// and uses must be mapped to a consistent cluster". Here, every variable
// that is live across blocks is assigned a home memory bank; the defining
// block stores it there and consuming blocks load it, so the store/load
// instructions arrive at the scheduler preplaced on the bank's owner —
// precisely the constraint convergent scheduling was built to absorb. Both
// published policies are provided: Chorus mapped every cross-region value
// to the first cluster; Rawcc distributed them (FirstCluster and
// RoundRobin here).
//
// Each basic block is one scheduling unit (the first option in the paper's
// list of unit kinds). Traces in the style of Fisher are formed from the
// edge profile and drive reporting and the home-assignment order, but
// blocks stay the unit of execution, so program semantics are independent
// of scheduling decisions and the whole program can be verified end to end
// by the interpreter in this package against per-block simulation of the
// scheduled code.
package region

import (
	"fmt"

	"repro/internal/ir"
)

// selOp aliases ir.Sel for the if-conversion transform.
const selOp = ir.Sel

// VarID names a function-level variable.
type VarID int

// Stmt is one straightline statement: Dst = Op(Args...) over variables.
// ConstInt/ConstFloat use Imm/FImm and no Args. Memory ops are not allowed
// at this level — arrays belong to the kernel layer; region-level state
// lives in variables.
type Stmt struct {
	Dst  VarID
	Op   ir.Op
	Args []VarID
	Imm  int64
	FImm float64
}

// TermKind discriminates block terminators.
type TermKind int

const (
	// Jump transfers to Then unconditionally.
	Jump TermKind = iota
	// Branch transfers to Then when Cond's value is non-zero, else to
	// Else.
	Branch
	// Return ends the program.
	Return
)

// Term is a block terminator.
type Term struct {
	Kind TermKind
	Cond VarID // Branch only
	Then int
	Else int // Branch only
}

// Block is one basic block: straightline statements plus a terminator, and
// a profile count used for trace formation.
type Block struct {
	ID    int
	Code  []Stmt
	Term  Term
	Count int64
}

// Fn is a function: a CFG over named variables. Build with NewFn and the
// block-construction helpers.
type Fn struct {
	Name   string
	Vars   []string
	Blocks []*Block
	Entry  int
	// Outputs lists the variables whose final values the function
	// returns; they are live out of every Return block, so their cells
	// always hold the result when the program stops.
	Outputs []VarID
}

// NewFn returns an empty function whose entry is block 0 (created).
func NewFn(name string) *Fn {
	f := &Fn{Name: name}
	f.NewBlock()
	return f
}

// NewBlock appends an empty block (terminator Return by default) and
// returns it.
func (f *Fn) NewBlock() *Block {
	b := &Block{ID: len(f.Blocks), Term: Term{Kind: Return}}
	f.Blocks = append(f.Blocks, b)
	return b
}

// Var declares a variable and returns its ID.
func (f *Fn) Var(name string) VarID {
	f.Vars = append(f.Vars, name)
	return VarID(len(f.Vars) - 1)
}

// Output declares a variable as a function result.
func (f *Fn) Output(v VarID) { f.Outputs = append(f.Outputs, v) }

// Emit appends Dst = Op(Args...) to the block.
func (b *Block) Emit(dst VarID, op ir.Op, args ...VarID) {
	b.Code = append(b.Code, Stmt{Dst: dst, Op: op, Args: args})
}

// EmitConst appends Dst = constant.
func (b *Block) EmitConst(dst VarID, v int64) {
	b.Code = append(b.Code, Stmt{Dst: dst, Op: ir.ConstInt, Imm: v})
}

// EmitFConst appends Dst = float constant.
func (b *Block) EmitFConst(dst VarID, v float64) {
	b.Code = append(b.Code, Stmt{Dst: dst, Op: ir.ConstFloat, FImm: v})
}

// Jump sets an unconditional terminator.
func (b *Block) Jump(to int) { b.Term = Term{Kind: Jump, Then: to} }

// Branch sets a conditional terminator.
func (b *Block) Branch(cond VarID, then, els int) {
	b.Term = Term{Kind: Branch, Cond: cond, Then: then, Else: els}
}

// Ret sets a Return terminator.
func (b *Block) Ret() { b.Term = Term{Kind: Return} }

// Succs returns a block's successor IDs.
func (b *Block) Succs() []int {
	switch b.Term.Kind {
	case Jump:
		return []int{b.Term.Then}
	case Branch:
		return []int{b.Term.Then, b.Term.Else}
	}
	return nil
}

// Validate checks structural sanity: variables and targets in range,
// opcode arities, no memory ops at region level, and a reachable entry.
func (f *Fn) Validate() error {
	if len(f.Blocks) == 0 || f.Entry < 0 || f.Entry >= len(f.Blocks) {
		return fmt.Errorf("region: %s: bad entry", f.Name)
	}
	checkVar := func(v VarID) error {
		if v < 0 || int(v) >= len(f.Vars) {
			return fmt.Errorf("region: %s: variable %d out of range", f.Name, v)
		}
		return nil
	}
	for _, v := range f.Outputs {
		if err := checkVar(v); err != nil {
			return err
		}
	}
	for _, b := range f.Blocks {
		for si, st := range b.Code {
			if st.Op.IsMemory() {
				return fmt.Errorf("region: %s: block %d stmt %d: memory op at region level", f.Name, b.ID, si)
			}
			if !st.Op.HasResult() {
				return fmt.Errorf("region: %s: block %d stmt %d: %v has no result", f.Name, b.ID, si, st.Op)
			}
			if want := st.Op.Arity(); want >= 0 && len(st.Args) != want {
				return fmt.Errorf("region: %s: block %d stmt %d: %v wants %d args, got %d", f.Name, b.ID, si, st.Op, want, len(st.Args))
			}
			if err := checkVar(st.Dst); err != nil {
				return err
			}
			for _, a := range st.Args {
				if err := checkVar(a); err != nil {
					return err
				}
			}
		}
		for _, s := range b.Succs() {
			if s < 0 || s >= len(f.Blocks) {
				return fmt.Errorf("region: %s: block %d branches to %d", f.Name, b.ID, s)
			}
		}
		if b.Term.Kind == Branch {
			if err := checkVar(b.Term.Cond); err != nil {
				return err
			}
		}
	}
	return nil
}

// Preds returns the predecessor lists of every block.
func (f *Fn) Preds() [][]int {
	preds := make([][]int, len(f.Blocks))
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b.ID)
		}
	}
	return preds
}

// Liveness computes, per block, the variables live on entry and on exit
// (classic backward dataflow). A variable is live at a point if some path
// from there reads it before writing it.
func (f *Fn) Liveness() (liveIn, liveOut []map[VarID]bool) {
	n := len(f.Blocks)
	use := make([]map[VarID]bool, n)
	def := make([]map[VarID]bool, n)
	for _, b := range f.Blocks {
		u, d := map[VarID]bool{}, map[VarID]bool{}
		for _, st := range b.Code {
			for _, a := range st.Args {
				if !d[a] {
					u[a] = true
				}
			}
			d[st.Dst] = true
		}
		if b.Term.Kind == Branch && !d[b.Term.Cond] {
			u[b.Term.Cond] = true
		}
		use[b.ID], def[b.ID] = u, d
	}
	liveIn = make([]map[VarID]bool, n)
	liveOut = make([]map[VarID]bool, n)
	for i := range liveIn {
		liveIn[i] = map[VarID]bool{}
		liveOut[i] = map[VarID]bool{}
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			b := f.Blocks[i]
			out := map[VarID]bool{}
			if b.Term.Kind == Return {
				for _, v := range f.Outputs {
					out[v] = true
				}
			}
			for _, s := range b.Succs() {
				for v := range liveIn[s] {
					out[v] = true
				}
			}
			in := map[VarID]bool{}
			for v := range use[i] {
				in[v] = true
			}
			for v := range out {
				if !def[i][v] {
					in[v] = true
				}
			}
			if len(out) != len(liveOut[i]) || len(in) != len(liveIn[i]) {
				changed = true
			} else {
				for v := range in {
					if !liveIn[i][v] {
						changed = true
					}
				}
				for v := range out {
					if !liveOut[i][v] {
						changed = true
					}
				}
			}
			liveIn[i], liveOut[i] = in, out
		}
	}
	return liveIn, liveOut
}
