package region

// IfConvert merges branch diamonds and triangles into straightline blocks
// using Sel (conditional select), in the spirit of hyperblock formation —
// one of the scheduling-unit kinds the paper lists. Bigger straightline
// blocks give the spatial scheduler more parallelism to work with, at the
// cost of executing both arms.
//
// A pattern is convertible when the branch's arms are side-effect-free
// straightline blocks (statements only, single predecessor) that both jump
// to a common join block. Converted arms execute unconditionally into
// temporary variables, and each variable assigned on either arm receives a
// Sel at the end. The transform repeats until no pattern remains and
// returns the number of conversions performed.
//
// Like real if-conversion, correctness relies on the arms being speculation
// safe; at region level every statement is (memory ops are banned here and
// the simulator's Div/Rem/FSqrt are total functions).
func IfConvert(f *Fn) int {
	converted := 0
	for {
		if !ifConvertOne(f) {
			return converted
		}
		converted++
	}
}

func ifConvertOne(f *Fn) bool {
	preds := f.Preds()
	singlePred := func(id int) bool { return len(preds[id]) == 1 }
	straightline := func(id int) bool {
		b := f.Blocks[id]
		return b.Term.Kind == Jump
	}
	for _, b := range f.Blocks {
		if b.Term.Kind != Branch {
			continue
		}
		thenID, elseID := b.Term.Then, b.Term.Else
		if thenID == b.ID || elseID == b.ID || thenID == elseID {
			continue
		}
		// Diamond: both arms are straightline single-pred blocks
		// jumping to the same join.
		if straightline(thenID) && straightline(elseID) &&
			singlePred(thenID) && singlePred(elseID) &&
			f.Blocks[thenID].Term.Then == f.Blocks[elseID].Term.Then {
			mergeDiamond(f, b, thenID, elseID, f.Blocks[thenID].Term.Then)
			return true
		}
		// Triangle: then-arm falls through to the else-target (or vice
		// versa).
		if straightline(thenID) && singlePred(thenID) && f.Blocks[thenID].Term.Then == elseID {
			mergeTriangle(f, b, thenID, elseID, true)
			return true
		}
		if straightline(elseID) && singlePred(elseID) && f.Blocks[elseID].Term.Then == thenID {
			mergeTriangle(f, b, elseID, thenID, false)
			return true
		}
	}
	return false
}

// appendArm copies an arm's statements into dst, redirecting every write to
// a fresh temporary; it returns the mapping from original variable to the
// arm's final temporary for that variable.
func appendArm(f *Fn, dst *Block, arm *Block, tag string) map[VarID]VarID {
	rename := map[VarID]VarID{}
	readOf := func(v VarID) VarID {
		if t, ok := rename[v]; ok {
			return t
		}
		return v
	}
	for _, st := range arm.Code {
		tmp := f.Var(f.Vars[st.Dst] + tag)
		ns := Stmt{Dst: tmp, Op: st.Op, Imm: st.Imm, FImm: st.FImm}
		for _, a := range st.Args {
			ns.Args = append(ns.Args, readOf(a))
		}
		dst.Code = append(dst.Code, ns)
		rename[st.Dst] = tmp
	}
	return rename
}

func mergeDiamond(f *Fn, b *Block, thenID, elseID, joinID int) {
	cond := b.Term.Cond
	thenMap := appendArm(f, b, f.Blocks[thenID], ".t")
	elseMap := appendArm(f, b, f.Blocks[elseID], ".e")
	// Every variable written on either arm gets a select.
	written := map[VarID]bool{}
	for v := range thenMap {
		written[v] = true
	}
	for v := range elseMap {
		written[v] = true
	}
	for v := VarID(0); int(v) < len(f.Vars); v++ {
		if !written[v] {
			continue
		}
		tv, ev := v, v
		if t, ok := thenMap[v]; ok {
			tv = t
		}
		if e, ok := elseMap[v]; ok {
			ev = e
		}
		b.Emit(v, selOp, cond, tv, ev)
	}
	// The arms become unreachable; empty them so they cost nothing.
	f.Blocks[thenID].Code = nil
	f.Blocks[elseID].Code = nil
	b.Jump(joinID)
}

func mergeTriangle(f *Fn, b *Block, armID, joinID int, armIsThen bool) {
	cond := b.Term.Cond
	armMap := appendArm(f, b, f.Blocks[armID], ".a")
	for v := VarID(0); int(v) < len(f.Vars); v++ {
		t, ok := armMap[v]
		if !ok {
			continue
		}
		if armIsThen {
			b.Emit(v, selOp, cond, t, v)
		} else {
			b.Emit(v, selOp, cond, v, t)
		}
	}
	f.Blocks[armID].Code = nil
	b.Jump(joinID)
}
