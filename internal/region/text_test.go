package region

import (
	"strings"
	"testing"
)

const collatzText = `
fn collatz
out steps
block 0
  n = const 27
  steps = const 0
  one = const 1
  two = const 2
  three = const 3
  jump 1
block 1
  odd = and n one
  branch odd 2 3
block 2
  n = mul n three   # 3n+1
  n = add n one
  jump 4
block 3
  n = div n two
  jump 4
block 4
  steps = add steps one
  cont = seq n one
  branch cont 5 1
block 5
  ret
`

func TestParseFnCollatz(t *testing.T) {
	f, err := ParseFn(strings.NewReader(collatzText))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name != "collatz" || len(f.Blocks) != 6 {
		t.Fatalf("parsed %q with %d blocks", f.Name, len(f.Blocks))
	}
	vars, _, err := f.Interpret(10000)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Outputs) != 1 || vars[f.Outputs[0]].AsInt() != 111 {
		t.Errorf("steps = %v", vars[f.Outputs[0]])
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	f, err := ParseFn(strings.NewReader(collatzText))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := PrintFn(&b, f); err != nil {
		t.Fatal(err)
	}
	back, err := ParseFn(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	want, _, err := f.Interpret(10000)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := back.Interpret(10000)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if !got[v].Equal(want[v]) {
			t.Errorf("var %d: %v != %v after round trip", v, got[v], want[v])
		}
	}
}

func TestParseFnErrors(t *testing.T) {
	cases := map[string]string{
		"statement outside block": "x = const 1",
		"unknown op":              "block 0\n  x = warp y\n  ret",
		"bad const imm":           "block 0\n  x = const zz\n  ret",
		"missing terminator":      "block 0\n  x = const 1",
		"stmt after terminator":   "block 0\n  ret\n  x = const 1",
		"bad branch":              "block 0\n  branch c x y",
		"undeclared output":       "out nothing\nblock 0\n  ret",
		"bad jump":                "block 0\n  jump x",
		"jump out of range":       "block 0\n  jump 7",
		"memory op":               "block 0\n  x = const 1\n  y = load x\n  ret",
	}
	for label, text := range cases {
		if _, err := ParseFn(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", label, text)
		}
	}
}
