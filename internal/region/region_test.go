package region

import (
	"strings"
	"testing"

	"repro/internal/baseline/uas"
	"repro/internal/core"
	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/passes"
	"repro/internal/schedule"
)

// sumLoop builds: sum = Σ_{i=1}^{10} i, then result = sum*3.
//
//	b0: i=1; sum=0            -> jump b1
//	b1: sum+=i; i+=1; c=i<11  -> branch c ? b1 : b2
//	b2: result = sum*3        -> return
func sumLoop() (*Fn, VarID) {
	f := NewFn("sumloop")
	i := f.Var("i")
	sum := f.Var("sum")
	one := f.Var("one")
	limit := f.Var("limit")
	c := f.Var("c")
	three := f.Var("three")
	result := f.Var("result")

	b0 := f.Blocks[0]
	b1 := f.NewBlock()
	b2 := f.NewBlock()

	b0.EmitConst(one, 1)
	b0.EmitConst(limit, 11)
	b0.EmitConst(i, 1)
	b0.EmitConst(sum, 0)
	b0.Jump(b1.ID)

	b1.Emit(sum, ir.Add, sum, i)
	b1.Emit(i, ir.Add, i, one)
	b1.Emit(c, ir.Slt, i, limit)
	b1.Branch(c, b1.ID, b2.ID)

	b2.EmitConst(three, 3)
	b2.Emit(result, ir.Mul, sum, three)
	b2.Ret()
	f.Output(result)
	return f, result
}

// diamond builds an if/else joining into a common block.
func diamond() *Fn {
	f := NewFn("diamond")
	x := f.Var("x")
	c := f.Var("c")
	y := f.Var("y")

	b0 := f.Blocks[0]
	bThen := f.NewBlock()
	bElse := f.NewBlock()
	bJoin := f.NewBlock()

	b0.EmitConst(x, 7)
	b0.Emit(c, ir.Slt, x, x) // 0: always take else
	b0.Branch(c, bThen.ID, bElse.ID)

	bThen.Emit(y, ir.Add, x, x)
	bThen.Jump(bJoin.ID)

	bElse.Emit(y, ir.Mul, x, x)
	bElse.Jump(bJoin.ID)

	bJoin.Emit(y, ir.Neg, y)
	bJoin.Ret()
	f.Output(y)
	return f
}

func TestValidateCatchesBadPrograms(t *testing.T) {
	f := NewFn("bad")
	v := f.Var("v")
	f.Blocks[0].Emit(v, ir.Add, v, VarID(9)) // out-of-range arg
	if err := f.Validate(); err == nil {
		t.Error("accepted out-of-range variable")
	}
	f2 := NewFn("bad2")
	f2.Blocks[0].Jump(5)
	if err := f2.Validate(); err == nil {
		t.Error("accepted out-of-range target")
	}
	f3 := NewFn("bad3")
	w := f3.Var("w")
	f3.Blocks[0].Code = append(f3.Blocks[0].Code, Stmt{Dst: w, Op: ir.Store, Args: []VarID{w, w}})
	if err := f3.Validate(); err == nil {
		t.Error("accepted memory op at region level")
	}
}

func TestInterpretSumLoop(t *testing.T) {
	f, result := sumLoop()
	vars, runs, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	if got := vars[result].AsInt(); got != 165 { // 55*3
		t.Errorf("result = %d, want 165", got)
	}
	if runs[1] != 10 {
		t.Errorf("loop body ran %d times, want 10", runs[1])
	}
}

func TestInterpretInfiniteLoopBounded(t *testing.T) {
	f := NewFn("spin")
	f.Blocks[0].Jump(0)
	if _, _, err := f.Interpret(50); err == nil {
		t.Error("unbounded loop did not error")
	}
}

func TestLivenessLoop(t *testing.T) {
	f, _ := sumLoop()
	liveIn, liveOut := f.Liveness()
	// i, sum, one, limit are live around the loop (block 1).
	for _, v := range []VarID{0, 1, 2, 3} {
		if !liveIn[1][v] {
			t.Errorf("var %d not live into loop body", v)
		}
	}
	// sum is live out of the loop (used by b2); three is local to b2.
	if !liveOut[1][1] {
		t.Error("sum not live out of loop body")
	}
	if liveIn[2][5] {
		t.Error("three live into b2 despite being defined there")
	}
}

func TestTracesFollowHotPath(t *testing.T) {
	f, _ := sumLoop()
	if err := f.SetProfile(100); err != nil {
		t.Fatal(err)
	}
	traces := f.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	// The hottest trace is seeded at the loop body (count 10) and may
	// grow to absorb the straightline pre/post blocks.
	if traces[0].Count != 10 {
		t.Errorf("hottest trace = %+v", traces[0])
	}
	hasLoop := false
	for _, b := range traces[0].Blocks {
		if b == 1 {
			hasLoop = true
		}
	}
	if !hasLoop {
		t.Errorf("hottest trace %v does not contain the loop body", traces[0].Blocks)
	}
	// Every block in exactly one trace.
	seen := map[int]bool{}
	total := 0
	for _, tr := range traces {
		for _, b := range tr.Blocks {
			if seen[b] {
				t.Errorf("block %d in two traces", b)
			}
			seen[b] = true
			total++
		}
	}
	if total != len(f.Blocks) {
		t.Errorf("traces cover %d of %d blocks", total, len(f.Blocks))
	}
}

func TestTracesChainStraightline(t *testing.T) {
	// b0 -> b1 -> b2 with equal counts must form one trace.
	f := NewFn("straight")
	v := f.Var("v")
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	f.Blocks[0].EmitConst(v, 1)
	f.Blocks[0].Jump(b1.ID)
	b1.Emit(v, ir.Neg, v)
	b1.Jump(b2.ID)
	b2.Emit(v, ir.Neg, v)
	b2.Ret()
	for _, b := range f.Blocks {
		b.Count = 5
	}
	traces := f.Traces()
	if len(traces) != 1 || len(traces[0].Blocks) != 3 {
		t.Errorf("traces = %+v, want one trace of three blocks", traces)
	}
}

func TestPlanLayoutPolicies(t *testing.T) {
	f, _ := sumLoop()
	m := machine.Raw(4)
	first := f.PlanLayout(m, FirstCluster)
	for v, h := range first.Home {
		if first.CrossBlock[v] && h != 0 {
			t.Errorf("FirstCluster put var %d on bank %d", v, h)
		}
		if !first.CrossBlock[v] && h != -1 {
			t.Errorf("local var %d got a home", v)
		}
	}
	rr := f.PlanLayout(m, RoundRobin)
	banks := map[int]bool{}
	for v, h := range rr.Home {
		if rr.CrossBlock[v] {
			banks[h] = true
		}
	}
	if len(banks) < 2 {
		t.Errorf("RoundRobin used banks %v, expected spread", banks)
	}
}

func TestLowerBlockPreplacesVarCells(t *testing.T) {
	f, _ := sumLoop()
	m := machine.Raw(4)
	l := f.PlanLayout(m, RoundRobin)
	g, err := f.LowerBlock(1, m, l)
	if err != nil {
		t.Fatal(err)
	}
	loads, stores := 0, 0
	for _, in := range g.Instrs {
		switch in.Op {
		case ir.Load:
			loads++
			if !in.Preplaced() {
				t.Errorf("var load %q not preplaced", in.Name)
			}
		case ir.Store:
			stores++
			if !in.Preplaced() {
				t.Errorf("var store %q not preplaced", in.Name)
			}
		}
	}
	// Block 1 reads i, sum, one, limit (4 loads) and stores sum, i, c.
	if loads != 4 || stores != 3 {
		t.Errorf("loads=%d stores=%d, want 4 and 3\n%s", loads, stores, g.DOT())
	}
	// The load and store of a redefined variable must be ordered.
	if len(g.MemEdges()) == 0 {
		t.Error("no anti-dependence edges for redefined variables")
	}
}

func listScheduler(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error) {
	assign := make([]int, g.Len())
	for i, in := range g.Instrs {
		if in.Preplaced() {
			assign[i] = in.Home
		}
	}
	return listsched.Run(g, m, listsched.Options{Assignment: assign})
}

func TestCompileAndVerifySumLoop(t *testing.T) {
	f, result := sumLoop()
	m := machine.Raw(4)
	for _, policy := range []HomePolicy{FirstCluster, RoundRobin} {
		c, err := Compile(f, m, policy, listScheduler)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := c.VerifyAgainstInterpreter(200)
		if err != nil {
			t.Fatal(err)
		}
		got := ex.Memory.Load(c.Layout.Home[result], c.Layout.Addr(result))
		if got.AsInt() != 165 {
			t.Errorf("policy %d: result cell = %v, want 165", policy, got)
		}
		if ex.Cycles <= 0 {
			t.Error("no cycles accounted")
		}
	}
}

func TestCompileDiamondTakesElse(t *testing.T) {
	f := diamond()
	m := machine.Chorus(2)
	c, err := Compile(f, m, RoundRobin, func(g *ir.Graph, mm *machine.Model) (*schedule.Schedule, error) {
		return uas.Schedule(g, mm)
	})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := c.VerifyAgainstInterpreter(50)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Runs[1] != 0 || ex.Runs[2] != 1 {
		t.Errorf("runs = %v, want else path", ex.Runs)
	}
	// y = -(7*7)
	yCell := c.Layout.Home[2]
	if got := ex.Memory.Load(yCell, c.Layout.Addr(2)); got.AsInt() != -49 {
		t.Errorf("y = %v, want -49", got)
	}
}

func TestCompileWithConvergentScheduler(t *testing.T) {
	f, result := sumLoop()
	m := machine.Raw(4)
	conv := func(g *ir.Graph, mm *machine.Model) (*schedule.Schedule, error) {
		s, _, err := core.Schedule(g, mm, passes.ForMachine(mm.Name), 2002)
		return s, err
	}
	c, err := Compile(f, m, RoundRobin, conv)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := c.VerifyAgainstInterpreter(200)
	if err != nil {
		t.Fatal(err)
	}
	got := ex.Memory.Load(c.Layout.Home[result], c.Layout.Addr(result))
	if got.AsInt() != 165 {
		t.Errorf("result = %v, want 165", got)
	}
}

func TestLowerBlockNamesHelpDebugging(t *testing.T) {
	f, _ := sumLoop()
	m := machine.Raw(2)
	l := f.PlanLayout(m, FirstCluster)
	g, err := f.LowerBlock(1, m, l)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, in := range g.Instrs {
		if strings.HasPrefix(in.Name, "in:sum") || strings.HasPrefix(in.Name, "out:sum") {
			found = true
		}
	}
	if !found {
		t.Error("lowered instructions carry no variable names")
	}
}

// rawMachineForTest gives ifconvert tests a machine without import cycles.
func rawMachineForTest(t *testing.T) *machine.Model {
	t.Helper()
	return machine.Raw(4)
}
