package region

import (
	"testing"

	"repro/internal/ir"
)

func TestIfConvertDiamond(t *testing.T) {
	f := diamond()
	vars0, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	n := IfConvert(f)
	if n != 1 {
		t.Fatalf("IfConvert = %d conversions, want 1", n)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// The entry block must now be straightline into the join.
	if f.Blocks[0].Term.Kind != Jump {
		t.Errorf("entry still branches: %+v", f.Blocks[0].Term)
	}
	vars1, runs, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	// Semantics preserved for the original variables.
	for v := 0; v < 3; v++ {
		if !vars1[v].Equal(vars0[v]) {
			t.Errorf("var %d: %v != %v after if-conversion", v, vars1[v], vars0[v])
		}
	}
	// The arm blocks execute as empty shells or not at all; either way
	// total block executions must not exceed the original path length.
	total := int64(0)
	for _, r := range runs {
		total += r
	}
	if total > 4 {
		t.Errorf("%d block executions after conversion", total)
	}
}

func TestIfConvertTriangle(t *testing.T) {
	// if (c) { y = x+x }  — a triangle: then-arm falls into the join.
	f := NewFn("tri")
	x := f.Var("x")
	c := f.Var("c")
	y := f.Var("y")
	arm := f.NewBlock()
	join := f.NewBlock()
	f.Blocks[0].EmitConst(x, 5)
	f.Blocks[0].EmitConst(y, 1)
	f.Blocks[0].Emit(c, ir.Slt, y, x) // 1: take the arm
	f.Blocks[0].Branch(c, arm.ID, join.ID)
	arm.Emit(y, ir.Add, x, x)
	arm.Jump(join.ID)
	join.Emit(y, ir.Neg, y)
	join.Ret()
	f.Output(y)

	want, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	if IfConvert(f) != 1 {
		t.Fatal("triangle not converted")
	}
	got, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	if !got[y].Equal(want[y]) {
		t.Errorf("y = %v, want %v", got[y], want[y])
	}
	if got[y].AsInt() != -10 {
		t.Errorf("y = %v, want -10", got[y])
	}
}

func TestIfConvertSkipsLoops(t *testing.T) {
	f, _ := sumLoop()
	if n := IfConvert(f); n != 0 {
		t.Errorf("converted %d patterns in a loop CFG", n)
	}
}

func TestIfConvertEnlargesSchedulingUnit(t *testing.T) {
	// After conversion the entry block carries both arms plus selects —
	// a bigger scheduling unit, which is the point of hyperblocks.
	f := diamond()
	before := len(f.Blocks[0].Code)
	IfConvert(f)
	after := len(f.Blocks[0].Code)
	if after <= before {
		t.Errorf("entry grew from %d to %d statements", before, after)
	}
	// And it still compiles and verifies end to end.
	c, err := Compile(f, rawMachineForTest(t), RoundRobin, listScheduler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.VerifyAgainstInterpreter(100); err != nil {
		t.Fatal(err)
	}
}

func TestIfConvertBothArmsWriteDisjointVars(t *testing.T) {
	// then writes a, else writes b: both need selects against the
	// incoming values.
	f := NewFn("disjoint")
	a := f.Var("a")
	b := f.Var("b")
	c := f.Var("c")
	thenB := f.NewBlock()
	elseB := f.NewBlock()
	join := f.NewBlock()
	f.Blocks[0].EmitConst(a, 1)
	f.Blocks[0].EmitConst(b, 2)
	f.Blocks[0].EmitConst(c, 0) // take else
	f.Blocks[0].Branch(c, thenB.ID, elseB.ID)
	thenB.Emit(a, ir.Neg, a)
	thenB.Jump(join.ID)
	elseB.Emit(b, ir.Neg, b)
	elseB.Jump(join.ID)
	join.Ret()
	f.Output(a)
	f.Output(b)

	want, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	IfConvert(f)
	got, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	if !got[a].Equal(want[a]) || !got[b].Equal(want[b]) {
		t.Errorf("a=%v b=%v, want a=%v b=%v", got[a], got[b], want[a], want[b])
	}
}
