package region

import (
	"testing"

	"repro/internal/ir"
)

// sideEntrance builds a CFG where block 2 (mid-trace) has an external
// predecessor:
//
//	b0 -> b1 -> b2 -> b4(ret)
//	b0 -> b3 -> b2            (side entrance into the hot trace)
func sideEntrance() (*Fn, VarID) {
	f := NewFn("side")
	x := f.Var("x")
	c := f.Var("c")
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	b3 := f.NewBlock()
	b4 := f.NewBlock()

	f.Blocks[0].EmitConst(x, 3)
	f.Blocks[0].Emit(c, ir.Slt, x, x) // 0: take else (b3)
	f.Blocks[0].Branch(c, b1.ID, b3.ID)

	b1.Emit(x, ir.Add, x, x)
	b1.Jump(b2.ID)

	b3.Emit(x, ir.Neg, x)
	b3.Jump(b2.ID)

	b2.Emit(x, ir.Add, x, x)
	b2.Jump(b4.ID)

	b4.Ret()
	f.Output(x)

	// Profile: make b0-b1-b2-b4 the hot trace.
	f.Blocks[0].Count = 10
	b1.Count = 9
	b2.Count = 10
	b3.Count = 1
	b4.Count = 10
	return f, x
}

func TestFormSuperblocksRemovesSideEntrance(t *testing.T) {
	f, x := sideEntrance()
	want, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	blocksBefore := len(f.Blocks)
	d := FormSuperblocks(f)
	if d == 0 {
		t.Fatal("no duplication happened")
	}
	if len(f.Blocks) <= blocksBefore {
		t.Error("no blocks added")
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	got, _, err := f.Interpret(100)
	if err != nil {
		t.Fatal(err)
	}
	if !got[x].Equal(want[x]) {
		t.Errorf("x = %v, want %v", got[x], want[x])
	}
	// The hot trace's mid block must now have a single predecessor.
	preds := f.Preds()
	for _, tr := range f.Traces() {
		for pos := 1; pos < len(tr.Blocks); pos++ {
			id := tr.Blocks[pos]
			ext := 0
			for _, p := range preds[id] {
				if p != tr.Blocks[pos-1] && p != id {
					ext++
				}
			}
			if ext > 0 {
				t.Errorf("block %d still has %d side entrances", id, ext)
			}
		}
	}
}

func TestFormSuperblocksNoopOnCleanTraces(t *testing.T) {
	f, _ := sumLoop()
	if err := f.SetProfile(100); err != nil {
		t.Fatal(err)
	}
	before := len(f.Blocks)
	// The sum loop's traces have no side entrances except the loop back
	// edge to its own head, which must not trigger duplication.
	FormSuperblocks(f)
	// Semantics always preserved.
	vars, _, err := f.Interpret(200)
	if err != nil {
		t.Fatal(err)
	}
	if vars[6].AsInt() != 165 {
		t.Errorf("result = %v", vars[6])
	}
	_ = before
}

func TestFormSuperblocksThenCompile(t *testing.T) {
	f, x := sideEntrance()
	FormSuperblocks(f)
	c, err := Compile(f, rawMachineForTest(t), RoundRobin, listScheduler)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := c.VerifyAgainstInterpreter(100)
	if err != nil {
		t.Fatal(err)
	}
	got := ex.Memory.Load(c.Layout.Home[x], c.Layout.Addr(x))
	if got.AsInt() != -6 { // x=3; else arm: -3; b2: -6
		t.Errorf("x = %v, want -6", got)
	}
}
