package region_test

import (
	"fmt"
	"strings"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/region"
	"repro/internal/schedule"
)

// Example compiles a two-block program whose variable crosses the region
// boundary: the definition is stored to the variable's home bank and the
// use loads it back, both preplaced — the paper's cross-region constraint.
func Example() {
	f := region.NewFn("twoblocks")
	v := f.Var("v")
	b1 := f.NewBlock()
	f.Blocks[0].EmitConst(v, 21)
	f.Blocks[0].Emit(v, ir.Add, v, v)
	f.Blocks[0].Jump(b1.ID)
	b1.Emit(v, ir.Neg, v)
	b1.Ret()
	f.Output(v)

	m := machine.Raw(2)
	sched := func(g *ir.Graph, mm *machine.Model) (*schedule.Schedule, error) {
		assign := make([]int, g.Len())
		for i, in := range g.Instrs {
			if in.Preplaced() {
				assign[i] = in.Home
			}
		}
		return listsched.Run(g, mm, listsched.Options{Assignment: assign})
	}
	c, err := region.Compile(f, m, region.RoundRobin, sched)
	if err != nil {
		fmt.Println(err)
		return
	}
	ex, err := c.VerifyAgainstInterpreter(100)
	if err != nil {
		fmt.Println(err)
		return
	}
	got := ex.Memory.Load(c.Layout.Home[v], c.Layout.Addr(v))
	fmt.Printf("v = %s after %d blocks\n", got, ex.Runs[0]+ex.Runs[1])
	// Output:
	// v = -42 after 2 blocks
}

// ExampleParseFn reads the text format cmd/regionc uses and interprets it.
func ExampleParseFn() {
	src := `
fn double
out r
block 0
  r = const 7
  r = add r r
  ret
`
	f, err := region.ParseFn(strings.NewReader(src))
	if err != nil {
		fmt.Println(err)
		return
	}
	vars, _, err := f.Interpret(10)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("r = %s\n", vars[f.Outputs[0]])
	// Output:
	// r = 14
}

// ExampleFn_Traces shows Fisher trace formation following a profile.
func ExampleFn_Traces() {
	f := region.NewFn("hot")
	v := f.Var("v")
	b1 := f.NewBlock()
	b2 := f.NewBlock()
	f.Blocks[0].EmitConst(v, 1)
	f.Blocks[0].Jump(b1.ID)
	b1.Emit(v, ir.Neg, v)
	b1.Jump(b2.ID)
	b2.Ret()
	for _, b := range f.Blocks {
		b.Count = 100
	}
	for _, tr := range f.Traces() {
		fmt.Printf("trace %v weight %d\n", tr.Blocks, tr.Count)
	}
	// Output:
	// trace [0 1 2] weight 100
}
