package region

import "sort"

// Trace is an ordered list of block IDs forming one of Fisher's traces: a
// likely acyclic execution path selected from the profile.
type Trace struct {
	Blocks []int
	// Count is the seed block's execution count, the trace's weight.
	Count int64
}

// Traces forms traces with the classic mutual-most-likely heuristic: pick
// the hottest unassigned block as a seed, grow forward while the current
// block's most likely successor is unassigned and has the current block as
// its most likely predecessor (likelihood approximated from block counts),
// then grow backward symmetrically. Every block lands in exactly one
// trace; traces come out hottest first.
func (f *Fn) Traces() []Trace {
	n := len(f.Blocks)
	assigned := make([]bool, n)
	preds := f.Preds()

	// Most likely successor/predecessor over ALL blocks (the mutual
	// check must not depend on assignment state).
	likelySucc := func(id int) int {
		best, bestCount := -1, int64(-1)
		for _, s := range f.Blocks[id].Succs() {
			if s == id {
				continue
			}
			if c := f.Blocks[s].Count; c > bestCount {
				best, bestCount = s, c
			}
		}
		return best
	}
	likelyPred := func(id int) int {
		best, bestCount := -1, int64(-1)
		for _, p := range preds[id] {
			if p == id {
				continue
			}
			if c := f.Blocks[p].Count; c > bestCount {
				best, bestCount = p, c
			}
		}
		return best
	}

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := f.Blocks[order[a]].Count, f.Blocks[order[b]].Count
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})

	var traces []Trace
	for _, seed := range order {
		if assigned[seed] {
			continue
		}
		assigned[seed] = true
		tr := Trace{Blocks: []int{seed}, Count: f.Blocks[seed].Count}
		// Grow forward.
		for cur := seed; ; {
			next := likelySucc(cur)
			if next < 0 || assigned[next] || likelyPred(next) != cur {
				break
			}
			assigned[next] = true
			tr.Blocks = append(tr.Blocks, next)
			cur = next
		}
		// Grow backward.
		for cur := seed; ; {
			prev := likelyPred(cur)
			if prev < 0 || assigned[prev] || likelySucc(prev) != cur {
				break
			}
			assigned[prev] = true
			tr.Blocks = append([]int{prev}, tr.Blocks...)
			cur = prev
		}
		traces = append(traces, tr)
	}
	return traces
}
