package region

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Scheduler turns one scheduling-unit graph into a schedule; any of the
// repository's schedulers fits after partial application.
type Scheduler func(g *ir.Graph, m *machine.Model) (*schedule.Schedule, error)

// CompiledBlock is one basic block after lowering and scheduling.
type CompiledBlock struct {
	Graph *ir.Graph
	Sched *schedule.Schedule
}

// Compiled is a whole function compiled for a machine: every block lowered
// (with cross-region values in their home cells) and scheduled.
type Compiled struct {
	Fn      *Fn
	Machine *machine.Model
	Layout  *Layout
	Units   []*CompiledBlock
}

// Compile lowers and schedules every block of f for m, placing cross-region
// values per the policy.
func Compile(f *Fn, m *machine.Model, policy HomePolicy, sched Scheduler) (*Compiled, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	l := f.PlanLayout(m, policy)
	c := &Compiled{Fn: f, Machine: m, Layout: l}
	for _, b := range f.Blocks {
		g, err := f.LowerBlock(b.ID, m, l)
		if err != nil {
			return nil, err
		}
		s, err := sched(g, m)
		if err != nil {
			return nil, fmt.Errorf("region: block %d: %w", b.ID, err)
		}
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("region: block %d: %w", b.ID, err)
		}
		c.Units = append(c.Units, &CompiledBlock{Graph: g, Sched: s})
	}
	return c, nil
}

// evalStmt computes one region-level statement over variable values.
func evalStmt(st Stmt, vars []sim.Value) sim.Value {
	in := ir.Instr{Op: st.Op, Imm: st.Imm, FImm: st.FImm}
	args := make([]sim.Value, len(st.Args))
	for i, a := range st.Args {
		args[i] = vars[a]
	}
	return sim.Eval(&in, args)
}

// Interpret executes the CFG directly over variable values — the function's
// reference semantics. It returns the final variable values and the number
// of times each block ran. maxSteps bounds total block executions so
// runaway loops fail fast.
func (f *Fn) Interpret(maxSteps int) (vars []sim.Value, runs []int64, err error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	vars = make([]sim.Value, len(f.Vars))
	runs = make([]int64, len(f.Blocks))
	cur := f.Entry
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return nil, nil, fmt.Errorf("region: %s: exceeded %d block executions", f.Name, maxSteps)
		}
		b := f.Blocks[cur]
		runs[cur]++
		for _, st := range b.Code {
			vars[st.Dst] = evalStmt(st, vars)
		}
		switch b.Term.Kind {
		case Return:
			return vars, runs, nil
		case Jump:
			cur = b.Term.Then
		case Branch:
			if vars[b.Term.Cond].AsInt() != 0 {
				cur = b.Term.Then
			} else {
				cur = b.Term.Else
			}
		}
	}
}

// SetProfile interprets the function and writes the observed block
// execution counts into Block.Count, giving trace formation a real profile.
func (f *Fn) SetProfile(maxSteps int) error {
	_, runs, err := f.Interpret(maxSteps)
	if err != nil {
		return err
	}
	for i, b := range f.Blocks {
		b.Count = runs[i]
	}
	return nil
}

// Execution is the result of running a compiled function.
type Execution struct {
	// Memory is the final memory (variable cells included).
	Memory sim.Memory
	// Cycles is the total schedule length over the dynamic block
	// sequence — the whole-program cost a scheduler is judged by.
	Cycles int64
	// Runs counts executions per block.
	Runs []int64
}

// Execute runs the compiled function: the dynamic block sequence is driven
// by the branch conditions the scheduled code stores into their home
// cells, and each executed block's schedule is simulated against the shared
// memory. Every block execution is also checked against reference
// execution of the block's graph.
func (c *Compiled) Execute(maxSteps int) (*Execution, error) {
	mem := sim.NewMemory()
	ex := &Execution{Memory: mem, Runs: make([]int64, len(c.Fn.Blocks))}
	cur := c.Fn.Entry
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return nil, fmt.Errorf("region: %s: exceeded %d block executions", c.Fn.Name, maxSteps)
		}
		b := c.Fn.Blocks[cur]
		unit := c.Units[cur]
		res, err := sim.Verify(unit.Sched, mem)
		if err != nil {
			return nil, fmt.Errorf("region: block %d: %w", cur, err)
		}
		ex.Memory = res.Memory
		mem = res.Memory
		ex.Cycles += int64(unit.Sched.Length())
		ex.Runs[cur]++
		switch b.Term.Kind {
		case Return:
			return ex, nil
		case Jump:
			cur = b.Term.Then
		case Branch:
			cond := b.Term.Cond
			v := mem.Load(c.Layout.Home[cond], c.Layout.Addr(cond))
			if v.AsInt() != 0 {
				cur = b.Term.Then
			} else {
				cur = b.Term.Else
			}
		}
	}
}

// InterpretCells interprets the function while also tracking the contents
// every variable cell would have under the lowering's store policy (live-out
// definitions plus defined branch conditions get written back). The result
// is the reference final memory image of the variable cells.
func (f *Fn) InterpretCells(maxSteps int) (map[VarID]sim.Value, []int64, error) {
	if err := f.Validate(); err != nil {
		return nil, nil, err
	}
	_, liveOut := f.Liveness()
	vars := make([]sim.Value, len(f.Vars))
	cells := map[VarID]sim.Value{}
	runs := make([]int64, len(f.Blocks))
	cur := f.Entry
	for steps := 0; ; steps++ {
		if steps >= maxSteps {
			return nil, nil, fmt.Errorf("region: %s: exceeded %d block executions", f.Name, maxSteps)
		}
		b := f.Blocks[cur]
		runs[cur]++
		defined := map[VarID]bool{}
		for _, st := range b.Code {
			vars[st.Dst] = evalStmt(st, vars)
			defined[st.Dst] = true
		}
		for v := range liveOut[cur] {
			if defined[v] {
				cells[v] = vars[v]
			}
		}
		switch b.Term.Kind {
		case Return:
			return cells, runs, nil
		case Jump:
			cur = b.Term.Then
		case Branch:
			if defined[b.Term.Cond] {
				cells[b.Term.Cond] = vars[b.Term.Cond]
			}
			if vars[b.Term.Cond].AsInt() != 0 {
				cur = b.Term.Then
			} else {
				cur = b.Term.Else
			}
		}
	}
}

// VerifyAgainstInterpreter runs both the interpreter and the compiled
// program and checks that they executed the same block sequence and that
// every variable cell ends with the value the reference semantics dictate.
func (c *Compiled) VerifyAgainstInterpreter(maxSteps int) (*Execution, error) {
	cells, runs, err := c.Fn.InterpretCells(maxSteps)
	if err != nil {
		return nil, err
	}
	ex, err := c.Execute(maxSteps)
	if err != nil {
		return nil, err
	}
	for i := range runs {
		if runs[i] != ex.Runs[i] {
			return nil, fmt.Errorf("region: block %d ran %d times compiled, %d interpreted", i, ex.Runs[i], runs[i])
		}
	}
	for v := range c.Fn.Vars {
		if c.Layout.Home[v] < 0 {
			continue // block-local: no cell to compare
		}
		got := ex.Memory.Load(c.Layout.Home[v], c.Layout.Addr(VarID(v)))
		want := cells[VarID(v)] // zero Value if never stored
		if !got.Equal(want) {
			return nil, fmt.Errorf("region: variable %s cell: compiled %v, reference %v", c.Fn.Vars[v], got, want)
		}
	}
	return ex, nil
}
