package region

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/machine"
)

// HomePolicy chooses the home bank of variables that are live across
// blocks.
type HomePolicy int

const (
	// FirstCluster maps every cross-region value to cluster 0, the
	// policy the paper reports for Chorus ("all values that are live
	// across multiple scheduling regions are mapped to the first
	// cluster").
	FirstCluster HomePolicy = iota
	// RoundRobin distributes cross-region values over clusters in trace
	// order (hottest trace's definitions first), standing in for
	// Rawcc's policy of pinning each value to the cluster of its first
	// definition or use.
	RoundRobin
)

// varBank is the fixed bank namespace for cross-region variable cells:
// variable v lives at address varAddrBase+v in its home bank, far above the
// addresses the kernels use.
const varAddrBase = 1 << 20

// Layout records where every cross-block variable lives.
type Layout struct {
	// Home[v] is the bank of variable v, or -1 for block-local
	// variables (never stored).
	Home []int
	// CrossBlock marks the variables that are live into some block.
	CrossBlock []bool
}

// Addr returns the memory cell of variable v.
func (l *Layout) Addr(v VarID) int64 { return varAddrBase + int64(v) }

// PlanLayout assigns home banks to every variable that is live across
// blocks. Variables are processed in trace order (hottest first, then
// block order within the trace, then definition order), so RoundRobin
// spreads the hot path's values evenly across clusters.
func (f *Fn) PlanLayout(m *machine.Model, policy HomePolicy) *Layout {
	liveIn, _ := f.Liveness()
	cross := make([]bool, len(f.Vars))
	for _, in := range liveIn {
		for v := range in {
			cross[v] = true
		}
	}
	// Branch conditions cross the block boundary by construction: the
	// block's scheduled code writes the taken direction into the
	// condition's cell and the control-flow machinery reads it, even
	// when dataflow liveness considers the variable dead.
	for _, b := range f.Blocks {
		if b.Term.Kind == Branch {
			cross[b.Term.Cond] = true
		}
	}
	// Outputs leave the function through their cells.
	for _, v := range f.Outputs {
		cross[v] = true
	}
	l := &Layout{Home: make([]int, len(f.Vars)), CrossBlock: cross}
	for i := range l.Home {
		l.Home[i] = -1
	}
	next := 0
	assign := func(v VarID) {
		if !cross[v] || l.Home[v] >= 0 {
			return
		}
		switch policy {
		case FirstCluster:
			l.Home[v] = 0
		case RoundRobin:
			l.Home[v] = next % m.NumClusters
			next++
		}
	}
	for _, tr := range f.Traces() {
		for _, bid := range tr.Blocks {
			for _, st := range f.Blocks[bid].Code {
				for _, a := range st.Args {
					assign(a)
				}
				assign(st.Dst)
			}
			if f.Blocks[bid].Term.Kind == Branch {
				assign(f.Blocks[bid].Term.Cond)
			}
		}
	}
	return l
}

// LowerBlock turns one basic block into a scheduling-unit graph: loads of
// the live-in variables the block reads, the block body, and stores of the
// definitions that are live out (plus the branch condition, stored so the
// interpreter can read the taken direction from memory). The loads and
// stores are preplaced on their variables' home banks — the paper's
// cross-region preplacement constraint, materialised.
func (f *Fn) LowerBlock(bid int, m *machine.Model, l *Layout) (*ir.Graph, error) {
	if bid < 0 || bid >= len(f.Blocks) {
		return nil, fmt.Errorf("region: block %d out of range", bid)
	}
	b := f.Blocks[bid]
	_, liveOut := f.Liveness()
	g := ir.New(fmt.Sprintf("%s.b%d", f.Name, bid))
	val := map[VarID]int{}      // current graph value of each variable
	defined := map[VarID]bool{} // variables written by this block
	loadOf := map[VarID]int{}   // the load instruction that read each cell
	consts := map[int64]int{}
	readVar := func(v VarID) (int, error) {
		if id, ok := val[v]; ok {
			return id, nil
		}
		if l.Home[v] < 0 {
			return 0, fmt.Errorf("region: block %d reads variable %s with no home", bid, f.Vars[v])
		}
		addrImm := l.Addr(v)
		addr, ok := consts[addrImm]
		if !ok {
			addr = g.AddConst(addrImm).ID
			consts[addrImm] = addr
		}
		ld := g.AddLoad(l.Home[v], addr)
		ld.Home = m.BankOwner(l.Home[v])
		ld.Name = "in:" + f.Vars[v]
		val[v] = ld.ID
		loadOf[v] = ld.ID
		return ld.ID, nil
	}
	for si, st := range b.Code {
		var args []int
		for _, a := range st.Args {
			id, err := readVar(a)
			if err != nil {
				return nil, err
			}
			args = append(args, id)
		}
		in := g.Add(st.Op, args...)
		in.Imm = st.Imm
		in.FImm = st.FImm
		in.Name = fmt.Sprintf("s%d:%s", si, f.Vars[st.Dst])
		val[st.Dst] = in.ID
		defined[st.Dst] = true
	}
	// Store live-out definitions (and the branch condition, which the
	// interpreter reads from its cell).
	needStore := map[VarID]bool{}
	for v := range liveOut[bid] {
		if defined[v] {
			needStore[v] = true
		}
	}
	if b.Term.Kind == Branch {
		// The interpreter reads the condition from its cell; make sure
		// the cell is current. If the block did not define it, the
		// cell already holds the right value from an earlier block.
		if defined[b.Term.Cond] {
			needStore[b.Term.Cond] = true
		} else if _, err := readVar(b.Term.Cond); err != nil {
			return nil, err
		}
	}
	for v := VarID(0); int(v) < len(f.Vars); v++ {
		if !needStore[v] {
			continue
		}
		if l.Home[v] < 0 {
			return nil, fmt.Errorf("region: block %d defines live-out %s with no home", bid, f.Vars[v])
		}
		addrImm := l.Addr(v)
		addr, ok := consts[addrImm]
		if !ok {
			addr = g.AddConst(addrImm).ID
			consts[addrImm] = addr
		}
		st := g.AddStore(l.Home[v], addr, val[v])
		st.Home = m.BankOwner(l.Home[v])
		st.Name = "out:" + f.Vars[v]
		// Anti-dependence: if this block also loaded the old value of
		// the cell, that load must complete before the store rewrites
		// it.
		if ld, ok := loadOf[v]; ok {
			g.AddMemEdge(ld, st.ID)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
