package oracle

import (
	"context"
	"math"
	"sort"
	"time"
)

// The search runs over the comm-relaxed problem: functional-unit issue slots
// are exact (one instruction per unit per issue cycle, matching the
// validator), but communication is charged as a pure latency — a value
// produced on cluster a is usable on cluster b CommLatency(a,b) cycles after
// it is ready, with no port, link, or transfer-unit contention and free
// constant broadcast. Every legal schedule satisfies the relaxed constraints
// with the same makespan, so the relaxed optimum is a certified lower bound
// on the legal optimum; when a gated legal schedule matches it, that
// schedule is proven optimal.
//
// Branching follows the serial schedule-generation scheme: each node picks
// an eligible instruction (all predecessors placed) together with a legal
// (cluster, unit) mode and issues it at the earliest cycle the unit is free
// at or after its dependence-ready time. Because unit occupancy is a single
// cycle and all precedence constraints are minimum lags, the scheme is
// complete: for any relaxed-feasible schedule, replaying its instructions in
// start order through the scheme yields starts no later, so some leaf of the
// tree attains the relaxed optimum.

type place struct {
	cluster, fu, start int
}

type candidate struct {
	instr, cluster, fu, start, lb int
}

type searcher struct {
	p *problem

	// ub is the best relaxed makespan known (initially the seed legal
	// schedule's length; every legal schedule is relaxed-feasible).
	// Subtrees whose lower bound reaches ub are pruned.
	ub          int
	best        []place // best relaxed solution found, nil if none beat the seed
	nodes       int64
	budget      int64
	deadline    time.Time
	ctx         context.Context
	checkEvery  int64
	aborted     bool
	abortReason string
	// minAbandoned folds in the lower bound of every branch left
	// unexplored after an abort, so min(ub, minAbandoned) stays a valid
	// lower bound on the relaxed optimum even for a truncated search.
	minAbandoned int

	// Cluster-symmetry breaking, active only on machines with uniform
	// inter-cluster latency: clusters are grouped into equivalence
	// classes (identical legality and latency for every instruction),
	// and an instruction may open an empty cluster only if it is the
	// lowest-indexed empty cluster of its class. Relabeling the clusters
	// of any solution to that canonical form preserves its makespan, so
	// completeness is unaffected.
	symmetry bool
	classRep []int // lowest-indexed equivalent cluster

	// Mutable depth-first state, undone on backtrack.
	placed   []place // per instruction; start == -1 means unplaced
	ready    []int   // completion cycle of placed instructions
	pending  []int   // unplaced-predecessor counts
	eligible []int
	busy     [][]uint64 // (cluster*numFU + fu) -> one bit per cycle
	useCount []int      // placed instructions per cluster
	horizon  int
	nPlaced  int
}

// initSymmetry detects whether cluster labels can be canonicalized: the
// machine's inter-cluster latency must be uniform (so any label swap
// preserves communication costs), and two clusters are equivalent when
// every instruction sees identical legality and latency on both.
func (s *searcher) initSymmetry() {
	m := s.p.m
	uniform := true
	var lat0 = -1
	for a := 0; a < m.NumClusters && uniform; a++ {
		for b := 0; b < m.NumClusters; b++ {
			if a == b {
				continue
			}
			l := m.CommLatency(a, b)
			if lat0 < 0 {
				lat0 = l
			} else if l != lat0 {
				uniform = false
				break
			}
		}
	}
	if !uniform {
		return
	}
	s.symmetry = true
	s.classRep = make([]int, m.NumClusters)
	for c := range s.classRep {
		s.classRep[c] = c
		for r := 0; r < c; r++ {
			if s.classRep[r] != r {
				continue
			}
			same := true
			for i := 0; i < s.p.n; i++ {
				if s.p.lat[i][c] != s.p.lat[i][r] {
					same = false
					break
				}
			}
			if same {
				s.classRep[c] = r
				break
			}
		}
	}
}

// openAllowed reports whether placing on currently-empty cluster c respects
// the canonical labeling: no lower-indexed equivalent cluster is also empty.
func (s *searcher) openAllowed(c int) bool {
	for r := s.classRep[c]; r < c; r++ {
		if s.classRep[r] == s.classRep[c] && s.useCount[r] == 0 {
			return false
		}
	}
	return true
}

func newSearcher(ctx context.Context, p *problem, seedLen int, budget int64, deadline time.Time) *searcher {
	s := &searcher{
		p:            p,
		ub:           seedLen,
		budget:       budget,
		deadline:     deadline,
		ctx:          ctx,
		checkEvery:   1024,
		minAbandoned: math.MaxInt,
		placed:       make([]place, p.n),
		ready:        make([]int, p.n),
		pending:      make([]int, p.n),
		useCount:     make([]int, p.m.NumClusters),
		horizon:      seedLen,
	}
	s.initSymmetry()
	words := (seedLen + 63) / 64
	if words == 0 {
		words = 1
	}
	s.busy = make([][]uint64, p.m.NumClusters*len(p.m.FUs))
	for i := range s.busy {
		s.busy[i] = make([]uint64, words)
	}
	for i := 0; i < p.n; i++ {
		s.placed[i].start = -1
		s.pending[i] = len(p.g.Preds(i))
		if s.pending[i] == 0 {
			s.eligible = append(s.eligible, i)
		}
	}
	return s
}

func (s *searcher) slotBusy(c, fu, t int) bool {
	w := s.busy[c*len(s.p.m.FUs)+fu]
	return w[t>>6]&(1<<uint(t&63)) != 0
}

func (s *searcher) setSlot(c, fu, t int, v bool) {
	w := s.busy[c*len(s.p.m.FUs)+fu]
	if v {
		w[t>>6] |= 1 << uint(t&63)
	} else {
		w[t>>6] &^= 1 << uint(t&63)
	}
}

// est returns the earliest dependence-ready cycle for instruction i on
// cluster c given the clusters its (already placed) predecessors chose.
func (s *searcher) est(i, c int) int {
	t := 0
	g := s.p.g
	for _, a := range g.Instrs[i].Args {
		r := s.ready[a]
		if !g.Instrs[a].Op.IsConst() && s.placed[a].cluster != c {
			r += s.p.m.CommLatency(s.placed[a].cluster, c)
		}
		if r > t {
			t = r
		}
	}
	for _, mp := range s.p.memPreds[i] {
		if s.ready[mp] > t {
			t = s.ready[mp]
		}
	}
	return t
}

// findSlot scans for the first cycle >= est with (c, fu) free whose tail
// bound stays under ub; -1 means every viable start is pruned.
func (s *searcher) findSlot(i, c, fu, est int) int {
	limit := s.ub - s.p.tail[i] // starts at or past this cannot improve
	for t := est; t < limit; t++ {
		if !s.slotBusy(c, fu, t) {
			return t
		}
	}
	return -1
}

// branches enumerates every undominated extension of the current partial
// solution, cheapest bound first. lastInstr/lastCluster/lastFU identify the
// placement that created this node, for the sibling-order dominance rule.
func (s *searcher) branches(lastInstr, lastCluster, lastFU int) []candidate {
	var out []candidate
	for _, e := range s.eligible {
		// Dominance: when the previous placement j and e are
		// independent and use different (cluster, unit) pairs, the two
		// placement orders reach identical states, so only the
		// canonical order (smaller ID first) is explored.
		dominated := lastInstr >= 0 && e < lastInstr && !s.p.isPred(e, lastInstr)
		for _, c := range s.p.legal[e] {
			if s.symmetry && s.useCount[c] == 0 && !s.openAllowed(c) {
				continue
			}
			est := s.est(e, c)
			for _, fu := range s.p.fus[e] {
				if dominated && (c != lastCluster || fu != lastFU) {
					continue
				}
				t := s.findSlot(e, c, fu, est)
				if t < 0 {
					continue
				}
				out = append(out, candidate{instr: e, cluster: c, fu: fu, start: t, lb: t + s.p.tail[e]})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		x, y := out[a], out[b]
		if x.lb != y.lb {
			return x.lb < y.lb
		}
		if x.start != y.start {
			return x.start < y.start
		}
		if x.instr != y.instr {
			return x.instr < y.instr
		}
		if x.cluster != y.cluster {
			return x.cluster < y.cluster
		}
		return x.fu < y.fu
	})
	return out
}

func (s *searcher) dropEligible(i int) {
	for k, v := range s.eligible {
		if v == i {
			s.eligible[k] = s.eligible[len(s.eligible)-1]
			s.eligible = s.eligible[:len(s.eligible)-1]
			return
		}
	}
}

func (s *searcher) place(cand candidate) {
	s.placed[cand.instr] = place{cluster: cand.cluster, fu: cand.fu, start: cand.start}
	s.ready[cand.instr] = cand.start + s.p.lat[cand.instr][cand.cluster]
	s.setSlot(cand.cluster, cand.fu, cand.start, true)
	s.useCount[cand.cluster]++
	s.nPlaced++
	s.dropEligible(cand.instr)
	for _, succ := range s.p.g.Succs(cand.instr) {
		s.pending[succ]--
		if s.pending[succ] == 0 {
			s.eligible = append(s.eligible, succ)
		}
	}
}

func (s *searcher) unplace(cand candidate) {
	for _, succ := range s.p.g.Succs(cand.instr) {
		s.pending[succ]++
		if s.pending[succ] == 1 {
			// succ became eligible when cand was placed; retract it.
			s.dropEligible(succ)
		}
	}
	s.eligible = append(s.eligible, cand.instr)
	s.nPlaced--
	s.useCount[cand.cluster]--
	s.setSlot(cand.cluster, cand.fu, cand.start, false)
	s.placed[cand.instr].start = -1
	s.ready[cand.instr] = 0
}

func (s *searcher) abandon(lb int) {
	if lb < s.minAbandoned {
		s.minAbandoned = lb
	}
}

func (s *searcher) checkLimits() {
	if s.aborted {
		return
	}
	if s.nodes >= s.budget {
		s.aborted = true
		s.abortReason = StatusNodeBudget
		return
	}
	if s.nodes%s.checkEvery == 0 {
		if !s.deadline.IsZero() && time.Now().After(s.deadline) {
			s.aborted = true
			s.abortReason = StatusDeadline
		} else if s.ctx != nil && s.ctx.Err() != nil {
			s.aborted = true
			s.abortReason = StatusDeadline
		}
	}
}

// dfs explores every extension of the current partial solution. nodeLB is
// the tail-based lower bound of the partial (max over placed start+tail).
func (s *searcher) dfs(nodeLB, lastInstr, lastCluster, lastFU int) {
	if s.nPlaced == s.p.n {
		ms := 0
		for i := range s.ready {
			if s.ready[i] > ms {
				ms = s.ready[i]
			}
		}
		if ms < s.ub {
			s.ub = ms
			if s.best == nil {
				s.best = make([]place, s.p.n)
			}
			copy(s.best, s.placed)
		}
		return
	}
	for _, cand := range s.branches(lastInstr, lastCluster, lastFU) {
		lb := cand.lb
		if nodeLB > lb {
			lb = nodeLB
		}
		if s.aborted {
			s.abandon(lb)
			continue
		}
		if lb >= s.ub { // ub may have shrunk since enumeration
			continue
		}
		s.nodes++
		s.checkLimits()
		if s.aborted {
			s.abandon(lb)
			continue
		}
		s.place(cand)
		s.dfs(lb, cand.instr, cand.cluster, cand.fu)
		s.unplace(cand)
	}
}

// run performs the search and returns the best relaxed solution found (nil
// if the seed was never beaten), the final relaxed lower bound, and whether
// the search completed.
func (s *searcher) run() (best []place, lowerBound int, complete bool) {
	s.dfs(0, -1, -1, -1)
	complete = !s.aborted
	if complete {
		// The tree is exhausted, so ub is the exact relaxed optimum.
		return s.best, s.ub, true
	}
	lb := s.ub
	if s.minAbandoned < lb {
		lb = s.minAbandoned
	}
	return s.best, lb, false
}
