// Package oracle is the optimality oracle: an exact branch-and-bound
// scheduler over a communication-relaxed model that, for small kernels,
// either proves a legal schedule optimal or certifies a lower bound on the
// optimal makespan. The heuristic ladder is validated against it: the gap
// between a heuristic schedule's length and the oracle's certified lower
// bound measures how far convergent scheduling sits from optimal.
//
// Certification is by pinching: any legal schedule is feasible in the
// relaxation at the same makespan, so the relaxed optimum (or any relaxed
// lower bound) is a true lower bound; when a gated legal schedule's length
// meets it, that schedule is proven optimal. The oracle never emits a
// schedule it has not passed through the pristine-graph legality gate (and
// the simulator when asked), and never reports a lower bound above the
// length of a feasible schedule it holds.
package oracle

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ir"
	"repro/internal/listsched"
	"repro/internal/machine"
	"repro/internal/schedule"
	"repro/internal/sim"
)

// Search outcome labels reported in Result.Status.
const (
	// StatusOptimal: the best schedule's length equals the certified
	// lower bound; the schedule is proven optimal.
	StatusOptimal = "optimal"
	// StatusGap: the search exhausted the relaxed space, so the lower
	// bound is the exact relaxed optimum, but no legal schedule matching
	// it was realized — the remaining gap is the relaxation's.
	StatusGap = "relaxation-gap"
	// StatusNodeBudget: the node budget ran out mid-search; the lower
	// bound is certified but possibly weaker than the relaxed optimum.
	StatusNodeBudget = "node-budget"
	// StatusDeadline: the time budget or context expired mid-search.
	StatusDeadline = "deadline"
	// StatusTooLarge: the graph exceeds MaxSearchOps; only the static
	// bounds certify the lower bound.
	StatusTooLarge = "too-large"
)

// Default budgets. The node budget caps branch-and-bound tree nodes; the
// ops cap routes graphs too large for exact search to bounds-only mode.
const (
	DefaultNodeBudget   = 4_000_000
	DefaultMaxSearchOps = 96
)

// Options configures one oracle run.
type Options struct {
	// NodeBudget caps the number of search-tree nodes expanded; <= 0
	// means DefaultNodeBudget. On exhaustion the oracle returns a
	// certified (possibly non-optimal) lower bound, never silence.
	NodeBudget int64
	// MaxSearchOps routes graphs with more instructions to bounds-only
	// mode (static lower bounds, no tree search); <= 0 means
	// DefaultMaxSearchOps.
	MaxSearchOps int
	// Timeout bounds wall-clock search time; zero means none (the
	// context still applies).
	Timeout time.Duration
	// Incumbent optionally seeds the search with a known legal schedule
	// (e.g. the ladder's) for the same graph and machine; the oracle
	// re-gates it and rejects the run if it is illegal.
	Incumbent *schedule.Schedule
	// Verify additionally simulates every emitted schedule against
	// sequential reference execution. Validation always runs.
	Verify bool
	// InitMemory is the initial memory Verify simulates against; nil
	// means empty memory.
	InitMemory sim.Memory
}

// Result reports a certified scheduling verdict: a gated legal schedule and
// a proven lower bound that never exceeds its length.
type Result struct {
	// LowerBound is the certified lower bound on the optimal makespan.
	LowerBound int
	// Best is the best legal schedule found, re-validated against the
	// pristine graph and machine. Never nil on success.
	Best *schedule.Schedule
	// BestLength is Best's makespan.
	BestLength int
	// Certified reports BestLength == LowerBound: Best is proven optimal.
	Certified bool
	// Searched reports whether branch-and-bound ran at all (the graph
	// fit under MaxSearchOps and the static bounds left a gap).
	Searched bool
	// Complete reports the search exhausted the relaxed space, making
	// LowerBound at least the exact relaxed optimum.
	Complete bool
	// Nodes counts expanded search-tree nodes.
	Nodes int64
	// Status is one of the Status* labels.
	Status string
	// Bounds is the static lower-bound breakdown.
	Bounds Bounds
}

// Gap returns BestLength - LowerBound: zero exactly when Best is proven
// optimal.
func (r *Result) Gap() int { return r.BestLength - r.LowerBound }

// Solve runs the oracle for g on m. It always returns either an error or a
// Result holding a gated legal schedule plus a lower bound certified by the
// static bounds and (when the graph is small enough) the relaxed search.
func Solve(ctx context.Context, g *ir.Graph, m *machine.Model, opt Options) (*Result, error) {
	if g == nil || g.Len() == 0 {
		return nil, fmt.Errorf("oracle: empty graph")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("oracle: invalid graph: %w", err)
	}
	if opt.NodeBudget <= 0 {
		opt.NodeBudget = DefaultNodeBudget
	}
	if opt.MaxSearchOps <= 0 {
		opt.MaxSearchOps = DefaultMaxSearchOps
	}
	p, err := build(g, m)
	if err != nil {
		return nil, err
	}
	res := &Result{Bounds: p.staticBounds()}
	res.LowerBound = res.Bounds.Max()

	// Seed a feasible schedule: the caller's incumbent when provided
	// (gated — an illegal incumbent is a contract violation), else a
	// deterministic list-scheduled fallback.
	var best *schedule.Schedule
	if opt.Incumbent != nil {
		gated, err := gate(g, m, opt.Incumbent, opt)
		if err != nil {
			return nil, fmt.Errorf("oracle: incumbent fails the legality gate: %w", err)
		}
		best = gated
	}
	if fallback, err := listSeed(p); err == nil {
		if gated, gerr := gate(g, m, fallback, opt); gerr == nil {
			if best == nil || gated.Length() < best.Length() {
				best = gated
			}
		}
	} else if best == nil {
		return nil, fmt.Errorf("oracle: no feasible seed schedule: %w", err)
	}
	if best == nil {
		return nil, fmt.Errorf("oracle: no feasible seed schedule")
	}
	res.Best = best
	res.BestLength = best.Length()

	if res.BestLength <= res.LowerBound {
		// Pinched before searching: the seed already meets the bound.
		res.Certified = true
		res.Status = StatusOptimal
		return res, nil
	}
	if p.n > opt.MaxSearchOps {
		res.Status = StatusTooLarge
		return res, nil
	}

	// Relaxed branch-and-bound, seeded with the legal incumbent's length
	// as the initial upper bound.
	var deadline time.Time
	if opt.Timeout > 0 {
		deadline = time.Now().Add(opt.Timeout)
	}
	s := newSearcher(ctx, p, res.BestLength, opt.NodeBudget, deadline)
	relaxedBest, relaxedLB, complete := s.run()
	res.Searched = true
	res.Complete = complete
	res.Nodes = s.nodes

	// The search bound and the static bounds certify independently;
	// take the stronger. relaxedLB never exceeds res.BestLength (the
	// seed is relaxed-feasible), so LowerBound <= BestLength holds.
	if relaxedLB > res.LowerBound {
		res.LowerBound = relaxedLB
	}

	// Realize the improved relaxed solution as a legal schedule by
	// re-running the list scheduler with the relaxed clusters as the
	// assignment and the relaxed starts as priorities, then gate it.
	if relaxedBest != nil {
		if realized, err := realize(p, relaxedBest); err == nil {
			if gated, gerr := gate(g, m, realized, opt); gerr == nil && gated.Length() < res.BestLength {
				res.Best = gated
				res.BestLength = gated.Length()
			}
		}
	}

	res.Certified = res.BestLength == res.LowerBound
	switch {
	case res.Certified:
		res.Status = StatusOptimal
	case !complete:
		res.Status = s.abortReason
	default:
		res.Status = StatusGap
	}
	return res, nil
}

// listSeed builds the deterministic fallback schedule: everything on its
// mandatory cluster when it has one, cluster zero otherwise, list-scheduled
// under critical-path priority.
func listSeed(p *problem) (*schedule.Schedule, error) {
	assign := make([]int, p.n)
	for i := range assign {
		if p.fixed[i] >= 0 {
			assign[i] = p.fixed[i]
		} else {
			assign[i] = p.legal[i][0]
		}
	}
	return listsched.Run(p.g, p.m, listsched.Options{Assignment: assign})
}

// realize converts a relaxed solution into a legal schedule: the relaxed
// cluster choices become the assignment and the relaxed issue cycles the
// priority, so the list scheduler re-times the same spatial layout under
// the full communication model.
func realize(p *problem, sol []place) (*schedule.Schedule, error) {
	assign := make([]int, p.n)
	prio := make([]float64, p.n)
	for i, pl := range sol {
		assign[i] = pl.cluster
		prio[i] = float64(pl.start)
	}
	return listsched.Run(p.g, p.m, listsched.Options{Assignment: assign, Priority: prio})
}

// gate re-attaches a candidate schedule to the pristine graph and machine
// and checks its complete legality there, mirroring the robust-tier gate;
// the oracle never emits an unchecked schedule.
func gate(g *ir.Graph, m *machine.Model, cand *schedule.Schedule, opt Options) (*schedule.Schedule, error) {
	if len(cand.Placements) != g.Len() {
		return nil, fmt.Errorf("schedule places %d of %d instructions", len(cand.Placements), g.Len())
	}
	shell := &schedule.Schedule{
		Graph:      g,
		Machine:    m,
		Placements: append([]schedule.Placement(nil), cand.Placements...),
		Comms:      append([]schedule.Comm(nil), cand.Comms...),
	}
	if err := shell.Validate(); err != nil {
		return nil, err
	}
	if opt.Verify {
		mem := opt.InitMemory
		if mem == nil {
			mem = sim.NewMemory()
		}
		if _, err := sim.Verify(shell, mem); err != nil {
			return nil, err
		}
	}
	return shell, nil
}
