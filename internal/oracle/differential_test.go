package oracle_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/oracle"
	"repro/internal/robust"
	"repro/internal/sim"
)

// TestDifferentialLadderVsOracle cross-checks the heuristic ladder against
// the oracle on every seed kernel: the oracle's certified lower bound must
// never exceed the ladder's makespan (a violation means the bound — or the
// ladder's legality gate — is unsound), the oracle's best schedule must
// never be longer than the ladder incumbent it was seeded with (a violation
// is an oracle regression), and the oracle's emitted schedule must pass the
// legality gate and reproduce the kernel's semantics byte-for-byte in the
// simulator. Each assertion names the side it indicts.
func TestDifferentialLadderVsOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is long")
	}
	suites := []struct {
		machine string
		kernels []bench.Kernel
	}{
		{"raw4", bench.RawSuite()},
		{"vliw4", bench.VliwSuite()},
	}
	for _, su := range suites {
		m, err := machine.Named(su.machine)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range su.kernels {
			k := k
			t.Run(su.machine+"/"+k.Name, func(t *testing.T) {
				t.Parallel()
				g := k.Build(m.NumClusters)
				mem := k.InitMemory(m.NumClusters)
				ladder, _, err := robust.Schedule(context.Background(), g, m, robust.Options{
					Seed: 2002, Verify: true, InitMemory: mem,
				})
				if err != nil {
					t.Fatalf("ladder failed to schedule: %v", err)
				}
				res, err := oracle.Solve(context.Background(), g, m, oracle.Options{
					Incumbent:  ladder,
					Verify:     true,
					InitMemory: mem,
				})
				if err != nil {
					t.Fatalf("oracle: %v", err)
				}
				ladderLen := ladder.Length()
				if res.LowerBound > ladderLen {
					t.Errorf("oracle bug: certified lower bound %d exceeds the gated ladder makespan %d",
						res.LowerBound, ladderLen)
				}
				if res.BestLength > ladderLen {
					t.Errorf("oracle bug: best schedule %d is longer than its ladder incumbent %d",
						res.BestLength, ladderLen)
				}
				if err := res.Best.Validate(); err != nil {
					t.Errorf("oracle bug: emitted schedule fails the legality gate: %v", err)
				}
				simRes, err := sim.Verify(res.Best, mem)
				if err != nil {
					t.Fatalf("oracle bug: emitted schedule diverges from reference execution: %v", err)
				}
				if err := k.Check(simRes.Memory, m.NumClusters); err != nil {
					t.Errorf("oracle bug: simulated memory fails the kernel check: %v", err)
				}
			})
		}
	}
}
