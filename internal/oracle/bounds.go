package oracle

import (
	"fmt"
	"math/bits"

	"repro/internal/ir"
	"repro/internal/machine"
)

// problem is the precomputed search substrate for one (graph, machine) pair:
// per-instruction legal clusters, compatible functional units, latencies,
// minimum dependence lags and tail bounds. It is read-only during the search.
type problem struct {
	g *ir.Graph
	m *machine.Model
	n int

	// legal[i] lists the clusters instruction i may execute on (preplaced
	// homes, memory-bank locality). fixed[i] is the single legal cluster
	// when |legal[i]| == 1, else -1.
	legal [][]int
	fixed []int
	// fus[i] lists the functional-unit indices able to issue i's opcode
	// (identical on every cluster by the machine model's construction).
	fus [][]int
	// lat[i][c] is the full latency of i on cluster c (remote-memory
	// penalty included), or -1 when the placement is illegal.
	lat [][]int
	// minLat[i] is the smallest lat[i][c] over legal clusters.
	minLat []int
	// tail[i] lower-bounds makespan - start(i) in any feasible completion:
	// i's minimum latency plus the longest successor chain under minimum
	// dependence lags. makespan >= start(i) + tail(i) always holds.
	tail []int
	// memPreds[i] lists memory-order predecessors of i (from explicit
	// memory edges); the successor may not issue before they complete.
	memPreds [][]int
}

// build precomputes the problem, or reports why the graph is unschedulable
// on the machine at all (an infeasible home/bank combination, an opcode no
// functional unit runs).
func build(g *ir.Graph, m *machine.Model) (*problem, error) {
	g.Seal()
	n := g.Len()
	p := &problem{
		g: g, m: m, n: n,
		legal:    make([][]int, n),
		fixed:    make([]int, n),
		fus:      make([][]int, n),
		lat:      make([][]int, n),
		minLat:   make([]int, n),
		tail:     make([]int, n),
		memPreds: make([][]int, n),
	}
	for _, e := range g.MemEdges() {
		p.memPreds[e[1]] = append(p.memPreds[e[1]], e[0])
	}
	for i, in := range g.Instrs {
		for fu := range m.FUs {
			if m.CanRunOn(in.Op, fu) {
				p.fus[i] = append(p.fus[i], fu)
			}
		}
		if len(p.fus[i]) == 0 {
			return nil, fmt.Errorf("oracle: no functional unit runs %v (instr %d)", in.Op, i)
		}
		p.lat[i] = make([]int, m.NumClusters)
		p.fixed[i] = -1
		p.minLat[i] = -1
		for c := 0; c < m.NumClusters; c++ {
			lat, ok := m.InstrLatency(in, c)
			if !ok || (in.Preplaced() && c != in.Home) {
				p.lat[i][c] = -1
				continue
			}
			p.lat[i][c] = lat
			p.legal[i] = append(p.legal[i], c)
			if p.minLat[i] < 0 || lat < p.minLat[i] {
				p.minLat[i] = lat
			}
		}
		if len(p.legal[i]) == 0 {
			return nil, fmt.Errorf("oracle: instr %d (%v bank %d home %d) has no legal cluster on %s",
				i, in.Op, in.Bank, in.Home, m.Name)
		}
		if len(p.legal[i]) == 1 {
			p.fixed[i] = p.legal[i][0]
		}
	}
	// Tail bounds, in reverse topological order (IDs are topological).
	for i := n - 1; i >= 0; i-- {
		t := p.minLat[i]
		for _, s := range g.Succs(i) {
			// A successor may be a data consumer, a memory-order
			// successor, or both; take the strongest constraint.
			viaData := false
			for _, a := range g.Instrs[s].Args {
				if a == i {
					viaData = true
					break
				}
			}
			if viaData {
				if v := p.minLat[i] + p.minLag(i, s) + p.tail[s]; v > t {
					t = v
				}
			}
			for _, mp := range p.memPreds[s] {
				if mp == i {
					if v := p.minLat[i] + p.tail[s]; v > t {
						t = v
					}
					break
				}
			}
		}
		p.tail[i] = t
	}
	return p, nil
}

// minLag is the smallest possible start-delay a consumer pays beyond the
// producer's ready time: zero for constants (immediate broadcast) and for
// pairs that could share a cluster, the machine's communication latency when
// both endpoints are pinned to distinct clusters.
func (p *problem) minLag(producer, consumer int) int {
	if p.g.Instrs[producer].Op.IsConst() {
		return 0
	}
	fp, fc := p.fixed[producer], p.fixed[consumer]
	if fp >= 0 && fc >= 0 && fp != fc {
		return p.m.CommLatency(fp, fc)
	}
	return 0
}

// isPred reports whether q is a (data or memory-order) predecessor of i.
func (p *problem) isPred(i, q int) bool {
	for _, v := range p.g.Preds(i) {
		if v == q {
			return true
		}
	}
	return false
}

// Bounds is the static lower-bound breakdown. Each member alone is a proven
// lower bound on the makespan of every legal schedule; Max is the certified
// combination.
type Bounds struct {
	// CriticalPath is the longest dependence chain under per-cluster
	// minimum latencies and minimum communication lags between pinned
	// instructions.
	CriticalPath int `json:"criticalPath"`
	// Issue counts functional-unit issue slots: ops competing for the same
	// unit kinds cannot issue wider than the machine provides.
	Issue int `json:"issue"`
	// Cluster is the per-cluster serialization bound over instructions
	// pinned to one cluster (preplaced homes, owned memory banks).
	Cluster int `json:"cluster"`
}

// Max returns the strongest of the component bounds.
func (b Bounds) Max() int {
	max := b.CriticalPath
	if b.Issue > max {
		max = b.Issue
	}
	if b.Cluster > max {
		max = b.Cluster
	}
	return max
}

// StaticBounds computes the certified static lower bounds for scheduling g
// on m, without any search. It errors when the graph cannot be scheduled on
// the machine at all.
func StaticBounds(g *ir.Graph, m *machine.Model) (Bounds, error) {
	p, err := build(g, m)
	if err != nil {
		return Bounds{}, err
	}
	return p.staticBounds(), nil
}

func (p *problem) staticBounds() Bounds {
	return Bounds{
		CriticalPath: p.criticalPathLB(),
		Issue:        p.issueLB(),
		Cluster:      p.clusterLB(),
	}
}

// criticalPathLB runs the forward DP: es[i] is a lower bound on i's start in
// any legal schedule, ready[i] = es[i] + minLat[i] on i's completion.
func (p *problem) criticalPathLB() int {
	es := make([]int, p.n)
	ready := make([]int, p.n)
	lb := 0
	for i, in := range p.g.Instrs {
		s := 0
		for _, a := range in.Args {
			if v := ready[a] + p.minLag(a, i); v > s {
				s = v
			}
		}
		for _, mp := range p.memPreds[i] {
			if ready[mp] > s {
				s = ready[mp]
			}
		}
		es[i] = s
		lat := p.minLat[i]
		if f := p.fixed[i]; f >= 0 {
			lat = p.lat[i][f]
		}
		ready[i] = s + lat
		if ready[i] > lb {
			lb = ready[i]
		}
	}
	return lb
}

// issueLB bounds by functional-unit bandwidth: for every compatible-unit
// mask present in the graph (and the union of all of them), the ops confined
// to that mask issue at most |mask| * clusters per cycle.
func (p *problem) issueLB() int {
	type group struct {
		count  int
		minLat int
	}
	masks := map[uint64]*group{}
	note := func(mask uint64, lat int, in map[uint64]*group) {
		g := in[mask]
		if g == nil {
			g = &group{minLat: lat}
			in[mask] = g
		}
		g.count++
		if lat < g.minLat {
			g.minLat = lat
		}
	}
	var union uint64
	for i := range p.g.Instrs {
		var mask uint64
		for _, fu := range p.fus[i] {
			mask |= 1 << uint(fu)
		}
		union |= mask
		note(mask, p.minLat[i], masks)
	}
	targets := make([]uint64, 0, len(masks)+1)
	for m := range masks {
		targets = append(targets, m)
	}
	if _, ok := masks[union]; !ok {
		targets = append(targets, union)
	}
	lb := 0
	for _, t := range targets {
		cnt, minLat := 0, 0
		for m, g := range masks {
			if m&^t == 0 { // every unit m's ops can use lies inside t
				cnt += g.count
				if minLat == 0 || g.minLat < minLat {
					minLat = g.minLat
				}
			}
		}
		if cnt == 0 {
			continue
		}
		slots := bits.OnesCount64(t) * p.m.NumClusters
		if v := (cnt+slots-1)/slots - 1 + minLat; v > lb {
			lb = v
		}
	}
	return lb
}

// clusterLB bounds by mandatory per-cluster work: instructions pinned to one
// cluster (preplaced, or memory ops on machines with owned banks) serialize
// through that cluster's compatible units.
func (p *problem) clusterLB() int {
	type group struct {
		count  int
		minLat int
	}
	perCluster := make([]map[uint64]*group, p.m.NumClusters)
	for i := range p.g.Instrs {
		f := p.fixed[i]
		if f < 0 {
			continue
		}
		if perCluster[f] == nil {
			perCluster[f] = map[uint64]*group{}
		}
		var mask uint64
		for _, fu := range p.fus[i] {
			mask |= 1 << uint(fu)
		}
		g := perCluster[f][mask]
		if g == nil {
			g = &group{minLat: p.minLat[i]}
			perCluster[f][mask] = g
		}
		g.count++
		if p.minLat[i] < g.minLat {
			g.minLat = p.minLat[i]
		}
	}
	lb := 0
	for _, masks := range perCluster {
		if masks == nil {
			continue
		}
		var union uint64
		for m := range masks {
			union |= m
		}
		targets := make([]uint64, 0, len(masks)+1)
		for m := range masks {
			targets = append(targets, m)
		}
		if _, ok := masks[union]; !ok {
			targets = append(targets, union)
		}
		for _, t := range targets {
			cnt, minLat := 0, 0
			for m, g := range masks {
				if m&^t == 0 {
					cnt += g.count
					if minLat == 0 || g.minLat < minLat {
						minLat = g.minLat
					}
				}
			}
			if cnt == 0 {
				continue
			}
			slots := bits.OnesCount64(t)
			if v := (cnt+slots-1)/slots - 1 + minLat; v > lb {
				lb = v
			}
		}
	}
	return lb
}
