package oracle_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/oracle"
	"repro/internal/schedule"
)

// chain builds a serial dependence chain: one constant followed by n
// dependent adds. Its optimal makespan is the critical path on any machine.
func chain(n int) *ir.Graph {
	g := ir.New("chain")
	prev := g.AddConst(1).ID
	for i := 0; i < n; i++ {
		prev = g.Add(ir.Add, prev, prev).ID
	}
	return g
}

// diamond builds the classic reconvergent shape: one root feeding two
// independent arms that a final op joins.
func diamond() *ir.Graph {
	g := ir.New("diamond")
	c := g.AddConst(7).ID
	a := g.Add(ir.Add, c, c).ID
	b := g.Add(ir.Sub, c, c).ID
	g.Add(ir.Mul, a, b)
	return g
}

// fanout builds one constant feeding w independent ops, then a pairwise
// reduction tree back to a single value.
func fanout(w int) *ir.Graph {
	g := ir.New("fanout")
	c := g.AddConst(3).ID
	var level []int
	for i := 0; i < w; i++ {
		level = append(level, g.Add(ir.Add, c, c).ID)
	}
	for len(level) > 1 {
		var next []int
		for i := 0; i+1 < len(level); i += 2 {
			next = append(next, g.Add(ir.Add, level[i], level[i+1]).ID)
		}
		if len(level)%2 == 1 {
			next = append(next, level[len(level)-1])
		}
		level = next
	}
	return g
}

func mustMachine(t *testing.T, name string) *machine.Model {
	t.Helper()
	m, err := machine.Named(name)
	if err != nil {
		t.Fatalf("machine %q: %v", name, err)
	}
	return m
}

func TestChainProvenOptimal(t *testing.T) {
	for _, mn := range []string{"raw4", "vliw4"} {
		m := mustMachine(t, mn)
		res, err := oracle.Solve(context.Background(), chain(12), m, oracle.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s: %v", mn, err)
		}
		if !res.Certified || res.Status != oracle.StatusOptimal {
			t.Fatalf("%s: chain not proven optimal: %+v", mn, res)
		}
		if res.Gap() != 0 || res.BestLength != res.LowerBound {
			t.Fatalf("%s: certified result with nonzero gap: %+v", mn, res)
		}
		if res.LowerBound != res.Bounds.CriticalPath {
			t.Fatalf("%s: chain lower bound %d, critical path %d", mn, res.LowerBound, res.Bounds.CriticalPath)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%s: emitted schedule illegal: %v", mn, err)
		}
	}
}

func TestDiamondAndFanoutProvenOptimal(t *testing.T) {
	cases := []struct {
		machine, name string
		g             *ir.Graph
	}{
		{"raw4", "diamond", diamond()},
		{"vliw4", "diamond", diamond()},
		{"raw4", "fanout4", fanout(4)},
		{"vliw4", "fanout4", fanout(4)},
		{"raw4", "fanout6", fanout(6)},
	}
	for _, tc := range cases {
		m := mustMachine(t, tc.machine)
		res, err := oracle.Solve(context.Background(), tc.g, m, oracle.Options{Verify: true})
		if err != nil {
			t.Fatalf("%s/%s: %v", tc.machine, tc.name, err)
		}
		if !res.Certified {
			t.Fatalf("%s/%s: small graph not proven optimal: status=%s lb=%d best=%d nodes=%d",
				tc.machine, tc.name, res.Status, res.LowerBound, res.BestLength, res.Nodes)
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("%s/%s: emitted schedule illegal: %v", tc.machine, tc.name, err)
		}
	}
}

// TestRelaxationGapReported pins the honest outcome on a shape whose legal
// optimum exceeds the relaxed optimum (port and transfer-unit contention is
// relaxed away): the search completes, reports the exact relaxed bound, and
// does not claim optimality.
func TestRelaxationGapReported(t *testing.T) {
	m := mustMachine(t, "vliw4")
	res, err := oracle.Solve(context.Background(), fanout(6), m, oracle.Options{})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if !res.Complete {
		t.Fatalf("search did not complete: %+v", res)
	}
	if res.Certified || res.Status != oracle.StatusGap {
		t.Fatalf("expected a relaxation gap, got status=%s certified=%v", res.Status, res.Certified)
	}
	if res.LowerBound >= res.BestLength {
		t.Fatalf("gap status with lb %d >= best %d", res.LowerBound, res.BestLength)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("emitted schedule illegal: %v", err)
	}
}

func TestRandomLayeredCertifiedAndDeterministic(t *testing.T) {
	m := mustMachine(t, "raw4")
	run := func() *oracle.Result {
		g := bench.RandomLayered(24, 6, m.NumClusters, 2002)
		res, err := oracle.Solve(context.Background(), g, m, oracle.Options{NodeBudget: 300_000})
		if err != nil {
			t.Fatalf("solve: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.LowerBound < 1 || a.LowerBound > a.BestLength {
		t.Fatalf("lower bound %d outside [1, %d]", a.LowerBound, a.BestLength)
	}
	if err := a.Best.Validate(); err != nil {
		t.Fatalf("emitted schedule illegal: %v", err)
	}
	if a.LowerBound != b.LowerBound || a.BestLength != b.BestLength || a.Nodes != b.Nodes ||
		a.Best.Fingerprint() != b.Best.Fingerprint() {
		t.Fatalf("oracle not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
			a.LowerBound, a.BestLength, a.Nodes, b.LowerBound, b.BestLength, b.Nodes)
	}
}

// TestBudgetExhaustion pins the contract when the node budget runs out
// mid-search: Certified must be false, the lower bound must stay usable
// (positive, no stronger than the best schedule, no weaker than the static
// bounds), and the emitted schedule must be complete and legal — never a
// silent zero or an illegal partial.
func TestBudgetExhaustion(t *testing.T) {
	cases := []struct {
		name    string
		machine string
		build   func(clusters int) *ir.Graph
		budget  int64
	}{
		{"layered40-raw4-b50", "raw4", func(c int) *ir.Graph { return bench.RandomLayered(40, 8, c, 1) }, 50},
		{"layered32-vliw4-b10", "vliw4", func(c int) *ir.Graph { return bench.RandomLayered(32, 8, c, 7) }, 10},
		{"layered48-raw4-b1", "raw4", func(c int) *ir.Graph { return bench.RandomLayered(48, 6, c, 11) }, 1},
		{"layered36-vliw4-b200", "vliw4", func(c int) *ir.Graph { return bench.RandomLayered(36, 9, c, 13) }, 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := mustMachine(t, tc.machine)
			g := tc.build(m.NumClusters)
			res, err := oracle.Solve(context.Background(), g, m, oracle.Options{NodeBudget: tc.budget})
			if err != nil {
				t.Fatalf("solve: %v", err)
			}
			if res.Status != oracle.StatusNodeBudget {
				t.Fatalf("status %q, want %q (certified=%v nodes=%d lb=%d best=%d)",
					res.Status, oracle.StatusNodeBudget, res.Certified, res.Nodes, res.LowerBound, res.BestLength)
			}
			if res.Certified || res.Complete {
				t.Fatalf("truncated search claims certainty: %+v", res)
			}
			if res.Nodes > tc.budget {
				t.Fatalf("expanded %d nodes over budget %d", res.Nodes, tc.budget)
			}
			if res.LowerBound < 1 {
				t.Fatalf("unusable lower bound %d after budget exhaustion", res.LowerBound)
			}
			if res.LowerBound > res.BestLength {
				t.Fatalf("lower bound %d exceeds feasible length %d", res.LowerBound, res.BestLength)
			}
			if res.LowerBound < res.Bounds.Max() {
				t.Fatalf("lower bound %d below static bounds %d", res.LowerBound, res.Bounds.Max())
			}
			if res.Best == nil || len(res.Best.Placements) != g.Len() {
				t.Fatalf("truncated search did not keep a complete schedule")
			}
			if err := res.Best.Validate(); err != nil {
				t.Fatalf("truncated search emitted illegal schedule: %v", err)
			}
		})
	}
}

func TestTooLargeRoutesToBoundsOnly(t *testing.T) {
	m := mustMachine(t, "raw4")
	g := bench.RandomLayered(64, 8, m.NumClusters, 3)
	res, err := oracle.Solve(context.Background(), g, m, oracle.Options{MaxSearchOps: 16})
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	if res.Searched {
		t.Fatalf("graph over MaxSearchOps was searched anyway")
	}
	if res.Status != oracle.StatusTooLarge && res.Status != oracle.StatusOptimal {
		t.Fatalf("status %q for bounds-only run", res.Status)
	}
	if res.Nodes != 0 {
		t.Fatalf("bounds-only run expanded %d nodes", res.Nodes)
	}
	if res.LowerBound < 1 || res.LowerBound > res.BestLength {
		t.Fatalf("bounds-only lower bound %d outside [1, %d]", res.LowerBound, res.BestLength)
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatalf("bounds-only schedule illegal: %v", err)
	}
}

func TestStaticBoundsComponents(t *testing.T) {
	m := mustMachine(t, "raw4")
	// A serial chain: the critical path is exact and dominates.
	b, err := oracle.StaticBounds(chain(10), m)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if b.CriticalPath != 11 {
		t.Fatalf("chain(10) critical path bound %d, want 11", b.CriticalPath)
	}
	// Wide independent work: issue bandwidth dominates. One constant
	// plus 16 adds over 4 single-issue tiles needs ceil(17/4) issue
	// cycles; the last op completes one latency later.
	g := ir.New("wide")
	c := g.AddConst(1).ID
	for i := 0; i < 16; i++ {
		g.Add(ir.Add, c, c)
	}
	b, err = oracle.StaticBounds(g, m)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if b.Issue != 5 {
		t.Fatalf("wide issue bound %d, want 5", b.Issue)
	}
	// Mandatory per-cluster work: everything preplaced on tile 0
	// serializes there regardless of machine width.
	g = ir.New("pinned")
	c = g.AddConst(1).ID
	for i := 0; i < 8; i++ {
		in := g.Add(ir.Add, c, c)
		in.Home = 0
	}
	b, err = oracle.StaticBounds(g, m)
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if b.Cluster < 8 {
		t.Fatalf("pinned cluster bound %d, want >= 8", b.Cluster)
	}
}

func TestIllegalIncumbentRejected(t *testing.T) {
	m := mustMachine(t, "raw4")
	g := diamond()
	bogus := schedule.New(g, m) // all-zero placements: overlapping, no latencies
	_, err := oracle.Solve(context.Background(), g, m, oracle.Options{Incumbent: bogus})
	if err == nil || !strings.Contains(err.Error(), "incumbent") {
		t.Fatalf("illegal incumbent accepted: %v", err)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	m := mustMachine(t, "raw4")
	if _, err := oracle.Solve(context.Background(), ir.New("empty"), m, oracle.Options{}); err == nil {
		t.Fatalf("empty graph accepted")
	}
}
