package oracle_test

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/oracle"
)

// FuzzOracle drives the branch-and-bound frontier over random small graphs
// and known-tricky shapes, asserting the oracle's hard contract: it never
// panics, always terminates within its node budget, its certified lower
// bound never exceeds the feasible schedule it itself found, and the
// schedule it emits is complete and legal.
func FuzzOracle(f *testing.F) {
	// Seed corpus: shapes that historically stress exact schedulers.
	f.Add(uint8(0), uint8(24), uint8(6), int64(2002), false)  // random layered
	f.Add(uint8(0), uint8(40), uint8(8), int64(1), true)      // wider layered
	f.Add(uint8(1), uint8(0), uint8(0), int64(0), false)      // diamond
	f.Add(uint8(1), uint8(0), uint8(0), int64(0), true)       // diamond, vliw
	f.Add(uint8(2), uint8(12), uint8(0), int64(0), false)     // wide fanout
	f.Add(uint8(2), uint8(7), uint8(0), int64(0), true)       // odd fanout, vliw
	f.Add(uint8(3), uint8(16), uint8(0), int64(0), false)     // serial chain
	f.Add(uint8(3), uint8(2), uint8(0), int64(0), true)       // short chain, vliw
	f.Add(uint8(0), uint8(2), uint8(1), int64(9), false)      // minimum size
	f.Add(uint8(0), uint8(255), uint8(255), int64(-5), false) // clamped extremes

	f.Fuzz(func(t *testing.T, shape, n, width uint8, seed int64, vliw bool) {
		var g *ir.Graph
		size := 2 + int(n)%47 // 2..48 instructions
		switch shape % 4 {
		case 0:
			g = bench.RandomLayered(size, 1+int(width)%8, 4, seed)
		case 1:
			g = diamond()
		case 2:
			g = fanout(2 + int(n)%14)
		default:
			g = chain(1 + int(n)%24)
		}
		name := "raw4"
		if vliw {
			name = "vliw4"
		}
		m, err := machine.Named(name)
		if err != nil {
			t.Fatal(err)
		}
		const budget = 30_000
		res, err := oracle.Solve(context.Background(), g, m, oracle.Options{NodeBudget: budget})
		if err != nil {
			t.Fatalf("solve errored on a well-formed graph: %v", err)
		}
		if res.Nodes > budget {
			t.Fatalf("expanded %d nodes over budget %d", res.Nodes, budget)
		}
		if res.LowerBound < 1 {
			t.Fatalf("lower bound %d is not usable", res.LowerBound)
		}
		if res.LowerBound > res.BestLength {
			t.Fatalf("certified lower bound %d exceeds own feasible schedule %d (status=%s)",
				res.LowerBound, res.BestLength, res.Status)
		}
		if res.Certified != (res.LowerBound == res.BestLength) {
			t.Fatalf("certification flag inconsistent: lb=%d best=%d certified=%v",
				res.LowerBound, res.BestLength, res.Certified)
		}
		if res.Best == nil || len(res.Best.Placements) != g.Len() {
			t.Fatalf("incomplete schedule emitted")
		}
		if err := res.Best.Validate(); err != nil {
			t.Fatalf("emitted schedule fails the legality gate: %v", err)
		}
	})
}
