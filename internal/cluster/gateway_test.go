package cluster

// Gateway unit tests against scripted fake shards: the loss-free hedging
// proof with a deliberately slow shard, edge auth, reroute-on-refusal with
// breaker tripping, and below-quorum degradation.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/irtext"
	"repro/internal/robust"
	"repro/internal/server"
)

// fakeShard is a scripted schedd stand-in: always-ready /readyz, and a
// /schedule whose latency and status the test controls at runtime.
type fakeShard struct {
	ts      *httptest.Server
	name    string
	delayNs atomic.Int64 // /schedule latency
	status  atomic.Int64 // /schedule status (default 200)
	ready   atomic.Bool
	hits    atomic.Int64 // /schedule attempts received
	cancels atomic.Int64 // attempts whose context died mid-delay (hedge losers)
}

func newFakeShard(t *testing.T) *fakeShard {
	f := &fakeShard{}
	f.status.Store(http.StatusOK)
	f.ready.Store(true)
	mux := http.NewServeMux()
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !f.ready.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/schedule", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		// Consume the body before sleeping: the server only watches for the
		// client disconnect (which fires r.Context().Done()) once no request
		// bytes remain unread.
		io.Copy(io.Discard, r.Body)
		if d := time.Duration(f.delayNs.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				f.cancels.Add(1)
				return
			}
		}
		code := int(f.status.Load())
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set(server.ShardHeader, f.name)
		w.WriteHeader(code)
		fmt.Fprintf(w, `{"served":"fake","shard":%q}`, f.name)
	})
	f.ts = httptest.NewServer(mux)
	u, _ := url.Parse(f.ts.URL)
	f.name = u.Host
	t.Cleanup(f.ts.Close)
	return f
}

// testDDG is a real unit body — the gateway parses it for the routing key.
func testDDG(t *testing.T) string {
	t.Helper()
	k, ok := bench.ByName("vvmul")
	if !ok {
		t.Fatal("vvmul not registered")
	}
	return irtext.String(k.Build(4))
}

// primaryFor reports the ring-primary shard for a unit body.
func primaryFor(t *testing.T, g *Gateway, ddg string) string {
	t.Helper()
	gr, err := irtext.ParseString(ddg)
	if err != nil {
		t.Fatal(err)
	}
	return g.ring.Owners(KeyFor(gr.CanonicalHash()), 1)[0]
}

func newTestGateway(t *testing.T, cfg Config) *Gateway {
	t.Helper()
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	t.Cleanup(g.Close)
	return g
}

// TestHedgeLossFree is the loss-free hedging proof: the primary shard is
// deliberately slow, the hedge wins at the next ring shard, the client gets
// exactly one response, the loser's context is cancelled, and the counters
// prove it — doubleDeliveries pinned at zero, the loser surfacing only as a
// late result.
func TestHedgeLossFree(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	g := newTestGateway(t, Config{
		Shards:     []string{a.name, b.name},
		HedgeAfter: 25 * time.Millisecond,
		ProbeEvery: 20 * time.Millisecond,
	})
	ddg := testDDG(t)
	slow, fast := a, b
	if primaryFor(t, g, ddg) == b.name {
		slow, fast = b, a
	}
	slow.delayNs.Store(int64(2 * time.Second))

	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	resp, err := http.Post(gw.URL+"/schedule?machine=vliw4", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged request: %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Schedgw-Shard"); got != fast.name {
		t.Errorf("served by %q, want the hedge target %q", got, fast.name)
	}
	if resp.Header.Get("X-Schedgw-Hedged") != "1" {
		t.Error("winning response not marked as hedged")
	}
	if got := resp.Header.Get(server.ShardHeader); got != fast.name {
		t.Errorf("%s = %q, want %q", server.ShardHeader, got, fast.name)
	}

	// Exactly one result was delivered; the loser was cancelled and drained.
	deadline := time.Now().Add(2 * time.Second)
	for slow.cancels.Load() == 0 || g.lateResults.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("loser never settled: cancels=%d lateResults=%d",
				slow.cancels.Load(), g.lateResults.Load())
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := g.StatsSnapshot()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Errorf("hedges=%d hedgeWins=%d, want 1/1", st.Hedges, st.HedgeWins)
	}
	if st.Delivered != 1 {
		t.Errorf("delivered=%d, want exactly 1", st.Delivered)
	}
	if st.DoubleDeliveries != 0 {
		t.Errorf("doubleDeliveries=%d — the loss-free invariant is broken", st.DoubleDeliveries)
	}
	if st.LateResults != 1 {
		t.Errorf("lateResults=%d, want 1 (the cancelled loser)", st.LateResults)
	}
}

// TestEdgeAuthAndBadBodies: forged identities and garbage are rejected at
// the gateway without any shard paying for them.
func TestEdgeAuthAndBadBodies(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	g := newTestGateway(t, Config{
		Shards: []string{a.name, b.name},
		Keys:   server.KeySet{"acme": "s3cret"},
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	ddg := testDDG(t)

	do := func(tenant, key, body string) int {
		req, _ := http.NewRequest(http.MethodPost, gw.URL+"/schedule", strings.NewReader(body))
		if tenant != "" {
			req.Header.Set("X-Schedd-Tenant", tenant)
		}
		if key != "" {
			req.Header.Set(server.TenantKeyHeader, key)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := do("acme", "wrong", ddg); code != http.StatusUnauthorized {
		t.Errorf("forged identity: %d, want 401", code)
	}
	if code := do("", "", "not a ddg"); code != http.StatusBadRequest {
		t.Errorf("garbage body: %d, want 400", code)
	}
	if a.hits.Load()+b.hits.Load() != 0 {
		t.Errorf("%d shard attempts for requests rejected at the edge", a.hits.Load()+b.hits.Load())
	}
	st := g.StatsSnapshot()
	if st.AuthFailures != 1 || st.BadRequests != 1 {
		t.Errorf("authFailures=%d badRequests=%d, want 1/1", st.AuthFailures, st.BadRequests)
	}
	// The verified identity is accepted and forwarded.
	if code := do("acme", "s3cret", ddg); code != http.StatusOK {
		t.Errorf("authorized request: %d", code)
	}
}

// TestRerouteAndBreakerTrip: a shard refusing with 503 is failed over
// immediately, its failures trip the breaker, and further requests skip it
// entirely until the cooldown.
func TestRerouteAndBreakerTrip(t *testing.T) {
	a, b := newFakeShard(t), newFakeShard(t)
	g := newTestGateway(t, Config{
		Shards:     []string{a.name, b.name},
		ProbeEvery: time.Hour, // freeze health at the initial sweep: requests drive the breaker
		Breakers:   robust.BreakerPolicy{Failures: 3, Cooldown: time.Hour},
	})
	ddg := testDDG(t)
	refusing, serving := a, b
	if primaryFor(t, g, ddg) == b.name {
		refusing, serving = b, a
	}
	refusing.status.Store(http.StatusServiceUnavailable)

	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	post := func() (int, string) {
		resp, err := http.Post(gw.URL+"/schedule", "text/plain", strings.NewReader(ddg))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, resp.Header.Get("X-Schedgw-Shard")
	}
	// Default breaker policy: 3 failures trip. Every request still lands 200
	// at the healthy shard.
	for i := 0; i < 3; i++ {
		code, shard := post()
		if code != http.StatusOK || shard != serving.name {
			t.Fatalf("request %d: %d from %q, want 200 from %q", i, code, shard, serving.name)
		}
	}
	if st := g.StatsSnapshot(); st.Reroutes < 3 {
		t.Errorf("reroutes=%d after 3 failovers", st.Reroutes)
	}
	attemptsBefore := refusing.hits.Load()
	if attemptsBefore < 3 {
		t.Fatalf("refusing shard saw %d attempts, want >= 3", attemptsBefore)
	}
	// Breaker now open: the refusing shard is skipped without an attempt.
	for i := 0; i < 4; i++ {
		if code, _ := post(); code != http.StatusOK {
			t.Fatalf("post-trip request %d: %d", i, code)
		}
	}
	if got := refusing.hits.Load(); got != attemptsBefore {
		t.Errorf("tripped shard still attempted: %d -> %d hits", attemptsBefore, got)
	}
}

// TestQuorumDegradedRouting: with the fleet below quorum the ring order is
// abandoned but the survivor keeps serving, and the degradation is counted.
func TestQuorumDegradedRouting(t *testing.T) {
	alive := newFakeShard(t)
	// Two dead addresses: reserved ports with nothing listening.
	dead := make([]string, 2)
	for i := range dead {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		dead[i] = ln.Addr().String()
		ln.Close()
	}
	g := newTestGateway(t, Config{
		Shards:     []string{dead[0], alive.name, dead[1]},
		ProbeEvery: 20 * time.Millisecond,
		MaxRetries: -1, // dead shards answer instantly with conn-refused; no backoff needed
	})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()
	ddg := testDDG(t)

	for i := 0; i < 4; i++ {
		resp, err := http.Post(gw.URL+"/schedule", "text/plain", strings.NewReader(ddg))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("degraded request %d: %d: %s", i, resp.StatusCode, body)
		}
	}
	st := g.StatsSnapshot()
	if st.Alive != 1 {
		t.Errorf("alive=%d, want 1", st.Alive)
	}
	if st.QuorumDegraded == 0 {
		t.Error("below-quorum routing not counted")
	}
	// Below quorum the gateway still serves, but advertises the degradation:
	// Ready is false and /readyz answers a structured 503 kind=degraded so an
	// operator (or load balancer) can see the fleet needs attention.
	if st.Ready {
		t.Error("gateway claims ready while below quorum")
	}
	resp0, err := http.Get(gw.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ge struct {
		Error struct {
			Kind string `json:"kind"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp0.Body).Decode(&ge); err != nil {
		t.Fatalf("decoding /readyz body: %v", err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusServiceUnavailable || ge.Error.Kind != "degraded" {
		t.Fatalf("below-quorum /readyz = %d kind=%q, want 503 kind=degraded", resp0.StatusCode, ge.Error.Kind)
	}

	// Nothing alive at all: structured 503, and /readyz agrees.
	alive.ready.Store(false)
	deadline := time.Now().Add(2 * time.Second)
	for g.aliveCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("prober never noticed the last shard going away")
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, err := http.Post(gw.URL+"/schedule", "text/plain", strings.NewReader(ddg))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no-shard request: %d: %s", resp.StatusCode, body)
	}
	var eb struct {
		Error struct{ Kind string } `json:"error"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error.Kind != "unavailable" {
		t.Errorf("no-shard error not structured (%v): %s", err, body)
	}
	rz, err := http.Get(gw.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, rz.Body)
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/readyz = %d with no shard alive", rz.StatusCode)
	}
}

// TestGatewayDrain: a draining gateway refuses new work with a structured
// 503 and Drain returns once in-flight work is gone.
func TestGatewayDrain(t *testing.T) {
	a := newFakeShard(t)
	g := newTestGateway(t, Config{Shards: []string{a.name}})
	gw := httptest.NewServer(g.Handler())
	defer gw.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := g.Drain(ctx); err != nil {
		t.Fatalf("drain of an idle gateway: %v", err)
	}
	resp, err := http.Post(gw.URL+"/schedule", "text/plain", strings.NewReader(testDDG(t)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Errorf("post-drain request: %d: %s", resp.StatusCode, body)
	}
}
