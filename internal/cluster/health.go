package cluster

import (
	"context"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/robust"
)

// shard is the gateway's live view of one schedd backend.
type shard struct {
	name string // display / metric-label name (host:port)
	base string // URL prefix, scheme included

	// alive is the last /readyz probe verdict. A dead shard is skipped at
	// candidate-selection time; the breaker handles the finer-grained
	// request-failure signal in between probes.
	alive atomic.Bool

	probes     atomic.Uint64
	probeFails atomic.Uint64
	forwarded  atomic.Uint64 // attempts sent (primary + hedges + retries)
	failures   atomic.Uint64 // attempts that came back retryable (conn error, 502/503)
	served     atomic.Uint64 // attempts whose response was delivered to a client

	mu        sync.Mutex
	lastErr   string
	lastProbe time.Time
}

func (s *shard) setProbe(err error, at time.Time) {
	s.probes.Add(1)
	ok := err == nil
	s.alive.Store(ok)
	s.mu.Lock()
	s.lastProbe = at
	if err != nil {
		s.probeFails.Add(1)
		s.lastErr = err.Error()
	} else {
		s.lastErr = ""
	}
	s.mu.Unlock()
}

// prober polls every shard's /readyz on a fixed interval and feeds the
// verdicts into the shard's alive flag and the per-shard circuit breaker.
//
// The division of labor with the breaker: the probe decides *liveness*
// (is the shard up, recovered, done replaying its store behind /readyz),
// while request outcomes decide *health under load*. Probe failures count
// toward tripping the breaker like request failures do; probe successes
// close a non-closed breaker only through the breaker's own half-open gate
// (Allow → Record), so the /readyz poll is exactly the half-open probing
// loop — a recovered shard re-enters the ring within one probe interval of
// its cooldown expiring, and a shard that answers /readyz but fails real
// requests stays tripped.
type prober struct {
	mu     sync.Mutex
	shards []*shard // live membership; add/remove mutate under mu

	breakers *robust.BreakerSet
	client   *http.Client
	every    time.Duration
	stop     chan struct{}
	done     chan struct{}
}

func newProber(shards []*shard, breakers *robust.BreakerSet, client *http.Client, every time.Duration) *prober {
	return &prober{
		shards:   append([]*shard(nil), shards...),
		breakers: breakers,
		client:   client,
		every:    every,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// add inserts a joining shard into the probe set and probes it synchronously
// once, so its liveness verdict exists before the ring routes to it.
func (p *prober) add(s *shard) {
	p.mu.Lock()
	p.shards = append(p.shards, s)
	p.mu.Unlock()
	p.probeOne(s)
}

// remove drops a departed shard from the probe set; its in-flight probe (if
// any) finishes harmlessly against a shard no ring decision can pick.
func (p *prober) remove(name string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	kept := p.shards[:0]
	for _, s := range p.shards {
		if s.name != name {
			kept = append(kept, s)
		}
	}
	p.shards = kept
}

// snapshot returns the current probe set.
func (p *prober) snapshot() []*shard {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*shard(nil), p.shards...)
}

// start launches the probe loop; probeAll runs once synchronously first so
// the gateway never serves from a wholly unknown fleet.
func (p *prober) start() {
	p.probeAll()
	go func() {
		defer close(p.done)
		t := time.NewTicker(p.every)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.probeAll()
			}
		}
	}()
}

func (p *prober) close() {
	select {
	case <-p.stop:
	default:
		close(p.stop)
	}
	<-p.done
}

// probeAll probes every shard concurrently; one stuck shard must not delay
// the verdict on the others.
func (p *prober) probeAll() {
	var wg sync.WaitGroup
	for _, s := range p.snapshot() {
		wg.Add(1)
		go func(s *shard) {
			defer wg.Done()
			p.probeOne(s)
		}(s)
	}
	wg.Wait()
}

func (p *prober) probeOne(s *shard) {
	err := p.readyz(s)
	s.setProbe(err, time.Now())
	switch {
	case err != nil:
		// A failed probe is evidence like a failed request: it counts toward
		// the trip threshold, or re-opens a half-open breaker with a longer
		// cooldown. Record on an open breaker is a no-op by design.
		p.breakers.Record(s.name, false)
	case p.breakers.State(s.name) != robust.BreakerClosed:
		// Ready again after a trip: close only through the half-open gate so
		// the cooldown is respected and at most one probe wins the slot.
		if p.breakers.Allow(s.name) {
			p.breakers.Record(s.name, true)
		}
	}
}

// readyz asks one shard whether it would accept work right now. Anything but
// a 200 — starting (store replay), draining, queue-full, unreachable — means
// the router should send work elsewhere.
func (p *prober) readyz(s *shard) error {
	ctx, cancel := context.WithTimeout(context.Background(), p.client.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, s.base+"/readyz", nil)
	if err != nil {
		return err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 256))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &notReadyError{code: resp.StatusCode}
	}
	return nil
}

// notReadyError is a non-200 /readyz verdict.
type notReadyError struct{ code int }

func (e *notReadyError) Error() string {
	switch e.code {
	case http.StatusServiceUnavailable:
		return "readyz: 503 (starting, draining, or queue full)"
	default:
		return "readyz: status " + http.StatusText(e.code)
	}
}
