// Package cluster is the fault-tolerant routing tier in front of a fleet of
// schedd shards (cmd/schedgw). It consistent-hashes every request on the
// engine's canonical graph fingerprint, so the content-addressed schedule
// cache partitions naturally: isomorphic graphs land on the same shard and
// hit its warm cache, no matter which client sends them.
//
// Robustness is the point of the package:
//
//   - Health probing: each shard's /readyz is polled continuously; a shard
//     that stops answering ready is routed around within a probe interval.
//   - Shard breakers: request and probe failures feed a per-shard
//     closed/open/half-open circuit breaker (the internal/robust state
//     machine), so a flapping shard is not hammered while it recovers.
//   - Hedged requests: when the primary shard is slower than the recent
//     latency-percentile budget, a second attempt fires at the next shard on
//     the ring; the first deliverable response wins and the loser's context
//     is cancelled. Exactly one response reaches the client, provably.
//   - Bounded retry: connection errors re-route to the next owner with
//     full-jitter backoff, a bounded number of times.
//   - Quorum degradation: when ready shards drop below quorum the ring
//     ordering is abandoned for any-alive-shard routing — capacity shrinks
//     but the service stays up.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/ir"
)

// KeyFor maps a canonical graph fingerprint onto the hash ring's keyspace.
// The fingerprint is already a uniformly distributed content hash
// (internal/ir), so its leading bytes are the ring position directly.
func KeyFor(fp ir.Fingerprint) uint64 { return binary.BigEndian.Uint64(fp[:8]) }

// point is one virtual node on the ring.
type point struct {
	pos   uint64
	shard string
}

// Ring is a consistent-hash ring of shard names. Each shard owns Replicas
// virtual points; a key is served by the first shard clockwise from its
// position, and Owners enumerates the distinct shards in that order — the
// hedging/failover sequence. Membership changes move only the keys adjacent
// to the changed shard's points (~1/n of the keyspace), which is what keeps
// a shard's content-addressed cache valid across other shards' joins and
// leaves. A Ring is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []point // sorted by pos
	shards   map[string]bool
}

// NewRing returns an empty ring with the given virtual-node count per shard
// (0 selects the default, 64).
func NewRing(replicas int) *Ring {
	if replicas <= 0 {
		replicas = 64
	}
	return &Ring{replicas: replicas, shards: make(map[string]bool)}
}

// Add inserts a shard's virtual points. Adding a present shard is a no-op.
func (r *Ring) Add(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shards[shard] {
		return
	}
	r.shards[shard] = true
	for i := 0; i < r.replicas; i++ {
		sum := sha256.Sum256([]byte(fmt.Sprintf("%s#%d", shard, i)))
		r.points = append(r.points, point{pos: binary.BigEndian.Uint64(sum[:8]), shard: shard})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].pos < r.points[j].pos })
}

// Remove deletes a shard's virtual points. Removing an absent shard is a
// no-op.
func (r *Ring) Remove(shard string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.shards[shard] {
		return
	}
	delete(r.shards, shard)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.shard != shard {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Clone returns an independent snapshot of the ring. The gateway keeps the
// pre-change ring across each membership mutation so it can tell a new owner
// which shard held a key before the change (the peer-lookup hint).
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{replicas: r.replicas, shards: make(map[string]bool, len(r.shards))}
	for s := range r.shards {
		c.shards[s] = true
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// Shards returns the member shard names, sorted.
func (r *Ring) Shards() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.shards))
	for s := range r.shards {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Len is the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.shards)
}

// Owners returns up to n distinct shards in clockwise order from key: the
// primary owner first, then the shards a hedge or failover should try, in
// order. With n >= Len it is a permutation of the membership, so a caller
// that walks the whole slice has tried every shard exactly once.
func (r *Ring) Owners(key uint64, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.shards) {
		n = len(r.shards)
	}
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= key })
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}
